package crowdpricing

// End-to-end tests over the public facade: everything a downstream user
// would touch, wired the way the README shows.

import (
	"math"
	"testing"

	"crowdpricing/internal/dist"
	"crowdpricing/internal/sim"
)

func TestFacadeDeadlineFlow(t *testing.T) {
	arrival := ConstantRate(5200)
	problem := &DeadlineProblem{
		N:         200,
		Horizon:   24,
		Intervals: 72,
		Lambdas:   IntervalMeans(arrival, 24, 72),
		Accept:    Paper13,
		MaxPrice:  50,
		TruncEps:  1e-9,
	}
	cal, err := problem.CalibratePenaltyForConfidence(0.999, 1e6, 18)
	if err != nil {
		t.Fatal(err)
	}
	out := cal.Outcome
	if out.CompletionProb < 0.999 {
		t.Errorf("completion probability %v below guarantee", out.CompletionProb)
	}
	// The paper's headline band: avg reward near c0=12 for this workload.
	if out.AvgReward < 11 || out.AvgReward > 14 {
		t.Errorf("avg reward %v outside the expected band", out.AvgReward)
	}
	fixed, err := problem.FixedPriceForConfidence(0.999)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.ExpectedCost <= out.ExpectedCost {
		t.Errorf("fixed (%v) not above dynamic (%v)", fixed.ExpectedCost, out.ExpectedCost)
	}
	// The schedule escalates when behind.
	late := cal.Policy.PriceAt(150, 71)
	early := cal.Policy.PriceAt(150, 10)
	if late <= early {
		t.Errorf("no escalation: price %d late vs %d early at the same backlog", late, early)
	}
}

func TestFacadeBudgetFlow(t *testing.T) {
	problem := &BudgetProblem{
		N:        200,
		Budget:   2500,
		Accept:   Paper13,
		MinPrice: 1,
		MaxPrice: 50,
	}
	strategy, err := problem.SolveHull()
	if err != nil {
		t.Fatal(err)
	}
	if len(strategy.Counts) > 2 {
		t.Errorf("strategy uses %d prices, want ≤ 2", len(strategy.Counts))
	}
	if strategy.TotalCost() > 2500 || strategy.NumTasks() != 200 {
		t.Errorf("bad allocation: cost %d, tasks %d", strategy.TotalCost(), strategy.NumTasks())
	}
	latency := strategy.ExpectedLatency(Paper13, 5200)
	if latency <= 0 || math.IsInf(latency, 1) {
		t.Errorf("latency %v", latency)
	}
	// Simulate to confirm the analytic latency is honest.
	times := sim.BudgetCompletion(strategy, Paper13, ConstantRate(5200), latency*4, 100, dist.NewRNG(1))
	mean, inf := sim.FiniteMean(times)
	if inf > 0 {
		t.Fatalf("%d runs never finished", inf)
	}
	if math.Abs(mean-latency) > 0.15*latency {
		t.Errorf("simulated mean %vh vs analytic %vh", mean, latency)
	}
}

func TestFacadeTradeoffFlow(t *testing.T) {
	problem := &TradeoffProblem{
		N:        100,
		Alpha:    200,
		Lambda:   5200,
		Accept:   Paper13,
		MinPrice: 1,
		MaxPrice: 60,
	}
	pol, err := problem.SolveWorkerArrival()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Price[100] < 1 || pol.Price[100] > 60 {
		t.Errorf("price %d out of range", pol.Price[100])
	}
	if pol.Value[100] <= 0 {
		t.Errorf("value %v", pol.Value[100])
	}
}

// TestFacadeCustomAcceptance: users can plug their own calibrated curve.
func TestFacadeCustomAcceptance(t *testing.T) {
	custom := Logistic{S: 10, B: 0.5, M: 5000}
	if err := custom.Validate(); err != nil {
		t.Fatal(err)
	}
	problem := &DeadlineProblem{
		N:         50,
		Horizon:   6,
		Intervals: 18,
		Lambdas:   IntervalMeans(ConstantRate(6000), 6, 18),
		Accept:    custom,
		MaxPrice:  60,
		Penalty:   500,
		TruncEps:  1e-9,
	}
	pol, err := problem.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	out := pol.Evaluate()
	if out.ExpectedRemaining < 0 || out.ExpectedCost < 0 {
		t.Errorf("bad outcome %+v", out)
	}
}
