package crowdpricing

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per artifact, named after it) plus the ablations
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Timings are the point: each benchmark is the full computation behind its
// artifact, so the table doubles as the Figure 8(d)-style training-cost
// report.

import (
	"sync"
	"testing"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/dist"
	"crowdpricing/internal/exp"
)

var (
	benchWorkloadOnce sync.Once
	benchWorkload     *exp.Workload
)

func workload() *exp.Workload {
	benchWorkloadOnce.Do(func() { benchWorkload = exp.DefaultWorkload() })
	return benchWorkload
}

func BenchmarkTable1Truncation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := exp.Table1(); len(rows) != 3 {
			b.Fatal("bad row count")
		}
	}
}

func BenchmarkTable2Regression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := exp.Table2(int64(i)); len(rows) != 2 {
			b.Fatal("bad row count")
		}
	}
}

func BenchmarkFigure1Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := exp.Figure1(); len(s.Counts) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFigure5UtilitySim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if res := exp.Figure5(int64(i)); res.Beta <= 0 {
			b.Fatal("bad beta")
		}
	}
}

func BenchmarkFigure6Scatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := exp.Figure6(int64(i)); len(pts) == 0 {
			b.Fatal("empty scatter")
		}
	}
}

func BenchmarkFigure7aDeadline(b *testing.B) {
	w := workload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure7a(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7bSweep(b *testing.B) {
	w := workload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure7b(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8Params(b *testing.B) {
	w := workload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := exp.Figure8abc(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8dGranularity(b *testing.B) {
	w := workload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure8d(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9Sensitivity(b *testing.B) {
	w := workload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure9(w, 50, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10ArrivalSensitivity(b *testing.B) {
	w := workload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure10(w, 50, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionAdaptivePrediction times the Section 5.2.5 future-work
// extension: the per-factor policy bank plus the adaptive Monte Carlo.
func BenchmarkExtensionAdaptivePrediction(b *testing.B) {
	w := workload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure10Adaptive(w, 50, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11Budget(b *testing.B) {
	w := workload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure11(w, 50, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12Live(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure12(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1314Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure1314(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure15Retention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure15(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -----------------------------------------------------------

func ablationProblem() *DeadlineProblem {
	return workload().DefaultDeadlineProblem()
}

// BenchmarkAblationSimpleVsImprovedDP compares Algorithm 1 against
// Algorithm 2 on the default instance — the speed-up Conjecture 1 buys.
func BenchmarkAblationSimpleVsImprovedDP(b *testing.B) {
	p := ablationProblem()
	b.Run("SimpleDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.SolveSimple(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ImprovedDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.SolveEfficient(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTruncation sweeps the Poisson truncation threshold ε of
// Section 3.2, including ε = 0 (exact sums).
func BenchmarkAblationTruncation(b *testing.B) {
	for _, eps := range []struct {
		name string
		eps  float64
	}{{"exact", 0}, {"1e-6", 1e-6}, {"1e-9", 1e-9}, {"1e-12", 1e-12}} {
		b.Run(eps.name, func(b *testing.B) {
			p := ablationProblem()
			p.TruncEps = eps.eps
			for i := 0; i < b.N; i++ {
				if _, err := p.SolveEfficient(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBudgetSolvers compares the three fixed-budget solvers:
// the convex hull construction (Algorithm 3), the exact pseudo-polynomial
// DP (Theorem 6), and the generic simplex LP.
func BenchmarkAblationBudgetSolvers(b *testing.B) {
	p := &BudgetProblem{
		N: 200, Budget: 2500, Accept: Paper13, MinPrice: 1, MaxPrice: exp.DefaultMaxPrice,
	}
	b.Run("Hull", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.SolveHull(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ExactDP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.SolveExactDP(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SimplexLP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.SolveLP(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSemiStatic measures the Theorem 5 identity evaluation
// against Monte Carlo estimation of the same quantity.
func BenchmarkAblationSemiStatic(b *testing.B) {
	prices := make([]int, 200)
	for i := range prices {
		prices[i] = 10 + i%10
	}
	b.Run("ClosedForm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if w := core.SemiStaticExpectedArrivals(prices, Paper13); w <= 0 {
				b.Fatal("bad E[W]")
			}
		}
	})
	b.Run("MonteCarlo", func(b *testing.B) {
		r := dist.NewRNG(1)
		for i := 0; i < b.N; i++ {
			total := 0
			for _, c := range prices {
				total += dist.Geometric{P: choice.Paper13.Accept(c)}.Sample(r) + 1
			}
			if total <= 0 {
				b.Fatal("bad sample")
			}
		}
	})
}
