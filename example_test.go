package crowdpricing_test

// Runnable godoc examples for the public facade. Each Example's output is
// asserted by `go test`, so the usage shown on pkg.go.dev is guaranteed to
// keep working; everything here is deterministic (the solvers are exact,
// not Monte Carlo).

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"

	"crowdpricing"
)

// ExampleDeadlineProblem solves the fixed-deadline problem of Section 3:
// finish 20 tasks in 4 hours at minimum expected cost, varying the posted
// reward each hour.
func ExampleDeadlineProblem() {
	arrival := crowdpricing.ConstantRate(5200) // marketplace arrivals/hour
	p := &crowdpricing.DeadlineProblem{
		N:         20,
		Horizon:   4,
		Intervals: 4,
		Lambdas:   crowdpricing.IntervalMeans(arrival, 4, 4),
		Accept:    crowdpricing.Paper13,
		MinPrice:  1,
		MaxPrice:  30,
		Penalty:   300, // cents charged per task missing at the deadline
		TruncEps:  1e-9,
	}
	pol, err := p.SolveEfficient()
	if err != nil {
		fmt.Println(err)
		return
	}
	out := pol.Evaluate()
	fmt.Printf("opening price: %dc\n", pol.PriceAt(p.N, 0))
	fmt.Printf("final-hour price with full backlog: %dc\n", pol.PriceAt(p.N, p.Intervals-1))
	fmt.Printf("completion probability: %.3f\n", out.CompletionProb)
	fmt.Printf("expected cost: %.1fc\n", out.ExpectedCost)
	// Output:
	// opening price: 5c
	// final-hour price with full backlog: 30c
	// completion probability: 0.982
	// expected cost: 146.5c
}

// ExampleBudgetProblem solves the fixed-budget problem of Section 4: spend
// at most 2500 cents on 100 tasks while minimizing expected completion
// time. By Theorem 7 the optimal static strategy uses at most two prices.
func ExampleBudgetProblem() {
	p := &crowdpricing.BudgetProblem{
		N:        100,
		Budget:   2500,
		Accept:   crowdpricing.Paper13,
		MinPrice: 1,
		MaxPrice: 50,
	}
	s, err := p.SolveHull()
	if err != nil {
		fmt.Println(err)
		return
	}
	prices := make([]int, 0, len(s.Counts))
	for price := range s.Counts {
		prices = append(prices, price)
	}
	sort.Ints(prices)
	for _, price := range prices {
		fmt.Printf("%d tasks at %dc\n", s.Counts[price], price)
	}
	fmt.Printf("committed spend: %dc\n", s.TotalCost())
	fmt.Printf("E[worker arrivals]: %.0f\n", s.ExpectedWorkerArrivals(crowdpricing.Paper13))
	// Output:
	// 100 tasks at 25c
	// committed spend: 2500c
	// E[worker arrivals]: 25676
}

// ExampleNewPricingClient shows the HTTP service flow end to end: start the
// daemon (here in-process via httptest; in production, cmd/priced), solve a
// problem, and observe that repeating it is a cache hit returning the
// byte-identical policy.
func ExampleNewPricingClient() {
	daemon := crowdpricing.NewPricingServer(crowdpricing.PricingServerOptions{})
	ts := httptest.NewServer(daemon.Handler())
	defer ts.Close()

	client := crowdpricing.NewPricingClient(ts.URL)
	req := crowdpricing.DeadlineRequest{
		N:            20,
		HorizonHours: 4,
		Intervals:    4,
		Lambdas:      []float64{5200, 5200, 5200, 5200},
		Accept:       crowdpricing.LogisticParams{S: 15, B: -0.39, M: 2000},
		MinPrice:     1,
		MaxPrice:     30,
		Penalty:      300,
		TruncEps:     1e-9,
	}
	cold, err := client.SolveDeadline(context.Background(), req)
	if err != nil {
		fmt.Println(err)
		return
	}
	warm, err := client.SolveDeadline(context.Background(), req)
	if err != nil {
		fmt.Println(err)
		return
	}
	pol, err := warm.DecodePolicy()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("first request cache hit: %v\n", cold.CacheHit)
	fmt.Printf("second request cache hit: %v\n", warm.CacheHit)
	fmt.Printf("identical artifacts: %v\n", string(cold.Result) == string(warm.Result))
	fmt.Printf("opening price: %dc\n", pol.PriceAt(20, 0))
	// Output:
	// first request cache hit: false
	// second request cache hit: true
	// identical artifacts: true
	// opening price: 5c
}
