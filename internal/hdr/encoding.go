package hdr

import (
	"encoding/json"
	"fmt"
)

// Snapshot is a Histogram in canonical wire form: the occupied slots as a
// sparse, strictly ascending bucket list plus the exact count/sum/min/max.
// It is the unit the distributed benchmark ships between processes — a
// worker snapshots its histograms, posts them as JSON, and the coordinator
// merges the decoded snapshots into one instrument.
//
// The form is canonical: for any given histogram state there is exactly one
// valid Snapshot (buckets sorted by slot, zero-count buckets omitted, the
// empty histogram all-zero), so encode→decode→encode is byte-stable and
// two snapshots are equal iff their histograms are bucket-for-bucket equal.
//
// Take snapshots of quiesced histograms only (the bench runner joins every
// recording goroutine before snapshotting). A snapshot torn by concurrent
// Records can be internally inconsistent; Validate rejects such snapshots
// at the decode boundary instead of merging silently wrong numbers.
type Snapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// Min and Max are the exact extreme recorded values (0 when empty).
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// Buckets lists the occupied slots in strictly ascending slot order.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one occupied histogram slot.
type Bucket struct {
	// Slot is the bucket index in the fixed histogram geometry (see slot).
	Slot int `json:"slot"`
	// Count is the number of observations in the slot; always positive in
	// a valid snapshot.
	Count int64 `json:"count"`
}

// Snapshot captures the histogram's current state in canonical wire form.
func (h *Histogram) Snapshot() *Snapshot {
	s := &Snapshot{Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max()}
	for i := 0; i < slotCount; i++ {
		if n := h.counts[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, Bucket{Slot: i, Count: n})
		}
	}
	return s
}

// slotLower returns the smallest value mapping to slot s — the bucket's
// inclusive lower bound, the counterpart of slotUpper.
func slotLower(s int) int64 {
	if s < subBucketCount {
		return int64(s)
	}
	major := (s - subBucketCount) / subBucketCount
	minor := (s - subBucketCount) % subBucketCount
	return int64(subBucketCount+minor) << uint(major)
}

// Validate checks that the snapshot is a canonical, internally consistent
// image of some histogram: buckets strictly ascending with positive counts
// inside the fixed geometry, totals adding up, and min/max landing in the
// extreme occupied buckets. Every decode path calls this before a merge,
// so corrupt or forged wire bytes fail loudly instead of skewing merged
// percentiles.
func (s *Snapshot) Validate() error {
	if s.Count < 0 {
		return fmt.Errorf("hdr: snapshot has negative count %d", s.Count)
	}
	if s.Count == 0 {
		if s.Sum != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
			return fmt.Errorf("hdr: empty snapshot carries data (sum=%d min=%d max=%d buckets=%d)",
				s.Sum, s.Min, s.Max, len(s.Buckets))
		}
		return nil
	}
	if len(s.Buckets) == 0 {
		return fmt.Errorf("hdr: snapshot counts %d observations but lists no buckets", s.Count)
	}
	var total int64
	prev := -1
	for i, b := range s.Buckets {
		if b.Slot <= prev {
			return fmt.Errorf("hdr: snapshot buckets not strictly ascending at index %d (slot %d after %d)", i, b.Slot, prev)
		}
		if b.Slot >= slotCount {
			return fmt.Errorf("hdr: snapshot slot %d outside the histogram geometry [0, %d)", b.Slot, slotCount)
		}
		if b.Count <= 0 {
			return fmt.Errorf("hdr: snapshot bucket at slot %d has non-positive count %d", b.Slot, b.Count)
		}
		total += b.Count
		if total < 0 {
			return fmt.Errorf("hdr: snapshot bucket counts overflow int64")
		}
		prev = b.Slot
	}
	if total != s.Count {
		return fmt.Errorf("hdr: snapshot count %d != bucket total %d", s.Count, total)
	}
	if s.Min < 0 || s.Min > s.Max {
		return fmt.Errorf("hdr: snapshot min %d / max %d out of order", s.Min, s.Max)
	}
	if got, want := slot(s.Min), s.Buckets[0].Slot; got != want {
		return fmt.Errorf("hdr: snapshot min %d falls in slot %d, but the lowest occupied slot is %d", s.Min, got, want)
	}
	if got, want := slot(s.Max), s.Buckets[len(s.Buckets)-1].Slot; got != want {
		return fmt.Errorf("hdr: snapshot max %d falls in slot %d, but the highest occupied slot is %d", s.Max, got, want)
	}
	// Sum plausibility: the exact sum must lie within the buckets' value
	// bounds. Computed in float64 (the exact bound can overflow int64 at
	// extreme slots) with a small relative slack for the float rounding.
	var lo, hi float64
	for _, b := range s.Buckets {
		lo += float64(b.Count) * float64(slotLower(b.Slot))
		hi += float64(b.Count) * float64(slotUpper(b.Slot))
	}
	const slack = 1e-6
	if fs := float64(s.Sum); fs < lo*(1-slack)-1 || fs > hi*(1+slack)+1 {
		return fmt.Errorf("hdr: snapshot sum %d outside the bucket bounds [%.0f, %.0f]", s.Sum, lo, hi)
	}
	return nil
}

// Histogram reconstructs the histogram a valid snapshot describes. The
// round trip is exact: h.Snapshot().Histogram() is bucket-for-bucket equal
// to h, with identical count, sum, min, max, and quantiles.
func (s *Snapshot) Histogram() (*Histogram, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	h := New()
	for _, b := range s.Buckets {
		h.counts[b.Slot].Store(b.Count)
	}
	if s.Count == 0 {
		return h, nil
	}
	h.count.Store(s.Count)
	h.sum.Store(s.Sum)
	h.min.Store(s.Min)
	h.max.Store(s.Max)
	return h, nil
}

// MergeSnapshot validates s and merges its observations into h — the
// distributed path's equivalent of Merge, producing bucket-for-bucket the
// same state as merging the histogram s was taken from. Invalid snapshots
// are rejected without touching h.
func (h *Histogram) MergeSnapshot(s *Snapshot) error {
	if s == nil {
		return nil
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Count == 0 {
		return nil
	}
	for _, b := range s.Buckets {
		h.counts[b.Slot].Add(b.Count)
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for {
		cur := h.max.Load()
		if s.Max <= cur || h.max.CompareAndSwap(cur, s.Max) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if s.Min >= cur || h.min.CompareAndSwap(cur, s.Min) {
			break
		}
	}
	return nil
}

// DecodeSnapshot parses and validates a JSON-encoded snapshot — the single
// entry point wire bytes take into the histogram domain.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("hdr: bad snapshot encoding: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
