package hdr

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// testValues returns a deterministic spread of values across the
// histogram's dynamic range (no rand: an LCG keeps the test seed-stable).
func testValues(n int, seed uint64) []int64 {
	vals := make([]int64, n)
	x := seed
	for i := range vals {
		x = x*6364136223846793005 + 1442695040888963407
		// Spread across decades: low bits pick an exponent, next bits the
		// mantissa, so tiny and huge values both occur.
		exp := (x >> 59) % 40
		vals[i] = int64((x>>8)%1000) << exp
		if vals[i] < 0 {
			vals[i] = -vals[i]
		}
	}
	return vals
}

func TestSnapshotRoundTrip(t *testing.T) {
	h := New()
	for _, v := range testValues(5000, 42) {
		h.RecordValue(v)
	}
	s := h.Snapshot()
	h2, err := s.Histogram()
	if err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	if !reflect.DeepEqual(s, h2.Snapshot()) {
		t.Fatal("decode(encode(h)) is not bucket-for-bucket equal to h")
	}
	if h.Count() != h2.Count() || h.Sum() != h2.Sum() || h.Min() != h2.Min() || h.Max() != h2.Max() {
		t.Fatalf("round trip changed totals: count %d/%d sum %d/%d min %d/%d max %d/%d",
			h.Count(), h2.Count(), h.Sum(), h2.Sum(), h.Min(), h2.Min(), h.Max(), h2.Max())
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if a, b := h.Quantile(q), h2.Quantile(q); a != b {
			t.Errorf("Quantile(%v) = %d before, %d after round trip", q, a, b)
		}
	}
}

// TestEncodedMergeMatchesInProcessMerge is the distributed-mode guarantee:
// snapshotting two histograms, shipping them as JSON, and merging the
// decoded snapshots must equal the in-process Merge bucket-for-bucket.
func TestEncodedMergeMatchesInProcessMerge(t *testing.T) {
	a, b := New(), New()
	for _, v := range testValues(3000, 7) {
		a.RecordValue(v)
	}
	for _, v := range testValues(2000, 99) {
		b.RecordValue(v)
	}

	inProcess := New()
	inProcess.Merge(a)
	inProcess.Merge(b)

	overWire := New()
	for _, h := range []*Histogram{a, b} {
		data, err := json.Marshal(h.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		s, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := overWire.MergeSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}

	if !reflect.DeepEqual(inProcess.Snapshot(), overWire.Snapshot()) {
		t.Fatal("encode→decode→merge differs from in-process merge")
	}
}

func TestSnapshotEmptyAndSingleSample(t *testing.T) {
	empty := New().Snapshot()
	if empty.Count != 0 || empty.Sum != 0 || empty.Min != 0 || empty.Max != 0 || len(empty.Buckets) != 0 {
		t.Fatalf("empty snapshot not all-zero: %+v", empty)
	}
	h, err := empty.Histogram()
	if err != nil {
		t.Fatalf("empty snapshot rejected: %v", err)
	}
	if h.Count() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("decoded empty snapshot is not an empty histogram")
	}
	// Merging an empty snapshot is a no-op, including on the min sentinel.
	target := New()
	target.RecordValue(500)
	before := target.Snapshot()
	if err := target.MergeSnapshot(empty); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, target.Snapshot()) {
		t.Fatal("merging an empty snapshot changed the target")
	}

	single := New()
	single.RecordValue(12345)
	s := single.Snapshot()
	if s.Count != 1 || s.Sum != 12345 || s.Min != 12345 || s.Max != 12345 || len(s.Buckets) != 1 || s.Buckets[0].Count != 1 {
		t.Fatalf("single-sample snapshot wrong: %+v", s)
	}
	h2, err := s.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	if h2.Quantile(1) != 12345 || h2.Min() != 12345 {
		t.Fatal("single-sample round trip lost the exact value")
	}
	// Merge empty target ← single: exact min/max must carry over.
	fresh := New()
	if err := fresh.MergeSnapshot(s); err != nil {
		t.Fatal(err)
	}
	if fresh.Min() != 12345 || fresh.Max() != 12345 || fresh.Count() != 1 {
		t.Fatalf("merge into empty histogram lost extremes: min %d max %d count %d", fresh.Min(), fresh.Max(), fresh.Count())
	}
}

func TestSnapshotValidationRejectsGarbage(t *testing.T) {
	valid := func() *Snapshot {
		h := New()
		h.RecordValue(100)
		h.RecordValue(200)
		return h.Snapshot()
	}
	cases := map[string]func(s *Snapshot){
		"negative count":      func(s *Snapshot) { s.Count = -1 },
		"empty with sum":      func(s *Snapshot) { s.Count = 0; s.Buckets = nil; s.Min, s.Max = 0, 0 },
		"count sans buckets":  func(s *Snapshot) { s.Buckets = nil },
		"unsorted buckets":    func(s *Snapshot) { s.Buckets[0], s.Buckets[1] = s.Buckets[1], s.Buckets[0] },
		"duplicate slot":      func(s *Snapshot) { s.Buckets[1].Slot = s.Buckets[0].Slot },
		"slot out of range":   func(s *Snapshot) { s.Buckets[1].Slot = slotCount },
		"zero bucket count":   func(s *Snapshot) { s.Buckets[0].Count = 0 },
		"total mismatch":      func(s *Snapshot) { s.Count = 5 },
		"min above max":       func(s *Snapshot) { s.Min = s.Max + 1 },
		"negative min":        func(s *Snapshot) { s.Min = -3 },
		"min in wrong bucket": func(s *Snapshot) { s.Min = 199 },
		"max in wrong bucket": func(s *Snapshot) { s.Max = 101 },
		"sum out of bounds":   func(s *Snapshot) { s.Sum = math.MaxInt64 },
	}
	for name, corrupt := range cases {
		s := valid()
		corrupt(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: corrupted snapshot validated: %+v", name, s)
		}
		target := New()
		if err := target.MergeSnapshot(s); err == nil {
			t.Errorf("%s: corrupted snapshot merged", name)
		} else if target.Count() != 0 {
			t.Errorf("%s: rejected merge still mutated the target", name)
		}
	}
}

// TestSnapshotJSONCanonical: one histogram state has exactly one encoding.
func TestSnapshotJSONCanonical(t *testing.T) {
	h := New()
	for _, v := range testValues(1000, 11) {
		h.RecordValue(v)
	}
	a, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeSnapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("encode→decode→encode is not byte-stable")
	}
}

// FuzzDecodeSnapshot: the decoder never panics, and anything it accepts is
// canonical — reconstructing the histogram and re-snapshotting reproduces
// the accepted snapshot exactly.
func FuzzDecodeSnapshot(f *testing.F) {
	h := New()
	for _, v := range testValues(200, 3) {
		h.RecordValue(v)
	}
	seed, _ := json.Marshal(h.Snapshot())
	f.Add(seed)
	f.Add([]byte(`{"count":0,"sum":0,"min":0,"max":0}`))
	f.Add([]byte(`{"count":1,"sum":5,"min":5,"max":5,"buckets":[{"slot":5,"count":1}]}`))
	f.Add([]byte(`{"count":2,"sum":5,"min":5,"max":5,"buckets":[{"slot":5,"count":1}]}`))
	f.Add([]byte(`{"count":1,"sum":5,"min":5,"max":5,"buckets":[{"slot":-1,"count":1}]}`))
	f.Add([]byte(`{"count":9223372036854775807,"sum":1,"min":0,"max":0,"buckets":[{"slot":0,"count":9223372036854775807}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		h, err := s.Histogram()
		if err != nil {
			t.Fatalf("DecodeSnapshot accepted what Histogram rejects: %v", err)
		}
		if !reflect.DeepEqual(s, h.Snapshot()) {
			t.Fatal("accepted snapshot is not canonical: re-encoding differs")
		}
		merged := New()
		if err := merged.MergeSnapshot(s); err != nil {
			t.Fatalf("accepted snapshot failed to merge: %v", err)
		}
		if merged.Count() != s.Count {
			t.Fatalf("merge lost observations: %d != %d", merged.Count(), s.Count)
		}
	})
}
