package hdr

import (
	"math"
	"sync"
	"testing"
	"time"

	"crowdpricing/internal/dist"
)

// TestSlotRoundTrip checks the bucket geometry: every value maps into a
// slot whose bounds contain it, and the relative bucket width is bounded by
// 2^-subBucketBits.
func TestSlotRoundTrip(t *testing.T) {
	values := []int64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1000, 4096,
		123456, 1 << 20, 1<<30 + 12345, 1 << 40, 1 << 62, math.MaxInt64}
	for _, v := range values {
		s := slot(v)
		if s < 0 || s >= slotCount {
			t.Fatalf("slot(%d) = %d out of range [0, %d)", v, s, slotCount)
		}
		upper := slotUpper(s)
		if upper < v {
			t.Errorf("slotUpper(slot(%d)) = %d < value", v, upper)
		}
		if s > 0 {
			lower := slotUpper(s-1) + 1
			if lower > v {
				t.Errorf("value %d below its bucket's lower bound %d", v, lower)
			}
			if v >= subBucketCount {
				relErr := float64(upper-v) / float64(v)
				if relErr > 1.0/subBucketCount {
					t.Errorf("value %d: bucket upper %d relative error %.4f > %.4f",
						v, upper, relErr, 1.0/subBucketCount)
				}
			}
		}
	}
}

// TestSlotMonotonic walks a geometric sweep of values and checks slots never
// decrease (bucket ordering is total).
func TestSlotMonotonic(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<40; v = v*2 + 1 {
		s := slot(v)
		if s < prev {
			t.Fatalf("slot(%d) = %d < previous slot %d", v, s, prev)
		}
		prev = s
	}
}

func TestQuantilesAgainstExactUniform(t *testing.T) {
	h := New()
	const n = 100_000
	// 1..n microseconds: exact quantile q is q·n µs.
	for i := 1; i <= n; i++ {
		h.RecordValue(int64(i) * 1000)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		got := float64(h.Quantile(q))
		want := q * n * 1000
		if relDiff := math.Abs(got-want) / want; relDiff > 1.0/subBucketCount+0.001 {
			t.Errorf("q%.3f = %.0f, want ≈ %.0f (rel diff %.4f)", q, got, want, relDiff)
		}
	}
	if h.Max() != n*1000 {
		t.Errorf("max = %d, want %d", h.Max(), n*1000)
	}
	if h.Min() != 1000 {
		t.Errorf("min = %d, want 1000", h.Min())
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("Quantile(1) = %d, want exact max %d", h.Quantile(1), h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-(n+1)*500) > 1e-6 {
		t.Errorf("mean = %v, want %v (exact)", mean, (n+1)*500)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Max() != 0 || h.Min() != 0 || h.Mean() != 0 {
		t.Errorf("empty histogram should read all zeros, got count=%d q99=%d max=%d min=%d mean=%v",
			h.Count(), h.Quantile(0.99), h.Max(), h.Min(), h.Mean())
	}
}

func TestCountAtOrBelow(t *testing.T) {
	h := New()
	for _, ms := range []int64{1, 2, 5, 10, 100} {
		h.RecordValue(ms * int64(time.Millisecond))
	}
	cases := []struct {
		at   time.Duration
		want int64
	}{
		{500 * time.Microsecond, 0},
		{3 * time.Millisecond, 2},
		{50 * time.Millisecond, 4},
		{time.Second, 5},
	}
	for _, c := range cases {
		if got := h.CountAtOrBelow(int64(c.at)); got != c.want {
			t.Errorf("CountAtOrBelow(%v) = %d, want %d", c.at, got, c.want)
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	r := dist.NewRNG(7)
	all := New()
	for i := 0; i < 10_000; i++ {
		v := int64(r.Uniform(1000, 5e7))
		if i%2 == 0 {
			a.RecordValue(v)
		} else {
			b.RecordValue(v)
		}
		all.RecordValue(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() || a.Max() != all.Max() || a.Min() != all.Min() {
		t.Fatalf("merge mismatch: count %d/%d sum %d/%d max %d/%d min %d/%d",
			a.Count(), all.Count(), a.Sum(), all.Sum(), a.Max(), all.Max(), a.Min(), all.Min())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("q%.3f: merged %d vs direct %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

// TestConcurrentRecord drives Record from many goroutines under -race and
// checks the exact aggregates.
func TestConcurrentRecord(t *testing.T) {
	h := New()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := dist.NewRNG(seed)
			for i := 0; i < per; i++ {
				h.RecordValue(int64(r.Uniform(0, 1e9)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.CountAtOrBelow(math.MaxInt64) != workers*per {
		t.Fatalf("cumulative count = %d, want %d", h.CountAtOrBelow(math.MaxInt64), workers*per)
	}
}
