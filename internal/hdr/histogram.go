// Package hdr provides a log-bucketed latency histogram in the spirit of
// HdrHistogram: values are binned into power-of-two ranges each split into
// linear sub-buckets, so quantiles are accurate to a bounded relative error
// (≤ 1/32 ≈ 3.1%) across nine decades of dynamic range with a fixed ~15 KB
// footprint and no allocation on the record path.
//
// One Histogram is the single latency instrument shared by the pricing
// daemon's /metrics endpoint and the loadbench harness, so the numbers the
// benchmark reports and the numbers production observability scrapes come
// from the same binning.
//
// Record is safe for concurrent use (atomic counters); readers see a
// consistent-enough snapshot for monitoring and benchmarking purposes.
package hdr

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBucketBits fixes the linear split of each power-of-two range:
	// 2^subBucketBits sub-buckets, bounding relative error by
	// 2^-subBucketBits.
	subBucketBits  = 5
	subBucketCount = 1 << subBucketBits
	// slotCount covers the full non-negative int64 range: the first
	// subBucketCount slots are exact (values 0..31 ns), then each power of
	// two [2^k, 2^(k+1)) for k in [subBucketBits, 63] contributes
	// subBucketCount slots — 64−subBucketBits exponents in total.
	slotCount = subBucketCount + (64-subBucketBits)*subBucketCount
)

// Histogram is a concurrent log-bucketed histogram over non-negative int64
// values (nanoseconds, by convention of the Record helper). The zero value
// is NOT ready; create with New.
type Histogram struct {
	counts [slotCount]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64 // valid only when count > 0
}

// New returns an empty histogram.
func New() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64 sentinel until first record
	return h
}

// slot maps a non-negative value to its bucket index.
func slot(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBucketCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // position of the leading bit, ≥ subBucketBits
	// The subBucketBits bits following the leading bit select the linear
	// sub-bucket within [2^exp, 2^(exp+1)).
	minor := int((u >> uint(exp-subBucketBits)) & (subBucketCount - 1))
	return subBucketCount + (exp-subBucketBits)*subBucketCount + minor
}

// slotUpper returns the largest value mapping to slot s (the bucket's
// inclusive upper bound), the representative reported by Quantile.
func slotUpper(s int) int64 {
	if s < subBucketCount {
		return int64(s)
	}
	major := (s - subBucketCount) / subBucketCount
	minor := (s - subBucketCount) % subBucketCount
	low := int64(subBucketCount+minor) << uint(major)
	width := int64(1) << uint(major)
	return low + width - 1
}

// RecordValue adds one observation of v (negative values clamp to zero).
func (h *Histogram) RecordValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[slot(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Record adds one observation of a duration in nanoseconds.
func (h *Histogram) Record(d time.Duration) { h.RecordValue(int64(d)) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the exact sum of recorded values (nanoseconds under the
// Record convention).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the exact mean of recorded values, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the exact maximum recorded value, 0 when empty.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Min returns the exact minimum recorded value, 0 when empty.
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound of
// the bucket containing the ⌈q·count⌉-th smallest observation, clamped to
// the exact recorded maximum (so Quantile(1) == Max). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen int64
	for s := 0; s < slotCount; s++ {
		seen += h.counts[s].Load()
		if seen >= target {
			v := slotUpper(s)
			if m := h.max.Load(); v > m {
				v = m
			}
			return v
		}
	}
	return h.max.Load()
}

// QuantileDuration is Quantile for nanosecond-duration histograms.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// CountAtOrBelow returns how many observations fell into buckets whose
// upper bound is ≤ v's bucket — the cumulative count Prometheus histogram
// buckets need. The boundary is resolved at bucket granularity, consistent
// with Quantile.
func (h *Histogram) CountAtOrBelow(v int64) int64 {
	s := slot(v)
	var total int64
	for i := 0; i <= s && i < slotCount; i++ {
		total += h.counts[i].Load()
	}
	return total
}

// Merge adds every observation of o into h. Min/max/sum/count merge
// exactly; bucket counts merge slot-wise (both histograms share one
// geometry).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for s := 0; s < slotCount; s++ {
		if n := o.counts[s].Load(); n != 0 {
			h.counts[s].Add(n)
		}
	}
	n := o.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	h.sum.Add(o.sum.Load())
	for {
		cur := h.max.Load()
		v := o.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		v := o.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}
