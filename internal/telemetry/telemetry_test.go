package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tc := tr.Start("/x")
	if tc != nil {
		t.Fatal("nil tracer minted a trace")
	}
	// Every span call must be a no-op, not a panic.
	start := tc.Now()
	if start != 0 {
		t.Fatalf("nil trace Now() = %d, want 0", start)
	}
	tc.Observe(StageSolve, time.Millisecond)
	tc.ObserveSince(StageSolve, start)
	if id := tc.ID(); id != "" {
		t.Fatalf("nil trace ID = %q, want empty", id)
	}
	tr.Finish(tc, 200)
	if s := tr.Snapshot(); s != nil {
		t.Fatalf("nil tracer snapshot = %v, want nil", s)
	}
	if h := tr.StageHistogram(StageSolve); h != nil {
		t.Fatal("nil tracer returned a histogram")
	}
}

func TestTraceIDsDeterministicUnderSeed(t *testing.T) {
	ids := func() []string {
		tr := NewTracer(8, 42)
		var out []string
		for i := 0; i < 5; i++ {
			tc := tr.Start("/x")
			out = append(out, tc.ID())
			tr.Finish(tc, 200)
		}
		return out
	}
	a, b := ids(), ids()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace ID %d differs across same-seed tracers: %s vs %s", i, a[i], b[i])
		}
		if len(a[i]) != 16 {
			t.Fatalf("trace ID %q is not 16 hex digits", a[i])
		}
	}
}

func TestSpansAccumulateAndRender(t *testing.T) {
	tr := NewTracer(8, 1)
	tc := tr.Start("/v1/solve/deadline")
	tc.Observe(StageServerDecode, 2*time.Millisecond)
	tc.Observe(StageSolve, 5*time.Millisecond)
	tc.Observe(StageSolve, 3*time.Millisecond) // accumulates
	tc.Observe(StageQueueWait, 0)              // zero-length but crossed
	tr.Finish(tc, 200)

	sums := tr.Snapshot()
	if len(sums) != 1 {
		t.Fatalf("retained %d traces, want 1", len(sums))
	}
	s := sums[0]
	if got := s.StagesMS["engine_solve"]; got != 8 {
		t.Fatalf("solve span = %vms, want 8", got)
	}
	if got := s.StagesMS["server_decode"]; got != 2 {
		t.Fatalf("decode span = %vms, want 2", got)
	}
	if _, ok := s.StagesMS["engine_queue_wait"]; !ok {
		t.Fatal("zero-length span lost its stage presence")
	}
	if _, ok := s.StagesMS["wal_append"]; ok {
		t.Fatal("uncrossed stage rendered a span")
	}
	if s.Status != 200 || s.Route != "/v1/solve/deadline" {
		t.Fatalf("summary carries wrong status/route: %+v", s)
	}
	if h := tr.StageHistogram(StageSolve); h.Count() != 1 || h.Sum() != int64(8*time.Millisecond) {
		t.Fatalf("solve histogram count=%d sum=%d, want 1 and 8ms", h.Count(), h.Sum())
	}

	var b strings.Builder
	WriteText(&b, sums)
	for _, want := range []string{"engine_solve", "server_decode", s.ID, "status=200"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("text rendering missing %q:\n%s", want, b.String())
		}
	}
}

func TestKeepSlowestRetention(t *testing.T) {
	tr := NewTracer(3, 1)
	// Finish 10 traces with strictly growing solve spans; the table must
	// keep the 3 slowest by total.
	for i := 1; i <= 10; i++ {
		tc := tr.Start("/x")
		tc.Observe(StageSolve, time.Duration(i)*time.Millisecond)
		// Fake the total without sleeping: Finish computes total from the
		// clock, so instead shift begin back by the span length.
		tc.begin -= int64(time.Duration(i) * time.Millisecond)
		tr.Finish(tc, 200)
	}
	sums := tr.Snapshot()
	if len(sums) != 3 {
		t.Fatalf("retained %d traces, want 3", len(sums))
	}
	for i, s := range sums {
		if s.TotalMS < 8 {
			t.Fatalf("retained trace %d has total %vms; the slowest three are ≥8ms", i, s.TotalMS)
		}
	}
	if sums[0].TotalMS < sums[1].TotalMS || sums[1].TotalMS < sums[2].TotalMS {
		t.Fatalf("snapshot not sorted slowest-first: %v", sums)
	}
}

func TestContextCarry(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatal("empty context produced a trace")
	}
	tr := NewTracer(2, 1)
	tc := tr.Start("/x")
	ctx := NewContext(context.Background(), tc)
	if got := FromContext(ctx); got != tc {
		t.Fatal("trace did not round-trip through the context")
	}
	// A nil trace must not grow the context chain.
	base := context.Background()
	if got := NewContext(base, nil); got != base {
		t.Fatal("NewContext(nil) wrapped the context")
	}
	tr.Finish(tc, 200)
}

func TestTracedSpanAllocationFree(t *testing.T) {
	tr := NewTracer(4, 1)
	tc := tr.Start("/x")
	defer tr.Finish(tc, 200)
	allocs := testing.AllocsPerRun(100, func() {
		t0 := tc.Now()
		tc.ObserveSince(StageLockHold, t0)
	})
	if allocs != 0 {
		t.Fatalf("span recording allocates %v objects per op, want 0", allocs)
	}
}

// TestStageNamesOrder pins the pipeline order StageNames reports: the
// bench report and dashboards render stage tables in this sequence.
func TestStageNamesOrder(t *testing.T) {
	names := StageNames()
	if len(names) != int(NumStages) {
		t.Fatalf("StageNames() has %d entries, want %d", len(names), int(NumStages))
	}
	for i, name := range names {
		if got := Stage(i).String(); got != name {
			t.Errorf("StageNames()[%d] = %q, Stage(%d).String() = %q", i, name, i, got)
		}
	}
	if got := Stage(250).String(); got != "stage(250)" {
		t.Errorf("out-of-range stage renders %q, want stage(250)", got)
	}
}

// TestSnapshotConcurrentWithFinish is a race regression: Snapshot must
// copy trace fields under the tracer mutex, because once the keep table
// is full a concurrent Finish evicts a retained trace and recycles it
// through the pool into a new request that rewrites id/route/status.
// Run under -race, the old copy-pointers-then-read pattern fails here.
func TestSnapshotConcurrentWithFinish(t *testing.T) {
	tr := NewTracer(4, 1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				tc := tr.Start("/race")
				tc.Observe(StageSolve, time.Duration(i%7)*time.Microsecond)
				// Vary totals so admissions and evictions both happen.
				tc.begin -= int64(time.Duration((w*3000+i)%13) * time.Microsecond)
				tr.Finish(tc, 200)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		for _, s := range tr.Snapshot() {
			if s.Route != "/race" {
				t.Fatalf("snapshot read a recycled trace: route %q", s.Route)
			}
		}
	}
	if n := len(tr.Snapshot()); n != 4 {
		t.Fatalf("retained %d traces, want a full table of 4", n)
	}
}
