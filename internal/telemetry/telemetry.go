// Package telemetry is the request-tracing layer of the pricing daemon:
// allocation-light per-request trace contexts with one typed span per
// pipeline stage a request crosses — server decode, engine queue wait,
// solve, quoter decode, campaign lock hold, WAL append — feeding both the
// per-stage latency histograms rendered on /metrics and a bounded
// retention of the slowest recent traces rendered by GET /debug/requests,
// so a slow p99 can be explained stage by stage without a debugger.
//
// Design constraints, in order:
//
//   - The quote hot path stays allocation-free: a Trace is pooled, spans
//     land in a fixed array via atomic adds, and every method is nil-safe
//     so call sites need no "is tracing on?" branches (a nil *Trace is the
//     disabled tracer and costs a predicted branch).
//   - Trace IDs come from a seeded internal/dist RNG, not crypto/rand or
//     time, so crowdlint's determinism discipline stays satisfiable and a
//     fixed-seed daemon logs reproducible IDs.
//   - This package owns every wall-clock read for span measurement (the
//     monotonic session clock below); instrumented packages call Now /
//     ObserveSince instead of time.Now, keeping crowdlint's determinism
//     scope clean at the call sites.
package telemetry

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"crowdpricing/internal/dist"
	"crowdpricing/internal/hdr"
)

// Stage identifies one span of a request's pipeline.
type Stage int

// The span taxonomy, in pipeline order. NumStages bounds the fixed span
// array every Trace carries.
const (
	// StageServerDecode is JSON request decoding in the HTTP layer.
	StageServerDecode Stage = iota
	// StageQueueWait is time an admitted cold solve spent queued before a
	// worker picked it up (zero-length for warm cache hits).
	StageQueueWait
	// StageSolve is time on an engine worker (or waiting on the joined
	// in-flight solve of an identical request).
	StageSolve
	// StageQuoterDecode is policy-table decode in the campaign intern
	// layer — first decode or a re-decode after a budget eviction.
	StageQuoterDecode
	// StageLockHold is the per-campaign mutex: acquisition wait plus the
	// O(1) critical section of an observe or quote.
	StageLockHold
	// StageWALAppend is event marshalling plus the append into the
	// campaign event log's group-commit buffer (not the fsync, which is
	// asynchronous by design).
	StageWALAppend
	// NumStages sizes per-trace span storage; keep it last.
	NumStages
)

var stageNames = [NumStages]string{
	"server_decode",
	"engine_queue_wait",
	"engine_solve",
	"quoter_decode",
	"campaign_lock",
	"wal_append",
}

// String returns the stable label value used on /metrics and in
// /debug/requests bodies.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// StageNames lists every stage label in pipeline order.
func StageNames() []string {
	return append([]string(nil), stageNames[:]...)
}

// sessionBase anchors the package's monotonic span clock: Now values are
// nanoseconds since process start, read through time.Since so they ride
// the runtime's monotonic clock and never jump with wall-time changes.
var sessionBase = time.Now()

// Nanotime returns the monotonic session clock in nanoseconds. Exported
// for instrumented packages (the engine stamps worker dequeues with it);
// values are only meaningful as differences.
func Nanotime() int64 { return int64(time.Since(sessionBase)) }

// Trace is one request's span record. Obtain from Tracer.Start, finish
// with Tracer.Finish; a nil *Trace is valid everywhere and records
// nothing, so instrumentation call sites need no enabled-checks.
//
// Span methods are safe for concurrent use (batch handlers fan out under
// one trace); spans accumulate, so a stage crossed twice reports the sum.
type Trace struct {
	id     uint64
	route  string
	wall   time.Time // wall-clock start, for display only
	begin  int64     // session-clock start
	total  int64     // set by Finish
	status int

	// seen is a bitmask of observed stages: presence must survive a
	// zero-length span so /debug/requests can show which stages a request
	// crossed even when one was immeasurably fast.
	seen  atomic.Uint32
	spans [NumStages]atomic.Int64
}

// Now returns the session clock, or 0 from a nil trace — pair it with
// ObserveSince so disabled tracing costs two nil checks and no clock read.
func (t *Trace) Now() int64 {
	if t == nil {
		return 0
	}
	return Nanotime()
}

// ID renders the trace ID as 16 hex digits ("" for a nil trace). It
// allocates; keep it off hot paths (error logs and renderings only).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("%016x", t.id)
}

// Observe adds d to one stage's span. No-op on a nil trace; negative
// durations clamp to zero (a span can legitimately measure ~0 across
// clock reads on different cores).
func (t *Trace) Observe(stage Stage, d time.Duration) {
	t.observe(stage, int64(d))
}

// ObserveSince closes a span opened with start := t.Now().
func (t *Trace) ObserveSince(stage Stage, start int64) {
	if t == nil {
		return
	}
	t.observe(stage, Nanotime()-start)
}

func (t *Trace) observe(stage Stage, ns int64) {
	if t == nil || stage < 0 || stage >= NumStages {
		return
	}
	if ns < 0 {
		ns = 0
	}
	t.spans[stage].Add(ns)
	t.seen.Or(1 << uint(stage))
}

// reset prepares a pooled trace for reuse.
func (t *Trace) reset() {
	t.id, t.route, t.wall, t.begin, t.total, t.status = 0, "", time.Time{}, 0, 0, 0
	t.seen.Store(0)
	for i := range t.spans {
		t.spans[i].Store(0)
	}
}

// ctxKey carries a *Trace through a context.
type ctxKey struct{}

// NewContext returns ctx carrying t (ctx unchanged when t is nil), so
// spans recorded deep in the engine or campaign layers land on the
// request's trace.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil — and nil is a valid
// trace, so callers use the result unconditionally.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// DefaultKeep is the slowest-trace retention of a zero-configured Tracer.
const DefaultKeep = 64

// retainAge bounds how long a slow trace stays retained: /debug/requests
// answers "what was slow recently", not "what was slow since boot", so
// entries older than this are dropped as new traces finish.
const retainAge = 15 * time.Minute

// Tracer mints, finishes, and retains traces: per-stage latency
// histograms (the /metrics stage families) plus a bounded keep-slowest
// table behind /debug/requests. A nil *Tracer is the disabled tracer:
// Start returns nil and every downstream span call no-ops.
type Tracer struct {
	keep  int
	stage [NumStages]*hdr.Histogram
	pool  sync.Pool

	mu   sync.Mutex
	rng  *dist.RNG
	slow []*Trace
}

// NewTracer builds a Tracer retaining the keep slowest recent traces
// (keep <= 0 = DefaultKeep) and minting trace IDs from a dist RNG seeded
// with seed — deterministic IDs under a fixed seed, by design.
func NewTracer(keep int, seed int64) *Tracer {
	if keep <= 0 {
		keep = DefaultKeep
	}
	tr := &Tracer{
		keep: keep,
		rng:  dist.NewRNG(seed),
		pool: sync.Pool{New: func() any { return &Trace{} }},
	}
	for i := range tr.stage {
		tr.stage[i] = hdr.New()
	}
	return tr
}

// Start mints a trace for one request on route. Returns nil from a nil
// Tracer. The trace must be handed back through Finish exactly once.
func (tr *Tracer) Start(route string) *Trace {
	if tr == nil {
		return nil
	}
	t := tr.pool.Get().(*Trace)
	t.reset()
	tr.mu.Lock()
	t.id = tr.rng.Uint64()
	tr.mu.Unlock()
	t.route = route
	//crowdlint:allow determinism -- trace start timestamp is display-only instrumentation
	t.wall = time.Now()
	t.begin = Nanotime()
	return t
}

// Finish closes t with the response status: every observed stage feeds
// its histogram, and the trace either enters the keep-slowest table or
// returns to the pool. Nil-safe on both receiver and trace.
func (tr *Tracer) Finish(t *Trace, status int) {
	if tr == nil || t == nil {
		return
	}
	t.status = status
	t.total = Nanotime() - t.begin
	if t.total < 0 {
		t.total = 0
	}
	seen := t.seen.Load()
	for s := Stage(0); s < NumStages; s++ {
		if seen&(1<<uint(s)) != 0 {
			tr.stage[s].RecordValue(t.spans[s].Load())
		}
	}
	tr.mu.Lock()
	evicted := tr.admitLocked(t)
	tr.mu.Unlock()
	if evicted != nil {
		evicted.reset()
		tr.pool.Put(evicted)
	}
}

// admitLocked applies the retention policy and returns the trace to
// recycle (nil when the table simply grew). Callers hold tr.mu.
func (tr *Tracer) admitLocked(t *Trace) *Trace {
	// Age out stale entries first so "recent" holds even on a quiet
	// daemon whose slowest-ever traces would otherwise pin the table.
	//crowdlint:allow determinism -- retention ages out on wall time by design
	cutoff := time.Now().Add(-retainAge)
	kept := tr.slow[:0]
	for _, old := range tr.slow {
		if old.wall.After(cutoff) {
			kept = append(kept, old)
		}
	}
	tr.slow = kept
	if len(tr.slow) < tr.keep {
		tr.slow = append(tr.slow, t)
		return nil
	}
	min := 0
	for i, old := range tr.slow {
		if old.total < tr.slow[min].total {
			min = i
		}
	}
	if t.total <= tr.slow[min].total {
		return t
	}
	evicted := tr.slow[min]
	tr.slow[min] = t
	return evicted
}

// StageHistogram exposes one stage's latency histogram for metrics
// rendering (nil from a nil Tracer).
func (tr *Tracer) StageHistogram(s Stage) *hdr.Histogram {
	if tr == nil || s < 0 || s >= NumStages {
		return nil
	}
	return tr.stage[s]
}
