package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// TraceSummary is one retained trace rendered for /debug/requests: the
// JSON body is a list of these, slowest first.
type TraceSummary struct {
	// ID is the seeded-RNG trace ID, the correlation key error logs carry.
	ID string `json:"id"`
	// Route is the mux pattern the request hit.
	Route string `json:"route"`
	// Start is the request's wall-clock start.
	Start time.Time `json:"start"`
	// Status is the HTTP status the request answered with.
	Status int `json:"status"`
	// TotalMS is the full handler duration in milliseconds.
	TotalMS float64 `json:"total_ms"`
	// StagesMS maps every observed stage to its span in milliseconds; a
	// stage present with 0 was crossed but measured under a microsecond.
	StagesMS map[string]float64 `json:"stages_ms"`
	// UnattributedMS is TotalMS minus the sum of spans: encode time,
	// scheduling, and anything between instrumented stages.
	UnattributedMS float64 `json:"unattributed_ms"`
}

// Snapshot renders the retained traces, slowest first. The traces stay
// retained; /debug/requests is a read, not a drain.
func (tr *Tracer) Snapshot() []TraceSummary {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	traces := append([]*Trace(nil), tr.slow...)
	tr.mu.Unlock()
	out := make([]TraceSummary, 0, len(traces))
	for _, t := range traces {
		s := TraceSummary{
			ID:       t.ID(),
			Route:    t.route,
			Start:    t.wall,
			Status:   t.status,
			TotalMS:  float64(t.total) / 1e6,
			StagesMS: make(map[string]float64, NumStages),
		}
		seen := t.seen.Load()
		var attributed int64
		for st := Stage(0); st < NumStages; st++ {
			if seen&(1<<uint(st)) == 0 {
				continue
			}
			ns := t.spans[st].Load()
			attributed += ns
			s.StagesMS[st.String()] = float64(ns) / 1e6
		}
		if un := t.total - attributed; un > 0 {
			s.UnattributedMS = float64(un) / 1e6
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMS != out[j].TotalMS {
			return out[i].TotalMS > out[j].TotalMS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// WriteText renders summaries as the human view of /debug/requests: one
// block per trace, slowest first, spans in pipeline order.
func WriteText(w io.Writer, summaries []TraceSummary) {
	if len(summaries) == 0 {
		fmt.Fprintln(w, "no retained traces")
		return
	}
	fmt.Fprintf(w, "%d slowest recent requests\n", len(summaries))
	for i, s := range summaries {
		fmt.Fprintf(w, "\n#%d %s %s  status=%d  total=%.3fms  start=%s\n",
			i+1, s.ID, s.Route, s.Status, s.TotalMS, s.Start.Format(time.RFC3339Nano))
		for _, name := range stageNames {
			ms, ok := s.StagesMS[name]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "  %-18s %10.3fms\n", name, ms)
		}
		if s.UnattributedMS > 0 {
			fmt.Fprintf(w, "  %-18s %10.3fms\n", "(unattributed)", s.UnattributedMS)
		}
	}
}
