package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// TraceSummary is one retained trace rendered for /debug/requests: the
// JSON body is a list of these, slowest first.
type TraceSummary struct {
	// ID is the seeded-RNG trace ID, the correlation key error logs carry.
	ID string `json:"id"`
	// Route is the mux pattern the request hit.
	Route string `json:"route"`
	// Start is the request's wall-clock start.
	Start time.Time `json:"start"`
	// Status is the HTTP status the request answered with.
	Status int `json:"status"`
	// TotalMS is the full handler duration in milliseconds.
	TotalMS float64 `json:"total_ms"`
	// StagesMS maps every observed stage to its span in milliseconds; a
	// stage present with 0 was crossed but measured under a microsecond.
	StagesMS map[string]float64 `json:"stages_ms"`
	// UnattributedMS is TotalMS minus the sum of spans: encode time,
	// scheduling, and anything between instrumented stages.
	UnattributedMS float64 `json:"unattributed_ms"`
}

// Snapshot renders the retained traces, slowest first. The traces stay
// retained; /debug/requests is a read, not a drain.
//
// Summaries are built while holding tr.mu: a retained *Trace is only
// immutable as long as it stays in the keep table, because a concurrent
// Finish may evict it under tr.mu and recycle it through the pool into a
// new request that rewrites its fields. Copying the fields under the same
// lock that eviction takes is what makes the read safe.
func (tr *Tracer) Snapshot() []TraceSummary {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	out := make([]TraceSummary, 0, len(tr.slow))
	for _, t := range tr.slow {
		out = append(out, t.summarize())
	}
	tr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMS != out[j].TotalMS {
			return out[i].TotalMS > out[j].TotalMS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// summarize copies one trace into its immutable rendering. Callers must
// hold the owning Tracer's mu (see Snapshot); the returned summary shares
// no memory with the trace and stays valid after the trace is recycled.
func (t *Trace) summarize() TraceSummary {
	s := TraceSummary{
		ID:       t.ID(),
		Route:    t.route,
		Start:    t.wall,
		Status:   t.status,
		TotalMS:  float64(t.total) / 1e6,
		StagesMS: make(map[string]float64, NumStages),
	}
	seen := t.seen.Load()
	var attributed int64
	for st := Stage(0); st < NumStages; st++ {
		if seen&(1<<uint(st)) == 0 {
			continue
		}
		ns := t.spans[st].Load()
		attributed += ns
		s.StagesMS[st.String()] = float64(ns) / 1e6
	}
	if un := t.total - attributed; un > 0 {
		s.UnattributedMS = float64(un) / 1e6
	}
	return s
}

// WriteText renders summaries as the human view of /debug/requests: one
// block per trace, slowest first, spans in pipeline order.
func WriteText(w io.Writer, summaries []TraceSummary) {
	if len(summaries) == 0 {
		fmt.Fprintln(w, "no retained traces")
		return
	}
	fmt.Fprintf(w, "%d slowest recent requests\n", len(summaries))
	for i, s := range summaries {
		fmt.Fprintf(w, "\n#%d %s %s  status=%d  total=%.3fms  start=%s\n",
			i+1, s.ID, s.Route, s.Status, s.TotalMS, s.Start.Format(time.RFC3339Nano))
		for _, name := range stageNames {
			ms, ok := s.StagesMS[name]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "  %-18s %10.3fms\n", name, ms)
		}
		if s.UnattributedMS > 0 {
			fmt.Fprintf(w, "  %-18s %10.3fms\n", "(unattributed)", s.UnattributedMS)
		}
	}
}
