package dist

import "math"

// Geometric is the number of failures before the first success in Bernoulli
// trials with success probability P (support 0, 1, 2, …). Simulators add 1
// to a draw to get "arrivals consumed until one accepted".
type Geometric struct {
	P float64
}

// Sample draws by inverting the geometric CDF: ⌊log U / log(1−P)⌋. This is
// exact for any P in (0, 1) and O(1) regardless of how small P is — the
// regime that matters when a price is far below the acceptance curve's knee.
func (d Geometric) Sample(r *RNG) int {
	if d.P >= 1 {
		return 0
	}
	if d.P <= 0 {
		return math.MaxInt32 // no success ever; finite sentinel keeps callers' +1 arithmetic safe
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / math.Log1p(-d.P))
}

// Exponential is an exponential distribution with the given Rate (mean
// 1/Rate). The non-homogeneous Poisson thinning loop uses it for
// inter-arrival gaps at the envelope rate.
type Exponential struct {
	Rate float64
}

// Sample draws 1/Rate times a unit exponential (ziggurat via the underlying
// generator). Rate <= 0 returns +Inf: an arrival that never happens.
func (d Exponential) Sample(r *RNG) float64 {
	if d.Rate <= 0 {
		return math.Inf(1)
	}
	return r.ExpFloat64() / d.Rate
}
