// Package dist provides the deterministic random-number source and the
// discrete/continuous samplers used by every simulator, trace generator, and
// solver in the repository.
//
// All randomness flows through RNG, a seeded PCG generator: two runs with the
// same seed produce the same sequence on every platform, which is what makes
// the simulation tests and the paper's figures reproducible. The sampler
// types (Poisson, Binomial, Geometric, Exponential) are plain value structs —
// constructing one allocates nothing, so hot simulation loops can build them
// per draw:
//
//	r := dist.NewRNG(1)
//	arrivals := dist.Poisson{Lambda: 42.5}.Sample(r)
//
// The samplers switch algorithms by parameter regime (inversion for small
// means, transformed rejection for large) so a single code path covers both
// the per-interval arrival counts of the deadline MDP (λ up to thousands)
// and the per-task acceptance draws of the budget simulators (λ near zero).
package dist

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic, seeded random source. It is not safe for
// concurrent use; give each goroutine its own RNG (e.g. derived seeds).
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a generator seeded deterministically from seed. Equal seeds
// yield equal streams across runs and platforms.
func NewRNG(seed int64) *RNG {
	// Spread the (often tiny) user seed over both PCG words so seeds 0, 1,
	// 2, … start in well-separated states.
	s := uint64(seed)
	return &RNG{src: rand.New(rand.NewPCG(splitmix64(s), splitmix64(s^0x9e3779b97f4a7c15)))}
}

// splitmix64 is the standard 64-bit finalizer used to expand a seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return r.src.IntN(n) }

// NormFloat64 returns a standard normal draw.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// ExpFloat64 returns an exponential draw with rate 1.
func (r *RNG) ExpFloat64() float64 { return r.src.ExpFloat64() }

// Normal returns a normal draw with the given mean and standard deviation.
func (r *RNG) Normal(mean, sigma float64) float64 {
	return mean + sigma*r.src.NormFloat64()
}

// Uniform returns a uniform draw in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// Gumbel returns a standard Gumbel(0, 1) draw, the perturbation of the
// random-utility choice model (acceptance curves are logit under i.i.d.
// Gumbel noise).
func (r *RNG) Gumbel() float64 {
	// -log(-log(U)) with U in (0, 1); shift U away from 0 to avoid +Inf.
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return -math.Log(-math.Log(u))
}
