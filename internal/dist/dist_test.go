package dist

import (
	"math"
	"testing"
)

// moments draws n samples and returns their empirical mean and variance.
func moments(n int, draw func() float64) (mean, variance float64) {
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := draw()
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

// checkMoments asserts the empirical mean and variance are within tol
// relative error of the distribution's true moments.
func checkMoments(t *testing.T, name string, gotMean, gotVar, wantMean, wantVar, tol float64) {
	t.Helper()
	if math.Abs(gotMean-wantMean) > tol*math.Max(wantMean, 1) {
		t.Errorf("%s: mean %v, want %v ± %v%%", name, gotMean, wantMean, tol*100)
	}
	if math.Abs(gotVar-wantVar) > 2*tol*math.Max(wantVar, 1) {
		t.Errorf("%s: variance %v, want %v ± %v%%", name, gotVar, wantVar, 2*tol*100)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 42 and 43 collided on %d of 1000 draws", same)
	}
}

func TestSamplerDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		r := NewRNG(seed)
		out := make([]float64, 0, 400)
		for i := 0; i < 100; i++ {
			out = append(out,
				float64(Poisson{Lambda: 97.5}.Sample(r)),
				float64(Binomial{N: 250, P: 0.37}.Sample(r)),
				float64(Geometric{P: 0.08}.Sample(r)),
				Exponential{Rate: 3.5}.Sample(r),
			)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d: %v != %v under the same seed", i, a[i], b[i])
		}
	}
}

func TestUniformBernoulliIntn(t *testing.T) {
	r := NewRNG(1)
	mean, variance := moments(200000, func() float64 { return r.Uniform(2, 6) })
	checkMoments(t, "Uniform(2,6)", mean, variance, 4, 16.0/12, 0.02)

	hits := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3): rate %v", p)
	}
	if r.Bernoulli(0) || !r.Bernoulli(1) {
		t.Error("Bernoulli endpoints wrong")
	}

	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for k, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(10): bucket %d has %d of 100000", k, c)
		}
	}
}

func TestNormalGumbel(t *testing.T) {
	r := NewRNG(2)
	mean, variance := moments(200000, func() float64 { return r.Normal(5, 2) })
	checkMoments(t, "Normal(5,2)", mean, variance, 5, 4, 0.02)

	// Gumbel(0,1): mean γ (Euler–Mascheroni), variance π²/6.
	mean, variance = moments(200000, func() float64 { return r.Gumbel() })
	checkMoments(t, "Gumbel", mean, variance, 0.5772156649, math.Pi*math.Pi/6, 0.02)
}

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(3)
	// Spans the inversion (λ<10) and PTRS (λ>=10) regimes, including a mean
	// past exp(-745)'s underflow point where naive PMF math would break.
	for _, lambda := range []float64{0.3, 2, 9.5, 10.5, 42, 500, 5000, 1e5} {
		draw := func() float64 { return float64(Poisson{Lambda: lambda}.Sample(r)) }
		mean, variance := moments(120000, draw)
		checkMoments(t, "Poisson", mean, variance, lambda, lambda, 0.02)
	}
	if (Poisson{Lambda: 0}).Sample(r) != 0 {
		t.Error("Poisson(0) must be 0")
	}
}

func TestPoissonPMFTail(t *testing.T) {
	for _, lambda := range []float64{0.5, 4, 25, 900} {
		d := Poisson{Lambda: lambda}
		sum := 0.0
		hi := int(lambda + 12*math.Sqrt(lambda) + 10)
		for k := 0; k <= hi; k++ {
			sum += d.PMF(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("λ=%v: PMF sums to %v", lambda, sum)
		}
		// Tail is the complement of the head sum at a few checkpoints.
		for _, n := range []int{1, int(lambda) + 1, hi / 2} {
			head := 0.0
			for k := 0; k < n; k++ {
				head += d.PMF(k)
			}
			if got, want := d.Tail(n), 1-head; math.Abs(got-want) > 1e-9 {
				t.Errorf("λ=%v: Tail(%d) = %v, want %v", lambda, n, got, want)
			}
		}
	}
	// Deep tails must not cancel to zero.
	if got := (Poisson{Lambda: 5}).Tail(40); got <= 0 || got > 1e-20 {
		t.Errorf("Pois(5) Tail(40) = %v, want a tiny positive mass", got)
	}
}

func TestPoissonTruncationPoint(t *testing.T) {
	for _, lambda := range []float64{0.5, 7, 300, 2000} {
		for _, eps := range []float64{1e-6, 1e-9} {
			d := Poisson{Lambda: lambda}
			s0 := d.TruncationPoint(eps)
			if s0 < 1 {
				t.Fatalf("λ=%v: s0 = %d", lambda, s0)
			}
			if tail := d.Tail(s0); tail > eps {
				t.Errorf("λ=%v ε=%v: Tail(s0=%d) = %v exceeds ε", lambda, eps, s0, tail)
			}
			if s0 > 1 {
				if tail := d.Tail(s0 - 1); tail <= eps {
					t.Errorf("λ=%v ε=%v: s0=%d not minimal, Tail(s0-1) = %v", lambda, eps, s0, tail)
				}
			}
		}
	}
	if (Poisson{Lambda: 0}).TruncationPoint(1e-9) != 1 {
		t.Error("λ=0 should truncate at 1")
	}
}

func TestBinomialMoments(t *testing.T) {
	r := NewRNG(4)
	cases := []Binomial{
		{N: 10, P: 0.05},  // inversion, small np
		{N: 40, P: 0.2},   // inversion boundary
		{N: 40, P: 0.8},   // flipped symmetry
		{N: 300, P: 0.37}, // BTRS
		{N: 300, P: 0.63}, // BTRS, flipped
		{N: 5000, P: 0.5}, // large BTRS
	}
	for _, d := range cases {
		draw := func() float64 { return float64(d.Sample(r)) }
		mean, variance := moments(120000, draw)
		n, p := float64(d.N), d.P
		checkMoments(t, "Binomial", mean, variance, n*p, n*p*(1-p), 0.02)
	}
	for i := 0; i < 100; i++ {
		if k := (Binomial{N: 7, P: 0.5}).Sample(r); k < 0 || k > 7 {
			t.Fatalf("Binomial(7,.5) out of support: %d", k)
		}
	}
	if (Binomial{N: 5, P: 0}).Sample(r) != 0 || (Binomial{N: 5, P: 1}).Sample(r) != 5 {
		t.Error("Binomial endpoints wrong")
	}
}

func TestGeometricMoments(t *testing.T) {
	r := NewRNG(5)
	for _, p := range []float64{0.9, 0.5, 0.08, 0.004} {
		draw := func() float64 { return float64(Geometric{P: p}.Sample(r)) }
		mean, variance := moments(150000, draw)
		checkMoments(t, "Geometric", mean, variance, (1-p)/p, (1-p)/(p*p), 0.03)
	}
	if (Geometric{P: 1}).Sample(r) != 0 {
		t.Error("Geometric(1) must be 0")
	}
}

func TestExponentialMoments(t *testing.T) {
	r := NewRNG(6)
	for _, rate := range []float64{0.25, 1, 40} {
		draw := func() float64 { return Exponential{Rate: rate}.Sample(r) }
		mean, variance := moments(150000, draw)
		checkMoments(t, "Exponential", mean, variance, 1/rate, 1/(rate*rate), 0.02)
	}
	if !math.IsInf(Exponential{Rate: 0}.Sample(r), 1) {
		t.Error("Exponential(0) must be +Inf")
	}
}
