package dist

import "math"

// Binomial is a Binomial(N, P) distribution: the number of successes in N
// independent trials with success probability P. The simulators use it for
// "how many of this interval's arrivals accepted the posted price".
type Binomial struct {
	N int
	P float64
}

// Sample draws from the distribution: CDF inversion when the expected count
// is small, Hörmann's BTRS transformed rejection otherwise. Both paths
// exploit the symmetry Bin(n, p) = n − Bin(n, 1−p) to keep p <= 1/2.
func (d Binomial) Sample(r *RNG) int {
	n := d.N
	switch {
	case n <= 0 || d.P <= 0:
		return 0
	case d.P >= 1:
		return n
	}
	p := d.P
	flipped := false
	if p > 0.5 {
		p = 1 - p
		flipped = true
	}
	var k int
	if float64(n)*p < 10 {
		k = binomialInversion(n, p, r)
	} else {
		k = binomialBTRS(n, p, r)
	}
	if flipped {
		return n - k
	}
	return k
}

// binomialInversion walks the CDF from zero using the multiplicative PMF
// recurrence. Expected work O(np); requires p <= 1/2.
func binomialInversion(n int, p float64, r *RNG) int {
	q := 1 - p
	s := p / q
	// pmf(0) = q^n; for p <= 1/2 and np < 10 this stays well above underflow.
	f := math.Pow(q, float64(n))
	cum := f
	u := r.Float64()
	k := 0
	for u > cum && k < n {
		f *= s * float64(n-k) / float64(k+1)
		k++
		cum += f
		if f <= 0 {
			break
		}
	}
	return k
}

// binomialBTRS is the transformed-rejection binomial sampler of Hörmann
// (1993), "The generation of binomial random variates" (algorithm BTRS).
// Requires p <= 1/2 and np >= 10; O(1) expected draws per sample.
func binomialBTRS(n int, p float64, r *RNG) int {
	q := 1 - p
	nf := float64(n)
	spq := math.Sqrt(nf * p * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b
	urvr := 0.86 * vr
	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / q)
	m := math.Floor((nf + 1) * p) // mode
	lgM, _ := math.Lgamma(m + 1)
	lgNM, _ := math.Lgamma(nf - m + 1)
	h := lgM + lgNM
	for {
		v := r.Float64()
		var u float64
		if v <= urvr {
			// Fast acceptance region: no further uniforms needed.
			u = v/vr - 0.43
			return int(math.Floor((2*a/(0.5-math.Abs(u))+b)*u + c))
		}
		if v >= vr {
			u = r.Float64() - 0.5
		} else {
			u = v/vr - 0.93
			u = math.Copysign(0.5, u) - u
			v = r.Float64() * vr
		}
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + c)
		if k < 0 || k > nf {
			continue
		}
		v = v * alpha / (a/(us*us) + b)
		lgK, _ := math.Lgamma(k + 1)
		lgNK, _ := math.Lgamma(nf - k + 1)
		if math.Log(v) <= h-lgK-lgNK+(k-m)*lpq {
			return int(k)
		}
	}
}
