package dist

import "math"

// Poisson is a Poisson distribution with mean Lambda. Lambda <= 0 is the
// degenerate point mass at zero, which the callers use for "no arrivals".
type Poisson struct {
	Lambda float64
}

// PMF returns P(X = k), computed in log space so it stays finite for means
// far beyond exp(-745)'s underflow point.
func (d Poisson) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	if d.Lambda <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(d.Lambda) - d.Lambda - lg)
}

// CDF returns P(X <= k).
func (d Poisson) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	return 1 - d.Tail(k+1)
}

// Tail returns P(X >= n). When n is above the mean the sum is taken over the
// upper tail directly, so tiny tail masses are not lost to cancellation
// against 1.
func (d Poisson) Tail(n int) float64 {
	if n <= 0 {
		return 1
	}
	if d.Lambda <= 0 {
		return 0
	}
	if float64(n) > d.Lambda {
		// Sum upward from n: terms decay geometrically past the mode.
		term := d.PMF(n)
		sum := term
		for k := n + 1; term > 0; k++ {
			term *= d.Lambda / float64(k)
			sum += term
			if term < sum*1e-17 {
				break
			}
		}
		return sum
	}
	// n at or below the mean: the head 0..n-1 is the smaller piece.
	head := 0.0
	term := d.PMF(n - 1)
	head = term
	for k := n - 1; k > 0 && term > 0; k-- {
		term *= float64(k) / d.Lambda
		head += term
	}
	if head >= 1 {
		return 0
	}
	return 1 - head
}

// TruncationPoint returns the smallest s0 >= 1 with P(X >= s0) <= eps — the
// s0 of Section 3.2 that bounds the transition tables of the deadline MDP.
func (d Poisson) TruncationPoint(eps float64) int {
	if d.Lambda <= 0 {
		return 1
	}
	if eps <= 0 {
		eps = 1e-300
	}
	// Accumulate the CDF anchored at the mode so no individual term
	// underflows; stop once the remaining mass is within eps.
	mode := int(d.Lambda)
	anchor := d.PMF(mode)
	cum := anchor
	term := anchor
	for k := mode - 1; k >= 0; k-- {
		term *= float64(k+1) / d.Lambda
		cum += term
		if term < anchor*1e-18 {
			break
		}
	}
	k := mode
	term = anchor
	for 1-cum > eps && term > 0 {
		k++
		term *= d.Lambda / float64(k)
		cum += term
	}
	return k + 1
}

// Sample draws from the distribution: sequential-search inversion for small
// means, Hörmann's PTRS transformed rejection for large ones.
func (d Poisson) Sample(r *RNG) int {
	switch {
	case d.Lambda <= 0:
		return 0
	case d.Lambda < 10:
		return d.sampleInversion(r)
	default:
		return d.samplePTRS(r)
	}
}

// sampleInversion walks the CDF from zero (Devroye's sequential search).
// Expected work is O(λ), so it is reserved for λ < 10 where it beats the
// rejection setup cost and is exact.
func (d Poisson) sampleInversion(r *RNG) int {
	p := math.Exp(-d.Lambda)
	cum := p
	u := r.Float64()
	k := 0
	for u > cum {
		k++
		p *= d.Lambda / float64(k)
		cum += p
		if p <= 0 { // numerically exhausted tail
			break
		}
	}
	return k
}

// samplePTRS is the transformed-rejection sampler of Hörmann (1993),
// "The transformed rejection method for generating Poisson random
// variables". Valid for λ >= 10; O(1) expected draws per sample.
func (d Poisson) samplePTRS(r *RNG) int {
	lam := d.Lambda
	logLam := math.Log(lam)
	b := 0.931 + 2.53*math.Sqrt(lam)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lam + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLam-lam-lg {
			return int(k)
		}
	}
}
