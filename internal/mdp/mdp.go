// Package mdp provides generic Markov Decision Process solvers: exact
// backward induction for finite-horizon problems (the structure behind the
// deadline pricing DP of Section 3) and value iteration for stationary
// problems (the structure behind the deadline/budget trade-off MDPs of
// Section 6). The specialized, optimized DP lives in internal/core; this
// package exists to cross-validate it on small instances and to host the
// Section 6 extensions that do not need the specialized speed-ups.
package mdp

import (
	"errors"
	"math"
)

// Transition is one outcome of taking an action: with probability Prob the
// process moves to state Next paying Cost.
type Transition struct {
	Next int
	Prob float64
	Cost float64
}

// FiniteHorizon describes a finite-horizon MDP with stage-indexed dynamics:
// at stage t in state s, action a yields Transitions(t, s, a). States and
// actions are dense integer indices.
type FiniteHorizon struct {
	// Horizon is the number of decision stages T; decisions happen at
	// stages 0..T-1 and TerminalCost applies at stage T.
	Horizon int
	// States is the number of states.
	States int
	// Actions is the number of actions available in every state.
	Actions int
	// Transitions returns the outcome distribution of action a in state s
	// at stage t. Probabilities should sum to 1; any shortfall is treated
	// as remaining in s at zero cost.
	Transitions func(t, s, a int) []Transition
	// TerminalCost is the cost of ending the horizon in state s.
	TerminalCost func(s int) float64
}

// Policy is a stage-indexed action choice: Action[t][s] is the optimal
// action at stage t in state s, and Value[t][s] the optimal cost-to-go.
type Policy struct {
	Action [][]int
	Value  [][]float64
}

// SolveFiniteHorizon runs exact backward induction and returns the optimal
// policy and value function.
func SolveFiniteHorizon(m FiniteHorizon) (Policy, error) {
	if m.Horizon <= 0 || m.States <= 0 || m.Actions <= 0 {
		return Policy{}, errors.New("mdp: non-positive problem dimensions")
	}
	if m.Transitions == nil || m.TerminalCost == nil {
		return Policy{}, errors.New("mdp: missing Transitions or TerminalCost")
	}
	value := make([][]float64, m.Horizon+1)
	action := make([][]int, m.Horizon)
	value[m.Horizon] = make([]float64, m.States)
	for s := 0; s < m.States; s++ {
		value[m.Horizon][s] = m.TerminalCost(s)
	}
	for t := m.Horizon - 1; t >= 0; t-- {
		value[t] = make([]float64, m.States)
		action[t] = make([]int, m.States)
		next := value[t+1]
		for s := 0; s < m.States; s++ {
			best := math.Inf(1)
			bestA := 0
			for a := 0; a < m.Actions; a++ {
				q := 0.0
				mass := 0.0
				for _, tr := range m.Transitions(t, s, a) {
					q += tr.Prob * (tr.Cost + next[tr.Next])
					mass += tr.Prob
				}
				if mass < 1 {
					// Unassigned mass stays in place at zero cost.
					q += (1 - mass) * next[s]
				}
				if q < best {
					best = q
					bestA = a
				}
			}
			value[t][s] = best
			action[t][s] = bestA
		}
	}
	return Policy{Action: action, Value: value}, nil
}

// Stationary describes an infinite-horizon total-cost MDP with an absorbing
// goal: dynamics do not depend on a stage index and every policy eventually
// reaches a zero-cost absorbing state (a stochastic shortest path problem).
type Stationary struct {
	States  int
	Actions int
	// Transitions returns the outcome distribution of action a in state s.
	// Probabilities should sum to 1; shortfall mass stays in s at zero
	// cost, which models "nothing happened this step" only if an explicit
	// self-loop cost is included in the returned transitions instead.
	Transitions func(s, a int) []Transition
	// Absorbing reports whether s is a zero-cost terminal state.
	Absorbing func(s int) bool
}

// SolveValueIteration solves a stationary total-cost MDP by value iteration
// to the given tolerance, returning per-state optimal values and actions.
// maxIter bounds the number of sweeps.
func SolveValueIteration(m Stationary, tol float64, maxIter int) ([]float64, []int, error) {
	if m.States <= 0 || m.Actions <= 0 {
		return nil, nil, errors.New("mdp: non-positive problem dimensions")
	}
	value := make([]float64, m.States)
	action := make([]int, m.States)
	for iter := 0; iter < maxIter; iter++ {
		delta := 0.0
		for s := 0; s < m.States; s++ {
			if m.Absorbing(s) {
				value[s] = 0
				continue
			}
			best := math.Inf(1)
			bestA := 0
			for a := 0; a < m.Actions; a++ {
				trs := m.Transitions(s, a)
				// Solve for the Q-value treating a self-loop analytically:
				// q = cost + pSelf*q + Σ_other p(c + v(next))
				// ⇒ q = [Σ_other p(cost + v)] / (1 − pSelf) when the
				// self-loop carries per-step cost folded into its entry.
				pSelf := 0.0
				selfCost := 0.0
				rest := 0.0
				for _, tr := range trs {
					if tr.Next == s {
						pSelf += tr.Prob
						selfCost += tr.Prob * tr.Cost
					} else {
						rest += tr.Prob * (tr.Cost + value[tr.Next])
					}
				}
				var q float64
				if pSelf >= 1-1e-12 {
					q = math.Inf(1) // never leaves: infinite total cost
				} else {
					q = (selfCost + rest) / (1 - pSelf)
				}
				if q < best {
					best = q
					bestA = a
				}
			}
			if d := math.Abs(best - value[s]); d > delta {
				delta = d
			}
			value[s] = best
			action[s] = bestA
		}
		if delta < tol {
			return value, action, nil
		}
	}
	return value, action, errors.New("mdp: value iteration did not converge")
}
