package mdp

import (
	"math"
	"testing"
)

// TestFiniteHorizonDeterministicChain: a chain where action 0 costs 2 and
// action 1 costs 3 but terminal cost punishes not advancing.
func TestFiniteHorizonDeterministicChain(t *testing.T) {
	// States 0..3; action a moves s -> s+1 (if possible) at cost a+1 with
	// prob 1 for action 1, prob 0.5 for action 0.
	m := FiniteHorizon{
		Horizon: 3,
		States:  4,
		Actions: 2,
		Transitions: func(_, s, a int) []Transition {
			if s == 3 {
				return []Transition{{Next: 3, Prob: 1, Cost: 0}}
			}
			if a == 1 {
				return []Transition{{Next: s + 1, Prob: 1, Cost: 3}}
			}
			return []Transition{
				{Next: s + 1, Prob: 0.5, Cost: 1},
				{Next: s, Prob: 0.5, Cost: 1},
			}
		},
		TerminalCost: func(s int) float64 {
			return float64(3-s) * 100 // heavy penalty for not reaching 3
		},
	}
	pol, err := SolveFiniteHorizon(m)
	if err != nil {
		t.Fatal(err)
	}
	// With only 3 stages to climb 3 states, the certain action 1 must be
	// chosen everywhere on the critical path.
	if pol.Action[0][0] != 1 {
		t.Errorf("stage 0 state 0 action = %d, want 1", pol.Action[0][0])
	}
	if got, want := pol.Value[0][0], 9.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("value = %v, want %v", got, want)
	}
	// Already-done state pays nothing.
	if pol.Value[0][3] != 0 {
		t.Errorf("value at goal = %v", pol.Value[0][3])
	}
}

// TestFiniteHorizonMatchesHandComputation checks a 1-stage stochastic
// decision against arithmetic done by hand.
func TestFiniteHorizonMatchesHandComputation(t *testing.T) {
	// One stage. State 0. Action 0: stay (terminal cost 10) for free.
	// Action 1: pay 4, then with prob 0.7 reach state 1 (terminal 0),
	// with prob 0.3 stay (terminal 10). Q0 = 10, Q1 = 4 + 0.3*10 = 7.
	m := FiniteHorizon{
		Horizon: 1,
		States:  2,
		Actions: 2,
		Transitions: func(_, s, a int) []Transition {
			if s == 1 || a == 0 {
				return []Transition{{Next: s, Prob: 1}}
			}
			return []Transition{
				{Next: 1, Prob: 0.7, Cost: 4},
				{Next: 0, Prob: 0.3, Cost: 4},
			}
		},
		TerminalCost: func(s int) float64 {
			if s == 0 {
				return 10
			}
			return 0
		},
	}
	pol, err := SolveFiniteHorizon(m)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Action[0][0] != 1 {
		t.Errorf("action = %d, want 1", pol.Action[0][0])
	}
	if math.Abs(pol.Value[0][0]-7) > 1e-9 {
		t.Errorf("value = %v, want 7", pol.Value[0][0])
	}
}

func TestFiniteHorizonShortfallMassStays(t *testing.T) {
	// Transitions returning probability mass < 1 keep the remainder in
	// place at zero cost.
	m := FiniteHorizon{
		Horizon: 1,
		States:  2,
		Actions: 1,
		Transitions: func(_, s, a int) []Transition {
			if s == 0 {
				return []Transition{{Next: 1, Prob: 0.4, Cost: 1}}
			}
			return nil
		},
		TerminalCost: func(s int) float64 {
			if s == 0 {
				return 5
			}
			return 0
		},
	}
	pol, err := SolveFiniteHorizon(m)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.4*1 + 0.6*5
	if math.Abs(pol.Value[0][0]-want) > 1e-9 {
		t.Errorf("value = %v, want %v", pol.Value[0][0], want)
	}
}

func TestFiniteHorizonValidation(t *testing.T) {
	if _, err := SolveFiniteHorizon(FiniteHorizon{}); err == nil {
		t.Error("want error for empty MDP")
	}
}

// TestValueIterationGeometricWait reproduces the analytic expectation of the
// Section 6 fixed-rate MDP: from state n, each step costs α and a task
// completes with probability p, so V(n) = n·α/p with a single action.
func TestValueIterationGeometricWait(t *testing.T) {
	p := 0.2
	alpha := 1.0
	m := Stationary{
		States:  4,
		Actions: 1,
		Transitions: func(s, _ int) []Transition {
			if s == 0 {
				return nil
			}
			return []Transition{
				{Next: s - 1, Prob: p, Cost: alpha},
				{Next: s, Prob: 1 - p, Cost: alpha},
			}
		},
		Absorbing: func(s int) bool { return s == 0 },
	}
	v, _, err := SolveValueIteration(m, 1e-12, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		want := float64(n) * alpha / p
		if math.Abs(v[n]-want) > 1e-6 {
			t.Errorf("V(%d) = %v, want %v", n, v[n], want)
		}
	}
}

// TestValueIterationPicksCheaperAction: two actions with different
// success probabilities and costs; the solver must pick the lower
// expected-total-cost one.
func TestValueIterationPicksCheaperAction(t *testing.T) {
	// Action 0: p=0.5, per-step cost 1 → expected 2 per task.
	// Action 1: p=0.9, per-step cost 2 → expected 2.22 per task.
	m := Stationary{
		States:  3,
		Actions: 2,
		Transitions: func(s, a int) []Transition {
			if s == 0 {
				return nil
			}
			p := 0.5
			cost := 1.0
			if a == 1 {
				p, cost = 0.9, 2.0
			}
			return []Transition{
				{Next: s - 1, Prob: p, Cost: cost},
				{Next: s, Prob: 1 - p, Cost: cost},
			}
		},
		Absorbing: func(s int) bool { return s == 0 },
	}
	v, acts, err := SolveValueIteration(m, 1e-12, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if acts[1] != 0 || acts[2] != 0 {
		t.Errorf("actions = %v, want all 0", acts)
	}
	if math.Abs(v[2]-4) > 1e-6 {
		t.Errorf("V(2) = %v, want 4", v[2])
	}
}

func TestValueIterationAbsorbingSelfLoopInfinite(t *testing.T) {
	// A state that can never leave gets +Inf value rather than divergence.
	m := Stationary{
		States:  2,
		Actions: 1,
		Transitions: func(s, _ int) []Transition {
			if s == 0 {
				return nil
			}
			return []Transition{{Next: 1, Prob: 1, Cost: 1}}
		},
		Absorbing: func(s int) bool { return s == 0 },
	}
	v, _, err := SolveValueIteration(m, 1e-9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(v[1], 1) {
		t.Errorf("V(1) = %v, want +Inf", v[1])
	}
}
