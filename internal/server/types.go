package server

import (
	"encoding/json"
	"fmt"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
)

// LogisticParams is the wire form of the Equation-3 acceptance curve
// p(c) = exp(c/S − B) / (exp(c/S − B) + M). It is the only acceptance
// representation the service accepts: an arbitrary AcceptanceFn has no
// canonical content to hash, and the cache is keyed by content.
type LogisticParams struct {
	S float64 `json:"s"`
	B float64 `json:"b"`
	M float64 `json:"m"`
}

func (l LogisticParams) curve() choice.Logistic {
	return choice.Logistic{S: l.S, B: l.B, M: l.M}
}

// Service-level size limits. The library itself is uncapped, but a shared
// daemon must bound what one request can make it allocate: a deadline
// policy is O(N·Intervals) cells, the DP tables are O(priceRange·N), and
// the exact budget DP is O(N·Budget) space and O(N·Budget·priceRange)
// time. Every limit is far above paper scale (N=200, 72 intervals, C=50).
// Requests beyond a limit are rejected with HTTP 400 before any solver
// work.
const (
	// MaxTasks bounds N for every problem kind.
	MaxTasks = 10_000
	// MaxIntervals bounds the deadline discretization.
	MaxIntervals = 10_000
	// MaxStateCells bounds N·Intervals, the solved deadline policy size.
	MaxStateCells = 1_000_000
	// MaxPriceRange bounds MaxPrice − MinPrice for every problem kind.
	MaxPriceRange = 1_000
	// MaxBudget bounds the budget in cents (hull method).
	MaxBudget = 1_000_000
	// MaxExactTasks and MaxExactBudget bound the pseudo-polynomial exact
	// budget DP, whose cost scales with N·Budget rather than N alone.
	MaxExactTasks  = 500
	MaxExactBudget = 50_000
)

// DeadlineRequest asks for a fixed-deadline dynamic pricing policy
// (Section 3 of the paper): complete N tasks within HorizonHours at minimum
// expected cost. It mirrors core.DeadlineProblem field for field, minus the
// runtime-only Workers knob, which the daemon owns.
type DeadlineRequest struct {
	// N is the number of tasks in the batch.
	N int `json:"n"`
	// HorizonHours is the time before the deadline.
	HorizonHours float64 `json:"horizon_hours"`
	// Intervals is the number of price-change intervals; len(Lambdas) must
	// equal it.
	Intervals int `json:"intervals"`
	// Lambdas[t] is the expected number of worker arrivals in interval t.
	Lambdas []float64 `json:"lambdas"`
	// Accept is the acceptance curve.
	Accept LogisticParams `json:"accept"`
	// MinPrice and MaxPrice bound the price search in cents (inclusive).
	MinPrice int `json:"min_price"`
	MaxPrice int `json:"max_price"`
	// Penalty is the terminal cost per unfinished task; Alpha the optional
	// Section 3.3 surcharge.
	Penalty float64 `json:"penalty"`
	Alpha   float64 `json:"alpha,omitempty"`
	// TruncEps is the Poisson truncation threshold (0 = exact sums).
	TruncEps float64 `json:"trunc_eps,omitempty"`
}

func (r *DeadlineRequest) checkLimits() error {
	switch {
	case r.N > MaxTasks:
		return fmt.Errorf("n %d exceeds the service limit %d", r.N, MaxTasks)
	case r.Intervals > MaxIntervals:
		return fmt.Errorf("intervals %d exceeds the service limit %d", r.Intervals, MaxIntervals)
	case r.N > 0 && r.Intervals > 0 && r.N*r.Intervals > MaxStateCells:
		return fmt.Errorf("n×intervals %d exceeds the service limit %d", r.N*r.Intervals, MaxStateCells)
	case r.MaxPrice-r.MinPrice > MaxPriceRange:
		return fmt.Errorf("price range %d exceeds the service limit %d", r.MaxPrice-r.MinPrice, MaxPriceRange)
	}
	return nil
}

func (r *DeadlineRequest) problem(workers int) *core.DeadlineProblem {
	return &core.DeadlineProblem{
		N:         r.N,
		Horizon:   r.HorizonHours,
		Intervals: r.Intervals,
		Lambdas:   r.Lambdas,
		Accept:    r.Accept.curve(),
		MinPrice:  r.MinPrice,
		MaxPrice:  r.MaxPrice,
		Penalty:   r.Penalty,
		Alpha:     r.Alpha,
		TruncEps:  r.TruncEps,
		Workers:   workers,
	}
}

// Budget solve methods.
const (
	// BudgetMethodHull is Algorithm 3: the near-optimal two-price strategy
	// from the lower convex hull of (c, 1/p(c)). The default.
	BudgetMethodHull = "hull"
	// BudgetMethodExact is the exact pseudo-polynomial DP of Theorem 6.
	BudgetMethodExact = "exact"
)

// BudgetRequest asks for a fixed-budget static price allocation
// (Section 4): complete N tasks within Budget cents while minimizing the
// expected completion time.
type BudgetRequest struct {
	N      int `json:"n"`
	Budget int `json:"budget"`
	// Accept is the acceptance curve.
	Accept LogisticParams `json:"accept"`
	// MinPrice and MaxPrice bound candidate prices in cents (inclusive).
	MinPrice int `json:"min_price"`
	MaxPrice int `json:"max_price"`
	// Method selects the solver: BudgetMethodHull (default) or
	// BudgetMethodExact. The method is part of the cache key — the two
	// solvers may return different (equally valid) allocations.
	Method string `json:"method,omitempty"`
}

func (r *BudgetRequest) checkLimits(method string) error {
	switch {
	case r.N > MaxTasks:
		return fmt.Errorf("n %d exceeds the service limit %d", r.N, MaxTasks)
	case r.Budget > MaxBudget:
		return fmt.Errorf("budget %d exceeds the service limit %d", r.Budget, MaxBudget)
	case r.MaxPrice-r.MinPrice > MaxPriceRange:
		return fmt.Errorf("price range %d exceeds the service limit %d", r.MaxPrice-r.MinPrice, MaxPriceRange)
	}
	if method == BudgetMethodExact {
		if r.N > MaxExactTasks {
			return fmt.Errorf("n %d exceeds the service limit %d for method %q", r.N, MaxExactTasks, method)
		}
		if r.Budget > MaxExactBudget {
			return fmt.Errorf("budget %d exceeds the service limit %d for method %q", r.Budget, MaxExactBudget, method)
		}
	}
	return nil
}

func (r *BudgetRequest) problem() *core.BudgetProblem {
	return &core.BudgetProblem{
		N:        r.N,
		Budget:   r.Budget,
		Accept:   r.Accept.curve(),
		MinPrice: r.MinPrice,
		MaxPrice: r.MaxPrice,
	}
}

func (r *BudgetRequest) method() (string, error) {
	switch r.Method {
	case "", BudgetMethodHull:
		return BudgetMethodHull, nil
	case BudgetMethodExact:
		return BudgetMethodExact, nil
	default:
		return "", fmt.Errorf("unknown budget method %q (want %q or %q)", r.Method, BudgetMethodHull, BudgetMethodExact)
	}
}

// BudgetStrategy is the solved allocation: how many tasks to post at each
// price, with the headline statistics precomputed server-side.
type BudgetStrategy struct {
	// Counts maps price in cents to the number of tasks at that price; by
	// Theorem 7 at most two prices appear.
	Counts map[int]int `json:"counts"`
	// TotalCost is the committed spend Σ c·n_c in cents.
	TotalCost int `json:"total_cost"`
	// ExpectedWorkerArrivals is E[W] = Σ 1/p(cᵢ) (Theorem 5), the quantity
	// every budget strategy minimizes.
	ExpectedWorkerArrivals float64 `json:"expected_worker_arrivals"`
}

// Trade-off formulations.
const (
	// TradeoffWorkerArrival transitions per worker arrival under the
	// Section 4.2.2 linearity assumption. The default.
	TradeoffWorkerArrival = "worker_arrival"
	// TradeoffFixedRate assumes a constant rate and unit-time steps small
	// enough that at most one task completes per step.
	TradeoffFixedRate = "fixed_rate"
)

// TradeoffRequest asks for the stationary policy minimizing the Section 6
// combined objective E(cost) + Alpha·E(latency), with neither a hard
// deadline nor a hard budget.
type TradeoffRequest struct {
	N int `json:"n"`
	// Alpha is the latency weight in cost units per hour.
	Alpha float64 `json:"alpha"`
	// Lambda is the average worker arrival rate per hour.
	Lambda float64 `json:"lambda"`
	// Accept is the acceptance curve.
	Accept LogisticParams `json:"accept"`
	// MinPrice and MaxPrice bound the price search in cents (inclusive).
	MinPrice int `json:"min_price"`
	MaxPrice int `json:"max_price"`
	// Formulation selects TradeoffWorkerArrival (default) or
	// TradeoffFixedRate; like the budget method it is part of the cache key.
	Formulation string `json:"formulation,omitempty"`
}

func (r *TradeoffRequest) checkLimits() error {
	switch {
	case r.N > MaxTasks:
		return fmt.Errorf("n %d exceeds the service limit %d", r.N, MaxTasks)
	case r.MaxPrice-r.MinPrice > MaxPriceRange:
		return fmt.Errorf("price range %d exceeds the service limit %d", r.MaxPrice-r.MinPrice, MaxPriceRange)
	}
	return nil
}

func (r *TradeoffRequest) problem() *core.TradeoffProblem {
	return &core.TradeoffProblem{
		N:        r.N,
		Alpha:    r.Alpha,
		Lambda:   r.Lambda,
		Accept:   r.Accept.curve(),
		MinPrice: r.MinPrice,
		MaxPrice: r.MaxPrice,
	}
}

func (r *TradeoffRequest) formulation() (string, error) {
	switch r.Formulation {
	case "", TradeoffWorkerArrival:
		return TradeoffWorkerArrival, nil
	case TradeoffFixedRate:
		return TradeoffFixedRate, nil
	default:
		return "", fmt.Errorf("unknown tradeoff formulation %q (want %q or %q)", r.Formulation, TradeoffWorkerArrival, TradeoffFixedRate)
	}
}

// TradeoffSchedule is the solved stationary policy: Price[n] is the reward
// to post while n tasks remain, Value[n] the optimal expected remaining
// objective.
type TradeoffSchedule struct {
	Price []int     `json:"price"`
	Value []float64 `json:"value"`
}

// SolveResponse is the envelope every solve endpoint returns. Result holds
// the solved artifact exactly as cached — a core.DeadlinePolicy JSON
// document for deadline requests, a BudgetStrategy for budget requests, a
// TradeoffSchedule for trade-off requests — so concurrent and repeated
// requests for the same problem receive byte-identical artifacts.
type SolveResponse struct {
	// Kind is "deadline", "budget", or "tradeoff".
	Kind string `json:"kind"`
	// Fingerprint identifies the solved artifact: the solver variant plus
	// the canonical content hash of the problem (core.*.Fingerprint). Equal
	// problems always map to equal fingerprints, across processes and runs.
	Fingerprint string `json:"fingerprint"`
	// CacheHit reports whether the artifact was served from the warm cache
	// without waiting on any solver.
	CacheHit bool `json:"cache_hit"`
	// SolveMillis is the time this request spent waiting for the solver
	// (the full solve for the caller that ran it, the residual wait for
	// callers deduplicated onto it). Zero on a warm cache hit.
	SolveMillis float64 `json:"solve_ms"`
	// Result is the solved artifact; decode it with DecodePolicy,
	// DecodeBudget, or DecodeTradeoff according to Kind.
	Result json.RawMessage `json:"result"`
}

// DecodePolicy decodes a deadline Result into a solved policy ready for
// PriceAt / Evaluate.
func (r *SolveResponse) DecodePolicy() (*core.DeadlinePolicy, error) {
	if r.Kind != KindDeadline {
		return nil, fmt.Errorf("server: DecodePolicy on %q response", r.Kind)
	}
	var pol core.DeadlinePolicy
	if err := json.Unmarshal(r.Result, &pol); err != nil {
		return nil, err
	}
	return &pol, nil
}

// DecodeBudget decodes a budget Result.
func (r *SolveResponse) DecodeBudget() (*BudgetStrategy, error) {
	if r.Kind != KindBudget {
		return nil, fmt.Errorf("server: DecodeBudget on %q response", r.Kind)
	}
	var s BudgetStrategy
	if err := json.Unmarshal(r.Result, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// DecodeTradeoff decodes a trade-off Result.
func (r *SolveResponse) DecodeTradeoff() (*TradeoffSchedule, error) {
	if r.Kind != KindTradeoff {
		return nil, fmt.Errorf("server: DecodeTradeoff on %q response", r.Kind)
	}
	var s TradeoffSchedule
	if err := json.Unmarshal(r.Result, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// Response kinds.
const (
	KindDeadline = "deadline"
	KindBudget   = "budget"
	KindTradeoff = "tradeoff"
)

// BatchRequest solves many problems in one round trip. The items run
// concurrently on the daemon, and duplicates — within the batch or against
// other in-flight requests — are deduplicated by the same fingerprint
// machinery as the single endpoints.
type BatchRequest struct {
	Deadline []DeadlineRequest `json:"deadline,omitempty"`
	Budget   []BudgetRequest   `json:"budget,omitempty"`
	Tradeoff []TradeoffRequest `json:"tradeoff,omitempty"`
}

// BatchResult is the per-item outcome: exactly one of Response or Error is
// set. A failed item never fails the batch.
type BatchResult struct {
	Response *SolveResponse `json:"response,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// BatchResponse mirrors BatchRequest positionally: Deadline[i] answers
// request Deadline[i], and so on.
type BatchResponse struct {
	Deadline []BatchResult `json:"deadline,omitempty"`
	Budget   []BatchResult `json:"budget,omitempty"`
	Tradeoff []BatchResult `json:"tradeoff,omitempty"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}
