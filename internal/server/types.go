package server

import (
	"encoding/json"
	"fmt"

	"crowdpricing/internal/core"
	"crowdpricing/internal/kinds"
)

// The wire-level problem specifications live in internal/kinds (one Spec
// implementation per problem kind, registered with the engine's registry);
// this file re-exports them under their historical server names so existing
// callers keep compiling, and defines the server-owned envelope types
// (SolveResponse, batch requests) that wrap any kind generically.

// LogisticParams is the wire form of the Equation-3 acceptance curve.
type LogisticParams = kinds.LogisticParams

// DeadlineRequest asks for a fixed-deadline dynamic pricing policy
// (Section 3).
type DeadlineRequest = kinds.DeadlineRequest

// BudgetRequest asks for a fixed-budget static allocation (Section 4).
type BudgetRequest = kinds.BudgetRequest

// TradeoffRequest asks for a cost/latency trade-off policy (Section 6).
type TradeoffRequest = kinds.TradeoffRequest

// MultiRequest asks for the general-k multi-type joint pricing policy
// (Section 6 extension).
type MultiRequest = kinds.MultiRequest

// BudgetStrategy is the solved budget allocation on the wire.
type BudgetStrategy = kinds.BudgetStrategy

// TradeoffSchedule is the solved trade-off policy on the wire.
type TradeoffSchedule = kinds.TradeoffSchedule

// MultiSchedule is the solved general-k multi-type policy on the wire.
type MultiSchedule = kinds.MultiSchedule

// Problem kinds, as they appear in /v1/solve/{kind} routes and responses.
const (
	KindDeadline = kinds.KindDeadline
	KindBudget   = kinds.KindBudget
	KindTradeoff = kinds.KindTradeoff
	KindMulti    = kinds.KindMulti
)

// Budget solve methods.
const (
	BudgetMethodHull  = kinds.BudgetMethodHull
	BudgetMethodExact = kinds.BudgetMethodExact
)

// Trade-off formulations.
const (
	TradeoffWorkerArrival = kinds.TradeoffWorkerArrival
	TradeoffFixedRate     = kinds.TradeoffFixedRate
)

// Service-level size limits (see internal/kinds for the rationale).
const (
	MaxTasks       = kinds.MaxTasks
	MaxIntervals   = kinds.MaxIntervals
	MaxStateCells  = kinds.MaxStateCells
	MaxPriceRange  = kinds.MaxPriceRange
	MaxBudget      = kinds.MaxBudget
	MaxExactTasks  = kinds.MaxExactTasks
	MaxExactBudget = kinds.MaxExactBudget
)

// SolveResponse is the envelope every solve endpoint returns. Result holds
// the solved artifact exactly as cached — a core.DeadlinePolicy JSON
// document for deadline requests, a BudgetStrategy for budget requests, and
// so on — so concurrent and repeated requests for the same problem receive
// byte-identical artifacts.
type SolveResponse struct {
	// Kind is the problem kind that produced Result ("deadline", "budget",
	// "tradeoff", "multi", …).
	Kind string `json:"kind"`
	// Fingerprint identifies the solved artifact: the solver variant plus
	// the canonical content hash of the problem (core.*.Fingerprint). Equal
	// problems always map to equal fingerprints, across processes and runs.
	Fingerprint string `json:"fingerprint"`
	// CacheHit reports whether the artifact was served from the warm cache
	// without waiting on any solver.
	CacheHit bool `json:"cache_hit"`
	// SolveMillis is the time this request spent waiting for the solver
	// (the full solve for the caller that ran it, the residual wait for
	// callers deduplicated onto it). Zero on a warm cache hit.
	SolveMillis float64 `json:"solve_ms"`
	// Result is the solved artifact; decode it with Decode (any kind) or
	// the typed DecodePolicy / DecodeBudget / DecodeTradeoff helpers.
	Result json.RawMessage `json:"result"`
}

// Decode unmarshals the solved artifact into v — the kind-generic path
// (e.g. a *MultiSchedule for "multi" responses).
func (r *SolveResponse) Decode(v any) error {
	return json.Unmarshal(r.Result, v)
}

// DecodePolicy decodes a deadline Result into a solved policy ready for
// PriceAt / Evaluate.
func (r *SolveResponse) DecodePolicy() (*core.DeadlinePolicy, error) {
	if r.Kind != KindDeadline {
		return nil, fmt.Errorf("server: DecodePolicy on %q response", r.Kind)
	}
	var pol core.DeadlinePolicy
	if err := json.Unmarshal(r.Result, &pol); err != nil {
		return nil, err
	}
	return &pol, nil
}

// DecodeBudget decodes a budget Result.
func (r *SolveResponse) DecodeBudget() (*BudgetStrategy, error) {
	if r.Kind != KindBudget {
		return nil, fmt.Errorf("server: DecodeBudget on %q response", r.Kind)
	}
	var s BudgetStrategy
	if err := json.Unmarshal(r.Result, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// DecodeTradeoff decodes a trade-off Result.
func (r *SolveResponse) DecodeTradeoff() (*TradeoffSchedule, error) {
	if r.Kind != KindTradeoff {
		return nil, fmt.Errorf("server: DecodeTradeoff on %q response", r.Kind)
	}
	var s TradeoffSchedule
	if err := json.Unmarshal(r.Result, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// BatchItem is one problem of any registered kind inside a batch: the kind
// name plus its request body verbatim. New kinds are batchable through
// Items with zero server changes.
type BatchItem struct {
	Kind    string          `json:"kind"`
	Request json.RawMessage `json:"request"`
}

// BatchRequest solves many problems in one round trip. The items run
// concurrently on the daemon, and duplicates — within the batch or against
// other in-flight requests — are deduplicated by the same fingerprint
// machinery as the single endpoints. The typed Deadline/Budget/Tradeoff
// arrays predate the kind registry and remain supported; Items carries any
// registered kind.
type BatchRequest struct {
	Deadline []DeadlineRequest `json:"deadline,omitempty"`
	Budget   []BudgetRequest   `json:"budget,omitempty"`
	Tradeoff []TradeoffRequest `json:"tradeoff,omitempty"`
	Items    []BatchItem       `json:"items,omitempty"`
}

// BatchResult is the per-item outcome: exactly one of Response or Error is
// set. A failed item never fails the batch.
type BatchResult struct {
	Response *SolveResponse `json:"response,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// BatchResponse mirrors BatchRequest positionally: Deadline[i] answers
// request Deadline[i], Items[i] answers Items[i], and so on.
type BatchResponse struct {
	Deadline []BatchResult `json:"deadline,omitempty"`
	Budget   []BatchResult `json:"budget,omitempty"`
	Tradeoff []BatchResult `json:"tradeoff,omitempty"`
	Items    []BatchResult `json:"items,omitempty"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}
