package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"crowdpricing/internal/campaign"
	"crowdpricing/internal/engine"
	"crowdpricing/internal/telemetry"
)

// The campaign API is the service's stateful surface: where /v1/solve/*
// returns a whole policy for the caller to execute, a campaign keeps the
// policy and the execution state server-side and answers "what should I pay
// right now" in O(1). Lifecycle:
//
//	POST   /v1/campaigns               create (solves, or reuses, the policy)
//	POST   /v1/campaigns/{id}/observe  record one interval's arrivals/completions
//	GET    /v1/campaigns/{id}/price    quote the current price  (the hot path)
//	GET    /v1/campaigns/{id}          read state without touching it
//	DELETE /v1/campaigns/{id}          finish, returning the summary
//
// The implementation lives in internal/campaign; this file is the wire
// layer: request/response envelopes, routes, and the error → status map.

// CampaignAdaptiveOptions enables §5.2.5 adaptive re-planning on a deadline
// campaign; zero fields pick the defaults (factors 0.5…1.5, window 9).
type CampaignAdaptiveOptions = campaign.AdaptiveOptions

// CampaignState is a campaign's current view, returned by create, observe,
// and state reads.
type CampaignState = campaign.State

// CampaignQuote is one priced lookup from a live campaign.
type CampaignQuote = campaign.Quote

// CampaignSummary is the terminal accounting returned by finish.
type CampaignSummary = campaign.Summary

// CreateCampaignRequest registers a new campaign: a problem kind with a
// sequential price table (deadline, tradeoff, or multi — budget strategies
// are static and have no notion of "the current price"), the kind's wire
// request verbatim, and optionally the adaptive controller.
type CreateCampaignRequest struct {
	// Kind is the registry kind name, e.g. "deadline".
	Kind string `json:"kind"`
	// Request is the kind's solve request body, exactly as /v1/solve/{kind}
	// would take it.
	Request json.RawMessage `json:"request"`
	// Adaptive enables adaptive re-planning (deadline campaigns only).
	Adaptive *CampaignAdaptiveOptions `json:"adaptive,omitempty"`
}

// FlexCounts is a per-type count vector that also accepts a bare integer on
// the wire — the common single-type case reads naturally as
// {"completed": 3} while multi campaigns send {"completed": [1, 2]}.
type FlexCounts []int

// UnmarshalJSON accepts an int, an array of ints, or null.
func (f *FlexCounts) UnmarshalJSON(data []byte) error {
	data = bytes.TrimSpace(data)
	if len(data) == 0 || string(data) == "null" {
		*f = nil
		return nil
	}
	if data[0] == '[' {
		return json.Unmarshal(data, (*[]int)(f))
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("completed must be an integer or an array of integers: %w", err)
	}
	*f = FlexCounts{n}
	return nil
}

// CampaignObserveRequest records one elapsed interval.
type CampaignObserveRequest struct {
	// Arrivals is the number of marketplace worker arrivals observed in the
	// interval (observable on trackers like mturk-tracker, per §2.1).
	Arrivals float64 `json:"arrivals"`
	// Completed is how many tasks were completed this interval — a bare
	// integer for single-type campaigns, an array (one entry per type) for
	// multi. Omitted means none.
	Completed FlexCounts `json:"completed,omitempty"`
}

// Campaigns exposes the campaign manager for embedding applications (and
// cmd/priced's snapshot/restore); HTTP callers use the /v1/campaigns API.
func (s *Server) Campaigns() *campaign.Manager { return s.campaigns }

// counted wraps a campaign handler with the request counter (the method
// check lives in the route pattern, unlike the legacy solve routes).
func (s *Server) counted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		h(w, r)
	}
}

// respondCampaign maps a campaign outcome to HTTP: unknown IDs are 404,
// malformed requests and unsupported kinds 400, a full campaign table or
// solve queue 429 backpressure, timeouts 504.
func (s *Server) respondCampaign(w http.ResponseWriter, v any, err error) {
	switch {
	case err == nil:
		s.ok(w, v)
	case errors.Is(err, campaign.ErrNotFound):
		s.fail(w, http.StatusNotFound, err)
	case errors.Is(err, campaign.ErrUnsupportedKind),
		errors.Is(err, campaign.ErrAdaptiveUnsupported),
		errors.Is(err, campaign.ErrBadInput),
		engine.IsInvalidSpec(err):
		s.fail(w, http.StatusBadRequest, err)
	case errors.Is(err, campaign.ErrTableFull), errors.Is(err, engine.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.fail(w, http.StatusGatewayTimeout, errors.New("campaign solve timed out; the policy is still being computed, retry the create"))
	default:
		s.fail(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleCampaignCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateCampaignRequest
	if err := decodeInto(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.Kind == "" || len(req.Request) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New(`create needs "kind" and "request"`))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	st, err := s.campaigns.Create(ctx, req.Kind, req.Request, req.Adaptive)
	s.respondCampaign(w, st, err)
}

func (s *Server) handleCampaignObserve(w http.ResponseWriter, r *http.Request) {
	var req CampaignObserveRequest
	if err := decodeInto(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.campaigns.ObserveTraced(telemetry.FromContext(r.Context()),
		r.PathValue("id"), req.Arrivals, req.Completed)
	s.respondCampaign(w, st, err)
}

func (s *Server) handleCampaignPrice(w http.ResponseWriter, r *http.Request) {
	q, err := s.campaigns.QuoteTraced(telemetry.FromContext(r.Context()), r.PathValue("id"))
	s.respondCampaign(w, q, err)
}

func (s *Server) handleCampaignState(w http.ResponseWriter, r *http.Request) {
	st, err := s.campaigns.State(r.PathValue("id"))
	s.respondCampaign(w, st, err)
}

func (s *Server) handleCampaignFinish(w http.ResponseWriter, r *http.Request) {
	sum, err := s.campaigns.Finish(r.PathValue("id"))
	s.respondCampaign(w, sum, err)
}
