package server

import "sync"

// flightGroup deduplicates concurrent work per key, in the style of
// golang.org/x/sync/singleflight (reimplemented here because the module
// takes no dependencies outside the standard library): while a call for a
// key is in flight, later callers for the same key block on its completion
// and share its result instead of repeating the work. Combined with the
// fingerprint-keyed cache, N simultaneous identical solve requests cost
// exactly one backward induction.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// Do runs fn once per key among concurrent callers and returns its result to
// all of them. shared reports whether this caller joined an in-flight call
// rather than executing fn itself. fn must not panic: a panic would leave
// the call registered and its done channel open, hanging every later caller
// for the key — Server.solve recovers inside its fn for exactly this
// reason.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
