package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/engine"
	"crowdpricing/internal/exp"
)

// testAccept is the Paper13 curve on the wire.
var testAccept = LogisticParams{S: choice.Paper13.S, B: choice.Paper13.B, M: choice.Paper13.M}

// testDeadlineRequest is sized so a cold solve takes long enough for real
// request overlap but keeps the suite fast.
func testDeadlineRequest() DeadlineRequest {
	lambdas := make([]float64, 24)
	for i := range lambdas {
		lambdas[i] = 80
	}
	return DeadlineRequest{
		N:            120,
		HorizonHours: 8,
		Intervals:    24,
		Lambdas:      lambdas,
		Accept:       testAccept,
		MinPrice:     1,
		MaxPrice:     40,
		Penalty:      300,
		TruncEps:     1e-9,
	}
}

func testBudgetRequest() BudgetRequest {
	return BudgetRequest{N: 100, Budget: 2500, Accept: testAccept, MinPrice: 1, MaxPrice: 50}
}

func testTradeoffRequest() TradeoffRequest {
	return TradeoffRequest{N: 50, Alpha: 10, Lambda: 200, Accept: testAccept, MinPrice: 1, MaxPrice: 50}
}

func testMultiRequest() MultiRequest {
	return MultiRequest{
		Counts:    []int{3, 2},
		Intervals: 4,
		Lambdas:   []float64{30, 30, 30, 30},
		Accepts:   []LogisticParams{testAccept, {S: 12, B: -0.4, M: 1500}},
		MinPrice:  1,
		MaxPrice:  6,
		Penalty:   100,
		TruncEps:  1e-9,
	}
}

func newTestServer(t testing.TB, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

// TestSingleflightDedup is the service's core claim: 50 concurrent
// identical deadline requests perform exactly one solve, and every caller
// receives a byte-identical policy. Run under -race in CI.
func TestSingleflightDedup(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)
	req := testDeadlineRequest()

	const callers = 50
	responses := make([]*SolveResponse, callers)
	errs := make([]error, callers)
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			responses[i], errs[i] = client.SolveDeadline(context.Background(), req)
		}(i)
	}
	start.Done()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	m := s.Metrics()
	if m.Solves != 1 {
		t.Errorf("performed %d solves for %d identical requests, want exactly 1", m.Solves, callers)
	}
	// Whether a given caller hit the warm cache or joined the in-flight
	// solve depends on timing; together they must account for all but the
	// one request that ran the solver.
	if got := m.CacheHits + m.SingleflightShared; got != callers-1 {
		t.Errorf("cache hits (%d) + singleflight joins (%d) = %d, want %d",
			m.CacheHits, m.SingleflightShared, got, callers-1)
	}
	first := responses[0]
	for i, r := range responses {
		if !bytes.Equal(r.Result, first.Result) {
			t.Fatalf("caller %d received a different policy than caller 0", i)
		}
		if r.Fingerprint != first.Fingerprint {
			t.Errorf("caller %d fingerprint %q != %q", i, r.Fingerprint, first.Fingerprint)
		}
	}
	// The artifact must decode into a usable policy.
	pol, err := first.DecodePolicy()
	if err != nil {
		t.Fatal(err)
	}
	if pol.PriceAt(req.N, 0) < req.MinPrice || pol.PriceAt(req.N, 0) > req.MaxPrice {
		t.Errorf("decoded policy price %d outside [%d, %d]", pol.PriceAt(req.N, 0), req.MinPrice, req.MaxPrice)
	}
}

// TestWarmHitIsCached proves the second identical request is served from
// cache without touching the solver.
func TestWarmHitIsCached(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)
	req := testDeadlineRequest()

	cold, err := client.SolveDeadline(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if cold.SolveMillis <= 0 {
		t.Error("cold solve reported zero solve time")
	}
	warm, err := client.SolveDeadline(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("second request missed the cache")
	}
	if warm.SolveMillis != 0 {
		t.Errorf("warm hit reported solve time %v ms", warm.SolveMillis)
	}
	if !bytes.Equal(cold.Result, warm.Result) {
		t.Error("warm policy differs from cold policy")
	}
	if m := s.Metrics(); m.Solves != 1 || m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Errorf("metrics = %+v, want 1 solve, 1 hit, 1 miss", m)
	}
}

// TestDistinctProblemsSolveSeparately guards against over-deduplication:
// different problems must never share cache entries.
func TestDistinctProblemsSolveSeparately(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)
	a := testDeadlineRequest()
	b := testDeadlineRequest()
	b.Penalty = 301 // any field flip is a different artifact

	ra, err := client.SolveDeadline(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := client.SolveDeadline(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Fingerprint == rb.Fingerprint {
		t.Error("distinct problems share a fingerprint")
	}
	if m := s.Metrics(); m.Solves != 2 {
		t.Errorf("performed %d solves for 2 distinct problems, want 2", m.Solves)
	}
}

func TestBudgetEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)

	hull, err := client.SolveBudget(context.Background(), testBudgetRequest())
	if err != nil {
		t.Fatal(err)
	}
	strat, err := hull.DecodeBudget()
	if err != nil {
		t.Fatal(err)
	}
	total, tasks := 0, 0
	for price, count := range strat.Counts {
		total += price * count
		tasks += count
	}
	if tasks != 100 {
		t.Errorf("allocation covers %d tasks, want 100", tasks)
	}
	if total > 2500 {
		t.Errorf("allocation spends %dc, budget is 2500c", total)
	}
	if total != strat.TotalCost {
		t.Errorf("TotalCost %d != recomputed %d", strat.TotalCost, total)
	}
	if len(strat.Counts) > 2 {
		t.Errorf("hull strategy uses %d prices, Theorem 7 says at most 2", len(strat.Counts))
	}

	// The exact DP is a distinct artifact with its own cache key, and can
	// only match or beat the hull's E[W].
	exactReq := testBudgetRequest()
	exactReq.Method = BudgetMethodExact
	exact, err := client.SolveBudget(context.Background(), exactReq)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Fingerprint == hull.Fingerprint {
		t.Error("hull and exact share a cache key")
	}
	exactStrat, err := exact.DecodeBudget()
	if err != nil {
		t.Fatal(err)
	}
	if exactStrat.ExpectedWorkerArrivals > strat.ExpectedWorkerArrivals+1e-9 {
		t.Errorf("exact E[W] %.3f worse than hull %.3f",
			exactStrat.ExpectedWorkerArrivals, strat.ExpectedWorkerArrivals)
	}
}

func TestTradeoffEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)
	resp, err := client.SolveTradeoff(context.Background(), testTradeoffRequest())
	if err != nil {
		t.Fatal(err)
	}
	sched, err := resp.DecodeTradeoff()
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Price) != 51 || len(sched.Value) != 51 {
		t.Fatalf("schedule has %d/%d rows, want 51/51", len(sched.Price), len(sched.Value))
	}
	for n := 1; n <= 50; n++ {
		if sched.Value[n] <= sched.Value[n-1] {
			t.Fatalf("value not increasing at n=%d", n)
		}
	}
}

// TestBatchDedup: a batch holding the same deadline problem three times
// plus a budget and a tradeoff item costs exactly three solves.
func TestBatchDedup(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)
	dreq := testDeadlineRequest()
	batch := BatchRequest{
		Deadline: []DeadlineRequest{dreq, dreq, dreq},
		Budget:   []BudgetRequest{testBudgetRequest()},
		Tradeoff: []TradeoffRequest{testTradeoffRequest()},
	}
	resp, err := client.SolveBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Deadline) != 3 || len(resp.Budget) != 1 || len(resp.Tradeoff) != 1 {
		t.Fatalf("batch shape %d/%d/%d, want 3/1/1", len(resp.Deadline), len(resp.Budget), len(resp.Tradeoff))
	}
	for i, r := range resp.Deadline {
		if r.Error != "" {
			t.Fatalf("deadline[%d]: %s", i, r.Error)
		}
		if !bytes.Equal(r.Response.Result, resp.Deadline[0].Response.Result) {
			t.Errorf("deadline[%d] policy differs within the batch", i)
		}
	}
	if resp.Budget[0].Error != "" || resp.Tradeoff[0].Error != "" {
		t.Fatalf("batch items failed: %q %q", resp.Budget[0].Error, resp.Tradeoff[0].Error)
	}
	if m := s.Metrics(); m.Solves != 3 {
		t.Errorf("batch performed %d solves, want 3 (1 deadline + 1 budget + 1 tradeoff)", m.Solves)
	}

	// A bad item fails alone, not the batch.
	bad := testDeadlineRequest()
	bad.N = 0
	mixed, err := client.SolveBatch(context.Background(), BatchRequest{
		Deadline: []DeadlineRequest{bad, dreq},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Deadline[0].Error == "" {
		t.Error("invalid batch item reported no error")
	}
	if mixed.Deadline[1].Error != "" || mixed.Deadline[1].Response == nil {
		t.Error("valid batch item was dragged down by the invalid one")
	}
	if !mixed.Deadline[1].Response.CacheHit {
		t.Error("repeated problem in second batch missed the cache")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	post := func(path, body string) *http.Response {
		res, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { res.Body.Close() })
		return res
	}
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"malformed json", "/v1/solve/deadline", "{", http.StatusBadRequest},
		{"unknown field", "/v1/solve/deadline", `{"bogus": 1}`, http.StatusBadRequest},
		{"invalid problem", "/v1/solve/deadline", `{"n": 0, "horizon_hours": 1, "intervals": 1, "lambdas": [1], "accept": {"s": 15, "b": 0, "m": 2000}, "min_price": 1, "max_price": 5}`, http.StatusBadRequest},
		{"bad budget method", "/v1/solve/budget", `{"n": 10, "budget": 100, "accept": {"s": 15, "b": 0, "m": 2000}, "min_price": 1, "max_price": 5, "method": "magic"}`, http.StatusBadRequest},
		{"bad tradeoff formulation", "/v1/solve/tradeoff", `{"n": 10, "alpha": 1, "lambda": 10, "accept": {"s": 15, "b": 0, "m": 2000}, "min_price": 1, "max_price": 5, "formulation": "magic"}`, http.StatusBadRequest},
		{"empty batch", "/v1/solve/batch", `{}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if res := post(tc.path, tc.body); res.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, res.StatusCode, tc.want)
		}
	}
	// Wrong method.
	res, err := http.Get(ts.URL + "/v1/solve/deadline")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on solve endpoint: status %d, want 405", res.StatusCode)
	}
}

// TestServiceLimits: oversized problems are rejected up front with 400
// instead of being allowed to allocate solver state.
func TestServiceLimits(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)
	ctx := context.Background()

	huge := testDeadlineRequest()
	huge.N = MaxTasks + 1
	if _, err := client.SolveDeadline(ctx, huge); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("oversized N: err = %v, want 400", err)
	}
	cells := testDeadlineRequest()
	cells.N = 2000
	cells.Intervals = 1000
	cells.Lambdas = make([]float64, 1000)
	for i := range cells.Lambdas {
		cells.Lambdas[i] = 1
	}
	if _, err := client.SolveDeadline(ctx, cells); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("oversized N×intervals: err = %v, want 400", err)
	}
	exact := testBudgetRequest()
	exact.Method = BudgetMethodExact
	exact.Budget = MaxExactBudget + 1
	if _, err := client.SolveBudget(ctx, exact); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("oversized exact budget: err = %v, want 400", err)
	}
	wide := testTradeoffRequest()
	wide.MaxPrice = wide.MinPrice + MaxPriceRange + 1
	if _, err := client.SolveTradeoff(ctx, wide); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("oversized price range: err = %v, want 400", err)
	}
	// No limit rejection ran a solver or occupied a cache slot.
	if m := s.Metrics(); m.Solves != 0 || m.CacheEntries != 0 {
		t.Errorf("metrics after rejections = %+v, want 0 solves and 0 cache entries", m)
	}

	// A batch over MaxBatchItems is rejected whole.
	over := make([]BudgetRequest, MaxBatchItems+1)
	for i := range over {
		over[i] = testBudgetRequest()
	}
	if _, err := client.SolveBatch(ctx, BatchRequest{Budget: over}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("oversized batch: err = %v, want 400", err)
	}
}

// stubSpec is a controllable problem kind for exercising the server's
// engine integration (panics, blocking solves) over real HTTP.
type stubSpec struct {
	ID    string `json:"id"`
	Panic bool   `json:"panic,omitempty"`
	Block bool   `json:"block,omitempty"`

	gate chan struct{}
}

func (s *stubSpec) Kind() string { return "stub" }
func (s *stubSpec) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("stub: empty id")
	}
	return nil
}
func (s *stubSpec) Fingerprint() (string, error) {
	if err := s.Validate(); err != nil {
		return "", err
	}
	return "stub/test:" + s.ID, nil
}
func (s *stubSpec) Solve(ctx context.Context) ([]byte, error) {
	if s.Block && s.gate != nil {
		<-s.gate
	}
	if s.Panic {
		panic("boom")
	}
	return []byte(`{"ok":"` + s.ID + `"}`), nil
}

// stubRegistry serves only the stub kind; gate is shared by every decoded
// spec so tests can wedge the engine deterministically.
func stubRegistry(gate chan struct{}) *engine.Registry {
	reg := engine.NewRegistry()
	reg.Register(engine.KindDef{
		Kind: "stub",
		New:  func() engine.Spec { return &stubSpec{gate: gate} },
	})
	return reg
}

// TestSolverPanicIsContained: a request that panics the solver layer must
// answer 500, not kill the daemon, and must release the singleflight entry
// so the key stays usable.
func TestSolverPanicIsContained(t *testing.T) {
	_, ts := newTestServer(t, Options{Registry: stubRegistry(nil)})
	res, err := http.Post(ts.URL+"/v1/solve/stub", "application/json",
		strings.NewReader(`{"id":"x","panic":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking solve: status %d, want 500", res.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(res.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "solver panic") {
		t.Errorf("error body %q does not mention the panic (%v)", e.Error, err)
	}
	// The key must be usable again.
	res2, err := http.Post(ts.URL+"/v1/solve/stub", "application/json",
		strings.NewReader(`{"id":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	if res2.StatusCode != http.StatusOK {
		t.Fatalf("key unusable after panic: status %d", res2.StatusCode)
	}
}

// TestQueueOverflowReturns429 wedges a 1-worker/1-slot engine and checks
// the admission controller sheds the third distinct solve with HTTP 429
// (and a Retry-After hint) instead of queueing unbounded work, that the
// rejection is counted per kind, and that warm cache hits still serve while
// the queue is full.
func TestQueueOverflowReturns429(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Options{Registry: stubRegistry(gate), Workers: 1, QueueDepth: 1})
	client := NewClient(ts.URL)
	ctx := context.Background()

	// Prime a warm artifact before wedging the engine.
	if _, err := client.Solve(ctx, "stub", stubSpec{ID: "hot"}); err != nil {
		t.Fatal(err)
	}

	post := func(id string, errs chan error) {
		go func() {
			_, err := client.Solve(ctx, "stub", stubSpec{ID: id, Block: true})
			errs <- err
		}()
	}
	inflight := make(chan error, 2)
	post("wedge-worker", inflight)
	waitForMetric(t, s, func(m MetricsSnapshot) bool { return m.InFlightSolves == 1 })
	post("fill-queue", inflight)
	waitForMetric(t, s, func(m MetricsSnapshot) bool { return m.QueueDepth == 1 })

	_, err := client.Solve(ctx, "stub", stubSpec{ID: "overflow", Block: true})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow solve err = %v, want HTTP 429", err)
	}
	if !apiErr.IsBackpressure() {
		t.Error("APIError.IsBackpressure() = false for a 429")
	}
	if got := s.Metrics().RejectedByKind["stub"]; got != 1 {
		t.Errorf("rejections{kind=stub} = %d, want 1", got)
	}

	// Warm hits bypass the queue even at capacity.
	warm, err := client.Solve(ctx, "stub", stubSpec{ID: "hot"})
	if err != nil || !warm.CacheHit {
		t.Fatalf("warm hit under full queue: resp=%+v err=%v", warm, err)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-inflight; err != nil {
			t.Errorf("admitted solve failed: %v", err)
		}
	}
}

func waitForMetric(t *testing.T, s *Server, cond func(MetricsSnapshot) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(s.Metrics()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("metric condition not reached within 5s")
}

func TestOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := strings.NewReader(`{"lambdas": [` + strings.Repeat("1,", maxBodyBytes/2) + `1]}`)
	res, err := http.Post(ts.URL+"/v1/solve/deadline", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", res.StatusCode)
	}
}

func TestTimeout(t *testing.T) {
	// A nanosecond budget is expired before the handler's select first
	// polls the context, so the timeout branch is taken deterministically
	// regardless of how fast the solver is.
	_, ts := newTestServer(t, Options{RequestTimeout: time.Nanosecond})
	client := NewClient(ts.URL)
	req := testDeadlineRequest()
	_, err := client.SolveDeadline(context.Background(), req)
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if !strings.Contains(err.Error(), "504") {
		t.Errorf("error %q does not carry 504", err)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)
	if _, err := client.SolveBudget(context.Background(), testBudgetRequest()); err != nil {
		t.Fatal(err)
	}

	h, err := client.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("health status %q, want ok", h.Status)
	}
	if h.CacheEntries != 1 {
		t.Errorf("health reports %d cache entries, want 1", h.CacheEntries)
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"crowdpricing_requests_total",
		"crowdpricing_cache_hits_total 0",
		"crowdpricing_cache_misses_total 1",
		`crowdpricing_solves_total{kind="budget"} 1`,
		`crowdpricing_solves_total{kind="deadline"} 0`,
		`crowdpricing_solves_total{kind="multi"} 0`,
		`crowdpricing_rejections_total{kind="budget"} 0`,
		"crowdpricing_singleflight_shared_total 0",
		"crowdpricing_errors_total 0",
		"crowdpricing_cache_entries 1",
		"crowdpricing_queue_depth 0",
		"crowdpricing_inflight_solves 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestCacheEvictionEndToEnd: a cache of one entry alternating between two
// problems re-solves every time.
func TestCacheEvictionEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Options{CacheSize: 1})
	client := NewClient(ts.URL)
	a := testBudgetRequest()
	b := testBudgetRequest()
	b.Budget = 2600
	for i := 0; i < 2; i++ {
		if _, err := client.SolveBudget(context.Background(), a); err != nil {
			t.Fatal(err)
		}
		if _, err := client.SolveBudget(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
	if m := s.Metrics(); m.Solves != 4 || m.CacheEntries != 1 {
		t.Errorf("metrics = %+v, want 4 solves and 1 cached entry", m)
	}
}

// TestMultiKindGeneric is the registry's payoff test: the fourth kind
// ("multi", the paper's general-k extension) is served over HTTP, through
// the generic client path, and inside generic batch items — with zero
// per-kind code in the server, client, or batch layers.
func TestMultiKindGeneric(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)
	ctx := context.Background()
	req := testMultiRequest()

	cold, err := client.Solve(ctx, KindMulti, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Kind != KindMulti || cold.CacheHit {
		t.Errorf("cold response kind=%q hit=%v, want multi/false", cold.Kind, cold.CacheHit)
	}
	if !strings.HasPrefix(cold.Fingerprint, "multi/joint:") {
		t.Errorf("fingerprint %q missing the multi variant prefix", cold.Fingerprint)
	}
	var sched MultiSchedule
	if err := cold.Decode(&sched); err != nil {
		t.Fatal(err)
	}
	if len(sched.Prices) != req.Intervals || sched.Value <= 0 {
		t.Errorf("implausible schedule: %d interval rows, value %v", len(sched.Prices), sched.Value)
	}

	warm, err := client.Solve(ctx, KindMulti, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || !bytes.Equal(warm.Result, cold.Result) {
		t.Error("repeated multi request missed the cache or returned different bytes")
	}

	// The same problem through a generic batch item is the same artifact —
	// and a warm hit, since the single endpoint just solved it.
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := client.SolveBatch(ctx, BatchRequest{
		Items:  []BatchItem{{Kind: KindMulti, Request: body}, {Kind: "no-such-kind", Request: body}},
		Budget: []BudgetRequest{testBudgetRequest()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := batch.Items[0]; got.Error != "" || !bytes.Equal(got.Response.Result, cold.Result) {
		t.Errorf("batch multi item: error %q, bytes match %v", got.Error, got.Error == "" && bytes.Equal(got.Response.Result, cold.Result))
	}
	if !batch.Items[0].Response.CacheHit {
		t.Error("batch multi item missed the warm cache")
	}
	if got := batch.Items[1]; got.Error == "" || !strings.Contains(got.Error, "unknown problem kind") {
		t.Errorf("unknown-kind batch item error = %q, want an unknown-kind error", got.Error)
	}
	if batch.Budget[0].Error != "" {
		t.Errorf("legacy typed batch item failed: %s", batch.Budget[0].Error)
	}

	if m := s.Metrics(); m.SolvesByKind[KindMulti] != 1 {
		t.Errorf("solves{kind=multi} = %d, want 1", m.SolvesByKind[KindMulti])
	}

	// An invalid multi problem is the client's fault.
	bad := testMultiRequest()
	bad.Counts = []int{0, 2}
	if _, err := client.Solve(ctx, KindMulti, bad); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("invalid multi: err = %v, want 400", err)
	}
}

// TestUnknownKindRoute: /v1/solve/{kind} only exists for registered kinds.
func TestUnknownKindRoute(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	res, err := http.Post(ts.URL+"/v1/solve/astrology", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown kind: status %d, want 404", res.StatusCode)
	}
}

// paperScaleRequest is the Section 5.2 default instance (N=200, 24h horizon,
// 72 intervals of 20 minutes, C=50) on the wire — the benchmark's cold
// solve is the full paper-scale backward induction.
func paperScaleRequest() DeadlineRequest {
	p := exp.DefaultWorkload().DefaultDeadlineProblem()
	l := p.Accept.(choice.Logistic)
	return DeadlineRequest{
		N:            p.N,
		HorizonHours: p.Horizon,
		Intervals:    p.Intervals,
		Lambdas:      p.Lambdas,
		Accept:       LogisticParams{S: l.S, B: l.B, M: l.M},
		MinPrice:     p.MinPrice,
		MaxPrice:     p.MaxPrice,
		Penalty:      p.Penalty,
		TruncEps:     p.TruncEps,
	}
}

func solveOnce(b *testing.B, s *Server, req DeadlineRequest) *SolveResponse {
	b.Helper()
	resp, err := s.solveSpec(context.Background(), &req)
	if err != nil {
		b.Fatal(err)
	}
	return resp
}

// BenchmarkDeadlineColdSolve measures the full cache-miss path at paper
// scale: fingerprint, backward induction, serialization, cache fill.
func BenchmarkDeadlineColdSolve(b *testing.B) {
	req := paperScaleRequest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(Options{}) // empty cache every iteration
		b.StartTimer()
		solveOnce(b, s, req)
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
}

// BenchmarkDeadlineWarmHit measures the same request against a warm cache.
// Compare with BenchmarkDeadlineColdSolve: the acceptance target for the
// daemon is warm ≥ 100× faster than cold, and in practice the gap is
// several orders of magnitude.
func BenchmarkDeadlineWarmHit(b *testing.B) {
	req := paperScaleRequest()
	s := New(Options{})
	resp := solveOnce(b, s, req) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warm := solveOnce(b, s, req)
		if !warm.CacheHit {
			b.Fatal("cache went cold")
		}
		if len(warm.Result) != len(resp.Result) {
			b.Fatal("warm result differs")
		}
	}
}

// BenchmarkDeadlineWarmHitHTTP is the warm path through the full HTTP
// stack — JSON decode, cache lookup, JSON encode over a real socket —
// i.e. the latency a network client observes on a hot policy.
func BenchmarkDeadlineWarmHitHTTP(b *testing.B) {
	req := paperScaleRequest()
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	if _, err := client.SolveDeadline(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.SolveDeadline(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit {
			b.Fatal("cache went cold")
		}
	}
}

func ExampleServer() {
	s := New(Options{CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(BudgetRequest{
		N: 100, Budget: 2500,
		Accept:   LogisticParams{S: 15, B: -0.39, M: 2000},
		MinPrice: 1, MaxPrice: 50,
	})
	res, err := http.Post(ts.URL+"/v1/solve/budget", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer res.Body.Close()
	var out SolveResponse
	_ = json.NewDecoder(res.Body).Decode(&out)
	strat, _ := out.DecodeBudget()
	fmt.Printf("kind=%s cache_hit=%v spend=%dc\n", out.Kind, out.CacheHit, strat.TotalCost)
	// Output: kind=budget cache_hit=false spend=2500c
}
