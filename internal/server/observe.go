package server

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"crowdpricing/internal/analytics"
	"crowdpricing/internal/hdr"
	"crowdpricing/internal/telemetry"
)

// This file is the read side of the observability plane: the
// /v1/analytics and /debug/requests endpoints plus the analytics and
// per-stage /metrics families. The write side — trace spans and the
// campaign event sink — lives in route(), the handlers, and
// internal/campaign.

// StageSummary condenses one pipeline stage's duration histogram for
// /v1/analytics (milliseconds; the /metrics histogram keeps base
// seconds).
type StageSummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func summarizeStage(h *hdr.Histogram) StageSummary {
	return StageSummary{
		Count:  h.Count(),
		MeanMS: h.Mean() / 1e6,
		P50MS:  float64(h.Quantile(0.50)) / 1e6,
		P99MS:  float64(h.Quantile(0.99)) / 1e6,
		MaxMS:  float64(h.Max()) / 1e6,
	}
}

// AnalyticsResponse is the GET /v1/analytics body: the live traffic fold
// and, when tracing is on, a per-stage latency summary keyed by stage
// name in pipeline order.
type AnalyticsResponse struct {
	Analytics *analytics.Snapshot     `json:"analytics"`
	Stages    map[string]StageSummary `json:"stages,omitempty"`
}

func (s *Server) handleAnalytics(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	resp := AnalyticsResponse{Analytics: s.analytics.Snapshot()}
	if s.tracer != nil {
		resp.Stages = make(map[string]StageSummary, telemetry.NumStages)
		for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
			if h := s.tracer.StageHistogram(st); h.Count() > 0 {
				resp.Stages[st.String()] = summarizeStage(h)
			}
		}
	}
	s.ok(w, resp)
}

// handleDebugRequests serves the keep-slowest trace ring: JSON by
// default, a human-readable table with ?format=text. 404 when tracing is
// disabled — like the WAL families, a daemon without the subsystem
// exposes no empty surface for it.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.tracer == nil {
		s.fail(w, http.StatusNotFound, errors.New("request tracing is disabled"))
		return
	}
	summaries := s.tracer.Snapshot()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		telemetry.WriteText(w, summaries)
		return
	}
	s.ok(w, summaries)
}

// writeAnalyticsMetrics renders the live analytics fold: the fleet λ̂
// gauges and the per-cohort counter families. HELP/TYPE always render so
// scrapes see stable family declarations; cohort series appear as
// traffic creates them, in sorted order.
func (s *Server) writeAnalyticsMetrics(w http.ResponseWriter) {
	snap := s.analytics.Snapshot()
	for _, row := range []struct {
		name, help string
		value      float64
	}{
		{"crowdpricing_lambda_hat", "Trailing-window mean worker arrivals per interval across all campaigns.", snap.LambdaHat},
		{"crowdpricing_lambda_hat_lifetime", "Lifetime mean worker arrivals per interval across all campaigns.", snap.LambdaHatLifetime},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
			row.name, row.help, row.name, row.name, row.value)
	}
	keys := make([]string, 0, len(snap.Cohorts))
	for key := range snap.Cohorts {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, fam := range []struct {
		name, help string
		value      func(c analytics.CohortSnapshot) float64
	}{
		{"crowdpricing_cohort_campaigns_total", "Campaigns created, by cohort (kind, with /adaptive for re-planning campaigns).",
			func(c analytics.CohortSnapshot) float64 { return float64(c.Campaigns) }},
		{"crowdpricing_cohort_finished_total", "Campaigns explicitly finished, by cohort.",
			func(c analytics.CohortSnapshot) float64 { return float64(c.Finished) }},
		{"crowdpricing_cohort_expired_total", "Campaigns removed by the idle-TTL sweeper, by cohort.",
			func(c analytics.CohortSnapshot) float64 { return float64(c.Expired) }},
		{"crowdpricing_cohort_observes_total", "Intervals observed, by cohort.",
			func(c analytics.CohortSnapshot) float64 { return float64(c.Observes) }},
		{"crowdpricing_cohort_arrivals_total", "Worker arrivals observed, by cohort.",
			func(c analytics.CohortSnapshot) float64 { return c.Arrivals }},
		{"crowdpricing_cohort_completions_total", "Task completions observed, by cohort.",
			func(c analytics.CohortSnapshot) float64 { return float64(c.Completions) }},
		{"crowdpricing_cohort_quotes_total", "Prices quoted, by cohort.",
			func(c analytics.CohortSnapshot) float64 { return float64(c.Quotes) }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", fam.name, fam.help, fam.name)
		for _, key := range keys {
			fmt.Fprintf(w, "%s{cohort=%q} %g\n", fam.name, key, fam.value(snap.Cohorts[key]))
		}
	}
}

// stageBuckets are the `le` bounds (seconds) of the per-stage duration
// histogram. Stages run finer than whole requests — a warm quote decode
// is sub-microsecond, a WAL append tens of microseconds — so the ladder
// starts three decades below latencyBuckets.
var stageBuckets = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5,
}

// writeStageHistograms renders the per-stage duration histograms — one
// family with a `stage` label, series in pipeline order. Rendered only
// when tracing is on (the histograms live in the tracer).
func (s *Server) writeStageHistograms(w http.ResponseWriter) {
	if s.tracer == nil {
		return
	}
	const name = "crowdpricing_stage_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Wall time per request-pipeline stage, across all traced requests.\n# TYPE %s histogram\n", name, name)
	for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
		h := s.tracer.StageHistogram(st)
		stage := st.String()
		total := h.Count()
		for _, le := range stageBuckets {
			n := h.CountAtOrBelow(int64(le * 1e9))
			if n > total {
				n = total
			}
			fmt.Fprintf(w, "%s_bucket{stage=%q,le=%q} %d\n",
				name, stage, strconv.FormatFloat(le, 'g', -1, 64), n)
		}
		fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", name, stage, total)
		fmt.Fprintf(w, "%s_sum{stage=%q} %g\n", name, stage, float64(h.Sum())/1e9)
		fmt.Fprintf(w, "%s_count{stage=%q} %d\n", name, stage, total)
	}
}
