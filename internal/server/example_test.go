package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"crowdpricing/internal/server"
)

// ExampleClient_Solve shows the kind-generic client path: any registered
// problem kind is one Solve call away, with no kind-specific client code.
// Here the "multi" kind (the paper's general-k multi-type extension) is
// solved and decoded — the same pattern serves kinds added after this
// client was written.
func ExampleClient_Solve() {
	daemon := server.New(server.Options{CacheSize: 64})
	defer daemon.Close()
	ts := httptest.NewServer(daemon.Handler())
	defer ts.Close()

	client := server.NewClient(ts.URL)
	req := server.MultiRequest{
		Counts:    []int{2, 2}, // two task types, two tasks each
		Intervals: 3,
		Lambdas:   []float64{40, 40, 40},
		Accepts: []server.LogisticParams{
			{S: 15, B: -0.39, M: 2000},
			{S: 12, B: -0.40, M: 1500},
		},
		MinPrice: 1, MaxPrice: 5,
		Penalty:  50,
		TruncEps: 1e-9,
	}
	resp, err := client.Solve(context.Background(), "multi", req)
	if err != nil {
		fmt.Println(err)
		return
	}
	var sched server.MultiSchedule
	if err := resp.Decode(&sched); err != nil {
		fmt.Println(err)
		return
	}
	again, err := client.Solve(context.Background(), "multi", req)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("kind=%s cache_hit=%v\n", resp.Kind, resp.CacheHit)
	fmt.Printf("opening price vector: %v\n", sched.Prices[0][len(sched.Prices[0])-1])
	fmt.Printf("repeat cache_hit=%v identical=%v\n", again.CacheHit, string(again.Result) == string(resp.Result))
	// Output:
	// kind=multi cache_hit=false
	// opening price vector: [5 5]
	// repeat cache_hit=true identical=true
}
