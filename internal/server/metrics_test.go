package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"crowdpricing/internal/wal"
)

// scrapeMetrics drives one solve and one client error through a fresh
// server, then fetches and returns the /metrics body.
func scrapeMetrics(t *testing.T) string {
	t.Helper()
	_, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)
	if _, err := client.SolveBudget(context.Background(), testBudgetRequest()); err != nil {
		t.Fatal(err)
	}
	// One 400 so the error counter is non-zero.
	res, err := http.Post(ts.URL+"/v1/solve/budget", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()

	res, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// family strips the histogram series suffixes so `_bucket`/`_sum`/`_count`
// samples resolve to their declared metric family.
func family(name string, histograms map[string]bool) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && histograms[base] {
			return base
		}
	}
	return name
}

// TestMetricsPrometheusConventions verifies the exposition format against
// the Prometheus naming rules the satellite task calls out: every sample
// preceded by HELP and TYPE for its family, counters suffixed `_total`,
// gauges not, histograms in base units with an explicit unit suffix, names
// lowercase with the application prefix.
func TestMetricsPrometheusConventions(t *testing.T) {
	body := scrapeMetrics(t)
	types := validateMetricsConventions(t, body)
	for _, want := range []string{
		"crowdpricing_requests_total",
		"crowdpricing_errors_total",
		"crowdpricing_cache_entries",
		"crowdpricing_request_duration_seconds",
		"crowdpricing_solves_total",
		"crowdpricing_rejections_total",
		"crowdpricing_queue_depth",
		"crowdpricing_inflight_solves",
		"crowdpricing_quoter_interned",
		"crowdpricing_quoter_resident_bytes",
		"crowdpricing_quoter_intern_hits_total",
		"crowdpricing_quoter_intern_misses_total",
		"crowdpricing_quoter_redecodes_total",
		"crowdpricing_stage_duration_seconds",
		"crowdpricing_lambda_hat",
		"crowdpricing_lambda_hat_lifetime",
		"crowdpricing_cohort_campaigns_total",
		"crowdpricing_cohort_observes_total",
		"crowdpricing_cohort_arrivals_total",
		"crowdpricing_cohort_completions_total",
		"crowdpricing_cohort_quotes_total",
		"crowdpricing_cohort_finished_total",
		"crowdpricing_cohort_expired_total",
	} {
		if _, ok := types[want]; !ok {
			t.Errorf("expected metric family %q absent from /metrics", want)
		}
	}
	// A daemon running without durability must not expose always-zero
	// event-log series.
	if strings.Contains(body, "crowdpricing_wal_") {
		t.Error("wal metric families rendered with no log attached")
	}
}

// validateMetricsConventions parses one /metrics body against the
// Prometheus exposition rules and returns the family → TYPE map.
func validateMetricsConventions(t *testing.T, body string) map[string]string {
	t.Helper()
	types := map[string]string{} // family -> TYPE
	helps := map[string]bool{}
	histograms := map[string]bool{}

	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || strings.TrimSpace(parts[1]) == "" {
				t.Errorf("HELP line without help text: %q", line)
			}
			helps[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, typ := parts[0], parts[1]
			if _, dup := types[name]; dup {
				t.Errorf("duplicate TYPE declaration for %s", name)
			}
			types[name] = typ
			if typ == "histogram" {
				histograms[name] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample line: name{labels} value  |  name value
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		fam := family(name, histograms)
		if !metricNameRE.MatchString(name) {
			t.Errorf("metric name %q violates naming charset", name)
		}
		if !strings.HasPrefix(fam, "crowdpricing_") {
			t.Errorf("metric %q lacks the application prefix", fam)
		}
		typ, ok := types[fam]
		if !ok {
			t.Errorf("sample %q has no preceding TYPE declaration", name)
			continue
		}
		if !helps[fam] {
			t.Errorf("sample %q has no preceding HELP declaration", name)
		}
		switch typ {
		case "counter":
			if !strings.HasSuffix(fam, "_total") {
				t.Errorf("counter %q missing the _total suffix", fam)
			}
		case "gauge":
			if strings.HasSuffix(fam, "_total") {
				t.Errorf("gauge %q must not carry the _total suffix", fam)
			}
		case "histogram":
			if !strings.HasSuffix(fam, "_seconds") {
				t.Errorf("duration histogram %q should use the base unit suffix _seconds", fam)
			}
		default:
			t.Errorf("metric %q has unexpected type %q", fam, typ)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return types
}

// TestWALMetricsExposition attaches a campaign event log and checks its
// families appear on /metrics, carry real values, and pass the same
// Prometheus conventions as every other family.
func TestWALMetricsExposition(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	wlog, err := s.Campaigns().OpenWAL("wal", wal.Options{FS: wal.NewMemFS(), SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wlog.Close() })
	wlog.SetReplayDuration(125 * time.Millisecond)
	s.AttachWAL(wlog)

	client := NewClient(ts.URL)
	ctx := context.Background()
	st, err := client.CreateCampaign(ctx, KindDeadline, campaignDeadlineRequest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.ObserveCampaign(ctx, st.ID, 5, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Sync(); err != nil {
		t.Fatal(err)
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	types := validateMetricsConventions(t, body)
	for family, typ := range map[string]string{
		"crowdpricing_wal_appends_total":                     "counter",
		"crowdpricing_wal_fsyncs_total":                      "counter",
		"crowdpricing_wal_bytes_total":                       "counter",
		"crowdpricing_wal_compactions_total":                 "counter",
		"crowdpricing_wal_segments":                          "gauge",
		"crowdpricing_wal_replay_seconds":                    "gauge",
		"crowdpricing_wal_last_compaction_timestamp_seconds": "gauge",
	} {
		if got := types[family]; got != typ {
			t.Errorf("family %s has type %q, want %q", family, got, typ)
		}
	}
	// The create and the observe were appended and group committed.
	if !strings.Contains(body, "crowdpricing_wal_appends_total 2") {
		t.Error("wal append counter did not count the create and observe events")
	}
	for _, positive := range []string{"crowdpricing_wal_fsyncs_total", "crowdpricing_wal_bytes_total", "crowdpricing_wal_segments"} {
		re := regexp.MustCompile(`(?m)^` + positive + ` ([0-9]+)$`)
		m := re.FindStringSubmatch(body)
		if m == nil {
			t.Errorf("family %s has no sample line", positive)
			continue
		}
		if n, _ := strconv.ParseInt(m[1], 10, 64); n <= 0 {
			t.Errorf("%s = %s, want > 0", positive, m[1])
		}
	}
	if !strings.Contains(body, "crowdpricing_wal_replay_seconds 0.125") {
		t.Error("replay-duration gauge does not carry the recorded value")
	}
}

// TestKindLabeledCounters verifies the per-kind scheduler counters: every
// registered kind appears as a series on both families (zero until
// touched), and the solve driven by scrapeMetrics lands on its kind.
func TestKindLabeledCounters(t *testing.T) {
	body := scrapeMetrics(t)
	for _, family := range []string{"crowdpricing_solves_total", "crowdpricing_rejections_total"} {
		for _, kind := range []string{"deadline", "budget", "tradeoff", "multi"} {
			series := fmt.Sprintf("%s{kind=%q}", family, kind)
			if !strings.Contains(body, series) {
				t.Errorf("metrics output missing series %s", series)
			}
		}
	}
	if !strings.Contains(body, `crowdpricing_solves_total{kind="budget"} 1`) {
		t.Error("budget solve not counted on its kind label")
	}
	if !strings.Contains(body, `crowdpricing_rejections_total{kind="budget"} 0`) {
		t.Error("untouched rejection counter missing its zero series")
	}
}

// TestLatencyHistogramExposition checks the histogram series semantics:
// buckets are cumulative and monotone in le, the +Inf bucket equals
// _count, and the endpoint that served a request has a non-zero count.
func TestLatencyHistogramExposition(t *testing.T) {
	body := scrapeMetrics(t)
	const name = "crowdpricing_request_duration_seconds"
	bucketRE := regexp.MustCompile(name + `_bucket\{endpoint="([^"]+)",le="([^"]+)"\} (\d+)`)
	countRE := regexp.MustCompile(name + `_count\{endpoint="([^"]+)"\} (\d+)`)
	sumRE := regexp.MustCompile(name + `_sum\{endpoint="([^"]+)"\} ([0-9.e+-]+)`)

	counts := map[string]int64{}
	for _, m := range countRE.FindAllStringSubmatch(body, -1) {
		n, _ := strconv.ParseInt(m[2], 10, 64)
		counts[m[1]] = n
	}
	sums := map[string]float64{}
	for _, m := range sumRE.FindAllStringSubmatch(body, -1) {
		v, _ := strconv.ParseFloat(m[2], 64)
		sums[m[1]] = v
	}
	lastPerEndpoint := map[string]int64{}
	infPerEndpoint := map[string]int64{}
	for _, m := range bucketRE.FindAllStringSubmatch(body, -1) {
		endpoint, le := m[1], m[2]
		n, _ := strconv.ParseInt(m[3], 10, 64)
		if n < lastPerEndpoint[endpoint] {
			t.Errorf("endpoint %s: bucket le=%s count %d below a smaller bound's count %d (not cumulative)",
				endpoint, le, n, lastPerEndpoint[endpoint])
		}
		lastPerEndpoint[endpoint] = n
		if le == "+Inf" {
			infPerEndpoint[endpoint] = n
		}
	}
	if len(counts) == 0 {
		t.Fatal("no histogram _count series found")
	}
	for endpoint, want := range counts {
		if got, ok := infPerEndpoint[endpoint]; !ok || got != want {
			t.Errorf("endpoint %s: +Inf bucket %d != _count %d", endpoint, got, want)
		}
	}
	// The solve and the bad request both hit /v1/solve/budget.
	if counts["/v1/solve/budget"] < 2 {
		t.Errorf("budget endpoint histogram count = %d, want ≥ 2", counts["/v1/solve/budget"])
	}
	if sums["/v1/solve/budget"] <= 0 {
		t.Errorf("budget endpoint histogram sum = %v, want > 0", sums["/v1/solve/budget"])
	}
	// /metrics itself is instrumented; the scrape we parsed was its first
	// request, so its own count may still be zero — just require the series
	// to exist.
	if _, ok := counts["/metrics"]; !ok {
		t.Error("/metrics endpoint missing from the histogram")
	}
}
