package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// clientAgainst returns a Client pointed at a stub handler.
func clientAgainst(t *testing.T, h http.HandlerFunc) *Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL)
}

// TestClientSurfacesServerErrorBody checks that a structured error reply
// (the daemon's errorResponse JSON) reaches the caller with both the HTTP
// status and the server's message.
func TestClientSurfacesServerErrorBody(t *testing.T) {
	c := clientAgainst(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"n 9999999 exceeds the service limit"}`))
	})
	_, err := c.SolveDeadline(context.Background(), testDeadlineRequest())
	if err == nil {
		t.Fatal("nil error for a 400 response")
	}
	for _, want := range []string{"400", "exceeds the service limit"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestClientNon200WithoutJSONBody: a plain-text 500 (a proxy error page,
// say) must still produce a status-bearing error rather than a JSON decode
// failure.
func TestClientNon200WithoutJSONBody(t *testing.T) {
	c := clientAgainst(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "upstream exploded", http.StatusInternalServerError)
	})
	_, err := c.SolveBudget(context.Background(), testBudgetRequest())
	if err == nil {
		t.Fatal("nil error for a 500 response")
	}
	if !strings.Contains(err.Error(), "500") {
		t.Errorf("error %q does not mention the status", err)
	}
}

// TestClientMalformedSuccessBody: a 200 whose body is not a SolveResponse
// must fail decoding instead of returning a zero-value response.
func TestClientMalformedSuccessBody(t *testing.T) {
	for name, body := range map[string]string{
		"truncated": `{"kind":"deadline","result":`,
		"not-json":  `<html>ok</html>`,
	} {
		t.Run(name, func(t *testing.T) {
			c := clientAgainst(t, func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.Write([]byte(body))
			})
			if _, err := c.SolveTradeoff(context.Background(), testTradeoffRequest()); err == nil {
				t.Fatal("malformed 200 body decoded without error")
			}
		})
	}
}

// TestClientContextCanceledMidRequest cancels the context while the server
// is still holding the request, and checks the client returns promptly with
// the cancellation.
func TestClientContextCanceledMidRequest(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	c := clientAgainst(t, func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	// Registered after clientAgainst's ts.Close cleanup, so it runs first
	// (LIFO) and the handler cannot deadlock Close.
	t.Cleanup(func() { close(release) })
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.SolveBudget(ctx, testBudgetRequest())
		done <- err
	}()
	<-inHandler
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not return after cancellation")
	}
}

// TestClientContextTimeout: a deadline that expires mid-request surfaces
// context.DeadlineExceeded.
func TestClientContextTimeout(t *testing.T) {
	release := make(chan struct{})
	c := clientAgainst(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	t.Cleanup(func() { close(release) })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.SolveDeadline(ctx, testDeadlineRequest())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestClientBatchErrorPaths exercises the batch call's non-200 handling.
func TestClientBatchErrorPaths(t *testing.T) {
	c := clientAgainst(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"empty batch"}`))
	})
	if _, err := c.SolveBatch(context.Background(), BatchRequest{}); err == nil || !strings.Contains(err.Error(), "empty batch") {
		t.Fatalf("err = %v, want the server's message", err)
	}
}

// TestClientHealthzErrorPaths: non-200 and malformed bodies from /healthz.
func TestClientHealthzErrorPaths(t *testing.T) {
	t.Run("non-200", func(t *testing.T) {
		c := clientAgainst(t, func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusServiceUnavailable)
		})
		if _, err := c.Healthz(context.Background()); err == nil || !strings.Contains(err.Error(), "503") {
			t.Fatalf("err = %v, want a 503 error", err)
		}
	})
	t.Run("malformed-body", func(t *testing.T) {
		c := clientAgainst(t, func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("not json"))
		})
		if _, err := c.Healthz(context.Background()); err == nil {
			t.Fatal("malformed healthz body decoded without error")
		}
	})
}

// TestClientConnectionRefused: a dead endpoint produces a transport error,
// not a hang or a zero response.
func TestClientConnectionRefused(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // reserved port, nothing listens
	if _, err := c.SolveBudget(context.Background(), testBudgetRequest()); err == nil {
		t.Fatal("nil error against a dead endpoint")
	}
}
