package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"testing"

	"crowdpricing/internal/engine"
	"crowdpricing/internal/telemetry"
)

// requestCount scrapes /metrics and returns
// crowdpricing_request_duration_seconds_count for endpoint.
func requestCount(t *testing.T, baseURL, endpoint string) int {
	t.Helper()
	res, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`crowdpricing_request_duration_seconds_count\{endpoint="` +
		regexp.QuoteMeta(endpoint) + `"\} (\d+)`)
	m := re.FindStringSubmatch(string(body))
	if m == nil {
		t.Fatalf("no duration count for endpoint %q in /metrics", endpoint)
	}
	var n int
	fmt.Sscanf(m[1], "%d", &n)
	return n
}

// TestPanickedRequestLandsInHistogram is the happy-path-only-recording
// regression test: a handler that panics must still land in the request
// duration histogram, answer 500, count as an error, and leave the daemon
// serving.
func TestPanickedRequestLandsInHistogram(t *testing.T) {
	reg := engine.NewRegistry()
	reg.Register(engine.KindDef{
		Kind: "kaboom",
		New:  func() engine.Spec { panic("constructor exploded") },
	})
	s, ts := newTestServer(t, Options{Registry: reg})

	res, err := http.Post(ts.URL+"/v1/solve/kaboom", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", res.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(res.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("panicking handler returned no JSON error body (%v)", err)
	}
	if got := requestCount(t, ts.URL, "/v1/solve/kaboom"); got != 1 {
		t.Errorf("duration histogram count = %d after a panicked request, want 1", got)
	}
	if s.Metrics().Errors == 0 {
		t.Error("error counter not incremented by a panicked request")
	}
	// The daemon must still serve.
	res2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: status %d", res2.StatusCode)
	}
}

// TestShedRequestLandsInHistogram wedges a 1-worker/1-slot engine and
// checks the 429-shed request is recorded in the duration histogram like
// any other response.
func TestShedRequestLandsInHistogram(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Options{Registry: stubRegistry(gate), Workers: 1, QueueDepth: 1})
	client := NewClient(ts.URL)
	ctx := context.Background()

	if _, err := client.Solve(ctx, "stub", stubSpec{ID: "prime"}); err != nil {
		t.Fatal(err)
	}
	if got := requestCount(t, ts.URL, "/v1/solve/stub"); got != 1 {
		t.Fatalf("baseline duration count = %d, want 1", got)
	}

	inflight := make(chan error, 2)
	for _, id := range []string{"wedge-worker", "fill-queue"} {
		go func() {
			_, err := client.Solve(ctx, "stub", stubSpec{ID: id, Block: true})
			inflight <- err
		}()
		switch id {
		case "wedge-worker":
			waitForMetric(t, s, func(m MetricsSnapshot) bool { return m.InFlightSolves == 1 })
		case "fill-queue":
			waitForMetric(t, s, func(m MetricsSnapshot) bool { return m.QueueDepth == 1 })
		}
	}
	_, err := client.Solve(ctx, "stub", stubSpec{ID: "overflow", Block: true})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow solve err = %v, want HTTP 429", err)
	}
	// The two admitted solves are still blocked in their handlers; the only
	// finished requests are the prime and the shed one — so the shed
	// request is what moved the count.
	if got := requestCount(t, ts.URL, "/v1/solve/stub"); got != 2 {
		t.Errorf("duration count = %d after 429 shed, want 2 (prime + shed)", got)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-inflight; err != nil {
			t.Errorf("admitted solve failed: %v", err)
		}
	}
}

// TestTraceAndAnalyticsEndpoints drives one campaign lifecycle and checks
// the full observability read side: /debug/requests carries stage-settled
// traces, /v1/analytics carries the λ̂ fold and stage summaries, and
// /metrics grows the stage and cohort families.
func TestTraceAndAnalyticsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{TraceSeed: 42})
	client := NewClient(ts.URL)
	ctx := context.Background()

	st, err := client.CreateCampaign(ctx, KindDeadline, campaignDeadlineRequest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.ObserveCampaign(ctx, st.ID, 5, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.CampaignPrice(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	traces, err := client.DebugRequests(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("/debug/requests returned no traces")
	}
	stages := map[string]bool{}
	routes := map[string]bool{}
	for _, tr := range traces {
		if tr.ID == "" || tr.TotalMS < 0 {
			t.Errorf("malformed trace summary %+v", tr)
		}
		routes[tr.Route] = true
		for stage := range tr.StagesMS {
			stages[stage] = true
		}
	}
	// The create solved through the engine; the observe appended nothing
	// (no WAL) but decoded a body; the quote crossed the campaign lock.
	for _, want := range []string{"server_decode", "engine_queue_wait", "engine_solve", "campaign_lock"} {
		if !stages[want] {
			t.Errorf("no trace recorded stage %q; saw %v", want, stages)
		}
	}
	if !routes["POST /v1/campaigns"] {
		t.Errorf("create route missing from traces; saw %v", routes)
	}

	an, err := client.Analytics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if an.Analytics == nil || an.Analytics.Observes != 1 || an.Analytics.LambdaHat != 5 {
		t.Fatalf("analytics fold = %+v, want 1 observe at λ̂ 5", an.Analytics)
	}
	cs, ok := an.Analytics.Cohorts[KindDeadline]
	if !ok || cs.Campaigns != 1 || cs.Quotes != 1 || cs.Completions != 1 {
		t.Fatalf("deadline cohort = %+v (present %v)", cs, ok)
	}
	if sum, ok := an.Stages["engine_solve"]; !ok || sum.Count == 0 {
		t.Fatalf("stage summaries missing engine_solve: %+v", an.Stages)
	}

	// Human rendering.
	res, err := http.Get(ts.URL + "/debug/requests?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	text, _ := io.ReadAll(res.Body)
	if !strings.Contains(string(text), "engine_solve") {
		t.Errorf("text rendering mentions no stages:\n%s", text)
	}

	// Metrics families.
	res2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	raw, _ := io.ReadAll(res2.Body)
	body := string(raw)
	validateMetricsConventions(t, body)
	for _, want := range []string{
		`crowdpricing_stage_duration_seconds_count{stage="engine_solve"}`,
		`crowdpricing_lambda_hat 5`,
		`crowdpricing_cohort_quotes_total{cohort="deadline"} 1`,
		`crowdpricing_cohort_arrivals_total{cohort="deadline"} 5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTraceIDsDeterministicAcrossServers: two servers with the same
// TraceSeed mint identical trace-ID sequences — the determinism contract
// crowdlint enforces on the rest of the codebase, carried into tracing.
func TestTraceIDsDeterministicAcrossServers(t *testing.T) {
	ids := func() []string {
		_, ts := newTestServer(t, Options{TraceSeed: 7, TraceBuffer: 8})
		client := NewClient(ts.URL)
		for i := 0; i < 3; i++ {
			if _, err := client.Healthz(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		traces, err := client.DebugRequests(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, 0, len(traces))
		for _, tr := range traces {
			out = append(out, tr.ID)
		}
		// The ring orders by measured duration, which is wall clock; the
		// determinism claim is about the minted IDs, so compare as a set.
		sort.Strings(out)
		return out
	}
	a, b := ids(), ids()
	if len(a) == 0 {
		t.Fatal("no traces retained")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("trace IDs differ across same-seed servers:\n%v\n%v", a, b)
	}
}

// TestTracingDisabled: a negative TraceBuffer turns the tracing plane
// off — /debug/requests answers 404, /metrics renders no stage family —
// while the analytics fold keeps working.
func TestTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{TraceBuffer: -1})
	client := NewClient(ts.URL)
	ctx := context.Background()

	if _, err := client.DebugRequests(ctx); err == nil {
		t.Fatal("DebugRequests succeeded with tracing disabled, want 404")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
			t.Fatalf("DebugRequests err = %v, want HTTP 404", err)
		}
	}

	st, err := client.CreateCampaign(ctx, KindDeadline, campaignDeadlineRequest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.ObserveCampaign(ctx, st.ID, 3, nil); err != nil {
		t.Fatal(err)
	}
	an, err := client.Analytics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if an.Analytics.Observes != 1 || an.Analytics.LambdaHat != 3 {
		t.Fatalf("analytics with tracing off = %+v", an.Analytics)
	}
	if len(an.Stages) != 0 {
		t.Fatalf("stage summaries rendered with tracing off: %+v", an.Stages)
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, _ := io.ReadAll(res.Body)
	if strings.Contains(string(raw), "crowdpricing_stage_duration_seconds") {
		t.Error("stage histogram family rendered with tracing off")
	}
}

// TestStageNamesClosedSet pins the wire stage names: dashboards and the
// obs-smoke CI assertions key on them, so adding or renaming a stage must
// be a deliberate, reviewed change here too.
func TestStageNamesClosedSet(t *testing.T) {
	want := []string{
		"server_decode", "engine_queue_wait", "engine_solve",
		"quoter_decode", "campaign_lock", "wal_append",
	}
	got := telemetry.StageNames()
	if len(got) != len(want) {
		t.Fatalf("stage set = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage set = %v, want %v", got, want)
		}
	}
}
