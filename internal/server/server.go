// Package server turns the batch pricing library into pricing-as-a-service:
// a long-running daemon exposing the paper's three solvers over HTTP/JSON,
// backed by a shared LRU cache of solved policies keyed by a canonical
// content hash of the problem (core's Fingerprint methods) and a
// singleflight layer that collapses concurrent identical requests onto one
// solve.
//
// The economics mirror the systems in PAPERS.md that keep hot state next to
// the compute: the expensive artifact here is a solved policy — a
// backward-induction MDP at paper scale runs for seconds, while a warm
// cache hit is a map lookup — and many requesters price similar batches, so
// deduplication is the common case, not the corner case.
//
// Endpoints:
//
//	POST /v1/solve/deadline   fixed-deadline dynamic policy   (Section 3)
//	POST /v1/solve/budget     fixed-budget static allocation  (Section 4)
//	POST /v1/solve/tradeoff   cost/latency trade-off policy   (Section 6)
//	POST /v1/solve/batch      many problems, one round trip
//	GET  /healthz             liveness + uptime
//	GET  /metrics             Prometheus-format counters + latency histogram
//
// cmd/priced wraps this package in a binary; the root crowdpricing package
// re-exports the client-facing types.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"crowdpricing/internal/core"
	"crowdpricing/internal/hdr"
)

// Defaults for Options zero values.
const (
	// DefaultCacheSize bounds the policy cache. A paper-scale deadline
	// policy (N=200, 72 intervals) serializes to ~250 KB, so the default
	// caps cache memory around a quarter of a gigabyte.
	DefaultCacheSize = 1024
	// DefaultRequestTimeout bounds how long a request waits for its solve.
	DefaultRequestTimeout = 2 * time.Minute
	// MaxBatchItems bounds a single batch request.
	MaxBatchItems = 256
	// batchWorkers caps how many batch items solve concurrently within one
	// request; items beyond it queue. Waiters on an in-flight identical
	// solve hold a slot too, which is fine — they are blocked, not burning
	// CPU, and the cap exists to bound solver parallelism.
	batchWorkers = 16
)

// Options configures a Server. The zero value is production-ready.
type Options struct {
	// CacheSize is the maximum number of cached policies (0 =
	// DefaultCacheSize).
	CacheSize int
	// SolverWorkers is the goroutine count for each cold deadline solve,
	// core.DeadlineProblem.Workers (0 = GOMAXPROCS).
	SolverWorkers int
	// RequestTimeout is how long a request may wait for its solve before
	// the daemon answers 504 (0 = DefaultRequestTimeout). The solve itself
	// keeps running and warms the cache for the retry.
	RequestTimeout time.Duration
}

// Server is the pricing service. Create with New, expose with Handler; a
// single Server is safe for arbitrary concurrent use.
type Server struct {
	opts   Options
	cache  *policyCache
	flight flightGroup
	mux    *http.ServeMux
	start  time.Time

	// latency holds one request-duration histogram per route, recorded
	// around the full handler (decode + cache + solve + encode) and
	// rendered as a Prometheus histogram on /metrics. It is the same
	// log-bucketed instrument the loadbench harness uses, so benchmark
	// reports and production scrapes bin latency identically.
	latency map[string]*hdr.Histogram

	// Every solve request increments exactly one of cacheHits (served from
	// cache, whether on the fast path or the singleflight double-check) or
	// cacheMisses (waited on a solver — its own or one it joined), so
	// hits + misses equals completed solve requests.
	requests     atomic.Int64 // HTTP requests accepted across all endpoints
	cacheHits    atomic.Int64 // solve requests served from the cache
	cacheMisses  atomic.Int64 // solve requests that waited on a solver
	solves       atomic.Int64 // solver executions actually performed
	flightShared atomic.Int64 // requests that joined another request's solve
	errorCount   atomic.Int64 // non-2xx responses
}

// New builds a Server; see Options for the knobs.
func New(opts Options) *Server {
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	s := &Server{
		opts:    opts,
		cache:   newPolicyCache(opts.CacheSize),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		latency: make(map[string]*hdr.Histogram),
	}
	s.route("/v1/solve/deadline", s.post(s.handleDeadline))
	s.route("/v1/solve/budget", s.post(s.handleBudget))
	s.route("/v1/solve/tradeoff", s.post(s.handleTradeoff))
	s.route("/v1/solve/batch", s.post(s.handleBatch))
	s.route("/healthz", s.handleHealthz)
	s.route("/metrics", s.handleMetrics)
	return s
}

// route registers h at path wrapped with per-endpoint latency recording.
func (s *Server) route(path string, h http.HandlerFunc) {
	hist := hdr.New()
	s.latency[path] = hist
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		h(w, r)
		hist.Record(time.Since(begin))
	})
}

// Handler returns the HTTP handler serving the full API surface.
func (s *Server) Handler() http.Handler { return s.mux }

// MetricsSnapshot is a consistent-enough point-in-time read of the
// counters, exposed for tests and for embedding applications; the /metrics
// endpoint renders the same numbers in Prometheus text format.
type MetricsSnapshot struct {
	Requests           int64
	CacheHits          int64
	CacheMisses        int64
	Solves             int64
	SingleflightShared int64
	Errors             int64
	CacheEntries       int64
}

// Metrics returns the current counter values.
func (s *Server) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		Requests:           s.requests.Load(),
		CacheHits:          s.cacheHits.Load(),
		CacheMisses:        s.cacheMisses.Load(),
		Solves:             s.solves.Load(),
		SingleflightShared: s.flightShared.Load(),
		Errors:             s.errorCount.Load(),
		CacheEntries:       int64(s.cache.Len()),
	}
}

// post wraps a handler with method enforcement and the request counter.
func (s *Server) post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.fail(w, http.StatusMethodNotAllowed, errors.New("use POST"))
			return
		}
		h(w, r)
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.errorCount.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

func (s *Server) ok(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// solve is the shared cache → singleflight → solver path. key is the
// artifact identity (solver variant + problem fingerprint); run produces
// the serialized artifact on a miss.
func (s *Server) solve(ctx context.Context, kind, key string, run func() ([]byte, error)) (*SolveResponse, error) {
	if val, ok := s.cache.Get(key); ok {
		s.cacheHits.Add(1)
		return &SolveResponse{Kind: kind, Fingerprint: key, CacheHit: true, Result: val}, nil
	}
	begin := time.Now()
	type outcome struct {
		val    []byte
		err    error
		cached bool
	}
	ch := make(chan outcome, 1)
	go func() {
		// cached is written by fn, which only ever runs on this goroutine
		// (joiners share the executor's result without running fn), and is
		// read after Do returns, so no synchronization is needed.
		cached := false
		val, err, shared := s.flight.Do(key, func() (val []byte, err error) {
			// The solvers validate their inputs, but a panic on a
			// pathological problem must not take down the daemon: this
			// goroutine sits outside net/http's per-connection recovery.
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("solver panic: %v", r)
				}
			}()
			// Double-check the cache: another request may have finished this
			// exact solve between our miss above and entering the flight
			// group. Without this re-check, N concurrent identical requests
			// could perform up to two solves instead of exactly one.
			if v, ok := s.cache.Get(key); ok {
				s.cacheHits.Add(1)
				cached = true
				return v, nil
			}
			s.cacheMisses.Add(1)
			s.solves.Add(1)
			val, err = run()
			if err == nil {
				s.cache.Put(key, val)
			}
			return val, err
		})
		if shared {
			// Joined another request's in-flight solve; count it as a miss
			// here so every request increments exactly one of hits/misses.
			s.flightShared.Add(1)
			s.cacheMisses.Add(1)
		}
		ch <- outcome{val, err, cached}
	}()
	select {
	case <-ctx.Done():
		// The solve keeps running on its goroutine and warms the cache, so
		// the client's retry is free.
		return nil, ctx.Err()
	case out := <-ch:
		if out.err != nil {
			return nil, out.err
		}
		resp := &SolveResponse{Kind: kind, Fingerprint: key, Result: out.val}
		if out.cached {
			// The singleflight double-check found the artifact already
			// cached, so this request never waited on a solver: report it
			// as the cache hit it was.
			resp.CacheHit = true
		} else {
			resp.SolveMillis = float64(time.Since(begin)) / float64(time.Millisecond)
		}
		return resp, nil
	}
}

// respond maps a solve outcome to HTTP: validation problems are the
// client's fault (400), timeouts are 504, anything else is 500.
func (s *Server) respond(w http.ResponseWriter, resp *SolveResponse, err error) {
	switch {
	case err == nil:
		s.ok(w, resp)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.fail(w, http.StatusGatewayTimeout, errors.New("solve timed out; the policy is still being computed, retry to pick it up"))
	default:
		s.fail(w, http.StatusInternalServerError, err)
	}
}

// maxBodyBytes bounds request bodies so one connection cannot buffer
// unbounded JSON into memory. 32 MiB comfortably fits the largest
// acceptable batch (MaxBatchItems items at MaxIntervals lambdas each).
const maxBodyBytes = 32 << 20

func decodeInto(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
}

func (s *Server) handleDeadline(w http.ResponseWriter, r *http.Request) {
	var req DeadlineRequest
	if err := decodeInto(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	resp, err := s.solveDeadline(ctx, req)
	if err != nil && isBadProblem(err) {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.respond(w, resp, err)
}

// isBadProblem classifies errors raised before any solver ran — problem
// validation and fingerprinting failures — which are client errors.
func isBadProblem(err error) bool {
	var bad badProblemError
	return errors.As(err, &bad)
}

type badProblemError struct{ err error }

func (e badProblemError) Error() string { return e.err.Error() }
func (e badProblemError) Unwrap() error { return e.err }

func (s *Server) solveDeadline(ctx context.Context, req DeadlineRequest) (*SolveResponse, error) {
	if err := req.checkLimits(); err != nil {
		return nil, badProblemError{err}
	}
	p := req.problem(s.opts.SolverWorkers)
	fp, err := p.Fingerprint()
	if err != nil {
		return nil, badProblemError{err}
	}
	return s.solve(ctx, KindDeadline, "deadline/efficient:"+fp, func() ([]byte, error) {
		pol, err := p.SolveEfficient()
		if err != nil {
			return nil, err
		}
		return json.Marshal(pol)
	})
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	var req BudgetRequest
	if err := decodeInto(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	resp, err := s.solveBudget(ctx, req)
	if err != nil && isBadProblem(err) {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.respond(w, resp, err)
}

func (s *Server) solveBudget(ctx context.Context, req BudgetRequest) (*SolveResponse, error) {
	method, err := req.method()
	if err != nil {
		return nil, badProblemError{err}
	}
	if err := req.checkLimits(method); err != nil {
		return nil, badProblemError{err}
	}
	p := req.problem()
	fp, err := p.Fingerprint()
	if err != nil {
		return nil, badProblemError{err}
	}
	return s.solve(ctx, KindBudget, "budget/"+method+":"+fp, func() ([]byte, error) {
		var strat core.StaticStrategy
		var err error
		if method == BudgetMethodExact {
			strat, err = p.SolveExactDP()
		} else {
			strat, err = p.SolveHull()
		}
		if err != nil {
			return nil, err
		}
		return json.Marshal(BudgetStrategy{
			Counts:                 strat.Counts,
			TotalCost:              strat.TotalCost(),
			ExpectedWorkerArrivals: strat.ExpectedWorkerArrivals(p.Accept),
		})
	})
}

func (s *Server) handleTradeoff(w http.ResponseWriter, r *http.Request) {
	var req TradeoffRequest
	if err := decodeInto(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	resp, err := s.solveTradeoff(ctx, req)
	if err != nil && isBadProblem(err) {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.respond(w, resp, err)
}

func (s *Server) solveTradeoff(ctx context.Context, req TradeoffRequest) (*SolveResponse, error) {
	form, err := req.formulation()
	if err != nil {
		return nil, badProblemError{err}
	}
	if err := req.checkLimits(); err != nil {
		return nil, badProblemError{err}
	}
	p := req.problem()
	fp, err := p.Fingerprint()
	if err != nil {
		return nil, badProblemError{err}
	}
	return s.solve(ctx, KindTradeoff, "tradeoff/"+form+":"+fp, func() ([]byte, error) {
		var pol *core.TradeoffPolicy
		var err error
		if form == TradeoffFixedRate {
			pol, err = p.SolveFixedRate()
		} else {
			pol, err = p.SolveWorkerArrival()
		}
		if err != nil {
			return nil, err
		}
		return json.Marshal(TradeoffSchedule{Price: pol.Price, Value: pol.Value})
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeInto(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	total := len(req.Deadline) + len(req.Budget) + len(req.Tradeoff)
	if total == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if total > MaxBatchItems {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch has %d items, limit is %d", total, MaxBatchItems))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	resp := BatchResponse{
		Deadline: make([]BatchResult, len(req.Deadline)),
		Budget:   make([]BatchResult, len(req.Budget)),
		Tradeoff: make([]BatchResult, len(req.Tradeoff)),
	}
	// Items run concurrently so identical ones collapse onto one solve via
	// the singleflight layer (a batch of N clones costs one solve), but the
	// fan-out is capped: distinct items queue on the semaphore instead of
	// thrashing the solver with unbounded parallel backward inductions.
	sem := make(chan struct{}, batchWorkers)
	var wg sync.WaitGroup
	run := func(slot *BatchResult, solve func() (*SolveResponse, error)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := solve()
			if err != nil {
				slot.Error = err.Error()
				return
			}
			slot.Response = res
		}()
	}
	for i, item := range req.Deadline {
		run(&resp.Deadline[i], func() (*SolveResponse, error) { return s.solveDeadline(ctx, item) })
	}
	for i, item := range req.Budget {
		run(&resp.Budget[i], func() (*SolveResponse, error) { return s.solveBudget(ctx, item) })
	}
	for i, item := range req.Tradeoff {
		run(&resp.Tradeoff[i], func() (*SolveResponse, error) { return s.solveTradeoff(ctx, item) })
	}
	wg.Wait()
	s.ok(w, resp)
}

// HealthStatus is the /healthz body.
type HealthStatus struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	CacheEntries  int     `json:"cache_entries"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.ok(w, HealthStatus{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		CacheEntries:  s.cache.Len(),
	})
}

// latencyBuckets are the `le` bounds (seconds) of the request-duration
// histogram exposed on /metrics, spanning warm cache hits (microseconds)
// through paper-scale cold solves (seconds). Cumulative counts are resolved
// at the underlying hdr bucket granularity (≤3.1% relative error).
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	m := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, row := range []struct {
		name, typ, help string
		value           int64
	}{
		{"crowdpricing_requests_total", "counter", "HTTP requests accepted.", m.Requests},
		{"crowdpricing_cache_hits_total", "counter", "Solve requests served from the warm policy cache.", m.CacheHits},
		{"crowdpricing_cache_misses_total", "counter", "Solve requests that consulted the solver layer.", m.CacheMisses},
		{"crowdpricing_solves_total", "counter", "Solver executions actually performed.", m.Solves},
		{"crowdpricing_singleflight_shared_total", "counter", "Requests deduplicated onto another request's in-flight solve.", m.SingleflightShared},
		{"crowdpricing_errors_total", "counter", "Non-2xx responses.", m.Errors},
		{"crowdpricing_cache_entries", "gauge", "Policies currently cached.", m.CacheEntries},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			row.name, row.help, row.name, row.typ, row.name, row.value)
	}
	s.writeLatencyHistogram(w)
}

// writeLatencyHistogram renders the per-endpoint request-duration
// histograms in Prometheus exposition format: one metric family with an
// `endpoint` label, `_bucket` series per `le` bound plus `+Inf`, and the
// conventional `_sum`/`_count` pair, all in base seconds.
func (s *Server) writeLatencyHistogram(w http.ResponseWriter) {
	const name = "crowdpricing_request_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Wall time per HTTP request, by endpoint.\n# TYPE %s histogram\n", name, name)
	paths := make([]string, 0, len(s.latency))
	for p := range s.latency {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		h := s.latency[path]
		// Read the total once so +Inf and _count agree even while requests
		// are recording concurrently; cap the per-bound cumulative counts
		// at it so the series stays monotone under the same races.
		total := h.Count()
		for _, le := range latencyBuckets {
			n := h.CountAtOrBelow(int64(le * 1e9))
			if n > total {
				n = total
			}
			fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=%q} %d\n",
				name, path, strconv.FormatFloat(le, 'g', -1, 64), n)
		}
		fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, path, total)
		fmt.Fprintf(w, "%s_sum{endpoint=%q} %g\n", name, path, float64(h.Sum())/1e9)
		fmt.Fprintf(w, "%s_count{endpoint=%q} %d\n", name, path, total)
	}
}
