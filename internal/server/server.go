// Package server turns the batch pricing library into pricing-as-a-service:
// a long-running daemon exposing every registered problem kind over
// HTTP/JSON through one generic, registry-driven handler, backed by
// internal/engine's admission-controlled solve scheduler — a shared LRU
// cache of solved artifacts keyed by canonical problem fingerprints,
// singleflight deduplication of concurrent identical requests, and a
// bounded worker pool + bounded queue that sheds overload with HTTP 429
// instead of spawning unbounded solver goroutines.
//
// The economics mirror the systems in PAPERS.md that keep hot state next to
// the compute: the expensive artifact here is a solved policy — a
// backward-induction MDP at paper scale runs for seconds, while a warm
// cache hit is a map lookup — and many requesters price similar batches, so
// deduplication is the common case, not the corner case.
//
// Endpoints:
//
//	POST /v1/solve/{kind}     any registered kind: deadline (Section 3),
//	                          budget (Section 4), tradeoff (Section 6),
//	                          multi (Section 6 extension), …
//	POST /v1/solve/batch      many problems of any kinds, one round trip
//	GET  /healthz             liveness + uptime
//	GET  /metrics             Prometheus-format counters, queue gauges,
//	                          per-kind solve/rejection counters, latency +
//	                          per-stage histograms, live λ̂/cohort analytics
//	GET  /v1/analytics        the live analytics plane: fleet λ̂, per-cohort
//	                          summaries, per-stage latency summaries
//	GET  /debug/requests      the slowest recent request traces, span by span
//
// cmd/priced wraps this package in a binary; the root crowdpricing package
// re-exports the client-facing types. Problem kinds are defined in
// internal/kinds; adding one requires no change here.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"crowdpricing/internal/analytics"
	"crowdpricing/internal/campaign"
	"crowdpricing/internal/engine"
	"crowdpricing/internal/hdr"
	"crowdpricing/internal/kinds"
	"crowdpricing/internal/telemetry"
	"crowdpricing/internal/wal"
)

// Defaults for Options zero values.
const (
	// DefaultCacheSize bounds the policy cache. A paper-scale deadline
	// policy (N=200, 72 intervals) serializes to ~250 KB, so the default
	// caps cache memory around a quarter of a gigabyte.
	DefaultCacheSize = engine.DefaultCacheSize
	// DefaultRequestTimeout bounds how long a request waits for its solve.
	DefaultRequestTimeout = 2 * time.Minute
	// DefaultQueueDepth bounds the engine's cold-solve admission queue.
	DefaultQueueDepth = engine.DefaultQueueDepth
	// MaxBatchItems bounds a single batch request.
	MaxBatchItems = 256
	// batchWorkers caps how many batch items this server submits to the
	// engine concurrently within one request; items beyond it queue.
	// Waiters on an in-flight identical solve hold a slot too, which is
	// fine — they are blocked, not burning CPU, and the cap exists to keep
	// one batch from monopolizing the engine's admission queue.
	batchWorkers = 16
)

// Options configures a Server. The zero value is production-ready.
type Options struct {
	// CacheSize is the maximum number of cached policies (0 =
	// DefaultCacheSize).
	CacheSize int
	// SolverWorkers is the goroutine count inside each cold deadline solve,
	// core.DeadlineProblem.Workers (0 = GOMAXPROCS).
	SolverWorkers int
	// RequestTimeout is how long a request may wait for its solve before
	// the daemon answers 504 (0 = DefaultRequestTimeout). The solve itself
	// keeps running and warms the cache for the retry.
	RequestTimeout time.Duration
	// Workers is the engine's solve worker-pool size — how many cold solves
	// run concurrently (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the engine's admission queue; cold solves beyond it
	// are shed with HTTP 429 (0 = DefaultQueueDepth).
	QueueDepth int
	// Registry maps kind names to problem specifications (nil =
	// kinds.Default(), the built-in deadline/budget/tradeoff/multi set).
	Registry *engine.Registry
	// CampaignTTL expires campaigns idle for longer than this
	// (0 = campaign.DefaultTTL, 30 minutes; negative = never expire).
	CampaignTTL time.Duration
	// QuoterMemoryBudget bounds the bytes of decoded policy tables resident
	// across the campaign runtime's interned quoters (0 = unlimited). Over
	// budget, the least-recently-quoted tables are dropped and re-decoded
	// from the engine's cached artifact bytes on next use.
	QuoterMemoryBudget int64
	// LazyBank defers adaptive bank solving to first use; see
	// campaign.Options.LazyBank.
	LazyBank bool
	// TraceBuffer is how many of the slowest recent request traces
	// /debug/requests retains (0 = telemetry.DefaultKeep; negative
	// disables request tracing entirely, including the per-stage
	// histograms).
	TraceBuffer int
	// TraceSeed seeds the trace-ID generator — the only randomness in the
	// tracing plane, deterministic under a fixed seed by design.
	TraceSeed int64
	// AnalyticsWindow is the trailing-window length, in observed
	// intervals, of the live λ̂ re-fit (0 = analytics.DefaultWindow).
	AnalyticsWindow int
	// Logger receives structured request-failure logs, carrying the
	// request's trace ID when tracing is on (nil = discard).
	Logger *slog.Logger
}

// Server is the pricing service. Create with New, expose with Handler; a
// single Server is safe for arbitrary concurrent use. Close releases the
// engine's worker pool.
type Server struct {
	opts      Options
	registry  *engine.Registry
	engine    *engine.Engine
	campaigns *campaign.Manager
	mux       *http.ServeMux
	start     time.Time

	// latency holds one request-duration histogram per route, recorded
	// around the full handler (decode + cache + solve + encode) and
	// rendered as a Prometheus histogram on /metrics. It is the same
	// log-bucketed instrument the loadbench harness uses, so benchmark
	// reports and production scrapes bin latency identically.
	latency map[string]*hdr.Histogram

	requests   atomic.Int64 // HTTP requests accepted across all endpoints
	errorCount atomic.Int64 // non-2xx responses

	// wal, when attached, is the campaign event log whose counters are
	// rendered on /metrics.
	wal atomic.Pointer[wal.Log]

	// tracer is the request-tracing plane (nil when disabled): per-stage
	// duration histograms plus the keep-slowest trace ring behind
	// /debug/requests. analytics is the live λ̂/cohort fold, fed by the
	// campaign manager's event sink and, at AttachWAL, the recorded log.
	tracer    *telemetry.Tracer
	analytics *analytics.Aggregator
	logger    *slog.Logger
}

// New builds a Server; see Options for the knobs.
func New(opts Options) *Server {
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	reg := opts.Registry
	if reg == nil {
		reg = kinds.Default()
	}
	s := &Server{
		opts:     opts,
		registry: reg,
		engine: engine.New(engine.Options{
			CacheSize:         opts.CacheSize,
			Workers:           opts.Workers,
			QueueDepth:        opts.QueueDepth,
			SolverParallelism: opts.SolverWorkers,
		}),
		mux: http.NewServeMux(),
		//crowdlint:allow determinism -- process start time feeds the uptime gauge only
		start:   time.Now(),
		latency: make(map[string]*hdr.Histogram),
	}
	s.logger = opts.Logger
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	if opts.TraceBuffer >= 0 {
		s.tracer = telemetry.NewTracer(opts.TraceBuffer, opts.TraceSeed)
	}
	s.analytics = analytics.New(opts.AnalyticsWindow)
	s.campaigns = campaign.NewManager(s.engine, reg, campaign.Options{
		TTL:                opts.CampaignTTL,
		QuoterMemoryBudget: opts.QuoterMemoryBudget,
		LazyBank:           opts.LazyBank,
	})
	s.campaigns.AttachSink(s.analytics)
	// One generic handler per registered kind: the route set is the
	// registry, so adding a problem kind adds its endpoint with no code
	// here. Kind names that would collide with the server's own routes are
	// rejected up front — otherwise the mux's duplicate-pattern panic would
	// surface with no hint of the cause.
	for _, kind := range reg.Kinds() {
		if kind == "batch" {
			panic(fmt.Sprintf("server: registry kind %q collides with the reserved /v1/solve/batch route", kind))
		}
		def, _ := reg.Lookup(kind)
		s.route("/v1/solve/"+kind, s.post(s.handleKind(def)))
	}
	s.route("/v1/solve/batch", s.post(s.handleBatch))
	// The stateful campaign API: method-scoped patterns, the modern mux
	// idiom — the wildcard {id} binds through r.PathValue.
	s.route("POST /v1/campaigns", s.counted(s.handleCampaignCreate))
	s.route("POST /v1/campaigns/{id}/observe", s.counted(s.handleCampaignObserve))
	s.route("GET /v1/campaigns/{id}/price", s.counted(s.handleCampaignPrice))
	s.route("GET /v1/campaigns/{id}", s.counted(s.handleCampaignState))
	s.route("DELETE /v1/campaigns/{id}", s.counted(s.handleCampaignFinish))
	s.route("/healthz", s.handleHealthz)
	s.route("/metrics", s.handleMetrics)
	s.route("GET /v1/analytics", s.handleAnalytics)
	s.route("GET /debug/requests", s.handleDebugRequests)
	return s
}

// Close stops the engine's worker pool and the campaign expiry sweeper;
// in-flight solves finish, queued ones fail fast. The HTTP surface keeps
// answering (warm hits and live campaigns still work).
func (s *Server) Close() {
	s.campaigns.Close()
	s.engine.Close()
}

// statusWriter captures the response status (and whether anything was
// written) so the route wrapper can attribute a status to every trace and
// still answer 500 when a handler panics before writing.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// route registers h at path wrapped with request tracing and per-endpoint
// latency recording. The recording runs in a deferred recover, so every
// request lands in the histogram — panicking handlers and 429-shed
// requests included, not just the happy path — and a panic answers 500
// (when nothing was written yet) instead of killing the connection.
func (s *Server) route(path string, h http.HandlerFunc) {
	hist := hdr.New()
	s.latency[path] = hist
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		//crowdlint:allow determinism -- request-latency histogram wants wall time
		begin := time.Now()
		tr := s.tracer.Start(path)
		if tr != nil {
			r = r.WithContext(telemetry.NewContext(r.Context(), tr))
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				if sw.wrote {
					s.errorCount.Add(1)
				} else {
					s.fail(sw, http.StatusInternalServerError, errors.New("internal error"))
				}
				s.logger.Error("request handler panicked",
					"endpoint", path, "trace_id", tr.ID(), "panic", fmt.Sprint(rec))
			}
			//crowdlint:allow determinism -- request-latency histogram wants wall time
			hist.Record(time.Since(begin))
			s.tracer.Finish(tr, sw.status)
		}()
		h(sw, r)
	})
}

// Handler returns the HTTP handler serving the full API surface.
func (s *Server) Handler() http.Handler { return s.mux }

// AttachWAL makes the campaign event log live: the campaign manager
// starts emitting events to it and /metrics renders its counters. The
// log's recorded history is folded into the analytics plane first, so λ̂
// and the cohort summaries carry pre-restart traffic (ReplayWAL rebuilds
// state without emitting sink events — the fold here is the only source
// of recorded history, never a double count). Call it after replaying the
// log at boot (Campaigns().ReplayWAL) and before serving mutations.
func (s *Server) AttachWAL(l *wal.Log) {
	s.wal.Store(l)
	if err := campaign.FoldWAL(l, s.analytics); err != nil {
		// Analytics over a partly unreadable log is degraded, not fatal —
		// the transactional plane already replayed what it could.
		s.logger.Warn("analytics: folding event-log history failed", "error", err)
	}
	s.campaigns.AttachWAL(l)
}

// MetricsSnapshot is a consistent-enough point-in-time read of the
// counters, exposed for tests and for embedding applications; the /metrics
// endpoint renders the same numbers in Prometheus text format.
type MetricsSnapshot struct {
	Requests           int64
	CacheHits          int64
	CacheMisses        int64
	Solves             int64
	SingleflightShared int64
	Errors             int64
	CacheEntries       int64
	// QueueDepth and InFlightSolves are the engine's scheduler gauges.
	QueueDepth     int64
	InFlightSolves int64
	// SolvesByKind and RejectedByKind split solver executions and
	// queue-overflow rejections per problem kind.
	SolvesByKind   map[string]int64
	RejectedByKind map[string]int64
	// CampaignsActive is the live-campaign gauge; CampaignQuotes,
	// CampaignReplans, and CampaignsExpired are the campaign runtime's
	// lifetime counters.
	CampaignsActive  int64
	CampaignQuotes   int64
	CampaignReplans  int64
	CampaignsExpired int64
	// QuoterInterned and QuoterResidentBytes gauge the campaign runtime's
	// policy-table intern layer; QuoterInternHits / QuoterInternMisses /
	// QuoterRedecodes are its lifetime counters.
	QuoterInterned      int64
	QuoterResidentBytes int64
	QuoterInternHits    int64
	QuoterInternMisses  int64
	QuoterRedecodes     int64
}

// Metrics returns the current counter values.
func (s *Server) Metrics() MetricsSnapshot {
	em := s.engine.Metrics()
	cm := s.campaigns.Metrics()
	return MetricsSnapshot{
		CampaignsActive:     cm.Active,
		CampaignQuotes:      cm.Quotes,
		CampaignReplans:     cm.Replans,
		CampaignsExpired:    cm.Expired,
		QuoterInterned:      cm.QuoterInterned,
		QuoterResidentBytes: cm.QuoterResidentBytes,
		QuoterInternHits:    cm.QuoterInternHits,
		QuoterInternMisses:  cm.QuoterInternMisses,
		QuoterRedecodes:     cm.QuoterRedecodes,
		Requests:            s.requests.Load(),
		CacheHits:           em.CacheHits,
		CacheMisses:         em.CacheMisses,
		Solves:              em.Solves,
		SingleflightShared:  em.FlightShared,
		Errors:              s.errorCount.Load(),
		CacheEntries:        em.CacheEntries,
		QueueDepth:          em.QueueDepth,
		InFlightSolves:      em.InFlight,
		SolvesByKind:        em.SolvesByKind,
		RejectedByKind:      em.RejectedByKind,
	}
}

// post wraps a handler with method enforcement and the request counter.
func (s *Server) post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.fail(w, http.StatusMethodNotAllowed, errors.New("use POST"))
			return
		}
		h(w, r)
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.errorCount.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

func (s *Server) ok(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// solveSpec submits one spec to the engine and wraps the outcome in the
// service envelope.
func (s *Server) solveSpec(ctx context.Context, spec engine.Spec) (*SolveResponse, error) {
	res, err := s.engine.Solve(ctx, spec)
	if err != nil {
		return nil, err
	}
	return &SolveResponse{
		Kind:        spec.Kind(),
		Fingerprint: res.Fingerprint,
		CacheHit:    res.CacheHit,
		SolveMillis: res.SolveMillis,
		Result:      res.Value,
	}, nil
}

// respond maps a solve outcome to HTTP: validation problems are the
// client's fault (400), queue overflow is backpressure (429), timeouts are
// 504, anything else is 500.
func (s *Server) respond(w http.ResponseWriter, resp *SolveResponse, err error) {
	switch {
	case err == nil:
		s.ok(w, resp)
	case engine.IsInvalidSpec(err):
		s.fail(w, http.StatusBadRequest, err)
	case errors.Is(err, engine.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		s.fail(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.fail(w, http.StatusGatewayTimeout, errors.New("solve timed out; the policy is still being computed, retry to pick it up"))
	default:
		s.fail(w, http.StatusInternalServerError, err)
	}
}

// maxBodyBytes bounds request bodies so one connection cannot buffer
// unbounded JSON into memory. 32 MiB comfortably fits the largest
// acceptable batch (MaxBatchItems items at MaxIntervals lambdas each).
const maxBodyBytes = 32 << 20

func decodeInto(w http.ResponseWriter, r *http.Request, v any) error {
	tr := telemetry.FromContext(r.Context())
	start := tr.Now()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	tr.ObserveSince(telemetry.StageServerDecode, start)
	if err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
}

// handleKind returns the generic solve handler for one registered kind:
// decode into the registry's Spec, submit to the engine, map the outcome.
func (s *Server) handleKind(def engine.KindDef) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		spec := def.New()
		if err := decodeInto(w, r, spec); err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		resp, err := s.solveSpec(ctx, spec)
		s.respond(w, resp, err)
	}
}

// batchJob pairs a decoded spec (or its decode error) with the result slot
// it answers into.
type batchJob struct {
	spec engine.Spec
	err  error
	slot *BatchResult
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeInto(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	total := len(req.Deadline) + len(req.Budget) + len(req.Tradeoff) + len(req.Items)
	if total == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if total > MaxBatchItems {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch has %d items, limit is %d", total, MaxBatchItems))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	resp := BatchResponse{
		Deadline: make([]BatchResult, len(req.Deadline)),
		Budget:   make([]BatchResult, len(req.Budget)),
		Tradeoff: make([]BatchResult, len(req.Tradeoff)),
		Items:    make([]BatchResult, len(req.Items)),
	}
	jobs := make([]batchJob, 0, total)
	// The typed legacy arrays are already decoded specs.
	for i := range req.Deadline {
		jobs = append(jobs, batchJob{spec: &req.Deadline[i], slot: &resp.Deadline[i]})
	}
	for i := range req.Budget {
		jobs = append(jobs, batchJob{spec: &req.Budget[i], slot: &resp.Budget[i]})
	}
	for i := range req.Tradeoff {
		jobs = append(jobs, batchJob{spec: &req.Tradeoff[i], slot: &resp.Tradeoff[i]})
	}
	// Generic items resolve their kind through the registry; a bad kind or
	// body fails that item alone, never the batch.
	for i := range req.Items {
		job := batchJob{slot: &resp.Items[i]}
		def, ok := s.registry.Lookup(req.Items[i].Kind)
		if !ok {
			job.err = fmt.Errorf("unknown problem kind %q", req.Items[i].Kind)
		} else {
			spec := def.New()
			if err := strictUnmarshal(req.Items[i].Request, spec); err != nil {
				job.err = fmt.Errorf("bad %s request: %w", req.Items[i].Kind, err)
			} else {
				job.spec = spec
			}
		}
		jobs = append(jobs, job)
	}

	// Items run concurrently so identical ones collapse onto one solve via
	// the engine's singleflight layer (a batch of N clones costs one
	// solve), but the fan-out is capped: distinct items queue on the
	// semaphore instead of flooding the engine's admission queue.
	sem := make(chan struct{}, batchWorkers)
	var wg sync.WaitGroup
	for i := range jobs {
		job := &jobs[i]
		if job.err != nil {
			job.slot.Error = job.err.Error()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := s.solveSpec(ctx, job.spec)
			if err != nil {
				job.slot.Error = err.Error()
				return
			}
			job.slot.Response = res
		}()
	}
	wg.Wait()
	s.ok(w, resp)
}

// strictUnmarshal decodes raw into v rejecting unknown fields, matching the
// top-level decoder's strictness for nested batch items.
func strictUnmarshal(raw json.RawMessage, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// HealthStatus is the /healthz body.
type HealthStatus struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	CacheEntries  int     `json:"cache_entries"`
	// Kinds lists the problem kinds this daemon serves.
	Kinds []string `json:"kinds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.ok(w, HealthStatus{
		Status: "ok",
		//crowdlint:allow determinism -- uptime gauge wants wall time
		UptimeSeconds: time.Since(s.start).Seconds(),
		CacheEntries:  int(s.engine.Metrics().CacheEntries),
		Kinds:         s.registry.Kinds(),
	})
}

// latencyBuckets are the `le` bounds (seconds) of the request-duration
// histogram exposed on /metrics, spanning warm cache hits (microseconds)
// through paper-scale cold solves (seconds). Cumulative counts are resolved
// at the underlying hdr bucket granularity (≤3.1% relative error).
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	m := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, row := range []struct {
		name, typ, help string
		value           int64
	}{
		{"crowdpricing_requests_total", "counter", "HTTP requests accepted.", m.Requests},
		{"crowdpricing_cache_hits_total", "counter", "Solve requests served from the warm policy cache.", m.CacheHits},
		{"crowdpricing_cache_misses_total", "counter", "Solve requests that consulted the solver layer.", m.CacheMisses},
		{"crowdpricing_singleflight_shared_total", "counter", "Requests deduplicated onto another request's in-flight solve.", m.SingleflightShared},
		{"crowdpricing_errors_total", "counter", "Non-2xx responses.", m.Errors},
		{"crowdpricing_cache_entries", "gauge", "Policies currently cached.", m.CacheEntries},
		{"crowdpricing_queue_depth", "gauge", "Cold solves admitted and waiting for a worker.", m.QueueDepth},
		{"crowdpricing_inflight_solves", "gauge", "Solves currently occupying an engine worker.", m.InFlightSolves},
		{"crowdpricing_campaigns_active", "gauge", "Live campaigns in the table.", m.CampaignsActive},
		{"crowdpricing_campaign_quotes_total", "counter", "Prices quoted from live campaigns.", m.CampaignQuotes},
		{"crowdpricing_campaign_replans_total", "counter", "Adaptive policy switches across all campaigns.", m.CampaignReplans},
		{"crowdpricing_campaigns_expired_total", "counter", "Campaigns expired by the idle TTL sweeper.", m.CampaignsExpired},
		{"crowdpricing_quoter_interned", "gauge", "Distinct policy tables in the campaign quoter intern table.", m.QuoterInterned},
		{"crowdpricing_quoter_resident_bytes", "gauge", "Decoded policy-table bytes currently resident across interned quoters.", m.QuoterResidentBytes},
		{"crowdpricing_quoter_intern_hits_total", "counter", "Campaign policy lookups served by an already-interned table.", m.QuoterInternHits},
		{"crowdpricing_quoter_intern_misses_total", "counter", "Campaign policy lookups that interned a new table.", m.QuoterInternMisses},
		{"crowdpricing_quoter_redecodes_total", "counter", "Policy tables re-decoded after the memory budget evicted them.", m.QuoterRedecodes},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			row.name, row.help, row.name, row.typ, row.name, row.value)
	}
	s.writeKindCounter(w, "crowdpricing_solves_total",
		"Solver executions actually performed, by problem kind.", m.SolvesByKind)
	s.writeKindCounter(w, "crowdpricing_rejections_total",
		"Cold solves shed with 429 because the admission queue was full, by problem kind.", m.RejectedByKind)
	s.writeWALMetrics(w)
	s.writeAnalyticsMetrics(w)
	s.writeLatencyHistogram(w)
	s.writeStageHistograms(w)
}

// writeWALMetrics renders the campaign event log's families — only when a
// log is attached, so a daemon running without durability exposes no
// always-zero series.
func (s *Server) writeWALMetrics(w http.ResponseWriter) {
	l := s.wal.Load()
	if l == nil {
		return
	}
	wm := l.Metrics()
	for _, row := range []struct {
		name, typ, help string
		value           int64
	}{
		{"crowdpricing_wal_appends_total", "counter", "Records appended to the campaign event log.", wm.Appends},
		{"crowdpricing_wal_fsyncs_total", "counter", "Group-commit flushes fsynced to the event log.", wm.Fsyncs},
		{"crowdpricing_wal_bytes_total", "counter", "Framed bytes appended to the event log.", wm.Bytes},
		{"crowdpricing_wal_compactions_total", "counter", "Event-log compactions into a snapshot record.", wm.Compactions},
		{"crowdpricing_wal_segments", "gauge", "Event-log segment files currently on disk.", wm.Segments},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			row.name, row.help, row.name, row.typ, row.name, row.value)
	}
	for _, row := range []struct {
		name, help string
		value      float64
	}{
		{"crowdpricing_wal_replay_seconds", "Wall time of the boot-time event-log replay.", wm.ReplaySeconds},
		{"crowdpricing_wal_last_compaction_timestamp_seconds", "Unix time of the last event-log compaction (0 = never).", wm.LastCompactionUnixSeconds},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
			row.name, row.help, row.name, row.name, row.value)
	}
}

// writeKindCounter renders one kind-labeled counter family. Every
// registered kind gets a series (zero until touched) so dashboards see a
// stable label set; kinds observed by the engine but absent from the
// registry (embedded custom specs) are appended after.
func (s *Server) writeKindCounter(w http.ResponseWriter, name, help string, byKind map[string]int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	known := s.registry.Kinds()
	seen := make(map[string]bool, len(known))
	for _, kind := range known {
		seen[kind] = true
		fmt.Fprintf(w, "%s{kind=%q} %d\n", name, kind, byKind[kind])
	}
	extra := make([]string, 0, len(byKind))
	for kind := range byKind {
		if !seen[kind] {
			extra = append(extra, kind)
		}
	}
	sort.Strings(extra)
	for _, kind := range extra {
		fmt.Fprintf(w, "%s{kind=%q} %d\n", name, kind, byKind[kind])
	}
}

// writeLatencyHistogram renders the per-endpoint request-duration
// histograms in Prometheus exposition format: one metric family with an
// `endpoint` label, `_bucket` series per `le` bound plus `+Inf`, and the
// conventional `_sum`/`_count` pair, all in base seconds.
func (s *Server) writeLatencyHistogram(w http.ResponseWriter) {
	const name = "crowdpricing_request_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Wall time per HTTP request, by endpoint.\n# TYPE %s histogram\n", name, name)
	paths := make([]string, 0, len(s.latency))
	for p := range s.latency {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		h := s.latency[path]
		// Read the total once so +Inf and _count agree even while requests
		// are recording concurrently; cap the per-bound cumulative counts
		// at it so the series stays monotone under the same races.
		total := h.Count()
		for _, le := range latencyBuckets {
			n := h.CountAtOrBelow(int64(le * 1e9))
			if n > total {
				n = total
			}
			fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=%q} %d\n",
				name, path, strconv.FormatFloat(le, 'g', -1, 64), n)
		}
		fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, path, total)
		fmt.Fprintf(w, "%s_sum{endpoint=%q} %g\n", name, path, float64(h.Sum())/1e9)
		fmt.Fprintf(w, "%s_count{endpoint=%q} %d\n", name, path, total)
	}
}
