package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newHTTPTestServer serves an arbitrary handler for client-side tests.
func newHTTPTestServer(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// campaignDeadlineRequest is a small, fast-solving deadline problem for
// campaign lifecycle tests.
func campaignDeadlineRequest() DeadlineRequest {
	return DeadlineRequest{
		N:            10,
		HorizonHours: 4,
		Intervals:    8,
		Lambdas:      []float64{12, 12, 12, 12, 12, 12, 12, 12},
		Accept:       testAccept,
		MinPrice:     1,
		MaxPrice:     25,
		Penalty:      100,
		TruncEps:     1e-9,
	}
}

// TestCampaignLifecycleHTTP is the acceptance-criteria walk: create →
// observe → quote → finish over real HTTP, every quoted price checked
// against the solved policy table, fully deterministic.
func TestCampaignLifecycleHTTP(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)
	ctx := context.Background()
	req := campaignDeadlineRequest()

	// Ground truth: the same problem solved through the stateless endpoint.
	solved, err := client.SolveDeadline(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := solved.DecodePolicy()
	if err != nil {
		t.Fatal(err)
	}

	st, err := client.CreateCampaign(ctx, KindDeadline, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.SolveCacheHit {
		t.Error("campaign create re-solved a problem the cache already held")
	}
	if st.Remaining[0] != req.N || st.Interval != 0 || st.Horizon != req.Intervals {
		t.Fatalf("fresh campaign state %+v", st)
	}

	n := req.N
	for tt := 0; tt < req.Intervals; tt++ {
		q, err := client.CampaignPrice(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if want := pol.PriceAt(n, tt); q.Price != want {
			t.Fatalf("interval %d, %d remaining: quoted %d over HTTP, policy table says %d", tt, n, q.Price, want)
		}
		done := 0
		if n > 0 {
			done = 1
		}
		after, err := client.ObserveCampaign(ctx, st.ID, 12, []int{done})
		if err != nil {
			t.Fatal(err)
		}
		n -= done
		if after.Interval != tt+1 || after.Remaining[0] != n {
			t.Fatalf("state after observe %d: %+v, want interval %d remaining %d", tt, after, tt+1, n)
		}
	}

	sum, err := client.FinishCampaign(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Intervals != req.Intervals || sum.Quotes != int64(req.Intervals) {
		t.Fatalf("summary %+v", sum)
	}
	if _, err := client.CampaignPrice(ctx, st.ID); apiStatus(err) != http.StatusNotFound {
		t.Fatalf("price after finish: %v, want 404", err)
	}
}

// apiStatus extracts the HTTP status from an APIError (0 otherwise).
func apiStatus(err error) int {
	if apiErr, ok := err.(*APIError); ok {
		return apiErr.StatusCode
	}
	return 0
}

// TestCampaignSnapshotRestartHTTP proves the restart story end-to-end:
// campaigns created and advanced over HTTP on daemon A, snapshot, restore
// into a brand-new daemon B, and B quotes byte-identical prices.
func TestCampaignSnapshotRestartHTTP(t *testing.T) {
	srvA, tsA := newTestServer(t, Options{})
	clientA := NewClient(tsA.URL)
	ctx := context.Background()

	st, err := clientA.CreateCampaign(ctx, KindDeadline, campaignDeadlineRequest(),
		&CampaignAdaptiveOptions{WindowIntervals: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := clientA.ObserveCampaign(ctx, st.ID, float64(20+5*i), []int{1}); err != nil {
			t.Fatal(err)
		}
	}

	var snap bytes.Buffer
	if err := srvA.Campaigns().Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	srvB, tsB := newTestServer(t, Options{})
	if err := srvB.Campaigns().Restore(ctx, bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	clientB := NewClient(tsB.URL)

	qa, err := clientA.CampaignPrice(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := clientB.CampaignPrice(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if qa.Price != qb.Price || qa.Interval != qb.Interval || qa.ActiveFactor != qb.ActiveFactor {
		t.Fatalf("restored daemon quotes %+v, original %+v", qb, qa)
	}
}

// TestCampaignHTTPErrors pins the error → status map.
func TestCampaignHTTPErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)
	ctx := context.Background()

	if _, err := client.CampaignPrice(ctx, "no-such-campaign"); apiStatus(err) != http.StatusNotFound {
		t.Errorf("unknown id: %v, want 404", err)
	}
	if _, err := client.FinishCampaign(ctx, "no-such-campaign"); apiStatus(err) != http.StatusNotFound {
		t.Errorf("finish unknown id: %v, want 404", err)
	}
	if _, err := client.CreateCampaign(ctx, KindBudget, testBudgetRequest(), nil); apiStatus(err) != http.StatusBadRequest {
		t.Errorf("budget campaign: %v, want 400", err)
	}
	if _, err := client.CreateCampaign(ctx, KindTradeoff, testTradeoffRequest(), &CampaignAdaptiveOptions{}); apiStatus(err) != http.StatusBadRequest {
		t.Errorf("adaptive tradeoff campaign: %v, want 400", err)
	}
	if _, err := client.CreateCampaign(ctx, KindDeadline, map[string]any{"n": -5}, nil); apiStatus(err) != http.StatusBadRequest {
		t.Errorf("invalid problem: %v, want 400", err)
	}

	st, err := client.CreateCampaign(ctx, KindDeadline, campaignDeadlineRequest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.ObserveCampaign(ctx, st.ID, -3, nil); apiStatus(err) != http.StatusBadRequest {
		t.Errorf("negative arrivals: %v, want 400", err)
	}
	if _, err := client.ObserveCampaign(ctx, st.ID, 5, []int{1, 2}); apiStatus(err) != http.StatusBadRequest {
		t.Errorf("wrong completion arity: %v, want 400", err)
	}

	// Wrong method on a campaign route: the mux's method patterns answer
	// 405 with Allow set.
	res, err := http.Post(ts.URL+"/v1/campaigns/"+st.ID+"/price", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST on price route: %d, want 405", res.StatusCode)
	}
}

// TestFlexCounts pins the wire flexibility of "completed".
func TestFlexCounts(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []int
		ok   bool
	}{
		{`{"arrivals": 1, "completed": 3}`, []int{3}, true},
		{`{"arrivals": 1, "completed": [1, 2]}`, []int{1, 2}, true},
		{`{"arrivals": 1, "completed": null}`, nil, true},
		{`{"arrivals": 1}`, nil, true},
		{`{"arrivals": 1, "completed": "three"}`, nil, false},
	} {
		var req CampaignObserveRequest
		err := json.Unmarshal([]byte(tc.in), &req)
		if tc.ok != (err == nil) {
			t.Errorf("%s: err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if len(req.Completed) != len(tc.want) {
			t.Errorf("%s: decoded %v, want %v", tc.in, req.Completed, tc.want)
			continue
		}
		for i := range tc.want {
			if req.Completed[i] != tc.want[i] {
				t.Errorf("%s: decoded %v, want %v", tc.in, req.Completed, tc.want)
			}
		}
	}
}

// TestCampaignMetrics checks the campaign gauges/counters surface on
// /metrics and through the snapshot.
func TestCampaignMetrics(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	client := NewClient(ts.URL)
	ctx := context.Background()

	st, err := client.CreateCampaign(ctx, KindDeadline, campaignDeadlineRequest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.CampaignPrice(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
	}

	m := s.Metrics()
	if m.CampaignsActive != 1 || m.CampaignQuotes != 3 {
		t.Fatalf("snapshot %+v, want 1 active campaign and 3 quotes", m)
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"crowdpricing_campaigns_active 1",
		"crowdpricing_campaign_quotes_total 3",
		"crowdpricing_campaign_replans_total 0",
		"crowdpricing_campaigns_expired_total 0",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// flakyHandler sheds the first `shed` solve requests with 429 +
// Retry-After, then delegates to a real server — the shape of a daemon
// recovering from a queue-full burst.
func flakyHandler(t *testing.T, shed int, inner http.Handler) http.Handler {
	t.Helper()
	var attempts int
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= shed {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintf(w, `{"error": "engine: solve queue is full, retry later"}`)
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// TestSolveWithRetry: the client rides out transient 429 shedding and
// returns the solve the daemon eventually accepts.
func TestSolveWithRetry(t *testing.T) {
	s := New(Options{})
	t.Cleanup(s.Close)
	ts := newHTTPTestServer(t, flakyHandler(t, 2, s.Handler()))
	client := NewClient(ts.URL)

	opts := RetryOptions{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Jitter:      func() float64 { return 0.5 },
	}
	resp, err := client.SolveWithRetry(context.Background(), KindBudget, testBudgetRequest(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindBudget || len(resp.Result) == 0 {
		t.Fatalf("retried solve returned %+v", resp)
	}
}

// TestSolveWithRetryExhausted: persistent backpressure surfaces the final
// 429 after MaxAttempts tries.
func TestSolveWithRetryExhausted(t *testing.T) {
	s := New(Options{})
	t.Cleanup(s.Close)
	ts := newHTTPTestServer(t, flakyHandler(t, 1000, s.Handler()))
	client := NewClient(ts.URL)

	opts := RetryOptions{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	_, err := client.SolveWithRetry(context.Background(), KindBudget, testBudgetRequest(), opts)
	if !RetryOn429(err) {
		t.Fatalf("exhausted retries returned %v, want the 429 APIError", err)
	}
	if apiErr := err.(*APIError); apiErr.RetryAfter != 0 {
		// Retry-After: 0 parses as a zero hint — the header was honored as
		// a floor of zero, not dropped.
		t.Fatalf("RetryAfter = %v, want 0 from the 0-second header", apiErr.RetryAfter)
	}
}

// TestSolveWithRetryNonRetryable: a 400 returns immediately, no retries.
func TestSolveWithRetryNonRetryable(t *testing.T) {
	var attempts int
	ts := newHTTPTestServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprintf(w, `{"error": "bad request"}`)
	}))
	client := NewClient(ts.URL)
	_, err := client.SolveWithRetry(context.Background(), KindBudget, testBudgetRequest(),
		RetryOptions{MaxAttempts: 5, BaseDelay: time.Millisecond})
	if apiStatus(err) != http.StatusBadRequest {
		t.Fatalf("err=%v, want 400", err)
	}
	if attempts != 1 {
		t.Fatalf("client retried a 400 %d times", attempts)
	}
}

// TestSolveWithRetryCtxBounded: a context that expires during the backoff
// wait aborts promptly with ctx.Err().
func TestSolveWithRetryCtxBounded(t *testing.T) {
	ts := newHTTPTestServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	begin := time.Now()
	_, err := client.SolveWithRetry(ctx, KindBudget, testBudgetRequest(),
		RetryOptions{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Minute})
	if err != context.DeadlineExceeded {
		t.Fatalf("err=%v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("retry waited %v past its context", elapsed)
	}
}

// TestRetryBackoff pins the wait computation: doubling with proportional
// jitter, floored by Retry-After, capped by MaxDelay.
func TestRetryBackoff(t *testing.T) {
	o := RetryOptions{
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  2 * time.Second,
		Jitter:    func() float64 { return 0.5 }, // multiplier exactly 1.0
	}.normalized()
	for _, tc := range []struct {
		attempt    int
		retryAfter time.Duration
		want       time.Duration
	}{
		{0, 0, 100 * time.Millisecond},
		{1, 0, 200 * time.Millisecond},
		{2, 0, 400 * time.Millisecond},
		{0, time.Second, time.Second},     // Retry-After floors the wait
		{30, 0, 2 * time.Second},          // shift overflow hits the cap
		{0, time.Minute, 2 * time.Second}, // a hostile hint is capped
		{4, 500 * time.Millisecond, 1600 * time.Millisecond},
	} {
		if got := o.backoff(tc.attempt, tc.retryAfter); got != tc.want {
			t.Errorf("backoff(%d, %v) = %v, want %v", tc.attempt, tc.retryAfter, got, tc.want)
		}
	}
}
