package server

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"
)

// RetryOn429 reports whether err is the daemon's intentional backpressure
// (HTTP 429: the solve admission queue or the campaign table was full) —
// the one error class where an automatic retry is always correct, because
// the daemon did no work and explicitly asked the client to come back.
func RetryOn429(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.IsBackpressure()
}

// RetryOptions tunes SolveWithRetry. The zero value is production-ready.
type RetryOptions struct {
	// MaxAttempts is the total number of Solve attempts, the first
	// included (0 = 4).
	MaxAttempts int
	// BaseDelay is the first backoff wait; subsequent waits double
	// (0 = 100ms).
	BaseDelay time.Duration
	// MaxDelay caps a single wait, after the Retry-After floor is applied
	// (0 = 5s).
	MaxDelay time.Duration
	// Jitter returns a uniform draw in [0, 1); nil uses math/rand. Tests
	// inject a deterministic source here.
	Jitter func() float64
}

func (o RetryOptions) normalized() RetryOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 100 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 5 * time.Second
	}
	if o.Jitter == nil {
		o.Jitter = rand.Float64
	}
	return o
}

// backoff computes the wait before attempt (0-based counting of completed
// attempts): exponential doubling from BaseDelay with proportional jitter
// in [0.5, 1.5), floored at the daemon's Retry-After hint — the server
// knows its queue better than any client heuristic — and capped at
// MaxDelay so a pathological hint cannot park the client.
func (o RetryOptions) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := o.BaseDelay << attempt
	if d <= 0 || d > o.MaxDelay { // overflow or past the cap
		d = o.MaxDelay
	}
	d = time.Duration(float64(d) * (0.5 + o.Jitter()))
	if d < retryAfter {
		d = retryAfter
	}
	if d > o.MaxDelay {
		d = o.MaxDelay
	}
	return d
}

// SolveWithRetry is Solve plus backpressure handling: when the daemon sheds
// the request with 429, it waits — honoring the Retry-After header, with
// jittered exponential backoff so a thundering herd of shed clients does
// not return in lockstep — and retries, up to opts.MaxAttempts attempts,
// every wait bounded by ctx. Any error other than backpressure returns
// immediately: 400s won't get better and 5xx/timeouts have their own
// semantics (the solve may still be warming the cache).
func (c *Client) SolveWithRetry(ctx context.Context, kind string, req any, opts RetryOptions) (*SolveResponse, error) {
	o := opts.normalized()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for attempt := 0; ; attempt++ {
		resp, err := c.Solve(ctx, kind, req)
		if err == nil || !RetryOn429(err) || attempt+1 >= o.MaxAttempts {
			return resp, err
		}
		var apiErr *APIError
		errors.As(err, &apiErr)
		timer.Reset(o.backoff(attempt, apiErr.RetryAfter))
		select {
		case <-ctx.Done():
			if !timer.Stop() {
				<-timer.C
			}
			return nil, ctx.Err()
		case <-timer.C:
		}
	}
}
