package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"crowdpricing/internal/telemetry"
)

// Client is a typed HTTP client for the pricing service. The zero value is
// not usable; create one with NewClient. Safe for concurrent use.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client; nil means http.DefaultClient. Set a
	// Timeout here to bound the whole round trip client-side (the daemon
	// separately bounds solve time with its -timeout flag).
	HTTP *http.Client
}

// NewClient returns a Client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// APIError is a non-2xx reply from the daemon, carrying the HTTP status and
// the server's structured error message when one was sent. Inspect
// StatusCode to distinguish client faults (400), backpressure (429, the
// admission queue was full — retry later), and timeouts (504).
type APIError struct {
	// StatusCode is the numeric HTTP status, e.g. 429.
	StatusCode int
	// Status is the full status line, e.g. "429 Too Many Requests".
	Status string
	// Message is the daemon's error body, when it sent one.
	Message string
	// RetryAfter is the daemon's Retry-After hint (zero when the header was
	// absent or unparseable). On backpressure replies it is how long the
	// daemon suggests waiting before retrying; SolveWithRetry honors it.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("server: %s: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("server: %s", e.Status)
}

// IsBackpressure reports whether the daemon shed this request because its
// solve queue was full (HTTP 429); the request did no solver work and can
// be retried after a backoff.
func (e *APIError) IsBackpressure() bool { return e.StatusCode == http.StatusTooManyRequests }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	return c.do(ctx, http.MethodPost, path, in, out)
}

// do executes one JSON round trip: method on path with in as the body (nil
// sends no body) and the 200 response decoded into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		apiErr := &APIError{StatusCode: res.StatusCode, Status: res.Status}
		if secs, err := strconv.Atoi(res.Header.Get("Retry-After")); err == nil && secs >= 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		var e errorResponse
		if json.NewDecoder(io.LimitReader(res.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			apiErr.Message = e.Error
		}
		return apiErr
	}
	return json.NewDecoder(res.Body).Decode(out)
}

// Solve is the kind-generic request path: POST req to /v1/solve/{kind} and
// return the envelope. kind is any name the daemon's registry serves
// ("deadline", "budget", "tradeoff", "multi", …) and req its wire body —
// typically one of the request structs, but any JSON-marshalable value with
// the right shape works. The typed SolveDeadline/SolveBudget/SolveTradeoff
// wrappers delegate here.
func (c *Client) Solve(ctx context.Context, kind string, req any) (*SolveResponse, error) {
	var out SolveResponse
	if err := c.postJSON(ctx, "/v1/solve/"+kind, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveDeadline requests a fixed-deadline dynamic pricing policy; decode
// the result with SolveResponse.DecodePolicy.
func (c *Client) SolveDeadline(ctx context.Context, req DeadlineRequest) (*SolveResponse, error) {
	return c.Solve(ctx, KindDeadline, req)
}

// SolveBudget requests a fixed-budget static allocation; decode the result
// with SolveResponse.DecodeBudget.
func (c *Client) SolveBudget(ctx context.Context, req BudgetRequest) (*SolveResponse, error) {
	return c.Solve(ctx, KindBudget, req)
}

// SolveTradeoff requests a cost/latency trade-off policy; decode the result
// with SolveResponse.DecodeTradeoff.
func (c *Client) SolveTradeoff(ctx context.Context, req TradeoffRequest) (*SolveResponse, error) {
	return c.Solve(ctx, KindTradeoff, req)
}

// CreateCampaign registers a stateful campaign: spec is the kind's solve
// request (a DeadlineRequest value, or any JSON-marshalable body of the
// right shape), adaptive optionally enables §5.2.5 re-planning (deadline
// only). The returned state carries the campaign ID the other campaign
// calls take.
func (c *Client) CreateCampaign(ctx context.Context, kind string, spec any, adaptive *CampaignAdaptiveOptions) (*CampaignState, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var out CampaignState
	if err := c.do(ctx, http.MethodPost, "/v1/campaigns", CreateCampaignRequest{
		Kind:     kind,
		Request:  body,
		Adaptive: adaptive,
	}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ObserveCampaign records one elapsed interval: observed worker arrivals
// and tasks completed (one entry per task type; nil means none).
func (c *Client) ObserveCampaign(ctx context.Context, id string, arrivals float64, completed []int) (*CampaignState, error) {
	var out CampaignState
	req := CampaignObserveRequest{Arrivals: arrivals, Completed: completed}
	if err := c.do(ctx, http.MethodPost, "/v1/campaigns/"+url.PathEscape(id)+"/observe", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CampaignPrice quotes the price the campaign's policy dictates for its
// current state — the O(1) hot path.
func (c *Client) CampaignPrice(ctx context.Context, id string) (*CampaignQuote, error) {
	var out CampaignQuote
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+url.PathEscape(id)+"/price", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CampaignState reads a campaign's current state.
func (c *Client) CampaignState(ctx context.Context, id string) (*CampaignState, error) {
	var out CampaignState
	if err := c.do(ctx, http.MethodGet, "/v1/campaigns/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FinishCampaign removes the campaign and returns its terminal accounting.
func (c *Client) FinishCampaign(ctx context.Context, id string) (*CampaignSummary, error) {
	var out CampaignSummary
	if err := c.do(ctx, http.MethodDelete, "/v1/campaigns/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveBatch submits many problems in one round trip.
func (c *Client) SolveBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.postJSON(ctx, "/v1/solve/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Analytics reads the daemon's live analytics plane: the fleet λ̂ and
// cohort fold plus, when tracing is on, per-stage latency summaries.
func (c *Client) Analytics(ctx context.Context) (*AnalyticsResponse, error) {
	var out AnalyticsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/analytics", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DebugRequests reads the daemon's slowest recent request traces.
func (c *Client) DebugRequests(ctx context.Context) ([]telemetry.TraceSummary, error) {
	var out []telemetry.TraceSummary
	if err := c.do(ctx, http.MethodGet, "/debug/requests", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Healthz reads the daemon's liveness status.
func (c *Client) Healthz(ctx context.Context) (*HealthStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	res, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, &APIError{StatusCode: res.StatusCode, Status: res.Status}
	}
	var out HealthStatus
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
