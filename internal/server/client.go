package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a typed HTTP client for the pricing service. The zero value is
// not usable; create one with NewClient. Safe for concurrent use.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client; nil means http.DefaultClient. Set a
	// Timeout here to bound the whole round trip client-side (the daemon
	// separately bounds solve time with its -timeout flag).
	HTTP *http.Client
}

// NewClient returns a Client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		var e errorResponse
		if json.NewDecoder(io.LimitReader(res.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s: %s", res.Status, e.Error)
		}
		return fmt.Errorf("server: %s", res.Status)
	}
	return json.NewDecoder(res.Body).Decode(out)
}

// SolveDeadline requests a fixed-deadline dynamic pricing policy; decode
// the result with SolveResponse.DecodePolicy.
func (c *Client) SolveDeadline(ctx context.Context, req DeadlineRequest) (*SolveResponse, error) {
	var out SolveResponse
	if err := c.postJSON(ctx, "/v1/solve/deadline", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveBudget requests a fixed-budget static allocation; decode the result
// with SolveResponse.DecodeBudget.
func (c *Client) SolveBudget(ctx context.Context, req BudgetRequest) (*SolveResponse, error) {
	var out SolveResponse
	if err := c.postJSON(ctx, "/v1/solve/budget", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveTradeoff requests a cost/latency trade-off policy; decode the result
// with SolveResponse.DecodeTradeoff.
func (c *Client) SolveTradeoff(ctx context.Context, req TradeoffRequest) (*SolveResponse, error) {
	var out SolveResponse
	if err := c.postJSON(ctx, "/v1/solve/tradeoff", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveBatch submits many problems in one round trip.
func (c *Client) SolveBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.postJSON(ctx, "/v1/solve/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz reads the daemon's liveness status.
func (c *Client) Healthz(ctx context.Context) (*HealthStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	res, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: %s", res.Status)
	}
	var out HealthStatus
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
