package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a typed HTTP client for the pricing service. The zero value is
// not usable; create one with NewClient. Safe for concurrent use.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client; nil means http.DefaultClient. Set a
	// Timeout here to bound the whole round trip client-side (the daemon
	// separately bounds solve time with its -timeout flag).
	HTTP *http.Client
}

// NewClient returns a Client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL}
}

// APIError is a non-2xx reply from the daemon, carrying the HTTP status and
// the server's structured error message when one was sent. Inspect
// StatusCode to distinguish client faults (400), backpressure (429, the
// admission queue was full — retry later), and timeouts (504).
type APIError struct {
	// StatusCode is the numeric HTTP status, e.g. 429.
	StatusCode int
	// Status is the full status line, e.g. "429 Too Many Requests".
	Status string
	// Message is the daemon's error body, when it sent one.
	Message string
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("server: %s: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("server: %s", e.Status)
}

// IsBackpressure reports whether the daemon shed this request because its
// solve queue was full (HTTP 429); the request did no solver work and can
// be retried after a backoff.
func (e *APIError) IsBackpressure() bool { return e.StatusCode == http.StatusTooManyRequests }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		apiErr := &APIError{StatusCode: res.StatusCode, Status: res.Status}
		var e errorResponse
		if json.NewDecoder(io.LimitReader(res.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
			apiErr.Message = e.Error
		}
		return apiErr
	}
	return json.NewDecoder(res.Body).Decode(out)
}

// Solve is the kind-generic request path: POST req to /v1/solve/{kind} and
// return the envelope. kind is any name the daemon's registry serves
// ("deadline", "budget", "tradeoff", "multi", …) and req its wire body —
// typically one of the request structs, but any JSON-marshalable value with
// the right shape works. The typed SolveDeadline/SolveBudget/SolveTradeoff
// wrappers delegate here.
func (c *Client) Solve(ctx context.Context, kind string, req any) (*SolveResponse, error) {
	var out SolveResponse
	if err := c.postJSON(ctx, "/v1/solve/"+kind, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SolveDeadline requests a fixed-deadline dynamic pricing policy; decode
// the result with SolveResponse.DecodePolicy.
func (c *Client) SolveDeadline(ctx context.Context, req DeadlineRequest) (*SolveResponse, error) {
	return c.Solve(ctx, KindDeadline, req)
}

// SolveBudget requests a fixed-budget static allocation; decode the result
// with SolveResponse.DecodeBudget.
func (c *Client) SolveBudget(ctx context.Context, req BudgetRequest) (*SolveResponse, error) {
	return c.Solve(ctx, KindBudget, req)
}

// SolveTradeoff requests a cost/latency trade-off policy; decode the result
// with SolveResponse.DecodeTradeoff.
func (c *Client) SolveTradeoff(ctx context.Context, req TradeoffRequest) (*SolveResponse, error) {
	return c.Solve(ctx, KindTradeoff, req)
}

// SolveBatch submits many problems in one round trip.
func (c *Client) SolveBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.postJSON(ctx, "/v1/solve/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz reads the daemon's liveness status.
func (c *Client) Healthz(ctx context.Context) (*HealthStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	res, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, &APIError{StatusCode: res.StatusCode, Status: res.Status}
	}
	var out HealthStatus
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
