package trace

import (
	"math"
	"testing"

	"crowdpricing/internal/dist"
)

func TestGenerateTaskGroupsShape(t *testing.T) {
	r := dist.NewRNG(1)
	groups := GenerateTaskGroups(PaperGroupModel(), 50, r)
	if len(groups) != 100 {
		t.Fatalf("got %d groups, want 100", len(groups))
	}
	nCat, nDC := 0, 0
	for _, g := range groups {
		if g.WagePerSec <= 0 || g.WorkloadPerHour <= 0 {
			t.Fatalf("non-positive fields: %+v", g)
		}
		switch g.Type {
		case Categorization:
			nCat++
		case DataCollection:
			nDC++
		}
	}
	if nCat != 50 || nDC != 50 {
		t.Errorf("type split %d/%d, want 50/50", nCat, nDC)
	}
}

// TestFitGroupModelRecoversTable2 reproduces the Table 2 regression: the
// fitted per-type coefficients approximate the generative ones (≈780
// shared) and the Data Collection bias clearly exceeds Categorization's.
func TestFitGroupModelRecoversTable2(t *testing.T) {
	r := dist.NewRNG(2)
	m := PaperGroupModel()
	groups := GenerateTaskGroups(m, 200, r)
	fit := FitGroupModel(groups)
	for _, tt := range []TaskType{Categorization, DataCollection} {
		f := fit[tt]
		if math.Abs(f.Alpha-m.Alpha) > 0.15*m.Alpha {
			t.Errorf("%v: alpha %v, want ≈%v", tt, f.Alpha, m.Alpha)
		}
		if math.Abs(f.Bias-m.Bias[tt]) > 0.5 {
			t.Errorf("%v: bias %v, want ≈%v", tt, f.Bias, m.Bias[tt])
		}
	}
	if fit[DataCollection].Bias <= fit[Categorization].Bias {
		t.Error("Data Collection bias should exceed Categorization bias (worker preference)")
	}
}

func TestTaskTypeString(t *testing.T) {
	if Categorization.String() != "Categorization" || DataCollection.String() != "Data Collection" {
		t.Error("bad task type names")
	}
	if TaskType(99).String() != "Unknown" {
		t.Error("bad unknown name")
	}
}

// TestWagePositivelyCorrelatesWorkload is the qualitative Figure 6 claim.
func TestWagePositivelyCorrelatesWorkload(t *testing.T) {
	r := dist.NewRNG(3)
	groups := GenerateTaskGroups(PaperGroupModel(), 100, r)
	// Compare mean log workload of the top and bottom wage halves per type.
	for _, tt := range []TaskType{Categorization, DataCollection} {
		var lowSum, highSum float64
		var lowN, highN int
		for _, g := range groups {
			if g.Type != tt {
				continue
			}
			if g.WagePerSec < 0.002 {
				lowSum += math.Log(g.WorkloadPerHour)
				lowN++
			} else {
				highSum += math.Log(g.WorkloadPerHour)
				highN++
			}
		}
		if lowN == 0 || highN == 0 {
			t.Fatalf("%v: degenerate wage split", tt)
		}
		if highSum/float64(highN) <= lowSum/float64(lowN) {
			t.Errorf("%v: workload not increasing in wage", tt)
		}
	}
}
