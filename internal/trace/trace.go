// Package trace generates the synthetic stand-in for the mturk-tracker data
// the paper's experiments consume. The real feed was a sequence of
// 20-minute marketplace snapshots from 1/1/2014–1/28/2014; the generator
// reproduces its structure — weekly periodicity, a diurnal cycle, a weekend
// dip, Poisson sampling noise, and the New-Year's-Day anomaly that drives
// Figure 10 — without the proprietary data. It also synthesizes the task
// group snapshots behind Table 2 and Figure 6.
package trace

import (
	"math"

	"crowdpricing/internal/dist"
	"crowdpricing/internal/nhpp"
	"crowdpricing/internal/rate"
)

// Bucket constants of the mturk-tracker feed.
const (
	// BucketWidth is the snapshot spacing in hours (20 minutes).
	BucketWidth = 1.0 / 3
	// BucketsPerDay is the number of 20-minute buckets per day.
	BucketsPerDay = 72
	// BucketsPerWeek is the number of buckets per week.
	BucketsPerWeek = 7 * BucketsPerDay
	// Days is the length of the generated trace (1/1–1/28).
	Days = 28
)

// Config shapes the synthetic marketplace arrival trace. Rates are worker
// arrivals per hour for the whole marketplace.
type Config struct {
	// BaseRate is the average arrival rate (the paper observes ≈6000 task
	// completions per hour marketplace-wide; arrivals scale with it).
	BaseRate float64
	// DiurnalAmplitude in [0,1) scales the day/night swing.
	DiurnalAmplitude float64
	// WeekendDip in [0,1) is the fractional rate drop on Saturday/Sunday.
	WeekendDip float64
	// HolidayDip in [0,1) is the fractional rate drop on day 1 (Jan 1), the
	// consistent deviation Figure 10(c) attributes to the special date.
	HolidayDip float64
	// Seed drives the Poisson sampling noise.
	Seed int64
}

// DefaultConfig mirrors the magnitudes visible in Figure 1 and the
// marketplace totals of Section 5.1.2. The base arrival rate is calibrated
// so the paper's default workload (N=200 tasks, 24-hour deadline, Equation
// 13 acceptance) reproduces the break-even price c₀ ≈ 12 of Section 5.2.1;
// the paper's headline 6000/hour figure counts completions marketplace-wide,
// not arrivals, so the two need not match.
func DefaultConfig() Config {
	return Config{
		BaseRate:         5200,
		DiurnalAmplitude: 0.45,
		WeekendDip:       0.25,
		HolidayDip:       0.45,
		Seed:             20140101,
	}
}

// Trace is a generated arrival dataset.
type Trace struct {
	// Counts holds worker arrivals per 20-minute bucket, Days*BucketsPerDay
	// entries starting at midnight on day 1.
	Counts []int
	// Truth is the noiseless rate function the counts were sampled from.
	Truth rate.Fn
	cfg   Config
}

// trueRate returns the noiseless λ(t) at hour t since the trace start.
func trueRate(cfg Config, t float64) float64 {
	day := int(math.Floor(t / 24))
	hourOfDay := t - float64(day)*24
	// Diurnal cycle peaking mid-day (US daytime dominates MTurk traffic).
	diurnal := 1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*(hourOfDay-9)/24)
	r := cfg.BaseRate * diurnal
	// Day 0 is Wednesday Jan 1 2014; weekend days are 3,4 mod 7 (Sat, Sun).
	switch ((day % 7) + 7) % 7 {
	case 3, 4:
		r *= 1 - cfg.WeekendDip
	}
	if day == 0 {
		r *= 1 - cfg.HolidayDip
	}
	if r < 0 {
		r = 0
	}
	return r
}

// truthFn adapts trueRate to the rate.Fn interface with numerically exact
// piecewise-constant integration at bucket resolution.
type truthFn struct{ cfg Config }

func (f truthFn) Rate(t float64) float64 { return trueRate(f.cfg, t) }

func (f truthFn) Integral(s, u float64) float64 {
	if s > u {
		return -f.Integral(u, s)
	}
	// Integrate at bucket resolution: the generator samples per bucket, so
	// bucket-midpoint evaluation is the exact inverse of the sampler.
	total := 0.0
	t := s
	for t < u {
		end := math.Min(u, (math.Floor(t/BucketWidth)+1)*BucketWidth)
		if end <= t {
			end = math.Nextafter(t, math.Inf(1))
		}
		mid := (t + end) / 2
		total += trueRate(f.cfg, mid) * (end - t)
		t = end
	}
	return total
}

// Generate samples a full 28-day trace from the configured rate shape.
func Generate(cfg Config) *Trace {
	r := dist.NewRNG(cfg.Seed)
	fn := truthFn{cfg: cfg}
	n := Days * BucketsPerDay
	counts := make([]int, n)
	for i := range counts {
		s := float64(i) * BucketWidth
		mean := fn.Integral(s, s+BucketWidth)
		counts[i] = dist.Poisson{Lambda: mean}.Sample(r)
	}
	return &Trace{Counts: counts, Truth: fn, cfg: cfg}
}

// Day returns the 72 bucket counts of day d (0-based).
func (tr *Trace) Day(d int) []int {
	if d < 0 || d >= Days {
		panic("trace: day out of range")
	}
	return tr.Counts[d*BucketsPerDay : (d+1)*BucketsPerDay]
}

// DayRate fits a piecewise-constant arrival-rate function to day d's counts,
// the way the experiments bind λ(t) to tracker data (Section 5.2).
func (tr *Trace) DayRate(d int) *rate.Piecewise {
	return nhpp.EstimatePiecewise(tr.Day(d), BucketWidth)
}

// AverageDays averages the bucket counts of several days into one training
// day profile, matching Section 5.2.5's "average arrival-rate of the other
// 3 days".
func (tr *Trace) AverageDays(days []int) *rate.Piecewise {
	if len(days) == 0 {
		panic("trace: no days to average")
	}
	rates := make([]float64, BucketsPerDay)
	for _, d := range days {
		for i, c := range tr.Day(d) {
			rates[i] += float64(c)
		}
	}
	for i := range rates {
		rates[i] = rates[i] / float64(len(days)) / BucketWidth
	}
	return rate.NewPiecewise(BucketWidth, rates)
}

// Rate fits a piecewise-constant rate over the whole trace.
func (tr *Trace) Rate() *rate.Piecewise {
	return nhpp.EstimatePiecewise(tr.Counts, BucketWidth)
}

// SixHourSeries aggregates the trace into 6-hour completion counts, the
// series plotted in Figure 1.
func (tr *Trace) SixHourSeries() []int {
	per := 18 // 6h / 20min
	out := make([]int, len(tr.Counts)/per)
	for i := range out {
		sum := 0
		for j := 0; j < per; j++ {
			sum += tr.Counts[i*per+j]
		}
		out[i] = sum
	}
	return out
}
