package trace

import (
	"math"

	"crowdpricing/internal/dist"
)

// TaskType labels the two dominant MTurk task families of Section 5.1.2.
type TaskType int

// Task families analysed in Table 2 and Figure 6.
const (
	Categorization TaskType = iota
	DataCollection
)

// String returns the task type name.
func (t TaskType) String() string {
	switch t {
	case Categorization:
		return "Categorization"
	case DataCollection:
		return "Data Collection"
	default:
		return "Unknown"
	}
}

// TaskGroup is one HIT group snapshot in the style of mturk-tracker: a task
// family, the per-task wage rate, the average per-task duration, and the
// observed completed workload.
type TaskGroup struct {
	Type TaskType
	// WagePerSec is the reward divided by average completion time ($/sec).
	WagePerSec float64
	// AvgTaskSeconds is the manually estimated time per task.
	AvgTaskSeconds float64
	// WorkloadPerHour is completed tasks/hour × seconds/task (sec/h), the
	// bundling-invariant workload measure of Figure 6.
	WorkloadPerHour float64
}

// GroupModel holds the generative parameters tying wage to workload:
// ln(workload/hour) = Alpha·wage/sec + Bias + noise, Equation-(2)-style
// utilities with Table 2's fitted values as ground truth.
type GroupModel struct {
	Alpha float64 // shared linear coefficient (≈748–809 in Table 2)
	Bias  map[TaskType]float64
	Noise float64 // std-dev of the log-workload noise
}

// PaperGroupModel reproduces Table 2's parameters: linear coefficients 748
// and 809 (approximately shared) and biases 3.66 / 6.28.
func PaperGroupModel() GroupModel {
	return GroupModel{
		Alpha: 780, // a single shared coefficient between the paper's 748 and 809
		Bias: map[TaskType]float64{
			Categorization: 3.66,
			DataCollection: 6.28,
		},
		Noise: 0.35,
	}
}

// GenerateTaskGroups synthesizes n task group snapshots per type with wage
// rates spread over the observed MTurk range (roughly $0.0002–$0.008 per
// second) and workloads drawn from the model.
func GenerateTaskGroups(m GroupModel, nPerType int, r *dist.RNG) []TaskGroup {
	var out []TaskGroup
	for _, tt := range []TaskType{Categorization, DataCollection} {
		for i := 0; i < nPerType; i++ {
			wage := math.Exp(r.Uniform(math.Log(0.0002), math.Log(0.008)))
			logW := m.Alpha*wage + m.Bias[tt] + r.Normal(0, m.Noise)
			secs := 30.0
			if tt == DataCollection {
				secs = 120
			}
			out = append(out, TaskGroup{
				Type:            tt,
				WagePerSec:      wage,
				AvgTaskSeconds:  secs,
				WorkloadPerHour: math.Exp(logW),
			})
		}
	}
	return out
}

// FitGroupModel recovers the per-type linear coefficient and bias by least
// squares on ln(workload) against wage, the Table 2 regression.
func FitGroupModel(groups []TaskGroup) map[TaskType]struct{ Alpha, Bias float64 } {
	byType := map[TaskType][][2]float64{}
	for _, g := range groups {
		if g.WorkloadPerHour <= 0 {
			continue
		}
		byType[g.Type] = append(byType[g.Type], [2]float64{g.WagePerSec, math.Log(g.WorkloadPerHour)})
	}
	out := map[TaskType]struct{ Alpha, Bias float64 }{}
	for tt, pts := range byType {
		var sx, sy float64
		n := float64(len(pts))
		for _, p := range pts {
			sx += p[0]
			sy += p[1]
		}
		mx, my := sx/n, sy/n
		var sxx, sxy float64
		for _, p := range pts {
			sxx += (p[0] - mx) * (p[0] - mx)
			sxy += (p[0] - mx) * (p[1] - my)
		}
		alpha := sxy / sxx
		out[tt] = struct{ Alpha, Bias float64 }{Alpha: alpha, Bias: my - alpha*mx}
	}
	return out
}
