package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"crowdpricing/internal/stats"
)

func TestGenerateShape(t *testing.T) {
	tr := Generate(DefaultConfig())
	if len(tr.Counts) != Days*BucketsPerDay {
		t.Fatalf("len = %d, want %d", len(tr.Counts), Days*BucketsPerDay)
	}
	for i, c := range tr.Counts {
		if c < 0 {
			t.Fatalf("negative count at %d", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatal("same-seed traces differ")
		}
	}
	cfg := DefaultConfig()
	cfg.Seed++
	c := Generate(cfg)
	same := true
	for i := range a.Counts {
		if a.Counts[i] != c.Counts[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestWeeklyPeriodicity(t *testing.T) {
	tr := Generate(DefaultConfig())
	// Day 7 (Wednesday week 2) should resemble day 14 far more than the
	// holiday day 0 resembles day 7.
	day7 := stats.Mean(toFloat(tr.Day(7)))
	day14 := stats.Mean(toFloat(tr.Day(14)))
	day0 := stats.Mean(toFloat(tr.Day(0)))
	if math.Abs(day7-day14) > 0.1*day7 {
		t.Errorf("matching weekdays differ: %v vs %v", day7, day14)
	}
	if day0 > 0.75*day7 {
		t.Errorf("holiday day 0 (%v) not clearly below normal weekday (%v)", day0, day7)
	}
}

func TestWeekendDip(t *testing.T) {
	tr := Generate(DefaultConfig())
	// Day 0 = Wed; Sat is day 3, Sun day 4; weekdays 1,2 (Thu, Fri).
	sat := stats.Mean(toFloat(tr.Day(3)))
	thu := stats.Mean(toFloat(tr.Day(1)))
	if sat >= thu {
		t.Errorf("weekend (%v) not below weekday (%v)", sat, thu)
	}
}

func TestDiurnalCycle(t *testing.T) {
	tr := Generate(DefaultConfig())
	day := tr.Day(1)
	// Mid-day buckets (around 15:00, bucket 45) beat night buckets
	// (around 03:00, bucket 9).
	noon := float64(day[44] + day[45] + day[46])
	night := float64(day[8] + day[9] + day[10])
	if noon <= night {
		t.Errorf("no diurnal cycle: noon %v, night %v", noon, night)
	}
}

func TestTraceRateEstimation(t *testing.T) {
	tr := Generate(DefaultConfig())
	fit := tr.Rate()
	// The fitted rate should integrate to the total count.
	total := 0
	for _, c := range tr.Counts {
		total += c
	}
	integral := fit.Integral(0, float64(Days)*24)
	if math.Abs(integral-float64(total)) > 1 {
		t.Errorf("integral %v, total %v", integral, total)
	}
}

func TestAverageDaysProfile(t *testing.T) {
	tr := Generate(DefaultConfig())
	avg := tr.AverageDays([]int{7, 14, 21})
	// The averaged profile should track each source day's mean level.
	m := (stats.Mean(toFloat(tr.Day(7))) + stats.Mean(toFloat(tr.Day(14))) + stats.Mean(toFloat(tr.Day(21)))) / 3
	got := avg.Integral(0, 24) / 24 * BucketWidth
	if math.Abs(got-m) > 0.02*m {
		t.Errorf("averaged rate level %v, want %v", got, m)
	}
	assertPanics(t, func() { tr.AverageDays(nil) })
	assertPanics(t, func() { tr.Day(99) })
}

func TestSixHourSeries(t *testing.T) {
	tr := Generate(DefaultConfig())
	series := tr.SixHourSeries()
	if len(series) != Days*4 {
		t.Fatalf("series length %d, want %d", len(series), Days*4)
	}
	sum := 0
	for _, s := range series {
		sum += s
	}
	total := 0
	for _, c := range tr.Counts {
		total += c
	}
	if sum != total {
		t.Errorf("series sums to %d, counts to %d", sum, total)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Generate(DefaultConfig())
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Counts) != len(tr.Counts) {
		t.Fatalf("round trip length %d, want %d", len(back.Counts), len(tr.Counts))
	}
	for i := range tr.Counts {
		if back.Counts[i] != tr.Counts[i] {
			t.Fatalf("count %d changed: %d vs %d", i, back.Counts[i], tr.Counts[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := Generate(DefaultConfig())
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Counts {
		if back.Counts[i] != tr.Counts[i] {
			t.Fatal("JSON round trip changed counts")
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := ReadCSV(bytes.NewBufferString("bucket,hour,count\n0,0.0,notanumber\n")); err == nil {
		t.Error("want error for bad count")
	}
}

func toFloat(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
