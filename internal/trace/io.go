package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the trace counts as (bucket_index, hour, count) rows with
// a header, the interchange format for external plotting.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bucket", "hour", "count"}); err != nil {
		return err
	}
	for i, c := range tr.Counts {
		rec := []string{
			strconv.Itoa(i),
			strconv.FormatFloat(float64(i)*BucketWidth, 'f', 4, 64),
			strconv.Itoa(c),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads counts back from the WriteCSV format. The Truth field of
// the returned trace is nil-equivalent (a zero-config rate); only Counts is
// restored.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	var counts []int
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want 3", i+1, len(row))
		}
		c, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d count: %w", i+1, err)
		}
		counts = append(counts, c)
	}
	return &Trace{Counts: counts}, nil
}

// traceJSON is the JSON wire form of a trace.
type traceJSON struct {
	BucketWidthHours float64 `json:"bucket_width_hours"`
	Counts           []int   `json:"counts"`
}

// MarshalJSON implements json.Marshaler.
func (tr *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(traceJSON{BucketWidthHours: BucketWidth, Counts: tr.Counts})
}

// UnmarshalJSON implements json.Unmarshaler.
func (tr *Trace) UnmarshalJSON(data []byte) error {
	var tj traceJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return err
	}
	tr.Counts = tj.Counts
	return nil
}
