// Package exp contains one driver per table and figure of the paper's
// evaluation (Section 5). Each driver returns structured rows/series and can
// print itself, so cmd/experiments and the benchmark harness regenerate the
// full evaluation from the same code paths.
//
// The default workload mirrors Section 5.2's settings: N = 200 Data
// Collection tasks with a 2-minute completion time, a 24-hour deadline
// starting at midnight of a regular weekday, the Equation-13 acceptance
// curve, and a worker arrival-rate function bound to 20-minute buckets of
// the (synthetic) mturk-tracker trace.
package exp

import (
	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/rate"
	"crowdpricing/internal/trace"
)

// Defaults of the Section 5.2 experiment protocol.
const (
	// DefaultN is the batch size.
	DefaultN = 200
	// DefaultHorizonHours is the deadline T.
	DefaultHorizonHours = 24.0
	// DefaultIntervalMinutes is the DP training granularity.
	DefaultIntervalMinutes = 20
	// DefaultMaxPrice is C, the price search upper bound in cents; it
	// leaves enough headroom for the tightest sweep cell (N=400, T=6h).
	DefaultMaxPrice = 50
	// DefaultConfidence is the completion guarantee both strategies are
	// calibrated to in the comparisons.
	DefaultConfidence = 0.999
	// WorkloadDay is the trace day the default experiment window starts at
	// (day 7 = Wednesday Jan 8, a regular weekday).
	WorkloadDay = 7
	// WorkloadStartHour is the hour of day tasks are posted (the paper's
	// experiments post at 8 a.m., so short deadlines run through daytime
	// traffic rather than the overnight lull).
	WorkloadStartHour = 8
)

// Workload bundles the shared experiment inputs.
type Workload struct {
	// Trace is the synthetic mturk-tracker dataset.
	Trace *trace.Trace
	// Arrival is the fitted arrival-rate function for the experiment
	// window.
	Arrival rate.Fn
	// Accept is the Equation-13 acceptance curve.
	Accept choice.Logistic
}

// DefaultWorkload builds the shared workload deterministically.
func DefaultWorkload() *Workload {
	tr := trace.Generate(trace.DefaultConfig())
	return &Workload{
		Trace:   tr,
		Arrival: windowRate(tr, WorkloadDay, DefaultHorizonHours),
		Accept:  choice.Paper13,
	}
}

// windowRate fits a piecewise-constant rate to the trace starting at
// WorkloadStartHour of the given day for the given number of hours.
func windowRate(tr *trace.Trace, day int, hours float64) rate.Fn {
	buckets := int(hours / trace.BucketWidth)
	start := day*trace.BucketsPerDay + WorkloadStartHour*3
	rates := make([]float64, buckets)
	for i := 0; i < buckets; i++ {
		rates[i] = float64(tr.Counts[start+i]) / trace.BucketWidth
	}
	return rate.NewPiecewise(trace.BucketWidth, rates)
}

// averageWindowRate averages the 8 a.m.-anchored experiment windows of
// several trace days into one training profile, the Section 5.2.5 protocol
// ("the training arrival-rate is the average arrival-rate of the other 3
// days") aligned to the posting hour.
func averageWindowRate(w *Workload, days []int) rate.Fn {
	buckets := int(DefaultHorizonHours / trace.BucketWidth)
	rates := make([]float64, buckets)
	for _, d := range days {
		start := d*trace.BucketsPerDay + WorkloadStartHour*3
		for i := 0; i < buckets; i++ {
			rates[i] += float64(w.Trace.Counts[start+i])
		}
	}
	for i := range rates {
		rates[i] = rates[i] / float64(len(days)) / trace.BucketWidth
	}
	return rate.NewPiecewise(trace.BucketWidth, rates)
}

// DeadlineProblem builds the deadline pricing instance for the workload with
// the given batch size, horizon, and interval length in minutes.
func (w *Workload) DeadlineProblem(n int, horizonHours float64, intervalMinutes int) *core.DeadlineProblem {
	intervals := int(horizonHours * 60 / float64(intervalMinutes))
	return &core.DeadlineProblem{
		N:         n,
		Horizon:   horizonHours,
		Intervals: intervals,
		Lambdas:   rate.IntervalMeans(w.Arrival, horizonHours, intervals),
		Accept:    w.Accept,
		MinPrice:  0,
		MaxPrice:  DefaultMaxPrice,
		Penalty:   500,
		TruncEps:  1e-9,
	}
}

// DefaultDeadlineProblem is the Section 5.2 default instance.
func (w *Workload) DefaultDeadlineProblem() *core.DeadlineProblem {
	return w.DeadlineProblem(DefaultN, DefaultHorizonHours, DefaultIntervalMinutes)
}
