package exp

import (
	"fmt"
	"io"

	"crowdpricing/internal/core"
	"crowdpricing/internal/dist"
	"crowdpricing/internal/nhpp"
	"crowdpricing/internal/sim"
	"crowdpricing/internal/stats"
)

// Figure11Result is the fixed-budget completion-time study: the solved
// static strategy and the simulated completion-time distribution.
type Figure11Result struct {
	// Strategy is the two-price allocation for N=200, B=2500 cents.
	Strategy core.StaticStrategy
	// ExpectedHours is the analytic E[T] = E[W]/λ̄.
	ExpectedHours float64
	// MeanHours is the Monte Carlo mean completion time.
	MeanHours float64
	// Times lists the per-trial completion times (hours), sorted.
	Times []float64
	// HistCounts/HistEdges form the Figure 11 histogram.
	HistCounts []int
	HistEdges  []float64
}

// Figure11 solves the Section 5.3 instance (N=200, B=2500¢) and simulates
// the completion-time distribution under the trace arrival process.
func Figure11(w *Workload, trials int, seed int64) (Figure11Result, error) {
	bp := &core.BudgetProblem{
		N: 200, Budget: 2500, Accept: w.Accept, MinPrice: 1, MaxPrice: DefaultMaxPrice,
	}
	s, err := bp.SolveHull()
	if err != nil {
		return Figure11Result{}, err
	}
	// The budget experiment can run past one day; extend the arrival
	// process periodically over a 72-hour horizon.
	lambdaBar := nhpp.AverageRate(w.Arrival, DefaultHorizonHours)
	res := Figure11Result{
		Strategy:      s,
		ExpectedHours: s.ExpectedLatency(w.Accept, lambdaBar),
	}
	times := sim.BudgetCompletion(s, w.Accept, w.Arrival, 72, trials, dist.NewRNG(seed))
	res.Times = sim.SortedFinite(times)
	mean, _ := sim.FiniteMean(times)
	res.MeanHours = mean
	if len(res.Times) > 0 {
		lo, hi := res.Times[0], res.Times[len(res.Times)-1]
		if hi <= lo {
			hi = lo + 1
		}
		res.HistCounts, res.HistEdges = stats.Histogram(res.Times, lo, hi, 12)
	}
	return res, nil
}

// PrintFigure11 writes the strategy and the completion-time histogram.
func PrintFigure11(w io.Writer, res Figure11Result) {
	fmt.Fprintln(w, "Figure 11: fixed-budget completion time distribution (N=200, B=2500c)")
	fmt.Fprintf(w, "strategy: %v  E[T]=%.1fh  simulated mean=%.1fh\n",
		res.Strategy.Counts, res.ExpectedHours, res.MeanHours)
	for i, c := range res.HistCounts {
		fmt.Fprintf(w, "%5.1f-%5.1fh: %s (%d)\n", res.HistEdges[i], res.HistEdges[i+1], bar(c), c)
	}
}

func bar(n int) string {
	const max = 60
	if n > max {
		n = max
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
