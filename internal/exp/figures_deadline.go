package exp

import (
	"fmt"
	"io"
	"time"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/dist"
	"crowdpricing/internal/rate"
	"crowdpricing/internal/sim"
)

// Figure7aResult compares the dynamic strategy against fixed prices: for a
// range of completion targets, the average task reward each needs.
type Figure7aResult struct {
	// C0 is the theoretical lower bound on the average reward.
	C0 int
	// Dynamic has one point per remaining-task bound.
	Dynamic []Figure7aPoint
	// Fixed has one point per candidate fixed price.
	Fixed []Figure7aPoint
	// DynamicAvgReward999 is the dynamic strategy's average reward when
	// calibrated to finish everything with 99.9% probability — the paper's
	// "12 to 12.5, only 3% overhead over c0" headline.
	DynamicAvgReward999 float64
	// FixedPrice999 is the fixed price needed for the same guarantee — the
	// paper's "16, a 33% increase" headline.
	FixedPrice999 int
}

// Figure7aPoint pairs an expected number of remaining tasks with the average
// per-task reward that achieves it.
type Figure7aPoint struct {
	ExpectedRemaining float64
	AvgReward         float64
}

// Figure7a regenerates Figure 7(a): average task reward versus the expected
// number of tasks left at the deadline, dynamic versus fixed.
func Figure7a(w *Workload) (Figure7aResult, error) {
	p := w.DefaultDeadlineProblem()
	res := Figure7aResult{}
	c0, err := p.TheoreticalMinPrice()
	if err != nil {
		return res, err
	}
	res.C0 = c0
	for _, bound := range []float64{10, 3, 1, 0.3, 0.1, 0.03} {
		cal, err := p.CalibratePenaltyForBound(bound, 1e5, 18)
		if err != nil {
			return res, err
		}
		res.Dynamic = append(res.Dynamic, Figure7aPoint{
			ExpectedRemaining: cal.Outcome.ExpectedRemaining,
			AvgReward:         cal.Outcome.AvgReward,
		})
	}
	for price := c0 - 1; price <= c0+4; price++ {
		out := p.EvaluateFixed(price)
		res.Fixed = append(res.Fixed, Figure7aPoint{
			ExpectedRemaining: out.ExpectedRemaining,
			AvgReward:         float64(price),
		})
	}
	calConf, err := p.CalibratePenaltyForConfidence(DefaultConfidence, 1e6, 18)
	if err != nil {
		return res, err
	}
	res.DynamicAvgReward999 = calConf.Outcome.AvgReward
	fixedConf, err := p.FixedPriceForConfidence(DefaultConfidence)
	if err != nil {
		return res, err
	}
	res.FixedPrice999 = fixedConf.Price
	return res, nil
}

// PrintFigure7a writes both curves.
func PrintFigure7a(w io.Writer, res Figure7aResult) {
	fmt.Fprintf(w, "Figure 7(a): avg task reward vs expected remaining tasks (c0=%d)\n", res.C0)
	fmt.Fprintln(w, "dynamic:  E[remaining]  avg-reward")
	for _, p := range res.Dynamic {
		fmt.Fprintf(w, "          %-13.4f %-10.3f\n", p.ExpectedRemaining, p.AvgReward)
	}
	fmt.Fprintln(w, "fixed:    E[remaining]  price")
	for _, p := range res.Fixed {
		fmt.Fprintf(w, "          %-13.4f %-10.0f\n", p.ExpectedRemaining, p.AvgReward)
	}
	fmt.Fprintf(w, "99.9%% guarantee: dynamic avg reward %.2f vs fixed price %d (+%.0f%%)\n",
		res.DynamicAvgReward999, res.FixedPrice999,
		(float64(res.FixedPrice999)-res.DynamicAvgReward999)/res.DynamicAvgReward999*100)
}

// ReductionCell is one cell of the cost-reduction sweeps (Figures 7b, 8a–c):
// the varied parameter value and the percentage cost reduction
// r = (c_fixed − c_dynamic)/c_fixed at the default 99.9% completion
// confidence.
type ReductionCell struct {
	Label     string
	Value     float64
	Reduction float64
	// FixedCost and DynamicCost are the underlying expected totals (cents).
	FixedCost, DynamicCost float64
}

// costReduction computes r for one problem instance.
func costReduction(p *core.DeadlineProblem) (ReductionCell, error) {
	fixed, err := p.FixedPriceForConfidence(DefaultConfidence)
	if err != nil {
		return ReductionCell{}, err
	}
	cal, err := p.CalibratePenaltyForConfidence(DefaultConfidence, 1e6, 16)
	if err != nil {
		return ReductionCell{}, err
	}
	fc := fixed.ExpectedCost
	dc := cal.Outcome.ExpectedCost
	return ReductionCell{Reduction: (fc - dc) / fc * 100, FixedCost: fc, DynamicCost: dc}, nil
}

// Figure7b sweeps the batch size N and the deadline T and reports the
// percentage cost reduction for each combination. The sweep stays in the
// regime where prices are meaningfully above the 1-cent marketplace floor:
// with Equation 13's p(0) > 0, very small batches over very long horizons
// complete at near-zero prices under *any* strategy, which says nothing
// about the pricing algorithms.
func Figure7b(w *Workload) ([]ReductionCell, error) {
	var cells []ReductionCell
	for _, n := range []int{100, 200, 400} {
		for _, hours := range []float64{6, 12, 24} {
			p := w.DeadlineProblem(n, hours, DefaultIntervalMinutes)
			cell, err := costReduction(p)
			if err != nil {
				return nil, fmt.Errorf("N=%d T=%v: %w", n, hours, err)
			}
			cell.Label = fmt.Sprintf("N=%d,T=%.0fh", n, hours)
			cell.Value = float64(n)*1000 + hours
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// Figure8abc sweeps the acceptance-curve parameters s, b, and M one at a
// time around the Equation-13 defaults and reports the cost reduction.
func Figure8abc(w *Workload) (sCells, bCells, mCells []ReductionCell, err error) {
	base := w.Accept
	runWith := func(label string, value float64, accept choice.Logistic) (ReductionCell, error) {
		p := w.DefaultDeadlineProblem()
		p.Accept = accept
		cell, err := costReduction(p)
		if err != nil {
			return cell, fmt.Errorf("%s=%v: %w", label, value, err)
		}
		cell.Label = fmt.Sprintf("%s=%v", label, value)
		cell.Value = value
		return cell, nil
	}
	for _, s := range []float64{5, 10, 15, 20, 25, 30} {
		cell, err := runWith("s", s, choice.Logistic{S: s, B: base.B, M: base.M})
		if err != nil {
			return nil, nil, nil, err
		}
		sCells = append(sCells, cell)
	}
	// Sweeps stay above the free-completion regime (a very attractive task
	// or near-empty market finishes at price 0 under any strategy).
	for _, b := range []float64{-1.1, -0.75, -0.39, 0.1, 0.6} {
		cell, err := runWith("b", b, choice.Logistic{S: base.S, B: b, M: base.M})
		if err != nil {
			return nil, nil, nil, err
		}
		bCells = append(bCells, cell)
	}
	for _, m := range []float64{1000, 1500, 2000, 4000, 8000} {
		cell, err := runWith("M", m, choice.Logistic{S: base.S, B: base.B, M: m})
		if err != nil {
			return nil, nil, nil, err
		}
		mCells = append(mCells, cell)
	}
	return sCells, bCells, mCells, nil
}

// PrintReductionCells writes one sweep.
func PrintReductionCells(w io.Writer, title string, cells []ReductionCell) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, "setting          reduction%  fixed(cents)  dynamic(cents)")
	for _, c := range cells {
		fmt.Fprintf(w, "%-16s %-11.2f %-13.1f %-14.1f\n", c.Label, c.Reduction, c.FixedCost, c.DynamicCost)
	}
}

// Figure8dRow is one granularity setting of Figure 8(d): the interval
// length, the achieved average task price, and the measured training time.
type Figure8dRow struct {
	IntervalMinutes int
	AvgReward       float64
	TrainTime       time.Duration
}

// Figure8d sweeps the DP training granularity.
func Figure8d(w *Workload) ([]Figure8dRow, error) {
	var rows []Figure8dRow
	for _, minutes := range []int{20, 30, 40, 60, 80, 120} {
		p := w.DeadlineProblem(DefaultN, DefaultHorizonHours, minutes)
		//crowdlint:allow determinism -- TrainTime column reports wall-clock training cost
		start := time.Now()
		cal, err := p.CalibratePenaltyForConfidence(DefaultConfidence, 1e6, 16)
		if err != nil {
			return nil, fmt.Errorf("granularity %dmin: %w", minutes, err)
		}
		rows = append(rows, Figure8dRow{
			IntervalMinutes: minutes,
			AvgReward:       cal.Outcome.AvgReward,
			//crowdlint:allow determinism -- TrainTime column reports wall-clock training cost
			TrainTime: time.Since(start),
		})
	}
	return rows, nil
}

// PrintFigure8d writes the granularity sweep.
func PrintFigure8d(w io.Writer, rows []Figure8dRow) {
	fmt.Fprintln(w, "Figure 8(d): granularity of time interval")
	fmt.Fprintln(w, "interval(min)  avg-reward  train-time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14d %-11.3f %v\n", r.IntervalMinutes, r.AvgReward, r.TrainTime.Round(time.Millisecond))
	}
}

// Figure9Row is one misestimation setting: the true parameter value, the
// dynamic strategy's Monte-Carlo remaining tasks and average reward, and the
// fixed strategies' remaining tasks for prices around c0.
type Figure9Row struct {
	Param          string
	TrueValue      float64
	DynRemaining   float64
	DynAvgReward   float64
	FixedRemaining map[int]float64
}

// Figure9 reproduces the parameter-sensitivity study: policies are trained
// on the default Equation-13 curve but the world runs a perturbed curve.
func Figure9(w *Workload, trials int, seed int64) ([]Figure9Row, error) {
	p := w.DefaultDeadlineProblem()
	cal, err := p.CalibratePenaltyForConfidence(DefaultConfidence, 1e6, 16)
	if err != nil {
		return nil, err
	}
	fixedPrices := []int{12, 13, 14, 15, 16}
	r := dist.NewRNG(seed)
	var rows []Figure9Row
	addRow := func(param string, value float64, truth choice.Logistic) error {
		world := sim.World{Lambdas: p.Lambdas, Accept: truth}
		dyn, err := sim.RunDeadlinePolicy(cal.Policy, world, trials, r)
		if err != nil {
			return err
		}
		row := Figure9Row{
			Param: param, TrueValue: value,
			DynRemaining: dyn.MeanRemaining, DynAvgReward: dyn.MeanAvgReward,
			FixedRemaining: map[int]float64{},
		}
		for _, price := range fixedPrices {
			fx, err := sim.RunFixedPrice(p, price, world, trials, r)
			if err != nil {
				return err
			}
			row.FixedRemaining[price] = fx.MeanRemaining
		}
		rows = append(rows, row)
		return nil
	}
	base := w.Accept
	for _, s := range []float64{10, 12.5, 15, 17.5, 20} {
		if err := addRow("s", s, choice.Logistic{S: s, B: base.B, M: base.M}); err != nil {
			return nil, err
		}
	}
	for _, b := range []float64{-0.8, -0.6, -0.39, -0.2, 0} {
		if err := addRow("b", b, choice.Logistic{S: base.S, B: b, M: base.M}); err != nil {
			return nil, err
		}
	}
	for _, m := range []float64{1000, 1500, 2000, 3000, 4000} {
		if err := addRow("M", m, choice.Logistic{S: base.S, B: base.B, M: m}); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// PrintFigure9 writes the sensitivity table.
func PrintFigure9(w io.Writer, rows []Figure9Row) {
	fmt.Fprintln(w, "Figure 9: sensitivity to task-acceptance parameter estimation")
	fmt.Fprintln(w, "param  true-value  dyn-remaining  dyn-avg-reward  fixed12  fixed13  fixed14  fixed15  fixed16")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-11.2f %-14.4f %-15.3f %-8.2f %-8.2f %-8.2f %-8.2f %-8.2f\n",
			r.Param, r.TrueValue, r.DynRemaining, r.DynAvgReward,
			r.FixedRemaining[12], r.FixedRemaining[13], r.FixedRemaining[14],
			r.FixedRemaining[15], r.FixedRemaining[16])
	}
}

// Figure10Row is one test day of the arrival-rate sensitivity study.
type Figure10Row struct {
	// Day is the 0-based trace day (0 = Jan 1).
	Day int
	// DynRemaining / DynAvgReward are the dynamic strategy's Monte Carlo
	// outcomes when trained on the other three days.
	DynRemaining float64
	DynAvgReward float64
	// FixedRemaining is the fixed baseline's remaining tasks at its own
	// calibrated price.
	FixedRemaining float64
	FixedPrice     int
	// TrainRate and ActualRate are hourly arrival series for plots (c)/(d).
	TrainRate, ActualRate []float64
}

// Figure10 reproduces the Section 5.2.5 cross-validation: for each of the
// four Wednesdays, train the policy on the average of the other three and
// evaluate on the actual day.
func Figure10(w *Workload, trials int, seed int64) ([]Figure10Row, error) {
	days := []int{0, 7, 14, 21} // Jan 1, 8, 15, 22
	r := dist.NewRNG(seed)
	var rows []Figure10Row
	for _, day := range days {
		var others []int
		for _, d := range days {
			if d != day {
				others = append(others, d)
			}
		}
		trainRate := averageWindowRate(w, others)
		p := w.DeadlineProblem(DefaultN, DefaultHorizonHours, DefaultIntervalMinutes)
		p.Lambdas = rate.IntervalMeans(trainRate, DefaultHorizonHours, p.Intervals)
		cal, err := p.CalibratePenaltyForConfidence(DefaultConfidence, 1e6, 16)
		if err != nil {
			return nil, fmt.Errorf("day %d: %w", day, err)
		}
		fixed, err := p.FixedPriceForConfidence(DefaultConfidence)
		if err != nil {
			return nil, fmt.Errorf("day %d fixed: %w", day, err)
		}
		actual := windowRate(w.Trace, day, DefaultHorizonHours)
		world := sim.World{
			Lambdas: rate.IntervalMeans(actual, DefaultHorizonHours, p.Intervals),
			Accept:  w.Accept,
		}
		dyn, err := sim.RunDeadlinePolicy(cal.Policy, world, trials, r)
		if err != nil {
			return nil, err
		}
		fx, err := sim.RunFixedPrice(p, fixed.Price, world, trials, r)
		if err != nil {
			return nil, err
		}
		row := Figure10Row{
			Day:            day,
			DynRemaining:   dyn.MeanRemaining,
			DynAvgReward:   dyn.MeanAvgReward,
			FixedRemaining: fx.MeanRemaining,
			FixedPrice:     fixed.Price,
		}
		for h := 0; h < int(DefaultHorizonHours); h++ {
			row.TrainRate = append(row.TrainRate, trainRate.Integral(float64(h), float64(h+1)))
			row.ActualRate = append(row.ActualRate, actual.Integral(float64(h), float64(h+1)))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigure10 writes the per-day outcomes and the holiday anomaly series.
func PrintFigure10(w io.Writer, rows []Figure10Row) {
	fmt.Fprintln(w, "Figure 10: sensitivity to arrival-rate prediction (4 test days)")
	fmt.Fprintln(w, "day(Jan)  dyn-remaining  dyn-avg-reward  fixed-price  fixed-remaining")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9d %-14.4f %-15.3f %-12d %-15.4f\n",
			r.Day+1, r.DynRemaining, r.DynAvgReward, r.FixedPrice, r.FixedRemaining)
	}
	for _, r := range rows {
		if r.Day != 0 && r.Day != 21 {
			continue
		}
		fmt.Fprintf(w, "-- day Jan %d: hourly train vs actual arrivals --\n", r.Day+1)
		for h := range r.TrainRate {
			fmt.Fprintf(w, "h%02d train=%7.0f actual=%7.0f\n", h, r.TrainRate[h], r.ActualRate[h])
		}
	}
}
