package exp

import (
	"fmt"
	"io"

	"crowdpricing/internal/dist"
	"crowdpricing/internal/rate"
	"crowdpricing/internal/sim"
)

// AdaptiveRow compares the frozen dynamic policy against the adaptive
// rate-scaling controller on one test day.
type AdaptiveRow struct {
	Day int
	// Static* are the frozen policy's Monte Carlo outcomes.
	StaticRemaining, StaticCost float64
	// Adaptive* are the adaptive controller's outcomes.
	AdaptiveRemaining, AdaptiveCost float64
}

// Figure10Adaptive runs the extension the paper leaves as future work at
// the end of Section 5.2.5: re-estimating the arrival-rate scale from the
// trailing window fixes the Jan 1 failure mode of Figure 10. Both
// controllers are trained on the average of the other three Wednesdays and
// tested on the actual day.
func Figure10Adaptive(w *Workload, trials int, seed int64) ([]AdaptiveRow, error) {
	days := []int{0, 7, 14, 21}
	r := dist.NewRNG(seed)
	var rows []AdaptiveRow
	for _, day := range days {
		var others []int
		for _, d := range days {
			if d != day {
				others = append(others, d)
			}
		}
		trainRate := averageWindowRate(w, others)
		p := w.DeadlineProblem(DefaultN, DefaultHorizonHours, DefaultIntervalMinutes)
		p.Lambdas = rate.IntervalMeans(trainRate, DefaultHorizonHours, p.Intervals)
		cal, err := p.CalibratePenaltyForConfidence(DefaultConfidence, 1e6, 16)
		if err != nil {
			return nil, fmt.Errorf("day %d: %w", day, err)
		}
		calibrated := *p
		calibrated.Penalty = cal.Penalty
		bank, err := sim.NewAdaptivePolicyBank(&calibrated, sim.DefaultAdaptiveConfig())
		if err != nil {
			return nil, err
		}
		actual := windowRate(w.Trace, day, DefaultHorizonHours)
		world := sim.World{
			Lambdas: rate.IntervalMeans(actual, DefaultHorizonHours, p.Intervals),
			Accept:  w.Accept,
		}
		static, err := sim.RunDeadlinePolicy(cal.Policy, world, trials, r)
		if err != nil {
			return nil, err
		}
		adaptive, err := sim.RunAdaptiveDeadline(bank, world, trials, r)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AdaptiveRow{
			Day:               day,
			StaticRemaining:   static.MeanRemaining,
			StaticCost:        static.MeanCost,
			AdaptiveRemaining: adaptive.MeanRemaining,
			AdaptiveCost:      adaptive.MeanCost,
		})
	}
	return rows, nil
}

// PrintFigure10Adaptive writes the comparison.
func PrintFigure10Adaptive(w io.Writer, rows []AdaptiveRow) {
	fmt.Fprintln(w, "Extension: adaptive arrival-rate prediction (Section 5.2.5 future work)")
	fmt.Fprintln(w, "day(Jan)  static-remaining  static-cost  adaptive-remaining  adaptive-cost")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9d %-17.4f %-12.1f %-19.4f %-13.1f\n",
			r.Day+1, r.StaticRemaining, r.StaticCost, r.AdaptiveRemaining, r.AdaptiveCost)
	}
}
