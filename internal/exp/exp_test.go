package exp

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"crowdpricing/internal/trace"
)

// The default workload is expensive to build once per test, so share it.
var (
	wlOnce sync.Once
	wl     *Workload
)

func workload() *Workload {
	wlOnce.Do(func() { wl = DefaultWorkload() })
	return wl
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := map[float64]int{10: 35, 20: 53, 50: 99}
	for _, r := range rows {
		if r.S0 != want[r.Lambda] {
			t.Errorf("λ=%v: s0=%d, want %d", r.Lambda, r.S0, want[r.Lambda])
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2(1)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	byType := map[trace.TaskType]Table2Row{}
	for _, r := range rows {
		byType[r.Type] = r
	}
	cat, dc := byType[trace.Categorization], byType[trace.DataCollection]
	// Linear coefficients approximately shared and near the paper's
	// 748–809 range; Data Collection bias clearly higher.
	for _, r := range rows {
		if r.Alpha < 600 || r.Alpha > 1000 {
			t.Errorf("%v: alpha %v outside [600,1000]", r.Type, r.Alpha)
		}
	}
	if dc.Bias <= cat.Bias+1 {
		t.Errorf("Data Collection bias %v not clearly above Categorization %v", dc.Bias, cat.Bias)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure1WeeklyPattern(t *testing.T) {
	s := Figure1()
	if len(s.Counts) != trace.Days*4 {
		t.Fatalf("series length %d", len(s.Counts))
	}
	// Same 6-hour slot one week apart correlates strongly (outside the
	// holiday week-1 anomaly).
	for i := 28; i < 56; i++ {
		a, b := float64(s.Counts[i]), float64(s.Counts[i+28])
		if math.Abs(a-b) > 0.35*math.Max(a, b) {
			t.Errorf("slot %d: %v vs next week %v", i, a, b)
		}
	}
	var buf bytes.Buffer
	PrintFigure1(&buf, s)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure5FitTracksSimulation(t *testing.T) {
	res := Figure5(2)
	if res.Beta <= 0 {
		t.Fatalf("beta = %v", res.Beta)
	}
	// The fitted curve tracks the simulated points.
	var sse, n float64
	for _, p := range res.Points {
		d := p.Simulated - p.Fitted
		sse += d * d
		n++
	}
	if rmse := math.Sqrt(sse / n); rmse > 0.05 {
		t.Errorf("logit fit RMSE %v too large", rmse)
	}
	var buf bytes.Buffer
	PrintFigure5(&buf, res)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure6Scatter(t *testing.T) {
	pts := Figure6(3)
	if len(pts) != 100 {
		t.Fatalf("got %d points", len(pts))
	}
	var buf bytes.Buffer
	PrintFigure6(&buf, pts)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

// TestFigure7aHeadline reproduces the Section 5.2.1 claims: near-complete
// batches (≲1 expected remaining) cost the dynamic strategy ≈c0 with a
// small overhead, while the fixed strategy needs several cents more.
func TestFigure7aHeadline(t *testing.T) {
	res, err := Figure7a(workload())
	if err != nil {
		t.Fatal(err)
	}
	if res.C0 != 12 {
		t.Errorf("c0 = %d, want 12", res.C0)
	}
	// Dynamic points with E[remaining] < 1 stay within ~8% of c0.
	for _, p := range res.Dynamic {
		if p.ExpectedRemaining < 1 {
			if p.AvgReward > float64(res.C0)*1.08 {
				t.Errorf("dynamic avg reward %v too far above c0=%d at remaining %v",
					p.AvgReward, res.C0, p.ExpectedRemaining)
			}
		}
	}
	// At the 99.9% completion guarantee the fixed price sits well above the
	// dynamic average reward (the paper reports 16 vs 12–12.5, ≈33%).
	gap := float64(res.FixedPrice999) / res.DynamicAvgReward999
	if gap < 1.15 {
		t.Errorf("99.9%% guarantee gap only %.2fx (fixed %d vs dynamic %.2f)",
			gap, res.FixedPrice999, res.DynamicAvgReward999)
	}
	if res.DynamicAvgReward999 > float64(res.C0)*1.1 {
		t.Errorf("dynamic 99.9%% avg reward %.2f more than 10%% above c0=%d",
			res.DynamicAvgReward999, res.C0)
	}
	var buf bytes.Buffer
	PrintFigure7a(&buf, res)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

// TestFigure7bTrends checks the Figure 7(b) claims: the reduction decreases
// in N and increases in T.
func TestFigure7bTrends(t *testing.T) {
	if testing.Short() {
		t.Skip("full N×T sweep is slow")
	}
	cells, err := Figure7b(workload())
	if err != nil {
		t.Fatal(err)
	}
	byNT := map[[2]int]float64{}
	for _, c := range cells {
		n := int(c.Value) / 1000
		hours := int(c.Value) % 1000
		byNT[[2]int{n, hours}] = c.Reduction
		if c.Reduction < 0 {
			t.Errorf("%s: negative reduction %v", c.Label, c.Reduction)
		}
	}
	// Longer deadlines help at fixed N.
	if byNT[[2]int{200, 24}] <= byNT[[2]int{200, 6}] {
		t.Errorf("reduction not increasing in T: %v vs %v",
			byNT[[2]int{200, 24}], byNT[[2]int{200, 6}])
	}
	// Smaller batches help at fixed T.
	if byNT[[2]int{100, 24}] <= byNT[[2]int{400, 24}] {
		t.Errorf("reduction not decreasing in N: %v vs %v",
			byNT[[2]int{100, 24}], byNT[[2]int{400, 24}])
	}
}

// TestFigure8dGranularityTrend: coarser intervals can only raise the price.
func TestFigure8dGranularityTrend(t *testing.T) {
	rows, err := Figure8d(workload())
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.AvgReward < first.AvgReward-0.05 {
		t.Errorf("avg reward at 120min (%v) below 20min (%v)", last.AvgReward, first.AvgReward)
	}
	// The increase is mild (the paper: "steadily but not by too much").
	if last.AvgReward > first.AvgReward*1.25 {
		t.Errorf("granularity penalty too steep: %v vs %v", last.AvgReward, first.AvgReward)
	}
	var buf bytes.Buffer
	PrintFigure8d(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

// TestFigure9Robustness reproduces the Figure 9 claim: the dynamic policy
// absorbs parameter misestimation (near-zero remaining everywhere, rising
// average reward as the market toughens) while low fixed prices fail.
func TestFigure9Robustness(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo sweep is slow")
	}
	rows, err := Figure9(workload(), 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	var worstM Figure9Row
	for _, r := range rows {
		if r.Param == "M" && r.TrueValue == 4000 {
			worstM = r
			// The doubled-competition extreme strains even the adaptive
			// policy (its price schedule tops out at C); it may strand a
			// few percent of the batch but stays far ahead of fixed.
			if r.DynRemaining > 0.05*float64(DefaultN) {
				t.Errorf("M=4000: dynamic left %v tasks (>5%%)", r.DynRemaining)
			}
			continue
		}
		if r.DynRemaining > 2 {
			t.Errorf("%s=%v: dynamic left %v tasks", r.Param, r.TrueValue, r.DynRemaining)
		}
	}
	// The toughest M perturbation must break the lowest fixed price while
	// the dynamic policy stays an order of magnitude closer to done.
	if worstM.FixedRemaining[12] < 5 || worstM.FixedRemaining[12] < 4*worstM.DynRemaining {
		t.Errorf("fixed 12 survived M=4000 with %v remaining (dynamic %v)",
			worstM.FixedRemaining[12], worstM.DynRemaining)
	}
	// Under harder markets the dynamic policy pays more (it adapts).
	var mEasy, mHard float64
	for _, r := range rows {
		if r.Param == "M" && r.TrueValue == 1000 {
			mEasy = r.DynAvgReward
		}
		if r.Param == "M" && r.TrueValue == 4000 {
			mHard = r.DynAvgReward
		}
	}
	if mHard <= mEasy {
		t.Errorf("dynamic avg reward did not rise with M: %v vs %v", mEasy, mHard)
	}
	var buf bytes.Buffer
	PrintFigure9(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

// TestFigure10HolidayAnomaly reproduces the Section 5.2.5 result: the three
// regular Wednesdays cross-validate cleanly, while Jan 1's consistently
// depressed arrivals hurt both strategies.
func TestFigure10HolidayAnomaly(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo cross-validation is slow")
	}
	rows, err := Figure10(workload(), 200, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	var day0 Figure10Row
	maxNormal := 0.0
	for _, r := range rows {
		if r.Day == 0 {
			day0 = r
			continue
		}
		if r.DynRemaining > maxNormal {
			maxNormal = r.DynRemaining
		}
	}
	// Regular days: the dynamic strategy finishes nearly everything.
	if maxNormal > 1 {
		t.Errorf("dynamic left %v tasks on a regular day", maxNormal)
	}
	// The holiday hurts: either tasks remain or the policy pays visibly
	// more than on regular days.
	if day0.DynRemaining <= maxNormal && day0.DynAvgReward < rows[1].DynAvgReward*1.02 {
		t.Errorf("no holiday effect: day0 remaining %v reward %v vs normal %v",
			day0.DynRemaining, day0.DynAvgReward, rows[1].DynAvgReward)
	}
	// The training-vs-actual series show the consistent deviation on Jan 1.
	var trainSum, actualSum float64
	for h := range day0.TrainRate {
		trainSum += day0.TrainRate[h]
		actualSum += day0.ActualRate[h]
	}
	if actualSum > 0.8*trainSum {
		t.Errorf("Jan 1 arrivals (%v) not clearly below training profile (%v)", actualSum, trainSum)
	}
	var buf bytes.Buffer
	PrintFigure10(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure8abcTrends(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter sweep is slow")
	}
	sCells, bCells, mCells, err := Figure8abc(workload())
	if err != nil {
		t.Fatal(err)
	}
	// All reductions positive (dynamic never loses).
	for _, cells := range [][]ReductionCell{sCells, bCells, mCells} {
		for _, c := range cells {
			if c.Reduction <= 0 {
				t.Errorf("%s: non-positive reduction %v", c.Label, c.Reduction)
			}
		}
	}
	// The s sweep stays comparatively flat (paper: "stable no matter how
	// sensitive p is to c").
	lo, hi := sCells[0].Reduction, sCells[0].Reduction
	for _, c := range sCells {
		if c.Reduction < lo {
			lo = c.Reduction
		}
		if c.Reduction > hi {
			hi = c.Reduction
		}
	}
	if hi-lo > 15 {
		t.Errorf("s sweep spread %v points — not stable", hi-lo)
	}
	var buf bytes.Buffer
	PrintReductionCells(&buf, "Figure 8(a): s sweep", sCells)
	PrintReductionCells(&buf, "Figure 8(b): b sweep", bCells)
	PrintReductionCells(&buf, "Figure 8(c): M sweep", mCells)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

// TestFigure10AdaptiveExtension: on the Jan 1 anomaly the adaptive
// controller beats the frozen policy on completion or cost while matching
// it on regular days.
func TestFigure10AdaptiveExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive cross-validation is slow")
	}
	rows, err := Figure10Adaptive(workload(), 150, 19)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Day == 0 {
			better := r.AdaptiveRemaining < r.StaticRemaining-0.05 ||
				r.AdaptiveCost < r.StaticCost*0.98
			if !better && r.StaticRemaining > 0.1 {
				t.Errorf("no adaptive benefit on Jan 1: remaining %v vs %v, cost %v vs %v",
					r.AdaptiveRemaining, r.StaticRemaining, r.AdaptiveCost, r.StaticCost)
			}
			continue
		}
		// Regular days: the adaptive controller must not regress badly.
		if r.AdaptiveRemaining > r.StaticRemaining+1 {
			t.Errorf("day %d: adaptive remaining %v vs static %v",
				r.Day, r.AdaptiveRemaining, r.StaticRemaining)
		}
	}
	var buf bytes.Buffer
	PrintFigure10Adaptive(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure11Headline(t *testing.T) {
	res, err := Figure11(workload(), 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strategy.Counts) > 2 {
		t.Errorf("strategy uses %d prices", len(res.Strategy.Counts))
	}
	if len(res.Times) < 195 {
		t.Fatalf("only %d/200 trials finished", len(res.Times))
	}
	// Paper: mean ≈ 23.2h with support ≈ 18–30h. Our arrivals differ in
	// detail, so check the mean lands in a broad band around a day and the
	// spread is wide.
	if res.MeanHours < 14 || res.MeanHours > 32 {
		t.Errorf("mean completion %vh outside [14, 32]", res.MeanHours)
	}
	spread := res.Times[len(res.Times)-1] - res.Times[0]
	if spread < 0.15*res.MeanHours {
		t.Errorf("completion spread %vh suspiciously narrow", spread)
	}
	var buf bytes.Buffer
	PrintFigure11(&buf, res)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

// TestQualityExtension: tighter quality (5-vote vs 3-vote) plans more
// questions and costs more; the synthesized strategy needs fewer expected
// questions than its worst case suggests.
func TestQualityExtension(t *testing.T) {
	rows, err := QualityExtension(workload())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]QualityRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	m3, m5 := byLabel["majority-3"], byLabel["majority-5"]
	if m3.WorstCase != 3 || m5.WorstCase != 5 {
		t.Errorf("majority worst cases %d/%d, want 3/5", m3.WorstCase, m5.WorstCase)
	}
	if m5.ExpectedCost <= m3.ExpectedCost {
		t.Errorf("5-vote cost %v not above 3-vote %v", m5.ExpectedCost, m3.ExpectedCost)
	}
	if m5.ExpError >= m3.ExpError {
		t.Errorf("5-vote error %v not below 3-vote %v", m5.ExpError, m3.ExpError)
	}
	syn := byLabel["synthesized-5%err"]
	if syn.ExpError > 0.05+1e-9 {
		t.Errorf("synthesized error %v above its bound", syn.ExpError)
	}
	if syn.ExpQuestions >= float64(syn.WorstCase) {
		t.Errorf("synthesized E[questions] %v not below worst case %d", syn.ExpQuestions, syn.WorstCase)
	}
	var buf bytes.Buffer
	PrintQualityExtension(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure12Headline(t *testing.T) {
	res, err := Figure12(7)
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic completes all work and beats the fixed-20 cost by ≥25%.
	if res.Dynamic.WorkByHour[len(res.Dynamic.WorkByHour)-1] < 1 {
		t.Error("dynamic trial did not finish")
	}
	var fixed20 LiveCurves
	for _, f := range res.Fixed {
		if f.Group == 20 {
			fixed20 = f
		}
	}
	// The paper reports ≈36%; seeds move this by a few points, so assert a
	// conservative floor.
	saving := 1 - float64(res.Dynamic.CostCents)/float64(fixed20.CostCents)
	if saving < 0.2 {
		t.Errorf("dynamic saving %.0f%% below 20%%", saving*100)
	}
	var buf bytes.Buffer
	PrintFigure12(&buf, res)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure1314Headline(t *testing.T) {
	res, err := Figure1314(9)
	if err != nil {
		t.Fatal(err)
	}
	for g, m := range res.FixedMean {
		if m < 0.85 || m > 0.95 {
			t.Errorf("fixed g=%d mean accuracy %v", g, m)
		}
	}
	if len(res.DynamicMean) == 0 {
		t.Error("dynamic trial produced no accuracy groups")
	}
	for g, m := range res.DynamicMean {
		if m < 0.85 || m > 0.95 {
			t.Errorf("dynamic g=%d mean accuracy %v", g, m)
		}
	}
	var buf bytes.Buffer
	PrintFigure1314(&buf, res)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestFigure15Trend(t *testing.T) {
	rows, err := Figure15(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].HITsPerWorker <= rows[len(rows)-1].HITsPerWorker {
		t.Errorf("HITs/worker not decreasing in bundle size: %v ... %v",
			rows[0].HITsPerWorker, rows[len(rows)-1].HITsPerWorker)
	}
	var buf bytes.Buffer
	PrintFigure15(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}
