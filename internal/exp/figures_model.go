package exp

import (
	"fmt"
	"io"
	"math"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/dist"
	"crowdpricing/internal/trace"
)

// Figure1Series is the Figure 1 data: tasks completed per 6-hour window over
// the 4-week trace.
type Figure1Series struct {
	// Counts[i] is the completions in window i (6 hours each).
	Counts []int
}

// Figure1 regenerates the Figure 1 series from the synthetic trace.
func Figure1() Figure1Series {
	tr := trace.Generate(trace.DefaultConfig())
	return Figure1Series{Counts: tr.SixHourSeries()}
}

// PrintFigure1 writes one row per day (four 6-hour windows).
func PrintFigure1(w io.Writer, s Figure1Series) {
	fmt.Fprintln(w, "Figure 1: worker activity per 6h window, 1/1/2014-1/28/2014")
	for d := 0; d*4 < len(s.Counts); d++ {
		fmt.Fprintf(w, "day %2d:", d+1)
		for k := 0; k < 4 && d*4+k < len(s.Counts); k++ {
			fmt.Fprintf(w, " %7d", s.Counts[d*4+k])
		}
		fmt.Fprintln(w)
	}
}

// Figure5Point is one point of Figure 5: a reward, the utility-simulation
// acceptance probability, and the fitted logit curve's value.
type Figure5Point struct {
	Reward    int
	Simulated float64
	Fitted    float64
}

// Figure5Result is the Figure 5 data with the fitted β.
type Figure5Result struct {
	Points []Figure5Point
	Beta   float64
}

// Figure5 reruns the Section 5.1.1 utility-based simulation and fits the
// Equation-2 logit curve to it.
func Figure5(seed int64) Figure5Result {
	r := dist.NewRNG(seed)
	cfg := choice.DefaultUtilitySim()
	// Regenerate the competitor landscape with recorded utilities so the
	// regression has access to z_i = μ_i like the paper's fit.
	mus := make([]float64, cfg.NumTasks-1)
	for i := range mus {
		mus[i] = r.NormFloat64()
	}
	var rewards []int
	for c := 0; c <= 100; c += 5 {
		rewards = append(rewards, c)
	}
	probs := choice.SimulateAcceptance(cfg, rewards, r)
	beta := choice.FitBeta(cfg.RewardToUtility, mus, rewards, probs)
	var z float64
	for _, u := range mus {
		z += math.Exp(beta * u)
	}
	res := Figure5Result{Beta: beta}
	for i, c := range rewards {
		e := math.Exp(beta * cfg.RewardToUtility(c))
		res.Points = append(res.Points, Figure5Point{
			Reward:    c,
			Simulated: probs[i],
			Fitted:    e / (e + z),
		})
	}
	return res
}

// PrintFigure5 writes the simulated and fitted acceptance curves.
func PrintFigure5(w io.Writer, res Figure5Result) {
	fmt.Fprintf(w, "Figure 5: utility-simulated acceptance vs logit fit (beta=%.2f)\n", res.Beta)
	fmt.Fprintln(w, "reward  simulated  fitted")
	for _, p := range res.Points {
		fmt.Fprintf(w, "%-7d %-10.4f %-10.4f\n", p.Reward, p.Simulated, p.Fitted)
	}
}

// Figure6Point is one task group in the Figure 6 scatter.
type Figure6Point struct {
	Type            trace.TaskType
	WagePerSec      float64
	WorkloadPerHour float64
}

// Figure6 regenerates the Figure 6 scatter of wage/sec against
// workload/hour for the two dominant task types.
func Figure6(seed int64) []Figure6Point {
	r := dist.NewRNG(seed)
	groups := trace.GenerateTaskGroups(trace.PaperGroupModel(), 50, r)
	out := make([]Figure6Point, len(groups))
	for i, g := range groups {
		out[i] = Figure6Point{Type: g.Type, WagePerSec: g.WagePerSec, WorkloadPerHour: g.WorkloadPerHour}
	}
	return out
}

// PrintFigure6 writes the scatter points grouped by type.
func PrintFigure6(w io.Writer, pts []Figure6Point) {
	fmt.Fprintln(w, "Figure 6: wage per second vs completed workload per hour")
	for _, tt := range []trace.TaskType{trace.Categorization, trace.DataCollection} {
		fmt.Fprintf(w, "-- %s --\n", tt)
		fmt.Fprintln(w, "wage($/sec)  workload(sec/h)")
		for _, p := range pts {
			if p.Type == tt {
				fmt.Fprintf(w, "%-12.6f %-14.1f\n", p.WagePerSec, p.WorkloadPerHour)
			}
		}
	}
}
