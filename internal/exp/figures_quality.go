package exp

import (
	"fmt"
	"io"

	"crowdpricing/internal/core"
	"crowdpricing/internal/filter"
)

// QualityRow summarizes one quality-control configuration priced under the
// Section 6 integration: the filtering strategy's statistics and the
// resulting pricing plan for a batch of filtering tasks.
type QualityRow struct {
	// Label names the quality strategy.
	Label string
	// ExpQuestions / ExpError are the per-task strategy statistics under
	// the worker model.
	ExpQuestions, ExpError float64
	// WorstCase is the per-task question bound the pricing plan uses.
	WorstCase int
	// PlannedQuestions is N × WorstCase, the inflated DP batch size.
	PlannedQuestions int
	// ExpectedCost is the pricing plan's expected payment (cents) for the
	// inflated question batch.
	ExpectedCost float64
}

// QualityExtension prices a 100-item filtering batch (24h deadline) under
// three quality regimes: a 3-vote majority, a 5-vote majority, and a
// synthesized CrowdScreen-style strategy at 5% expected error. It shows the
// conservative worst-case inflation the paper's second approximation
// technique trades for tractability.
func QualityExtension(w *Workload) ([]QualityRow, error) {
	base := w.DeadlineProblem(100, DefaultHorizonHours, 60)
	model := filter.Model{Accuracy: 0.8, Prior: 0.5}

	type namedStrategy struct {
		label string
		maxQ  int
		strat core.QualityStrategy
	}
	var strategies []namedStrategy
	for _, k := range []int{3, 5} {
		mv, err := core.MajorityVote(k)
		if err != nil {
			return nil, err
		}
		strategies = append(strategies, namedStrategy{
			label: fmt.Sprintf("majority-%d", k), maxQ: k, strat: mv,
		})
	}
	syn, err := filter.Synthesize(model, 11, 0.05)
	if err != nil {
		return nil, err
	}
	adapted, err := core.NewQualityStrategy(syn.MaxQuestions, syn.IsTerminal)
	if err != nil {
		return nil, err
	}
	strategies = append(strategies, namedStrategy{
		label: "synthesized-5%err", maxQ: syn.MaxQuestions, strat: adapted,
	})

	var rows []QualityRow
	for _, ns := range strategies {
		expQ, expE := gridStats(model, ns.maxQ, ns.strat.IsTerminal)
		plan, err := core.PlanWithQuality(base, ns.strat)
		if err != nil {
			return nil, err
		}
		out := plan.Policy.Evaluate()
		rows = append(rows, QualityRow{
			Label:            ns.label,
			ExpQuestions:     expQ,
			ExpError:         expE,
			WorstCase:        plan.PerTaskWorstCase,
			PlannedQuestions: plan.Policy.Problem.N,
			ExpectedCost:     out.ExpectedCost,
		})
	}
	return rows, nil
}

// gridStats evaluates any terminal-grid strategy under the worker model:
// terminal points decide by posterior majority; interior points ask. It
// returns the expected questions per task and the expected error.
func gridStats(m filter.Model, maxQ int, terminal func(x, y int) bool) (expQ, expErr float64) {
	reach := map[[2]int]float64{{0, 0}: 1}
	for total := 0; total <= maxQ; total++ {
		for x := 0; x <= total; x++ {
			y := total - x
			p := reach[[2]int{x, y}]
			if p == 0 {
				continue
			}
			p1 := m.Posterior(x, y)
			if terminal(x, y) {
				// Posterior-majority decision: error is the minority mass.
				if p1 >= 0.5 {
					expErr += p * (1 - p1)
				} else {
					expErr += p * p1
				}
				continue
			}
			expQ += p
			pYes := m.NextYesProb(x, y)
			reach[[2]int{x, y + 1}] += p * pYes
			reach[[2]int{x + 1, y}] += p * (1 - pYes)
		}
	}
	return expQ, expErr
}

// PrintQualityExtension writes the comparison.
func PrintQualityExtension(w io.Writer, rows []QualityRow) {
	fmt.Fprintln(w, "Extension: quality-control integration (Section 6, approximation 2)")
	fmt.Fprintln(w, "strategy            E[questions]  E[error]  worst-case  planned-Q  E[cost](c)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-19s %-13.2f %-9.4f %-11d %-10d %-10.1f\n",
			r.Label, r.ExpQuestions, r.ExpError, r.WorstCase, r.PlannedQuestions, r.ExpectedCost)
	}
}
