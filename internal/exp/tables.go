package exp

import (
	"fmt"
	"io"

	"crowdpricing/internal/dist"
	"crowdpricing/internal/trace"
)

// Table1Row is one row of Table 1: the Poisson truncation cutoff s0 for a
// threshold ε and mean λ.
type Table1Row struct {
	Eps    float64
	Lambda float64
	S0     int
}

// Table1 regenerates Table 1 (ε = 1e-9; λ = 10, 20, 50).
func Table1() []Table1Row {
	var rows []Table1Row
	for _, lambda := range []float64{10, 20, 50} {
		rows = append(rows, Table1Row{
			Eps:    1e-9,
			Lambda: lambda,
			S0:     dist.Poisson{Lambda: lambda}.TruncationPoint(1e-9),
		})
	}
	return rows
}

// PrintTable1 writes the rows in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: Poisson truncation cutoffs s0")
	fmt.Fprintln(w, "threshold  lambda  s0")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9.0e  %-6.0f  %d\n", r.Eps, r.Lambda, r.S0)
	}
}

// Table2Row is one row of Table 2: per task type, the fitted linear
// coefficient of wage/sec and the bias term.
type Table2Row struct {
	Type   trace.TaskType
	Alpha  float64
	Bias   float64
	Groups int
}

// Table2 regenerates Table 2 by synthesizing task-group snapshots and
// re-fitting the wage → log-workload regression per type.
func Table2(seed int64) []Table2Row {
	r := dist.NewRNG(seed)
	groups := trace.GenerateTaskGroups(trace.PaperGroupModel(), 50, r)
	fit := trace.FitGroupModel(groups)
	var rows []Table2Row
	for _, tt := range []trace.TaskType{trace.Categorization, trace.DataCollection} {
		n := 0
		for _, g := range groups {
			if g.Type == tt {
				n++
			}
		}
		rows = append(rows, Table2Row{Type: tt, Alpha: fit[tt].Alpha, Bias: fit[tt].Bias, Groups: n})
	}
	return rows
}

// PrintTable2 writes the rows in the paper's layout.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: least-squares wage coefficients per task type")
	fmt.Fprintln(w, "type             linear-coefficient  bias   groups")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-19.0f %-6.2f %d\n", r.Type, r.Alpha, r.Bias, r.Groups)
	}
}
