package exp

import (
	"fmt"
	"io"
	"sort"

	"crowdpricing/internal/market"
	"crowdpricing/internal/stats"
)

// LiveCurves holds the hourly completion curves of one trial.
type LiveCurves struct {
	Group int
	// HITsByHour[h] is the cumulative number of HITs finished by hour h+1.
	HITsByHour []int
	// WorkByHour[h] is the cumulative fraction of total work finished.
	WorkByHour []float64
	CostCents  int
	// CompletionHours is the batch finish time, +Inf if unfinished.
	CompletionHours float64
}

// Figure12Result is the live-experiment reproduction: the five fixed trials
// and the dynamic trial.
type Figure12Result struct {
	Fixed   []LiveCurves
	Dynamic LiveCurves
	// DynamicChoices records the bundle size chosen at each hour.
	DynamicChoices []int
}

// Figure12 reruns the Section 5.4 experiments on the marketplace simulator:
// five fixed bundle sizes, then the MDP-planned dynamic schedule using rates
// estimated from the fixed trials.
func Figure12(seed int64) (Figure12Result, error) {
	cfg := market.PaperLiveConfig(market.PaperArrival())
	res := Figure12Result{}
	fixedResults := map[int]*market.Result{}
	for i, g := range market.PaperGroupSizes {
		out, err := market.RunFixed(cfg, g, seed+int64(i))
		if err != nil {
			return res, err
		}
		fixedResults[g] = out
		res.Fixed = append(res.Fixed, curvesFrom(cfg, out, g))
	}
	rates, err := market.EstimateGroupRates(cfg, fixedResults)
	if err != nil {
		return res, err
	}
	choose, err := market.PlanGroupSizes(cfg, rates, 10, 500)
	if err != nil {
		return res, err
	}
	choices := make([]int, int(cfg.Horizon))
	logged := func(remaining, hour int) int {
		g := choose(remaining, hour)
		if hour >= 0 && hour < len(choices) {
			choices[hour] = g
		}
		return g
	}
	dyn, err := market.RunDynamic(cfg, logged, seed+100)
	if err != nil {
		return res, err
	}
	res.Dynamic = curvesFrom(cfg, dyn, 0)
	res.DynamicChoices = choices
	return res, nil
}

func curvesFrom(cfg market.Config, r *market.Result, g int) LiveCurves {
	hours := int(cfg.Horizon)
	lc := LiveCurves{Group: g, CostCents: r.CostCents, CompletionHours: r.CompletionTime}
	for h := 1; h <= hours; h++ {
		lc.HITsByHour = append(lc.HITsByHour, r.CompletedHITsBy(float64(h)))
		lc.WorkByHour = append(lc.WorkByHour, float64(r.CompletedTasksBy(float64(h)))/float64(cfg.TotalTasks))
	}
	return lc
}

// PrintFigure12 writes the three panels of Figure 12.
func PrintFigure12(w io.Writer, res Figure12Result) {
	fmt.Fprintln(w, "Figure 12(a): HITs completed by hour (fixed bundle sizes)")
	fmt.Fprint(w, "hour ")
	for _, f := range res.Fixed {
		fmt.Fprintf(w, " g=%-5d", f.Group)
	}
	fmt.Fprintln(w)
	for h := 0; h < len(res.Fixed[0].HITsByHour); h++ {
		fmt.Fprintf(w, "%4d ", h+1)
		for _, f := range res.Fixed {
			fmt.Fprintf(w, " %-7d", f.HITsByHour[h])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Figure 12(b): % work completed by hour (fixed bundle sizes)")
	for h := 0; h < len(res.Fixed[0].WorkByHour); h++ {
		fmt.Fprintf(w, "%4d ", h+1)
		for _, f := range res.Fixed {
			fmt.Fprintf(w, " %-7.3f", f.WorkByHour[h])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Figure 12(c): % work completed by hour (dynamic)")
	for h, v := range res.Dynamic.WorkByHour {
		fmt.Fprintf(w, "%4d  %-7.3f (g=%d)\n", h+1, v, res.DynamicChoices[minInt(h, len(res.DynamicChoices)-1)])
	}
	fmt.Fprintf(w, "dynamic cost: %d cents; fixed costs:", res.Dynamic.CostCents)
	for _, f := range res.Fixed {
		fmt.Fprintf(w, " g%d=%dc", f.Group, f.CostCents)
	}
	fmt.Fprintln(w)
}

// AccuracyResult is the Figures 13/14 + Tables 3/4 data: per-HIT accuracy
// distributions and their means per bundle size (fixed) and for the dynamic
// trial's dominant sizes.
type AccuracyResult struct {
	// FixedECDF maps bundle size to the sorted per-HIT accuracy sample.
	FixedECDF map[int][]float64
	// FixedMean maps bundle size to the average accuracy (Table 3).
	FixedMean map[int]float64
	// DynamicECDF maps bundle size (of HITs inside the dynamic trial) to
	// accuracy samples; only sizes with enough HITs are included.
	DynamicECDF map[int][]float64
	// DynamicMean maps those sizes to average accuracy (Table 4).
	DynamicMean map[int]float64
}

// Figure1314 reruns the accuracy analysis of Section 5.4.3.
func Figure1314(seed int64) (AccuracyResult, error) {
	cfg := market.PaperLiveConfig(market.PaperArrival())
	res := AccuracyResult{
		FixedECDF: map[int][]float64{}, FixedMean: map[int]float64{},
		DynamicECDF: map[int][]float64{}, DynamicMean: map[int]float64{},
	}
	fixedResults := map[int]*market.Result{}
	for i, g := range market.PaperGroupSizes {
		out, err := market.RunFixed(cfg, g, seed+int64(i))
		if err != nil {
			return res, err
		}
		fixedResults[g] = out
		acc := out.Accuracies()
		sort.Float64s(acc)
		res.FixedECDF[g] = acc
		res.FixedMean[g] = stats.Mean(acc)
	}
	rates, err := market.EstimateGroupRates(cfg, fixedResults)
	if err != nil {
		return res, err
	}
	choose, err := market.PlanGroupSizes(cfg, rates, 10, 500)
	if err != nil {
		return res, err
	}
	dyn, err := market.RunDynamic(cfg, choose, seed+100)
	if err != nil {
		return res, err
	}
	byGroup := map[int][]float64{}
	for _, h := range dyn.HITs {
		byGroup[h.Group] = append(byGroup[h.Group], h.Accuracy())
	}
	groups := make([]int, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, g := range groups {
		acc := byGroup[g]
		if len(acc) < 10 {
			continue // the paper plots only the sizes the policy actually used
		}
		sort.Float64s(acc)
		res.DynamicECDF[g] = acc
		res.DynamicMean[g] = stats.Mean(acc)
	}
	return res, nil
}

// PrintFigure1314 writes the accuracy tables and decile CDFs.
func PrintFigure1314(w io.Writer, res AccuracyResult) {
	fmt.Fprintln(w, "Table 3: average accuracy per bundle size (fixed trials)")
	for _, g := range market.PaperGroupSizes {
		fmt.Fprintf(w, "g=%d: %.1f%%\n", g, res.FixedMean[g]*100)
	}
	fmt.Fprintln(w, "Table 4: average accuracy in the dynamic trial")
	var gs []int
	for g := range res.DynamicMean {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	for _, g := range gs {
		fmt.Fprintf(w, "g=%d: %.1f%% (%d HITs)\n", g, res.DynamicMean[g]*100, len(res.DynamicECDF[g]))
	}
	fmt.Fprintln(w, "Figure 13: accuracy CDF deciles per bundle size (fixed)")
	for _, g := range market.PaperGroupSizes {
		fmt.Fprintf(w, "g=%d:", g)
		printDeciles(w, res.FixedECDF[g])
	}
	fmt.Fprintln(w, "Figure 14: accuracy CDF deciles (dynamic)")
	for _, g := range gs {
		fmt.Fprintf(w, "g=%d:", g)
		printDeciles(w, res.DynamicECDF[g])
	}
}

func printDeciles(w io.Writer, sorted []float64) {
	if len(sorted) == 0 {
		fmt.Fprintln(w, " (no data)")
		return
	}
	for q := 1; q <= 9; q++ {
		idx := q * (len(sorted) - 1) / 10
		fmt.Fprintf(w, " %.2f", sorted[idx])
	}
	fmt.Fprintln(w)
}

// Figure15Row pairs a bundle size with the average HITs per worker.
type Figure15Row struct {
	Group         int
	HITsPerWorker float64
}

// Figure15 reruns the worker-retention analysis.
func Figure15(seed int64) ([]Figure15Row, error) {
	cfg := market.PaperLiveConfig(market.PaperArrival())
	var rows []Figure15Row
	for i, g := range market.PaperGroupSizes {
		out, err := market.RunFixed(cfg, g, seed+int64(i))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure15Row{Group: g, HITsPerWorker: out.HITsPerWorker()})
	}
	return rows, nil
}

// PrintFigure15 writes the retention rows.
func PrintFigure15(w io.Writer, rows []Figure15Row) {
	fmt.Fprintln(w, "Figure 15: average HITs completed per worker")
	fmt.Fprintln(w, "bundle  unit-price($)  HITs/worker")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7d %-14.5f %-11.2f\n", r.Group, 0.02/float64(r.Group), r.HITsPerWorker)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
