package convex

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLowerHullTriangle(t *testing.T) {
	pts := []Point{{0, 0}, {1, 2}, {2, 0}}
	hull := LowerHull(pts)
	want := []Point{{0, 0}, {2, 0}}
	if len(hull) != 2 || hull[0] != want[0] || hull[1] != want[1] {
		t.Errorf("hull = %v, want %v", hull, want)
	}
}

func TestLowerHullConvexCurve(t *testing.T) {
	// All points of a strictly convex curve are hull vertices.
	var pts []Point
	for x := 0.0; x <= 10; x++ {
		pts = append(pts, Point{x, x * x})
	}
	hull := LowerHull(pts)
	if len(hull) != len(pts) {
		t.Errorf("hull has %d vertices, want %d", len(hull), len(pts))
	}
}

func TestLowerHullCollinearDropped(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	hull := LowerHull(pts)
	if len(hull) != 2 || hull[0] != (Point{0, 0}) || hull[1] != (Point{3, 3}) {
		t.Errorf("hull = %v, want endpoints only", hull)
	}
}

func TestLowerHullDuplicateX(t *testing.T) {
	pts := []Point{{0, 5}, {0, 1}, {1, 0}, {2, 4}, {2, 2}}
	hull := LowerHull(pts)
	// Lowest Y wins at each X; hull of (0,1),(1,0),(2,2).
	want := []Point{{0, 1}, {1, 0}, {2, 2}}
	if len(hull) != 3 {
		t.Fatalf("hull = %v", hull)
	}
	for i := range want {
		if hull[i] != want[i] {
			t.Errorf("hull[%d] = %v, want %v", i, hull[i], want[i])
		}
	}
}

func TestLowerHullEmptyAndSingle(t *testing.T) {
	if h := LowerHull(nil); h != nil {
		t.Errorf("empty hull = %v", h)
	}
	h := LowerHull([]Point{{1, 1}})
	if len(h) != 1 || h[0] != (Point{1, 1}) {
		t.Errorf("single hull = %v", h)
	}
}

// TestLowerHullProperty: every input point lies on or above the hull, and
// the hull's vertices turn strictly convex.
func TestLowerHullProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		var pts []Point
		for i := 0; i+1 < len(raw); i += 2 {
			x := math.Mod(math.Abs(raw[i]), 100)
			y := math.Mod(math.Abs(raw[i+1]), 100)
			if math.IsNaN(x) || math.IsNaN(y) {
				return true
			}
			pts = append(pts, Point{x, y})
		}
		hull := LowerHull(pts)
		if len(hull) == 0 {
			return false
		}
		for _, p := range pts {
			if !OnHull(hull, p, 1e-9) {
				return false
			}
		}
		for i := 2; i < len(hull); i++ {
			if cross(hull[i-2], hull[i-1], hull[i]) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBracket(t *testing.T) {
	hull := []Point{{0, 10}, {5, 2}, {10, 8}}
	l, r, interior := Bracket(hull, 3)
	if !interior || l != (Point{0, 10}) || r != (Point{5, 2}) {
		t.Errorf("Bracket(3) = %v %v %v", l, r, interior)
	}
	l, r, interior = Bracket(hull, 5)
	if interior || l != (Point{5, 2}) || r != l {
		t.Errorf("Bracket(5) = %v %v %v", l, r, interior)
	}
	l, r, interior = Bracket(hull, -1)
	if interior || l != (Point{0, 10}) {
		t.Errorf("Bracket(-1) = %v %v %v", l, r, interior)
	}
	l, r, interior = Bracket(hull, 99)
	if interior || l != (Point{10, 8}) {
		t.Errorf("Bracket(99) = %v %v %v", l, r, interior)
	}
}
