// Package convex computes lower convex hulls of planar point sets. The
// fixed-budget pricing strategy of Section 4.3 reduces its LP to choosing
// two adjacent vertices on the lower hull of the points (c, 1/p(c))
// (Theorem 7); this package supplies that hull.
package convex

import "sort"

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// LowerHull returns the vertices of the lower convex hull of pts in
// increasing X order. Ties in X keep only the lowest Y. The input is not
// modified. Collinear interior points are dropped, so consecutive hull
// vertices always describe strictly convex turns.
func LowerHull(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].X != cp[j].X {
			return cp[i].X < cp[j].X
		}
		return cp[i].Y < cp[j].Y
	})
	// Deduplicate identical X, keep the lowest Y (already first after sort).
	dedup := cp[:0]
	for i, p := range cp {
		if i > 0 && p.X == dedup[len(dedup)-1].X {
			continue
		}
		dedup = append(dedup, p)
	}
	cp = dedup

	hull := make([]Point, 0, len(cp))
	for _, p := range cp {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull
}

// cross returns the z-component of (b-a) × (c-a): positive when a→b→c turns
// counter-clockwise (convex for a lower hull).
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// Bracket returns the pair of adjacent hull vertices (left, right) whose X
// span contains x: left.X <= x < right.X. If x falls before the first vertex
// both returns are the first vertex; past the last, both are the last. The
// boolean reports whether x was strictly inside a segment (so two distinct
// prices are needed).
func Bracket(hull []Point, x float64) (left, right Point, interior bool) {
	if len(hull) == 0 {
		panic("convex: empty hull")
	}
	if x <= hull[0].X {
		return hull[0], hull[0], false
	}
	last := hull[len(hull)-1]
	if x >= last.X {
		return last, last, false
	}
	i := sort.Search(len(hull), func(i int) bool { return hull[i].X > x })
	// hull[i-1].X <= x < hull[i].X
	if hull[i-1].X == x {
		return hull[i-1], hull[i-1], false
	}
	return hull[i-1], hull[i], true
}

// OnHull reports whether p lies on or above the lower hull's piecewise
// linear interpolation within the hull's X range, with tolerance tol.
// Points outside the X range are reported as above (true).
func OnHull(hull []Point, p Point, tol float64) bool {
	l, r, interior := Bracket(hull, p.X)
	if !interior {
		return p.Y >= l.Y-tol
	}
	frac := (p.X - l.X) / (r.X - l.X)
	y := l.Y + frac*(r.Y-l.Y)
	return p.Y >= y-tol
}
