package campaign

import (
	"encoding/json"
	"fmt"

	"crowdpricing/internal/core"
	"crowdpricing/internal/kinds"
)

// Quoter is the hot-path view of a solved policy: an O(1) table lookup from
// campaign state (remaining task counts, elapsed interval) to the price(s)
// the policy dictates right now. Quoters are immutable once built — the
// campaign hot path reads them without synchronization beyond the campaign's
// own mutex.
type Quoter interface {
	// Types is the number of task types the policy prices (1 for every kind
	// except multi).
	Types() int
	// Horizon is the number of DP intervals, or 0 for a stationary policy
	// with no finite horizon (tradeoff).
	Horizon() int
	// InitialCounts is the remaining-task vector a fresh campaign starts at.
	InitialCounts() []int
	// Quote returns the policy's price vector (one price per type) for the
	// given remaining counts at interval t. Out-of-range states clamp, as in
	// core's PriceAt accessors, so a campaign past its horizon or below zero
	// remaining still quotes deterministically.
	Quote(remaining []int, t int) []int
}

// SupportsKind reports whether kind has a campaign runtime — a sequential
// per-state price table to quote from. Budget strategies are static
// up-front allocations, so they (and unknown kinds) report false. The
// bench harness uses this to validate campaign-scenario mixes.
func SupportsKind(kind string) bool {
	switch kind {
	case kinds.KindDeadline, kinds.KindTradeoff, kinds.KindMulti:
		return true
	}
	return false
}

// newQuoter decodes the engine's solved artifact for kind into its Quoter.
// Budget is rejected: a budget strategy is a static up-front allocation with
// no per-state price table, so "the current price" is undefined for it.
func newQuoter(kind string, artifact []byte) (Quoter, error) {
	switch kind {
	case kinds.KindDeadline:
		var pol core.DeadlinePolicy
		if err := json.Unmarshal(artifact, &pol); err != nil {
			return nil, fmt.Errorf("campaign: bad deadline artifact: %w", err)
		}
		return &deadlineQuoter{pol: &pol}, nil
	case kinds.KindTradeoff:
		var sched kinds.TradeoffSchedule
		if err := json.Unmarshal(artifact, &sched); err != nil {
			return nil, fmt.Errorf("campaign: bad tradeoff artifact: %w", err)
		}
		if len(sched.Price) == 0 {
			return nil, fmt.Errorf("campaign: tradeoff artifact has an empty price table")
		}
		return &tradeoffQuoter{sched: &sched}, nil
	case kinds.KindMulti:
		var sched kinds.MultiSchedule
		if err := json.Unmarshal(artifact, &sched); err != nil {
			return nil, fmt.Errorf("campaign: bad multi artifact: %w", err)
		}
		return newMultiQuoter(&sched)
	default:
		return nil, fmt.Errorf("campaign: %w: kind %q has no sequential price table", ErrUnsupportedKind, kind)
	}
}

// deadlineQuoter serves the Section 3 finite-horizon policy table.
type deadlineQuoter struct {
	pol *core.DeadlinePolicy
}

func (q *deadlineQuoter) Types() int           { return 1 }
func (q *deadlineQuoter) Horizon() int         { return q.pol.Problem.Intervals }
func (q *deadlineQuoter) InitialCounts() []int { return []int{q.pol.Problem.N} }
func (q *deadlineQuoter) Quote(remaining []int, t int) []int {
	return []int{q.pol.PriceAt(remaining[0], t)}
}

// tradeoffQuoter serves the Section 6 stationary policy: the price depends
// only on the remaining count, never on time.
type tradeoffQuoter struct {
	sched *kinds.TradeoffSchedule
}

func (q *tradeoffQuoter) Types() int           { return 1 }
func (q *tradeoffQuoter) Horizon() int         { return 0 }
func (q *tradeoffQuoter) InitialCounts() []int { return []int{len(q.sched.Price) - 1} }
func (q *tradeoffQuoter) Quote(remaining []int, t int) []int {
	n := remaining[0]
	if n < 0 {
		n = 0
	}
	if n >= len(q.sched.Price) {
		n = len(q.sched.Price) - 1
	}
	return []int{q.sched.Price[n]}
}

// multiQuoter serves the general-k joint policy: states are count vectors,
// flattened row-major with the last type's count varying fastest (the
// MultiSchedule wire layout).
type multiQuoter struct {
	sched   *kinds.MultiSchedule
	strides []int
}

func newMultiQuoter(sched *kinds.MultiSchedule) (*multiQuoter, error) {
	if len(sched.Counts) == 0 || sched.Intervals <= 0 || len(sched.Prices) != sched.Intervals {
		return nil, fmt.Errorf("campaign: malformed multi artifact (%d types, %d/%d interval rows)",
			len(sched.Counts), len(sched.Prices), sched.Intervals)
	}
	states := 1
	strides := make([]int, len(sched.Counts))
	for i := len(sched.Counts) - 1; i >= 0; i-- {
		strides[i] = states
		states *= sched.Counts[i] + 1
	}
	for t, row := range sched.Prices {
		if len(row) != states {
			return nil, fmt.Errorf("campaign: multi artifact row %d has %d states, want %d", t, len(row), states)
		}
	}
	return &multiQuoter{sched: sched, strides: strides}, nil
}

func (q *multiQuoter) Types() int   { return len(q.sched.Counts) }
func (q *multiQuoter) Horizon() int { return q.sched.Intervals }
func (q *multiQuoter) InitialCounts() []int {
	out := make([]int, len(q.sched.Counts))
	copy(out, q.sched.Counts)
	return out
}

func (q *multiQuoter) Quote(remaining []int, t int) []int {
	if t < 0 {
		t = 0
	}
	if t >= q.sched.Intervals {
		t = q.sched.Intervals - 1
	}
	idx := 0
	for i, n := range remaining {
		if n < 0 {
			n = 0
		}
		if n > q.sched.Counts[i] {
			n = q.sched.Counts[i]
		}
		idx += n * q.strides[i]
	}
	src := q.sched.Prices[t][idx]
	out := make([]int, len(src))
	copy(out, src)
	return out
}
