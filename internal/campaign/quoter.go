package campaign

import (
	"encoding/json"
	"fmt"
	"math"

	"crowdpricing/internal/core"
	"crowdpricing/internal/kinds"
)

// Quoter is the hot-path view of a solved policy: an O(1) table lookup from
// campaign state (remaining task counts, elapsed interval) to the price(s)
// the policy dictates right now. Quoters are immutable once built — the
// campaign hot path reads them without synchronization beyond the campaign's
// own mutex.
type Quoter interface {
	// Types is the number of task types the policy prices (1 for every kind
	// except multi).
	Types() int
	// Horizon is the number of DP intervals, or 0 for a stationary policy
	// with no finite horizon (tradeoff).
	Horizon() int
	// InitialCounts is the remaining-task vector a fresh campaign starts at.
	InitialCounts() []int
	// AppendQuote appends the policy's price vector (one price per type) for
	// the given remaining counts at interval t to dst and returns it.
	// Out-of-range states clamp, as in core's PriceAt accessors, so a
	// campaign past its horizon or below zero remaining still quotes
	// deterministically. Reusing dst across quotes keeps the warm path
	// allocation-free.
	AppendQuote(dst []int, remaining []int, t int) []int
}

// policyTable is a decoded, compact policy table: a Quoter that also knows
// its resident footprint, which is what the intern layer's byte budget
// tiers on.
type policyTable interface {
	Quoter
	residentBytes() int64
}

// SupportsKind reports whether kind has a campaign runtime — a sequential
// per-state price table to quote from. Budget strategies are static
// up-front allocations, so they (and unknown kinds) report false. The
// bench harness uses this to validate campaign-scenario mixes.
func SupportsKind(kind string) bool {
	switch kind {
	case kinds.KindDeadline, kinds.KindTradeoff, kinds.KindMulti:
		return true
	}
	return false
}

// decodeTable decodes the engine's solved artifact for kind into its
// compact policy table: one contiguous int32 price slice with precomputed
// strides, in place of the artifact's per-row boxed slices. Budget is
// rejected: a budget strategy is a static up-front allocation with no
// per-state price table, so "the current price" is undefined for it.
func decodeTable(kind string, artifact []byte) (policyTable, error) {
	switch kind {
	case kinds.KindDeadline:
		var pol core.DeadlinePolicy
		if err := json.Unmarshal(artifact, &pol); err != nil {
			return nil, fmt.Errorf("campaign: bad deadline artifact: %w", err)
		}
		return newDeadlineTable(&pol)
	case kinds.KindTradeoff:
		var sched kinds.TradeoffSchedule
		if err := json.Unmarshal(artifact, &sched); err != nil {
			return nil, fmt.Errorf("campaign: bad tradeoff artifact: %w", err)
		}
		return newTradeoffTable(&sched)
	case kinds.KindMulti:
		var sched kinds.MultiSchedule
		if err := json.Unmarshal(artifact, &sched); err != nil {
			return nil, fmt.Errorf("campaign: bad multi artifact: %w", err)
		}
		return newMultiTable(&sched)
	default:
		return nil, fmt.Errorf("campaign: %w: kind %q has no sequential price table", ErrUnsupportedKind, kind)
	}
}

// checkedPrice narrows a decoded price to the compact tables' int32 cells.
// Prices are integer cents bounded by the problem's price range, so the
// narrowing is a formality — but a corrupt artifact must fail at decode,
// not quote wrong prices.
func checkedPrice(p int) (int32, error) {
	if p < math.MinInt32 || p > math.MaxInt32 {
		return 0, fmt.Errorf("campaign: price %d overflows the compact table cell", p)
	}
	return int32(p), nil
}

// deadlineTable serves the Section 3 finite-horizon policy: prices[t*(n+1)+k]
// is the price for k remaining at interval t, matching
// core.DeadlinePolicy.PriceAt bit for bit (including its clamps and the
// n<=0 → MinPrice idle price).
type deadlineTable struct {
	n         int
	intervals int
	minPrice  int32
	prices    []int32
}

func newDeadlineTable(pol *core.DeadlinePolicy) (*deadlineTable, error) {
	n, intervals := pol.Problem.N, pol.Problem.Intervals
	if n <= 0 || intervals <= 0 || len(pol.Price) != intervals {
		return nil, fmt.Errorf("campaign: malformed deadline artifact (n=%d, %d/%d interval rows)",
			n, len(pol.Price), intervals)
	}
	minPrice, err := checkedPrice(pol.Problem.MinPrice)
	if err != nil {
		return nil, err
	}
	q := &deadlineTable{n: n, intervals: intervals, minPrice: minPrice,
		prices: make([]int32, intervals*(n+1))}
	for t, row := range pol.Price {
		if len(row) != n+1 {
			return nil, fmt.Errorf("campaign: deadline artifact row %d has %d states, want %d", t, len(row), n+1)
		}
		for k, p := range row {
			cell, err := checkedPrice(p)
			if err != nil {
				return nil, err
			}
			q.prices[t*(n+1)+k] = cell
		}
	}
	return q, nil
}

func (q *deadlineTable) Types() int           { return 1 }
func (q *deadlineTable) Horizon() int         { return q.intervals }
func (q *deadlineTable) InitialCounts() []int { return []int{q.n} }
func (q *deadlineTable) residentBytes() int64 { return int64(len(q.prices)) * 4 }
func (q *deadlineTable) AppendQuote(dst []int, remaining []int, t int) []int {
	n := remaining[0]
	if n <= 0 {
		return append(dst, int(q.minPrice))
	}
	if n > q.n {
		n = q.n
	}
	if t < 0 {
		t = 0
	}
	if t >= q.intervals {
		t = q.intervals - 1
	}
	return append(dst, int(q.prices[t*(q.n+1)+n]))
}

// tradeoffTable serves the Section 6 stationary policy: the price depends
// only on the remaining count, never on time.
type tradeoffTable struct {
	prices []int32
}

func newTradeoffTable(sched *kinds.TradeoffSchedule) (*tradeoffTable, error) {
	if len(sched.Price) == 0 {
		return nil, fmt.Errorf("campaign: tradeoff artifact has an empty price table")
	}
	q := &tradeoffTable{prices: make([]int32, len(sched.Price))}
	for n, p := range sched.Price {
		cell, err := checkedPrice(p)
		if err != nil {
			return nil, err
		}
		q.prices[n] = cell
	}
	return q, nil
}

func (q *tradeoffTable) Types() int           { return 1 }
func (q *tradeoffTable) Horizon() int         { return 0 }
func (q *tradeoffTable) InitialCounts() []int { return []int{len(q.prices) - 1} }
func (q *tradeoffTable) residentBytes() int64 { return int64(len(q.prices)) * 4 }
func (q *tradeoffTable) AppendQuote(dst []int, remaining []int, t int) []int {
	n := remaining[0]
	if n < 0 {
		n = 0
	}
	if n >= len(q.prices) {
		n = len(q.prices) - 1
	}
	return append(dst, int(q.prices[n]))
}

// multiTable serves the general-k joint policy: states are count vectors,
// flattened row-major with the last type's count varying fastest (the
// MultiSchedule wire layout), and each state's k per-type prices stored
// contiguously at prices[(t*states+idx)*k:].
type multiTable struct {
	counts    []int
	strides   []int
	intervals int
	states    int
	prices    []int32
}

func newMultiTable(sched *kinds.MultiSchedule) (*multiTable, error) {
	if len(sched.Counts) == 0 || sched.Intervals <= 0 || len(sched.Prices) != sched.Intervals {
		return nil, fmt.Errorf("campaign: malformed multi artifact (%d types, %d/%d interval rows)",
			len(sched.Counts), len(sched.Prices), sched.Intervals)
	}
	k := len(sched.Counts)
	states := 1
	strides := make([]int, k)
	for i := k - 1; i >= 0; i-- {
		strides[i] = states
		states *= sched.Counts[i] + 1
	}
	q := &multiTable{
		counts:    append([]int(nil), sched.Counts...),
		strides:   strides,
		intervals: sched.Intervals,
		states:    states,
		prices:    make([]int32, sched.Intervals*states*k),
	}
	for t, row := range sched.Prices {
		if len(row) != states {
			return nil, fmt.Errorf("campaign: multi artifact row %d has %d states, want %d", t, len(row), states)
		}
		for idx, vec := range row {
			if len(vec) != k {
				return nil, fmt.Errorf("campaign: multi artifact state (%d,%d) has %d prices, want %d", t, idx, len(vec), k)
			}
			base := (t*states + idx) * k
			for i, p := range vec {
				cell, err := checkedPrice(p)
				if err != nil {
					return nil, err
				}
				q.prices[base+i] = cell
			}
		}
	}
	return q, nil
}

func (q *multiTable) Types() int   { return len(q.counts) }
func (q *multiTable) Horizon() int { return q.intervals }
func (q *multiTable) InitialCounts() []int {
	return append([]int(nil), q.counts...)
}
func (q *multiTable) residentBytes() int64 {
	return int64(len(q.prices))*4 + int64(len(q.counts)+len(q.strides))*8
}
func (q *multiTable) AppendQuote(dst []int, remaining []int, t int) []int {
	if t < 0 {
		t = 0
	}
	if t >= q.intervals {
		t = q.intervals - 1
	}
	idx := 0
	for i, n := range remaining {
		if n < 0 {
			n = 0
		}
		if n > q.counts[i] {
			n = q.counts[i]
		}
		idx += n * q.strides[i]
	}
	k := len(q.counts)
	base := (t*q.states + idx) * k
	for i := 0; i < k; i++ {
		dst = append(dst, int(q.prices[base+i]))
	}
	return dst
}
