package campaign

// EventSink receives the campaign lifecycle event stream — the same
// create/observe/finish facts the WAL logs, plus quotes (which are
// deliberately never logged) — so an analytics plane can fold live
// traffic without coupling this package to it. internal/analytics
// implements it.
//
// Sink methods are called with scalar arguments only, synchronously from
// the mutation paths (sometimes under a per-campaign mutex), so an
// implementation must be fast, must not block, and must treat its own
// locks as leaves — it may never call back into the Manager.
type EventSink interface {
	// CampaignCreated fires once per successful Create (and once per
	// campaign folded from a WAL by FoldWAL).
	CampaignCreated(kind string, adaptive bool)
	// CampaignObserved fires per applied observe: the interval's arrivals,
	// the summed completions, and the zero-based index of the interval
	// just observed.
	CampaignObserved(kind string, adaptive bool, arrivals float64, completed int, interval int)
	// CampaignQuoted fires per served quote with the headline price.
	CampaignQuoted(kind string, adaptive bool, price int)
	// CampaignFinished fires when a campaign is explicitly finished;
	// CampaignExpired when the TTL sweeper removes it.
	CampaignFinished(kind string, adaptive bool)
	CampaignExpired(kind string, adaptive bool)
}

// sinkHolder wraps the interface so the attach point can be an
// atomic.Pointer — the quote hot path reads it lock-free.
type sinkHolder struct{ sink EventSink }

// AttachSink starts streaming lifecycle events to s. Attach before
// serving mutations; a nil s detaches.
func (m *Manager) AttachSink(s EventSink) {
	if s == nil {
		m.sink.Store(nil)
		return
	}
	m.sink.Store(&sinkHolder{sink: s})
}

// eventSink returns the attached sink, or nil.
func (m *Manager) eventSink() EventSink {
	if h := m.sink.Load(); h != nil {
		return h.sink
	}
	return nil
}
