package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdpricing/internal/engine"
	"crowdpricing/internal/kinds"
	"crowdpricing/internal/telemetry"
	"crowdpricing/internal/wal"
)

// Solver is the slice of internal/engine the manager needs: one
// admission-controlled, cached, deduplicated solve. *engine.Engine
// implements it.
type Solver interface {
	Solve(ctx context.Context, spec engine.Spec) (*engine.Result, error)
}

// batchSolver is the optional background lane: solvers that implement it
// (the engine does) run bank pre-solves and prefetches behind interactive
// work; others serve both from one lane.
type batchSolver interface {
	SolveBatch(ctx context.Context, spec engine.Spec) (*engine.Result, error)
}

// Defaults for Options zero values.
const (
	// DefaultTTL is how long an untouched campaign survives before the
	// sweeper expires it.
	DefaultTTL = 30 * time.Minute
	// DefaultMaxCampaigns bounds the live-campaign table so one tenant
	// cannot grow daemon memory without bound.
	DefaultMaxCampaigns = 65_536
)

// Options configures a Manager. The zero value is production-ready.
type Options struct {
	// TTL expires campaigns idle (no observe/quote/state touch) for longer
	// than this (0 = DefaultTTL; negative = never expire).
	TTL time.Duration
	// MaxCampaigns bounds the table (0 = DefaultMaxCampaigns).
	MaxCampaigns int
	// SweepInterval is how often the background sweeper scans for expired
	// campaigns (0 = TTL/4 clamped to [1s, 1m]). Ignored when TTL < 0.
	SweepInterval time.Duration
	// QuoterMemoryBudget bounds the bytes of decoded policy tables resident
	// across all interned quoters (0 = unlimited). Over budget, the
	// least-recently-quoted tables are dropped and lazily re-decoded from
	// the engine's cached artifact bytes on next use.
	QuoterMemoryBudget int64
	// LazyBank defers adaptive bank solving: only the starting factor is
	// solved at create; a neighboring factor is solved the first time the
	// rate estimate lands on it (prefetched on the engine's background lane,
	// deduped through the engine and the intern table).
	LazyBank bool

	// now overrides the clock in tests.
	now func() time.Time
}

// Manager owns the live-campaign table: create/observe/quote/finish
// lifecycle against the engine, TTL expiry, counters, and snapshot/restore.
// Create with NewManager; a Manager is safe for arbitrary concurrent use.
// Close stops the expiry sweeper (live campaigns remain usable).
type Manager struct {
	solver   Solver
	registry *engine.Registry
	opts     Options
	// intern is the policy-table memory engine: fingerprint-keyed,
	// refcounted, byte-budget-tiered decoded tables shared across campaigns.
	intern *internTable

	mu        sync.RWMutex
	campaigns map[string]*campaign
	seq       atomic.Int64

	// wlog, when attached, receives every state mutation as an event
	// record (see wal.go); nil means durability is off.
	wlog atomic.Pointer[wal.Log]

	// sink, when attached, receives the lifecycle event stream (see
	// sink.go); nil means no analytics plane is listening.
	sink atomic.Pointer[sinkHolder]

	quit     chan struct{}
	stopOnce sync.Once

	created atomic.Int64
	quotes  atomic.Int64
	replans atomic.Int64
	expired atomic.Int64
}

// NewManager builds a Manager solving through solver (typically the
// server's engine) and resolving kinds through reg (nil = kinds.Default()).
func NewManager(solver Solver, reg *engine.Registry, opts Options) *Manager {
	if reg == nil {
		reg = kinds.Default()
	}
	if opts.TTL == 0 {
		opts.TTL = DefaultTTL
	}
	if opts.MaxCampaigns <= 0 {
		opts.MaxCampaigns = DefaultMaxCampaigns
	}
	if opts.SweepInterval <= 0 {
		opts.SweepInterval = opts.TTL / 4
		if opts.SweepInterval < time.Second {
			opts.SweepInterval = time.Second
		}
		if opts.SweepInterval > time.Minute {
			opts.SweepInterval = time.Minute
		}
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	m := &Manager{
		solver:    solver,
		registry:  reg,
		opts:      opts,
		campaigns: make(map[string]*campaign),
		quit:      make(chan struct{}),
	}
	batch := solver.Solve
	if bs, ok := solver.(batchSolver); ok {
		batch = bs.SolveBatch
	}
	m.intern = newInternTable(opts.QuoterMemoryBudget, solver.Solve, batch)
	if opts.TTL > 0 {
		go m.sweeper()
	}
	return m
}

// Close stops the background sweeper. Campaigns stay readable; no further
// TTL expiry happens.
func (m *Manager) Close() { m.stopOnce.Do(func() { close(m.quit) }) }

func (m *Manager) sweeper() {
	ticker := time.NewTicker(m.opts.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.quit:
			return
		case <-ticker.C:
			m.ExpireIdle()
		}
	}
}

// ExpireIdle removes campaigns idle past the TTL and returns how many were
// expired. The background sweeper calls this periodically; it is exported
// for tests and embedders that want deterministic sweeps.
func (m *Manager) ExpireIdle() int {
	if m.opts.TTL < 0 {
		return 0
	}
	cutoff := m.opts.now().Add(-m.opts.TTL)
	m.mu.Lock()
	var dead []*campaign
	for _, c := range m.campaigns {
		c.mu.Lock()
		idle := c.lastTouched.Before(cutoff)
		c.mu.Unlock()
		if idle {
			dead = append(dead, c)
		}
	}
	removed := make([]*campaign, 0, len(dead))
	for _, c := range dead {
		delete(m.campaigns, c.id)
		removed = append(removed, c)
		// Expiry must reach the log, or a replay would resurrect the
		// campaign. The sweeper has no caller to surface an append error
		// to; the failure is sticky and the next client write reports it.
		if _, err := m.walAppend(nil, WALRecordExpire, walRefEvent{ID: c.id}); err != nil {
			break
		}
	}
	m.mu.Unlock()
	// Return the expired campaigns' intern references outside the table
	// lock; shared tables stay resident for their surviving holders.
	sink := m.eventSink()
	for _, c := range removed {
		m.intern.releaseAll(c.bank)
		if sink != nil {
			sink.CampaignExpired(c.kind, c.adaptive())
		}
	}
	m.expired.Add(int64(len(removed)))
	return len(removed)
}

// decodeSpec resolves kind through the registry and strictly decodes
// request into a fresh validated Spec.
func (m *Manager) decodeSpec(kind string, request json.RawMessage) (engine.Spec, error) {
	def, ok := m.registry.Lookup(kind)
	if !ok {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrUnsupportedKind, kind)
	}
	spec := def.New()
	dec := json.NewDecoder(bytes.NewReader(request))
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		return nil, &engine.InvalidSpecError{Err: fmt.Errorf("bad %s request: %w", kind, err)}
	}
	return spec, nil
}

// acquireQuoter interns one spec's policy handle and ensures its table is
// decoded: an intern hit on a warm table costs a map lookup; a miss (or an
// evicted table) solves through the engine — warm-cache cheap when an
// identical problem was solved before — and decodes once. The caller owns
// one reference on the returned handle.
func (m *Manager) acquireQuoter(ctx context.Context, kind string, spec engine.Spec) (*internedQuoter, bool, error) {
	h, err := m.intern.acquire(kind, spec)
	if err != nil {
		return nil, false, err
	}
	_, warm, err := h.ensure(ctx, false)
	if err != nil {
		m.intern.release(h)
		return nil, false, err
	}
	return h, warm, nil
}

// releaseCampaign returns every bank handle's intern reference. Call it on
// every path that unregisters (or never registers) a built campaign.
func (m *Manager) releaseCampaign(c *campaign) {
	m.intern.releaseAll(c.bank)
}

// Create registers a new campaign: intern the policy for (kind, request) —
// identical campaigns share one decoded table, cold problems solve through
// the engine — and, in adaptive mode, build the factor bank (pre-solved
// on the engine's background lane, or lazily under Options.LazyBank).
// The returned State carries the campaign ID every other call takes.
func (m *Manager) Create(ctx context.Context, kind string, request json.RawMessage, adaptive *AdaptiveOptions) (*State, error) {
	// Shed a full table before any solver work: a 429 must mean "the
	// daemon did no work, retry later" (the contract SolveWithRetry leans
	// on), not "the daemon ran a dozen solves and then refused". The check
	// repeats authoritatively under the lock at insert time.
	m.mu.RLock()
	full := len(m.campaigns) >= m.opts.MaxCampaigns
	m.mu.RUnlock()
	if full {
		return nil, fmt.Errorf("%w (%d live campaigns)", ErrTableFull, m.opts.MaxCampaigns)
	}
	spec, err := m.decodeSpec(kind, request)
	if err != nil {
		return nil, err
	}
	h, warm, err := m.acquireQuoter(ctx, kind, spec)
	if err != nil {
		return nil, err
	}

	c := &campaign{
		kind:        kind,
		request:     append([]byte(nil), request...),
		fingerprint: h.key,
		bank:        []*internedQuoter{h},
		remaining:   h.InitialCounts(),
		quoteBuf:    make([]int, 0, h.Types()),
		factor:      1,
	}
	registered := false
	defer func() {
		if !registered {
			m.releaseCampaign(c)
		}
	}()
	if adaptive != nil {
		err := m.buildBank(ctx, c, spec, adaptive)
		// The bank's own slots hold their references now (the factor-1.0
		// slot deduped onto h when the grid contains it); the initial
		// handle's reference is returned either way. On error the deferred
		// release covers the bank-less c.
		if err == nil {
			m.intern.release(h)
		}
		if err != nil {
			return nil, err
		}
	}

	now := m.opts.now()
	c.created, c.lastTouched = now, now
	seq := m.seq.Add(1)
	c.id = campaignID(seq, c.fingerprint)

	m.mu.Lock()
	if len(m.campaigns) >= m.opts.MaxCampaigns {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d live campaigns)", ErrTableFull, m.opts.MaxCampaigns)
	}
	// Log the create while still holding the table lock: any Observe on
	// the new ID must first see it in the table (an RLock acquired after
	// this Unlock), so its event always lands after this one in the log.
	lsn, err := m.walAppend(telemetry.FromContext(ctx), WALRecordCreate, walCreateEvent{
		ID:              c.id,
		Seq:             seq,
		Kind:            kind,
		Request:         request,
		Adaptive:        adaptive,
		CreatedUnixNano: now.UnixNano(),
	})
	if err != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("campaign: logging create: %w", err)
	}
	c.lastLSN = lsn
	m.campaigns[c.id] = c
	registered = true
	m.mu.Unlock()
	m.created.Add(1)
	if sink := m.eventSink(); sink != nil {
		sink.CampaignCreated(kind, adaptive != nil)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateLocked()
	st.SolveCacheHit = warm
	return st, nil
}

// buildBank builds the adaptive factor bank: one interned handle per
// factor of the base deadline problem with λ_t scaled, so identical banks
// across campaigns (or across a snapshot restore) share one decoded table
// per factor, not one per campaign. Eager mode pre-solves every factor
// concurrently through the engine's background lane — its worker pool,
// queue, and singleflight table are the admission control, and the lane
// keeps the grid from monopolizing workers against interactive solves.
// Lazy mode (Options.LazyBank) solves only the starting factor; the rest
// solve the first time a re-plan lands on them.
func (m *Manager) buildBank(ctx context.Context, c *campaign, spec engine.Spec, adaptive *AdaptiveOptions) error {
	base, ok := spec.(*kinds.DeadlineRequest)
	if !ok {
		return fmt.Errorf("%w, got %q", ErrAdaptiveUnsupported, c.kind)
	}
	norm, err := adaptive.normalized()
	if err != nil {
		return &engine.InvalidSpecError{Err: err}
	}
	// Acquire every factor's handle up front (a fingerprint and a map
	// entry each); solving is a separate, per-mode decision.
	bank := make([]*internedQuoter, len(norm.Factors))
	for i, f := range norm.Factors {
		scaled := *base
		scaled.Lambdas = make([]float64, len(base.Lambdas))
		for t, l := range base.Lambdas {
			scaled.Lambdas[t] = l * f
		}
		h, err := m.intern.acquire(c.kind, &scaled)
		if err != nil {
			m.intern.releaseAll(bank[:i])
			return fmt.Errorf("interning adaptive bank factor %g: %w", f, err)
		}
		bank[i] = h
	}
	// Start on the factor nearest 1.0 — the trained profile — exactly as
	// the sim controller does before its first window closes.
	start := nearestIndex(norm.Factors, 1)
	if m.opts.LazyBank {
		if _, _, err := bank[start].ensure(ctx, false); err != nil {
			m.intern.releaseAll(bank)
			return fmt.Errorf("solving adaptive bank factor %g: %w", norm.Factors[start], err)
		}
		// Unsolved slots answer Horizon/Types from the starting factor's
		// shape — scaling λ_t moves prices, never dimensions.
		m.intern.prefillMeta(bank, bank[start])
	} else {
		errs := make([]error, len(bank))
		var wg sync.WaitGroup
		for i := range bank {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, _, err := bank[i].ensure(ctx, true); err != nil {
					errs[i] = fmt.Errorf("solving adaptive bank factor %g: %w", norm.Factors[i], err)
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				m.intern.releaseAll(bank)
				return err
			}
		}
	}
	c.bank = bank
	c.factors = norm.Factors
	c.window = norm.WindowIntervals
	c.baseLambdas = append([]float64(nil), base.Lambdas...)
	c.activeIdx = start
	return nil
}

// nearestIndex returns the index of the factor closest to x — the single
// quantization rule shared by the initial bank selection and every
// re-plan.
func nearestIndex(fs []float64, x float64) int {
	best, bestD := 0, math.Abs(fs[0]-x)
	for i, f := range fs {
		if d := math.Abs(f - x); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// campaignID derives a readable, collision-free ID: a process-local
// sequence number plus a fingerprint excerpt for log greppability.
func campaignID(seq int64, fingerprint string) string {
	fp := fingerprint
	if i := strings.LastIndexByte(fp, ':'); i >= 0 {
		fp = fp[i+1:]
	}
	if len(fp) > 8 {
		fp = fp[:8]
	}
	return fmt.Sprintf("c%06d-%s", seq, fp)
}

// get looks up a live campaign. Callers that touch state (Observe, Quote,
// State) refresh lastTouched themselves under the campaign's lock; get
// does not.
func (m *Manager) get(id string) (*campaign, error) {
	m.mu.RLock()
	c, ok := m.campaigns[id]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return c, nil
}

// Observe records one elapsed interval: the observed marketplace arrivals
// and the tasks completed (per type; nil means none). Adaptive campaigns
// re-estimate the rate scale and may switch policies — visible in the
// returned State's ActiveFactor and Replans.
func (m *Manager) Observe(id string, arrivals float64, completed []int) (*State, error) {
	return m.ObserveTraced(nil, id, arrivals, completed)
}

// ObserveTraced is Observe with request-tracing spans: the per-campaign
// mutex (acquisition + critical section) lands on StageLockHold and the
// event-log append on StageWALAppend. A nil trace records nothing.
func (m *Manager) ObserveTraced(tr *telemetry.Trace, id string, arrivals float64, completed []int) (*State, error) {
	c, err := m.get(id)
	if err != nil {
		return nil, err
	}
	lockStart := tr.Now()
	st, err := m.observeCampaign(tr, c, arrivals, completed)
	tr.ObserveSince(telemetry.StageLockHold, lockStart)
	return st, err
}

func (m *Manager) observeCampaign(tr *telemetry.Trace, c *campaign, arrivals float64, completed []int) (*State, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.replans
	if err := c.observeLocked(arrivals, completed); err != nil {
		return nil, err
	}
	// Log after the validate-then-mutate succeeds so rejected observes
	// never reach the log (replay applies every logged event). The append
	// happens under c.mu, so a campaign's events are logged in the order
	// they were applied.
	lsn, err := m.walAppend(tr, WALRecordObserve, walObserveEvent{ID: c.id, Arrivals: arrivals, Completed: completed})
	if err != nil {
		return nil, fmt.Errorf("campaign: logging observe: %w", err)
	}
	if lsn > 0 {
		c.lastLSN = lsn
	}
	c.lastTouched = m.opts.now()
	m.replans.Add(c.replans - before)
	if sink := m.eventSink(); sink != nil {
		sink.CampaignObserved(c.kind, c.adaptive(), arrivals, sumCompleted(completed), c.interval-1)
	}
	// Lazy banks: a re-plan that landed on a still-unsolved factor solves
	// it now, asynchronously on the engine's background lane (deduped per
	// handle), so the estimate's first drift toward a neighbor pre-warms
	// that neighbor before the next quote needs it.
	if c.adaptive() {
		if h := c.active(); h.load() == nil {
			go h.prefetch()
		}
	}
	return c.stateLocked(), nil
}

// sumCompleted collapses a per-type completion vector for the event
// stream (nil means no completions).
func sumCompleted(completed []int) int {
	total := 0
	for _, n := range completed {
		total += n
	}
	return total
}

// Quote serves the policy's price for the campaign's current state — the
// hot path: when the active table is resident, one mutex acquisition, one
// atomic table load, and one lookup into the campaign's reusable price
// buffer — zero heap allocations beyond the response envelope. A table
// evicted under the memory budget (or a lazy bank slot quoted before its
// prefetch lands) is re-decoded outside the campaign's mutex first.
func (m *Manager) Quote(id string) (*Quote, error) {
	return m.QuoteTraced(nil, id)
}

// QuoteTraced is Quote with request-tracing spans: the per-campaign
// mutex lands on StageLockHold (in the rare evicted-table case the span
// covers the whole quote critical path, including the re-ensure, whose
// decode also shows separately on StageQuoterDecode). A nil trace
// records nothing and adds nothing to the hot path beyond two nil
// checks; a live trace adds two atomic operations and zero allocations
// (fenced by TestQuoteTracedAllocationBound).
func (m *Manager) QuoteTraced(tr *telemetry.Trace, id string) (*Quote, error) {
	c, err := m.get(id)
	if err != nil {
		return nil, err
	}
	lockStart := tr.Now()
	q, err := m.quoteCampaign(tr, c)
	tr.ObserveSince(telemetry.StageLockHold, lockStart)
	return q, err
}

func (m *Manager) quoteCampaign(tr *telemetry.Trace, c *campaign) (*Quote, error) {
	c.mu.Lock()
	h := c.active()
	var tab Quoter = h.load()
	for tab == nil {
		c.mu.Unlock()
		etab, _, err := h.ensure(telemetry.NewContext(context.Background(), tr), false)
		if err != nil {
			return nil, fmt.Errorf("campaign: re-decoding policy table: %w", err)
		}
		c.mu.Lock()
		if c.active() == h {
			// Quote from the table just ensured even if the budget already
			// evicted it again — tables are immutable, so the price is the
			// same; only recency bookkeeping would differ.
			tab = etab
		} else {
			// A concurrent re-plan switched factors mid-ensure; chase the
			// new active slot.
			h = c.active()
			tab = h.load()
		}
	}
	defer c.mu.Unlock()
	h.touch()
	prices := c.quoteLocked(tab)
	c.lastTouched = m.opts.now()
	m.quotes.Add(1)
	q := &Quote{
		ID:    c.id,
		Price: prices[0],
		// prices aliases the campaign's scratch buffer, which the next
		// quote overwrites; the response envelope owns its own copy.
		Prices:    append([]int(nil), prices...),
		Interval:  c.interval,
		Remaining: append([]int(nil), c.remaining...),
		Done:      c.doneLocked(),
	}
	if c.adaptive() {
		q.ActiveFactor = c.factors[c.activeIdx]
	}
	if sink := m.eventSink(); sink != nil {
		sink.CampaignQuoted(c.kind, c.adaptive(), q.Price)
	}
	return q, nil
}

// State returns the campaign's current state without advancing anything.
func (m *Manager) State(id string) (*State, error) {
	c, err := m.get(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastTouched = m.opts.now()
	return c.stateLocked(), nil
}

// Finish removes the campaign and returns its terminal accounting.
func (m *Manager) Finish(id string) (*Summary, error) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	if ok {
		delete(m.campaigns, id)
	}
	var logErr error
	if ok {
		_, logErr = m.walAppend(nil, WALRecordFinish, walRefEvent{ID: id})
	}
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	// The campaign left the table; return its intern references. Shared
	// tables stay resident for their surviving holders.
	m.releaseCampaign(c)
	if logErr != nil {
		return nil, fmt.Errorf("campaign: logging finish: %w", logErr)
	}
	if sink := m.eventSink(); sink != nil {
		sink.CampaignFinished(c.kind, c.adaptive())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Summary{
		ID:               c.id,
		Kind:             c.kind,
		Intervals:        c.interval,
		Remaining:        append([]int(nil), c.remaining...),
		Done:             c.doneLocked(),
		Quotes:           c.quotes,
		Replans:          c.replans,
		ObservedArrivals: c.observedTotal,
	}, nil
}

// Metrics is a point-in-time read of the manager's observability surface.
type Metrics struct {
	// Active is the number of live campaigns.
	Active int64
	// Created, Quotes, Replans, and Expired are lifetime counters
	// (finished campaigns keep contributing to the totals).
	Created int64
	Quotes  int64
	Replans int64
	Expired int64

	// QuoterInterned is the number of distinct policy tables in the intern
	// table; QuoterResidentBytes the decoded bytes currently resident
	// across them (evicted entries count zero).
	QuoterInterned      int64
	QuoterResidentBytes int64
	// QuoterInternHits / QuoterInternMisses count intern-table lookups
	// that found / created an entry; QuoterRedecodes counts tables decoded
	// again after a budget eviction.
	QuoterInternHits   int64
	QuoterInternMisses int64
	QuoterRedecodes    int64
}

// Metrics returns the current counter and gauge values.
func (m *Manager) Metrics() Metrics {
	m.mu.RLock()
	active := int64(len(m.campaigns))
	m.mu.RUnlock()
	is := m.intern.stats()
	return Metrics{
		Active:              active,
		Created:             m.created.Load(),
		Quotes:              m.quotes.Load(),
		Replans:             m.replans.Load(),
		Expired:             m.expired.Load(),
		QuoterInterned:      is.interned,
		QuoterResidentBytes: is.residentBytes,
		QuoterInternHits:    is.hits,
		QuoterInternMisses:  is.misses,
		QuoterRedecodes:     is.redecodes,
	}
}
