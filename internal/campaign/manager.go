package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crowdpricing/internal/engine"
	"crowdpricing/internal/kinds"
	"crowdpricing/internal/wal"
)

// Solver is the slice of internal/engine the manager needs: one
// admission-controlled, cached, deduplicated solve. *engine.Engine
// implements it.
type Solver interface {
	Solve(ctx context.Context, spec engine.Spec) (*engine.Result, error)
}

// Defaults for Options zero values.
const (
	// DefaultTTL is how long an untouched campaign survives before the
	// sweeper expires it.
	DefaultTTL = 30 * time.Minute
	// DefaultMaxCampaigns bounds the live-campaign table so one tenant
	// cannot grow daemon memory without bound.
	DefaultMaxCampaigns = 65_536
)

// Options configures a Manager. The zero value is production-ready.
type Options struct {
	// TTL expires campaigns idle (no observe/quote/state touch) for longer
	// than this (0 = DefaultTTL; negative = never expire).
	TTL time.Duration
	// MaxCampaigns bounds the table (0 = DefaultMaxCampaigns).
	MaxCampaigns int
	// SweepInterval is how often the background sweeper scans for expired
	// campaigns (0 = TTL/4 clamped to [1s, 1m]). Ignored when TTL < 0.
	SweepInterval time.Duration

	// now overrides the clock in tests.
	now func() time.Time
}

// Manager owns the live-campaign table: create/observe/quote/finish
// lifecycle against the engine, TTL expiry, counters, and snapshot/restore.
// Create with NewManager; a Manager is safe for arbitrary concurrent use.
// Close stops the expiry sweeper (live campaigns remain usable).
type Manager struct {
	solver   Solver
	registry *engine.Registry
	opts     Options

	mu        sync.RWMutex
	campaigns map[string]*campaign
	seq       atomic.Int64

	// wlog, when attached, receives every state mutation as an event
	// record (see wal.go); nil means durability is off.
	wlog atomic.Pointer[wal.Log]

	quit     chan struct{}
	stopOnce sync.Once

	created atomic.Int64
	quotes  atomic.Int64
	replans atomic.Int64
	expired atomic.Int64
}

// NewManager builds a Manager solving through solver (typically the
// server's engine) and resolving kinds through reg (nil = kinds.Default()).
func NewManager(solver Solver, reg *engine.Registry, opts Options) *Manager {
	if reg == nil {
		reg = kinds.Default()
	}
	if opts.TTL == 0 {
		opts.TTL = DefaultTTL
	}
	if opts.MaxCampaigns <= 0 {
		opts.MaxCampaigns = DefaultMaxCampaigns
	}
	if opts.SweepInterval <= 0 {
		opts.SweepInterval = opts.TTL / 4
		if opts.SweepInterval < time.Second {
			opts.SweepInterval = time.Second
		}
		if opts.SweepInterval > time.Minute {
			opts.SweepInterval = time.Minute
		}
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	m := &Manager{
		solver:    solver,
		registry:  reg,
		opts:      opts,
		campaigns: make(map[string]*campaign),
		quit:      make(chan struct{}),
	}
	if opts.TTL > 0 {
		go m.sweeper()
	}
	return m
}

// Close stops the background sweeper. Campaigns stay readable; no further
// TTL expiry happens.
func (m *Manager) Close() { m.stopOnce.Do(func() { close(m.quit) }) }

func (m *Manager) sweeper() {
	ticker := time.NewTicker(m.opts.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.quit:
			return
		case <-ticker.C:
			m.ExpireIdle()
		}
	}
}

// ExpireIdle removes campaigns idle past the TTL and returns how many were
// expired. The background sweeper calls this periodically; it is exported
// for tests and embedders that want deterministic sweeps.
func (m *Manager) ExpireIdle() int {
	if m.opts.TTL < 0 {
		return 0
	}
	cutoff := m.opts.now().Add(-m.opts.TTL)
	m.mu.Lock()
	var dead []string
	for id, c := range m.campaigns {
		c.mu.Lock()
		idle := c.lastTouched.Before(cutoff)
		c.mu.Unlock()
		if idle {
			dead = append(dead, id)
		}
	}
	for _, id := range dead {
		delete(m.campaigns, id)
		// Expiry must reach the log, or a replay would resurrect the
		// campaign. The sweeper has no caller to surface an append error
		// to; the failure is sticky and the next client write reports it.
		if _, err := m.walAppend(WALRecordExpire, walRefEvent{ID: id}); err != nil {
			break
		}
	}
	m.mu.Unlock()
	m.expired.Add(int64(len(dead)))
	return len(dead)
}

// decodeSpec resolves kind through the registry and strictly decodes
// request into a fresh validated Spec.
func (m *Manager) decodeSpec(kind string, request json.RawMessage) (engine.Spec, error) {
	def, ok := m.registry.Lookup(kind)
	if !ok {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrUnsupportedKind, kind)
	}
	spec := def.New()
	dec := json.NewDecoder(bytes.NewReader(request))
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		return nil, &engine.InvalidSpecError{Err: fmt.Errorf("bad %s request: %w", kind, err)}
	}
	return spec, nil
}

// solveQuoter runs one spec through the engine and decodes the artifact
// into its quoter.
func (m *Manager) solveQuoter(ctx context.Context, kind string, spec engine.Spec) (Quoter, *engine.Result, error) {
	res, err := m.solver.Solve(ctx, spec)
	if err != nil {
		return nil, nil, err
	}
	q, err := newQuoter(kind, res.Value)
	if err != nil {
		return nil, nil, err
	}
	return q, res, nil
}

// Create registers a new campaign: solve the policy for (kind, request)
// through the engine — warm-cache cheap when an identical problem was
// solved before — and, in adaptive mode, pre-solve the whole factor bank.
// The returned State carries the campaign ID every other call takes.
func (m *Manager) Create(ctx context.Context, kind string, request json.RawMessage, adaptive *AdaptiveOptions) (*State, error) {
	// Shed a full table before any solver work: a 429 must mean "the
	// daemon did no work, retry later" (the contract SolveWithRetry leans
	// on), not "the daemon ran a dozen solves and then refused". The check
	// repeats authoritatively under the lock at insert time.
	m.mu.RLock()
	full := len(m.campaigns) >= m.opts.MaxCampaigns
	m.mu.RUnlock()
	if full {
		return nil, fmt.Errorf("%w (%d live campaigns)", ErrTableFull, m.opts.MaxCampaigns)
	}
	spec, err := m.decodeSpec(kind, request)
	if err != nil {
		return nil, err
	}
	quoter, res, err := m.solveQuoter(ctx, kind, spec)
	if err != nil {
		return nil, err
	}

	c := &campaign{
		kind:        kind,
		request:     append([]byte(nil), request...),
		fingerprint: res.Fingerprint,
		bank:        []Quoter{quoter},
		remaining:   quoter.InitialCounts(),
		factor:      1,
	}
	if adaptive != nil {
		if err := m.buildBank(ctx, c, spec, adaptive); err != nil {
			return nil, err
		}
	}

	now := m.opts.now()
	c.created, c.lastTouched = now, now
	seq := m.seq.Add(1)
	c.id = campaignID(seq, res.Fingerprint)

	m.mu.Lock()
	if len(m.campaigns) >= m.opts.MaxCampaigns {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d live campaigns)", ErrTableFull, m.opts.MaxCampaigns)
	}
	// Log the create while still holding the table lock: any Observe on
	// the new ID must first see it in the table (an RLock acquired after
	// this Unlock), so its event always lands after this one in the log.
	lsn, err := m.walAppend(WALRecordCreate, walCreateEvent{
		ID:              c.id,
		Seq:             seq,
		Kind:            kind,
		Request:         request,
		Adaptive:        adaptive,
		CreatedUnixNano: now.UnixNano(),
	})
	if err != nil {
		m.mu.Unlock()
		return nil, fmt.Errorf("campaign: logging create: %w", err)
	}
	c.lastLSN = lsn
	m.campaigns[c.id] = c
	m.mu.Unlock()
	m.created.Add(1)

	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateLocked()
	st.SolveCacheHit = res.CacheHit
	return st, nil
}

// buildBank pre-solves the adaptive factor grid: the base deadline problem
// with λ_t scaled by each factor, every solve going through the engine so
// identical banks across campaigns (or across a snapshot restore) cost one
// solve per factor, not one per campaign. The factors are submitted
// concurrently — the engine's worker pool, queue, and singleflight table
// are the admission control, so a bank costs roughly one solve's wall
// time on a multi-core daemon instead of the sum of the grid.
func (m *Manager) buildBank(ctx context.Context, c *campaign, spec engine.Spec, adaptive *AdaptiveOptions) error {
	base, ok := spec.(*kinds.DeadlineRequest)
	if !ok {
		return fmt.Errorf("%w, got %q", ErrAdaptiveUnsupported, c.kind)
	}
	norm, err := adaptive.normalized()
	if err != nil {
		return &engine.InvalidSpecError{Err: err}
	}
	bank := make([]Quoter, len(norm.Factors))
	errs := make([]error, len(norm.Factors))
	var wg sync.WaitGroup
	for i, f := range norm.Factors {
		wg.Add(1)
		go func(i int, f float64) {
			defer wg.Done()
			scaled := *base
			scaled.Lambdas = make([]float64, len(base.Lambdas))
			for t, l := range base.Lambdas {
				scaled.Lambdas[t] = l * f
			}
			q, _, err := m.solveQuoter(ctx, c.kind, &scaled)
			if err != nil {
				errs[i] = fmt.Errorf("solving adaptive bank factor %g: %w", f, err)
				return
			}
			bank[i] = q
		}(i, f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	c.bank = bank
	c.factors = norm.Factors
	c.window = norm.WindowIntervals
	c.baseLambdas = append([]float64(nil), base.Lambdas...)
	// Start on the factor nearest 1.0 — the trained profile — exactly as
	// the sim controller does before its first window closes.
	c.activeIdx = nearestIndex(norm.Factors, 1)
	return nil
}

// nearestIndex returns the index of the factor closest to x — the single
// quantization rule shared by the initial bank selection and every
// re-plan.
func nearestIndex(fs []float64, x float64) int {
	best, bestD := 0, math.Abs(fs[0]-x)
	for i, f := range fs {
		if d := math.Abs(f - x); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// campaignID derives a readable, collision-free ID: a process-local
// sequence number plus a fingerprint excerpt for log greppability.
func campaignID(seq int64, fingerprint string) string {
	fp := fingerprint
	if i := strings.LastIndexByte(fp, ':'); i >= 0 {
		fp = fp[i+1:]
	}
	if len(fp) > 8 {
		fp = fp[:8]
	}
	return fmt.Sprintf("c%06d-%s", seq, fp)
}

// get looks up a live campaign. Callers that touch state (Observe, Quote,
// State) refresh lastTouched themselves under the campaign's lock; get
// does not.
func (m *Manager) get(id string) (*campaign, error) {
	m.mu.RLock()
	c, ok := m.campaigns[id]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return c, nil
}

// Observe records one elapsed interval: the observed marketplace arrivals
// and the tasks completed (per type; nil means none). Adaptive campaigns
// re-estimate the rate scale and may switch policies — visible in the
// returned State's ActiveFactor and Replans.
func (m *Manager) Observe(id string, arrivals float64, completed []int) (*State, error) {
	c, err := m.get(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.replans
	if err := c.observeLocked(arrivals, completed); err != nil {
		return nil, err
	}
	// Log after the validate-then-mutate succeeds so rejected observes
	// never reach the log (replay applies every logged event). The append
	// happens under c.mu, so a campaign's events are logged in the order
	// they were applied.
	lsn, err := m.walAppend(WALRecordObserve, walObserveEvent{ID: c.id, Arrivals: arrivals, Completed: completed})
	if err != nil {
		return nil, fmt.Errorf("campaign: logging observe: %w", err)
	}
	if lsn > 0 {
		c.lastLSN = lsn
	}
	c.lastTouched = m.opts.now()
	m.replans.Add(c.replans - before)
	return c.stateLocked(), nil
}

// Quote serves the policy's price for the campaign's current state — the
// hot path: one mutex acquisition and one table lookup, no allocation
// beyond the response.
func (m *Manager) Quote(id string) (*Quote, error) {
	c, err := m.get(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	prices := c.quoteLocked()
	c.lastTouched = m.opts.now()
	m.quotes.Add(1)
	q := &Quote{
		ID:        c.id,
		Price:     prices[0],
		Prices:    prices,
		Interval:  c.interval,
		Remaining: append([]int(nil), c.remaining...),
		Done:      c.doneLocked(),
	}
	if c.adaptive() {
		q.ActiveFactor = c.factors[c.activeIdx]
	}
	return q, nil
}

// State returns the campaign's current state without advancing anything.
func (m *Manager) State(id string) (*State, error) {
	c, err := m.get(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lastTouched = m.opts.now()
	return c.stateLocked(), nil
}

// Finish removes the campaign and returns its terminal accounting.
func (m *Manager) Finish(id string) (*Summary, error) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	if ok {
		delete(m.campaigns, id)
	}
	var logErr error
	if ok {
		_, logErr = m.walAppend(WALRecordFinish, walRefEvent{ID: id})
	}
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if logErr != nil {
		return nil, fmt.Errorf("campaign: logging finish: %w", logErr)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Summary{
		ID:               c.id,
		Kind:             c.kind,
		Intervals:        c.interval,
		Remaining:        append([]int(nil), c.remaining...),
		Done:             c.doneLocked(),
		Quotes:           c.quotes,
		Replans:          c.replans,
		ObservedArrivals: c.observedTotal,
	}, nil
}

// Metrics is a point-in-time read of the manager's observability surface.
type Metrics struct {
	// Active is the number of live campaigns.
	Active int64
	// Created, Quotes, Replans, and Expired are lifetime counters
	// (finished campaigns keep contributing to the totals).
	Created int64
	Quotes  int64
	Replans int64
	Expired int64
}

// Metrics returns the current counter and gauge values.
func (m *Manager) Metrics() Metrics {
	m.mu.RLock()
	active := int64(len(m.campaigns))
	m.mu.RUnlock()
	return Metrics{
		Active:  active,
		Created: m.created.Load(),
		Quotes:  m.quotes.Load(),
		Replans: m.replans.Load(),
		Expired: m.expired.Load(),
	}
}
