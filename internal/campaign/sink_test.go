package campaign

import (
	"context"
	"sync"
	"testing"
	"time"

	"crowdpricing/internal/engine"
	"crowdpricing/internal/kinds"
	"crowdpricing/internal/wal"
)

// countingSink records the lifecycle event stream as scalar totals — just
// enough structure to compare a live stream against an offline fold.
type countingSink struct {
	mu       sync.Mutex
	created  map[string]int // key = kind + "/" or "" for adaptive
	observed int
	arrivals float64
	complete int
	quoted   int
	finished int
	expired  int
}

func newCountingSink() *countingSink {
	return &countingSink{created: make(map[string]int)}
}

func (s *countingSink) key(kind string, adaptive bool) string {
	if adaptive {
		return kind + "/adaptive"
	}
	return kind
}

func (s *countingSink) CampaignCreated(kind string, adaptive bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.created[s.key(kind, adaptive)]++
}

func (s *countingSink) CampaignObserved(kind string, adaptive bool, arrivals float64, completed, interval int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observed++
	s.arrivals += arrivals
	s.complete += completed
}

func (s *countingSink) CampaignQuoted(kind string, adaptive bool, price int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quoted++
}

func (s *countingSink) CampaignFinished(kind string, adaptive bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished++
}

func (s *countingSink) CampaignExpired(kind string, adaptive bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expired++
}

// TestSinkLiveStreamAndFoldAgree drives a full lifecycle — creates (one
// adaptive), observes, a quote, a finish, a TTL expiry — through a live
// sink and a WAL, then folds the log offline: every logged total must
// agree, and quotes (never logged) must fold to zero.
func TestSinkLiveStreamAndFoldAgree(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	ctx := context.Background()

	now := time.Unix(1_700_000_000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}

	mem := wal.NewMemFS()
	m := newWALManager(t, eng, Options{TTL: time.Minute, now: clock})
	wlog, err := m.OpenWAL("wal", wal.Options{FS: mem, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	m.AttachWAL(wlog)
	live := newCountingSink()
	m.AttachSink(live)

	var ids []string
	for i, seed := range []int64{1, 2, 3} {
		var adaptive *AdaptiveOptions
		if i == 0 {
			adaptive = &AdaptiveOptions{WindowIntervals: 2}
		}
		st, err := m.Create(ctx, kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, seed, "small"), adaptive)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if _, err := m.Observe(id, 4, []int{2}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Quote(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Finish(ids[0]); err != nil {
		t.Fatal(err)
	}
	clockMu.Lock()
	now = now.Add(2 * time.Minute)
	clockMu.Unlock()
	if n := m.ExpireIdle(); n != 2 {
		t.Fatalf("expired %d campaigns, want 2", n)
	}

	if live.created[kinds.KindDeadline+"/adaptive"] != 1 || live.created[kinds.KindDeadline] != 2 {
		t.Fatalf("live created = %v", live.created)
	}
	if live.observed != 3 || live.arrivals != 12 || live.complete != 6 {
		t.Fatalf("live observes = %d (arrivals %g, completed %d), want 3/12/6",
			live.observed, live.arrivals, live.complete)
	}
	if live.quoted != 1 || live.finished != 1 || live.expired != 2 {
		t.Fatalf("live quoted/finished/expired = %d/%d/%d, want 1/1/2",
			live.quoted, live.finished, live.expired)
	}

	// Detached sink: further mutations stream nowhere.
	m.AttachSink(nil)
	if _, err := m.Create(ctx, kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, 9, "small"), nil); err != nil {
		t.Fatal(err)
	}
	if got := live.created[kinds.KindDeadline]; got != 2 {
		t.Fatalf("detached sink still saw a create (count %d)", got)
	}

	if err := wlog.Sync(); err != nil {
		t.Fatal(err)
	}
	fold := newCountingSink()
	if err := FoldWAL(wal.NewReader(mem, "wal"), fold); err != nil {
		t.Fatalf("fold: %v", err)
	}
	// The fold sees one extra create (made after the live sink detached)
	// and zero quotes (never logged); every other total matches the live
	// stream exactly.
	if fold.created[kinds.KindDeadline] != 3 || fold.created[kinds.KindDeadline+"/adaptive"] != 1 {
		t.Fatalf("fold created = %v", fold.created)
	}
	if fold.observed != live.observed || fold.arrivals != live.arrivals || fold.complete != live.complete {
		t.Fatalf("fold observes = %d/%g/%d, live = %d/%g/%d",
			fold.observed, fold.arrivals, fold.complete, live.observed, live.arrivals, live.complete)
	}
	if fold.finished != 1 || fold.expired != 2 || fold.quoted != 0 {
		t.Fatalf("fold finished/expired/quoted = %d/%d/%d, want 1/2/0",
			fold.finished, fold.expired, fold.quoted)
	}
}

// TestFoldWALAcrossCompaction: after a compaction snapshot, per-interval
// history is gone — the fold must still produce exact arrival totals
// (spread uniformly across the recorded interval count) plus the trailing
// post-snapshot events verbatim.
func TestFoldWALAcrossCompaction(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	ctx := context.Background()

	mem := wal.NewMemFS()
	m := newWALManager(t, eng, Options{})
	wlog, err := m.OpenWAL("wal", wal.Options{FS: mem, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()
	m.AttachWAL(wlog)

	var ids []string
	for _, seed := range []int64{1, 2} {
		st, err := m.Create(ctx, kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, seed, "small"), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// Pre-compaction history: uneven arrivals summing to 9 on the
	// survivor, and a finished campaign whose records compaction drops.
	for _, arr := range []float64{2, 7} {
		if _, err := m.Observe(ids[0], arr, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Observe(ids[1], 5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Finish(ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if _, err := m.Observe(ids[0], 3, nil); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Sync(); err != nil {
		t.Fatal(err)
	}

	fold := newCountingSink()
	if err := FoldWAL(wal.NewReader(mem, "wal"), fold); err != nil {
		t.Fatalf("fold: %v", err)
	}
	// The finished campaign predates the snapshot: it folds to nothing.
	// The survivor folds to one create, its pre-compaction total spread
	// over 2 intervals (4.5 + 4.5), and the trailing observe verbatim.
	if fold.created[kinds.KindDeadline] != 1 || fold.finished != 0 {
		t.Fatalf("fold created=%v finished=%d, want 1 create and 0 finishes", fold.created, fold.finished)
	}
	if fold.observed != 3 || fold.arrivals != 12 {
		t.Fatalf("fold observes = %d (arrivals %g), want 3 totalling 12", fold.observed, fold.arrivals)
	}
}

// TestWALRecordName pins the inspection-tool names for every record type.
func TestWALRecordName(t *testing.T) {
	want := map[byte]string{
		WALRecordCreate:   "create",
		WALRecordObserve:  "observe",
		WALRecordFinish:   "finish",
		WALRecordExpire:   "expire",
		WALRecordSnapshot: "snapshot",
		200:               "unknown(200)",
	}
	for typ, name := range want {
		if got := WALRecordName(typ); got != name {
			t.Errorf("WALRecordName(%d) = %q, want %q", typ, got, name)
		}
	}
}
