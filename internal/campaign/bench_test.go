package campaign

import (
	"context"
	"sort"
	"testing"
	"time"

	"crowdpricing/internal/kinds"
	"crowdpricing/internal/telemetry"
)

// paperCampaign creates one paper-scale deadline campaign (N=200, 72
// intervals — the Section 5 experimental scale) and returns its ID.
func paperCampaign(tb testing.TB, m *Manager, adaptive *AdaptiveOptions) string {
	tb.Helper()
	st, err := m.Create(context.Background(), kinds.KindDeadline,
		sampleRequest(tb, kinds.KindDeadline, 1, "paper"), adaptive)
	if err != nil {
		tb.Fatal(err)
	}
	return st.ID
}

// BenchmarkQuotePaperScale is the acceptance bar for the hot path: an O(1)
// table lookup under the campaign mutex, target ≤ 50µs at paper scale
// (within ~10× of the engine's warm cache hit). Measured on the dev
// container: ~0.2µs/op.
func BenchmarkQuotePaperScale(b *testing.B) {
	m := newTestManager(b, Options{})
	id := paperCampaign(b, m, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Quote(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuoteAdaptivePaperScale quotes from a mid-flight adaptive
// campaign: the bank indirection must not change the hot path's complexity.
func BenchmarkQuoteAdaptivePaperScale(b *testing.B) {
	m := newTestManager(b, Options{})
	id := paperCampaign(b, m, &AdaptiveOptions{})
	for i := 0; i < 12; i++ {
		if _, err := m.Observe(id, float64(100+20*i), []int{1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Quote(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObservePaperScale covers the other hot-path half: the O(window)
// state update (window ≤ a few intervals, no solver work ever).
func BenchmarkObservePaperScale(b *testing.B) {
	m := newTestManager(b, Options{})
	id := paperCampaign(b, m, &AdaptiveOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Observe(id, 100, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestQuoteHotPathBound is the regression fence behind the benchmark: the
// median of 1000 paper-scale quotes must stay far under a millisecond —
// huge headroom over the observed ~0.2µs, so only a complexity-class
// regression (an O(N·T) scan creeping into the lookup) can trip it, not CI
// scheduler noise.
func TestQuoteHotPathBound(t *testing.T) {
	m := newTestManager(t, Options{})
	id := paperCampaign(t, m, nil)
	const samples = 1000
	lat := make([]time.Duration, samples)
	for i := range lat {
		begin := time.Now()
		if _, err := m.Quote(id); err != nil {
			t.Fatal(err)
		}
		lat[i] = time.Since(begin)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	median := lat[samples/2]
	t.Logf("paper-scale quote latency: p50 %v, p99 %v", median, lat[samples*99/100])
	if median > time.Millisecond {
		t.Fatalf("median quote latency %v; the O(1) hot path has regressed", median)
	}
}

// TestQuoteTracedAllocationBound fences the tracing tax on the quote hot
// path: a live trace may add at most one heap allocation per quote over
// the untraced baseline (span recording is two atomics and a clock read;
// the budget exists only as slack for compiler-version drift).
func TestQuoteTracedAllocationBound(t *testing.T) {
	m := newTestManager(t, Options{})
	id := paperCampaign(t, m, nil)
	tracer := telemetry.NewTracer(4, 1)
	tr := tracer.Start("/v1/campaigns/{id}/price")
	defer tracer.Finish(tr, 200)

	baseline := testing.AllocsPerRun(200, func() {
		if _, err := m.Quote(id); err != nil {
			t.Fatal(err)
		}
	})
	traced := testing.AllocsPerRun(200, func() {
		if _, err := m.QuoteTraced(tr, id); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("quote allocations: untraced %.1f, traced %.1f", baseline, traced)
	if traced > baseline+1 {
		t.Fatalf("tracing adds %.1f allocations per quote (untraced %.1f, traced %.1f); budget is 1",
			traced-baseline, baseline, traced)
	}
}
