package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"crowdpricing/internal/engine"
	"crowdpricing/internal/kinds"
	"crowdpricing/internal/wal"
)

// frozenClock is a fixed wall time shared by every manager in these tests:
// with the clock frozen, timestamps cannot distinguish a recovered manager
// from a never-crashed one, so state comparisons are exact.
var frozenClock = func() time.Time { return time.Unix(1_700_000_000, 0) }

// newWALManager builds a Manager over a shared engine (so re-solves across
// the many managers these tests spawn hit the policy cache).
func newWALManager(t testing.TB, eng *engine.Engine, opts Options) *Manager {
	t.Helper()
	if opts.now == nil {
		opts.now = frozenClock
	}
	if opts.TTL == 0 {
		opts.TTL = -1
	}
	m := NewManager(eng, nil, opts)
	t.Cleanup(m.Close)
	return m
}

// walOp is one scripted campaign mutation; every op emits exactly one log
// record, so event j of the log is op j of the script.
type walOp struct {
	op        string // create | observe | finish
	reqSeed   int64
	adaptive  *AdaptiveOptions
	idx       int // target campaign, in creation order
	arrivals  float64
	completed []int
}

// buildScript derives a deterministic workload from seed: three creates
// (one adaptive), observes across all three, a finish, then more observes
// on the survivors. All creates precede all observes, so every event
// prefix of the script is itself a valid history.
func buildScript(seed int64) []walOp {
	r := rand.New(rand.NewSource(seed))
	arr := []float64{0, 1.5, 2, 3.25, 5}
	ops := []walOp{
		{op: "create", reqSeed: r.Int63n(10), adaptive: &AdaptiveOptions{WindowIntervals: 2}},
		{op: "create", reqSeed: r.Int63n(10)},
		{op: "create", reqSeed: r.Int63n(10)},
	}
	for i := 0; i < 4; i++ {
		ops = append(ops, walOp{op: "observe", idx: r.Intn(3), arrivals: arr[r.Intn(len(arr))], completed: []int{r.Intn(2)}})
	}
	ops = append(ops, walOp{op: "finish", idx: 1})
	for i := 0; i < 3; i++ {
		ops = append(ops, walOp{op: "observe", idx: 2 * r.Intn(2), arrivals: arr[r.Intn(len(arr))], completed: []int{r.Intn(2)}})
	}
	return ops
}

// applyOp drives one scripted op against m, tracking created IDs in order.
func applyOp(t testing.TB, m *Manager, ids *[]string, op walOp) {
	t.Helper()
	switch op.op {
	case "create":
		st, err := m.Create(context.Background(), kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, op.reqSeed, "small"), op.adaptive)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		*ids = append(*ids, st.ID)
	case "observe":
		if _, err := m.Observe((*ids)[op.idx], op.arrivals, op.completed); err != nil {
			t.Fatalf("observe %d: %v", op.idx, err)
		}
	case "finish":
		if _, err := m.Finish((*ids)[op.idx]); err != nil {
			t.Fatalf("finish %d: %v", op.idx, err)
		}
	default:
		t.Fatalf("unknown op %q", op.op)
	}
}

// liveIDs lists the live campaign IDs in sorted order.
func liveIDs(t testing.TB, m *Manager) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		Campaigns []struct {
			ID string `json:"id"`
		} `json:"campaigns"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(file.Campaigns))
	for _, c := range file.Campaigns {
		ids = append(ids, c.ID)
	}
	return ids
}

// normalizedSnapshot renders m's snapshot with the fields that legitimately
// differ between a recovered manager and a reference run removed: the LSN
// high-water marks (only logged managers have them) and timestamps that are
// identical anyway under the frozen clock but not part of quote state.
func normalizedSnapshot(t testing.TB, m *Manager) string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	delete(file, "taken_at")
	if cs, ok := file["campaigns"].([]any); ok {
		for _, c := range cs {
			if cm, ok := c.(map[string]any); ok {
				delete(cm, "last_lsn")
				delete(cm, "last_touched_unix_nano")
			}
		}
	}
	out, err := json.Marshal(file)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// walSignature captures everything quote-visible about a manager: its full
// normalized state plus the exact prices it quotes while being driven
// through a fixed continuation. Two managers with equal signatures are
// bit-identical as pricing services.
type walSignature struct {
	Snapshot string
	Trace    []string
}

func signatureOf(t testing.TB, m *Manager) walSignature {
	t.Helper()
	sig := walSignature{Snapshot: normalizedSnapshot(t, m)}
	contArrivals := []float64{2.5, 4, 1}
	for _, id := range liveIDs(t, m) {
		for step := 0; step < len(contArrivals); step++ {
			q, err := m.Quote(id)
			if err != nil {
				t.Fatalf("quote %s: %v", id, err)
			}
			sig.Trace = append(sig.Trace, fmt.Sprintf("%s interval=%d price=%v prices=%v remaining=%v done=%v factor=%v",
				id, q.Interval, q.Price, q.Prices, q.Remaining, q.Done, q.ActiveFactor))
			if q.Done {
				break
			}
			completed := make([]int, len(q.Remaining))
			completed[0] = 1
			if _, err := m.Observe(id, contArrivals[step], completed); err != nil {
				t.Fatalf("observe %s: %v", id, err)
			}
		}
	}
	return sig
}

// TestCrashRecoveryEveryByte is the crash-recovery property test: run a
// seeded workload with the log spread over three segments, then kill the
// log at EVERY byte offset of the final segment. For each truncation point
// recovery must start (never refuse, never corrupt), replay exactly the
// events whose frames survived whole, and leave a manager whose quoted
// prices are bit-identical to a never-crashed run of that event prefix.
func TestCrashRecoveryEveryByte(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	ctx := context.Background()

	for _, seed := range []int64{1, 7, 23} {
		script := buildScript(seed)
		// Record the workload: Sync points seal segments (SegmentBytes: 1),
		// so the final segment holds only the post-finish observes and the
		// byte sweep below stays cheap while still crossing whole segments.
		master := wal.NewMemFS()
		m := newWALManager(t, eng, Options{})
		// SegmentBytes: 1 seals a segment per Sync; the huge CompactBytes
		// keeps auto-compaction from folding the sealed segments away (the
		// compaction path has its own test below).
		wlog, err := m.OpenWAL("wal", wal.Options{FS: master, SyncInterval: time.Hour, SegmentBytes: 1, CompactBytes: 1 << 40})
		if err != nil {
			t.Fatal(err)
		}
		m.AttachWAL(wlog)
		var ids []string
		for i, op := range script {
			applyOp(t, m, &ids, op)
			if i == 3 || i == 7 {
				if err := wlog.Sync(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := wlog.Close(); err != nil {
			t.Fatal(err)
		}

		// Map byte offsets of the final segment to intact-event counts.
		report, err := wal.Scan(master, "wal", nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(report.Segments) != 3 {
			t.Fatalf("seed %d: workload produced %d segments, want 3", seed, len(report.Segments))
		}
		finalSeg := report.Segments[2]
		priorEvents := int(report.Segments[0].Records + report.Segments[1].Records)
		var frameEnds []int64
		if _, err := wal.Scan(master, "wal", func(_ wal.Record, pos wal.FramePos) error {
			if pos.Segment == finalSeg.Seq {
				frameEnds = append(frameEnds, pos.End)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		finalName := "wal/" + finalSeg.Name
		full, ok := master.ReadFile(finalName)
		if !ok {
			t.Fatalf("seed %d: final segment missing", seed)
		}

		// Reference signatures per intact-event count, built on demand from
		// never-crashed replays of the script prefix.
		refs := map[int]walSignature{}
		reference := func(events int) walSignature {
			if sig, ok := refs[events]; ok {
				return sig
			}
			ref := newWALManager(t, eng, Options{})
			var refIDs []string
			for _, op := range script[:events] {
				applyOp(t, ref, &refIDs, op)
			}
			sig := signatureOf(t, ref)
			refs[events] = sig
			return sig
		}

		for cut := 0; cut <= len(full); cut++ {
			events := priorEvents
			for _, end := range frameEnds {
				if end <= int64(cut) {
					events++
				}
			}
			fs := master.Clone()
			fs.WriteFile(finalName, full[:cut])
			lg, err := wal.Open("wal", wal.Options{FS: fs, SyncInterval: time.Hour})
			if err != nil {
				t.Fatalf("seed %d cut %d: recovery refused to start: %v", seed, cut, err)
			}
			rec := newWALManager(t, eng, Options{})
			stats, err := rec.ReplayWAL(ctx, lg)
			if err != nil {
				t.Fatalf("seed %d cut %d: replay failed: %v", seed, cut, err)
			}
			if err := lg.Close(); err != nil {
				t.Fatalf("seed %d cut %d: close: %v", seed, cut, err)
			}
			if stats.Records != int64(events) {
				t.Fatalf("seed %d cut %d: replayed %d records, want the %d whole frames",
					seed, cut, stats.Records, events)
			}
			if got, want := signatureOf(t, rec), reference(events); !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d cut %d (%d events): recovered state diverged from the never-crashed run\n got: %+v\nwant: %+v",
					seed, cut, events, got, want)
			}
		}
	}
}

// TestSnapshotWALEquivalence restores the same history twice — once
// through the legacy JSON snapshot, once through WAL replay across a
// compaction boundary — and requires all three managers (original, both
// restores) to quote bit-identical price sequences.
func TestSnapshotWALEquivalence(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	ctx := context.Background()

	mem := wal.NewMemFS()
	w := newWALManager(t, eng, Options{})
	wlog, err := w.OpenWAL("wal", wal.Options{FS: mem, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()
	if stats, err := w.ReplayWAL(ctx, wlog); err != nil || stats.Records != 0 {
		t.Fatalf("empty-log replay: stats=%+v err=%v", stats, err)
	}
	w.AttachWAL(wlog)

	script := buildScript(99)
	var ids []string
	for i, op := range script {
		applyOp(t, w, &ids, op)
		if i == 5 {
			// Compact mid-history: everything after this point replays from
			// a snapshot record plus trailing events.
			if err := wlog.Compact(); err != nil {
				t.Fatalf("compact: %v", err)
			}
		}
	}
	if err := wlog.Sync(); err != nil {
		t.Fatal(err)
	}

	// Path 1: legacy JSON snapshot → Restore.
	var snap bytes.Buffer
	if err := w.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	viaSnapshot := newWALManager(t, eng, Options{})
	if err := viaSnapshot.Restore(ctx, bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}

	// Path 2: WAL replay (read-only, across the compaction boundary).
	viaWAL := newWALManager(t, eng, Options{})
	stats, err := viaWAL.ReplayWAL(ctx, wal.NewReader(mem, "wal"))
	if err != nil {
		t.Fatalf("wal replay: %v", err)
	}
	if stats.Snapshots != 1 {
		t.Fatalf("replay crossed %d snapshot records, want 1 (compaction did not land)", stats.Snapshots)
	}
	if got := wlog.Metrics().Compactions; got != 1 {
		t.Fatalf("log ran %d compactions, want 1", got)
	}

	sigW := signatureOf(t, w)
	sigS := signatureOf(t, viaSnapshot)
	sigR := signatureOf(t, viaWAL)
	if !reflect.DeepEqual(sigS, sigW) {
		t.Fatalf("snapshot restore diverged from the original\n got: %+v\nwant: %+v", sigS, sigW)
	}
	if !reflect.DeepEqual(sigR, sigW) {
		t.Fatalf("wal replay diverged from the original\n got: %+v\nwant: %+v", sigR, sigW)
	}
}

// TestExpireEventLogged pins the sweeper fix: TTL expiry must reach the
// log, or a crash after an expiry would resurrect the campaign at replay.
func TestExpireEventLogged(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	ctx := context.Background()

	now := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}

	mem := wal.NewMemFS()
	m := newWALManager(t, eng, Options{TTL: time.Minute, now: clock})
	wlog, err := m.OpenWAL("wal", wal.Options{FS: mem, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	m.AttachWAL(wlog)

	st1, err := m.Create(ctx, kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, 3, "small"), nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := m.Create(ctx, kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, 4, "small"), nil)
	if err != nil {
		t.Fatal(err)
	}
	advance(45 * time.Second)
	if _, err := m.Quote(st2.ID); err != nil { // touch: st2 survives
		t.Fatal(err)
	}
	advance(30 * time.Second)
	if n := m.ExpireIdle(); n != 1 {
		t.Fatalf("expired %d campaigns, want 1", n)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	// The expiry is in the log...
	var expired []string
	if err := wal.NewReader(mem, "wal").Replay(func(rec wal.Record) error {
		if rec.Type == WALRecordExpire {
			var ev walRefEvent
			if err := json.Unmarshal(rec.Data, &ev); err != nil {
				return err
			}
			expired = append(expired, ev.ID)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(expired) != 1 || expired[0] != st1.ID {
		t.Fatalf("expire records %v, want exactly [%s]", expired, st1.ID)
	}

	// ...so replay does not resurrect the expired campaign.
	re := newWALManager(t, eng, Options{TTL: time.Minute, now: clock})
	stats, err := re.ReplayWAL(ctx, wal.NewReader(mem, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 1 || stats.Campaigns != 1 {
		t.Fatalf("replay stats %+v, want Removed=1 Campaigns=1", stats)
	}
	if _, err := re.State(st1.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired campaign resurrected by replay: %v", err)
	}
	if _, err := re.State(st2.ID); err != nil {
		t.Fatalf("surviving campaign lost in replay: %v", err)
	}
}

// TestWALFailStopSurfacesOnMutations: once the log fail-stops, campaign
// writes must stop acknowledging — a mutation that can never be durable is
// an error, not a success.
func TestWALFailStopSurfacesOnMutations(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	ctx := context.Background()

	boom := errors.New("disk detached")
	fault := wal.NewFaultFS(wal.NewMemFS())
	m := newWALManager(t, eng, Options{})
	wlog, err := m.OpenWAL("wal", wal.Options{FS: fault, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog.Close()
	m.AttachWAL(wlog)

	st, err := m.Create(ctx, kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, 3, "small"), nil)
	if err != nil {
		t.Fatal(err)
	}
	fault.FailWritesAfter(0, boom)
	if err := wlog.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync = %v, want %v", err, boom)
	}
	if _, err := m.Observe(st.ID, 2, nil); !errors.Is(err, boom) {
		t.Fatalf("observe on a fail-stopped log = %v, want %v", err, boom)
	}
	if _, err := m.Create(ctx, kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, 5, "small"), nil); !errors.Is(err, boom) {
		t.Fatalf("create on a fail-stopped log = %v, want %v", err, boom)
	}
	// Reads stay up: quoting is deliberately not logged.
	if _, err := m.Quote(st.ID); err != nil {
		t.Fatalf("quote on a fail-stopped log: %v", err)
	}
}
