package campaign

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"crowdpricing/internal/engine"
	"crowdpricing/internal/telemetry"
)

// internTable is the policy-table memory engine: one refcounted entry per
// solve fingerprint, shared by every campaign (and every adaptive bank
// factor) over the same problem, so a thousand identical campaigns hold one
// decoded table instead of a thousand. Entries tier by resident bytes:
// when budget > 0 and decoded tables exceed it, the least-recently-quoted
// tables are dropped and lazily re-decoded from the engine's cached
// artifact bytes the next time they are needed, each re-decode deduped by
// the entry's own singleflight mutex.
//
// Lock order: an entry's decodeMu may be held while calling the engine and
// while taking t.mu; t.mu never waits on decodeMu or the engine. The quote
// hot path takes neither — a warm table is an atomic pointer load plus an
// atomic recency stamp.
type internTable struct {
	solve  func(ctx context.Context, spec engine.Spec) (*engine.Result, error)
	batch  func(ctx context.Context, spec engine.Spec) (*engine.Result, error)
	budget int64

	mu       sync.Mutex
	entries  map[string]*internedQuoter
	resident int64

	// clock is the recency counter: every touch stamps the entry with the
	// next tick, giving eviction an LRU order without hot-path locking.
	clock     atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	redecodes atomic.Int64
}

func newInternTable(budget int64,
	solve, batch func(ctx context.Context, spec engine.Spec) (*engine.Result, error)) *internTable {
	return &internTable{
		solve:   solve,
		batch:   batch,
		budget:  budget,
		entries: make(map[string]*internedQuoter),
	}
}

// quoterMeta is the part of a policy table's shape that must survive
// eviction: state reads (Horizon, Types) and campaign construction
// (InitialCounts) may not force a re-decode.
type quoterMeta struct {
	types   int
	horizon int
	counts  []int
}

// internedQuoter is one intern-table entry: a refcounted handle on the
// (possibly evicted) decoded table for one solve fingerprint. Handles are
// what campaigns hold in their banks; the table itself comes and goes under
// the byte budget.
type internedQuoter struct {
	t    *internTable
	key  string
	kind string
	// spec re-solves the artifact after eviction. The engine's byte cache
	// makes that a decode in the common case; a cold engine cache re-runs
	// the (deterministic) solver, so the table still comes back
	// bit-identical.
	spec engine.Spec

	// refs counts campaigns/bank slots holding this handle; guarded by
	// t.mu. At zero the entry leaves the table.
	refs int

	// tab is the decoded table, nil while evicted or never solved.
	tab atomic.Pointer[policyTable]
	// lastUse is the recency stamp eviction orders by.
	lastUse atomic.Int64
	// meta is the eviction-surviving shape, set at first decode (or
	// prefilled for lazy bank slots).
	meta atomic.Pointer[quoterMeta]

	// decodeMu serializes solve+decode so a thundering herd on a cold
	// entry costs one decode; decoded (guarded by it) distinguishes the
	// first decode from budget-evicted re-decodes.
	decodeMu sync.Mutex
	decoded  bool

	// fetching dedups async prefetches (Observe fires one when a re-plan
	// lands on a cold bank slot).
	fetching atomic.Bool
}

// acquire returns the (refcounted) handle for spec, creating a cold entry
// on first sight. Release every acquired handle exactly once.
func (t *internTable) acquire(kind string, spec engine.Spec) (*internedQuoter, error) {
	key, err := spec.Fingerprint()
	if err != nil {
		return nil, &engine.InvalidSpecError{Err: err}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.entries[key]; ok {
		h.refs++
		t.hits.Add(1)
		return h, nil
	}
	h := &internedQuoter{t: t, key: key, kind: kind, spec: spec, refs: 1}
	t.entries[key] = h
	t.misses.Add(1)
	return h, nil
}

// release drops one reference; the last release removes the entry (and its
// resident bytes) from the table. nil handles are ignored so error paths
// can release unconditionally.
func (t *internTable) release(h *internedQuoter) {
	if h == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h.refs--
	if h.refs > 0 {
		return
	}
	delete(t.entries, h.key)
	if tab := h.load(); tab != nil {
		t.resident -= tab.residentBytes()
	}
}

// releaseAll releases every non-nil handle in bank.
func (t *internTable) releaseAll(bank []*internedQuoter) {
	for _, h := range bank {
		t.release(h)
	}
}

// prefillMeta copies src's shape onto every handle in bank that has none
// yet. Lazy banks use it so unsolved factor slots can answer Horizon/Types
// without a solve — every factor of one bank shares the base problem's
// shape (scaling λ_t moves prices, not dimensions).
func (t *internTable) prefillMeta(bank []*internedQuoter, src *internedQuoter) {
	meta := src.meta.Load()
	if meta == nil {
		return
	}
	for _, h := range bank {
		h.meta.CompareAndSwap(nil, meta)
	}
}

// stats snapshots the intern gauges and counters.
type internStats struct {
	interned      int64
	residentBytes int64
	hits          int64
	misses        int64
	redecodes     int64
}

func (t *internTable) stats() internStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return internStats{
		interned:      int64(len(t.entries)),
		residentBytes: t.resident,
		hits:          t.hits.Load(),
		misses:        t.misses.Load(),
		redecodes:     t.redecodes.Load(),
	}
}

// install publishes a freshly decoded table, accounts its bytes, and
// enforces the budget. keep is never evicted in the same pass — installing
// a table only to drop it before its caller quotes would livelock.
func (t *internTable) install(h *internedQuoter, tab policyTable) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.entries[h.key] != h {
		// Released while decoding: publish nothing. The caller still quotes
		// from its returned table; the bytes are the caller's, not the
		// budget's, and go when it does.
		return
	}
	if old := h.load(); old != nil {
		t.resident -= old.residentBytes()
	}
	h.tab.Store(&tab)
	h.meta.CompareAndSwap(nil, &quoterMeta{
		types:   tab.Types(),
		horizon: tab.Horizon(),
		counts:  tab.InitialCounts(),
	})
	h.lastUse.Store(t.clock.Add(1))
	t.resident += tab.residentBytes()
	t.evictLocked(h)
}

// evictLocked drops least-recently-used decoded tables until resident
// bytes fit the budget (keep excluded). Ties break on the fingerprint so
// the victim choice never depends on map iteration order. A single table
// larger than the whole budget stays resident — evicting it would just
// thrash re-decodes. Callers hold t.mu.
func (t *internTable) evictLocked(keep *internedQuoter) {
	for t.budget > 0 && t.resident > t.budget {
		var victim *internedQuoter
		for _, h := range t.entries {
			if h == keep || h.load() == nil {
				continue
			}
			if victim == nil || h.lastUse.Load() < victim.lastUse.Load() ||
				(h.lastUse.Load() == victim.lastUse.Load() && h.key < victim.key) {
				victim = h
			}
		}
		if victim == nil {
			return
		}
		tab := victim.load()
		victim.tab.Store(nil)
		t.resident -= tab.residentBytes()
	}
}

// load returns the decoded table, or nil while evicted/unsolved.
func (h *internedQuoter) load() policyTable {
	if p := h.tab.Load(); p != nil {
		return *p
	}
	return nil
}

// touch stamps the handle's recency. Two atomics — no lock on the quote
// hot path.
func (h *internedQuoter) touch() {
	h.lastUse.Store(h.t.clock.Add(1))
}

// ensure returns the decoded table, solving and decoding it if evicted or
// never solved. The background flag routes the solve through the engine's
// background lane (bank pre-solves, prefetches); interactive callers keep
// queue priority. The returned cacheHit reports whether no fresh solver
// execution was waited on (warm table, or engine cache hit).
func (h *internedQuoter) ensure(ctx context.Context, background bool) (policyTable, bool, error) {
	if tab := h.load(); tab != nil {
		h.touch()
		return tab, true, nil
	}
	h.decodeMu.Lock()
	defer h.decodeMu.Unlock()
	if tab := h.load(); tab != nil {
		// Singleflight: another caller decoded while this one waited.
		h.touch()
		return tab, true, nil
	}
	solve := h.t.solve
	if background {
		solve = h.t.batch
	}
	res, err := solve(ctx, h.spec)
	if err != nil {
		return nil, false, err
	}
	// The engine recorded its own queue/solve spans through ctx; the
	// decode is this layer's contribution.
	tr := telemetry.FromContext(ctx)
	decodeStart := tr.Now()
	tab, err := decodeTable(h.kind, res.Value)
	tr.ObserveSince(telemetry.StageQuoterDecode, decodeStart)
	if err != nil {
		return nil, false, err
	}
	if h.decoded {
		h.t.redecodes.Add(1)
	} else {
		h.decoded = true
	}
	h.t.install(h, tab)
	return tab, res.CacheHit, nil
}

// prefetch solves the table on the background lane, deduping concurrent
// prefetches; errors are dropped — the quote path re-ensures with a real
// error surface if the table is still cold when needed.
func (h *internedQuoter) prefetch() {
	if !h.fetching.CompareAndSwap(false, true) {
		return
	}
	defer h.fetching.Store(false)
	_, _, _ = h.ensure(context.Background(), true)
}

// metaOrNil returns the eviction-surviving shape (nil before first decode
// on a handle with no prefilled meta — campaigns never reach that state,
// Create and rebuild always ensure the starting table first).
func (h *internedQuoter) metaOrNil() *quoterMeta {
	return h.meta.Load()
}

// Horizon reports the policy's interval count without forcing a decode.
func (h *internedQuoter) Horizon() int {
	if m := h.metaOrNil(); m != nil {
		return m.horizon
	}
	return 0
}

// Types reports the priced task-type count without forcing a decode.
func (h *internedQuoter) Types() int {
	if m := h.metaOrNil(); m != nil {
		return m.types
	}
	return 0
}

// InitialCounts returns a fresh copy of the starting remaining-task vector.
func (h *internedQuoter) InitialCounts() []int {
	if m := h.metaOrNil(); m != nil {
		return append([]int(nil), m.counts...)
	}
	return nil
}

// String identifies the handle in errors.
func (h *internedQuoter) String() string {
	return fmt.Sprintf("interned %s policy %s", h.kind, h.key)
}
