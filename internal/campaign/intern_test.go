package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"crowdpricing/internal/engine"
	"crowdpricing/internal/kinds"
	"crowdpricing/internal/wal"
)

// newInternManager builds a Manager over its own engine and returns both,
// so tests can assert on solver executions as well as intern state.
func newInternManager(t testing.TB, opts Options) (*Manager, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	if opts.now == nil {
		opts.now = func() time.Time { return time.Unix(1_700_000_000, 0) }
	}
	m := NewManager(eng, nil, opts)
	t.Cleanup(m.Close)
	return m, eng
}

// warmQuoteAllocs measures heap allocations of the warm quote computation —
// the table lookup into the campaign's reusable price buffer, everything
// under the campaign mutex short of the response envelope (which copies
// state out by design).
func warmQuoteAllocs(t *testing.T, m *Manager, id string) float64 {
	t.Helper()
	c, err := m.get(id)
	if err != nil {
		t.Fatal(err)
	}
	// One warm-up quote so quoteBuf reaches its final capacity.
	if _, err := m.Quote(id); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(200, func() {
		c.mu.Lock()
		tab := c.active().load()
		if tab == nil {
			c.mu.Unlock()
			t.Fatal("table not resident in a warm-quote fence")
		}
		c.active().touch()
		_ = c.quoteLocked(tab)
		c.mu.Unlock()
	})
}

// TestWarmQuoteAllocs is the satellite fence: a warm quote — deadline and
// multi, the single- and multi-type table layouts — performs zero heap
// allocations.
func TestWarmQuoteAllocs(t *testing.T) {
	m, _ := newInternManager(t, Options{})

	deadline, err := m.Create(context.Background(), kinds.KindDeadline,
		sampleRequest(t, kinds.KindDeadline, 3, "small"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := warmQuoteAllocs(t, m, deadline.ID); allocs != 0 {
		t.Errorf("warm deadline quote allocates %.1f objects/op, want 0", allocs)
	}

	multi, err := m.Create(context.Background(), kinds.KindMulti,
		sampleRequest(t, kinds.KindMulti, 3, "small"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := warmQuoteAllocs(t, m, multi.ID); allocs != 0 {
		t.Errorf("warm multi quote allocates %.1f objects/op, want 0", allocs)
	}
}

// TestConcurrentIdenticalAdaptiveCreatesShareBank: N concurrent identical
// adaptive creates must converge on ONE interned bank — one solver
// execution per factor, not N per factor — and every campaign's bank slots
// must be the same handles. Run under -race this also exercises the intern
// table's concurrency.
func TestConcurrentIdenticalAdaptiveCreatesShareBank(t *testing.T) {
	m, eng := newInternManager(t, Options{})
	req := sampleRequest(t, kinds.KindDeadline, 5, "small")
	adaptive := &AdaptiveOptions{WindowIntervals: 2}
	factors := len(defaultFactors())

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := m.Create(context.Background(), kinds.KindDeadline, req, adaptive)
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if solves := eng.Metrics().Solves; solves != int64(factors) {
		t.Errorf("%d campaigns cost %d solver executions, want one per factor (%d)", n, solves, factors)
	}
	is := m.intern.stats()
	if is.interned != int64(factors) {
		t.Errorf("%d distinct tables interned, want %d (one per factor)", is.interned, factors)
	}
	// Every campaign's bank must be the same slice of handles.
	first, err := m.get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[1:] {
		c, err := m.get(id)
		if err != nil {
			t.Fatal(err)
		}
		for slot, h := range c.bank {
			if h != first.bank[slot] {
				t.Fatalf("campaign %s bank slot %d holds a different handle than %s", id, slot, ids[0])
			}
		}
	}
	// Finishing all but one keeps the shared bank; finishing the last frees it.
	for _, id := range ids[:n-1] {
		if _, err := m.Finish(id); err != nil {
			t.Fatal(err)
		}
	}
	if is := m.intern.stats(); is.interned != int64(factors) {
		t.Errorf("surviving campaign lost its bank: %d interned, want %d", is.interned, factors)
	}
	if _, err := m.Finish(ids[n-1]); err != nil {
		t.Fatal(err)
	}
	if is := m.intern.stats(); is.interned != 0 || is.residentBytes != 0 {
		t.Errorf("after the last finish: %d interned, %d resident bytes, want 0/0", is.interned, is.residentBytes)
	}
}

// quoteAll returns one quote per campaign ID, in order.
func quoteAll(t *testing.T, m *Manager, ids []string) []*Quote {
	t.Helper()
	out := make([]*Quote, len(ids))
	for i, id := range ids {
		q, err := m.Quote(id)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = q
	}
	return out
}

// driftObserve drives interval observations with arrivals far above the
// trained profile so adaptive campaigns re-plan onto a neighboring factor.
func driftObserve(t *testing.T, m *Manager, id string, req json.RawMessage, intervals int) {
	t.Helper()
	var wire kinds.DeadlineRequest
	if err := json.Unmarshal(req, &wire); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < intervals; i++ {
		if _, err := m.Observe(id, 2*wire.Lambdas[i%len(wire.Lambdas)], []int{1}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestoreLandsOnInternedTables: campaigns rebuilt from a snapshot must
// dedup onto interned tables exactly like live creates — K identical
// adaptive campaigns restore to one bank — and quote bit-identical prices.
func TestRestoreLandsOnInternedTables(t *testing.T) {
	m, eng := newInternManager(t, Options{})
	req := sampleRequest(t, kinds.KindDeadline, 9, "small")
	adaptive := &AdaptiveOptions{WindowIntervals: 2}

	const k = 3
	ids := make([]string, k)
	for i := range ids {
		st, err := m.Create(context.Background(), kinds.KindDeadline, req, adaptive)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	driftObserve(t, m, ids[0], req, 3)
	before := quoteAll(t, m, ids)

	var snap bytes.Buffer
	if err := m.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh manager over the same engine (the usual restart:
	// warm artifact cache, empty campaign table).
	m2 := NewManager(eng, nil, Options{now: m.opts.now})
	t.Cleanup(m2.Close)
	if err := m2.Restore(context.Background(), &snap); err != nil {
		t.Fatal(err)
	}
	after := quoteAll(t, m2, ids)
	for i := range before {
		if before[i].Price != after[i].Price || before[i].Interval != after[i].Interval {
			t.Errorf("campaign %s: quote (%d @ %d) before restore, (%d @ %d) after",
				ids[i], before[i].Price, before[i].Interval, after[i].Price, after[i].Interval)
		}
	}
	if is := m2.intern.stats(); is.interned != int64(len(defaultFactors())) {
		t.Errorf("restored table interned %d quoters for %d identical banks, want %d",
			is.interned, k, len(defaultFactors()))
	}
}

// TestWALReplayLandsOnInternedTables: the same sharing property through the
// event-log path — replayed campaigns intern their tables and quote
// bit-identically.
func TestWALReplayLandsOnInternedTables(t *testing.T) {
	m, eng := newInternManager(t, Options{})
	mem := wal.NewMemFS()
	wlog, err := m.OpenWAL("wal", wal.Options{FS: mem, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	m.AttachWAL(wlog)

	req := sampleRequest(t, kinds.KindDeadline, 9, "small")
	adaptive := &AdaptiveOptions{WindowIntervals: 2}
	const k = 3
	ids := make([]string, k)
	for i := range ids {
		st, err := m.Create(context.Background(), kinds.KindDeadline, req, adaptive)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	driftObserve(t, m, ids[0], req, 3)
	before := quoteAll(t, m, ids)
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := NewManager(eng, nil, Options{now: m.opts.now})
	t.Cleanup(m2.Close)
	wlog2, err := m2.OpenWAL("wal", wal.Options{FS: mem, SyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wlog2.Close() })
	stats, err := m2.ReplayWAL(context.Background(), wlog2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Campaigns != k {
		t.Fatalf("replayed %d campaigns, want %d", stats.Campaigns, k)
	}
	after := quoteAll(t, m2, ids)
	for i := range before {
		if before[i].Price != after[i].Price || before[i].Interval != after[i].Interval {
			t.Errorf("campaign %s: quote (%d @ %d) before replay, (%d @ %d) after",
				ids[i], before[i].Price, before[i].Interval, after[i].Price, after[i].Interval)
		}
	}
	if is := m2.intern.stats(); is.interned != int64(len(defaultFactors())) {
		t.Errorf("replay interned %d quoters for %d identical banks, want %d",
			is.interned, k, len(defaultFactors()))
	}
}

// TestEvictionRedecodeRoundTrip: under a budget too small for two tables,
// alternating quotes across two campaigns must keep evicting and lazily
// re-decoding — and every quote must stay bit-identical to an unbudgeted
// manager's.
func TestEvictionRedecodeRoundTrip(t *testing.T) {
	free, _ := newInternManager(t, Options{})
	tight, _ := newInternManager(t, Options{QuoterMemoryBudget: 1})

	reqA := sampleRequest(t, kinds.KindDeadline, 21, "small")
	reqB := sampleRequest(t, kinds.KindDeadline, 22, "small")
	var freeIDs, tightIDs []string
	for _, req := range []json.RawMessage{reqA, reqB} {
		stF, err := free.Create(context.Background(), kinds.KindDeadline, req, nil)
		if err != nil {
			t.Fatal(err)
		}
		freeIDs = append(freeIDs, stF.ID)
		stT, err := tight.Create(context.Background(), kinds.KindDeadline, req, nil)
		if err != nil {
			t.Fatal(err)
		}
		tightIDs = append(tightIDs, stT.ID)
	}

	// A one-byte budget keeps at most the single most-recent table resident
	// (a lone over-budget table is never evicted), so alternating campaigns
	// forces an eviction + re-decode per switch.
	for round := 0; round < 4; round++ {
		for i := range tightIDs {
			qT, err := tight.Quote(tightIDs[i])
			if err != nil {
				t.Fatal(err)
			}
			qF, err := free.Quote(freeIDs[i])
			if err != nil {
				t.Fatal(err)
			}
			if qT.Price != qF.Price {
				t.Fatalf("round %d campaign %d: budgeted quote %d, unbudgeted %d", round, i, qT.Price, qF.Price)
			}
			if _, err := tight.Observe(tightIDs[i], 10, []int{1}); err != nil {
				t.Fatal(err)
			}
			if _, err := free.Observe(freeIDs[i], 10, []int{1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	is := tight.intern.stats()
	if is.redecodes == 0 {
		t.Error("no re-decodes under a one-byte budget; eviction never happened")
	}
	if fis := free.intern.stats(); fis.redecodes != 0 {
		t.Errorf("unbudgeted manager re-decoded %d times", fis.redecodes)
	}
}

// TestInternedBankMemoryBound is the acceptance fence: 1,000 identical
// adaptive campaigns must hold resident quoter bytes within 2× of ONE
// campaign's footprint — O(distinct problems), not O(campaigns).
func TestInternedBankMemoryBound(t *testing.T) {
	m, _ := newInternManager(t, Options{})
	req := sampleRequest(t, kinds.KindDeadline, 4, "small")
	adaptive := &AdaptiveOptions{WindowIntervals: 2}

	if _, err := m.Create(context.Background(), kinds.KindDeadline, req, adaptive); err != nil {
		t.Fatal(err)
	}
	one := m.intern.stats().residentBytes
	if one <= 0 {
		t.Fatalf("one campaign holds %d resident bytes", one)
	}
	for i := 1; i < 1000; i++ {
		if _, err := m.Create(context.Background(), kinds.KindDeadline, req, adaptive); err != nil {
			t.Fatal(err)
		}
	}
	all := m.intern.stats().residentBytes
	t.Logf("resident quoter bytes: 1 campaign %d, 1000 campaigns %d", one, all)
	if all > 2*one {
		t.Fatalf("1000 identical adaptive campaigns hold %d resident bytes, over 2× one campaign's %d", all, one)
	}
}

// TestLazyBankSolvesOnDemand: under Options.LazyBank a create solves ONE
// factor; the estimate's drift to a neighbor triggers that factor's solve
// (async prefetch or quote-path ensure), and the price matches an eagerly
// built bank's bit for bit.
func TestLazyBankSolvesOnDemand(t *testing.T) {
	lazy, lazyEng := newInternManager(t, Options{LazyBank: true})
	eager, _ := newInternManager(t, Options{})
	req := sampleRequest(t, kinds.KindDeadline, 11, "small")
	adaptive := &AdaptiveOptions{WindowIntervals: 3}

	stL, err := lazy.Create(context.Background(), kinds.KindDeadline, req, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if solves := lazyEng.Metrics().Solves; solves != 1 {
		t.Errorf("lazy create cost %d solves, want 1 (the starting factor)", solves)
	}
	stE, err := eager.Create(context.Background(), kinds.KindDeadline, req, adaptive)
	if err != nil {
		t.Fatal(err)
	}

	// Unsolved slots still answer shape queries from the prefilled meta.
	if qL, qE := quoteAll(t, lazy, []string{stL.ID})[0], quoteAll(t, eager, []string{stE.ID})[0]; qL.Price != qE.Price {
		t.Fatalf("pre-drift lazy quote %d, eager %d", qL.Price, qE.Price)
	}

	// Drive the estimate off the starting factor; the quote path must land
	// on the neighbor's freshly solved table either via the Observe-time
	// prefetch or its own ensure.
	driftObserve(t, lazy, stL.ID, req, 3)
	driftObserve(t, eager, stE.ID, req, 3)
	qL, err := lazy.Quote(stL.ID)
	if err != nil {
		t.Fatal(err)
	}
	qE, err := eager.Quote(stE.ID)
	if err != nil {
		t.Fatal(err)
	}
	if qL.ActiveFactor == 1.0 {
		t.Fatal("drift did not move the lazy campaign off the starting factor")
	}
	if qL.Price != qE.Price || qL.ActiveFactor != qE.ActiveFactor {
		t.Fatalf("post-drift lazy quote (%d @ factor %v), eager (%d @ factor %v)",
			qL.Price, qL.ActiveFactor, qE.Price, qE.ActiveFactor)
	}
	// Lazily solved factors stay a strict subset of the full bank.
	if lazySolves, grid := lazyEng.Metrics().Solves, int64(len(defaultFactors())); lazySolves >= grid {
		t.Errorf("lazy bank solved %d factors, want fewer than the full %d-factor grid", lazySolves, grid)
	}
}
