// Package campaign is the online runtime of the pricing service: where
// internal/core solves a policy and internal/sim replays one offline, a
// campaign executes a solved policy against the real world, interval by
// interval, the way GaoP14 intends the system to be used — a requester
// posts a batch, observes worker arrivals, and quotes the price the DP
// dictates for the *current* state.
//
// The design keeps the transactional hot path separate from analytical
// re-planning (the HTAP split PAPERS.md's Polynesia argues for): Observe
// and Quote are O(1) updates and table lookups under a per-campaign mutex,
// while every expensive solve — the initial policy and the adaptive bank's
// per-factor policies — runs through internal/engine's admission-controlled
// scheduler before the campaign goes live. Decoded policy tables live in a
// fingerprint-keyed intern table (intern.go): identical campaigns share
// one compact table, and under a byte budget cold tables are dropped and
// lazily re-decoded from the engine's cached artifact bytes — the one case
// where a quote may wait on a solve, and it does so outside the campaign's
// mutex.
//
// A Manager owns the campaign table: create/observe/quote/finish lifecycle,
// TTL expiry of abandoned campaigns, Prometheus-style counters, and JSON
// snapshot/restore so a daemon restart does not drop live campaigns (the
// snapshot stores each campaign's original request plus its dynamic state;
// restore re-solves through the engine — deterministic, so restored
// campaigns quote bit-identical prices).
//
// Adaptive mode implements the Section 5.2.5 controller from
// internal/sim/adaptive.go as an online service: the bank of per-factor
// policies (base λ_t scaled by each factor) is pre-solved at creation, the
// arrival-rate scale is re-estimated from a trailing window on every
// Observe, and the campaign switches to the nearest factor's policy — a
// quantized re-plan with zero solver work at decision time.
package campaign

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Campaign lifecycle errors, mapped to HTTP statuses by internal/server.
var (
	// ErrNotFound marks an unknown (or already finished / expired)
	// campaign ID.
	ErrNotFound = errors.New("campaign: not found")
	// ErrUnsupportedKind marks a problem kind with no sequential price
	// table (budget strategies are static up-front allocations).
	ErrUnsupportedKind = errors.New("campaign: kind not supported")
	// ErrAdaptiveUnsupported marks an adaptive request for a kind other
	// than deadline — the §5.2.5 controller re-scales per-interval arrival
	// rates, which only the deadline MDP has.
	ErrAdaptiveUnsupported = errors.New("campaign: adaptive mode requires a deadline campaign")
	// ErrTableFull marks the campaign table at capacity; finish or expire
	// campaigns before creating more.
	ErrTableFull = errors.New("campaign: table is full")
	// ErrBadInput marks malformed observe inputs (negative counts,
	// non-finite arrivals, wrong type arity) — the requester's fault.
	ErrBadInput = errors.New("campaign: bad input")
)

// AdaptiveOptions enables §5.2.5 adaptive re-planning for a deadline
// campaign. The zero value of each field picks the sim package's defaults.
type AdaptiveOptions struct {
	// Factors is the grid of arrival-rate scale factors to pre-solve,
	// sorted ascending (default 0.5, 0.6, …, 1.5).
	Factors []float64 `json:"factors,omitempty"`
	// WindowIntervals is the trailing-window length of the scale estimate,
	// in DP intervals (default 9 — three hours at 20-minute intervals).
	WindowIntervals int `json:"window_intervals,omitempty"`
}

// defaultFactors mirrors sim.DefaultAdaptiveConfig — −50%…+50% deviations
// in 10% steps — but derives each factor from integers so the grid contains
// exactly 1.0 (an accumulated 0.5+k·0.1 loop lands on 0.9999…, which would
// leak into fingerprints and wire states).
func defaultFactors() []float64 {
	fs := make([]float64, 0, 11)
	for i := 5; i <= 15; i++ {
		fs = append(fs, float64(i)/10)
	}
	return fs
}

// DefaultWindowIntervals is the default trailing-window length.
const DefaultWindowIntervals = 9

func (o *AdaptiveOptions) normalized() (AdaptiveOptions, error) {
	out := AdaptiveOptions{Factors: o.Factors, WindowIntervals: o.WindowIntervals}
	if len(out.Factors) == 0 {
		out.Factors = defaultFactors()
	}
	if out.WindowIntervals == 0 {
		out.WindowIntervals = DefaultWindowIntervals
	}
	if out.WindowIntervals < 1 {
		return out, fmt.Errorf("campaign: adaptive window must cover at least one interval, got %d", out.WindowIntervals)
	}
	for i, f := range out.Factors {
		if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
			return out, fmt.Errorf("campaign: adaptive factor %v is not a positive finite number", f)
		}
		if i > 0 && out.Factors[i] <= out.Factors[i-1] {
			return out, errors.New("campaign: adaptive factors must be sorted strictly ascending")
		}
	}
	return out, nil
}

// campaign is one live campaign. The Manager's table maps IDs to campaigns;
// all dynamic state is guarded by mu, so concurrent Observe/Quote on the
// same campaign serialize while campaigns stay independent of each other.
type campaign struct {
	id   string
	kind string
	// request is the original wire body, kept verbatim for snapshots.
	request []byte
	// fingerprint identifies the base solved artifact.
	fingerprint string

	// static policy path: bank has exactly one interned handle and factors
	// is nil. adaptive path: bank[i] is the handle for factors[i],
	// baseLambdas the unscaled per-interval expectations, window the
	// estimate length. Handles are refcounted by the manager's intern
	// table; the decoded tables behind them may be shared across campaigns
	// and evicted/re-decoded under the byte budget.
	bank        []*internedQuoter
	factors     []float64
	window      int
	baseLambdas []float64

	mu        sync.Mutex
	remaining []int
	interval  int
	// quoteBuf is the reusable price-vector scratch quoteLocked appends
	// into, so a warm quote allocates nothing.
	quoteBuf []int
	// observed is the trailing window of per-interval arrivals (adaptive
	// campaigns only, at most window entries — the estimator never reads
	// further back, and an unbounded history would grow daemon memory and
	// snapshots linearly with campaign age); observedTotal is the running
	// sum across the whole campaign.
	observed      []float64
	observedTotal float64
	activeIdx     int
	factor        float64 // last scale estimate (1 until the first observe)
	quotes        int64
	replans       int64
	created       time.Time
	lastTouched   time.Time
	// lastLSN is the event-log sequence number of the campaign's latest
	// logged mutation; WAL snapshot records carry it so replay can skip
	// events already folded into the snapshot (see ReplayWAL).
	lastLSN uint64
}

// active returns the interned handle the campaign currently follows.
// Callers hold mu.
func (c *campaign) active() *internedQuoter { return c.bank[c.activeIdx] }

// adaptive reports whether the campaign re-plans from a factor bank.
func (c *campaign) adaptive() bool { return len(c.factors) > 0 }

// observeLocked advances the campaign one interval: subtract completions,
// record the interval's observed arrivals, and (adaptive mode) re-estimate
// the rate scale over the trailing window and switch to the nearest
// factor's pre-solved policy. Callers hold mu.
func (c *campaign) observeLocked(arrivals float64, completed []int) error {
	if arrivals < 0 || math.IsNaN(arrivals) || math.IsInf(arrivals, 0) {
		return fmt.Errorf("%w: invalid observed arrivals %v", ErrBadInput, arrivals)
	}
	if len(completed) != 0 && len(completed) != len(c.remaining) {
		return fmt.Errorf("%w: %d completion counts for %d task types", ErrBadInput, len(completed), len(c.remaining))
	}
	// Validate the whole vector before mutating anything: a rejected
	// observe must leave the campaign exactly as it was, or a client that
	// fixes its request and retries would double-apply the valid entries.
	for i, done := range completed {
		if done < 0 {
			return fmt.Errorf("%w: negative completion count %d for type %d", ErrBadInput, done, i)
		}
	}
	for i, done := range completed {
		c.remaining[i] -= done
		if c.remaining[i] < 0 {
			c.remaining[i] = 0
		}
	}
	c.observedTotal += arrivals
	c.interval++
	if c.adaptive() {
		c.observed = append(c.observed, arrivals)
		if len(c.observed) > c.window {
			c.observed = c.observed[len(c.observed)-c.window:]
		}
		c.replanLocked()
	}
	return nil
}

// replanLocked recomputes the scale estimate exactly as
// sim.RunAdaptiveDeadline does — observed over expected arrivals across the
// trailing window — and follows the nearest factor's policy. Intervals past
// the policy horizon have no trained expectation, so they contribute to
// neither sum; once the whole window is past the horizon the estimate
// freezes (the sim controller never runs past the horizon at all). Callers
// hold mu.
func (c *campaign) replanLocked() {
	var obs, expct float64
	for i, a := range c.observed {
		// The window's entries cover intervals [interval−len, interval).
		k := c.interval - len(c.observed) + i
		if k < 0 || k >= len(c.baseLambdas) {
			continue
		}
		obs += a
		expct += c.baseLambdas[k]
	}
	if expct <= 0 {
		return // no expectation to compare against; keep the current policy
	}
	c.factor = obs / expct
	if best := nearestIndex(c.factors, c.factor); best != c.activeIdx {
		c.activeIdx = best
		c.replans++
	}
}

// quoteLocked is the hot path: one table lookup in the active policy,
// appended into the campaign's reusable scratch so a warm quote performs
// zero heap allocations. tab is the active handle's decoded table, loaded
// by the caller (Manager.Quote resolves evictions outside this lock).
// Callers hold mu.
func (c *campaign) quoteLocked(tab Quoter) []int {
	c.quotes++
	c.quoteBuf = tab.AppendQuote(c.quoteBuf[:0], c.remaining, c.interval)
	return c.quoteBuf
}

// done reports whether every task type is complete. Callers hold mu.
func (c *campaign) doneLocked() bool {
	for _, n := range c.remaining {
		if n > 0 {
			return false
		}
	}
	return true
}

// stateLocked renders the wire-facing state. Callers hold mu.
func (c *campaign) stateLocked() *State {
	st := &State{
		ID:          c.id,
		Kind:        c.kind,
		Fingerprint: c.fingerprint,
		Interval:    c.interval,
		Horizon:     c.active().Horizon(),
		Remaining:   append([]int(nil), c.remaining...),
		Done:        c.doneLocked(),
		Adaptive:    c.adaptive(),
		Quotes:      c.quotes,
		Replans:     c.replans,
	}
	if c.adaptive() {
		st.Factor = c.factor
		st.ActiveFactor = c.factors[c.activeIdx]
	}
	return st
}

// State is a campaign's wire-facing view, returned by create, observe, and
// state reads.
type State struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
	// SolveCacheHit reports whether the initial policy came from the
	// engine's warm cache (create responses only).
	SolveCacheHit bool `json:"solve_cache_hit,omitempty"`
	// Interval is the number of intervals observed so far — the t the next
	// quote prices at.
	Interval int `json:"interval"`
	// Horizon is the policy's interval count (0 = stationary, no horizon).
	Horizon int `json:"horizon"`
	// Remaining is the outstanding task count per type (length 1 except
	// for multi campaigns).
	Remaining []int `json:"remaining"`
	// Done reports whether every task is complete.
	Done bool `json:"done"`
	// Adaptive reports whether the campaign re-plans from a factor bank;
	// Factor is the latest trailing-window scale estimate and ActiveFactor
	// the bank factor currently followed.
	Adaptive     bool    `json:"adaptive"`
	Factor       float64 `json:"factor,omitempty"`
	ActiveFactor float64 `json:"active_factor,omitempty"`
	Quotes       int64   `json:"quotes"`
	Replans      int64   `json:"replans"`
}

// Quote is one priced lookup: the price vector the solved policy dictates
// for the campaign's current state.
type Quote struct {
	ID string `json:"id"`
	// Price is the single price for one-type campaigns — Prices[0], kept
	// first-class because it is the common case.
	Price int `json:"price"`
	// Prices is the full per-type price vector.
	Prices []int `json:"prices"`
	// Interval and Remaining echo the state the quote priced.
	Interval  int   `json:"interval"`
	Remaining []int `json:"remaining"`
	// Done reports whether every task is already complete (the quote is
	// then the policy's idle price — MinPrice for deadline campaigns).
	Done bool `json:"done"`
	// ActiveFactor is the bank factor behind this quote (adaptive only).
	ActiveFactor float64 `json:"active_factor,omitempty"`
}

// Summary is the terminal accounting returned by Finish.
type Summary struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Intervals int    `json:"intervals"`
	Remaining []int  `json:"remaining"`
	Done      bool   `json:"done"`
	Quotes    int64  `json:"quotes"`
	Replans   int64  `json:"replans"`
	// ObservedArrivals is the sum of observed arrivals across intervals.
	ObservedArrivals float64 `json:"observed_arrivals"`
}
