package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// SnapshotSchemaVersion identifies the snapshot layout; Restore refuses
// mismatched files rather than guessing at field semantics.
const SnapshotSchemaVersion = 1

// snapshotFile is the on-disk form of the whole campaign table.
type snapshotFile struct {
	SchemaVersion int                `json:"schema_version"`
	TakenAt       string             `json:"taken_at,omitempty"`
	NextSeq       int64              `json:"next_seq"`
	Campaigns     []campaignSnapshot `json:"campaigns"`
}

// campaignSnapshot stores one campaign as (original request, dynamic
// state). Policies are deliberately NOT stored: restore re-solves the
// request through the engine, which is deterministic — the restored
// campaign quotes bit-identical prices — and keeps snapshots small (a
// paper-scale policy table is ~250 KB; its request is ~1 KB).
type campaignSnapshot struct {
	ID       string           `json:"id"`
	Kind     string           `json:"kind"`
	Request  json.RawMessage  `json:"request"`
	Adaptive *AdaptiveOptions `json:"adaptive,omitempty"`

	Remaining []int `json:"remaining"`
	Interval  int   `json:"interval"`
	// Observed is the trailing window of per-interval arrivals (adaptive
	// campaigns only, at most the adaptive window length — all the
	// estimator ever reads); ObservedTotal is the running sum across the
	// whole campaign.
	Observed        []float64 `json:"observed,omitempty"`
	ObservedTotal   float64   `json:"observed_arrivals_total"`
	ActiveIdx       int       `json:"active_factor_index"`
	Factor          float64   `json:"factor"`
	Quotes          int64     `json:"quotes"`
	Replans         int64     `json:"replans"`
	CreatedUnixNano int64     `json:"created_unix_nano"`
	TouchedUnixNano int64     `json:"last_touched_unix_nano"`
	// LastLSN is the event-log high-water mark folded into this entry
	// (WAL compaction snapshots only; omitted from legacy file snapshots).
	// ReplayWAL skips events at or below it.
	LastLSN uint64 `json:"last_lsn,omitempty"`
}

// Snapshot writes the live-campaign table as JSON: each campaign's original
// request plus its dynamic state. Safe to call while campaigns are being
// observed and quoted — each campaign is serialized under its own lock.
func (m *Manager) Snapshot(w io.Writer) error {
	m.mu.RLock()
	live := make([]*campaign, 0, len(m.campaigns))
	for _, c := range m.campaigns {
		live = append(live, c)
	}
	seq := m.seq.Load()
	m.mu.RUnlock()
	// The campaign table is a map; sort by ID so identical state snapshots
	// to identical bytes (the files are diffed and fingerprinted).
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })

	file := snapshotFile{
		SchemaVersion: SnapshotSchemaVersion,
		TakenAt:       m.opts.now().UTC().Format(time.RFC3339),
		NextSeq:       seq,
		Campaigns:     make([]campaignSnapshot, 0, len(live)),
	}
	for _, c := range live {
		c.mu.Lock()
		cs := campaignSnapshot{
			ID:              c.id,
			Kind:            c.kind,
			Request:         append(json.RawMessage(nil), c.request...),
			Remaining:       append([]int(nil), c.remaining...),
			Interval:        c.interval,
			Observed:        append([]float64(nil), c.observed...),
			ObservedTotal:   c.observedTotal,
			ActiveIdx:       c.activeIdx,
			Factor:          c.factor,
			Quotes:          c.quotes,
			Replans:         c.replans,
			CreatedUnixNano: c.created.UnixNano(),
			TouchedUnixNano: c.lastTouched.UnixNano(),
			LastLSN:         c.lastLSN,
		}
		if c.adaptive() {
			cs.Adaptive = &AdaptiveOptions{
				Factors:         append([]float64(nil), c.factors...),
				WindowIntervals: c.window,
			}
		}
		c.mu.Unlock()
		file.Campaigns = append(file.Campaigns, cs)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// Restore rebuilds campaigns from a Snapshot: every policy (and adaptive
// bank) is re-solved through the engine — identical requests dedup onto one
// solve and the engine cache makes repeats cheap — then the dynamic state
// is replayed on top. Restore is all-or-nothing: any unsolvable or
// malformed entry aborts with no campaigns inserted, so a daemon never
// boots with half a table. Campaign IDs are preserved; the ID sequence
// resumes past the snapshot's so new campaigns never collide.
func (m *Manager) Restore(ctx context.Context, r io.Reader) error {
	var file snapshotFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return fmt.Errorf("campaign: bad snapshot: %w", err)
	}
	if file.SchemaVersion != SnapshotSchemaVersion {
		return fmt.Errorf("campaign: snapshot schema version %d, this binary expects %d",
			file.SchemaVersion, SnapshotSchemaVersion)
	}

	now := m.opts.now()
	restored := make([]*campaign, 0, len(file.Campaigns))
	// All-or-nothing: an abort after some campaigns were rebuilt must return
	// their intern references, or the abandoned banks would pin decoded
	// tables forever.
	committed := false
	defer func() {
		if !committed {
			for _, c := range restored {
				m.releaseCampaign(c)
			}
		}
	}()
	seen := make(map[string]bool, len(file.Campaigns))
	for _, cs := range file.Campaigns {
		if seen[cs.ID] {
			return fmt.Errorf("campaign: snapshot contains ID %q twice", cs.ID)
		}
		seen[cs.ID] = true
		c, err := m.rebuild(ctx, cs, now)
		if err != nil {
			return fmt.Errorf("campaign: restoring %q: %w", cs.ID, err)
		}
		restored = append(restored, c)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.campaigns)+len(restored) > m.opts.MaxCampaigns {
		return fmt.Errorf("%w: %d restored + %d live exceeds the %d-campaign limit",
			ErrTableFull, len(restored), len(m.campaigns), m.opts.MaxCampaigns)
	}
	for _, c := range restored {
		if _, dup := m.campaigns[c.id]; dup {
			return fmt.Errorf("campaign: snapshot ID %q collides with a live campaign", c.id)
		}
	}
	for _, c := range restored {
		m.campaigns[c.id] = c
	}
	// Resume the ID sequence past the snapshot's high-water mark so new
	// campaigns never reuse a restored ID.
	for cur := m.seq.Load(); cur < file.NextSeq; cur = m.seq.Load() {
		if m.seq.CompareAndSwap(cur, file.NextSeq) {
			break
		}
	}
	m.created.Add(int64(len(restored)))
	committed = true
	return nil
}

// rebuild re-solves one snapshot entry and replays its dynamic state.
func (m *Manager) rebuild(ctx context.Context, cs campaignSnapshot, now time.Time) (*campaign, error) {
	if cs.ID == "" {
		return nil, fmt.Errorf("missing id")
	}
	spec, err := m.decodeSpec(cs.Kind, cs.Request)
	if err != nil {
		return nil, err
	}
	h, _, err := m.acquireQuoter(ctx, cs.Kind, spec)
	if err != nil {
		return nil, err
	}
	c := &campaign{
		id:          cs.ID,
		kind:        cs.Kind,
		request:     append([]byte(nil), cs.Request...),
		fingerprint: h.key,
		bank:        []*internedQuoter{h},
		remaining:   h.InitialCounts(),
		quoteBuf:    make([]int, 0, h.Types()),
		factor:      1,
	}
	ok := false
	defer func() {
		if !ok {
			m.releaseCampaign(c)
		}
	}()
	if cs.Adaptive != nil {
		if err := m.buildBank(ctx, c, spec, cs.Adaptive); err != nil {
			return nil, err
		}
		// The bank's slots hold their own references now; the base handle's
		// goes back (a factor-1.0 slot deduped onto the same entry).
		m.intern.release(h)
	}

	// Replay the dynamic state, validating shape against the fresh policy
	// rather than trusting the file.
	if len(cs.Remaining) != len(c.remaining) {
		return nil, fmt.Errorf("%d remaining counts for %d task types", len(cs.Remaining), len(c.remaining))
	}
	for i, n := range cs.Remaining {
		if n < 0 || n > c.remaining[i] {
			return nil, fmt.Errorf("remaining[%d]=%d outside [0, %d]", i, n, c.remaining[i])
		}
	}
	if cs.Interval < 0 || len(cs.Observed) > cs.Interval {
		return nil, fmt.Errorf("%d observed-window entries recorded for interval %d", len(cs.Observed), cs.Interval)
	}
	if cs.ObservedTotal < 0 || cs.ObservedTotal != cs.ObservedTotal {
		return nil, fmt.Errorf("invalid observed arrivals total %v", cs.ObservedTotal)
	}
	c.remaining = append([]int(nil), cs.Remaining...)
	c.interval = cs.Interval
	c.observed = append([]float64(nil), cs.Observed...)
	c.observedTotal = cs.ObservedTotal
	c.factor = cs.Factor
	if c.adaptive() {
		if cs.ActiveIdx < 0 || cs.ActiveIdx >= len(c.bank) {
			return nil, fmt.Errorf("active factor index %d outside the %d-policy bank", cs.ActiveIdx, len(c.bank))
		}
		if len(cs.Observed) > c.window {
			return nil, fmt.Errorf("observed window has %d entries, adaptive window is %d", len(cs.Observed), c.window)
		}
		c.activeIdx = cs.ActiveIdx
	}
	c.quotes = cs.Quotes
	c.replans = cs.Replans
	c.lastLSN = cs.LastLSN
	c.created = time.Unix(0, cs.CreatedUnixNano)
	// The restored campaign is touched now: surviving a restart should not
	// count as idleness against the TTL.
	c.lastTouched = now
	ok = true
	return c, nil
}
