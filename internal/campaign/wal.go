package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"crowdpricing/internal/telemetry"
	"crowdpricing/internal/wal"
)

// WAL record types: the campaign event schema layered on internal/wal's
// opaque (type, payload) records. Payloads are JSON (the wire format the
// requests already use); the expensive artifacts — solved policies — are
// deliberately NOT logged. A campaign's dynamic state is a pure fold over
// its create/observe events, and the engine re-solves policies
// deterministically, so replay rebuilds bit-identical quote state from
// requests alone and the log stays small.
const (
	// WALRecordCreate registers a campaign (walCreateEvent payload).
	WALRecordCreate byte = 1
	// WALRecordObserve advances one interval (walObserveEvent payload).
	WALRecordObserve byte = 2
	// WALRecordFinish removes a finished campaign (walRefEvent payload).
	WALRecordFinish byte = 3
	// WALRecordExpire removes a TTL-expired campaign (walRefEvent
	// payload) — logged so a replay cannot resurrect it.
	WALRecordExpire byte = 4
	// WALRecordSnapshot is a compaction snapshot: the whole table in the
	// Snapshot JSON schema, with per-campaign LSN high-water marks.
	WALRecordSnapshot byte = 5
)

// WALRecordName renders a record type for inspection tools.
func WALRecordName(t byte) string {
	switch t {
	case WALRecordCreate:
		return "create"
	case WALRecordObserve:
		return "observe"
	case WALRecordFinish:
		return "finish"
	case WALRecordExpire:
		return "expire"
	case WALRecordSnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("unknown(%d)", t)
}

// walCreateEvent logs a campaign registration: everything Create needs to
// reproduce the campaign exactly, including the ID's sequence number so
// the ID allocator resumes past replayed campaigns.
type walCreateEvent struct {
	ID              string           `json:"id"`
	Seq             int64            `json:"seq"`
	Kind            string           `json:"kind"`
	Request         json.RawMessage  `json:"request"`
	Adaptive        *AdaptiveOptions `json:"adaptive,omitempty"`
	CreatedUnixNano int64            `json:"created_unix_nano"`
}

// walObserveEvent logs one observed interval.
type walObserveEvent struct {
	ID        string  `json:"id"`
	Arrivals  float64 `json:"arrivals"`
	Completed []int   `json:"completed,omitempty"`
}

// walRefEvent logs a removal (finish or expire).
type walRefEvent struct {
	ID string `json:"id"`
}

// OpenWAL opens (and crash-recovers) the campaign event log at dir with
// the campaign record schema bound: compaction snapshots are taken from
// this manager's table. Boot order is OpenWAL → ReplayWAL → AttachWAL.
func (m *Manager) OpenWAL(dir string, opts wal.Options) (*wal.Log, error) {
	opts.SnapshotType = WALRecordSnapshot
	opts.SnapshotFn = m.walSnapshotPayload
	return wal.Open(dir, opts)
}

// AttachWAL starts emitting events to l. Call it after ReplayWAL (replay
// must not observe its own writes) and before serving mutations.
func (m *Manager) AttachWAL(l *wal.Log) { m.wlog.Store(l) }

// walSnapshotPayload renders the compaction snapshot: the standard
// Snapshot JSON, whose entries carry per-campaign LSN high-water marks.
func (m *Manager) walSnapshotPayload() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// walAppend emits one event (no-op without an attached log). The append
// is asynchronous — group commit makes it durable within the fsync
// window — but an error (the log is fail-stopped) is surfaced so callers
// stop acknowledging mutations that can never be made durable. The
// marshal-plus-append lands on tr's StageWALAppend span (nil records
// nothing); the fsync itself is off-path and never traced.
func (m *Manager) walAppend(tr *telemetry.Trace, typ byte, event any) (uint64, error) {
	l := m.wlog.Load()
	if l == nil {
		return 0, nil
	}
	start := tr.Now()
	body, err := json.Marshal(event)
	if err != nil {
		return 0, err
	}
	lsn, err := l.Append(typ, body)
	tr.ObserveSince(telemetry.StageWALAppend, start)
	return lsn, err
}

// WALSource is the slice of *wal.Log that ReplayWAL needs; wal.NewReader
// implements it too, so inspection tools can replay read-only.
type WALSource interface {
	Replay(fn func(wal.Record) error) error
}

// WALReplayStats summarizes one ReplayWAL.
type WALReplayStats struct {
	// Records is the number of intact log records folded; Snapshots how
	// many of them were compaction snapshots.
	Records   int64
	Snapshots int64
	// Campaigns is the number of live campaigns restored; Removed counts
	// campaigns that appeared in the log but were finished or expired
	// before its end.
	Campaigns int
	Removed   int
}

// walFold accumulates one campaign's replayed history: a base (either a
// snapshot entry or a create event) plus ordered observe events.
type walFold struct {
	base     *campaignSnapshot
	create   *walCreateEvent
	observes []walObserveEvent
	lastLSN  uint64
}

// ReplayWAL folds src's records into live campaigns: each campaign's
// base state (latest snapshot entry, else its create event) is rebuilt
// through the engine's deterministic re-solve and its observe events are
// re-applied through the same code path Observe uses online, so replayed
// campaigns quote bit-identical prices. Events with LSNs at or below a
// snapshot entry's high-water mark are already folded into that entry and
// are skipped — the rule that makes compaction's physical reordering
// (snapshot record ahead of buffered older events) harmless.
//
// Like Restore, ReplayWAL is all-or-nothing and resumes the ID sequence
// past every replayed campaign.
func (m *Manager) ReplayWAL(ctx context.Context, src WALSource) (*WALReplayStats, error) {
	stats := &WALReplayStats{}
	folds := make(map[string]*walFold)
	var nextSeq int64
	removed := make(map[string]bool)

	err := src.Replay(func(rec wal.Record) error {
		stats.Records++
		switch rec.Type {
		case WALRecordCreate:
			var ev walCreateEvent
			if err := json.Unmarshal(rec.Data, &ev); err != nil {
				return fmt.Errorf("campaign: bad create record (lsn %d): %w", rec.LSN, err)
			}
			if ev.ID == "" {
				return fmt.Errorf("campaign: create record without id (lsn %d)", rec.LSN)
			}
			if f, ok := folds[ev.ID]; ok {
				if rec.LSN <= f.lastLSN {
					return nil // folded into an earlier snapshot entry
				}
				return fmt.Errorf("campaign: duplicate create for %q (lsn %d)", ev.ID, rec.LSN)
			}
			ev.Request = append(json.RawMessage(nil), ev.Request...)
			folds[ev.ID] = &walFold{create: &ev, lastLSN: rec.LSN}
			if ev.Seq > nextSeq {
				nextSeq = ev.Seq
			}
		case WALRecordObserve:
			var ev walObserveEvent
			if err := json.Unmarshal(rec.Data, &ev); err != nil {
				return fmt.Errorf("campaign: bad observe record (lsn %d): %w", rec.LSN, err)
			}
			f, ok := folds[ev.ID]
			if !ok || rec.LSN <= f.lastLSN {
				return nil // campaign already removed, or event pre-dates its snapshot entry
			}
			f.observes = append(f.observes, ev)
			f.lastLSN = rec.LSN
		case WALRecordFinish, WALRecordExpire:
			var ev walRefEvent
			if err := json.Unmarshal(rec.Data, &ev); err != nil {
				return fmt.Errorf("campaign: bad removal record (lsn %d): %w", rec.LSN, err)
			}
			f, ok := folds[ev.ID]
			if !ok || rec.LSN <= f.lastLSN {
				return nil
			}
			delete(folds, ev.ID)
			removed[ev.ID] = true
		case WALRecordSnapshot:
			var file snapshotFile
			if err := json.Unmarshal(rec.Data, &file); err != nil {
				return fmt.Errorf("campaign: bad snapshot record (lsn %d): %w", rec.LSN, err)
			}
			if file.SchemaVersion != SnapshotSchemaVersion {
				return fmt.Errorf("campaign: snapshot record schema version %d, this binary expects %d",
					file.SchemaVersion, SnapshotSchemaVersion)
			}
			stats.Snapshots++
			// A snapshot record supersedes everything before it.
			folds = make(map[string]*walFold, len(file.Campaigns))
			for i := range file.Campaigns {
				cs := file.Campaigns[i]
				folds[cs.ID] = &walFold{base: &cs, lastLSN: cs.LastLSN}
			}
			if file.NextSeq > nextSeq {
				nextSeq = file.NextSeq
			}
		default:
			return fmt.Errorf("campaign: unknown record type %d (lsn %d) — log written by a newer binary?", rec.Type, rec.LSN)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats.Removed = len(removed)

	ids := make([]string, 0, len(folds))
	for id := range folds {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	now := m.opts.now()
	rebuilt := make([]*campaign, 0, len(ids))
	// Like Restore: an abort after some campaigns were rebuilt must return
	// their intern references.
	committed := false
	defer func() {
		if !committed {
			for _, c := range rebuilt {
				m.releaseCampaign(c)
			}
		}
	}()
	for _, id := range ids {
		f := folds[id]
		var (
			c   *campaign
			err error
		)
		if f.base != nil {
			c, err = m.rebuild(ctx, *f.base, now)
		} else {
			c, err = m.rebuildFromEvent(ctx, f.create, now)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: replaying %q: %w", id, err)
		}
		rebuilt = append(rebuilt, c)
		c.mu.Lock()
		for _, ob := range f.observes {
			before := c.replans
			if err := c.observeLocked(ob.Arrivals, ob.Completed); err != nil {
				c.mu.Unlock()
				return nil, fmt.Errorf("campaign: replaying observe for %q: %w", id, err)
			}
			m.replans.Add(c.replans - before)
		}
		c.lastLSN = f.lastLSN
		c.mu.Unlock()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.campaigns)+len(rebuilt) > m.opts.MaxCampaigns {
		return nil, fmt.Errorf("%w: %d replayed + %d live exceeds the %d-campaign limit",
			ErrTableFull, len(rebuilt), len(m.campaigns), m.opts.MaxCampaigns)
	}
	for _, c := range rebuilt {
		if _, dup := m.campaigns[c.id]; dup {
			return nil, fmt.Errorf("campaign: replayed ID %q collides with a live campaign", c.id)
		}
	}
	for _, c := range rebuilt {
		m.campaigns[c.id] = c
	}
	for cur := m.seq.Load(); cur < nextSeq; cur = m.seq.Load() {
		if m.seq.CompareAndSwap(cur, nextSeq) {
			break
		}
	}
	m.created.Add(int64(len(rebuilt)))
	stats.Campaigns = len(rebuilt)
	committed = true
	return stats, nil
}

// FoldWAL streams src's records into sink as lifecycle events — the
// offline twin of the live AttachSink stream, so an analytics aggregator
// folds a recorded event log and live traffic through one code path and
// cmd/walstats regenerates rate fits from recorded traffic. Unlike
// ReplayWAL it runs no solver: the fold is pure bookkeeping, so it works
// read-only (wal.NewReader) and in O(records).
//
// Compaction snapshots are folded approximately for campaigns whose
// per-interval history was compacted away: one create plus the recorded
// arrival total spread uniformly across the recorded interval count
// (exact totals, smoothed profile); quotes are never logged, so folded
// aggregates report zero quote activity by construction.
func FoldWAL(src WALSource, sink EventSink) error {
	type liveCampaign struct {
		kind     string
		adaptive bool
		interval int
		lastLSN  uint64
	}
	live := make(map[string]*liveCampaign)
	return src.Replay(func(rec wal.Record) error {
		switch rec.Type {
		case WALRecordCreate:
			var ev walCreateEvent
			if err := json.Unmarshal(rec.Data, &ev); err != nil {
				return fmt.Errorf("campaign: bad create record (lsn %d): %w", rec.LSN, err)
			}
			if lc, ok := live[ev.ID]; ok && rec.LSN <= lc.lastLSN {
				return nil // already folded via a snapshot entry
			}
			live[ev.ID] = &liveCampaign{kind: ev.Kind, adaptive: ev.Adaptive != nil, lastLSN: rec.LSN}
			sink.CampaignCreated(ev.Kind, ev.Adaptive != nil)
		case WALRecordObserve:
			var ev walObserveEvent
			if err := json.Unmarshal(rec.Data, &ev); err != nil {
				return fmt.Errorf("campaign: bad observe record (lsn %d): %w", rec.LSN, err)
			}
			lc, ok := live[ev.ID]
			if !ok || rec.LSN <= lc.lastLSN {
				return nil // campaign removed, or event folded into its snapshot entry
			}
			sink.CampaignObserved(lc.kind, lc.adaptive, ev.Arrivals, sumCompleted(ev.Completed), lc.interval)
			lc.interval++
			lc.lastLSN = rec.LSN
		case WALRecordFinish, WALRecordExpire:
			var ev walRefEvent
			if err := json.Unmarshal(rec.Data, &ev); err != nil {
				return fmt.Errorf("campaign: bad removal record (lsn %d): %w", rec.LSN, err)
			}
			lc, ok := live[ev.ID]
			if !ok || rec.LSN <= lc.lastLSN {
				return nil
			}
			delete(live, ev.ID)
			if rec.Type == WALRecordFinish {
				sink.CampaignFinished(lc.kind, lc.adaptive)
			} else {
				sink.CampaignExpired(lc.kind, lc.adaptive)
			}
		case WALRecordSnapshot:
			var file snapshotFile
			if err := json.Unmarshal(rec.Data, &file); err != nil {
				return fmt.Errorf("campaign: bad snapshot record (lsn %d): %w", rec.LSN, err)
			}
			if file.SchemaVersion != SnapshotSchemaVersion {
				return fmt.Errorf("campaign: snapshot record schema version %d, this binary expects %d",
					file.SchemaVersion, SnapshotSchemaVersion)
			}
			inSnapshot := make(map[string]bool, len(file.Campaigns))
			for i := range file.Campaigns {
				cs := &file.Campaigns[i]
				inSnapshot[cs.ID] = true
				if lc, ok := live[cs.ID]; ok {
					// Already folded from its own records; the entry only
					// advances the dedup high-water mark.
					if cs.LastLSN > lc.lastLSN {
						lc.lastLSN = cs.LastLSN
					}
					lc.interval = cs.Interval
					continue
				}
				adaptive := cs.Adaptive != nil
				sink.CampaignCreated(cs.Kind, adaptive)
				if cs.Interval > 0 {
					mean := cs.ObservedTotal / float64(cs.Interval)
					for t := 0; t < cs.Interval; t++ {
						sink.CampaignObserved(cs.Kind, adaptive, mean, 0, t)
					}
				}
				live[cs.ID] = &liveCampaign{kind: cs.Kind, adaptive: adaptive, interval: cs.Interval, lastLSN: cs.LastLSN}
			}
			// Campaigns folded earlier but absent from the snapshot were
			// removed in the compacted-away history; their removal records
			// are gone, so close them out as finished — in sorted ID order,
			// keeping the event stream (and any float folds downstream)
			// deterministic.
			var gone []string
			for id := range live {
				if !inSnapshot[id] {
					gone = append(gone, id)
				}
			}
			sort.Strings(gone)
			for _, id := range gone {
				lc := live[id]
				delete(live, id)
				sink.CampaignFinished(lc.kind, lc.adaptive)
			}
		default:
			return fmt.Errorf("campaign: unknown record type %d (lsn %d) — log written by a newer binary?", rec.Type, rec.LSN)
		}
		return nil
	})
}

// rebuildFromEvent reconstructs a campaign from its create event exactly
// as Create would have: re-solve the policy (and adaptive bank) through
// the engine, then start from the initial counts. Observe events are
// applied on top by ReplayWAL.
func (m *Manager) rebuildFromEvent(ctx context.Context, ev *walCreateEvent, now time.Time) (*campaign, error) {
	spec, err := m.decodeSpec(ev.Kind, ev.Request)
	if err != nil {
		return nil, err
	}
	h, _, err := m.acquireQuoter(ctx, ev.Kind, spec)
	if err != nil {
		return nil, err
	}
	c := &campaign{
		id:          ev.ID,
		kind:        ev.Kind,
		request:     append([]byte(nil), ev.Request...),
		fingerprint: h.key,
		bank:        []*internedQuoter{h},
		remaining:   h.InitialCounts(),
		quoteBuf:    make([]int, 0, h.Types()),
		factor:      1,
	}
	if ev.Adaptive != nil {
		if err := m.buildBank(ctx, c, spec, ev.Adaptive); err != nil {
			m.releaseCampaign(c)
			return nil, err
		}
		// The bank's slots hold their own references now; the base handle's
		// goes back (a factor-1.0 slot deduped onto the same entry).
		m.intern.release(h)
	}
	c.created = time.Unix(0, ev.CreatedUnixNano)
	c.lastTouched = now
	return c, nil
}
