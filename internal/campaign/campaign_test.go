package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/engine"
	"crowdpricing/internal/kinds"
)

// newTestManager builds a Manager over a real engine.
func newTestManager(t testing.TB, opts Options) *Manager {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	m := NewManager(eng, nil, opts)
	t.Cleanup(m.Close)
	return m
}

// sampleRequest draws the registry's deterministic workload sampler for
// kind and returns the spec's wire JSON — the same bodies the bench
// harness and the HTTP API use.
func sampleRequest(t testing.TB, kind string, seed int64, size string) json.RawMessage {
	t.Helper()
	def, ok := kinds.Default().Lookup(kind)
	if !ok {
		t.Fatalf("kind %q not registered", kind)
	}
	body, err := json.Marshal(def.Sample(seed, size))
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// solvePolicy solves the same request directly (no campaign machinery) and
// returns the deadline policy table — ground truth for quote assertions.
func solvePolicy(t testing.TB, request json.RawMessage) *core.DeadlinePolicy {
	t.Helper()
	var req kinds.DeadlineRequest
	if err := json.Unmarshal(request, &req); err != nil {
		t.Fatal(err)
	}
	artifact, err := req.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var pol core.DeadlinePolicy
	if err := json.Unmarshal(artifact, &pol); err != nil {
		t.Fatal(err)
	}
	return &pol
}

// TestDeadlineLifecycle walks a full campaign and checks every quote
// against the solved policy table exactly: the campaign must be a faithful
// online replay of the DP, never an approximation of it.
func TestDeadlineLifecycle(t *testing.T) {
	m := newTestManager(t, Options{})
	req := sampleRequest(t, kinds.KindDeadline, 7, "small")
	pol := solvePolicy(t, req)

	st, err := m.Create(context.Background(), kinds.KindDeadline, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Remaining[0] != pol.Problem.N || st.Interval != 0 || st.Horizon != pol.Problem.Intervals {
		t.Fatalf("fresh state %+v does not match problem N=%d T=%d", st, pol.Problem.N, pol.Problem.Intervals)
	}
	if st.Done {
		t.Fatal("fresh campaign reports done")
	}

	n := pol.Problem.N
	for tt := 0; tt < pol.Problem.Intervals; tt++ {
		q, err := m.Quote(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if want := pol.PriceAt(n, tt); q.Price != want {
			t.Fatalf("interval %d, %d remaining: quoted %d, policy table says %d", tt, n, q.Price, want)
		}
		if q.Interval != tt || q.Remaining[0] != n {
			t.Fatalf("quote echoes state (%d, %v), campaign is at (%d, %d)", q.Interval, q.Remaining, tt, n)
		}
		// The world completes two tasks per interval until none remain.
		done := 2
		if done > n {
			done = n
		}
		if _, err := m.Observe(st.ID, 10, []int{done}); err != nil {
			t.Fatal(err)
		}
		n -= done
	}

	sum, err := m.Finish(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Intervals != pol.Problem.Intervals || sum.Quotes != int64(pol.Problem.Intervals) {
		t.Fatalf("summary %+v, want %d intervals and quotes", sum, pol.Problem.Intervals)
	}
	if _, err := m.Quote(st.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("quote after finish: err=%v, want ErrNotFound", err)
	}
}

// TestTradeoffCampaign checks the stationary kind: price depends on
// remaining count only, and the horizon reports 0.
func TestTradeoffCampaign(t *testing.T) {
	m := newTestManager(t, Options{})
	req := sampleRequest(t, kinds.KindTradeoff, 3, "small")
	var wire kinds.TradeoffRequest
	if err := json.Unmarshal(req, &wire); err != nil {
		t.Fatal(err)
	}
	artifact, err := wire.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sched kinds.TradeoffSchedule
	if err := json.Unmarshal(artifact, &sched); err != nil {
		t.Fatal(err)
	}

	st, err := m.Create(context.Background(), kinds.KindTradeoff, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Horizon != 0 {
		t.Fatalf("stationary policy reports horizon %d, want 0", st.Horizon)
	}
	n := st.Remaining[0]
	for step := 0; n > 0 && step < 100; step++ {
		q, err := m.Quote(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if want := sched.Price[n]; q.Price != want {
			t.Fatalf("%d remaining: quoted %d, schedule says %d", n, q.Price, want)
		}
		if _, err := m.Observe(st.ID, 5, []int{1}); err != nil {
			t.Fatal(err)
		}
		n--
	}
	if n != 0 {
		t.Fatalf("campaign never drained (n=%d)", n)
	}
}

// TestMultiCampaign checks the general-k kind against the core joint
// policy: vector states, vector quotes.
func TestMultiCampaign(t *testing.T) {
	m := newTestManager(t, Options{})
	req := sampleRequest(t, kinds.KindMulti, 5, "small")
	var wire kinds.MultiRequest
	if err := json.Unmarshal(req, &wire); err != nil {
		t.Fatal(err)
	}
	// Ground truth straight from the core joint DP.
	prob := core.MultiProblem{
		Counts:    wire.Counts,
		Intervals: wire.Intervals,
		Lambdas:   wire.Lambdas,
		MinPrice:  wire.MinPrice,
		MaxPrice:  wire.MaxPrice,
		Penalty:   wire.Penalty,
		TruncEps:  wire.TruncEps,
	}
	for _, a := range wire.Accepts {
		prob.Accepts = append(prob.Accepts, choice.Logistic{S: a.S, B: a.B, M: a.M})
	}
	pol, err := prob.Solve()
	if err != nil {
		t.Fatal(err)
	}

	st, err := m.Create(context.Background(), kinds.KindMulti, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	remaining := append([]int(nil), wire.Counts...)
	for tt := 0; tt < wire.Intervals; tt++ {
		q, err := m.Quote(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		want := pol.PricesAt(remaining, tt)
		if len(q.Prices) != len(want) {
			t.Fatalf("quote has %d prices, want %d", len(q.Prices), len(want))
		}
		for i := range want {
			if q.Prices[i] != want[i] {
				t.Fatalf("interval %d state %v: quoted %v, policy says %v", tt, remaining, q.Prices, want)
			}
		}
		completed := make([]int, len(remaining))
		if remaining[0] > 0 {
			completed[0] = 1
			remaining[0]--
		}
		if _, err := m.Observe(st.ID, 8, completed); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBudgetRejected: budget strategies are static allocations — no
// sequential table, no campaign.
func TestBudgetRejected(t *testing.T) {
	m := newTestManager(t, Options{})
	req := sampleRequest(t, kinds.KindBudget, 1, "small")
	if _, err := m.Create(context.Background(), kinds.KindBudget, req, nil); !errors.Is(err, ErrUnsupportedKind) {
		t.Fatalf("budget create: err=%v, want ErrUnsupportedKind", err)
	}
	if _, err := m.Create(context.Background(), "nope", req, nil); !errors.Is(err, ErrUnsupportedKind) {
		t.Fatalf("unknown kind create: err=%v, want ErrUnsupportedKind", err)
	}
}

// TestObserveValidation: malformed observations are the caller's fault and
// must not corrupt state.
func TestObserveValidation(t *testing.T) {
	m := newTestManager(t, Options{})
	st, err := m.Create(context.Background(), kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, 1, "small"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct {
		arrivals  float64
		completed []int
	}{
		{-1, nil},
		{5, []int{-2}},
		{5, []int{1, 2}}, // wrong arity for a one-type campaign
	} {
		if _, err := m.Observe(st.ID, bad.arrivals, bad.completed); !errors.Is(err, ErrBadInput) {
			t.Fatalf("Observe(%v, %v): err=%v, want ErrBadInput", bad.arrivals, bad.completed, err)
		}
	}
	after, err := m.State(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Interval != 0 || after.Remaining[0] != st.Remaining[0] {
		t.Fatalf("failed observes mutated state: %+v", after)
	}

	// A partially valid multi vector must be rejected atomically: the
	// valid leading entries may not be applied before the bad one is hit.
	multi, err := m.Create(context.Background(), kinds.KindMulti, sampleRequest(t, kinds.KindMulti, 2, "small"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(multi.ID, 5, []int{1, -1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("Observe([1,-1]): err=%v, want ErrBadInput", err)
	}
	got, err := m.State(multi.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range multi.Remaining {
		if got.Remaining[i] != multi.Remaining[i] {
			t.Fatalf("rejected observe partially applied: remaining %v, want %v", got.Remaining, multi.Remaining)
		}
	}
	if got.Interval != 0 {
		t.Fatalf("rejected observe advanced the interval to %d", got.Interval)
	}
}

// TestAdaptiveReplan drives an adaptive campaign with arrivals double the
// trained profile and checks it switches to a higher-factor policy whose
// prices differ from the static plan — the §5.2.5 behavior, online.
func TestAdaptiveReplan(t *testing.T) {
	m := newTestManager(t, Options{})
	req := sampleRequest(t, kinds.KindDeadline, 11, "small")
	var wire kinds.DeadlineRequest
	if err := json.Unmarshal(req, &wire); err != nil {
		t.Fatal(err)
	}

	st, err := m.Create(context.Background(), kinds.KindDeadline, req, &AdaptiveOptions{WindowIntervals: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Adaptive || st.ActiveFactor != 1.0 {
		t.Fatalf("fresh adaptive campaign %+v, want active factor 1.0", st)
	}

	// Double the expected arrivals for three intervals: the trailing-window
	// estimate approaches 2, beyond the 1.5 grid edge.
	var last *State
	for tt := 0; tt < 3; tt++ {
		last, err = m.Observe(st.ID, 2*wire.Lambdas[tt], nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.ActiveFactor != 1.5 {
		t.Fatalf("after 2× arrivals the campaign follows factor %v, want the 1.5 grid edge", last.ActiveFactor)
	}
	if last.Replans == 0 {
		t.Fatal("no replans counted despite a factor switch")
	}
	if last.Factor < 1.8 || last.Factor > 2.2 {
		t.Fatalf("scale estimate %v, want ≈2", last.Factor)
	}

	// The quoted price must match the *scaled* problem's policy, not the
	// base one: solve the 1.5× problem independently and compare.
	scaled := wire
	scaled.Lambdas = make([]float64, len(wire.Lambdas))
	for i, l := range wire.Lambdas {
		scaled.Lambdas[i] = 1.5 * l
	}
	scaledJSON, err := json.Marshal(&scaled)
	if err != nil {
		t.Fatal(err)
	}
	pol := solvePolicy(t, scaledJSON)
	q, err := m.Quote(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := pol.PriceAt(q.Remaining[0], q.Interval); q.Price != want {
		t.Fatalf("adaptive quote %d, 1.5×-policy table says %d", q.Price, want)
	}
	if q.ActiveFactor != 1.5 {
		t.Fatalf("quote reports factor %v, want 1.5", q.ActiveFactor)
	}
}

// TestAdaptivePastHorizon: intervals past the policy horizon have no
// trained expectation, so they must contribute to neither side of the
// scale estimate — huge arrivals observed after the deadline cannot
// inflate the factor — and once the whole window is past the horizon the
// estimate freezes. The observation window itself stays bounded.
func TestAdaptivePastHorizon(t *testing.T) {
	m := newTestManager(t, Options{})
	req := sampleRequest(t, kinds.KindDeadline, 13, "small")
	var wire kinds.DeadlineRequest
	if err := json.Unmarshal(req, &wire); err != nil {
		t.Fatal(err)
	}
	const window = 3
	st, err := m.Create(context.Background(), kinds.KindDeadline, req, &AdaptiveOptions{WindowIntervals: window})
	if err != nil {
		t.Fatal(err)
	}
	// Walk to the horizon reporting exactly the trained profile: the
	// estimate stays at factor 1.
	for tt := 0; tt < wire.Intervals; tt++ {
		if _, err := m.Observe(st.ID, wire.Lambdas[tt], nil); err != nil {
			t.Fatal(err)
		}
	}
	atHorizon, err := m.State(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if atHorizon.ActiveFactor != 1.0 {
		t.Fatalf("on-profile arrivals ended at factor %v, want 1.0", atHorizon.ActiveFactor)
	}
	// Ten more intervals of absurd arrivals past the horizon.
	for i := 0; i < 10; i++ {
		if _, err := m.Observe(st.ID, 1e6, nil); err != nil {
			t.Fatal(err)
		}
	}
	after, err := m.State(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.ActiveFactor != atHorizon.ActiveFactor || after.Replans != atHorizon.Replans {
		t.Fatalf("past-horizon arrivals moved the estimate: %+v vs %+v", after, atHorizon)
	}
	c, err := m.get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	n := len(c.observed)
	c.mu.Unlock()
	if n > window {
		t.Fatalf("observation window holds %d entries, want ≤ %d", n, window)
	}
}

// TestAdaptiveRequiresDeadline: the controller re-scales per-interval
// arrival rates, which only the deadline MDP has.
func TestAdaptiveRequiresDeadline(t *testing.T) {
	m := newTestManager(t, Options{})
	req := sampleRequest(t, kinds.KindTradeoff, 2, "small")
	if _, err := m.Create(context.Background(), kinds.KindTradeoff, req, &AdaptiveOptions{}); !errors.Is(err, ErrAdaptiveUnsupported) {
		t.Fatalf("adaptive tradeoff: err=%v, want ErrAdaptiveUnsupported", err)
	}
}

// TestAdaptiveDeterministicBySeed: two managers fed the identical seed and
// observation sequence quote identical prices and count identical replans.
func TestAdaptiveDeterministicBySeed(t *testing.T) {
	run := func() ([]int, int64) {
		m := newTestManager(t, Options{})
		req := sampleRequest(t, kinds.KindDeadline, 23, "small")
		st, err := m.Create(context.Background(), kinds.KindDeadline, req, &AdaptiveOptions{WindowIntervals: 2})
		if err != nil {
			t.Fatal(err)
		}
		var prices []int
		arrivals := []float64{3, 50, 1, 80, 0, 40, 7, 7}
		for i, a := range arrivals {
			if _, err := m.Observe(st.ID, a, []int{i % 2}); err != nil {
				t.Fatal(err)
			}
			q, err := m.Quote(st.ID)
			if err != nil {
				t.Fatal(err)
			}
			prices = append(prices, q.Price)
		}
		fin, err := m.Finish(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		return prices, fin.Replans
	}
	p1, r1 := run()
	p2, r2 := run()
	if len(p1) != len(p2) || r1 != r2 {
		t.Fatalf("runs diverged: %v/%d vs %v/%d", p1, r1, p2, r2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("price %d diverged: %d vs %d", i, p1[i], p2[i])
		}
	}
	if r1 == 0 {
		t.Fatal("observation sequence produced no replans; the test exercises nothing")
	}
}

// TestTTLExpiry drives the idle sweeper with a fake clock.
func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	m := newTestManager(t, Options{TTL: time.Minute, now: clock})

	st, err := m.Create(context.Background(), kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, 3, "small"), nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := m.Create(context.Background(), kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, 4, "small"), nil)
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	now = now.Add(45 * time.Second)
	mu.Unlock()
	// Touching a campaign (here: quoting) refreshes its TTL.
	if _, err := m.Quote(st2.ID); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(30 * time.Second)
	mu.Unlock()

	if n := m.ExpireIdle(); n != 1 {
		t.Fatalf("expired %d campaigns, want 1 (only the untouched one)", n)
	}
	if _, err := m.State(st.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired campaign still readable: %v", err)
	}
	if _, err := m.State(st2.ID); err != nil {
		t.Fatalf("touched campaign expired: %v", err)
	}
	if got := m.Metrics(); got.Expired != 1 || got.Active != 1 {
		t.Fatalf("metrics %+v, want Expired=1 Active=1", got)
	}
}

// TestNeverExpire: a negative TTL disables the sweeper.
func TestNeverExpire(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	m := newTestManager(t, Options{TTL: -1, now: func() time.Time { return now }})
	st, err := m.Create(context.Background(), kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, 3, "small"), nil)
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(1000 * time.Hour)
	if n := m.ExpireIdle(); n != 0 {
		t.Fatalf("ExpireIdle removed %d campaigns with TTL<0", n)
	}
	if _, err := m.State(st.ID); err != nil {
		t.Fatal(err)
	}
}

// TestTableFull: the campaign table sheds creates at capacity.
func TestTableFull(t *testing.T) {
	m := newTestManager(t, Options{MaxCampaigns: 2})
	for seed := int64(0); seed < 2; seed++ {
		if _, err := m.Create(context.Background(), kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, seed, "small"), nil); err != nil {
			t.Fatal(err)
		}
	}
	_, err := m.Create(context.Background(), kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, 9, "small"), nil)
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("create over capacity: err=%v, want ErrTableFull", err)
	}
}

// TestSnapshotRestore is the restart story: snapshot a live table, restore
// it into a brand-new manager over a brand-new (cold) engine, and require
// bit-identical quotes — the determinism of the solvers is what makes
// storing requests instead of policies sound.
func TestSnapshotRestore(t *testing.T) {
	a := newTestManager(t, Options{})
	ctx := context.Background()

	reqStatic := sampleRequest(t, kinds.KindDeadline, 31, "small")
	stStatic, err := a.Create(ctx, kinds.KindDeadline, reqStatic, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqAdaptive := sampleRequest(t, kinds.KindDeadline, 32, "small")
	stAdaptive, err := a.Create(ctx, kinds.KindDeadline, reqAdaptive, &AdaptiveOptions{WindowIntervals: 2})
	if err != nil {
		t.Fatal(err)
	}
	reqMulti := sampleRequest(t, kinds.KindMulti, 33, "small")
	stMulti, err := a.Create(ctx, kinds.KindMulti, reqMulti, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Advance each campaign into a nontrivial state.
	for i := 0; i < 4; i++ {
		if _, err := a.Observe(stStatic.ID, float64(3*i), []int{1}); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Observe(stAdaptive.ID, float64(40*i), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Observe(stMulti.ID, 6, []int{1, 0}); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	b := newTestManager(t, Options{})
	if err := b.Restore(ctx, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{stStatic.ID, stAdaptive.ID, stMulti.ID} {
		qa, err := a.Quote(id)
		if err != nil {
			t.Fatal(err)
		}
		qb, err := b.Quote(id)
		if err != nil {
			t.Fatalf("restored campaign %q: %v", id, err)
		}
		if len(qa.Prices) != len(qb.Prices) {
			t.Fatalf("%q: %v vs %v", id, qa.Prices, qb.Prices)
		}
		for i := range qa.Prices {
			if qa.Prices[i] != qb.Prices[i] {
				t.Fatalf("%q quotes diverged after restore: %v vs %v", id, qa.Prices, qb.Prices)
			}
		}
		sa, _ := a.State(id)
		sb, _ := b.State(id)
		if sa.Interval != sb.Interval || sa.Replans != sb.Replans || sa.ActiveFactor != sb.ActiveFactor {
			t.Fatalf("%q state diverged after restore: %+v vs %+v", id, sa, sb)
		}
	}

	// The restored table keeps working: observe + quote still agree across
	// managers when fed the same observation.
	if _, err := a.Observe(stAdaptive.ID, 70, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Observe(stAdaptive.ID, 70, nil); err != nil {
		t.Fatal(err)
	}
	qa, _ := a.Quote(stAdaptive.ID)
	qb, _ := b.Quote(stAdaptive.ID)
	if qa.Price != qb.Price {
		t.Fatalf("post-restore observe diverged: %d vs %d", qa.Price, qb.Price)
	}

	// New creates in the restored manager never collide with restored IDs.
	stNew, err := b.Create(ctx, kinds.KindDeadline, sampleRequest(t, kinds.KindDeadline, 99, "small"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{stStatic.ID, stAdaptive.ID, stMulti.ID} {
		if stNew.ID == id {
			t.Fatalf("new campaign reused restored ID %q", id)
		}
	}
}

// TestRestoreRejectsBadSnapshots: schema mismatches and corrupted state
// abort with nothing inserted.
func TestRestoreRejectsBadSnapshots(t *testing.T) {
	m := newTestManager(t, Options{})
	ctx := context.Background()
	dupReq := `{"n": 4, "horizon_hours": 2, "intervals": 2, "lambdas": [5,5],
		"accept": {"s": 15, "b": -0.39, "m": 2000},
		"min_price": 1, "max_price": 10, "penalty": 40}`
	for name, snap := range map[string]string{
		"wrong schema": `{"schema_version": 99, "campaigns": []}`,
		"not json":     `{`,
		"duplicate id": `{"schema_version": 1, "next_seq": 2, "campaigns": [
			{"id": "c1", "kind": "deadline", "request": ` + dupReq + `,
			 "remaining": [4], "interval": 0, "observed": []},
			{"id": "c1", "kind": "deadline", "request": ` + dupReq + `,
			 "remaining": [4], "interval": 0, "observed": []}]}`,
		"bad state": `{"schema_version": 1, "next_seq": 1, "campaigns": [
			{"id": "c1", "kind": "deadline",
			 "request": {"n": 4, "horizon_hours": 2, "intervals": 2, "lambdas": [5,5],
			             "accept": {"s": 15, "b": -0.39, "m": 2000},
			             "min_price": 1, "max_price": 10, "penalty": 40},
			 "remaining": [99], "interval": 0, "observed": []}]}`,
	} {
		if err := m.Restore(ctx, bytes.NewReader([]byte(snap))); err == nil {
			t.Errorf("%s: restore succeeded", name)
		}
	}
	if got := m.Metrics(); got.Active != 0 {
		t.Fatalf("failed restores left %d campaigns", got.Active)
	}
}

// TestConcurrentObserveQuote is the -race test the tentpole calls for:
// hammer one campaign with concurrent observers and quoters and require a
// consistent final state — no lost updates, no torn reads.
func TestConcurrentObserveQuote(t *testing.T) {
	m := newTestManager(t, Options{})
	st, err := m.Create(context.Background(), kinds.KindDeadline,
		sampleRequest(t, kinds.KindDeadline, 42, "small"), &AdaptiveOptions{WindowIntervals: 3})
	if err != nil {
		t.Fatal(err)
	}

	const (
		observers = 8
		quoters   = 8
		perG      = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < observers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := m.Observe(st.ID, float64(g+i), []int{0}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < quoters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q, err := m.Quote(st.ID)
				if err != nil {
					t.Error(err)
					return
				}
				if len(q.Prices) != 1 || q.Prices[0] <= 0 {
					t.Errorf("torn quote %+v", q)
					return
				}
			}
		}()
	}
	wg.Wait()

	fin, err := m.Finish(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Intervals != observers*perG {
		t.Fatalf("campaign saw %d intervals, want %d (lost observes)", fin.Intervals, observers*perG)
	}
	if fin.Quotes != quoters*perG {
		t.Fatalf("campaign counted %d quotes, want %d", fin.Quotes, quoters*perG)
	}
	if got := m.Metrics(); got.Quotes != quoters*perG {
		t.Fatalf("manager counted %d quotes, want %d", got.Quotes, quoters*perG)
	}
}
