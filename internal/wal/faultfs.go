package wal

import "sync"

// FaultFS wraps another FS and injects write and sync failures at exact
// byte offsets: FailWritesAfter(n, err) lets the next n bytes through,
// tears the write that crosses the boundary (a short write — the bytes
// before the budget land, the rest do not), and fails every write after.
// Combined with MemFS.Crash this drives the recovery path through every
// partial-write shape a real disk can produce.
type FaultFS struct {
	inner FS

	mu          sync.Mutex
	writeBudget int64 // bytes still allowed; negative = unlimited
	writeErr    error
	syncErr     error
}

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, writeBudget: -1}
}

// FailWritesAfter arms the write fault: n more bytes succeed, the write
// crossing the boundary is torn (partially applied) and returns err, and
// every later write fails immediately with err.
func (f *FaultFS) FailWritesAfter(n int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget, f.writeErr = n, err
}

// FailSyncs makes every Sync return err (nil disarms).
func (f *FaultFS) FailSyncs(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncErr = err
}

// Clear disarms all faults.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget, f.writeErr, f.syncErr = -1, nil, nil
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// Open implements FS (reads are never faulted — recovery robustness is
// about what made it to disk, not about flaky reads).
func (f *FaultFS) Open(name string) (File, error) { return f.inner.Open(name) }

// Remove implements FS.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.inner.Read(p) }

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	budget, werr := ff.fs.writeBudget, ff.fs.writeErr
	if budget >= 0 {
		if int64(len(p)) <= budget {
			ff.fs.writeBudget -= int64(len(p))
		} else {
			ff.fs.writeBudget = 0
		}
	}
	ff.fs.mu.Unlock()
	if budget < 0 {
		return ff.inner.Write(p)
	}
	if int64(len(p)) <= budget {
		return ff.inner.Write(p)
	}
	// Torn write: the bytes inside the budget land, the rest are lost,
	// and the caller sees the injected error.
	n := 0
	if budget > 0 {
		n, _ = ff.inner.Write(p[:budget])
	}
	return n, werr
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	serr := ff.fs.syncErr
	ff.fs.mu.Unlock()
	if serr != nil {
		return serr
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
