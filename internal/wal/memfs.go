package wal

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS for tests. Beyond being hermetic, it models
// the one property a durability test needs from a disk: every file tracks
// how much of it has been fsynced, and Crash drops everything that has
// not — a power-cut simulation at byte granularity.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	data   []byte
	synced int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// MkdirAll implements FS (directories are implicit in MemFS).
func (fs *MemFS) MkdirAll(string) error { return nil }

// ReadDir implements FS.
func (fs *MemFS) ReadDir(dir string) ([]string, error) {
	prefix := filepath.Clean(dir) + string(filepath.Separator)
	fs.mu.Lock()
	var names []string
	for name := range fs.files {
		names = append(names, name)
	}
	fs.mu.Unlock()
	sort.Strings(names)
	out := make([]string, 0, len(names))
	for _, name := range names {
		if rest, ok := strings.CutPrefix(name, prefix); ok && !strings.ContainsRune(rest, filepath.Separator) {
			out = append(out, rest)
		}
	}
	return out, nil
}

// Create implements FS: the file starts empty and fully unsynced.
func (fs *MemFS) Create(name string) (File, error) {
	name = filepath.Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &memFile{}
	fs.files[name] = f
	return &memHandle{fs: fs, file: f, write: true}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	name = filepath.Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: no such file", name)
	}
	return &memHandle{fs: fs, file: f}, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	name = filepath.Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("memfs: remove %s: no such file", name)
	}
	delete(fs.files, name)
	return nil
}

// Truncate implements FS.
func (fs *MemFS) Truncate(name string, size int64) error {
	name = filepath.Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("memfs: truncate %s: no such file", name)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("memfs: truncate %s to %d: outside [0, %d]", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// Crash simulates a power cut: every file loses the bytes written since
// its last Sync, and files never synced at all disappear (their directory
// entry was never durable either). Open handles keep working against the
// surviving bytes, but a recovery test should reopen the log instead.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var names []string
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fs.files[name]
		if f.synced == 0 {
			delete(fs.files, name)
			continue
		}
		f.data = f.data[:f.synced]
	}
}

// ReadFile returns a copy of name's current content (synced or not).
func (fs *MemFS) ReadFile(name string) ([]byte, bool) {
	name = filepath.Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// WriteFile installs name with the given content, fully synced — the
// building block for reconstructing truncated-at-offset-k filesystems in
// the torn-write sweep.
func (fs *MemFS) WriteFile(name string, data []byte) {
	name = filepath.Clean(name)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = &memFile{data: append([]byte(nil), data...), synced: len(data)}
}

// Clone deep-copies the filesystem, so a test can branch one recorded
// run into many truncation variants.
func (fs *MemFS) Clone() *MemFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := NewMemFS()
	for name, f := range fs.files {
		out.files[name] = &memFile{data: append([]byte(nil), f.data...), synced: f.synced}
	}
	return out
}

// memHandle is one open MemFS file: reads advance a private offset,
// writes append under the filesystem lock.
type memHandle struct {
	fs     *MemFS
	file   *memFile
	off    int
	write  bool
	closed bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("memfs: read on closed file")
	}
	if h.off >= len(h.file.data) {
		return 0, io.EOF
	}
	n := copy(p, h.file.data[h.off:])
	h.off += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed || !h.write {
		return 0, fmt.Errorf("memfs: write on closed or read-only file")
	}
	h.file.data = append(h.file.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fmt.Errorf("memfs: sync on closed file")
	}
	h.file.synced = len(h.file.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
