// Package wal is the campaign runtime's durability layer: an append-only,
// length-prefixed, CRC32C-checksummed binary event log with group commit.
// Writers enqueue records from any goroutine; a single committer goroutine
// batches them per fsync window (configurable bytes/interval), so the
// quote hot path never waits on a disk flush. Segments rotate at a size
// threshold and are periodically compacted into a snapshot record plus a
// truncated tail; recovery tolerates torn or partial trailing writes by
// truncating the final segment at the first bad frame.
//
// The package stores opaque (type, payload) records — the campaign event
// schema (create/observe/finish/expire/snapshot) lives in
// internal/campaign, which folds a replayed log back into live state via
// the engine's deterministic re-solve.
//
// Because this log guards real money-losing state, the test seam is
// first-class: the FS interface below abstracts the filesystem, and the
// package ships MemFS (an in-memory filesystem that tracks the synced
// prefix of every file and can simulate a power cut by dropping unsynced
// bytes) and FaultFS (byte-budgeted write-error and torn-write injection)
// so crash-recovery properties are tested at every byte offset, not just
// on the happy path.
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS abstracts the filesystem under the log: the production DirFS, the
// in-memory MemFS, and the fault-injecting FaultFS all implement it.
// Paths passed in are full paths (the log joins its directory itself).
type FS interface {
	// MkdirAll ensures dir exists.
	MkdirAll(dir string) error
	// ReadDir lists dir's file names (base names, sorted ascending).
	ReadDir(dir string) ([]string, error)
	// Create opens name fresh for appending, truncating any previous
	// content. The log only ever appends through a Create handle.
	Create(name string) (File, error)
	// Open opens name read-only, positioned at the start.
	Open(name string) (File, error)
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes — recovery uses it to drop a torn
	// tail.
	Truncate(name string, size int64) error
}

// File is one open log segment: sequential reads or appends plus Sync,
// the durability barrier group commit batches around.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes written bytes to stable storage.
	Sync() error
}

// DirFS is the production FS: the real filesystem via package os.
type DirFS struct{}

// MkdirAll implements FS.
func (DirFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS.
func (DirFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Create implements FS.
func (DirFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// Open implements FS.
func (DirFS) Open(name string) (File, error) { return os.Open(name) }

// Remove implements FS.
func (DirFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (DirFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// join builds a path inside the log directory.
func join(dir, name string) string { return filepath.Join(dir, name) }
