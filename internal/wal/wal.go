package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Options zero values.
const (
	// DefaultSyncInterval is the group-commit window: the longest a
	// buffered record waits before its fsync.
	DefaultSyncInterval = 5 * time.Millisecond
	// DefaultSyncBytes flushes early once this many framed bytes are
	// buffered, bounding the data at risk under heavy write load.
	DefaultSyncBytes = 256 << 10
	// DefaultSegmentBytes seals the active segment past this size.
	DefaultSegmentBytes = 64 << 20
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Options configures Open. The zero value is production-ready except for
// compaction, which needs a SnapshotFn.
type Options struct {
	// SyncInterval is the group-commit fsync window (0 =
	// DefaultSyncInterval). Records appended within one window share one
	// fsync; a crash loses at most one window of acknowledged appends.
	SyncInterval time.Duration
	// SyncBytes flushes before the window elapses once this many framed
	// bytes are buffered (0 = DefaultSyncBytes).
	SyncBytes int
	// SegmentBytes seals the active segment once it grows past this size
	// (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// CompactBytes triggers compaction once sealed segments exceed this
	// many bytes (0 = 4×SegmentBytes). Compaction requires SnapshotFn.
	CompactBytes int64
	// SnapshotFn produces the compaction payload: a self-contained state
	// snapshot written as one record (of SnapshotType) at the head of a
	// fresh segment, after which all older segments are deleted. It is
	// called from the committer goroutine and must not call back into the
	// log. Nil disables compaction.
	SnapshotFn func() ([]byte, error)
	// SnapshotType is the record type byte SnapshotFn's payload is
	// written under.
	SnapshotType byte
	// FS is the filesystem seam (nil = DirFS{}, the real filesystem).
	FS FS
	// Now supplies wall time for the compaction-timestamp metric (nil =
	// time.Now).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.SyncBytes <= 0 {
		o.SyncBytes = DefaultSyncBytes
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 4 * o.SegmentBytes
	}
	if o.FS == nil {
		o.FS = DirFS{}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Log is an open write-ahead log. Append is safe for arbitrary concurrent
// use; one committer goroutine owns the files. Close with Close.
//
// Failure model: the first write or fsync error marks the log failed and
// every later Append/Sync returns that error — fail-stop, because
// acknowledging appends a broken log can no longer persist would turn a
// disk fault into silent data loss. Records buffered inside the current
// group-commit window when the fault (or a crash) hits are lost; that
// window is the documented durability lag.
type Log struct {
	dir  string
	fsys FS
	opts Options

	mu       sync.Mutex
	buf      []byte
	nextLSN  uint64
	appends  int64
	bytes    int64
	err      error
	closed   bool
	appended bool

	kick      chan struct{}
	reqs      chan walReq
	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	// Committer-owned file state (no lock needed: single goroutine).
	active      File
	activeSeq   int64
	activeSize  int64
	sealedBytes int64

	fsyncs           atomic.Int64
	segments         atomic.Int64
	compactions      atomic.Int64
	lastCompactNanos atomic.Int64
	replayNanos      atomic.Int64
	recoveredRecords int64
	truncatedBytes   int64
}

type walReq struct {
	compact bool
	done    chan error
}

// Open recovers the log at dir and starts its committer. Recovery scans
// every segment, truncates the final segment at the first bad frame (the
// torn tail of a crash mid-write; damage anywhere else is an error), and
// resumes the LSN sequence past the highest recovered record. Appends go
// to a fresh segment; recovered segments are never appended to again.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	report, err := Scan(fsys, dir, nil)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:              dir,
		fsys:             fsys,
		opts:             opts,
		nextLSN:          report.MaxLSN + 1,
		kick:             make(chan struct{}, 1),
		reqs:             make(chan walReq),
		quit:             make(chan struct{}),
		done:             make(chan struct{}),
		recoveredRecords: report.Records,
	}
	if t := report.Torn; t != nil {
		l.truncatedBytes = t.Bytes
		if t.Offset < headerSize {
			// The final segment's own header never became durable: the
			// whole file is residue, drop it.
			if err := fsys.Remove(join(dir, t.Name)); err != nil {
				return nil, fmt.Errorf("wal: dropping torn segment %s: %w", t.Name, err)
			}
			report.Segments = report.Segments[:len(report.Segments)-1]
		} else if err := fsys.Truncate(join(dir, t.Name), t.Offset); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", t.Name, err)
		}
	}
	for _, sg := range report.Segments {
		if sg.Seq > l.activeSeq {
			l.activeSeq = sg.Seq
		}
		l.sealedBytes += sg.Size
	}
	l.segments.Store(int64(len(report.Segments)))
	go l.committer()
	return l, nil
}

// Replay streams every recovered record to fn in log order. It must be
// called before the first Append (boot-time replay precedes serving).
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	appended := l.appended
	l.mu.Unlock()
	if appended {
		return errors.New("wal: Replay must run before the first Append")
	}
	_, err := Scan(l.fsys, l.dir, func(rec Record, _ FramePos) error { return fn(rec) })
	return err
}

// Append enqueues one record and returns its LSN. The record is durable
// after the current group-commit window's fsync — at most
// SyncInterval later, sooner once SyncBytes accumulate — without Append
// ever blocking on the disk.
func (l *Log) Append(typ byte, data []byte) (uint64, error) {
	if len(data) > maxRecordBytes-framePrefixSize {
		return 0, fmt.Errorf("wal: %d-byte record exceeds the %d-byte limit", len(data), maxRecordBytes-framePrefixSize)
	}
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	lsn := l.nextLSN
	l.nextLSN++
	l.buf = appendFrame(l.buf, Record{LSN: lsn, Type: typ, Data: data})
	l.appends++
	l.bytes += int64(frameLen(len(data)))
	l.appended = true
	full := len(l.buf) >= l.opts.SyncBytes
	l.mu.Unlock()
	if full {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return lsn, nil
}

// Sync flushes and fsyncs everything appended so far, returning the
// log's sticky error if the flush (or any earlier one) failed.
func (l *Log) Sync() error { return l.request(walReq{done: make(chan error, 1)}) }

// Compact flushes, then forces a compaction cycle: SnapshotFn's payload
// is written as the head record of a fresh segment and all older segments
// are deleted. No-op error if no SnapshotFn is configured.
func (l *Log) Compact() error {
	if l.opts.SnapshotFn == nil {
		return errors.New("wal: Compact requires Options.SnapshotFn")
	}
	return l.request(walReq{compact: true, done: make(chan error, 1)})
}

func (l *Log) request(req walReq) error {
	select {
	case l.reqs <- req:
	case <-l.done:
		return ErrClosed
	}
	select {
	case err := <-req.done:
		return err
	case <-l.done:
		return ErrClosed
	}
}

// Close flushes pending records, fsyncs, stops the committer, and closes
// the active segment. It returns the log's sticky error, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.closeOnce.Do(func() { close(l.quit) })
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// SetReplayDuration records how long boot-time replay took, for the
// wal_replay_seconds gauge (the caller measures: replay cost is dominated
// by the state rebuild outside this package).
func (l *Log) SetReplayDuration(d time.Duration) { l.replayNanos.Store(int64(d)) }

// Metrics is a point-in-time read of the log's observability surface.
type Metrics struct {
	// Appends counts records accepted; Bytes their framed size; Fsyncs
	// the group-commit flushes that carried them to stable storage.
	Appends int64
	Fsyncs  int64
	Bytes   int64
	// Segments is the current segment-file count; Compactions the
	// lifetime compaction count.
	Segments    int64
	Compactions int64
	// NextLSN is the next sequence number to be assigned.
	NextLSN uint64
	// RecoveredRecords and TruncatedBytes describe the last Open: intact
	// records replayable, and torn trailing bytes cut.
	RecoveredRecords int64
	TruncatedBytes   int64
	// ReplaySeconds is the boot-time replay wall time (see
	// SetReplayDuration); LastCompactionUnixSeconds the wall time of the
	// last compaction (0 = never).
	ReplaySeconds             float64
	LastCompactionUnixSeconds float64
	// Failed reports the fail-stop state: a write or fsync error has
	// stuck and every append is being refused.
	Failed bool
}

// Metrics returns current counter and gauge values.
func (l *Log) Metrics() Metrics {
	l.mu.Lock()
	m := Metrics{
		Appends:          l.appends,
		Bytes:            l.bytes,
		NextLSN:          l.nextLSN,
		RecoveredRecords: l.recoveredRecords,
		TruncatedBytes:   l.truncatedBytes,
		Failed:           l.err != nil,
	}
	l.mu.Unlock()
	m.Fsyncs = l.fsyncs.Load()
	m.Segments = l.segments.Load()
	m.Compactions = l.compactions.Load()
	m.ReplaySeconds = time.Duration(l.replayNanos.Load()).Seconds()
	if ns := l.lastCompactNanos.Load(); ns != 0 {
		m.LastCompactionUnixSeconds = float64(ns) / 1e9
	}
	return m
}

// Err returns the sticky failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// committer is the single goroutine that owns the segment files: it
// drains the append buffer on each group-commit window (or earlier on a
// SyncBytes kick or an explicit Sync), rotates segments, and compacts.
func (l *Log) committer() {
	defer close(l.done)
	ticker := time.NewTicker(l.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.quit:
			l.flush()
			if l.active != nil {
				l.active.Close()
				l.active = nil
			}
			return
		case <-l.kick:
			l.flush()
		case req := <-l.reqs:
			err := l.flush()
			if err == nil && req.compact {
				err = l.compact()
			}
			req.done <- err
		case <-ticker.C:
			l.flush()
		}
	}
}

// flush writes and fsyncs the buffered batch, then applies the rotation
// and compaction policies. Committer goroutine only.
func (l *Log) flush() error {
	l.mu.Lock()
	batch := l.buf
	l.buf = nil
	err := l.err
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if len(batch) == 0 {
		return nil
	}
	if err := l.writeBatch(batch); err != nil {
		l.stick(err)
		return err
	}
	if l.activeSize >= l.opts.SegmentBytes {
		l.seal()
	}
	if l.opts.SnapshotFn != nil && l.sealedBytes >= l.opts.CompactBytes {
		if err := l.compact(); err != nil {
			return err
		}
	}
	return nil
}

// writeBatch appends one encoded batch to the active segment and fsyncs.
func (l *Log) writeBatch(batch []byte) error {
	if l.active == nil {
		if err := l.openSegment(l.activeSeq + 1); err != nil {
			return err
		}
	}
	n, err := l.active.Write(batch)
	l.activeSize += int64(n)
	if err != nil {
		return fmt.Errorf("wal: writing segment %d: %w", l.activeSeq, err)
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsyncing segment %d: %w", l.activeSeq, err)
	}
	l.fsyncs.Add(1)
	return nil
}

// openSegment creates segment seq with a synced header and makes it
// active.
func (l *Log) openSegment(seq int64) error {
	f, err := l.fsys.Create(join(l.dir, segmentName(seq)))
	if err != nil {
		return fmt.Errorf("wal: creating segment %d: %w", seq, err)
	}
	if _, err := f.Write(encodeHeader()); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment %d header: %w", seq, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: fsyncing segment %d header: %w", seq, err)
	}
	l.fsyncs.Add(1)
	l.active = f
	l.activeSeq = seq
	l.activeSize = headerSize
	l.segments.Add(1)
	return nil
}

// seal closes the active segment; the next write opens the successor.
func (l *Log) seal() {
	if l.active == nil {
		return
	}
	l.active.Close()
	l.active = nil
	l.sealedBytes += l.activeSize
	l.activeSize = 0
}

// compact folds the log: take a state snapshot, start a fresh segment
// whose first record is that snapshot, move any records buffered
// meanwhile behind it, fsync, and delete every older segment.
//
// Correctness leans on two facts. First, flush and compact both run only
// on the committer goroutine, so every record already written to the old
// segments was appended — and therefore applied to the snapshotted state
// — before SnapshotFn ran; deleting those segments loses nothing.
// Second, records buffered during SnapshotFn may land after the snapshot
// record while carrying smaller LSNs; the replaying layer resolves that
// with per-entity LSN high-water marks in the snapshot (events at or
// below the mark are already folded in and are skipped).
func (l *Log) compact() error {
	snap, err := l.opts.SnapshotFn()
	if err != nil {
		// A failed snapshot skips this cycle; the log keeps appending and
		// the next threshold crossing (or explicit Compact) retries.
		return fmt.Errorf("wal: compaction snapshot: %w", err)
	}
	l.mu.Lock()
	lsn := l.nextLSN
	l.nextLSN++
	batch := l.buf
	l.buf = nil
	l.appends++
	l.bytes += int64(frameLen(len(snap)))
	l.mu.Unlock()

	l.seal()
	if err := l.openSegment(l.activeSeq + 1); err != nil {
		l.stick(err)
		return err
	}
	frame := appendFrame(nil, Record{LSN: lsn, Type: l.opts.SnapshotType, Data: snap})
	frame = append(frame, batch...)
	if err := l.writeBatch(frame); err != nil {
		l.stick(err)
		return err
	}
	// The snapshot segment is durable: everything older is now redundant.
	// A failed delete is benign — replay applies the old events and then
	// the snapshot record resets state — so the next compaction retries.
	if names, err := l.fsys.ReadDir(l.dir); err == nil {
		for _, name := range names {
			if seq, ok := parseSegmentName(name); ok && seq < l.activeSeq {
				if l.fsys.Remove(join(l.dir, name)) == nil {
					l.segments.Add(-1)
				}
			}
		}
	}
	l.sealedBytes = 0
	l.compactions.Add(1)
	l.lastCompactNanos.Store(l.opts.Now().UnixNano())
	return nil
}

// stick records the first hard failure; all later appends fail fast.
func (l *Log) stick(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}
