package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// testOptions returns Options on fsys with the committer ticker effectively
// disabled, so tests drive every flush explicitly through Sync/Compact/Close
// and stay deterministic.
func testOptions(fsys FS) Options {
	return Options{
		SyncInterval: time.Hour,
		FS:           fsys,
	}
}

// collect replays l into a slice, copying Data out of the scan buffer.
func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(rec Record) error {
		out = append(out, Record{LSN: rec.LSN, Type: rec.Type, Data: append([]byte(nil), rec.Data...)})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func mustAppend(t *testing.T, l *Log, typ byte, data string) uint64 {
	t.Helper()
	lsn, err := l.Append(typ, []byte(data))
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	return lsn
}

func TestAppendReplayRoundtrip(t *testing.T) {
	fsys := NewMemFS()
	l, err := Open("wal", testOptions(fsys))
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{LSN: 1, Type: 1, Data: []byte(`{"id":"c1"}`)},
		{LSN: 2, Type: 2, Data: []byte(`{"id":"c1","arrivals":3}`)},
		{LSN: 3, Type: 2, Data: []byte{}},
	}
	for _, rec := range want {
		if got := mustAppend(t, l, rec.Type, string(rec.Data)); got != rec.LSN {
			t.Fatalf("append assigned lsn %d, want %d", got, rec.LSN)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re, err := Open("wal", testOptions(fsys))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	got := collect(t, re)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].LSN != want[i].LSN || got[i].Type != want[i].Type || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if m := re.Metrics(); m.RecoveredRecords != 3 || m.NextLSN != 4 || m.TruncatedBytes != 0 {
		t.Fatalf("recovery metrics %+v", m)
	}
	// The LSN sequence resumes past the recovered records.
	if lsn := mustAppend(t, re, 3, "x"); lsn != 4 {
		t.Fatalf("post-recovery append got lsn %d, want 4", lsn)
	}
}

func TestGroupCommitSharesOneFsync(t *testing.T) {
	fsys := NewMemFS()
	l, err := Open("wal", testOptions(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 100; i++ {
		mustAppend(t, l, 1, "payload")
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	// One fsync for the lazily created segment header, one for the whole
	// 100-record batch: that is the point of group commit.
	if m := l.Metrics(); m.Fsyncs != 2 || m.Appends != 100 {
		t.Fatalf("fsyncs=%d appends=%d, want 2 and 100", m.Fsyncs, m.Appends)
	}
}

func TestSyncBytesKicksEarly(t *testing.T) {
	fsys := NewMemFS()
	opts := testOptions(fsys)
	opts.SyncBytes = 32 // tiny: a couple of records cross it
	l, err := Open("wal", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		mustAppend(t, l, 1, "0123456789abcdef")
	}
	// The committer ticker is parked for an hour, so any durable bytes got
	// there via the SyncBytes kick alone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if l.Metrics().Fsyncs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SyncBytes overflow never triggered a flush")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSegmentRotation(t *testing.T) {
	fsys := NewMemFS()
	opts := testOptions(fsys)
	opts.SegmentBytes = 1 // seal after every flushed batch
	l, err := Open("wal", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		mustAppend(t, l, 1, fmt.Sprintf("record-%d", i))
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	report, err := Scan(fsys, "wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Segments) != 3 || report.Records != 3 {
		t.Fatalf("got %d segments / %d records, want 3 / 3", len(report.Segments), report.Records)
	}
	// Reopen: replay crosses segment boundaries in order, and new appends
	// go to a fresh fourth segment, never a recovered one.
	re, err := Open("wal", testOptions(fsys))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, re)
	for i, rec := range got {
		if want := fmt.Sprintf("record-%d", i+1); string(rec.Data) != want || rec.LSN != uint64(i+1) {
			t.Fatalf("record %d = lsn %d %q, want lsn %d %q", i, rec.LSN, rec.Data, i+1, want)
		}
	}
	mustAppend(t, re, 1, "post")
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	report, err = Scan(fsys, "wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(report.Segments); n != 4 {
		t.Fatalf("post-recovery append created segment count %d, want 4", n)
	}
	if last := report.Segments[3]; last.Seq != 4 || last.Records != 1 {
		t.Fatalf("final segment %+v, want seq 4 with 1 record", last)
	}
}

func TestCompactReplacesHistoryWithSnapshot(t *testing.T) {
	fsys := NewMemFS()
	opts := testOptions(fsys)
	opts.SnapshotType = 9
	opts.SnapshotFn = func() ([]byte, error) { return []byte(`{"state":"folded"}`), nil }
	l, err := Open("wal", opts)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, "a")
	mustAppend(t, l, 1, "b")
	if err := l.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	mustAppend(t, l, 1, "c")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open("wal", testOptions(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := collect(t, re)
	// History a, b is folded into the snapshot; replay sees snapshot then c.
	if len(got) != 2 || got[0].Type != 9 || string(got[0].Data) != `{"state":"folded"}` || string(got[1].Data) != "c" {
		t.Fatalf("post-compaction replay = %+v", got)
	}
	report, err := Scan(fsys, "wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Compaction's segment plus Close-time flush of "c" into... the same
	// active segment, so exactly one file should remain.
	if len(report.Segments) != 1 {
		t.Fatalf("%d segments survive compaction, want 1", len(report.Segments))
	}
	if m := l.Metrics(); m.Compactions != 1 || m.LastCompactionUnixSeconds == 0 {
		t.Fatalf("compaction metrics %+v", m)
	}
}

func TestCompactionThresholdTriggers(t *testing.T) {
	fsys := NewMemFS()
	opts := testOptions(fsys)
	opts.SegmentBytes = 1
	opts.CompactBytes = 1
	opts.SnapshotType = 9
	opts.SnapshotFn = func() ([]byte, error) { return []byte("snap"), nil }
	l, err := Open("wal", opts)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, "a")
	if err := l.Sync(); err != nil { // flush → seal → sealedBytes ≥ 1 → compact
		t.Fatal(err)
	}
	if m := l.Metrics(); m.Compactions != 1 {
		t.Fatalf("threshold crossing ran %d compactions, want 1", m.Compactions)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactWithoutSnapshotFn(t *testing.T) {
	fsys := NewMemFS()
	l, err := Open("wal", testOptions(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Compact(); err == nil {
		t.Fatal("Compact without SnapshotFn did not error")
	}
}

func TestSnapshotFnErrorSkipsCycleNotSticky(t *testing.T) {
	fsys := NewMemFS()
	opts := testOptions(fsys)
	boom := errors.New("state busy")
	opts.SnapshotFn = func() ([]byte, error) { return nil, boom }
	l, err := Open("wal", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, 1, "a")
	if err := l.Compact(); !errors.Is(err, boom) {
		t.Fatalf("Compact error = %v, want wrapped %v", err, boom)
	}
	// The failure is not sticky: appends keep working.
	if _, err := l.Append(1, []byte("b")); err != nil {
		t.Fatalf("append after failed compaction: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync after failed compaction: %v", err)
	}
}

// TestTornTailTruncation cuts the (only) segment at every byte offset
// inside its final frame and checks recovery truncates exactly there,
// replays the intact prefix, and keeps accepting appends.
func TestTornTailTruncation(t *testing.T) {
	master := NewMemFS()
	l, err := Open("wal", testOptions(master))
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, "first-record")
	mustAppend(t, l, 2, "second-record")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	name := join("wal", segmentName(1))
	full, ok := master.ReadFile(name)
	if !ok {
		t.Fatalf("segment %s missing", name)
	}
	lastFrame := frameLen(len("second-record"))
	intact := len(full) - lastFrame

	for cut := intact + 1; cut < len(full); cut++ {
		fsys := NewMemFS()
		fsys.WriteFile(name, full[:cut])
		re, err := Open("wal", testOptions(fsys))
		if err != nil {
			t.Fatalf("cut %d: recovery refused to start: %v", cut, err)
		}
		if m := re.Metrics(); m.RecoveredRecords != 1 || m.TruncatedBytes != int64(cut-intact) {
			t.Fatalf("cut %d: metrics %+v, want 1 record and %d truncated bytes", cut, m, cut-intact)
		}
		got := collect(t, re)
		if len(got) != 1 || string(got[0].Data) != "first-record" {
			t.Fatalf("cut %d: replayed %+v", cut, got)
		}
		// The truncation is physical, and the log keeps working.
		if data, _ := fsys.ReadFile(name); len(data) != intact {
			t.Fatalf("cut %d: segment is %d bytes after recovery, want %d", cut, len(data), intact)
		}
		if lsn := mustAppend(t, re, 3, "after-crash"); lsn != 2 {
			t.Fatalf("cut %d: post-recovery lsn %d, want 2 (torn record's lsn is reusable)", cut, lsn)
		}
		if err := re.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestTornHeaderDropsSegment cuts a final segment inside its 16-byte
// header: the whole file is residue of a crash between Create and the
// header fsync, and recovery removes it.
func TestTornHeaderDropsSegment(t *testing.T) {
	master := NewMemFS()
	opts := testOptions(master)
	opts.SegmentBytes = 1
	l, err := Open("wal", opts)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, "kept")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, "doomed")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	second := join("wal", segmentName(2))
	data, ok := master.ReadFile(second)
	if !ok {
		t.Fatalf("segment 2 missing")
	}
	for cut := 0; cut < headerSize; cut++ {
		fsys := master.Clone()
		fsys.WriteFile(second, data[:cut])
		re, err := Open("wal", testOptions(fsys))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := collect(t, re); len(got) != 1 || string(got[0].Data) != "kept" {
			t.Fatalf("cut %d: replayed %+v", cut, got)
		}
		if _, exists := fsys.ReadFile(second); exists {
			t.Fatalf("cut %d: torn-header segment still on disk", cut)
		}
		re.Close()
	}
}

func TestCorruptionBeforeFinalSegmentFailsOpen(t *testing.T) {
	fsys := NewMemFS()
	opts := testOptions(fsys)
	opts.SegmentBytes = 1
	l, err := Open("wal", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		mustAppend(t, l, 1, "record")
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	first := join("wal", segmentName(1))
	data, _ := fsys.ReadFile(first)
	data[len(data)-1] ^= 0xff // flip a payload byte: CRC now fails
	fsys.WriteFile(first, data)
	if _, err := Open("wal", testOptions(fsys)); err == nil {
		t.Fatal("Open accepted corruption in a non-final segment")
	}
}

func TestWriteErrorIsSticky(t *testing.T) {
	boom := errors.New("disk gone")
	fault := NewFaultFS(NewMemFS())
	l, err := Open("wal", testOptions(fault))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, 1, "ok")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	fault.FailWritesAfter(0, boom)
	mustAppend(t, l, 1, "lost")
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync after write fault = %v, want %v", err, boom)
	}
	// Fail-stop: the fault outlives the batch that hit it.
	if _, err := l.Append(1, []byte("refused")); !errors.Is(err, boom) {
		t.Fatalf("append on failed log = %v, want sticky %v", err, boom)
	}
	if !l.Metrics().Failed {
		t.Fatal("Metrics().Failed = false on a failed log")
	}
}

func TestShortWriteIsTornNotSilent(t *testing.T) {
	boom := errors.New("power sagging")
	mem := NewMemFS()
	fault := NewFaultFS(mem)
	l, err := Open("wal", testOptions(fault))
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, "committed")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Allow 5 more bytes: the next batch tears mid-frame.
	fault.FailWritesAfter(5, boom)
	mustAppend(t, l, 1, "torn-record")
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync = %v, want %v", err, boom)
	}
	l.Close()
	// Recovery on the underlying filesystem sees the 5 stray bytes and
	// truncates them; the committed record survives.
	re, err := Open("wal", testOptions(mem))
	if err != nil {
		t.Fatalf("recovery after torn write: %v", err)
	}
	defer re.Close()
	if got := collect(t, re); len(got) != 1 || string(got[0].Data) != "committed" {
		t.Fatalf("replay after torn write = %+v", got)
	}
	if m := re.Metrics(); m.TruncatedBytes != 5 {
		t.Fatalf("TruncatedBytes = %d, want 5", m.TruncatedBytes)
	}
}

func TestSyncErrorIsSticky(t *testing.T) {
	boom := errors.New("fsync eio")
	fault := NewFaultFS(NewMemFS())
	l, err := Open("wal", testOptions(fault))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fault.FailSyncs(boom)
	mustAppend(t, l, 1, "x")
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync = %v, want %v", err, boom)
	}
	fault.Clear()
	// Clearing the injected fault must NOT revive the log: after one failed
	// fsync the durable prefix is unknown, so the log stays failed.
	if _, err := l.Append(1, []byte("y")); !errors.Is(err, boom) {
		t.Fatalf("append after cleared fault = %v, want sticky %v", err, boom)
	}
}

// TestPowerCutLosesOnlyUnsyncedBytes drives MemFS.Crash: bytes written but
// never fsynced vanish, and recovery restores exactly the synced prefix.
func TestPowerCutLosesOnlyUnsyncedBytes(t *testing.T) {
	mem := NewMemFS()
	fault := NewFaultFS(mem)
	l, err := Open("wal", testOptions(fault))
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, "durable")
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// The next batch reaches the file but its fsync fails — written, not
	// durable. The power cut then drops it.
	fault.FailSyncs(errors.New("eio"))
	mustAppend(t, l, 1, "in-flight")
	if err := l.Sync(); err == nil {
		t.Fatal("faulted fsync reported success")
	}
	mem.Crash()
	re, err := Open("wal", testOptions(NewFaultFS(mem)))
	if err != nil {
		t.Fatalf("recovery after power cut: %v", err)
	}
	defer re.Close()
	if got := collect(t, re); len(got) != 1 || string(got[0].Data) != "durable" {
		t.Fatalf("replay after power cut = %+v", got)
	}
	// After the crash the file ends exactly at the synced prefix: no torn
	// bytes for recovery to truncate.
	if m := re.Metrics(); m.TruncatedBytes != 0 {
		t.Fatalf("TruncatedBytes = %d, want 0", m.TruncatedBytes)
	}
}

func TestCrashDropsNeverSyncedSegment(t *testing.T) {
	mem := NewMemFS()
	f, err := mem.Create("wal/wal-00000001.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half a header")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	mem.Crash()
	if _, ok := mem.ReadFile("wal/wal-00000001.log"); ok {
		t.Fatal("never-synced file survived the crash")
	}
}

func TestAppendAfterCloseAndLimits(t *testing.T) {
	fsys := NewMemFS()
	l, err := Open("wal", testOptions(fsys))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, make([]byte, maxRecordBytes)); err == nil {
		t.Fatal("oversized record accepted")
	}
	mustAppend(t, l, 1, "x")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := l.Replay(func(Record) error { return nil }); err == nil {
		t.Fatal("Replay after Append did not error")
	}
}

func TestReaderMatchesRecovery(t *testing.T) {
	fsys := NewMemFS()
	l, err := Open("wal", testOptions(fsys))
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 1, "a")
	mustAppend(t, l, 2, "b")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	name := join("wal", segmentName(1))
	full, _ := fsys.ReadFile(name)
	fsys.WriteFile(name, full[:len(full)-1]) // tear the last frame
	var types []byte
	if err := NewReader(fsys, "wal").Replay(func(rec Record) error {
		types = append(types, rec.Type)
		return nil
	}); err != nil {
		t.Fatalf("reader replay: %v", err)
	}
	if len(types) != 1 || types[0] != 1 {
		t.Fatalf("reader replayed types %v, want [1]", types)
	}
	// Reader never repairs: the torn byte is still there.
	if data, _ := fsys.ReadFile(name); len(data) != len(full)-1 {
		t.Fatal("Reader modified the log directory")
	}
}
