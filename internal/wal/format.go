package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout. A segment file is a 16-byte header followed by frames:
//
//	header:  magic "CPWALSEG" (8) | version uint32 LE | reserved uint32 LE
//	frame:   length uint32 LE | crc32c uint32 LE | payload (length bytes)
//	payload: type byte | lsn uint64 LE | data (length-9 bytes)
//
// The CRC (Castagnoli polynomial) covers the whole payload, so a torn
// write — a frame whose tail never reached the platter — fails either the
// length bound or the checksum and recovery truncates the segment there.
const (
	magic           = "CPWALSEG"
	formatVersion   = 1
	headerSize      = 16
	frameHeaderSize = 8
	framePrefixSize = 9 // type byte + LSN inside the payload

	// maxRecordBytes bounds a single record (a compaction snapshot of a
	// full campaign table is the largest) and, more importantly, bounds
	// how far the decoder trusts a length field read from garbage.
	maxRecordBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one log entry: an opaque payload tagged with a caller-defined
// type byte and the log sequence number assigned at append time.
type Record struct {
	LSN  uint64
	Type byte
	// Data is the record payload. Decoded records alias the scan buffer;
	// copy Data if it is retained past the callback.
	Data []byte
}

// Decode failure modes: a truncated frame may simply be the torn tail of
// the final segment (recovery cuts there); a bad frame failed a
// validation that more bytes would not fix.
var (
	errTruncatedFrame = errors.New("wal: truncated frame")
	errBadFrame       = errors.New("wal: bad frame")
)

// frameLen returns the encoded size of a record with n payload-data bytes.
func frameLen(n int) int { return frameHeaderSize + framePrefixSize + n }

// appendFrame encodes rec onto dst.
func appendFrame(dst []byte, rec Record) []byte {
	payloadLen := framePrefixSize + len(rec.Data)
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	start := len(dst)
	dst = append(dst, hdr[:]...)
	dst = append(dst, rec.Type)
	var lsn [8]byte
	binary.LittleEndian.PutUint64(lsn[:], rec.LSN)
	dst = append(dst, lsn[:]...)
	dst = append(dst, rec.Data...)
	crc := crc32.Checksum(dst[start+frameHeaderSize:], castagnoli)
	binary.LittleEndian.PutUint32(dst[start+4:start+8], crc)
	return dst
}

// readRecord decodes the frame at the start of b, returning the record
// and the number of bytes consumed. It never panics and never reads past
// len(b): a short buffer yields errTruncatedFrame, an implausible length
// or checksum mismatch yields errBadFrame. rec.Data aliases b.
func readRecord(b []byte) (rec Record, n int, err error) {
	if len(b) < frameHeaderSize {
		return Record{}, 0, errTruncatedFrame
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length < framePrefixSize || length > maxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: payload length %d outside [%d, %d]",
			errBadFrame, length, framePrefixSize, maxRecordBytes)
	}
	total := frameHeaderSize + int(length)
	if len(b) < total {
		return Record{}, 0, errTruncatedFrame
	}
	payload := b[frameHeaderSize:total]
	want := binary.LittleEndian.Uint32(b[4:8])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch (want %08x, got %08x)", errBadFrame, want, got)
	}
	return Record{
		Type: payload[0],
		LSN:  binary.LittleEndian.Uint64(payload[1:9]),
		Data: payload[framePrefixSize:],
	}, total, nil
}

// encodeHeader renders a segment header.
func encodeHeader() []byte {
	h := make([]byte, headerSize)
	copy(h, magic)
	binary.LittleEndian.PutUint32(h[8:12], formatVersion)
	return h
}

// checkHeader validates a segment header prefix.
func checkHeader(b []byte) error {
	if len(b) < headerSize {
		return fmt.Errorf("%w: %d-byte segment header, want %d", errTruncatedFrame, len(b), headerSize)
	}
	if string(b[:len(magic)]) != magic {
		return fmt.Errorf("%w: bad segment magic %q", errBadFrame, b[:len(magic)])
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != formatVersion {
		return fmt.Errorf("wal: segment format version %d, this binary expects %d", v, formatVersion)
	}
	return nil
}

// segmentName renders the file name of segment seq.
func segmentName(seq int64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (int64, bool) {
	rest, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	digits, ok := strings.CutSuffix(rest, ".log")
	if !ok || len(digits) < 8 {
		return 0, false
	}
	seq, err := strconv.ParseInt(digits, 10, 64)
	if err != nil || seq <= 0 {
		return 0, false
	}
	return seq, true
}

// FramePos locates a record inside the log.
type FramePos struct {
	// Segment is the segment sequence number; Offset/End are the frame's
	// byte bounds inside that segment file.
	Segment int64
	Offset  int64
	End     int64
}

// SegmentInfo summarizes one scanned segment.
type SegmentInfo struct {
	Seq     int64
	Name    string
	Size    int64 // bytes of valid content (header + whole frames)
	Records int64
}

// TornTail describes invalid trailing bytes found in the final segment:
// the expected residue of a crash mid-write. Offset is the length of the
// valid prefix; recovery truncates the file there.
type TornTail struct {
	Segment int64
	Name    string
	Offset  int64
	Bytes   int64
	Reason  string
}

// ScanReport is the outcome of one pass over a log directory.
type ScanReport struct {
	Segments []SegmentInfo
	Records  int64
	MaxLSN   uint64
	Torn     *TornTail
}

// Scan reads every record in dir's segments in file order, invoking fn
// (which may be nil) for each. It is tolerant exactly where a crash can
// leave damage — invalid bytes at the tail of the final segment are
// reported in the ScanReport, not treated as an error — and strict
// everywhere else: a bad frame in a non-final segment means real
// corruption and fails the scan. Scan never modifies the directory.
func Scan(fsys FS, dir string, fn func(Record, FramePos) error) (*ScanReport, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	type seg struct {
		seq  int64
		name string
	}
	var segs []seg
	for _, name := range names {
		if seq, ok := parseSegmentName(name); ok {
			segs = append(segs, seg{seq, name})
		}
	}
	// ReadDir's lexicographic order matches sequence order for zero-padded
	// names; keep it explicit so 9-digit sequences stay correct too.
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })

	report := &ScanReport{}
	for i, sg := range segs {
		final := i == len(segs)-1
		data, err := readAll(fsys, join(dir, sg.name))
		if err != nil {
			return nil, fmt.Errorf("wal: reading %s: %w", sg.name, err)
		}
		info := SegmentInfo{Seq: sg.seq, Name: sg.name}
		if err := checkHeader(data); err != nil {
			if !final {
				return nil, fmt.Errorf("wal: segment %s: %v (corruption before the final segment)", sg.name, err)
			}
			report.Torn = &TornTail{Segment: sg.seq, Name: sg.name, Offset: 0,
				Bytes: int64(len(data)), Reason: err.Error()}
			report.Segments = append(report.Segments, info)
			return report, nil
		}
		off := headerSize
		for off < len(data) {
			rec, n, err := readRecord(data[off:])
			if err != nil {
				if !final {
					return nil, fmt.Errorf("wal: segment %s offset %d: %v (corruption before the final segment)", sg.name, off, err)
				}
				report.Torn = &TornTail{Segment: sg.seq, Name: sg.name, Offset: int64(off),
					Bytes: int64(len(data) - off), Reason: err.Error()}
				break
			}
			if fn != nil {
				if err := fn(rec, FramePos{Segment: sg.seq, Offset: int64(off), End: int64(off + n)}); err != nil {
					return nil, err
				}
			}
			info.Records++
			report.Records++
			if rec.LSN > report.MaxLSN {
				report.MaxLSN = rec.LSN
			}
			off += n
		}
		if report.Torn != nil {
			info.Size = report.Torn.Offset
		} else {
			info.Size = int64(off)
		}
		report.Segments = append(report.Segments, info)
	}
	return report, nil
}

// readAll slurps one file through the FS seam.
func readAll(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Reader replays a log directory read-only: no recovery truncation, no
// new segment files — the inspection path cmd/waldump uses. It tolerates
// a torn tail exactly like Open, by stopping in front of it.
type Reader struct {
	fsys FS
	dir  string
}

// NewReader wraps dir on fsys (nil = the real filesystem).
func NewReader(fsys FS, dir string) *Reader {
	if fsys == nil {
		fsys = DirFS{}
	}
	return &Reader{fsys: fsys, dir: dir}
}

// Replay streams every intact record to fn in log order.
func (r *Reader) Replay(fn func(Record) error) error {
	_, err := Scan(r.fsys, r.dir, func(rec Record, _ FramePos) error { return fn(rec) })
	return err
}
