package wal

import (
	"bytes"
	"testing"
)

// FuzzReadRecord hammers the frame decoder with arbitrary bytes. The
// decoder is the recovery path's trust boundary — it reads length fields
// out of possibly-torn, possibly-garbage disk contents — so it must never
// panic, never report more bytes consumed than exist, and anything it does
// accept must re-encode to exactly the bytes it decoded.
func FuzzReadRecord(f *testing.F) {
	// Seed the obvious shapes: empty, a valid frame, a valid frame with a
	// flipped payload byte, truncations, and hostile length fields.
	valid := appendFrame(nil, Record{LSN: 42, Type: 2, Data: []byte(`{"id":"c000041","arrivals":3.5}`)})
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:frameHeaderSize])
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)
	f.Add(append(append([]byte(nil), valid...), valid...))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})            // length 4 GiB
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})                        // length 0 < prefix
	f.Add(appendFrame(nil, Record{LSN: 0, Type: 0, Data: nil}))  // minimal frame
	f.Add(appendFrame(nil, Record{LSN: ^uint64(0), Type: 0xff})) // extreme field values

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := readRecord(b)
		if n < 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v yet consumed %d bytes", err, n)
			}
			return
		}
		if n < frameHeaderSize+framePrefixSize {
			t.Fatalf("accepted a %d-byte frame, minimum is %d", n, frameHeaderSize+framePrefixSize)
		}
		// Round-trip: a frame the decoder accepts is exactly what the
		// encoder would have produced for that record.
		if re := appendFrame(nil, rec); !bytes.Equal(re, b[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, b[:n])
		}
	})
}
