package filter_test

import (
	"testing"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/filter"
)

// TestFilterPlugsIntoPricing wires a synthesized quality-control strategy
// into the Section 6 pricing integration: the filtering strategy sets the
// per-task worst-case question load, the deadline MDP prices the inflated
// question count, and the running plan tracks the load as tasks move across
// the grid.
func TestFilterPlugsIntoPricing(t *testing.T) {
	m := filter.Model{Accuracy: 0.8, Prior: 0.5}
	fs, err := filter.Synthesize(m, 9, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := core.NewQualityStrategy(fs.MaxQuestions, fs.IsTerminal)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := qs.WorstCaseAdditional(0, 0), fs.WorstCaseFromOrigin(); got != want {
		t.Fatalf("adapter worst case %d, filter worst case %d", got, want)
	}

	lambdas := make([]float64, 9)
	for i := range lambdas {
		lambdas[i] = 1733
	}
	base := &core.DeadlineProblem{
		N: 20, Horizon: 3, Intervals: 9, Lambdas: lambdas,
		Accept: choice.Paper13, MinPrice: 0, MaxPrice: 40,
		Penalty: 400, TruncEps: 1e-9,
	}
	plan, err := core.PlanWithQuality(base, qs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy.Problem.N != 20*qs.WorstCaseAdditional(0, 0) {
		t.Errorf("plan sized for %d questions, want %d",
			plan.Policy.Problem.N, 20*qs.WorstCaseAdditional(0, 0))
	}

	// As tasks gather evidence, the tracked load shrinks and the posted
	// price does not increase at a fixed time.
	fresh := make([]core.TaskPoint, 20)
	progressed := make([]core.TaskPoint, 20)
	for i := range progressed {
		progressed[i] = core.TaskPoint{X: 1, Y: 2}
	}
	if plan.Load(progressed) >= plan.Load(fresh) {
		t.Errorf("progress did not reduce load: %d vs %d", plan.Load(progressed), plan.Load(fresh))
	}
	if plan.PriceAt(progressed, 4) > plan.PriceAt(fresh, 4) {
		t.Errorf("progress raised the price: %d > %d",
			plan.PriceAt(progressed, 4), plan.PriceAt(fresh, 4))
	}
}

// TestNewQualityStrategyRejectsNonTerminatingDepth: the adapter refuses
// grids whose deepest layer keeps asking.
func TestNewQualityStrategyRejectsNonTerminatingDepth(t *testing.T) {
	_, err := core.NewQualityStrategy(3, func(x, y int) bool { return false })
	if err == nil {
		t.Error("want error for non-terminating depth limit")
	}
	if _, err := core.NewQualityStrategy(0, func(int, int) bool { return true }); err == nil {
		t.Error("want error for zero depth")
	}
}
