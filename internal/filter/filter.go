// Package filter synthesizes per-task quality-control strategies for binary
// filtering tasks in the style of CrowdScreen (Parameswaran et al., SIGMOD
// 2012) — the substrate the paper's Section 6 quality-control integration
// builds on. A task accumulates No/Yes answers at a point (x, y); a strategy
// assigns each point one of three decisions — ask another question, stop and
// PASS, or stop and FAIL — so as to minimize the expected number of
// questions subject to an expected-error budget.
//
// The synthesis follows the Lagrangian recipe: for a penalty μ on errors,
// backward induction over the triangular grid computes the optimal decision
// at every point; a binary search on μ then meets the error budget, which is
// exactly the penalty ↔ bound correspondence the paper reuses for pricing
// (Theorem 2).
package filter

import (
	"errors"
	"fmt"
	"math"
)

// Decision is the action a strategy takes at a grid point.
type Decision int8

// Decisions.
const (
	// Ask requests one more answer.
	Ask Decision = iota
	// Pass terminates declaring the item satisfies the predicate.
	Pass
	// Fail terminates declaring the item does not satisfy the predicate.
	Fail
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Ask:
		return "Ask"
	case Pass:
		return "Pass"
	case Fail:
		return "Fail"
	default:
		return "Unknown"
	}
}

// Model is the answer-generation model: workers answer correctly with
// probability Accuracy regardless of the true class, and items satisfy the
// predicate with prior probability Prior.
type Model struct {
	Accuracy float64
	Prior    float64
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.Accuracy <= 0.5 || m.Accuracy >= 1 {
		return fmt.Errorf("filter: accuracy %v must be in (0.5, 1)", m.Accuracy)
	}
	if m.Prior <= 0 || m.Prior >= 1 {
		return fmt.Errorf("filter: prior %v must be in (0, 1)", m.Prior)
	}
	return nil
}

// Posterior returns P(item = 1 | x No answers, y Yes answers).
func (m Model) Posterior(x, y int) float64 {
	// Likelihood ratio in log space: each Yes multiplies by a/(1-a), each
	// No by (1-a)/a, starting from the prior odds.
	a := m.Accuracy
	logOdds := math.Log(m.Prior/(1-m.Prior)) + float64(y-x)*math.Log(a/(1-a))
	return 1 / (1 + math.Exp(-logOdds))
}

// NextYesProb returns the predictive probability the next answer is Yes
// given the current point: P(1|x,y)·a + P(0|x,y)·(1−a).
func (m Model) NextYesProb(x, y int) float64 {
	p1 := m.Posterior(x, y)
	return p1*m.Accuracy + (1-p1)*(1-m.Accuracy)
}

// Strategy is a synthesized quality-control strategy over the triangular
// grid {(x, y): x+y ≤ MaxQuestions}.
type Strategy struct {
	// MaxQuestions bounds the total answers per task.
	MaxQuestions int
	// dec[x][y] is the decision at (x, y) for x+y <= MaxQuestions.
	dec [][]Decision
}

// Decide returns the decision at (x, y). Points outside the grid terminate
// with the posterior-majority decision given a balanced model, defaulting
// to Fail; callers should not leave the grid when following Ask decisions.
func (s Strategy) Decide(x, y int) Decision {
	if x < 0 || y < 0 || x+y > s.MaxQuestions {
		return Fail
	}
	return s.dec[x][y]
}

// IsTerminal reports whether (x, y) stops asking — the adapter surface the
// pricing integration (core.NewQualityStrategy) consumes.
func (s Strategy) IsTerminal(x, y int) bool {
	return s.Decide(x, y) != Ask
}

// Synthesize builds the minimum-expected-question strategy whose expected
// error is at most errBound, over grids of at most maxQuestions answers.
// It returns an error when even the full grid cannot meet the bound.
func Synthesize(m Model, maxQuestions int, errBound float64) (Strategy, error) {
	if err := m.Validate(); err != nil {
		return Strategy{}, err
	}
	if maxQuestions < 1 {
		return Strategy{}, errors.New("filter: maxQuestions must be at least 1")
	}
	if errBound <= 0 || errBound >= 1 {
		return Strategy{}, fmt.Errorf("filter: error bound %v must be in (0, 1)", errBound)
	}
	// Check feasibility at an effectively infinite penalty.
	best := synthesizeWithPenalty(m, maxQuestions, 1e12)
	if _, e := best.Evaluate(m); e > errBound {
		return Strategy{}, fmt.Errorf("filter: error %v unreachable within %d questions", errBound, maxQuestions)
	}
	// Binary search the Lagrangian penalty μ: larger μ → fewer errors, more
	// questions. Keep the cheapest strategy meeting the bound.
	lo, hi := 0.0, 1e12
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		cand := synthesizeWithPenalty(m, maxQuestions, mid)
		if _, e := cand.Evaluate(m); e <= errBound {
			best = cand
			hi = mid
		} else {
			lo = mid
		}
	}
	return best, nil
}

// synthesizeWithPenalty runs the backward induction for one penalty value.
func synthesizeWithPenalty(m Model, maxQ int, mu float64) Strategy {
	s := Strategy{MaxQuestions: maxQ}
	s.dec = make([][]Decision, maxQ+1)
	cost := make([][]float64, maxQ+1)
	for x := 0; x <= maxQ; x++ {
		s.dec[x] = make([]Decision, maxQ-x+1)
		cost[x] = make([]float64, maxQ-x+1)
	}
	// Sweep anti-diagonals from the deepest layer inward.
	for total := maxQ; total >= 0; total-- {
		for x := 0; x <= total; x++ {
			y := total - x
			p1 := m.Posterior(x, y)
			passCost := mu * (1 - p1) // declaring 1 errs on true 0
			failCost := mu * p1       // declaring 0 errs on true 1
			bestCost := passCost
			bestDec := Pass
			if failCost < bestCost {
				bestCost = failCost
				bestDec = Fail
			}
			if total < maxQ {
				pYes := m.NextYesProb(x, y)
				askCost := 1 + pYes*cost[x][y+1] + (1-pYes)*cost[x+1][y]
				if askCost < bestCost {
					bestCost = askCost
					bestDec = Ask
				}
			}
			cost[x][y] = bestCost
			s.dec[x][y] = bestDec
		}
	}
	return s
}

// Evaluate returns the expected number of questions per task and the
// expected classification error under the model, by propagating the reach
// probabilities forward from (0, 0).
func (s Strategy) Evaluate(m Model) (expQuestions, expError float64) {
	maxQ := s.MaxQuestions
	reach := make([][]float64, maxQ+1)
	for x := range reach {
		reach[x] = make([]float64, maxQ-x+1)
	}
	reach[0][0] = 1
	for total := 0; total <= maxQ; total++ {
		for x := 0; x <= total; x++ {
			y := total - x
			p := reach[x][y]
			if p == 0 {
				continue
			}
			switch s.dec[x][y] {
			case Pass:
				expError += p * (1 - m.Posterior(x, y))
			case Fail:
				expError += p * m.Posterior(x, y)
			case Ask:
				expQuestions += p
				pYes := m.NextYesProb(x, y)
				reach[x][y+1] += p * pYes
				reach[x+1][y] += p * (1 - pYes)
			}
		}
	}
	return expQuestions, expError
}

// WorstCaseFromOrigin returns the maximum number of questions a task can
// consume — the N-inflation factor of the pricing integration.
func (s Strategy) WorstCaseFromOrigin() int {
	return s.worstCase(0, 0)
}

func (s Strategy) worstCase(x, y int) int {
	if s.IsTerminal(x, y) {
		return 0
	}
	a := s.worstCase(x+1, y)
	if b := s.worstCase(x, y+1); b > a {
		a = b
	}
	return 1 + a
}
