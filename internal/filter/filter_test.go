package filter

import (
	"math"
	"testing"
	"testing/quick"
)

func model() Model { return Model{Accuracy: 0.8, Prior: 0.5} }

func TestModelValidate(t *testing.T) {
	if err := model().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{Accuracy: 0.5, Prior: 0.5},
		{Accuracy: 1, Prior: 0.5},
		{Accuracy: 0.8, Prior: 0},
		{Accuracy: 0.8, Prior: 1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%+v accepted", m)
		}
	}
}

func TestPosteriorKnownValues(t *testing.T) {
	m := model()
	// Symmetric evidence cancels out.
	if got := m.Posterior(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Posterior(0,0) = %v", got)
	}
	if got := m.Posterior(2, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Posterior(2,2) = %v", got)
	}
	// One Yes with a=0.8, prior 0.5: posterior = 0.8.
	if got := m.Posterior(0, 1); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Posterior(0,1) = %v, want 0.8", got)
	}
	if got := m.Posterior(1, 0); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Posterior(1,0) = %v, want 0.2", got)
	}
}

func TestPosteriorBayesConsistency(t *testing.T) {
	// Posterior via the log-odds shortcut equals brute-force Bayes.
	m := Model{Accuracy: 0.7, Prior: 0.3}
	for x := 0; x <= 5; x++ {
		for y := 0; y <= 5; y++ {
			a := m.Accuracy
			l1 := m.Prior * math.Pow(a, float64(y)) * math.Pow(1-a, float64(x))
			l0 := (1 - m.Prior) * math.Pow(1-a, float64(y)) * math.Pow(a, float64(x))
			want := l1 / (l1 + l0)
			if got := m.Posterior(x, y); math.Abs(got-want) > 1e-10 {
				t.Fatalf("Posterior(%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestNextYesProbBounds(t *testing.T) {
	m := model()
	f := func(x, y int) bool {
		x, y = x%10, y%10
		if x < 0 {
			x = -x
		}
		if y < 0 {
			y = -y
		}
		p := m.NextYesProb(x, y)
		return p > 0 && p < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSynthesizeMeetsErrorBound(t *testing.T) {
	for _, bound := range []float64{0.2, 0.1, 0.05} {
		s, err := Synthesize(model(), 11, bound)
		if err != nil {
			t.Fatalf("bound %v: %v", bound, err)
		}
		q, e := s.Evaluate(model())
		if e > bound+1e-9 {
			t.Errorf("bound %v: error %v exceeded", bound, e)
		}
		if q <= 0 {
			t.Errorf("bound %v: expected questions %v", bound, q)
		}
	}
}

func TestSynthesizeTighterBoundCostsMore(t *testing.T) {
	prevQ := 0.0
	for _, bound := range []float64{0.25, 0.15, 0.08, 0.04} {
		s, err := Synthesize(model(), 15, bound)
		if err != nil {
			t.Fatalf("bound %v: %v", bound, err)
		}
		q, _ := s.Evaluate(model())
		if q < prevQ-1e-9 {
			t.Errorf("bound %v: questions %v fell below %v", bound, q, prevQ)
		}
		prevQ = q
	}
}

func TestSynthesizeInfeasible(t *testing.T) {
	// One question with a mediocre worker cannot reach 1% error.
	if _, err := Synthesize(model(), 1, 0.01); err == nil {
		t.Error("want infeasibility error")
	}
	if _, err := Synthesize(Model{Accuracy: 0.4, Prior: 0.5}, 5, 0.1); err == nil {
		t.Error("want model validation error")
	}
	if _, err := Synthesize(model(), 0, 0.1); err == nil {
		t.Error("want maxQuestions error")
	}
	if _, err := Synthesize(model(), 5, 0); err == nil {
		t.Error("want bound validation error")
	}
}

func TestStrategyDecisionsWellFormed(t *testing.T) {
	s, err := Synthesize(model(), 9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Deepest layer never asks; all grid decisions are valid.
	for x := 0; x <= 9; x++ {
		y := 9 - x
		if s.Decide(x, y) == Ask {
			t.Errorf("deepest point (%d,%d) asks", x, y)
		}
	}
	// Strong Yes evidence passes, strong No evidence fails.
	if s.Decide(0, 9) != Pass {
		t.Errorf("Decide(0,9) = %v, want Pass", s.Decide(0, 9))
	}
	if s.Decide(9, 0) != Fail {
		t.Errorf("Decide(9,0) = %v, want Fail", s.Decide(9, 0))
	}
	// Outside the grid terminates.
	if !s.IsTerminal(-1, 0) || !s.IsTerminal(5, 5) {
		t.Error("out-of-grid points should be terminal")
	}
}

// TestSymmetricModelSymmetricStrategy: with prior 0.5 the optimal strategy
// is symmetric in x and y (Pass at (x,y) ⇔ Fail at (y,x)).
func TestSymmetricModelSymmetricStrategy(t *testing.T) {
	s, err := Synthesize(model(), 10, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x <= 10; x++ {
		for y := 0; x+y <= 10; y++ {
			a, b := s.Decide(x, y), s.Decide(y, x)
			switch a {
			case Ask:
				if b != Ask {
					t.Fatalf("asymmetry at (%d,%d): %v vs %v", x, y, a, b)
				}
			case Pass:
				if b != Fail && x != y {
					t.Fatalf("asymmetry at (%d,%d): %v vs %v", x, y, a, b)
				}
			case Fail:
				if b != Pass && x != y {
					t.Fatalf("asymmetry at (%d,%d): %v vs %v", x, y, a, b)
				}
			}
		}
	}
}

// TestEvaluateMatchesSimulation: forward-DP metrics agree with Monte Carlo.
func TestEvaluateMatchesSimulation(t *testing.T) {
	m := model()
	s, err := Synthesize(m, 9, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	wantQ, wantE := s.Evaluate(m)
	// Deterministic LCG to avoid importing dist here.
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53)
	}
	const trials = 60_000
	var sumQ, sumE float64
	for i := 0; i < trials; i++ {
		truth := next() < m.Prior
		x, y := 0, 0
		for s.Decide(x, y) == Ask {
			correct := next() < m.Accuracy
			saysYes := (truth && correct) || (!truth && !correct)
			if saysYes {
				y++
			} else {
				x++
			}
			sumQ++
		}
		switch s.Decide(x, y) {
		case Pass:
			if !truth {
				sumE++
			}
		case Fail:
			if truth {
				sumE++
			}
		}
	}
	gotQ, gotE := sumQ/trials, sumE/trials
	if math.Abs(gotQ-wantQ) > 0.05*wantQ {
		t.Errorf("simulated E[questions] %v vs analytic %v", gotQ, wantQ)
	}
	if math.Abs(gotE-wantE) > 0.25*wantE+0.005 {
		t.Errorf("simulated E[error] %v vs analytic %v", gotE, wantE)
	}
}

func TestWorstCaseFromOrigin(t *testing.T) {
	s, err := Synthesize(model(), 7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	w := s.WorstCaseFromOrigin()
	if w < 1 || w > 7 {
		t.Errorf("worst case %d outside [1, 7]", w)
	}
	// Tighter error budgets cannot shrink the worst case below a majority
	// vote's depth.
	loose, err := Synthesize(model(), 7, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if loose.WorstCaseFromOrigin() > w {
		t.Errorf("looser bound has deeper worst case: %d > %d", loose.WorstCaseFromOrigin(), w)
	}
}

func TestDecisionString(t *testing.T) {
	if Ask.String() != "Ask" || Pass.String() != "Pass" || Fail.String() != "Fail" {
		t.Error("bad decision names")
	}
	if Decision(9).String() != "Unknown" {
		t.Error("bad unknown name")
	}
}
