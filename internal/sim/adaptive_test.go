package sim

import (
	"testing"

	"crowdpricing/internal/dist"
)

func TestAdaptiveBankValidation(t *testing.T) {
	p := deadlineProblem(20, 9)
	if _, err := NewAdaptivePolicyBank(p, AdaptiveConfig{}); err == nil {
		t.Error("want error for empty factors")
	}
	if _, err := NewAdaptivePolicyBank(p, AdaptiveConfig{Factors: []float64{1, 0.5}, WindowIntervals: 3}); err == nil {
		t.Error("want error for unsorted factors")
	}
	if _, err := NewAdaptivePolicyBank(p, AdaptiveConfig{Factors: []float64{1}, WindowIntervals: 0}); err == nil {
		t.Error("want error for zero window")
	}
}

// TestAdaptiveMatchesStaticWhenModelIsRight: with no rate deviation the
// adaptive controller behaves like the plain policy (factor ≈ 1 throughout).
func TestAdaptiveMatchesStaticWhenModelIsRight(t *testing.T) {
	p := deadlineProblem(40, 18)
	bank, err := NewAdaptivePolicyBank(p, DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	world := matchedWorld(p)
	r := dist.NewRNG(3)
	adaptive, err := RunAdaptiveDeadline(bank, world, 500, r)
	if err != nil {
		t.Fatal(err)
	}
	static, err := RunDeadlinePolicy(pol, world, 500, r)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.MeanCost > static.MeanCost*1.1+10 {
		t.Errorf("adaptive cost %v far above static %v on a matched world",
			adaptive.MeanCost, static.MeanCost)
	}
	if adaptive.MeanRemaining > static.MeanRemaining+0.5 {
		t.Errorf("adaptive remaining %v above static %v", adaptive.MeanRemaining, static.MeanRemaining)
	}
}

// TestAdaptiveHandlesConsistentDeviation is the Jan 1 scenario: the true
// arrival rate is 45% below the trained profile all day. The adaptive
// controller detects the deficit early and finishes more reliably (or more
// cheaply) than the frozen policy.
func TestAdaptiveHandlesConsistentDeviation(t *testing.T) {
	p := deadlineProblem(60, 36)
	p.Penalty = 2000 // plan for high confidence
	bank, err := NewAdaptivePolicyBank(p, DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	holiday := make([]float64, len(p.Lambdas))
	for i, l := range p.Lambdas {
		holiday[i] = 0.55 * l
	}
	world := World{Lambdas: holiday, Accept: p.Accept}
	r := dist.NewRNG(4)
	adaptive, err := RunAdaptiveDeadline(bank, world, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	static, err := RunDeadlinePolicy(pol, world, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	// The static policy reacts only through its backlog coordinate; the
	// adaptive one also rescales its rate belief, so it must do no worse on
	// completion and meaningfully better on at least one axis.
	if adaptive.MeanRemaining > static.MeanRemaining+0.2 {
		t.Errorf("adaptive remaining %v worse than static %v", adaptive.MeanRemaining, static.MeanRemaining)
	}
	improvedCompletion := adaptive.MeanRemaining < static.MeanRemaining-0.05
	improvedCost := adaptive.MeanCost < static.MeanCost*0.98
	if !improvedCompletion && !improvedCost {
		t.Errorf("no adaptive benefit: remaining %v vs %v, cost %v vs %v",
			adaptive.MeanRemaining, static.MeanRemaining, adaptive.MeanCost, static.MeanCost)
	}
}

// TestAdaptiveDetectsSurplus: when the market is hotter than planned, the
// adaptive controller saves money by dropping to a cheaper policy.
func TestAdaptiveDetectsSurplus(t *testing.T) {
	p := deadlineProblem(60, 36)
	p.Penalty = 2000
	bank, err := NewAdaptivePolicyBank(p, DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	hot := make([]float64, len(p.Lambdas))
	for i, l := range p.Lambdas {
		hot[i] = 1.4 * l
	}
	world := World{Lambdas: hot, Accept: p.Accept}
	r := dist.NewRNG(5)
	adaptive, err := RunAdaptiveDeadline(bank, world, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	static, err := RunDeadlinePolicy(pol, world, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.MeanRemaining > 0.5 {
		t.Errorf("adaptive left %v tasks in a hot market", adaptive.MeanRemaining)
	}
	if adaptive.MeanCost >= static.MeanCost {
		t.Errorf("adaptive cost %v not below static %v in a hot market",
			adaptive.MeanCost, static.MeanCost)
	}
}
