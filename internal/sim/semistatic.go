package sim

import (
	"errors"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/dist"
)

// SemiStaticArrivals simulates a semi-static pricing strategy (Definition 2
// of the paper): the i-th remaining task is offered at prices[i], and the
// price switches to the next entry the moment a task is taken. It returns
// the number of worker arrivals consumed per trial — the quantity Theorem 5
// proves has expectation Σ 1/p(cᵢ) regardless of the order of the sequence.
func SemiStaticArrivals(prices []int, accept choice.AcceptanceFn, trials int, r *dist.RNG) ([]int, error) {
	if len(prices) == 0 {
		return nil, errors.New("sim: empty price sequence")
	}
	if accept == nil || trials <= 0 {
		return nil, errors.New("sim: invalid acceptance function or trial count")
	}
	for _, c := range prices {
		if accept.Accept(c) <= 0 {
			return nil, errors.New("sim: a price has zero acceptance; E[W] is infinite")
		}
	}
	out := make([]int, trials)
	for trial := 0; trial < trials; trial++ {
		arrivals := 0
		for _, c := range prices {
			// Arrivals until one accepts: geometric failures + the success.
			arrivals += dist.Geometric{P: accept.Accept(c)}.Sample(r) + 1
		}
		out[trial] = arrivals
	}
	return out, nil
}

// MeanInt returns the mean of an integer sample, or 0 when empty.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}
