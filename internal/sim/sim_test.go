package sim

import (
	"math"
	"testing"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/dist"
	"crowdpricing/internal/rate"
)

func deadlineProblem(n, intervals int) *core.DeadlineProblem {
	lambdas := make([]float64, intervals)
	for i := range lambdas {
		lambdas[i] = 1733
	}
	return &core.DeadlineProblem{
		N: n, Horizon: float64(intervals) / 3, Intervals: intervals,
		Lambdas: lambdas, Accept: choice.Paper13,
		MinPrice: 0, MaxPrice: 30, Penalty: 400, TruncEps: 1e-9,
	}
}

func matchedWorld(p *core.DeadlineProblem) World {
	return World{Lambdas: p.Lambdas, Accept: p.Accept}
}

// TestMonteCarloMatchesExactEvaluation: when the world equals the training
// model, the Monte Carlo statistics converge to the policy's exact forward
// evaluation.
func TestMonteCarloMatchesExactEvaluation(t *testing.T) {
	p := deadlineProblem(40, 9)
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	exact := pol.Evaluate()
	st, err := RunDeadlinePolicy(pol, matchedWorld(p), 4000, dist.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.MeanCost-exact.ExpectedCost) > 0.03*exact.ExpectedCost {
		t.Errorf("MC cost %v vs exact %v", st.MeanCost, exact.ExpectedCost)
	}
	if math.Abs(st.MeanRemaining-exact.ExpectedRemaining) > 0.2+0.3*exact.ExpectedRemaining {
		t.Errorf("MC remaining %v vs exact %v", st.MeanRemaining, exact.ExpectedRemaining)
	}
}

// TestRobustnessToWrongModel reproduces the Figure 9 qualitative claim: a
// dynamic policy trained on a wrong acceptance curve still finishes (it
// reprices adaptively), while the fixed price trained on the same wrong
// curve fails when the market is tougher than believed.
func TestRobustnessToWrongModel(t *testing.T) {
	train := deadlineProblem(60, 18)
	// The dynamic policy recovers by pushing prices above the plan, so it
	// needs price headroom (the paper's Figure 9 runs with a generous C).
	train.MaxPrice = 50
	// Calibrate to high confidence under the (wrong) training model.
	cal, err := train.CalibratePenaltyForConfidence(0.999, 1e5, 20)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := train.FixedPriceForConfidence(0.999)
	if err != nil {
		t.Fatal(err)
	}
	// The true market is harsher: 50% more competing-task mass.
	truth := choice.Logistic{S: 15, B: -0.39, M: 3000}
	world := World{Lambdas: train.Lambdas, Accept: truth}
	r := dist.NewRNG(2)
	dyn, err := RunDeadlinePolicy(cal.Policy, world, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	fix, err := RunFixedPrice(train, fixed.Price, world, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.MeanRemaining > 1 {
		t.Errorf("dynamic policy left %v tasks under model error", dyn.MeanRemaining)
	}
	if fix.MeanRemaining < 2 || fix.MeanRemaining < 4*dyn.MeanRemaining {
		t.Errorf("fixed price unexpectedly robust: %v remaining vs dynamic %v",
			fix.MeanRemaining, dyn.MeanRemaining)
	}
	// The dynamic policy pays more than planned to recover.
	if dyn.MeanAvgReward <= float64(fixed.Price) {
		t.Logf("note: dynamic avg reward %v under fixed price %d", dyn.MeanAvgReward, fixed.Price)
	}
}

func TestRunValidation(t *testing.T) {
	p := deadlineProblem(10, 6)
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	bad := World{Lambdas: p.Lambdas[:3], Accept: p.Accept}
	if _, err := RunDeadlinePolicy(pol, bad, 10, dist.NewRNG(1)); err == nil {
		t.Error("want error for mismatched world")
	}
	if _, err := RunDeadlinePolicy(pol, matchedWorld(p), 0, dist.NewRNG(1)); err == nil {
		t.Error("want error for zero trials")
	}
	if _, err := RunFixedPrice(p, 10, bad, 10, dist.NewRNG(1)); err == nil {
		t.Error("want error for mismatched world (fixed)")
	}
}

// TestBudgetCompletionMeanMatchesTheory: simulated completion time of a
// static strategy matches E[W]/λ̄ (Theorem 5 + linearity).
func TestBudgetCompletionMeanMatchesTheory(t *testing.T) {
	bp := &core.BudgetProblem{
		N: 60, Budget: 800, Accept: choice.Paper13, MinPrice: 1, MaxPrice: 40,
	}
	s, err := bp.SolveHull()
	if err != nil {
		t.Fatal(err)
	}
	arrival := rate.Constant(5200)
	want := s.ExpectedLatency(choice.Paper13, 5200)
	times := BudgetCompletion(s, choice.Paper13, arrival, want*4, 300, dist.NewRNG(3))
	mean, inf := FiniteMean(times)
	if inf > 0 {
		t.Fatalf("%d trials did not finish within 4x the expected time", inf)
	}
	if math.Abs(mean-want) > 0.1*want {
		t.Errorf("mean completion %vh, want ≈%vh", mean, want)
	}
}

// TestBudgetCompletionSpread: Section 5.3's observation — the completion
// time varies widely around its mean (no upper-bound guarantee).
func TestBudgetCompletionSpread(t *testing.T) {
	bp := &core.BudgetProblem{
		N: 60, Budget: 800, Accept: choice.Paper13, MinPrice: 1, MaxPrice: 40,
	}
	s, err := bp.SolveHull()
	if err != nil {
		t.Fatal(err)
	}
	times := SortedFinite(BudgetCompletion(s, choice.Paper13, rate.Constant(5200), 100, 300, dist.NewRNG(4)))
	if len(times) < 290 {
		t.Fatalf("too many unfinished trials: %d finished", len(times))
	}
	lo, hi := times[len(times)/20], times[len(times)-1-len(times)/20]
	if (hi-lo)/hi < 0.1 {
		t.Errorf("completion time suspiciously tight: p5=%v p95=%v", lo, hi)
	}
}

func TestFiniteMeanAndSortedFinite(t *testing.T) {
	xs := []float64{3, math.Inf(1), 1, 2}
	mean, inf := FiniteMean(xs)
	if mean != 2 || inf != 1 {
		t.Errorf("FiniteMean = %v, %d", mean, inf)
	}
	sorted := SortedFinite(xs)
	if len(sorted) != 3 || sorted[0] != 1 || sorted[2] != 3 {
		t.Errorf("SortedFinite = %v", sorted)
	}
	m, inf2 := FiniteMean([]float64{math.Inf(1)})
	if !math.IsInf(m, 1) || inf2 != 1 {
		t.Errorf("all-infinite FiniteMean = %v, %d", m, inf2)
	}
}

// TestDeterministicGivenSeed: identical seeds give identical statistics.
func TestDeterministicGivenSeed(t *testing.T) {
	p := deadlineProblem(20, 6)
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunDeadlinePolicy(pol, matchedWorld(p), 50, dist.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDeadlinePolicy(pol, matchedWorld(p), 50, dist.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanCost != b.MeanCost || a.MeanRemaining != b.MeanRemaining {
		t.Error("same-seed runs diverged")
	}
}
