package sim

import (
	"errors"
	"math"

	"crowdpricing/internal/core"
	"crowdpricing/internal/dist"
)

// AdaptiveConfig tunes the adaptive arrival-rate controller, the extension
// the paper sketches at the end of Section 5.2.5 ("predicting the
// arrival-rate in next few hours based on arrival-rate in last few hours")
// for days like Jan 1 whose traffic consistently deviates from the trained
// profile.
//
// The controller pre-solves one deadline policy per scale factor in Factors
// (each with the trained λ_t scaled by the factor). While running, it
// estimates the current scale as observed arrivals over expected arrivals
// in a trailing window and follows the policy of the nearest factor — a
// quantized re-plan that avoids solving the DP inside the simulation loop.
type AdaptiveConfig struct {
	// Factors is the grid of rate scale factors to pre-solve, e.g.
	// 0.5, 0.6, …, 1.5. It must be non-empty and sorted ascending.
	Factors []float64
	// WindowIntervals is the trailing-window length for the scale
	// estimate, in DP intervals (e.g. 9 intervals = 3 hours at 20 min).
	WindowIntervals int
}

// DefaultAdaptiveConfig covers −50%…+50% rate deviations with a 3-hour
// window at 20-minute intervals.
func DefaultAdaptiveConfig() AdaptiveConfig {
	var factors []float64
	for f := 0.5; f <= 1.51; f += 0.1 {
		factors = append(factors, f)
	}
	return AdaptiveConfig{Factors: factors, WindowIntervals: 9}
}

// AdaptivePolicyBank holds the pre-solved per-factor policies.
type AdaptivePolicyBank struct {
	cfg      AdaptiveConfig
	problem  *core.DeadlineProblem
	policies []*core.DeadlinePolicy
}

// NewAdaptivePolicyBank solves one policy per factor, each calibrated via
// the shared Penalty already set on the problem.
func NewAdaptivePolicyBank(p *core.DeadlineProblem, cfg AdaptiveConfig) (*AdaptivePolicyBank, error) {
	if len(cfg.Factors) == 0 {
		return nil, errors.New("sim: empty factor grid")
	}
	if cfg.WindowIntervals < 1 {
		return nil, errors.New("sim: window must cover at least one interval")
	}
	for i := 1; i < len(cfg.Factors); i++ {
		if cfg.Factors[i] <= cfg.Factors[i-1] {
			return nil, errors.New("sim: factors must be sorted ascending")
		}
	}
	bank := &AdaptivePolicyBank{cfg: cfg, problem: p}
	for _, f := range cfg.Factors {
		q := *p
		q.Lambdas = make([]float64, len(p.Lambdas))
		for i, l := range p.Lambdas {
			q.Lambdas[i] = l * f
		}
		pol, err := q.SolveEfficient()
		if err != nil {
			return nil, err
		}
		bank.policies = append(bank.policies, pol)
	}
	return bank, nil
}

// policyFor returns the policy of the factor nearest to f.
func (b *AdaptivePolicyBank) policyFor(f float64) *core.DeadlinePolicy {
	best := 0
	bestD := math.Abs(b.cfg.Factors[0] - f)
	for i, g := range b.cfg.Factors {
		if d := math.Abs(g - f); d < bestD {
			best, bestD = i, d
		}
	}
	return b.policies[best]
}

// RunAdaptiveDeadline simulates the adaptive controller against the world.
// Marketplace arrivals per interval are observable (as on mturk-tracker);
// completions are Binomial thinnings of those arrivals — the composed
// Thinned-NHPP model of Section 2.1. Each interval the controller updates
// its scale estimate from the trailing window and prices from the matching
// pre-solved policy.
func RunAdaptiveDeadline(bank *AdaptivePolicyBank, w World, trials int, r *dist.RNG) (TrialStats, error) {
	p := bank.problem
	if len(w.Lambdas) != p.Intervals {
		return TrialStats{}, errors.New("sim: world has wrong interval count")
	}
	if w.Accept == nil || trials <= 0 {
		return TrialStats{}, errors.New("sim: invalid world or trial count")
	}
	st := TrialStats{Trials: trials}
	window := bank.cfg.WindowIntervals
	for trial := 0; trial < trials; trial++ {
		n := p.N
		cost := 0.0
		factor := 1.0
		observed := make([]float64, 0, p.Intervals)
		for t := 0; t < p.Intervals; t++ {
			// Estimate the current rate scale from the trailing window.
			if t > 0 {
				lo := t - window
				if lo < 0 {
					lo = 0
				}
				var obs, expct float64
				for k := lo; k < t; k++ {
					obs += observed[k]
					expct += p.Lambdas[k]
				}
				if expct > 0 {
					factor = obs / expct
				}
			}
			arrivals := dist.Poisson{Lambda: w.Lambdas[t]}.Sample(r)
			observed = append(observed, float64(arrivals))
			if n == 0 {
				continue
			}
			price := bank.policyFor(factor).PriceAt(n, t)
			done := dist.Binomial{N: arrivals, P: w.Accept.Accept(price)}.Sample(r)
			if done > n {
				done = n
			}
			cost += float64(done * price)
			n -= done
		}
		st.accumulate(p.N, n, cost)
	}
	st.finalize()
	return st, nil
}
