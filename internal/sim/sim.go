// Package sim evaluates pricing policies by Monte Carlo simulation against
// a marketplace whose true dynamics may differ from the dynamics the policy
// was trained on — the setup of the sensitivity experiments (Sections 5.2.4
// and 5.2.5) and of the fixed-budget completion-time study (Section 5.3).
package sim

import (
	"errors"
	"math"
	"sort"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/dist"
	"crowdpricing/internal/rate"
)

// World is the ground truth the simulation runs against: the real arrival
// mass per interval and the real acceptance curve, which may both differ
// from what a policy assumed during training.
type World struct {
	// Lambdas[t] is the true expected worker arrivals in interval t.
	Lambdas []float64
	// Accept is the true acceptance curve.
	Accept choice.AcceptanceFn
}

// TrialStats aggregates per-trial simulation results.
type TrialStats struct {
	// Trials is the number of Monte Carlo runs.
	Trials int
	// MeanCost is the average total payment in cents.
	MeanCost float64
	// MeanRemaining is the average number of unfinished tasks.
	MeanRemaining float64
	// CompletionRate is the fraction of trials finishing every task.
	CompletionRate float64
	// MeanAvgReward is the average of per-trial cost divided by completed
	// tasks (the "average task reward" the paper plots).
	MeanAvgReward float64
	// Remaining holds each trial's unfinished count.
	Remaining []int
	// Costs holds each trial's total payment.
	Costs []float64
}

// RunDeadlinePolicy simulates a deadline policy for trials runs against the
// world. Each interval samples a Poisson completion count with the *true*
// rate λ_t·p_true(c) at the policy's price for the current backlog.
func RunDeadlinePolicy(pol *core.DeadlinePolicy, w World, trials int, r *dist.RNG) (TrialStats, error) {
	p := pol.Problem
	if len(w.Lambdas) != p.Intervals {
		return TrialStats{}, errors.New("sim: world has wrong interval count")
	}
	if w.Accept == nil || trials <= 0 {
		return TrialStats{}, errors.New("sim: invalid world or trial count")
	}
	st := TrialStats{Trials: trials}
	for i := 0; i < trials; i++ {
		n := p.N
		cost := 0.0
		for t := 0; t < p.Intervals && n > 0; t++ {
			price := pol.PriceAt(n, t)
			mean := w.Lambdas[t] * w.Accept.Accept(price)
			done := dist.Poisson{Lambda: mean}.Sample(r)
			if done > n {
				done = n
			}
			cost += float64(done * price)
			n -= done
		}
		st.accumulate(p.N, n, cost)
	}
	st.finalize()
	return st, nil
}

// RunFixedPrice simulates the fixed-price baseline under the same world.
func RunFixedPrice(p *core.DeadlineProblem, price int, w World, trials int, r *dist.RNG) (TrialStats, error) {
	if len(w.Lambdas) != p.Intervals {
		return TrialStats{}, errors.New("sim: world has wrong interval count")
	}
	if w.Accept == nil || trials <= 0 {
		return TrialStats{}, errors.New("sim: invalid world or trial count")
	}
	st := TrialStats{Trials: trials}
	for i := 0; i < trials; i++ {
		n := p.N
		cost := 0.0
		for t := 0; t < p.Intervals && n > 0; t++ {
			mean := w.Lambdas[t] * w.Accept.Accept(price)
			done := dist.Poisson{Lambda: mean}.Sample(r)
			if done > n {
				done = n
			}
			cost += float64(done * price)
			n -= done
		}
		st.accumulate(p.N, n, cost)
	}
	st.finalize()
	return st, nil
}

func (st *TrialStats) accumulate(total, remaining int, cost float64) {
	st.Remaining = append(st.Remaining, remaining)
	st.Costs = append(st.Costs, cost)
	st.MeanCost += cost
	st.MeanRemaining += float64(remaining)
	if remaining == 0 {
		st.CompletionRate++
	}
	if done := total - remaining; done > 0 {
		st.MeanAvgReward += cost / float64(done)
	}
}

func (st *TrialStats) finalize() {
	n := float64(st.Trials)
	st.MeanCost /= n
	st.MeanRemaining /= n
	st.CompletionRate /= n
	st.MeanAvgReward /= n
}

// BudgetCompletion simulates the static budget strategy of Section 4
// against an NHPP arrival stream (Section 5.3 / Figure 11): tasks drain
// highest price first, each arriving worker accepts the current top price c
// with probability p(c). It returns each trial's completion time in hours,
// +Inf when the horizon elapses first.
func BudgetCompletion(s core.StaticStrategy, accept choice.AcceptanceFn, arrival rate.Fn, horizon float64, trials int, r *dist.RNG) []float64 {
	prices := s.Prices() // descending
	out := make([]float64, 0, trials)
	// Hour-resolution stepping with per-step Poisson arrival counts keeps
	// the simulation cheap while resolving completion times to ~1 minute.
	const step = 1.0 / 60
	for trial := 0; trial < trials; trial++ {
		idx := 0
		tEnd := math.Inf(1)
		for t := 0.0; t < horizon && idx < len(prices); t += step {
			mean := arrival.Integral(t, t+step)
			arrivals := dist.Poisson{Lambda: mean}.Sample(r)
			for a := 0; a < arrivals && idx < len(prices); a++ {
				if r.Bernoulli(accept.Accept(prices[idx])) {
					idx++
				}
			}
			if idx == len(prices) {
				tEnd = t + step
			}
		}
		out = append(out, tEnd)
	}
	return out
}

// FiniteMean returns the mean of the finite entries of xs and the count of
// infinite ones.
func FiniteMean(xs []float64) (mean float64, infinite int) {
	sum, n := 0.0, 0
	for _, x := range xs {
		if math.IsInf(x, 1) {
			infinite++
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return math.Inf(1), infinite
	}
	return sum / float64(n), infinite
}

// SortedFinite returns the finite entries of xs in ascending order, for
// histogramming completion-time distributions.
func SortedFinite(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		if !math.IsInf(x, 1) {
			out = append(out, x)
		}
	}
	sort.Float64s(out)
	return out
}
