package sim

import (
	"math"
	"testing"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/dist"
)

// TestSemiStaticTheorem5 validates Theorem 5 end to end: simulated worker
// arrivals match Σ 1/p(cᵢ), and permuting the price sequence leaves the
// mean unchanged (Theorem 4/5's order-invariance).
func TestSemiStaticTheorem5(t *testing.T) {
	prices := []int{8, 25, 14, 30, 8}
	want := core.SemiStaticExpectedArrivals(prices, choice.Paper13)
	r := dist.NewRNG(41)
	const trials = 4000
	base, err := SemiStaticArrivals(prices, choice.Paper13, trials, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := MeanInt(base); math.Abs(got-want) > 0.05*want {
		t.Errorf("E[W] ≈ %v, closed form %v", got, want)
	}
	perm := []int{30, 8, 8, 25, 14}
	permuted, err := SemiStaticArrivals(perm, choice.Paper13, trials, r)
	if err != nil {
		t.Fatal(err)
	}
	a, b := MeanInt(base), MeanInt(permuted)
	if math.Abs(a-b) > 0.05*want {
		t.Errorf("order changed E[W]: %v vs %v", a, b)
	}
}

// TestSemiStaticDescendingEqualsStatic: a static strategy drains highest
// price first, i.e. it is the descending semi-static sequence; its simulated
// E[W] equals the strategy's closed form.
func TestSemiStaticDescendingEqualsStatic(t *testing.T) {
	s := core.StaticStrategy{Counts: map[int]int{12: 3, 20: 2}}
	want := s.ExpectedWorkerArrivals(choice.Paper13)
	r := dist.NewRNG(42)
	sample, err := SemiStaticArrivals(s.Prices(), choice.Paper13, 4000, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := MeanInt(sample); math.Abs(got-want) > 0.05*want {
		t.Errorf("E[W] ≈ %v, want %v", got, want)
	}
}

func TestSemiStaticValidation(t *testing.T) {
	r := dist.NewRNG(1)
	if _, err := SemiStaticArrivals(nil, choice.Paper13, 10, r); err == nil {
		t.Error("want error for empty sequence")
	}
	if _, err := SemiStaticArrivals([]int{1}, nil, 10, r); err == nil {
		t.Error("want error for nil acceptance")
	}
	if _, err := SemiStaticArrivals([]int{1}, choice.Paper13, 0, r); err == nil {
		t.Error("want error for zero trials")
	}
	zero := choice.Logistic{S: 1, B: 1000, M: 1e300}
	if _, err := SemiStaticArrivals([]int{1}, zero, 10, r); err == nil {
		t.Error("want error for zero acceptance")
	}
	if MeanInt(nil) != 0 {
		t.Error("MeanInt(nil) != 0")
	}
}
