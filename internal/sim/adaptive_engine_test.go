package sim

import (
	"context"
	"encoding/json"
	"testing"

	"crowdpricing/internal/core"
	"crowdpricing/internal/dist"
	"crowdpricing/internal/engine"
	"crowdpricing/internal/kinds"
)

// engineSolvedProblem solves a registry-sampled deadline spec through the
// real engine and returns the problem recovered from the solved artifact —
// the service-path ingredients, not a hand-constructed core problem.
func engineSolvedProblem(t *testing.T, seed int64) (*core.DeadlineProblem, *core.DeadlinePolicy) {
	t.Helper()
	def, ok := kinds.Default().Lookup(kinds.KindDeadline)
	if !ok {
		t.Fatal("deadline kind not registered")
	}
	spec := def.Sample(seed, "small")

	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	res, err := eng.Solve(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var pol core.DeadlinePolicy
	if err := json.Unmarshal(res.Value, &pol); err != nil {
		t.Fatal(err)
	}
	return pol.Problem, &pol
}

// TestAdaptiveBankFromEngineSolve is the satellite-task integration check:
// build the §5.2.5 policy bank from a problem that round-tripped through
// the kinds Spec + engine + JSON artifact pipeline, and verify (a) the
// bank's unit-factor policy matches the engine's artifact cell for cell,
// and (b) the adaptive controller runs deterministically by seed on it.
func TestAdaptiveBankFromEngineSolve(t *testing.T) {
	prob, pol := engineSolvedProblem(t, 17)

	cfg := AdaptiveConfig{Factors: []float64{0.5, 1, 2}, WindowIntervals: 3}
	bank, err := NewAdaptivePolicyBank(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The factor-1 member of the bank re-solves the exact problem the
	// engine solved; backward induction is deterministic, so the tables
	// must agree exactly.
	unit := bank.policyFor(1)
	for tt := range pol.Price {
		for n := range pol.Price[tt] {
			if unit.Price[tt][n] != pol.Price[tt][n] {
				t.Fatalf("bank unit policy differs from engine artifact at (n=%d, t=%d): %d vs %d",
					n, tt, unit.Price[tt][n], pol.Price[tt][n])
			}
		}
	}

	// A world running 2× hot: the adaptive run must be reproducible
	// seed-for-seed (the campaign runtime leans on this determinism).
	world := World{Lambdas: make([]float64, prob.Intervals), Accept: prob.Accept}
	for i, l := range prob.Lambdas {
		world.Lambdas[i] = 2 * l
	}
	run := func() TrialStats {
		st, err := RunAdaptiveDeadline(bank, world, 20, dist.NewRNG(99))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.MeanCost != b.MeanCost || a.CompletionRate != b.CompletionRate || a.MeanRemaining != b.MeanRemaining {
		t.Fatalf("adaptive runs diverged on equal seeds: %+v vs %+v", a, b)
	}
	// Full completion is rare at this scale (the sampled acceptance curves
	// sit near 1%), but the controller must make progress in a 2×-hot
	// world.
	if a.MeanRemaining >= float64(prob.N) {
		t.Fatalf("adaptive controller completed nothing in a 2×-hot world (mean remaining %v of %d)", a.MeanRemaining, prob.N)
	}
}

// TestAdaptiveBankMatchesEngineScaledSolves ties the two re-planning
// implementations together: each bank policy equals the engine's solve of
// the explicitly scaled kinds spec — the exact policies the campaign
// runtime's AdaptivePolicyBank serves online.
func TestAdaptiveBankMatchesEngineScaledSolves(t *testing.T) {
	def, _ := kinds.Default().Lookup(kinds.KindDeadline)
	base, ok := def.Sample(21, "small").(*kinds.DeadlineRequest)
	if !ok {
		t.Fatal("deadline sampler did not return a *kinds.DeadlineRequest")
	}

	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	res, err := eng.Solve(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	var basePol core.DeadlinePolicy
	if err := json.Unmarshal(res.Value, &basePol); err != nil {
		t.Fatal(err)
	}

	factors := []float64{0.5, 1, 1.5}
	bank, err := NewAdaptivePolicyBank(basePol.Problem, AdaptiveConfig{Factors: factors, WindowIntervals: 2})
	if err != nil {
		t.Fatal(err)
	}

	for _, f := range factors {
		scaled := *base
		scaled.Lambdas = make([]float64, len(base.Lambdas))
		for i, l := range base.Lambdas {
			scaled.Lambdas[i] = f * l
		}
		res, err := eng.Solve(context.Background(), &scaled)
		if err != nil {
			t.Fatal(err)
		}
		var enginePol core.DeadlinePolicy
		if err := json.Unmarshal(res.Value, &enginePol); err != nil {
			t.Fatal(err)
		}
		bankPol := bank.policyFor(f)
		for tt := range enginePol.Price {
			for n := range enginePol.Price[tt] {
				if bankPol.Price[tt][n] != enginePol.Price[tt][n] {
					t.Fatalf("factor %g: bank and engine disagree at (n=%d, t=%d): %d vs %d",
						f, n, tt, bankPol.Price[tt][n], enginePol.Price[tt][n])
				}
			}
		}
	}
}
