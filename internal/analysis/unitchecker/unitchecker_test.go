package unitchecker_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"crowdpricing/internal/analysis/suite"
	"crowdpricing/internal/analysis/unitchecker"
)

// writeUnit lays out a one-file, import-free package unit plus its vet
// config, mimicking what cmd/go hands the vettool.
func writeUnit(t *testing.T, src string, vetxOnly bool) (cfgPath, vetxPath string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "unit.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vetxPath = filepath.Join(dir, "unit.vetx")
	cfg := unitchecker.Config{
		ID:          "crowdpricing/internal/core",
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  "crowdpricing/internal/core",
		GoVersion:   "go1.24.0",
		GoFiles:     []string{goFile},
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
		VetxOnly:    vetxOnly,
		VetxOutput:  vetxPath,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetxPath
}

func TestRunFlagsViolation(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("posix paths in fixtures")
	}
	cfg, vetx := writeUnit(t, `package core

func leak(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}
`, false)
	if code := unitchecker.Run(cfg, suite.Analyzers); code != 2 {
		t.Fatalf("exit code = %d, want 2 (findings)", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

func TestRunCleanUnit(t *testing.T) {
	cfg, _ := writeUnit(t, `package core

func add(a, b int) int { return a + b }
`, false)
	if code := unitchecker.Run(cfg, suite.Analyzers); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
}

func TestRunVetxOnlySkipsAnalysis(t *testing.T) {
	// A dependency-only unit must produce its vetx file and nothing else —
	// even though the source would otherwise be flagged.
	cfg, vetx := writeUnit(t, `package core

func leak(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}
`, true)
	if code := unitchecker.Run(cfg, suite.Analyzers); code != 0 {
		t.Fatalf("exit code = %d, want 0 for a VetxOnly unit", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}

func TestRunBadConfig(t *testing.T) {
	if code := unitchecker.Run(filepath.Join(t.TempDir(), "missing.cfg"), suite.Analyzers); code != 1 {
		t.Fatalf("exit code = %d, want 1 for an unreadable config", code)
	}
}
