// Package unitchecker implements the `go vet -vettool` protocol for the
// crowdlint suite with only the standard library: the build system invokes
// the tool once per package with a JSON config naming the package's
// sources and the gc export data of its dependencies, and the tool
// type-checks the unit against that export data (no source re-loading, no
// x/tools dependency) and runs the analyzers.
//
// Protocol, as driven by cmd/go:
//
//	crowdlint -V=full         print a versioned build ID (vet cache key)
//	crowdlint -flags          print supported analyzer flags (JSON)
//	crowdlint <file>.cfg      analyze one package unit
//
// Diagnostics go to stderr as file:line:col lines; a unit with findings
// exits 2, which `go vet` surfaces as a failed package.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"crowdpricing/internal/analysis"
)

// Config is the JSON the build system writes for each vetted package
// (cmd/go/internal/work's vetConfig); only the fields this driver reads
// are declared.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Run analyzes the package unit described by cfgPath and returns the
// process exit code: 0 clean, 1 operational error, 2 findings.
func Run(cfgPath string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The suite computes no cross-package facts, so dependency-only
	// invocations have nothing to do beyond satisfying the protocol's
	// demand for an output file.
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	// Dependencies resolve through the gc export data the build already
	// produced: lookup maps a source-level import path through ImportMap
	// (vendoring, test-variant recompiles) to its export file.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: compilerImporter, GoVersion: cfg.GoVersion}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	diags, err := analysis.RunPackage(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", path, err)
	}
	return cfg, nil
}
