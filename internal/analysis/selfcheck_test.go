package analysis_test

import (
	"testing"

	"crowdpricing/internal/analysis"
	"crowdpricing/internal/analysis/load"
	"crowdpricing/internal/analysis/suite"
)

// TestSuiteCleanOnRepository is the dogfood gate: the crowdlint suite must
// run clean over this repository itself, test files included. A failure
// here means either a real invariant violation crept in or an analyzer
// grew a false positive — both block the merge, by design.
func TestSuiteCleanOnRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := load.Load("../..", load.Options{Tests: true}, "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg.Fset, pkg.Syntax, pkg.Types, pkg.Info, suite.Analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
