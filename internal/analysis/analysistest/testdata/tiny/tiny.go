// Package tiny is the harness's own fixture, checked by a throwaway
// analyzer that flags functions whose name starts with "bad".
package tiny

func badThing() {} // want `function badThing is bad` "names may not start with bad"

func goodThing() {}
