module example.com/tiny

go 1.24
