// Package analysistest runs an analyzer over a golden mini-module and
// checks its diagnostics against `// want "regex"` comments in the
// sources — the same contract as golang.org/x/tools' analysistest,
// rebuilt on the repo's own loader so the suite stays dependency-free.
//
// Each testdata directory is a self-contained module whose go.mod chooses
// the module path, and therefore which scope tier the analyzer applies —
// a golden file claiming to be crowdpricing/internal/core is checked
// strictly, one claiming example.com/outside must produce nothing.
//
// A want comment names every diagnostic expected on its line:
//
//	for k := range m { // want `map iteration order is random`
//
// Both `...` and "..." quoting are accepted; the payload is a regexp
// matched against the diagnostic message. Diagnostics with no matching
// want, and wants with no matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"crowdpricing/internal/analysis"
	"crowdpricing/internal/analysis/load"
)

// Run loads the module rooted at dir and applies the analyzer to every
// package in it, comparing diagnostics against want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := load.Load(dir, load.Options{}, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", dir)
	}
	for _, pkg := range pkgs {
		checkPackage(t, pkg, a)
	}
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

func checkPackage(t *testing.T, pkg *load.Package, a *analysis.Analyzer) {
	t.Helper()
	wants := collectWants(t, pkg)
	diags, err := analysis.RunPackage(pkg.Fset, pkg.Syntax, pkg.Types, pkg.Info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", pkg.PkgPath, err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, exp := range wants[key] {
			if !exp.matched && exp.rx.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s: want %q: no matching diagnostic", key, exp.rx)
			}
		}
	}
}

// collectWants extracts // want comments from every file of the package,
// keyed by "filename:line".
func collectWants(t *testing.T, pkg *load.Package) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, text) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}
	return wants
}

// wantToken matches one quoted pattern: backtick-raw or double-quoted
// with escapes.
var wantToken = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for _, tok := range wantToken.FindAllString(s, -1) {
		pat, err := strconv.Unquote(tok)
		if err != nil {
			t.Fatalf("%s: bad want token %s: %v", pos, tok, err)
		}
		out = append(out, pat)
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no quoted pattern", pos)
	}
	return out
}
