package analysistest_test

import (
	"go/ast"
	"strings"
	"testing"

	"crowdpricing/internal/analysis"
	"crowdpricing/internal/analysis/analysistest"
)

// badNames flags functions whose name starts with "bad" — twice, to
// exercise multiple want patterns on one line.
var badNames = &analysis.Analyzer{
	Name: "badnames",
	Doc:  "test analyzer",
	Run: func(pass *analysis.Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !strings.HasPrefix(fd.Name.Name, "bad") {
					continue
				}
				pass.Reportf(fd.Pos(), "function %s is bad", fd.Name.Name)
				pass.Reportf(fd.Pos(), "names may not start with bad")
			}
		}
		return nil
	},
}

func TestHarness(t *testing.T) {
	analysistest.Run(t, "testdata/tiny", badNames)
}
