package analysis_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"crowdpricing/internal/analysis"
)

const suppressionSrc = `package demo

func sameLine() int {
	return 1 //crowdlint:allow retlint -- same-line suppression
}

func lineAbove() int {
	//crowdlint:allow retlint -- line-above suppression
	return 2
}

//crowdlint:allow retlint -- whole-function suppression from the doc comment
func wholeFunc(cond bool) int {
	if cond {
		return 3
	}
	return 4
}

//crowdlint:allow otherlint -- different analyzer, must not suppress retlint
func wrongAnalyzer() int {
	return 5
}

func unsuppressed() int {
	return 6
}
`

// retlint reports every return statement; the test drives it through
// RunPackage so the directive machinery (same-line, line-above, and
// whole-function doc-comment suppression) is what decides which reports
// survive.
var retlint = &analysis.Analyzer{
	Name: "retlint",
	Doc:  "test analyzer reporting every return",
	Run: func(pass *analysis.Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if ret, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(ret.Pos(), "return statement")
				}
				return true
			})
		}
		return nil
	},
}

func TestDirectiveSuppression(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "demo.go", suppressionSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("demo", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunPackage(fset, []*ast.File{file}, pkg, info, []*analysis.Analyzer{retlint})
	if err != nil {
		t.Fatal(err)
	}
	// Suppressed: sameLine, lineAbove, both returns of wholeFunc.
	// Surviving: wrongAnalyzer's return, unsuppressed's return.
	var lines []int
	for _, d := range diags {
		lines = append(lines, d.Pos.Line)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics at lines %v, want 2", len(diags), lines)
	}
	for _, d := range diags {
		if d.Analyzer != "retlint" {
			t.Errorf("diagnostic attributed to %q, want retlint", d.Analyzer)
		}
	}
	if lines[0] != 22 || lines[1] != 26 {
		t.Errorf("diagnostics at lines %v, want [22 26] (wrongAnalyzer and unsuppressed returns)", lines)
	}
}

func TestParseDirectiveProblems(t *testing.T) {
	src := `package demo

//crowdlint:allow a -- ok
//crowdlint:allow a,b -- two names
//crowdlint:allow a
//crowdlint:allow a --
//crowdlint:forbid a -- bad verb
//crowdlint:allow -- nameless
func f() {}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "demo.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	ds := analysis.ParseDirectives(file)
	if len(ds) != 6 {
		t.Fatalf("parsed %d directives, want 6", len(ds))
	}
	wantProblems := []string{
		"",
		"",
		`missing "-- reason"`,
		"empty reason",
		"unknown crowdlint directive verb",
		"empty analyzer name",
	}
	for i, want := range wantProblems {
		if want == "" {
			if ds[i].Problem != "" {
				t.Errorf("directive %d (%q): unexpected problem %q", i, ds[i].Raw, ds[i].Problem)
			}
			continue
		}
		if !strings.Contains(ds[i].Problem, want) {
			t.Errorf("directive %d (%q): problem %q, want substring %q", i, ds[i].Raw, ds[i].Problem, want)
		}
	}
	if len(ds[1].Analyzers) != 2 {
		t.Errorf("directive 1 analyzers = %v, want [a b]", ds[1].Analyzers)
	}
}
