package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix opens every crowdlint source directive.
const DirectivePrefix = "//crowdlint:"

// A Directive is one parsed //crowdlint: comment. Malformed directives
// carry the problem in Problem and suppress nothing — the directive
// analyzer reports them.
type Directive struct {
	Pos token.Pos
	// Analyzers are the analyzer names the directive suppresses.
	Analyzers []string
	// Reason is the mandatory justification after the "--" separator.
	Reason string
	// Raw is the comment text as written.
	Raw string
	// Problem describes why the directive is malformed ("" = well-formed).
	Problem string
}

// ParseDirectives extracts every //crowdlint: directive in file,
// well-formed or not.
func ParseDirectives(file *ast.File) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectivePrefix) {
				continue
			}
			out = append(out, parseDirective(c))
		}
	}
	return out
}

func parseDirective(c *ast.Comment) Directive {
	d := Directive{Pos: c.Pos(), Raw: c.Text}
	body := strings.TrimPrefix(c.Text, DirectivePrefix)
	verb, rest, _ := strings.Cut(body, " ")
	if verb != "allow" {
		d.Problem = "unknown crowdlint directive verb " + strings.TrimSpace(verb) + ` (only "allow" exists)`
		return d
	}
	names, reason, found := strings.Cut(rest, "--")
	if !found {
		d.Problem = `missing "-- reason": every allow-directive must say why the rule is waived`
		return d
	}
	d.Reason = strings.TrimSpace(reason)
	if d.Reason == "" {
		d.Problem = "empty reason after --: every allow-directive must say why the rule is waived"
		return d
	}
	for _, name := range strings.Split(strings.TrimSpace(names), ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			d.Problem = "empty analyzer name in allow-directive"
			return d
		}
		d.Analyzers = append(d.Analyzers, name)
	}
	if len(d.Analyzers) == 0 {
		d.Problem = "allow-directive names no analyzer"
	}
	return d
}

// suppressIndex answers "is this (analyzer, position) covered by an
// allow-directive?": by a directive on the same line, on the line directly
// above, or in the doc comment of the enclosing function declaration.
type suppressIndex struct {
	// byLine maps filename -> line -> analyzer names allowed there.
	byLine map[string]map[int][]string
	// funcSpans are whole-function suppressions from FuncDecl doc comments.
	funcSpans []funcSpan
}

type funcSpan struct {
	lo, hi    token.Pos
	analyzers []string
}

func buildSuppressIndex(fset *token.FileSet, files []*ast.File) *suppressIndex {
	idx := &suppressIndex{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, d := range ParseDirectives(f) {
			if d.Problem != "" {
				continue
			}
			pos := fset.Position(d.Pos)
			lines := idx.byLine[pos.Filename]
			if lines == nil {
				lines = make(map[int][]string)
				idx.byLine[pos.Filename] = lines
			}
			lines[pos.Line] = append(lines[pos.Line], d.Analyzers...)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var names []string
			for _, c := range fd.Doc.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				if d := parseDirective(c); d.Problem == "" {
					names = append(names, d.Analyzers...)
				}
			}
			if len(names) > 0 {
				idx.funcSpans = append(idx.funcSpans, funcSpan{lo: fd.Pos(), hi: fd.End(), analyzers: names})
			}
		}
	}
	return idx
}

func (idx *suppressIndex) covers(analyzer string, position token.Position, pos token.Pos) bool {
	if lines := idx.byLine[position.Filename]; lines != nil {
		for _, line := range [2]int{position.Line, position.Line - 1} {
			for _, name := range lines[line] {
				if name == analyzer {
					return true
				}
			}
		}
	}
	for _, span := range idx.funcSpans {
		if span.lo <= pos && pos < span.hi {
			for _, name := range span.analyzers {
				if name == analyzer {
					return true
				}
			}
		}
	}
	return false
}
