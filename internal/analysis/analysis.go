// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's needs: an
// [Analyzer] runs over one type-checked package at a time through a [Pass]
// and reports position-anchored diagnostics.
//
// The repo's correctness story leans on invariants the compiler cannot see
// — bit-identical policies by seed, stable Fingerprint() cache keys, O(1)
// quotes that never block under a campaign mutex, Prometheus-conformant
// metric names. The analyzers under passes/ turn those invariants into
// compile-time checks; cmd/crowdlint drives them either standalone or as a
// `go vet -vettool`. The framework is intentionally API-compatible in
// spirit with x/tools (Analyzer/Pass/Reportf, analysistest golden files,
// the unitchecker vet protocol) so the suite can migrate onto the real
// module if the dependency ever lands; it is hand-rolled here because the
// build is dependency-free by policy.
//
// # Suppression directives
//
// Every analyzer honors an explicit, auditable escape hatch:
//
//	//crowdlint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// placed on the offending line, on the line directly above it, or in the
// doc comment of the enclosing function (which suppresses the analyzer for
// the whole function). The reason is mandatory; the directive analyzer
// rejects directives that are malformed, give no reason, or name an
// analyzer that does not exist, so the escape hatch cannot rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects the Pass's package and
// reports findings through Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //crowdlint:allow directives. Lowercase, no spaces.
	Name string
	// Doc is the analyzer's one-paragraph description, shown by
	// `crowdlint -list`.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass connects one Analyzer to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's syntax, parsed with comments (directives live
	// in the comments).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	suppress *suppressIndex
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos unless an allow-directive for this
// analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppress.covers(p.Analyzer.Name, position, pos) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// TestFile reports whether the file containing pos is a _test.go file.
// Most analyzers skip test files: tests legitimately use wall clocks and
// ad-hoc iteration, and the invariants under enforcement are about
// production paths.
func (p *Pass) TestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PkgPath returns the package's import path with any test-variant suffix
// ("pkg [pkg.test]") stripped, so scope matching treats a package and its
// internal-test augmentation identically.
func (p *Pass) PkgPath() string { return NormalizePkgPath(p.Pkg.Path()) }

// NormalizePkgPath strips the " [pkg.test]" suffix the build system
// appends to test-variant import paths.
func NormalizePkgPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// InScope reports whether pkgpath is one of the listed package paths.
func InScope(pkgpath string, scope []string) bool {
	pkgpath = NormalizePkgPath(pkgpath)
	for _, s := range scope {
		if pkgpath == s {
			return true
		}
	}
	return false
}

// Callee resolves the function or method a call expression invokes, or nil
// when the callee is not a named function (a function value, a conversion,
// a built-in).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier: pkg.Func.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// RunPackage applies each analyzer to one type-checked package and returns
// the surviving (non-suppressed) diagnostics sorted by position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx := buildSuppressIndex(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			suppress: idx,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
