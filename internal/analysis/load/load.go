// Package load is a minimal, dependency-free substitute for
// golang.org/x/tools/go/packages: it shells out to `go list -json -deps`
// for build metadata, then parses and type-checks every package from
// source in dependency order. Only the standard toolchain is required —
// no export data, no network, no module downloads (the repository and its
// analyzer testdata import nothing outside the standard library).
//
// cmd/crowdlint's standalone mode, the analysistest golden harness, and
// the repository self-check test all load through this package; the `go
// vet -vettool` path instead type-checks from the gc export data the build
// system hands it (see internal/analysis/unitchecker).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// A Package is one type-checked target package (a package named by the
// Load patterns, not a dependency).
type Package struct {
	// PkgPath is the import path as the build system reports it; test
	// variants keep their " [pkg.test]" suffix.
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Options tunes Load.
type Options struct {
	// Tests includes each package's test variants (the augmented package
	// with its _test.go files and the external _test package) among the
	// targets. Synthesized test-main packages are never returned.
	Tests bool
}

// Load resolves patterns relative to dir and returns the type-checked
// target packages in build order. Any parse or type error in a target or a
// dependency fails the load: the analyzers assume well-typed input.
func Load(dir string, opts Options, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := []string{"list", "-json", "-deps"}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// The repository is pure Go: with cgo off, the toolchain selects
	// cgo-free variants of the few standard packages (net, os/user) that
	// would otherwise list C sources this loader cannot type-check.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	typesByPath := map[string]*types.Package{"unsafe": types.Unsafe}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	var targets []*Package
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		// Skip synthesized test-main packages; their generated sources live
		// in the build cache and hold nothing worth analyzing.
		if strings.HasSuffix(lp.ImportPath, ".test") && lp.Name == "main" {
			continue
		}
		target := !lp.DepOnly
		mode := parser.SkipObjectResolution
		if target {
			mode |= parser.ParseComments
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			path := name
			if !strings.HasPrefix(path, "/") {
				path = lp.Dir + "/" + name
			}
			f, err := parser.ParseFile(fset, path, nil, mode)
			if err != nil {
				return nil, fmt.Errorf("load: %s: %v", lp.ImportPath, err)
			}
			files = append(files, f)
		}
		var info *types.Info
		if target {
			info = &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				Implicits:  make(map[ast.Node]types.Object),
				Scopes:     make(map[ast.Node]*types.Scope),
			}
		}
		conf := types.Config{
			Importer: importerFunc(func(path string) (*types.Package, error) {
				if mapped, ok := lp.ImportMap[path]; ok {
					path = mapped
				}
				if pkg, ok := typesByPath[path]; ok {
					return pkg, nil
				}
				return nil, fmt.Errorf("package %q not in the dependency closure", path)
			}),
			Sizes: sizes,
		}
		pkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %v", lp.ImportPath, err)
		}
		typesByPath[lp.ImportPath] = pkg
		if target {
			targets = append(targets, &Package{
				PkgPath: lp.ImportPath,
				Dir:     lp.Dir,
				Fset:    fset,
				Syntax:  files,
				Types:   pkg,
				Info:    info,
			})
		}
	}
	return targets, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
