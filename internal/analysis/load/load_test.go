package load_test

import (
	"testing"

	"crowdpricing/internal/analysis/load"
)

// The determinism golden modules double as loader fixtures: tiny
// self-contained modules with stdlib-only imports.
func TestLoadGoldenModule(t *testing.T) {
	pkgs, err := load.Load("../passes/determinism/testdata/strict", load.Options{}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.PkgPath != "crowdpricing/internal/core" {
		t.Errorf("PkgPath = %q, want crowdpricing/internal/core", pkg.PkgPath)
	}
	if len(pkg.Syntax) == 0 {
		t.Error("no parsed files")
	}
	if pkg.Types == nil || pkg.Info == nil {
		t.Fatal("package not type-checked")
	}
	// Comments must be preserved: the analyzers read directives from them.
	commented := false
	for _, f := range pkg.Syntax {
		if len(f.Comments) > 0 {
			commented = true
		}
	}
	if !commented {
		t.Error("loader dropped comments; directives would be invisible")
	}
}

func TestLoadBadDir(t *testing.T) {
	if _, err := load.Load("testdata/does-not-exist", load.Options{}, "./..."); err == nil {
		t.Fatal("expected an error loading a nonexistent directory")
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := load.Load("../passes/determinism/testdata/strict", load.Options{}, "./nosuchpkg"); err == nil {
		t.Fatal("expected an error for a pattern matching nothing")
	}
}
