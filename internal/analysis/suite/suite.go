// Package suite assembles the crowdlint analyzer set. cmd/crowdlint, the
// unitchecker driver, and the repository self-check test all consume this
// one list, so an analyzer added here is simultaneously available
// standalone, under `go vet -vettool`, and in the regression gate.
package suite

import (
	"crowdpricing/internal/analysis"
	"crowdpricing/internal/analysis/passes/determinism"
	"crowdpricing/internal/analysis/passes/directive"
	"crowdpricing/internal/analysis/passes/locksafe"
	"crowdpricing/internal/analysis/passes/metriclint"
)

// Analyzers is the full crowdlint suite.
var Analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	locksafe.Analyzer,
	metriclint.Analyzer,
	directive.Analyzer,
}

func init() {
	// The directive analyzer validates allow-directives against the real
	// analyzer set; registering here keeps the two in lockstep.
	for _, a := range Analyzers {
		directive.KnownAnalyzers[a.Name] = true
	}
}
