package locksafe_test

import (
	"testing"

	"crowdpricing/internal/analysis/analysistest"
	"crowdpricing/internal/analysis/passes/locksafe"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata/locks", locksafe.Analyzer)
}
