// Package engine is golden input for the locksafe analyzer: the module
// path claims crowdpricing/internal/engine, one of the two packages whose
// mutexes fence the quote hot path.
package engine

import (
	"net/http"
	"sync"
)

type sched struct {
	mu    sync.Mutex
	queue chan int
}

func (s *sched) Solve() {}

func (s *sched) sendWhileHeld() {
	s.mu.Lock()
	s.queue <- 1 // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

func (s *sched) recvWhileHeld() int {
	s.mu.Lock()
	v := <-s.queue // want `channel receive while s\.mu is held`
	s.mu.Unlock()
	return v
}

func (s *sched) solveWhileHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Solve() // want `Solve while s\.mu is held`
}

func (s *sched) httpWhileHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := http.Get("http://localhost/metrics") // want `net/http call \(Get\) while s\.mu is held`
	_, _ = resp, err
}

func (s *sched) waitWhileHeld(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while s\.mu is held`
}

func (s *sched) blockingSelectWhileHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while s\.mu is held`
	case v := <-s.queue:
		_ = v
	}
}

// guardedEnqueue is the engine's sanctioned admission pattern: a select
// with a default clause is non-blocking.
func (s *sched) guardedEnqueue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.queue <- 1:
		return true
	default:
		return false
	}
}

func (s *sched) neverReleased() {
	s.mu.Lock() // want `s\.mu\.Lock\(\) is never released in this function`
	s.queue = make(chan int)
}

func (s *sched) returnWhileHeld(cond bool) int {
	s.mu.Lock()
	if cond {
		return 1 // want `return while s\.mu is still locked`
	}
	s.mu.Unlock()
	return 0
}

// earlyUnlockThenBlock releases before blocking: clean.
func (s *sched) earlyUnlockThenBlock() {
	s.mu.Lock()
	s.queue = make(chan int, 1)
	s.mu.Unlock()
	s.queue <- 1
}

// goroutineIsIndependent: the closure body runs outside the parent's
// lexical locks (and is analyzed as its own function).
func (s *sched) goroutineIsIndependent() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.queue <- 1
	}()
}

type reader struct {
	mu sync.RWMutex
	ch chan int
}

func (r *reader) rlockSend() {
	r.mu.RLock()
	r.ch <- 1 // want `channel send while r\.mu is held`
	r.mu.RUnlock()
}

func (s *sched) annotated() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//crowdlint:allow locksafe -- golden test exercises the escape hatch
	s.queue <- 1
}
