module crowdpricing/internal/engine

go 1.24
