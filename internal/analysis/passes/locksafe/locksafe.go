// Package locksafe enforces the campaign/engine locking discipline: the
// quote hot path promises O(1) responses under per-campaign mutexes, so
// nothing slow or blocking may run while one of those mutexes is held,
// and every acquired mutex must be released on every return path.
//
// Within each function (closures are analyzed as their own functions) the
// analyzer tracks sync.Mutex/RWMutex Lock/RLock acquisitions and flags,
// while a lock is held:
//
//   - engine solves: any call to a function or method named Solve — the
//     multi-millisecond operation the lock-free create path exists for;
//   - network round trips: calls into net/http;
//   - channel sends and receives, and select statements without a default
//     clause (a select with default is non-blocking and exempt — the
//     engine's guarded admission enqueue is the sanctioned pattern);
//   - sync.WaitGroup.Wait.
//
// A Lock with no matching Unlock anywhere on the same lock expression is
// reported, as is a return statement executed while a non-deferred lock
// is still held. `defer mu.Unlock()` is the sanctioned release pattern
// and satisfies both checks (and the held-region then runs to the end of
// the function, as it should).
//
// The analysis is lexical (positions, not control-flow paths): a branch
// that unlocks early ends the tracked region at that unlock. That trades
// a few false negatives for zero path-explosion, which is the right
// trade for a repo-specific gate. Waive a finding with
// `//crowdlint:allow locksafe -- reason`.
package locksafe

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"

	"crowdpricing/internal/analysis"
)

// Packages in scope: the two packages whose mutexes fence the quote hot
// path and the solve scheduler.
var Packages = []string{
	"crowdpricing/internal/campaign",
	"crowdpricing/internal/engine",
}

// Analyzer is the locking-discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "forbid blocking operations (Solve, net/http, channel ops, WaitGroup.Wait) while a " +
		"sync.Mutex/RWMutex is held, and require every Lock to pair with an Unlock on all return paths",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.PkgPath(), Packages) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.TestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// event is one lock-relevant occurrence in a function body, in source
// order.
type event struct {
	pos  token.Pos
	kind eventKind
	// lock is the printed lock expression ("m.mu") for acquire/release
	// events.
	lock string
	// what describes the blocking operation for block events.
	what string
}

type eventKind int

const (
	acquire eventKind = iota
	release
	deferRelease
	block
	ret
)

// checkFunc analyzes one function body. Closures are collected and
// analyzed separately — a goroutine body does not run under the lexical
// locks of its parent.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []event
	var closures []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			closures = append(closures, n.Body)
			return false
		case *ast.DeferStmt:
			if name, lockExpr, ok := mutexOp(pass, n.Call); ok && isUnlock(name) {
				events = append(events, event{pos: n.Pos(), kind: deferRelease, lock: lockExpr})
			}
			// Other deferred calls run after the body; their content is
			// checked when the inspector descends into them.
			return true
		case *ast.CallExpr:
			if name, lockExpr, ok := mutexOp(pass, n); ok {
				kind := release
				if isLock(name) {
					kind = acquire
				}
				events = append(events, event{pos: n.Pos(), kind: kind, lock: lockExpr})
				return true
			}
			if what, ok := blockingCall(pass, n); ok {
				events = append(events, event{pos: n.Pos(), kind: block, what: what})
			}
		case *ast.SendStmt:
			events = append(events, event{pos: n.Pos(), kind: block, what: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, event{pos: n.Pos(), kind: block, what: "channel receive"})
			}
		case *ast.SelectStmt:
			// A select with a default clause is non-blocking by
			// construction; one without parks the goroutine. Either way the
			// comm guards (`case <-ch:`, `case ch <- v:`) are part of the
			// select itself, not independent channel ops, so only the
			// clause bodies are descended into.
			if !selectHasDefault(n) {
				events = append(events, event{pos: n.Pos(), kind: block, what: "blocking select"})
			}
			for _, clause := range n.Body.List {
				cc := clause.(*ast.CommClause)
				for _, stmt := range cc.Body {
					ast.Inspect(stmt, func(m ast.Node) bool { return inspectInner(pass, m, &events, &closures) })
				}
			}
			return false
		case *ast.ReturnStmt:
			events = append(events, event{pos: n.Pos(), kind: ret})
		}
		return true
	})
	reportEvents(pass, events)
	for _, c := range closures {
		checkFunc(pass, c)
	}
}

// inspectInner mirrors the main Inspect callback for statements nested
// under a non-blocking select's comm clauses (their guarding send/receive
// is exempt, their bodies are not).
func inspectInner(pass *analysis.Pass, n ast.Node, events *[]event, closures *[]*ast.BlockStmt) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		*closures = append(*closures, n.Body)
		return false
	case *ast.CallExpr:
		if name, lockExpr, ok := mutexOp(pass, n); ok {
			kind := release
			if isLock(name) {
				kind = acquire
			}
			*events = append(*events, event{pos: n.Pos(), kind: kind, lock: lockExpr})
			return true
		}
		if what, ok := blockingCall(pass, n); ok {
			*events = append(*events, event{pos: n.Pos(), kind: block, what: what})
		}
	case *ast.SendStmt:
		*events = append(*events, event{pos: n.Pos(), kind: block, what: "channel send"})
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			*events = append(*events, event{pos: n.Pos(), kind: block, what: "channel receive"})
		}
	case *ast.ReturnStmt:
		*events = append(*events, event{pos: n.Pos(), kind: ret})
	}
	return true
}

// reportEvents scans the position-ordered event stream, tracking open lock
// regions.
func reportEvents(pass *analysis.Pass, events []event) {
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	type region struct {
		pos      token.Pos
		lock     string
		deferred bool
	}
	var open []region
	heldNonDeferred := func() (string, bool) {
		for _, r := range open {
			if !r.deferred {
				return r.lock, true
			}
		}
		return "", false
	}
	for _, ev := range events {
		switch ev.kind {
		case acquire:
			open = append(open, region{pos: ev.pos, lock: ev.lock})
		case deferRelease:
			// Mark the most recent matching region as defer-released: held
			// to function end, but every return path releases it.
			for i := len(open) - 1; i >= 0; i-- {
				if open[i].lock == ev.lock && !open[i].deferred {
					open[i].deferred = true
					break
				}
			}
		case release:
			for i := len(open) - 1; i >= 0; i-- {
				if open[i].lock == ev.lock && !open[i].deferred {
					open = append(open[:i], open[i+1:]...)
					break
				}
			}
		case block:
			for _, r := range open {
				pass.Reportf(ev.pos, "%s while %s is held: the lock fences an O(1) hot path, move the blocking work outside it", ev.what, r.lock)
				break
			}
		case ret:
			if lock, held := heldNonDeferred(); held {
				pass.Reportf(ev.pos, "return while %s is still locked: unlock before returning or use defer %s.Unlock()", lock, lock)
			}
		}
	}
	for _, r := range open {
		if !r.deferred {
			pass.Reportf(r.pos, "%s.Lock() is never released in this function: add an Unlock on every path (defer %s.Unlock() is the sanctioned pattern)", r.lock, r.lock)
		}
	}
}

// mutexOp reports whether call is a Lock/RLock/Unlock/RUnlock method call
// on a sync.Mutex or sync.RWMutex, returning the method name and the
// printed lock expression.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (method, lockExpr string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	if !isLock(name) && !isUnlock(name) {
		return "", "", false
	}
	tv, okT := pass.Info.Types[sel.X]
	if !okT || !isMutexType(tv.Type) {
		return "", "", false
	}
	return name, exprString(pass.Fset, sel.X), true
}

func isLock(name string) bool   { return name == "Lock" || name == "RLock" }
func isUnlock(name string) bool { return name == "Unlock" || name == "RUnlock" }

func isMutexType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// blockingCall classifies calls that park the goroutine: engine solves,
// net/http round trips, WaitGroup.Wait.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil {
		return "", false
	}
	if fn.Name() == "Solve" {
		return "call to " + fn.FullName(), true
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "net/http" {
		return "net/http call (" + fn.Name() + ")", true
	}
	if fn.Name() == "Wait" {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if tv, okT := pass.Info.Types[sel.X]; okT && isWaitGroup(tv.Type) {
				return "sync.WaitGroup.Wait", true
			}
		}
	}
	return "", false
}

func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
