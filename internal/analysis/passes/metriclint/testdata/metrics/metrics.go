// Package server is golden input for the metriclint analyzer: the module
// path claims crowdpricing/internal/server, the metrics-rendering
// package.
package server

import "fmt"

type row struct {
	name, typ, help string
	value           int64
}

var goodRows = []row{
	{"crowdpricing_requests_total", "counter", "HTTP requests accepted.", 1},
	{"crowdpricing_queue_depth", "gauge", "Solves waiting for a worker.", 2},
	{name: "crowdpricing_cache_hits_total", typ: "counter", help: "Policy cache hits.", value: 3},
}

var badRows = []row{
	{"crowdpricing_cache_hits", "counter", "Policy cache hits.", 1},          // want `counter "crowdpricing_cache_hits" must end in _total`
	{"crowdpricing_uptime_seconds_total", "gauge", "Process uptime.", 2},     // want `gauge "crowdpricing_uptime_seconds_total" must not end in _total`
	{"crowdpricing_solves_total", "count", "Solves completed.", 3},           // want `unknown metric type "count"`
	{"crowdpricing_errors_total", "counter", "errors without a period", 4},   // want `needs a non-empty HELP sentence ending in a period`
	{name: "crowdpricing_rejects", typ: "counter", help: "Sheds.", value: 5}, // want `counter "crowdpricing_rejects" must end in _total`
}

const badName = "crowdpricing_Queue_Depth" // want `metric name "crowdpricing_Queue_Depth" is not snake_case`

const doubledUnderscore = "crowdpricing__depth" // want `not snake_case`

const goodFormat = "crowdpricing_solve_latency_bucket{endpoint=%q,le=%q} %d\n"

const badLabel = "crowdpricing_requests_total{shard=%q} %d\n" // want `label "shard" is not in the closed label set`

// The observability labels are in the closed set; any other newcomer
// still fails.
const goodStageFormat = "crowdpricing_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n"

const goodCohortFormat = "crowdpricing_cohort_quotes_total{cohort=%q} %d\n"

const badTenantLabel = "crowdpricing_cohort_quotes_total{tenant=%q} %d\n" // want `label "tenant" is not in the closed label set`

func writeKindCounter(name, help string, v int64) string {
	return fmt.Sprintf("%s{kind=%q} %d\n", name, "deadline", v)
}

func render() string {
	out := writeKindCounter("crowdpricing_kind_requests_total", "Requests by problem kind.", 1)
	out += writeKindCounter("crowdpricing_kind_hits", "Cache hits by problem kind.", 2)           // want `counter "crowdpricing_kind_hits" must end in _total`
	out += writeKindCounter("crowdpricing_kind_errors_total", "errors by kind without period", 3) // want `needs a non-empty HELP sentence ending in a period`
	return out
}
