module crowdpricing/internal/server

go 1.24
