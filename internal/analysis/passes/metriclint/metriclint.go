// Package metriclint enforces Prometheus naming rules at metric
// definition sites, at compile time — the static complement of the
// runtime /metrics conformance test (internal/server's
// TestMetricsPrometheusConformance). The runtime test proves the rendered
// exposition is well-formed; this analyzer pins the names and label sets
// at the source locations where someone would add a new metric, so a
// misnamed counter fails `go vet` before it ever renders.
//
// Rules, applied in the metrics-rendering package (internal/server):
//
//   - every string literal in the metric namespace (crowdpricing_*) must
//     be snake_case: lowercase letters, digits, single underscores, no
//     leading/trailing/doubled underscore;
//   - metric rows declared as {name, typ, help, ...} struct literals (the
//     /metrics table) must use a known type (counter, gauge, histogram);
//     counters must end in _total, non-counters must not; help strings
//     must be non-empty sentences ending in a period;
//   - calls to the counter-family helpers (func names containing
//     "Counter") must pass a _total name and a period-terminated help;
//   - label maps are closed: a label key rendered inside {...} in a
//     format string must belong to AllowedLabels. Growing the label set is
//     a deliberate act — extend AllowedLabels in the same change that adds
//     the label, with review on the cardinality.
//
// Waive a finding with `//crowdlint:allow metriclint -- reason`.
package metriclint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"crowdpricing/internal/analysis"
)

// Packages in scope: where metric families are defined and rendered.
var Packages = []string{
	"crowdpricing/internal/server",
}

// Namespace is the metric-name prefix that marks a string literal as a
// metric family name.
const Namespace = "crowdpricing_"

// AllowedLabels is the closed label set. Every label key rendered in an
// exposition format string must be listed here. "stage" (pipeline stage
// of the request-tracing histograms) and "cohort" (campaign cohort of the
// analytics counters) are bounded by construction: stages are a compiled
// enum and cohorts are kind × adaptive.
var AllowedLabels = []string{"kind", "endpoint", "le", "stage", "cohort"}

// Analyzer is the metric-naming checker.
var Analyzer = &analysis.Analyzer{
	Name: "metriclint",
	Doc: "enforce Prometheus naming at metric definition sites: snake_case crowdpricing_* names, " +
		"counters ending in _total, period-terminated help strings, and a closed label set",
	Run: run,
}

var (
	snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
	labelUse  = regexp.MustCompile(`\{([^{}]*)\}`)
	labelKey  = regexp.MustCompile(`^([A-Za-z_][A-Za-z0-9_]*)=`)
)

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.PkgPath(), Packages) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.TestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind == token.STRING {
					checkLiteral(pass, n)
				}
			case *ast.CompositeLit:
				checkMetricRow(pass, n)
			case *ast.CallExpr:
				checkCounterHelper(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkLiteral applies the namespace and label rules to every string
// literal: metric names must be snake_case wherever they appear, and any
// {label=...} segment must draw from the closed label set.
func checkLiteral(pass *analysis.Pass, lit *ast.BasicLit) {
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if strings.HasPrefix(s, Namespace) && !strings.ContainsAny(s, " {%\n") {
		if !snakeCase.MatchString(s) {
			pass.Reportf(lit.Pos(), "metric name %q is not snake_case (lowercase letters, digits, single underscores)", s)
		}
	}
	for _, m := range labelUse.FindAllStringSubmatch(s, -1) {
		for _, part := range strings.Split(m[1], ",") {
			km := labelKey.FindStringSubmatch(strings.TrimSpace(part))
			if km == nil {
				continue
			}
			if !allowedLabel(km[1]) {
				pass.Reportf(lit.Pos(), "label %q is not in the closed label set %v: extend metriclint.AllowedLabels deliberately (mind the cardinality)", km[1], AllowedLabels)
			}
		}
	}
}

func allowedLabel(key string) bool {
	for _, l := range AllowedLabels {
		if key == l {
			return true
		}
	}
	return false
}

// checkMetricRow validates {name, typ, help, ...} struct literals — the
// shape of the /metrics rendering table.
func checkMetricRow(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	if !hasStringFields(st, "name", "typ", "help") || len(lit.Elts) == 0 {
		return
	}
	name, namePos := fieldString(st, lit, "name")
	typ, _ := fieldString(st, lit, "typ")
	help, helpPos := fieldString(st, lit, "help")
	if name == "" || typ == "" {
		return
	}
	switch typ {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(namePos, "counter %q must end in _total (Prometheus counter naming convention)", name)
		}
	case "gauge", "histogram", "summary":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(namePos, "%s %q must not end in _total: that suffix is reserved for counters", typ, name)
		}
	default:
		pass.Reportf(namePos, "unknown metric type %q (want counter, gauge, histogram, or summary)", typ)
	}
	if helpPos.IsValid() && !validHelp(help) {
		pass.Reportf(helpPos, "metric %q needs a non-empty HELP sentence ending in a period", name)
	}
}

// hasStringFields reports whether st declares every wanted field with
// string type — the signature of a metrics table row.
func hasStringFields(st *types.Struct, want ...string) bool {
	byName := make(map[string]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if basic, ok := f.Type().(*types.Basic); ok && basic.Kind() == types.String {
			byName[f.Name()] = true
		}
	}
	for _, w := range want {
		if !byName[w] {
			return false
		}
	}
	return true
}

// fieldString extracts the string literal assigned to the named field in
// a composite literal, positional or keyed.
func fieldString(st *types.Struct, lit *ast.CompositeLit, field string) (string, token.Pos) {
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
				return literalString(kv.Value)
			}
			continue
		}
		if i < st.NumFields() && st.Field(i).Name() == field {
			return literalString(el)
		}
	}
	return "", token.NoPos
}

func literalString(e ast.Expr) (string, token.Pos) {
	basic, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || basic.Kind != token.STRING {
		return "", token.NoPos
	}
	s, err := strconv.Unquote(basic.Value)
	if err != nil {
		return "", token.NoPos
	}
	return s, basic.Pos()
}

func validHelp(help string) bool {
	return strings.TrimSpace(help) != "" && strings.HasSuffix(strings.TrimSpace(help), ".")
}

// checkCounterHelper validates calls to counter-family render helpers
// (function names containing "Counter"): the name argument must be a
// _total counter and the help argument a period-terminated sentence.
func checkCounterHelper(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil || !strings.Contains(fn.Name(), "Counter") {
		return
	}
	var name, help string
	var namePos, helpPos token.Pos
	for _, arg := range call.Args {
		s, pos := literalString(arg)
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, Namespace) && name == "" {
			name, namePos = s, pos
		} else if help == "" {
			help, helpPos = s, pos
		}
	}
	if name == "" {
		return
	}
	if !strings.HasSuffix(name, "_total") {
		pass.Reportf(namePos, "counter %q must end in _total (Prometheus counter naming convention)", name)
	}
	if helpPos.IsValid() && !validHelp(help) {
		pass.Reportf(helpPos, "metric %q needs a non-empty HELP sentence ending in a period", name)
	}
}
