package metriclint_test

import (
	"testing"

	"crowdpricing/internal/analysis/analysistest"
	"crowdpricing/internal/analysis/passes/metriclint"
)

func TestMetricNaming(t *testing.T) {
	analysistest.Run(t, "testdata/metrics", metriclint.Analyzer)
}
