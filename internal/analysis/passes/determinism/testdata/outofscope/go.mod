module example.com/outside

go 1.24
