// Package outside is golden input proving the determinism analyzer is
// scoped: the module path is not a crowdpricing deterministic package, so
// nothing here is flagged.
package outside

import "time"

func wallClock() time.Time {
	return time.Now()
}

func mapOrder(m map[string]int) int {
	n := 0
	for k := range m {
		n += len(k)
	}
	return n
}
