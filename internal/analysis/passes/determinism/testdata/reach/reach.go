// Package server is golden input for the determinism analyzer's
// reachability tier: wall-clock and global-rand rules apply everywhere,
// but map iteration is only flagged in functions reachable from a
// Fingerprint/encode/snapshot/hash root.
package server

import (
	"fmt"
	"time"
)

// Wall-clock calls are flagged even outside root-reachable code: the
// daemon caches deterministic artifacts.
func uptime(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time\.Since in a deterministic path`
}

// Fingerprint is a root: its map iteration orders the cache key bytes.
func Fingerprint(m map[string]int) string {
	s := ""
	for k, v := range m { // want `map iteration order is random`
		s += fmt.Sprintf("%s=%d;", k, v)
	}
	return s
}

// helper is reachable from encodeState, so its iteration is flagged too.
func helper(m map[string]int) string {
	out := ""
	for k := range m { // want `map iteration order is random`
		out += k
	}
	return out
}

func encodeState(m map[string]int) string {
	return helper(m)
}

// handler is NOT reachable from any root: its map iteration only drives
// request handling, where order does not leak into durable bytes.
func handler(m map[string]int) int {
	n := 0
	for k := range m {
		n += len(k)
	}
	return n
}
