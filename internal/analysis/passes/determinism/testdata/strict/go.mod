module crowdpricing/internal/core

go 1.24
