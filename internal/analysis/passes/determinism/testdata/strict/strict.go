// Package core is golden input for the determinism analyzer's strict
// tier: the module path claims crowdpricing/internal/core, so every
// function is a deterministic path.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `call to time\.Now in a deterministic path`
}

func sinceStart(t0 time.Time) time.Duration {
	return time.Since(t0) // want `call to time\.Since in a deterministic path`
}

func untilDeadline(t1 time.Time) time.Duration {
	return time.Until(t1) // want `call to time\.Until in a deterministic path`
}

// clockValue references time.Now as a value — the injectable-clock
// pattern the analyzer pushes toward, deliberately unflagged.
func clockValue() func() time.Time {
	return time.Now
}

func globalDraw() int {
	return rand.Int() // want `global rand\.Int draws from the process-wide random source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand\.Shuffle`
}

// seededDraw draws from an injected source: methods are sanctioned.
func seededDraw(r *rand.Rand) float64 {
	return r.Float64()
}

// newSeeded builds a seeded source: constructors are sanctioned.
func newSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func mapOrderLeaks(m map[string]int) string {
	s := ""
	for k, v := range m { // want `map iteration order is random`
		s += fmt.Sprintf("%s=%d;", k, v)
	}
	return s
}

// collectThenSort is the sanctioned collect-append idiom.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapWrites only write map entries: order-insensitive.
func mapWrites(src map[string]int) map[string]int {
	out := make(map[string]int, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// intAccum is exact-arithmetic accumulation: order-insensitive.
func intAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// floatAccum is NOT order-insensitive: float addition rounds.
func floatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `map iteration order is random`
		total += v
	}
	return total
}

func inClosure(m map[string]int) func() string {
	return func() string {
		s := ""
		for k := range m { // want `map iteration order is random`
			s += k
		}
		return s
	}
}

func annotated() time.Time {
	//crowdlint:allow determinism -- golden test exercises the escape hatch
	return time.Now()
}
