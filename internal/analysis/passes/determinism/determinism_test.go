package determinism_test

import (
	"testing"

	"crowdpricing/internal/analysis/analysistest"
	"crowdpricing/internal/analysis/passes/determinism"
)

func TestStrictTier(t *testing.T) {
	analysistest.Run(t, "testdata/strict", determinism.Analyzer)
}

func TestReachabilityTier(t *testing.T) {
	analysistest.Run(t, "testdata/reach", determinism.Analyzer)
}

func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, "testdata/outofscope", determinism.Analyzer)
}
