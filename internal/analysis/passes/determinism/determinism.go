// Package determinism enforces the repository's seed-determinism
// contract: policies, schedules, fingerprints, and snapshots must be pure
// functions of their inputs, bit-identical across runs and platforms.
//
// Two package tiers are checked:
//
//   - Strict packages (the solver core, distributions, arrival processes,
//     the simulator, the kind registry, the bench generator, the figure
//     pipeline): every non-test function is a deterministic path. Wall-clock
//     reads, global math/rand draws, and order-sensitive map iteration are
//     flagged anywhere.
//   - Reachability packages (server, engine, campaign): wall-clock and
//     global-rand rules still apply everywhere (these daemons cache and
//     replay deterministic artifacts), but map-iteration is only flagged
//     inside functions reachable from a Fingerprint/encode/snapshot/hash
//     root, where iteration order leaks into cache keys or durable bytes.
//
// Three rules:
//
//   - no wall-clock calls: time.Now, time.Since, time.Until. Referencing
//     time.Now as a value (seeding an injectable clock field) is fine —
//     that is exactly the pattern the analyzer pushes code toward.
//   - no global math/rand or math/rand/v2 top-level draw functions
//     (rand.Int, rand.Float64, rand.Shuffle, ...): they read the shared
//     process-global source. Constructors (rand.New, rand.NewPCG) that
//     build seeded, injectable sources are fine.
//   - no order-sensitive map iteration: `for ... range m` over a map is
//     flagged unless the body is one of the two order-insensitive idioms —
//     a single `xs = append(xs, ...)` collect (sort it afterwards!) or
//     statements that only write map entries.
//
// Waive a finding with `//crowdlint:allow determinism -- reason` on or
// above the line (instrumentation that genuinely wants wall time, jitter
// that genuinely wants decorrelation).
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"crowdpricing/internal/analysis"
)

// StrictPackages are checked in full: every function in them is part of
// the seed→artifact pure function.
var StrictPackages = []string{
	"crowdpricing/internal/core",
	"crowdpricing/internal/dist",
	"crowdpricing/internal/nhpp",
	"crowdpricing/internal/rate",
	"crowdpricing/internal/sim",
	"crowdpricing/internal/kinds",
	"crowdpricing/internal/bench",
	"crowdpricing/internal/exp",
	"crowdpricing/internal/wal",
}

// ReachPackages get the wall-clock and global-rand rules everywhere but
// the map-iteration rule only inside functions reachable from a
// Fingerprint/encode/snapshot/hash root.
var ReachPackages = []string{
	"crowdpricing/internal/server",
	"crowdpricing/internal/engine",
	"crowdpricing/internal/campaign",
}

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand draws, and order-sensitive map iteration " +
		"in packages whose outputs must be bit-identical by seed",
	Run: run,
}

func run(pass *analysis.Pass) error {
	strict := analysis.InScope(pass.PkgPath(), StrictPackages)
	if !strict && !analysis.InScope(pass.PkgPath(), ReachPackages) {
		return nil
	}
	reachable := rootReachable(pass)
	for _, file := range pass.Files {
		if pass.TestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRange := strict || reachable[funcObj(pass, fd)]
			checkFunc(pass, fd.Body, checkMapRange)
		}
	}
	return nil
}

// checkFunc applies the rules to one function body, descending into
// closures (a closure inherits its parent's map-range obligation).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, checkMapRange bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.RangeStmt:
			if checkMapRange {
				checkRange(pass, n)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch pkg {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"call to time.%s in a deterministic path: thread an injectable clock (or annotate instrumentation with //crowdlint:allow determinism -- reason)", name)
		}
	case "math/rand", "math/rand/v2":
		// Only package-level draw functions read the shared global source;
		// methods on an injected *rand.Rand are the sanctioned pattern, as
		// are the constructors that build one.
		if fn.Signature().Recv() != nil {
			return
		}
		switch name {
		case "New", "NewPCG", "NewChaCha8", "NewSource", "NewZipf":
			return
		}
		pass.Reportf(call.Pos(),
			"global %s.%s draws from the process-wide random source: draw from a seeded, injected source instead", pathBase(pkg), name)
	}
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if orderInsensitiveBody(pass, rng.Body) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is random: iterate a sorted key slice (or collect-then-sort), or annotate with //crowdlint:allow determinism -- reason")
}

// orderInsensitiveBody recognizes the loop bodies whose effect cannot
// depend on iteration order: a single collect-append into one slice
// (callers sort afterwards), bodies that only write map entries, and
// integer `+=` accumulations (integer addition is associative and
// commutative — unlike float addition, which IS order-sensitive in the
// low bits and is deliberately not exempted).
func orderInsensitiveBody(pass *analysis.Pass, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	if len(body.List) == 1 {
		if isSelfAppend(body.List[0]) {
			return true
		}
	}
	if allIntAccum(pass, body.List) {
		return true
	}
	for _, stmt := range body.List {
		if !isMapWrite(stmt) {
			return false
		}
	}
	return true
}

// isSelfAppend matches `xs = append(xs, ...)`.
func isSelfAppend(stmt ast.Stmt) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	arg0, ok2 := call.Args[0].(*ast.Ident)
	return ok && ok2 && lhs.Name == arg0.Name
}

// allIntAccum reports whether every statement is an integer `x += expr`
// (or `x++`): exact-arithmetic accumulation commutes across iteration
// order.
func allIntAccum(pass *analysis.Pass, stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if !isIntExpr(pass, s.X) {
				return false
			}
		case *ast.AssignStmt:
			if s.Tok != token.ADD_ASSIGN || len(s.Lhs) != 1 || !isIntExpr(pass, s.Lhs[0]) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func isIntExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// isMapWrite matches `m[k] = v` (and m[k] op= v): writes commute across
// iteration order as long as keys are distinct, which they are when k is
// the range key.
func isMapWrite(stmt ast.Stmt) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if _, ok := lhs.(*ast.IndexExpr); !ok {
			return false
		}
	}
	return true
}

// rootReachable builds the package-internal static call graph and returns
// the set of functions reachable from determinism roots: Fingerprint,
// encode*/Encode*, *Snapshot*/snapshot*, hash*/Hash*, Marshal*.
func rootReachable(pass *analysis.Pass) map[*types.Func]bool {
	callees := make(map[*types.Func][]*types.Func)
	var roots []*types.Func
	for _, file := range pass.Files {
		// Test files neither contribute roots nor edges: a test helper named
		// like a root must not put production functions under the map-range
		// rule (diagnostics are never reported in test files anyway).
		if pass.TestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := funcObj(pass, fd)
			if obj == nil {
				continue
			}
			if isRootName(fd.Name.Name) {
				roots = append(roots, obj)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := analysis.Callee(pass.Info, call); fn != nil && fn.Pkg() == pass.Pkg {
					callees[obj] = append(callees[obj], fn)
				}
				return true
			})
		}
	}
	reachable := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if reachable[fn] {
			return
		}
		reachable[fn] = true
		for _, next := range callees[fn] {
			visit(next)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return reachable
}

func isRootName(name string) bool {
	lower := strings.ToLower(name)
	switch {
	case name == "Fingerprint",
		strings.HasPrefix(lower, "encode"),
		strings.Contains(lower, "snapshot"),
		strings.HasPrefix(lower, "hash"),
		strings.HasPrefix(name, "Marshal"):
		return true
	}
	return false
}

func funcObj(pass *analysis.Pass, fd *ast.FuncDecl) *types.Func {
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	return fn
}
