// Package directive validates crowdlint's own escape hatch so it cannot
// rot: every //crowdlint: comment anywhere in the module (test files
// included) must be a well-formed allow-directive that names real
// analyzers and carries a reason.
//
//	//crowdlint:allow determinism -- request-latency metric wants wall time
//
// Rejected: unknown verbs, unknown analyzer names, missing "--", and
// empty reasons. A directive that suppresses nothing is a lie in the
// source; this analyzer is the reason the other three can afford a
// liberal escape hatch.
package directive

import (
	"crowdpricing/internal/analysis"
)

// KnownAnalyzers is the set of names an allow-directive may reference.
// Registered by the suite at init time (the suite imports this package,
// not the other way round, to avoid a cycle).
var KnownAnalyzers = map[string]bool{}

// Analyzer is the directive validator.
var Analyzer = &analysis.Analyzer{
	Name: "directive",
	Doc: "validate //crowdlint:allow directives: well-formed, naming a real analyzer, " +
		"with a mandatory reason after --",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, d := range analysis.ParseDirectives(file) {
			if d.Problem != "" {
				pass.Reportf(d.Pos, "malformed crowdlint directive %q: %s", d.Raw, d.Problem)
				continue
			}
			for _, name := range d.Analyzers {
				if !KnownAnalyzers[name] {
					pass.Reportf(d.Pos, "allow-directive names unknown analyzer %q (known: %s)", name, knownList())
				}
			}
		}
	}
	return nil
}

func knownList() string {
	names := make([]string, 0, len(KnownAnalyzers))
	for name := range KnownAnalyzers {
		names = append(names, name)
	}
	// Deterministic order for the diagnostic text.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
