package directive_test

import (
	"strings"
	"testing"

	"crowdpricing/internal/analysis"
	"crowdpricing/internal/analysis/load"
	"crowdpricing/internal/analysis/passes/directive"

	// Registers the real analyzer names in directive.KnownAnalyzers.
	_ "crowdpricing/internal/analysis/suite"
)

// The golden module cannot carry // want comments (a want cannot trail a
// line comment), so the expectations live here: one entry per bad
// directive in dirs.go, matched by message substring in diagnostic order.
func TestDirectiveValidation(t *testing.T) {
	pkgs, err := load.Load("testdata/dirs", load.Options{}, "./...")
	if err != nil {
		t.Fatalf("loading golden module: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := analysis.RunPackage(pkg.Fset, pkg.Syntax, pkg.Types, pkg.Info, []*analysis.Analyzer{directive.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`unknown analyzer "nosuchanalyzer"`,
		`missing "-- reason"`,
		`empty reason after --`,
		`unknown crowdlint directive verb deny`,
		`empty analyzer name`,
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, w)
		}
	}
}

func TestKnownAnalyzersRegistered(t *testing.T) {
	for _, name := range []string{"determinism", "locksafe", "metriclint", "directive"} {
		if !directive.KnownAnalyzers[name] {
			t.Errorf("suite did not register analyzer %q", name)
		}
	}
}
