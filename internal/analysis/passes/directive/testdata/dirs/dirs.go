// Package dirs is golden input for the directive analyzer. The test
// asserts on the diagnostics directly (a // want comment cannot trail a
// line comment), so the expectations live in dirs_test.go's table: one
// finding per bad directive below, none for the good ones.
package dirs

//crowdlint:allow determinism -- a well-formed directive with a reason
func goodSingle() {}

//crowdlint:allow determinism,locksafe -- several analyzers at once
func goodMulti() {}

//crowdlint:allow nosuchanalyzer -- reason given, analyzer unknown
func badUnknownAnalyzer() {}

//crowdlint:allow determinism
func badMissingReason() {}

//crowdlint:allow determinism --
func badEmptyReason() {}

//crowdlint:deny determinism -- unknown verb
func badVerb() {}

//crowdlint:allow -- no analyzer named
func badNoAnalyzer() {}
