module example.com/dirs

go 1.24
