package core

import (
	"math"
	"testing"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/mdp"
)

func testTradeoff() *TradeoffProblem {
	return &TradeoffProblem{
		N:        20,
		Alpha:    50, // cents per hour of latency
		Lambda:   2000,
		Accept:   choice.Paper13,
		MinPrice: 1,
		MaxPrice: 40,
	}
}

func TestTradeoffValidate(t *testing.T) {
	if err := testTradeoff().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*TradeoffProblem{
		{N: 0, Alpha: 1, Lambda: 1, Accept: choice.Paper13, MaxPrice: 5},
		{N: 1, Alpha: -1, Lambda: 1, Accept: choice.Paper13, MaxPrice: 5},
		{N: 1, Alpha: 1, Lambda: 0, Accept: choice.Paper13, MaxPrice: 5},
		{N: 1, Alpha: 1, Lambda: 1, Accept: nil, MaxPrice: 5},
		{N: 1, Alpha: 1, Lambda: 1, Accept: choice.Paper13, MinPrice: 9, MaxPrice: 5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestTradeoffValueLinearInN: the telescoped Bellman equation makes
// Opt(n) = n · min_c(c + cost/q(c)), so values are exactly linear.
func TestTradeoffValueLinearInN(t *testing.T) {
	for _, solve := range []func(*TradeoffProblem) (*TradeoffPolicy, error){
		(*TradeoffProblem).SolveFixedRate,
		(*TradeoffProblem).SolveWorkerArrival,
	} {
		pol, err := solve(testTradeoff())
		if err != nil {
			t.Fatal(err)
		}
		inc := pol.Value[1]
		for n := 2; n <= 20; n++ {
			if math.Abs(pol.Value[n]-float64(n)*inc) > 1e-9*(1+pol.Value[n]) {
				t.Errorf("Value[%d] = %v, want %v", n, pol.Value[n], float64(n)*inc)
			}
		}
		if pol.Value[0] != 0 {
			t.Errorf("Value[0] = %v", pol.Value[0])
		}
	}
}

// TestTradeoffAlphaRaisesPrice: more impatience (higher α) never lowers the
// optimal price.
func TestTradeoffAlphaRaisesPrice(t *testing.T) {
	prev := -1
	for _, alpha := range []float64{1, 10, 100, 1000, 10000} {
		p := testTradeoff()
		p.Alpha = alpha
		pol, err := p.SolveWorkerArrival()
		if err != nil {
			t.Fatal(err)
		}
		if pol.Price[1] < prev {
			t.Errorf("alpha=%v: price %d dropped below %d", alpha, pol.Price[1], prev)
		}
		prev = pol.Price[1]
	}
}

// TestTradeoffMatchesValueIteration cross-validates the telescoped
// worker-arrival solution against the generic value-iteration solver on the
// same stochastic shortest path MDP.
func TestTradeoffMatchesValueIteration(t *testing.T) {
	p := testTradeoff()
	p.N = 6
	pol, err := p.SolveWorkerArrival()
	if err != nil {
		t.Fatal(err)
	}
	perArrival := p.Alpha / p.Lambda
	m := mdp.Stationary{
		States:  p.N + 1,
		Actions: p.MaxPrice - p.MinPrice + 1,
		Transitions: func(s, a int) []mdp.Transition {
			if s == 0 {
				return nil
			}
			c := p.MinPrice + a
			q := p.Accept.Accept(c)
			return []mdp.Transition{
				{Next: s - 1, Prob: q, Cost: float64(c) + perArrival},
				{Next: s, Prob: 1 - q, Cost: perArrival},
			}
		},
		Absorbing: func(s int) bool { return s == 0 },
	}
	v, _, err := mdp.SolveValueIteration(m, 1e-10, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= p.N; n++ {
		if math.Abs(v[n]-pol.Value[n]) > 1e-5*(1+v[n]) {
			t.Errorf("V(%d): value iteration %v, telescoped %v", n, v[n], pol.Value[n])
		}
	}
}

// TestTradeoffFixedRateSmallStep: the fixed-rate and worker-arrival answers
// converge as the step shrinks (q ≈ m for small m).
func TestTradeoffFixedRateSmallStep(t *testing.T) {
	p := testTradeoff()
	fr, err := p.SolveFixedRate()
	if err != nil {
		t.Fatal(err)
	}
	wa, err := p.SolveWorkerArrival()
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(fr.Value[p.N] - wa.Value[p.N]); d > 0.05*wa.Value[p.N] {
		t.Errorf("fixed-rate %v and worker-arrival %v diverge by %v", fr.Value[p.N], wa.Value[p.N], d)
	}
}

func testMultiType() *MultiTypeProblem {
	lambdas := make([]float64, 6)
	for i := range lambdas {
		lambdas[i] = 1733
	}
	return &MultiTypeProblem{
		N1: 8, N2: 6, Intervals: 6, Lambdas: lambdas,
		Accept1:  choice.Paper13,
		Accept2:  choice.Logistic{S: 15, B: 0.2, M: 2000}, // less attractive type
		MinPrice: 0, MaxPrice: 20, Penalty: 300, TruncEps: 1e-9,
	}
}

func TestMultiTypeValidate(t *testing.T) {
	if err := testMultiType().Validate(); err != nil {
		t.Fatal(err)
	}
	p := testMultiType()
	p.N1 = 0
	if err := p.Validate(); err == nil {
		t.Error("N1=0 accepted")
	}
}

// TestMultiTypeReducesToSingle: with one type emptied, the joint DP must
// reproduce the single-type DP's value function.
func TestMultiTypeReducesToSingle(t *testing.T) {
	mp := testMultiType()
	pol, err := mp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	single := &DeadlineProblem{
		N: mp.N1, Horizon: 2, Intervals: mp.Intervals, Lambdas: mp.Lambdas,
		Accept: mp.Accept1, MinPrice: mp.MinPrice, MaxPrice: mp.MaxPrice,
		Penalty: mp.Penalty, TruncEps: mp.TruncEps,
	}
	sp, err := single.SolveSimple()
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= mp.Intervals; tt++ {
		for n1 := 0; n1 <= mp.N1; n1++ {
			joint := pol.Opt[tt][mp.idx(n1, 0)]
			want := sp.Opt[tt][n1]
			if math.Abs(joint-want) > 1e-6*(1+want) {
				t.Fatalf("Opt[t=%d][n1=%d, n2=0] = %v, single-type %v", tt, n1, joint, want)
			}
		}
	}
}

// TestMultiTypeLessAttractiveCostsMore: the type with lower intrinsic
// utility (higher B) needs a higher price at the same backlog.
func TestMultiTypeLessAttractiveCostsMore(t *testing.T) {
	mp := testMultiType()
	mp.N1, mp.N2 = 6, 6
	pol, err := mp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := pol.PricesAt(6, 6, 0)
	if c2 < c1 {
		t.Errorf("less attractive type priced lower: c1=%d c2=%d", c1, c2)
	}
}

func TestMultiTypePricesAtClamps(t *testing.T) {
	mp := testMultiType()
	pol, err := mp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	a, b := pol.PricesAt(-5, 999, -3)
	a2, b2 := pol.PricesAt(0, mp.N2, 0)
	if a != a2 || b != b2 {
		t.Errorf("clamping mismatch: (%d,%d) vs (%d,%d)", a, b, a2, b2)
	}
}

func TestMajorityVoteWorstCase(t *testing.T) {
	q, err := MajorityVote(3)
	if err != nil {
		t.Fatal(err)
	}
	// From the origin: worst case is 3 answers (e.g. 1 Yes, 1 No, then one
	// more).
	if got := q.WorstCaseAdditional(0, 0); got != 3 {
		t.Errorf("worst case from origin = %d, want 3", got)
	}
	// At (1,1), one more answer always decides.
	if got := q.WorstCaseAdditional(1, 1); got != 1 {
		t.Errorf("worst case at (1,1) = %d, want 1", got)
	}
	// Decision points need nothing.
	if got := q.WorstCaseAdditional(2, 0); got != 0 {
		t.Errorf("worst case at (2,0) = %d, want 0", got)
	}
	if _, err := MajorityVote(4); err == nil {
		t.Error("even k accepted")
	}
	if _, err := MajorityVote(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestMajorityVoteFive(t *testing.T) {
	q, err := MajorityVote(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.WorstCaseAdditional(0, 0); got != 5 {
		t.Errorf("worst case from origin = %d, want 5", got)
	}
	if got := q.WorstCaseAdditional(2, 2); got != 1 {
		t.Errorf("worst case at (2,2) = %d, want 1", got)
	}
}

// TestPlanWithQuality: the plan inflates the task count by the worst case
// and tracks load as tasks progress.
func TestPlanWithQuality(t *testing.T) {
	base := testProblem(10, 6)
	q, err := MajorityVote(3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanWithQuality(base, q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PerTaskWorstCase != 3 {
		t.Fatalf("per-task worst case = %d", plan.PerTaskWorstCase)
	}
	if plan.Policy.Problem.N != 30 {
		t.Errorf("policy sized for N=%d, want 30", plan.Policy.Problem.N)
	}
	// Ten fresh tasks → load 30.
	tasks := make([]TaskPoint, 10)
	if got := plan.Load(tasks); got != 30 {
		t.Errorf("fresh load = %d, want 30", got)
	}
	// The example from the paper: 5 tasks at (1,1), 2 at (2,0), 3 at (0,2)
	// → load 5·1 + 0 + 0 = 5.
	tasks = nil
	for i := 0; i < 5; i++ {
		tasks = append(tasks, TaskPoint{1, 1})
	}
	for i := 0; i < 2; i++ {
		tasks = append(tasks, TaskPoint{2, 0})
	}
	for i := 0; i < 3; i++ {
		tasks = append(tasks, TaskPoint{0, 2})
	}
	if got := plan.Load(tasks); got != 5 {
		t.Errorf("paper example load = %d, want 5", got)
	}
	// PriceAt with lower load must not exceed the full-backlog price.
	full := plan.PriceAt(make([]TaskPoint, 10), 5)
	light := plan.PriceAt(tasks, 5)
	if light > full {
		t.Errorf("lighter load priced higher: %d > %d", light, full)
	}
}
