// Package core implements the paper's contribution: pricing algorithms for
// batches of crowdsourcing tasks.
//
//   - Fixed-deadline pricing (Section 3): a finite-horizon MDP over states
//     (remaining tasks, time interval), solved by backward-induction dynamic
//     programming with Poisson truncation (Theorem 1) and the monotone price
//     search of Algorithm 2 (Conjecture 1), plus the Penalty ↔ Bound
//     calibration of Theorem 2 and the extended (n+α)·Penalty variant.
//   - Fixed-budget pricing (Section 4): the near-optimal two-price static
//     strategy found on the lower convex hull of (c, 1/p(c)) (Algorithm 3,
//     Theorems 7–8), the exact pseudo-polynomial DP (Theorem 6), and the
//     worker-arrival identity E[W] = Σ 1/p(cᵢ) (Theorem 5).
//   - Baselines: the binary-search fixed pricing of Faridani et al. that the
//     paper compares against.
//   - Section 6 extensions: deadline/budget trade-off MDPs, multiple task
//     types, and quality-control integration.
//
// Prices are integer cents throughout, with a minimum increment of one cent
// as on Mechanical Turk.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/dist"
)

// DeadlineProblem is a fixed-deadline pricing instance: complete N identical
// tasks within Horizon hours at minimum expected cost.
type DeadlineProblem struct {
	// N is the number of tasks in the batch.
	N int
	// Horizon is the total time before the deadline, in hours.
	Horizon float64
	// Intervals is NT, the number of equal discretization intervals; prices
	// may change only at interval boundaries.
	Intervals int
	// Lambdas[t] is λ_t, the expected number of marketplace worker arrivals
	// during interval t (Equation 4). Its length must equal Intervals.
	Lambdas []float64
	// Accept maps a price in cents to the task acceptance probability.
	Accept choice.AcceptanceFn
	// MinPrice and MaxPrice bound the price search range in cents
	// (inclusive). MaxPrice is the C of Section 3.
	MinPrice, MaxPrice int
	// Penalty is the terminal cost per unfinished task.
	Penalty float64
	// Alpha is the extended penalty of Section 3.3: an extra Alpha·Penalty
	// is charged whenever at least one task remains. Zero recovers the
	// plain linear penalty.
	Alpha float64
	// TruncEps is the Poisson truncation threshold ε of Section 3.2.
	// Zero means no truncation (exact sums over the full support).
	TruncEps float64
	// Workers is the number of goroutines used to solve states within each
	// time interval of the backward induction. 0 means GOMAXPROCS; 1 forces
	// the serial path. Any value produces bit-identical policies — states
	// within an interval are independent given the next interval's value
	// row, so parallelism changes scheduling, never arithmetic. Workers is
	// a runtime knob, not a problem parameter, and is not serialized.
	Workers int
}

// Validate reports whether the problem is well formed.
func (p *DeadlineProblem) Validate() error {
	switch {
	case p.N <= 0:
		return errors.New("core: N must be positive")
	case p.Horizon <= 0:
		return errors.New("core: horizon must be positive")
	case p.Intervals <= 0:
		return errors.New("core: intervals must be positive")
	case len(p.Lambdas) != p.Intervals:
		return fmt.Errorf("core: %d lambdas for %d intervals", len(p.Lambdas), p.Intervals)
	case p.Accept == nil:
		return errors.New("core: nil acceptance function")
	case p.MinPrice < 0 || p.MaxPrice < p.MinPrice:
		return fmt.Errorf("core: bad price range [%d, %d]", p.MinPrice, p.MaxPrice)
	case p.Penalty < 0 || p.Alpha < 0:
		return errors.New("core: negative penalty")
	case p.TruncEps < 0:
		return errors.New("core: negative truncation threshold")
	}
	for t, l := range p.Lambdas {
		if l < 0 || math.IsNaN(l) {
			return fmt.Errorf("core: invalid lambda %v at interval %d", l, t)
		}
	}
	return nil
}

// DeadlinePolicy is a solved deadline pricing policy: the optimal price and
// cost-to-go for every (remaining tasks, interval) state.
type DeadlinePolicy struct {
	Problem *DeadlineProblem
	// Price[t][n] is the optimal reward (cents) at interval t with n tasks
	// remaining, for t in [0, Intervals) and n in [0, N].
	Price [][]int
	// Opt[t][n] is the optimal expected cost-to-go, t in [0, Intervals]
	// (row Intervals holds the terminal penalties).
	Opt [][]float64
}

// PriceAt returns the policy's price with n tasks remaining at interval t.
// n is clamped to [0, N] and t to [0, Intervals).
func (pol *DeadlinePolicy) PriceAt(n, t int) int {
	if n <= 0 {
		return pol.Problem.MinPrice
	}
	if n > pol.Problem.N {
		n = pol.Problem.N
	}
	if t < 0 {
		t = 0
	}
	if t >= pol.Problem.Intervals {
		t = pol.Problem.Intervals - 1
	}
	return pol.Price[t][n]
}

// intervalTable caches, for one interval t and every candidate price c, the
// truncated Poisson PMF of the completion count and its running CDF.
type intervalTable struct {
	// pmf[c-MinPrice] is the PMF of Pois(λ_t·p(c)) up to the truncation
	// point; cum is its cumulative sum.
	pmf [][]float64
	cum [][]float64
}

// workers resolves the Workers knob: 0 expands to GOMAXPROCS. parallelFor
// clamps per call, so no dimension-specific cap is needed here.
func (p *DeadlineProblem) workers() int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(i) for every i in [lo, hi] on a pool of workers
// pulling fixed-size chunks off an atomic cursor (dynamic scheduling — the
// per-state cost of the DP grows with n, so static striping would leave the
// low-n workers idle). workers <= 1 degrades to the plain serial loop.
func parallelFor(lo, hi, workers int, fn func(i int)) {
	n := hi - lo + 1
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := lo; i <= hi; i++ {
			fn(i)
		}
		return
	}
	const chunk = 8
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := lo + int(cursor.Add(chunk)) - chunk
				if start > hi {
					return
				}
				end := start + chunk - 1
				if end > hi {
					end = hi
				}
				for i := start; i <= end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

func (p *DeadlineProblem) buildTable(t int) intervalTable {
	nPrices := p.MaxPrice - p.MinPrice + 1
	tab := intervalTable{
		pmf: make([][]float64, nPrices),
		cum: make([][]float64, nPrices),
	}
	parallelFor(0, nPrices-1, p.workers(), func(ci int) {
		mean := p.Lambdas[t] * p.Accept.Accept(p.MinPrice+ci)
		limit := p.N + 1
		if p.TruncEps > 0 {
			s0 := poissonTruncation(mean, p.TruncEps)
			if s0 < limit {
				limit = s0
			}
		}
		tab.pmf[ci], tab.cum[ci] = poissonTable(mean, limit)
	})
	return tab
}

// poissonTable returns the PMF and running CDF of Pois(mean) for counts
// 0..limit-1, computed multiplicatively from the mode so large means do not
// underflow (exp(-mean) is 0 beyond mean ≈ 745).
func poissonTable(mean float64, limit int) (pmf, cum []float64) {
	pmf = make([]float64, limit)
	cum = make([]float64, limit)
	if limit == 0 {
		return pmf, cum
	}
	mode := int(mean)
	if mode >= limit {
		mode = limit - 1
	}
	d := dist.Poisson{Lambda: mean}
	anchor := d.PMF(mode)
	pmf[mode] = anchor
	term := anchor
	for s := mode - 1; s >= 0; s-- {
		term *= float64(s+1) / mean
		pmf[s] = term
	}
	term = anchor
	for s := mode + 1; s < limit; s++ {
		term *= mean / float64(s)
		pmf[s] = term
	}
	run := 0.0
	for s := range pmf {
		run += pmf[s]
		cum[s] = run
	}
	return pmf, cum
}

// poissonTruncation is the s0 of Section 3.2, delegated to the numerically
// stable tail walk in the dist package.
func poissonTruncation(mean, eps float64) int {
	return dist.Poisson{Lambda: mean}.TruncationPoint(eps)
}

// stateCost evaluates the DP objective for state (n, t) at price index ci
// using the interval's cached tables:
//
//	Σ_{s<n} PMF(s)·(s·c + Opt[t+1][n−s]) + P(X ≥ n)·n·c + P(X ≥ n)·Opt[t+1][0]
//
// with Opt[t+1][0] = 0 by construction.
func stateCost(tab intervalTable, next []float64, n, ci, price int) float64 {
	pmf := tab.pmf[ci]
	cum := tab.cum[ci]
	m := n
	if m > len(pmf) {
		m = len(pmf)
	}
	cost := 0.0
	for s := 0; s < m; s++ {
		cost += pmf[s] * (float64(s*price) + next[n-s])
	}
	// Tail mass P(X >= m'): everything at or beyond n completes all n
	// tasks; truncated mass beyond the table is treated the same, which is
	// exactly the estimate Est_trunc of Theorem 1 when m == len(pmf) < n.
	var covered float64
	if m > 0 {
		covered = cum[m-1]
	}
	tail := 1 - covered
	if tail > 0 {
		cost += tail * float64(n*price)
	}
	return cost
}

// terminalCosts returns Opt[Intervals][·], the final-state penalties of
// Section 3.3 (linear plus the optional Alpha surcharge).
func (p *DeadlineProblem) terminalCosts() []float64 {
	out := make([]float64, p.N+1)
	for n := 1; n <= p.N; n++ {
		out[n] = (float64(n) + p.Alpha) * p.Penalty
	}
	return out
}

// bestPrice scans prices [priceLo, priceHi] for state n and returns the
// minimizing cost and price. Both solvers — serial or parallel — evaluate
// every state through this one function, which is what makes the parallel
// policies bit-identical to the serial ones.
func (p *DeadlineProblem) bestPrice(tab intervalTable, next []float64, n, priceLo, priceHi int) (float64, int) {
	bestCost := math.Inf(1)
	best := priceLo
	for c := priceLo; c <= priceHi; c++ {
		cost := stateCost(tab, next, n, c-p.MinPrice, c)
		if cost < bestCost {
			bestCost = cost
			best = c
		}
	}
	return bestCost, best
}

// SolveSimple runs Algorithm 1 (SimpleDP): a full scan over every price for
// every state. Complexity O(N²·NT·C) before truncation. Within each
// interval the states are solved on a worker pool (see Workers); each state
// depends only on the next interval's value row and writes its own
// Opt/Price cells, so the fan-out needs no synchronization beyond the
// interval barrier.
func (p *DeadlineProblem) SolveSimple() (*DeadlinePolicy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pol := p.newPolicy()
	w := p.workers()
	for t := p.Intervals - 1; t >= 0; t-- {
		tab := p.buildTable(t)
		next := pol.Opt[t+1]
		parallelFor(1, p.N, w, func(n int) {
			pol.Opt[t][n], pol.Price[t][n] = p.bestPrice(tab, next, n, p.MinPrice, p.MaxPrice)
		})
	}
	return pol, nil
}

// SolveEfficient runs Algorithm 2 (ImprovedDP): for each interval it finds
// the optimal price of the midpoint state first and uses the monotonicity of
// Price(n, t) in n (Conjecture 1) to bound the price search range of the two
// halves, for complexity O(NT·N·(N + C·log N)). The two halves of each
// split are independent once the midpoint is solved, so the recursion
// fans out across the worker pool: a branch forks onto a new goroutine when
// a worker slot is free and its subrange is big enough to pay for the
// handoff, and runs inline otherwise.
func (p *DeadlineProblem) SolveEfficient() (*DeadlinePolicy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pol := p.newPolicy()
	w := p.workers()
	// minFork keeps goroutine churn bounded: a subrange smaller than this
	// runs inline, so at most ~2·N/minFork forks happen per interval.
	const minFork = 16
	sem := make(chan struct{}, w-1)
	for t := p.Intervals - 1; t >= 0; t-- {
		tab := p.buildTable(t)
		next := pol.Opt[t+1]
		var wg sync.WaitGroup
		var solveRange func(lo, hi, priceLo, priceHi int)
		solveRange = func(lo, hi, priceLo, priceHi int) {
			if lo > hi {
				return
			}
			mid := (lo + hi) / 2
			bestCost, bestPrice := p.bestPrice(tab, next, mid, priceLo, priceHi)
			pol.Opt[t][mid] = bestCost
			pol.Price[t][mid] = bestPrice
			forked := false
			if w > 1 && mid-lo >= minFork {
				select {
				case sem <- struct{}{}:
					forked = true
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer func() { <-sem }()
						solveRange(lo, mid-1, priceLo, bestPrice)
					}()
				default:
				}
			}
			if !forked {
				solveRange(lo, mid-1, priceLo, bestPrice)
			}
			solveRange(mid+1, hi, bestPrice, priceHi)
		}
		solveRange(1, p.N, p.MinPrice, p.MaxPrice)
		wg.Wait()
	}
	return pol, nil
}

func (p *DeadlineProblem) newPolicy() *DeadlinePolicy {
	pol := &DeadlinePolicy{Problem: p}
	pol.Price = make([][]int, p.Intervals)
	pol.Opt = make([][]float64, p.Intervals+1)
	for t := 0; t < p.Intervals; t++ {
		pol.Price[t] = make([]int, p.N+1)
		for n := range pol.Price[t] {
			pol.Price[t][n] = p.MinPrice
		}
		pol.Opt[t] = make([]float64, p.N+1)
	}
	pol.Opt[p.Intervals] = p.terminalCosts()
	return pol
}

// Outcome summarizes the exact forward evaluation of a policy: the terminal
// distribution over remaining tasks and the accumulated expected payment.
type Outcome struct {
	// ExpectedCost is the expected total reward paid (cents), excluding
	// terminal penalties.
	ExpectedCost float64
	// ExpectedRemaining is E[# of unfinished tasks at the deadline].
	ExpectedRemaining float64
	// CompletionProb is P(no task remains at the deadline).
	CompletionProb float64
	// Remaining[n] is P(n tasks remain at the deadline).
	Remaining []float64
	// AvgReward is ExpectedCost divided by the expected number of completed
	// tasks (the per-task price the paper plots).
	AvgReward float64
}

// Evaluate propagates the state distribution forward under the policy using
// the same (possibly truncated) transition kernel and returns exact outcome
// statistics — no Monte Carlo involved.
func (pol *DeadlinePolicy) Evaluate() Outcome {
	p := pol.Problem
	cur := make([]float64, p.N+1)
	next := make([]float64, p.N+1)
	cur[p.N] = 1
	expectedCost := 0.0
	for t := 0; t < p.Intervals; t++ {
		tab := p.buildTable(t)
		for i := range next {
			next[i] = 0
		}
		for n := 0; n <= p.N; n++ {
			mass := cur[n]
			if mass == 0 {
				continue
			}
			if n == 0 {
				next[0] += mass
				continue
			}
			price := pol.Price[t][n]
			ci := price - p.MinPrice
			pmf := tab.pmf[ci]
			cum := tab.cum[ci]
			m := n
			if m > len(pmf) {
				m = len(pmf)
			}
			for s := 0; s < m; s++ {
				next[n-s] += mass * pmf[s]
				expectedCost += mass * pmf[s] * float64(s*price)
			}
			var covered float64
			if m > 0 {
				covered = cum[m-1]
			}
			if tail := 1 - covered; tail > 0 {
				next[0] += mass * tail
				expectedCost += mass * tail * float64(n*price)
			}
		}
		cur, next = next, cur
	}
	out := Outcome{Remaining: append([]float64(nil), cur...), ExpectedCost: expectedCost}
	for n, prob := range cur {
		out.ExpectedRemaining += float64(n) * prob
	}
	out.CompletionProb = cur[0]
	if done := float64(p.N) - out.ExpectedRemaining; done > 0 {
		out.AvgReward = expectedCost / done
	}
	return out
}

// CalibrationResult pairs a calibrated penalty with the policy it induces
// and that policy's exact outcome.
type CalibrationResult struct {
	Penalty float64
	Policy  *DeadlinePolicy
	Outcome Outcome
}

// CalibratePenaltyForBound binary-searches the Penalty parameter so the
// induced policy's expected number of remaining tasks is at most bound, per
// the Penalty ↔ Bound correspondence of Theorem 2. The search runs over
// [MinPrice, maxPenalty]; iterations bounds the bisection depth.
func (p *DeadlineProblem) CalibratePenaltyForBound(bound, maxPenalty float64, iterations int) (CalibrationResult, error) {
	return p.calibrate(maxPenalty, iterations, func(o Outcome) bool {
		return o.ExpectedRemaining <= bound
	})
}

// CalibratePenaltyForConfidence binary-searches Penalty so the induced
// policy finishes every task by the deadline with at least the given
// probability (e.g. 0.999 in Section 5.2.2's experimental protocol).
func (p *DeadlineProblem) CalibratePenaltyForConfidence(confidence, maxPenalty float64, iterations int) (CalibrationResult, error) {
	return p.calibrate(maxPenalty, iterations, func(o Outcome) bool {
		return o.CompletionProb >= confidence
	})
}

func (p *DeadlineProblem) calibrate(maxPenalty float64, iterations int, ok func(Outcome) bool) (CalibrationResult, error) {
	if err := p.Validate(); err != nil {
		return CalibrationResult{}, err
	}
	if iterations <= 0 {
		iterations = 40
	}
	solveAt := func(penalty float64) (CalibrationResult, error) {
		q := *p
		q.Penalty = penalty
		pol, err := q.SolveEfficient()
		if err != nil {
			return CalibrationResult{}, err
		}
		return CalibrationResult{Penalty: penalty, Policy: pol, Outcome: pol.Evaluate()}, nil
	}
	hi, err := solveAt(maxPenalty)
	if err != nil {
		return CalibrationResult{}, err
	}
	if !ok(hi.Outcome) {
		return hi, fmt.Errorf("core: target unreachable even at penalty %v", maxPenalty)
	}
	lo := 0.0
	best := hi
	hiP := maxPenalty
	for i := 0; i < iterations; i++ {
		mid := (lo + hiP) / 2
		res, err := solveAt(mid)
		if err != nil {
			return CalibrationResult{}, err
		}
		if ok(res.Outcome) {
			best = res
			hiP = mid
		} else {
			lo = mid
		}
	}
	return best, nil
}
