package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/convex"
	"crowdpricing/internal/lp"
)

// BudgetProblem is a fixed-budget pricing instance: complete N identical
// tasks at total expected cost at most Budget cents while minimizing the
// expected completion time (equivalently, by Section 4.2, the expected
// number of worker arrivals E[W]).
type BudgetProblem struct {
	// N is the number of tasks.
	N int
	// Budget is the total budget in cents.
	Budget int
	// Accept maps a price in cents to the task acceptance probability.
	Accept choice.AcceptanceFn
	// MinPrice and MaxPrice bound candidate prices (inclusive). Prices
	// whose acceptance probability is zero are skipped automatically.
	MinPrice, MaxPrice int
}

// Validate reports whether the problem is well formed.
func (p *BudgetProblem) Validate() error {
	switch {
	case p.N <= 0:
		return errors.New("core: N must be positive")
	case p.Budget < 0:
		return errors.New("core: negative budget")
	case p.Accept == nil:
		return errors.New("core: nil acceptance function")
	case p.MinPrice < 0 || p.MaxPrice < p.MinPrice:
		return fmt.Errorf("core: bad price range [%d, %d]", p.MinPrice, p.MaxPrice)
	}
	return nil
}

// StaticStrategy assigns every task an up-front price that never changes
// (Definition 1). By Theorem 7 at most two distinct prices are needed; the
// strategy is stored as price → count.
type StaticStrategy struct {
	// Counts maps a price in cents to the number of tasks at that price.
	Counts map[int]int
}

// Prices returns the per-task price list in descending order — the order in
// which a marketplace drains a static strategy (highest reward first).
func (s StaticStrategy) Prices() []int {
	var out []int
	for _, c := range s.sortedPrices() {
		for i := 0; i < s.Counts[c]; i++ {
			out = append(out, c)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// sortedPrices returns the strategy's distinct prices in ascending order,
// giving every Counts iteration a deterministic walk.
func (s StaticStrategy) sortedPrices() []int {
	prices := make([]int, 0, len(s.Counts))
	for c := range s.Counts {
		prices = append(prices, c)
	}
	sort.Ints(prices)
	return prices
}

// TotalCost returns Σ c·n_c, the committed spend in cents.
func (s StaticStrategy) TotalCost() int {
	total := 0
	for c, n := range s.Counts {
		total += c * n
	}
	return total
}

// NumTasks returns Σ n_c.
func (s StaticStrategy) NumTasks() int {
	total := 0
	for _, n := range s.Counts {
		total += n
	}
	return total
}

// ExpectedWorkerArrivals returns E[W] = Σᵢ 1/p(cᵢ) (Theorem 5): the expected
// number of marketplace arrivals before the batch completes, which is what
// every strategy minimizes by Theorem 3.
func (s StaticStrategy) ExpectedWorkerArrivals(accept choice.AcceptanceFn) float64 {
	total := 0.0
	// Sorted walk: float addition is order-sensitive in the low bits, and
	// this value feeds fingerprinted artifacts.
	for _, c := range s.sortedPrices() {
		p := accept.Accept(c)
		if p <= 0 {
			return math.Inf(1)
		}
		total += float64(s.Counts[c]) / p
	}
	return total
}

// ExpectedLatency returns E[T] ≈ E[W]/λ̄ under the linearity assumption of
// Section 4.2.2, in hours, for the given average arrival rate per hour.
func (s StaticStrategy) ExpectedLatency(accept choice.AcceptanceFn, lambdaBar float64) float64 {
	if lambdaBar <= 0 {
		return math.Inf(1)
	}
	return s.ExpectedWorkerArrivals(accept) / lambdaBar
}

// hullPoints builds the (c, 1/p(c)) point set over the price range, skipping
// prices with zero acceptance.
func (p *BudgetProblem) hullPoints() []convex.Point {
	var pts []convex.Point
	for c := p.MinPrice; c <= p.MaxPrice; c++ {
		acc := p.Accept.Accept(c)
		if acc <= 0 {
			continue
		}
		pts = append(pts, convex.Point{X: float64(c), Y: 1 / acc})
	}
	return pts
}

// SolveHull runs Algorithm 3: build the lower convex hull of (c, 1/p(c)),
// pick the two hull prices bracketing the per-task budget B/N, and round the
// LP split to integers. The rounding error is bounded by Theorem 8.
func (p *BudgetProblem) SolveHull() (StaticStrategy, error) {
	if err := p.Validate(); err != nil {
		return StaticStrategy{}, err
	}
	pts := p.hullPoints()
	if len(pts) == 0 {
		return StaticStrategy{}, errors.New("core: no price has positive acceptance")
	}
	hull := convex.LowerHull(pts)
	perTask := float64(p.Budget) / float64(p.N)
	if perTask < hull[0].X {
		return StaticStrategy{}, fmt.Errorf("core: budget %d cannot cover %d tasks at the minimum viable price %v", p.Budget, p.N, hull[0].X)
	}
	left, right, interior := convex.Bracket(hull, perTask)
	if !interior {
		// B/N sits exactly on a hull price (or beyond the last): a single
		// price optimally spends up to the budget.
		c := int(left.X)
		return StaticStrategy{Counts: map[int]int{c: p.N}}, nil
	}
	c1, c2 := int(left.X), int(right.X)
	// n1 = ⌈(c2·N − B) / (c2 − c1)⌉, n2 = N − n1 (Algorithm 3).
	n1 := int(math.Ceil(float64(c2*p.N-p.Budget) / float64(c2-c1)))
	if n1 < 0 {
		n1 = 0
	}
	if n1 > p.N {
		n1 = p.N
	}
	n2 := p.N - n1
	counts := map[int]int{}
	if n1 > 0 {
		counts[c1] = n1
	}
	if n2 > 0 {
		counts[c2] = n2
	}
	return StaticStrategy{Counts: counts}, nil
}

// SolveExactDP computes the exact optimal integer allocation by the
// pseudo-polynomial dynamic program of Theorem 6: g[i][b] = the minimum
// E[W] for i tasks within budget b, O(N·B·C) time.
func (p *BudgetProblem) SolveExactDP() (StaticStrategy, error) {
	if err := p.Validate(); err != nil {
		return StaticStrategy{}, err
	}
	type cand struct {
		price int
		inv   float64
	}
	var cands []cand
	for c := p.MinPrice; c <= p.MaxPrice; c++ {
		if acc := p.Accept.Accept(c); acc > 0 {
			cands = append(cands, cand{price: c, inv: 1 / acc})
		}
	}
	if len(cands) == 0 {
		return StaticStrategy{}, errors.New("core: no price has positive acceptance")
	}
	const inf = math.MaxFloat64
	// g[b] = minimum E[W] for the tasks processed so far at exact spend b;
	// choicePrice[i][b] records the price given to the i-th task on the
	// optimal path reaching spend b.
	g := make([]float64, p.Budget+1)
	ng := make([]float64, p.Budget+1)
	for b := 1; b <= p.Budget; b++ {
		g[b] = inf
	}
	choicePrice := make([][]int32, p.N+1)
	for i := range choicePrice {
		choicePrice[i] = make([]int32, p.Budget+1)
	}
	for i := 1; i <= p.N; i++ {
		for b := range ng {
			ng[b] = inf
			choicePrice[i][b] = -1
		}
		for b := 0; b <= p.Budget; b++ {
			if g[b] == inf {
				continue
			}
			for _, cd := range cands {
				nb := b + cd.price
				if nb > p.Budget {
					break
				}
				if v := g[b] + cd.inv; v < ng[nb] {
					ng[nb] = v
					choicePrice[i][nb] = int32(cd.price)
				}
			}
		}
		copy(g, ng)
	}
	// Find the best reachable budget.
	bestB, bestV := -1, inf
	for b := 0; b <= p.Budget; b++ {
		if g[b] < bestV {
			bestV = g[b]
			bestB = b
		}
	}
	if bestB < 0 {
		return StaticStrategy{}, errors.New("core: budget cannot cover all tasks")
	}
	counts := map[int]int{}
	b := bestB
	for i := p.N; i >= 1; i-- {
		c := int(choicePrice[i][b])
		if c < 0 {
			return StaticStrategy{}, errors.New("core: internal DP reconstruction failure")
		}
		counts[c]++
		b -= c
	}
	return StaticStrategy{Counts: counts}, nil
}

// SolveLP solves the relaxed LP of Section 4.3 with the generic simplex
// solver and returns the (possibly fractional) allocation per price. It
// exists to cross-validate SolveHull: by Theorem 7 the LP optimum uses at
// most two prices, both on the lower hull.
func (p *BudgetProblem) SolveLP() (map[int]float64, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	var prices []int
	var obj []float64
	for c := p.MinPrice; c <= p.MaxPrice; c++ {
		if acc := p.Accept.Accept(c); acc > 0 {
			prices = append(prices, c)
			obj = append(obj, 1/acc)
		}
	}
	if len(prices) == 0 {
		return nil, 0, errors.New("core: no price has positive acceptance")
	}
	eqRow := make([]float64, len(prices))
	budgetRow := make([]float64, len(prices))
	for i, c := range prices {
		eqRow[i] = 1
		budgetRow[i] = float64(c)
	}
	sol, err := lp.Solve(lp.Problem{
		Objective: obj,
		Constraints: []lp.Constraint{
			{Coeffs: eqRow, Rel: lp.EQ, RHS: float64(p.N)},
			{Coeffs: budgetRow, Rel: lp.LE, RHS: float64(p.Budget)},
		},
	})
	if err != nil {
		return nil, 0, err
	}
	alloc := map[int]float64{}
	for i, c := range prices {
		if sol.X[i] > 1e-9 {
			alloc[c] = sol.X[i]
		}
	}
	return alloc, sol.Objective, nil
}

// SemiStaticExpectedArrivals returns E[W] = Σ 1/p(cᵢ) for an arbitrary
// semi-static price sequence (Definition 2). Theorem 5 says the order of the
// sequence is irrelevant, so this equals the static strategy value for any
// permutation.
func SemiStaticExpectedArrivals(prices []int, accept choice.AcceptanceFn) float64 {
	total := 0.0
	for _, c := range prices {
		p := accept.Accept(c)
		if p <= 0 {
			return math.Inf(1)
		}
		total += 1 / p
	}
	return total
}
