package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"crowdpricing/internal/choice"
)

// policyJSON is the wire form of a solved deadline policy. Only the
// parametric Logistic acceptance curve serializes; policies built over
// custom AcceptanceFn implementations must be re-solved on load.
type policyJSON struct {
	N         int         `json:"n"`
	Horizon   float64     `json:"horizon_hours"`
	Intervals int         `json:"intervals"`
	Lambdas   []float64   `json:"lambdas"`
	Accept    acceptJSON  `json:"accept"`
	MinPrice  int         `json:"min_price"`
	MaxPrice  int         `json:"max_price"`
	Penalty   float64     `json:"penalty"`
	Alpha     float64     `json:"alpha"`
	TruncEps  float64     `json:"trunc_eps"`
	Price     [][]int     `json:"price"`
	Opt       [][]float64 `json:"opt"`
}

type acceptJSON struct {
	S float64 `json:"s"`
	B float64 `json:"b"`
	M float64 `json:"m"`
}

// MarshalJSON serializes the policy, including its problem parameters and
// value function, so a solved plan can be stored and reloaded without
// re-running the DP. It fails if the acceptance curve is not a
// choice.Logistic.
func (pol *DeadlinePolicy) MarshalJSON() ([]byte, error) {
	if pol.Problem == nil {
		return nil, errors.New("core: policy has no problem")
	}
	l, ok := pol.Problem.Accept.(choice.Logistic)
	if !ok {
		return nil, fmt.Errorf("core: acceptance curve %T is not serializable", pol.Problem.Accept)
	}
	return json.Marshal(policyJSON{
		N:         pol.Problem.N,
		Horizon:   pol.Problem.Horizon,
		Intervals: pol.Problem.Intervals,
		Lambdas:   pol.Problem.Lambdas,
		Accept:    acceptJSON{S: l.S, B: l.B, M: l.M},
		MinPrice:  pol.Problem.MinPrice,
		MaxPrice:  pol.Problem.MaxPrice,
		Penalty:   pol.Problem.Penalty,
		Alpha:     pol.Problem.Alpha,
		TruncEps:  pol.Problem.TruncEps,
		Price:     pol.Price,
		Opt:       pol.Opt,
	})
}

// UnmarshalJSON restores a policy serialized by MarshalJSON, validating the
// problem and the table dimensions.
func (pol *DeadlinePolicy) UnmarshalJSON(data []byte) error {
	var pj policyJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return err
	}
	p := &DeadlineProblem{
		N:         pj.N,
		Horizon:   pj.Horizon,
		Intervals: pj.Intervals,
		Lambdas:   pj.Lambdas,
		Accept:    choice.Logistic{S: pj.Accept.S, B: pj.Accept.B, M: pj.Accept.M},
		MinPrice:  pj.MinPrice,
		MaxPrice:  pj.MaxPrice,
		Penalty:   pj.Penalty,
		Alpha:     pj.Alpha,
		TruncEps:  pj.TruncEps,
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("core: stored policy problem invalid: %w", err)
	}
	if len(pj.Price) != p.Intervals || len(pj.Opt) != p.Intervals+1 {
		return fmt.Errorf("core: stored tables have %d/%d rows, want %d/%d",
			len(pj.Price), len(pj.Opt), p.Intervals, p.Intervals+1)
	}
	for t, row := range pj.Price {
		if len(row) != p.N+1 {
			return fmt.Errorf("core: price row %d has %d entries, want %d", t, len(row), p.N+1)
		}
		for n, c := range row {
			if c < p.MinPrice || c > p.MaxPrice {
				return fmt.Errorf("core: stored price %d at (%d,%d) outside [%d,%d]",
					c, n, t, p.MinPrice, p.MaxPrice)
			}
		}
	}
	for t, row := range pj.Opt {
		if len(row) != p.N+1 {
			return fmt.Errorf("core: opt row %d has %d entries, want %d", t, len(row), p.N+1)
		}
	}
	pol.Problem = p
	pol.Price = pj.Price
	pol.Opt = pj.Opt
	return nil
}
