package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"math"

	"crowdpricing/internal/choice"
)

// policyJSON is the wire form of a solved deadline policy. Only the
// parametric Logistic acceptance curve serializes; policies built over
// custom AcceptanceFn implementations must be re-solved on load.
type policyJSON struct {
	N         int         `json:"n"`
	Horizon   float64     `json:"horizon_hours"`
	Intervals int         `json:"intervals"`
	Lambdas   []float64   `json:"lambdas"`
	Accept    acceptJSON  `json:"accept"`
	MinPrice  int         `json:"min_price"`
	MaxPrice  int         `json:"max_price"`
	Penalty   float64     `json:"penalty"`
	Alpha     float64     `json:"alpha"`
	TruncEps  float64     `json:"trunc_eps"`
	Price     [][]int     `json:"price"`
	Opt       [][]float64 `json:"opt"`
}

type acceptJSON struct {
	S float64 `json:"s"`
	B float64 `json:"b"`
	M float64 `json:"m"`
}

// MarshalJSON serializes the policy, including its problem parameters and
// value function, so a solved plan can be stored and reloaded without
// re-running the DP. It fails if the acceptance curve is not a
// choice.Logistic.
func (pol *DeadlinePolicy) MarshalJSON() ([]byte, error) {
	if pol.Problem == nil {
		return nil, errors.New("core: policy has no problem")
	}
	l, ok := pol.Problem.Accept.(choice.Logistic)
	if !ok {
		return nil, fmt.Errorf("core: acceptance curve %T is not serializable", pol.Problem.Accept)
	}
	return json.Marshal(policyJSON{
		N:         pol.Problem.N,
		Horizon:   pol.Problem.Horizon,
		Intervals: pol.Problem.Intervals,
		Lambdas:   pol.Problem.Lambdas,
		Accept:    acceptJSON{S: l.S, B: l.B, M: l.M},
		MinPrice:  pol.Problem.MinPrice,
		MaxPrice:  pol.Problem.MaxPrice,
		Penalty:   pol.Problem.Penalty,
		Alpha:     pol.Problem.Alpha,
		TruncEps:  pol.Problem.TruncEps,
		Price:     pol.Price,
		Opt:       pol.Opt,
	})
}

// UnmarshalJSON restores a policy serialized by MarshalJSON, validating the
// problem and the table dimensions.
func (pol *DeadlinePolicy) UnmarshalJSON(data []byte) error {
	var pj policyJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return err
	}
	p := &DeadlineProblem{
		N:         pj.N,
		Horizon:   pj.Horizon,
		Intervals: pj.Intervals,
		Lambdas:   pj.Lambdas,
		Accept:    choice.Logistic{S: pj.Accept.S, B: pj.Accept.B, M: pj.Accept.M},
		MinPrice:  pj.MinPrice,
		MaxPrice:  pj.MaxPrice,
		Penalty:   pj.Penalty,
		Alpha:     pj.Alpha,
		TruncEps:  pj.TruncEps,
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("core: stored policy problem invalid: %w", err)
	}
	if len(pj.Price) != p.Intervals || len(pj.Opt) != p.Intervals+1 {
		return fmt.Errorf("core: stored tables have %d/%d rows, want %d/%d",
			len(pj.Price), len(pj.Opt), p.Intervals, p.Intervals+1)
	}
	for t, row := range pj.Price {
		if len(row) != p.N+1 {
			return fmt.Errorf("core: price row %d has %d entries, want %d", t, len(row), p.N+1)
		}
		for n, c := range row {
			if c < p.MinPrice || c > p.MaxPrice {
				return fmt.Errorf("core: stored price %d at (%d,%d) outside [%d,%d]",
					c, n, t, p.MinPrice, p.MaxPrice)
			}
		}
	}
	for t, row := range pj.Opt {
		if len(row) != p.N+1 {
			return fmt.Errorf("core: opt row %d has %d entries, want %d", t, len(row), p.N+1)
		}
	}
	pol.Problem = p
	pol.Price = pj.Price
	pol.Opt = pj.Opt
	return nil
}

// fpHasher accumulates the canonical binary encoding behind problem
// fingerprints. Every field is written in a fixed order with an explicit
// width (int64 big-endian for integers, IEEE-754 bits for floats, length-
// prefixed bytes for strings), so the resulting digest depends only on the
// problem's content — never on map iteration order, struct layout, platform
// word size, or JSON formatting.
type fpHasher struct {
	h hash.Hash
}

// newFPHasher starts a hash in the given domain; the domain tag separates
// the problem kinds (and versions the encoding), so a deadline problem and a
// budget problem can never collide even if their field bytes coincide.
func newFPHasher(domain string) *fpHasher {
	f := &fpHasher{h: sha256.New()}
	f.str(domain)
	return f
}

func (f *fpHasher) str(s string) {
	f.int(len(s))
	io.WriteString(f.h, s)
}

func (f *fpHasher) int(v int) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(int64(v)))
	f.h.Write(b[:])
}

func (f *fpHasher) float(v float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	f.h.Write(b[:])
}

func (f *fpHasher) floats(vs []float64) {
	f.int(len(vs))
	for _, v := range vs {
		f.float(v)
	}
}

func (f *fpHasher) sum() string { return hex.EncodeToString(f.h.Sum(nil)) }

// fingerprintAccept folds the acceptance curve into the hash. Like policy
// serialization, fingerprinting requires the parametric choice.Logistic
// curve; an arbitrary AcceptanceFn has no canonical content to hash.
func fingerprintAccept(f *fpHasher, fn choice.AcceptanceFn) error {
	l, ok := fn.(choice.Logistic)
	if !ok {
		return fmt.Errorf("core: acceptance curve %T is not fingerprintable", fn)
	}
	f.str("logistic")
	f.float(l.S)
	f.float(l.B)
	f.float(l.M)
	return nil
}

// Fingerprint returns a stable content hash of the problem: two problems
// have equal fingerprints iff every parameter that influences the solved
// policy is equal. The Workers knob is deliberately excluded — it changes
// scheduling, never the policy — so a shared cache keyed by Fingerprint
// serves the same artifact regardless of each caller's parallelism setting.
// The problem must validate; fingerprinting an invalid problem is an error
// so malformed requests can never occupy cache slots.
func (p *DeadlineProblem) Fingerprint() (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	f := newFPHasher("crowdpricing/deadline/v1")
	f.int(p.N)
	f.float(p.Horizon)
	f.int(p.Intervals)
	f.floats(p.Lambdas)
	if err := fingerprintAccept(f, p.Accept); err != nil {
		return "", err
	}
	f.int(p.MinPrice)
	f.int(p.MaxPrice)
	f.float(p.Penalty)
	f.float(p.Alpha)
	f.float(p.TruncEps)
	return f.sum(), nil
}

// Fingerprint returns a stable content hash of the budget problem; see
// DeadlineProblem.Fingerprint for the contract.
func (p *BudgetProblem) Fingerprint() (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	f := newFPHasher("crowdpricing/budget/v1")
	f.int(p.N)
	f.int(p.Budget)
	if err := fingerprintAccept(f, p.Accept); err != nil {
		return "", err
	}
	f.int(p.MinPrice)
	f.int(p.MaxPrice)
	return f.sum(), nil
}

// Fingerprint returns a stable content hash of the general-k multi-type
// problem; see DeadlineProblem.Fingerprint for the contract. Every
// acceptance curve participates in type order, so reordering the types is a
// different problem (as it must be: the price vector is positional).
func (p *MultiProblem) Fingerprint() (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	f := newFPHasher("crowdpricing/multi/v1")
	f.int(len(p.Counts))
	for _, n := range p.Counts {
		f.int(n)
	}
	f.int(p.Intervals)
	f.floats(p.Lambdas)
	for _, fn := range p.Accepts {
		if err := fingerprintAccept(f, fn); err != nil {
			return "", err
		}
	}
	f.int(p.MinPrice)
	f.int(p.MaxPrice)
	f.float(p.Penalty)
	f.float(p.TruncEps)
	return f.sum(), nil
}

// Fingerprint returns a stable content hash of the trade-off problem; see
// DeadlineProblem.Fingerprint for the contract.
func (p *TradeoffProblem) Fingerprint() (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	f := newFPHasher("crowdpricing/tradeoff/v1")
	f.int(p.N)
	f.float(p.Alpha)
	f.float(p.Lambda)
	if err := fingerprintAccept(f, p.Accept); err != nil {
		return "", err
	}
	f.int(p.MinPrice)
	f.int(p.MaxPrice)
	return f.sum(), nil
}
