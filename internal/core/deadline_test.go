package core

import (
	"math"
	"testing"

	"crowdpricing/internal/choice"
)

// testProblem builds a moderate instance with the paper's acceptance curve.
func testProblem(n, intervals int) *DeadlineProblem {
	lambdas := make([]float64, intervals)
	for i := range lambdas {
		// Mild diurnal variation around 1733 arrivals per 20-minute slot.
		lambdas[i] = 1733 * (1 + 0.3*math.Sin(float64(i)/3))
	}
	return &DeadlineProblem{
		N:         n,
		Horizon:   float64(intervals) / 3,
		Intervals: intervals,
		Lambdas:   lambdas,
		Accept:    choice.Paper13,
		MinPrice:  0,
		MaxPrice:  30,
		Penalty:   200,
		TruncEps:  1e-9,
	}
}

func TestValidate(t *testing.T) {
	p := testProblem(10, 6)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	bad := []func(*DeadlineProblem){
		func(p *DeadlineProblem) { p.N = 0 },
		func(p *DeadlineProblem) { p.Horizon = 0 },
		func(p *DeadlineProblem) { p.Intervals = 0 },
		func(p *DeadlineProblem) { p.Lambdas = p.Lambdas[:3] },
		func(p *DeadlineProblem) { p.Accept = nil },
		func(p *DeadlineProblem) { p.MaxPrice = -1 },
		func(p *DeadlineProblem) { p.MinPrice = -1 },
		func(p *DeadlineProblem) { p.Penalty = -1 },
		func(p *DeadlineProblem) { p.TruncEps = -1 },
		func(p *DeadlineProblem) { p.Lambdas[0] = -5 },
	}
	for i, mutate := range bad {
		q := *testProblem(10, 6)
		q.Lambdas = append([]float64(nil), q.Lambdas...)
		mutate(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestSimpleMatchesEfficient is the correctness check for Algorithm 2: the
// monotone divide-and-conquer price search must reproduce Algorithm 1's
// value function (Conjecture 1 holding on this family of instances).
func TestSimpleMatchesEfficient(t *testing.T) {
	p := testProblem(40, 9)
	simple, err := p.SolveSimple()
	if err != nil {
		t.Fatal(err)
	}
	efficient, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= p.Intervals; tt++ {
		for n := 0; n <= p.N; n++ {
			a, b := simple.Opt[tt][n], efficient.Opt[tt][n]
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("Opt[%d][%d]: simple %v, efficient %v", tt, n, a, b)
			}
		}
	}
	for tt := 0; tt < p.Intervals; tt++ {
		for n := 1; n <= p.N; n++ {
			if simple.Price[tt][n] != efficient.Price[tt][n] {
				t.Fatalf("Price[%d][%d]: simple %d, efficient %d",
					tt, n, simple.Price[tt][n], efficient.Price[tt][n])
			}
		}
	}
}

// TestMonotonicityConjecture verifies Conjecture 1 on the solved policy:
// Price(n, t) is non-decreasing in n for fixed t, and non-decreasing in t
// for fixed n (prices rise toward the deadline).
func TestMonotonicityConjecture(t *testing.T) {
	p := testProblem(60, 12)
	pol, err := p.SolveSimple()
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < p.Intervals; tt++ {
		for n := 2; n <= p.N; n++ {
			if pol.Price[tt][n] < pol.Price[tt][n-1] {
				t.Errorf("Price(%d,%d)=%d < Price(%d,%d)=%d violates monotonicity in n",
					n, tt, pol.Price[tt][n], n-1, tt, pol.Price[tt][n-1])
			}
		}
	}
	for n := 1; n <= p.N; n += 7 {
		for tt := 1; tt < p.Intervals; tt++ {
			if pol.Price[tt][n] < pol.Price[tt-1][n] {
				t.Errorf("Price(%d,%d)=%d < Price(%d,%d)=%d violates monotonicity in t",
					n, tt, pol.Price[tt][n], n, tt-1, pol.Price[tt-1][n])
			}
		}
	}
}

// TestOptZeroTasksIsZero: with no tasks left there is nothing to pay.
func TestOptZeroTasksIsZero(t *testing.T) {
	p := testProblem(20, 6)
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= p.Intervals; tt++ {
		if pol.Opt[tt][0] != 0 {
			t.Errorf("Opt[%d][0] = %v, want 0", tt, pol.Opt[tt][0])
		}
	}
}

// TestOptMonotoneInN: more remaining tasks can never cost less.
func TestOptMonotoneInN(t *testing.T) {
	p := testProblem(30, 8)
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= p.Intervals; tt++ {
		for n := 1; n <= p.N; n++ {
			if pol.Opt[tt][n] < pol.Opt[tt][n-1]-1e-9 {
				t.Errorf("Opt[%d][%d]=%v < Opt[%d][%d]=%v", tt, n, pol.Opt[tt][n], tt, n-1, pol.Opt[tt][n-1])
			}
		}
	}
}

// TestBellmanConsistency re-derives Opt[t][n] from Opt[t+1] at the policy's
// chosen price and checks it matches — the DP respects its own recurrence.
func TestBellmanConsistency(t *testing.T) {
	p := testProblem(25, 6)
	pol, err := p.SolveSimple()
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < p.Intervals; tt++ {
		tab := p.buildTable(tt)
		for n := 1; n <= p.N; n++ {
			c := pol.Price[tt][n]
			got := stateCost(tab, pol.Opt[tt+1], n, c-p.MinPrice, c)
			if math.Abs(got-pol.Opt[tt][n]) > 1e-9*(1+got) {
				t.Fatalf("Bellman mismatch at (%d,%d): %v vs %v", n, tt, got, pol.Opt[tt][n])
			}
		}
	}
}

// TestEvaluateMatchesOpt is the strongest internal invariant: the exact
// forward evaluation's expected payment plus expected terminal penalty must
// equal the DP's Opt[0][N].
func TestEvaluateMatchesOpt(t *testing.T) {
	for _, alpha := range []float64{0, 3} {
		p := testProblem(40, 9)
		p.Alpha = alpha
		pol, err := p.SolveEfficient()
		if err != nil {
			t.Fatal(err)
		}
		out := pol.Evaluate()
		expPenalty := 0.0
		for n := 1; n <= p.N; n++ {
			expPenalty += (float64(n) + p.Alpha) * p.Penalty * out.Remaining[n]
		}
		total := out.ExpectedCost + expPenalty
		if math.Abs(total-pol.Opt[0][p.N]) > 1e-6*(1+total) {
			t.Errorf("alpha=%v: evaluate total %v, Opt %v", alpha, total, pol.Opt[0][p.N])
		}
	}
}

// TestTruncationBound exercises Theorem 1: solving with truncation changes
// the value function by far less than the theorem's n·(NT−t)·C·ε bound.
func TestTruncationBound(t *testing.T) {
	exact := testProblem(30, 6)
	exact.TruncEps = 0
	polExact, err := exact.SolveSimple()
	if err != nil {
		t.Fatal(err)
	}
	trunc := testProblem(30, 6)
	trunc.TruncEps = 1e-9
	polTrunc, err := trunc.SolveSimple()
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= exact.Intervals; tt++ {
		for n := 0; n <= exact.N; n++ {
			bound := float64(n) * float64(exact.Intervals-tt) * float64(exact.MaxPrice) * 1e-9
			// Allow generous slack: the theorem's bound plus FP noise.
			if d := math.Abs(polExact.Opt[tt][n] - polTrunc.Opt[tt][n]); d > bound+1e-6 {
				t.Errorf("truncation error %v at (%d,%d) exceeds bound %v", d, n, tt, bound)
			}
		}
	}
}

// TestHigherPenaltyFewerRemaining: the Penalty knob trades money for
// completion, monotonically.
func TestHigherPenaltyFewerRemaining(t *testing.T) {
	prevRemaining := math.Inf(1)
	prevCost := 0.0
	for _, penalty := range []float64{20, 100, 500, 2500} {
		p := testProblem(40, 9)
		p.Penalty = penalty
		pol, err := p.SolveEfficient()
		if err != nil {
			t.Fatal(err)
		}
		out := pol.Evaluate()
		if out.ExpectedRemaining > prevRemaining+1e-9 {
			t.Errorf("penalty %v: remaining %v rose above %v", penalty, out.ExpectedRemaining, prevRemaining)
		}
		if out.ExpectedCost < prevCost-1e-9 {
			t.Errorf("penalty %v: cost %v fell below %v", penalty, out.ExpectedCost, prevCost)
		}
		prevRemaining = out.ExpectedRemaining
		prevCost = out.ExpectedCost
	}
}

// TestDynamicBeatsFixed is the headline claim scaled down: at equal
// completion guarantees the dynamic policy spends less than the fixed-price
// baseline.
func TestDynamicBeatsFixed(t *testing.T) {
	p := testProblem(60, 18)
	fixed, err := p.FixedPriceForConfidence(0.999)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := p.CalibratePenaltyForConfidence(0.999, 1e5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Outcome.CompletionProb < 0.999 {
		t.Fatalf("calibration missed confidence: %v", cal.Outcome.CompletionProb)
	}
	if cal.Outcome.ExpectedCost >= fixed.ExpectedCost {
		t.Errorf("dynamic cost %v not below fixed cost %v (price %d)",
			cal.Outcome.ExpectedCost, fixed.ExpectedCost, fixed.Price)
	}
}

// TestCalibrateBound: the bound calibration meets its target.
func TestCalibrateBound(t *testing.T) {
	p := testProblem(40, 9)
	cal, err := p.CalibratePenaltyForBound(0.5, 5000, 25)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Outcome.ExpectedRemaining > 0.5 {
		t.Errorf("remaining %v exceeds bound", cal.Outcome.ExpectedRemaining)
	}
}

// TestPriceAtClamping: out-of-range queries clamp instead of panicking.
func TestPriceAtClamping(t *testing.T) {
	p := testProblem(10, 4)
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.PriceAt(0, 2); got != p.MinPrice {
		t.Errorf("PriceAt(0,·) = %d, want MinPrice", got)
	}
	if got := pol.PriceAt(999, 2); got != pol.Price[2][10] {
		t.Errorf("PriceAt clamps n: got %d", got)
	}
	if got := pol.PriceAt(5, 999); got != pol.Price[3][5] {
		t.Errorf("PriceAt clamps t: got %d", got)
	}
	if got := pol.PriceAt(5, -1); got != pol.Price[0][5] {
		t.Errorf("PriceAt clamps negative t: got %d", got)
	}
}

// TestRemainingDistributionIsDistribution: forward evaluation produces a
// proper probability distribution.
func TestRemainingDistributionIsDistribution(t *testing.T) {
	p := testProblem(30, 9)
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	out := pol.Evaluate()
	sum := 0.0
	for _, q := range out.Remaining {
		if q < -1e-12 {
			t.Fatalf("negative probability %v", q)
		}
		sum += q
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("remaining distribution sums to %v", sum)
	}
}

func TestFixedPriceBinarySearchMinimal(t *testing.T) {
	p := testProblem(60, 18)
	out, err := p.FixedPriceForConfidence(0.999)
	if err != nil {
		t.Fatal(err)
	}
	if out.CompletionProb < 0.999 {
		t.Errorf("confidence %v below target", out.CompletionProb)
	}
	if out.Price > p.MinPrice {
		below := p.EvaluateFixed(out.Price - 1)
		if below.CompletionProb >= 0.999 {
			t.Errorf("price %d is not minimal", out.Price)
		}
	}
	// A batch far larger than the horizon can absorb is unreachable even at
	// MaxPrice.
	big := testProblem(6000, 18)
	if _, err := big.FixedPriceForConfidence(0.999); err == nil {
		t.Error("want error for unreachable batch size")
	}
}

func TestFixedPriceForBound(t *testing.T) {
	p := testProblem(60, 18)
	out, err := p.FixedPriceForBound(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if out.ExpectedRemaining > 1.0 {
		t.Errorf("remaining %v exceeds bound", out.ExpectedRemaining)
	}
	if out.Price > p.MinPrice {
		below := p.EvaluateFixed(out.Price - 1)
		if below.ExpectedRemaining <= 1.0 {
			t.Errorf("price %d not minimal", out.Price)
		}
	}
}

// TestTheoreticalMinPricePaperValue: with the paper's default workload
// (N=200, 24h, λ̄ ≈ 5200/h) the bound c₀ is 12 cents (Section 5.2.1).
func TestTheoreticalMinPricePaperValue(t *testing.T) {
	lambdas := make([]float64, 72)
	for i := range lambdas {
		lambdas[i] = 5200.0 / 3
	}
	p := &DeadlineProblem{
		N: 200, Horizon: 24, Intervals: 72, Lambdas: lambdas,
		Accept: choice.Paper13, MinPrice: 0, MaxPrice: 40, Penalty: 100,
	}
	c0, err := p.TheoreticalMinPrice()
	if err != nil {
		t.Fatal(err)
	}
	if c0 != 12 {
		t.Errorf("c0 = %d, want 12", c0)
	}
}

// TestDynamicAdaptsPricesToProgress: with many tasks left late, the price
// exceeds the price with few tasks left late.
func TestDynamicAdaptsPricesToProgress(t *testing.T) {
	p := testProblem(60, 12)
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	lastT := p.Intervals - 1
	if pol.Price[lastT][p.N] <= pol.Price[lastT][1] {
		t.Errorf("late price with full backlog (%d) not above near-done price (%d)",
			pol.Price[lastT][p.N], pol.Price[lastT][1])
	}
}

// TestParallelMatchesSerial: the worker-pool fan-out must be bit-identical
// to the serial backward induction — same Price tables and exactly equal
// (not just close) Opt values, for both solvers, across worker counts.
func TestParallelMatchesSerial(t *testing.T) {
	for _, dims := range []struct{ n, intervals int }{{40, 9}, {97, 13}} {
		serial := *testProblem(dims.n, dims.intervals)
		serial.Workers = 1
		wantSimple, err := serial.SolveSimple()
		if err != nil {
			t.Fatal(err)
		}
		wantEff, err := serial.SolveEfficient()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 3, 8, 64} {
			par := *testProblem(dims.n, dims.intervals)
			par.Workers = workers
			gotSimple, err := par.SolveSimple()
			if err != nil {
				t.Fatal(err)
			}
			gotEff, err := par.SolveEfficient()
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range []struct {
				name      string
				want, got *DeadlinePolicy
			}{
				{"SolveSimple", wantSimple, gotSimple},
				{"SolveEfficient", wantEff, gotEff},
			} {
				for tt := range c.want.Price {
					for n := range c.want.Price[tt] {
						if c.got.Price[tt][n] != c.want.Price[tt][n] {
							t.Fatalf("%s workers=%d: Price[%d][%d] = %d, serial %d",
								c.name, workers, tt, n, c.got.Price[tt][n], c.want.Price[tt][n])
						}
					}
				}
				for tt := range c.want.Opt {
					for n := range c.want.Opt[tt] {
						if c.got.Opt[tt][n] != c.want.Opt[tt][n] {
							t.Fatalf("%s workers=%d: Opt[%d][%d] = %v, serial %v (not bit-identical)",
								c.name, workers, tt, n, c.got.Opt[tt][n], c.want.Opt[tt][n])
						}
					}
				}
			}
		}
	}
}
