package core

import (
	"testing"

	"crowdpricing/internal/choice"
)

func benchDeadline(n, intervals int) *DeadlineProblem {
	lambdas := make([]float64, intervals)
	for i := range lambdas {
		lambdas[i] = 1733
	}
	return &DeadlineProblem{
		N: n, Horizon: float64(intervals) / 3, Intervals: intervals,
		Lambdas: lambdas, Accept: choice.Paper13,
		MinPrice: 0, MaxPrice: 40, Penalty: 500, TruncEps: 1e-9,
	}
}

func BenchmarkSolveEfficientSmall(b *testing.B) {
	p := benchDeadline(50, 18)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveEfficient(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveEfficientPaperScale(b *testing.B) {
	p := benchDeadline(200, 72)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveEfficient(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSimplePaperScale(b *testing.B) {
	p := benchDeadline(200, 72)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveSimple(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatePolicy(b *testing.B) {
	p := benchDeadline(200, 72)
	pol, err := p.SolveEfficient()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Evaluate()
	}
}

func BenchmarkBudgetHull(b *testing.B) {
	p := &BudgetProblem{N: 200, Budget: 2500, Accept: choice.Paper13, MinPrice: 1, MaxPrice: 50}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveHull(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiTypeSolve(b *testing.B) {
	mp := testMultiType()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mp.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
