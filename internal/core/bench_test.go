package core

import (
	"testing"

	"crowdpricing/internal/choice"
)

// benchDeadline builds a paper-scale instance; workers = 1 measures the
// serial backward induction, 0 the full worker-pool fan-out.
func benchDeadline(n, intervals, workers int) *DeadlineProblem {
	lambdas := make([]float64, intervals)
	for i := range lambdas {
		lambdas[i] = 1733
	}
	return &DeadlineProblem{
		N: n, Horizon: float64(intervals) / 3, Intervals: intervals,
		Lambdas: lambdas, Accept: choice.Paper13,
		MinPrice: 0, MaxPrice: 40, Penalty: 500, TruncEps: 1e-9,
		Workers: workers,
	}
}

func BenchmarkSolveEfficientSmall(b *testing.B) {
	p := benchDeadline(50, 18, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveEfficient(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveEfficientPaperScale(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			p := benchDeadline(200, 72, bc.workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.SolveEfficient(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolveSimplePaperScale(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			p := benchDeadline(200, 72, bc.workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.SolveSimple(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveSimpleLarge is the regime the parallel fan-out targets:
// thousands of states per interval.
func BenchmarkSolveSimpleLarge(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			p := benchDeadline(1000, 24, bc.workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.SolveSimple(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEvaluatePolicy(b *testing.B) {
	p := benchDeadline(200, 72, 0)
	pol, err := p.SolveEfficient()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Evaluate()
	}
}

func BenchmarkBudgetHull(b *testing.B) {
	p := &BudgetProblem{N: 200, Budget: 2500, Accept: choice.Paper13, MinPrice: 1, MaxPrice: 50}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveHull(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiTypeSolve(b *testing.B) {
	mp := testMultiType()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mp.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
