package core

import (
	"math"
	"testing"
	"testing/quick"

	"crowdpricing/internal/choice"
)

// randomProblem derives a small but varied deadline instance from raw
// generator values.
func randomProblem(nRaw, intervalsRaw int, lambdaRaw, sRaw, bRaw, mRaw, penRaw float64) *DeadlineProblem {
	n := 1 + abs(nRaw)%25
	intervals := 2 + abs(intervalsRaw)%8
	baseLambda := 100 + math.Mod(math.Abs(lambdaRaw), 3000)
	lambdas := make([]float64, intervals)
	for i := range lambdas {
		lambdas[i] = baseLambda * (0.5 + 0.5*math.Abs(math.Sin(float64(i)+lambdaRaw)))
	}
	accept := choice.Logistic{
		S: 5 + math.Mod(math.Abs(sRaw), 25),
		B: math.Mod(bRaw, 1.5),
		M: 200 + math.Mod(math.Abs(mRaw), 8000),
	}
	return &DeadlineProblem{
		N:         n,
		Horizon:   float64(intervals) / 3,
		Intervals: intervals,
		Lambdas:   lambdas,
		Accept:    accept,
		MinPrice:  0,
		MaxPrice:  25,
		Penalty:   10 + math.Mod(math.Abs(penRaw), 2000),
		TruncEps:  1e-9,
	}
}

// TestPropertyEvaluateMatchesOpt: for random instances, the forward
// evaluation's payment + penalty always reproduces the DP's root value.
func TestPropertyEvaluateMatchesOpt(t *testing.T) {
	f := func(nRaw, intervalsRaw int, lambdaRaw, sRaw, bRaw, mRaw, penRaw float64) bool {
		if anyNaN(lambdaRaw, sRaw, bRaw, mRaw, penRaw) {
			return true
		}
		p := randomProblem(nRaw, intervalsRaw, lambdaRaw, sRaw, bRaw, mRaw, penRaw)
		pol, err := p.SolveEfficient()
		if err != nil {
			return false
		}
		out := pol.Evaluate()
		expPenalty := 0.0
		for n := 1; n <= p.N; n++ {
			expPenalty += (float64(n) + p.Alpha) * p.Penalty * out.Remaining[n]
		}
		total := out.ExpectedCost + expPenalty
		return math.Abs(total-pol.Opt[0][p.N]) <= 1e-6*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertySimpleEqualsEfficient: the monotone search never changes the
// value function on random instances (Conjecture 1 in the wild).
func TestPropertySimpleEqualsEfficient(t *testing.T) {
	f := func(nRaw, intervalsRaw int, lambdaRaw, sRaw, bRaw, mRaw, penRaw float64) bool {
		if anyNaN(lambdaRaw, sRaw, bRaw, mRaw, penRaw) {
			return true
		}
		p := randomProblem(nRaw, intervalsRaw, lambdaRaw, sRaw, bRaw, mRaw, penRaw)
		simple, err := p.SolveSimple()
		if err != nil {
			return false
		}
		efficient, err := p.SolveEfficient()
		if err != nil {
			return false
		}
		for tt := 0; tt <= p.Intervals; tt++ {
			for n := 0; n <= p.N; n++ {
				a, b := simple.Opt[tt][n], efficient.Opt[tt][n]
				if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPolicyWithinBounds: every stored price respects the range and
// values are non-negative and monotone in n.
func TestPropertyPolicyWithinBounds(t *testing.T) {
	f := func(nRaw, intervalsRaw int, lambdaRaw, sRaw, bRaw, mRaw, penRaw float64) bool {
		if anyNaN(lambdaRaw, sRaw, bRaw, mRaw, penRaw) {
			return true
		}
		p := randomProblem(nRaw, intervalsRaw, lambdaRaw, sRaw, bRaw, mRaw, penRaw)
		pol, err := p.SolveEfficient()
		if err != nil {
			return false
		}
		for tt := 0; tt < p.Intervals; tt++ {
			for n := 0; n <= p.N; n++ {
				c := pol.Price[tt][n]
				if c < p.MinPrice || c > p.MaxPrice {
					return false
				}
				if pol.Opt[tt][n] < -1e-9 {
					return false
				}
				if n > 0 && pol.Opt[tt][n] < pol.Opt[tt][n-1]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOptBelowFixedBaseline: the DP can always imitate any fixed
// price, so its value never exceeds the best fixed strategy's
// cost-plus-penalty.
func TestPropertyOptBelowFixedBaseline(t *testing.T) {
	f := func(nRaw, intervalsRaw int, lambdaRaw, sRaw, bRaw, mRaw, penRaw float64) bool {
		if anyNaN(lambdaRaw, sRaw, bRaw, mRaw, penRaw) {
			return true
		}
		p := randomProblem(nRaw, intervalsRaw, lambdaRaw, sRaw, bRaw, mRaw, penRaw)
		pol, err := p.SolveEfficient()
		if err != nil {
			return false
		}
		bestFixed := math.Inf(1)
		for c := p.MinPrice; c <= p.MaxPrice; c++ {
			out := p.EvaluateFixed(c)
			total := out.ExpectedCost + out.ExpectedRemaining*p.Penalty
			if total < bestFixed {
				bestFixed = total
			}
		}
		// A small tolerance covers the truncated-tail bookkeeping
		// difference between the two evaluations.
		return pol.Opt[0][p.N] <= bestFixed+1e-6*(1+bestFixed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func anyNaN(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}
