package core

import (
	"math"
	"testing"
)

func TestCoarsenLambdaConservation(t *testing.T) {
	p := testProblem(30, 12)
	q, err := p.Coarsen(3)
	if err != nil {
		t.Fatal(err)
	}
	if q.Intervals != 4 {
		t.Fatalf("intervals = %d, want 4", q.Intervals)
	}
	var a, b float64
	for _, l := range p.Lambdas {
		a += l
	}
	for _, l := range q.Lambdas {
		b += l
	}
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("arrival mass changed: %v vs %v", a, b)
	}
	// The original is untouched.
	if p.Intervals != 12 || len(p.Lambdas) != 12 {
		t.Error("Coarsen mutated its receiver")
	}
}

// TestCoarsenCostMonotone: restricting price changes can only cost more —
// the Section 5.2.3 granularity effect, with the coarse policy's value
// bounded below by the fine policy's.
func TestCoarsenCostMonotone(t *testing.T) {
	p := testProblem(40, 12)
	fine, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	prev := fine.Opt[0][p.N]
	for _, hold := range []int{2, 3, 6, 12} {
		q, err := p.Coarsen(hold)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := q.SolveEfficient()
		if err != nil {
			t.Fatal(err)
		}
		v := pol.Opt[0][q.N]
		if v < prev-1e-6 {
			t.Errorf("hold %d: value %v below finer grid's %v", hold, v, prev)
		}
		prev = v
	}
}

// TestCoarsenHoldOneIsIdentity: hold=1 reproduces the original solution.
func TestCoarsenHoldOneIsIdentity(t *testing.T) {
	p := testProblem(20, 6)
	q, err := p.Coarsen(1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Opt[0][p.N]-b.Opt[0][p.N]) > 1e-12 {
		t.Errorf("hold=1 changed the value: %v vs %v", a.Opt[0][p.N], b.Opt[0][p.N])
	}
}

func TestCoarsenValidation(t *testing.T) {
	p := testProblem(10, 12)
	if _, err := p.Coarsen(0); err == nil {
		t.Error("hold=0 accepted")
	}
	if _, err := p.Coarsen(5); err == nil {
		t.Error("ragged hold accepted")
	}
	bad := testProblem(10, 12)
	bad.N = 0
	if _, err := bad.Coarsen(2); err == nil {
		t.Error("invalid problem accepted")
	}
}

// TestMultiTypeEvaluateMatchesOpt: the forward evaluation's payment plus
// terminal penalty reproduces the joint DP's root value.
func TestMultiTypeEvaluateMatchesOpt(t *testing.T) {
	mp := testMultiType()
	pol, err := mp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	cost, remaining := pol.Evaluate()
	total := cost + remaining*mp.Penalty
	root := pol.Opt[0][mp.idx(mp.N1, mp.N2)]
	if math.Abs(total-root) > 1e-6*(1+root) {
		t.Errorf("evaluate total %v, Opt %v", total, root)
	}
	if remaining < 0 || cost < 0 {
		t.Errorf("negative metrics: cost %v remaining %v", cost, remaining)
	}
}
