package core

import (
	"encoding/json"
	"math"
	"testing"
)

func TestPolicyJSONRoundTrip(t *testing.T) {
	p := testProblem(25, 9)
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(pol)
	if err != nil {
		t.Fatal(err)
	}
	var back DeadlinePolicy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	// Identical tables.
	for tt := 0; tt < p.Intervals; tt++ {
		for n := 0; n <= p.N; n++ {
			if back.Price[tt][n] != pol.Price[tt][n] {
				t.Fatalf("price changed at (%d,%d)", n, tt)
			}
		}
	}
	for tt := 0; tt <= p.Intervals; tt++ {
		for n := 0; n <= p.N; n++ {
			if back.Opt[tt][n] != pol.Opt[tt][n] {
				t.Fatalf("opt changed at (%d,%d)", n, tt)
			}
		}
	}
	// The restored policy evaluates identically (the kernel rebuilds from
	// the restored problem).
	a, b := pol.Evaluate(), back.Evaluate()
	if math.Abs(a.ExpectedCost-b.ExpectedCost) > 1e-9 {
		t.Errorf("evaluation changed: %v vs %v", a.ExpectedCost, b.ExpectedCost)
	}
}

func TestPolicyJSONRejectsCorrupted(t *testing.T) {
	p := testProblem(10, 4)
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(pol)
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(*map[string]any){
		func(m *map[string]any) { (*m)["intervals"] = 3 },                 // wrong table rows
		func(m *map[string]any) { (*m)["n"] = 0 },                         // invalid problem
		func(m *map[string]any) { (*m)["price"] = [][]int{{999}} },        // out-of-range price
		func(m *map[string]any) { (*m)["opt"] = [][]float64{{1}, {2}} },   // wrong opt rows
		func(m *map[string]any) { (*m)["lambdas"] = []float64{1, 2, -3} }, // bad lambda
	}
	for i, corrupt := range cases {
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		corrupt(&m)
		bad, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back DeadlinePolicy
		if err := json.Unmarshal(bad, &back); err == nil {
			t.Errorf("corruption %d accepted", i)
		}
	}
}

type opaqueAccept struct{}

func (opaqueAccept) Accept(int) float64 { return 0.5 }

func TestPolicyJSONRejectsOpaqueAcceptance(t *testing.T) {
	p := testProblem(5, 3)
	p.Accept = opaqueAccept{}
	pol, err := p.SolveEfficient()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(pol); err == nil {
		t.Error("want error for non-serializable acceptance function")
	}
}
