package core

import (
	"errors"
	"fmt"
)

// QualityStrategy is a per-task quality-control strategy in the style of
// CrowdScreen (Section 6, "Incorporating Quality Control for Filtering
// Tasks"): a task sits at a point (x, y) counting its No and Yes answers so
// far, and each point either requests another answer or terminates with a
// PASS/FAIL decision. The pricing integration only needs the worst-case
// number of additional answers from each live point.
type QualityStrategy struct {
	// MaxAnswers is the largest x+y the strategy can reach.
	MaxAnswers int
	// terminal[x][y] reports whether (x, y) is a decision point.
	terminal [][]bool
}

// MajorityVote builds the classic k-answer majority strategy (k odd): keep
// asking until one side holds a strict majority of k, i.e. reaches
// ⌈k/2⌉ answers. This is the "small majority vote quality-control strategy"
// the paper cites as the typical case (k points ≈ 9 for k = 3).
func MajorityVote(k int) (QualityStrategy, error) {
	if k < 1 || k%2 == 0 {
		return QualityStrategy{}, fmt.Errorf("core: majority vote needs odd k, got %d", k)
	}
	need := k/2 + 1
	q := QualityStrategy{MaxAnswers: k}
	q.terminal = make([][]bool, k+1)
	for x := 0; x <= k; x++ {
		q.terminal[x] = make([]bool, k+1)
		for y := 0; y+x <= k; y++ {
			q.terminal[x][y] = x >= need || y >= need
		}
	}
	return q, nil
}

// NewQualityStrategy builds a QualityStrategy from an arbitrary terminal
// predicate over the triangular grid x+y ≤ maxAnswers — the adapter that
// plugs synthesized filtering strategies (internal/filter) into the pricing
// integration without a package dependency in either direction.
func NewQualityStrategy(maxAnswers int, terminal func(x, y int) bool) (QualityStrategy, error) {
	if maxAnswers < 1 {
		return QualityStrategy{}, errors.New("core: maxAnswers must be at least 1")
	}
	q := QualityStrategy{MaxAnswers: maxAnswers}
	q.terminal = make([][]bool, maxAnswers+1)
	for x := 0; x <= maxAnswers; x++ {
		q.terminal[x] = make([]bool, maxAnswers+1)
		for y := 0; x+y <= maxAnswers; y++ {
			q.terminal[x][y] = terminal(x, y)
		}
	}
	// Every deepest point must terminate or the worst case is undefined.
	for x := 0; x <= maxAnswers; x++ {
		if !q.terminal[x][maxAnswers-x] {
			return QualityStrategy{}, fmt.Errorf("core: point (%d, %d) at the depth limit does not terminate", x, maxAnswers-x)
		}
	}
	return q, nil
}

// IsTerminal reports whether (x, y) is a decision point. Points outside the
// strategy's reach are treated as terminal.
func (q QualityStrategy) IsTerminal(x, y int) bool {
	if x < 0 || y < 0 || x+y > q.MaxAnswers {
		return true
	}
	return q.terminal[x][y]
}

// WorstCaseAdditional returns the maximum number of further answers a task
// at point (x, y) can require before the strategy terminates — the
// conservative load measure of the paper's second approximation technique.
func (q QualityStrategy) WorstCaseAdditional(x, y int) int {
	if q.IsTerminal(x, y) {
		return 0
	}
	// One more answer leads to (x+1, y) or (x, y+1); worst case is the max.
	a := q.WorstCaseAdditional(x+1, y)
	b := q.WorstCaseAdditional(x, y+1)
	if b > a {
		a = b
	}
	return 1 + a
}

// QualityPricingPlan couples a deadline pricing policy with a quality
// strategy using the paper's approximation: plan prices for
// N' = N·WorstCaseAdditional(0,0) unit questions and, while running, track
// the current total worst-case question load to index the policy.
type QualityPricingPlan struct {
	Policy   *DeadlinePolicy
	Strategy QualityStrategy
	// PerTaskWorstCase is WorstCaseAdditional(0, 0).
	PerTaskWorstCase int
}

// PlanWithQuality builds the pricing plan: it scales the base problem's task
// count by the strategy's worst-case question load and solves the deadline
// DP on the inflated count. base.N must be the number of filtering tasks.
func PlanWithQuality(base *DeadlineProblem, q QualityStrategy) (*QualityPricingPlan, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	w := q.WorstCaseAdditional(0, 0)
	if w <= 0 {
		return nil, errors.New("core: quality strategy terminates immediately")
	}
	scaled := *base
	scaled.Lambdas = append([]float64(nil), base.Lambdas...)
	scaled.N = base.N * w
	pol, err := scaled.SolveEfficient()
	if err != nil {
		return nil, err
	}
	return &QualityPricingPlan{Policy: pol, Strategy: q, PerTaskWorstCase: w}, nil
}

// TaskPoint is the quality-control progress of one task.
type TaskPoint struct{ X, Y int }

// Load returns N', the total worst-case remaining question count across the
// live tasks — the state coordinate the pricing policy is indexed by.
func (p *QualityPricingPlan) Load(tasks []TaskPoint) int {
	total := 0
	for _, tp := range tasks {
		total += p.Strategy.WorstCaseAdditional(tp.X, tp.Y)
	}
	return total
}

// PriceAt returns the per-question price to post at interval t given the
// live tasks' progress.
func (p *QualityPricingPlan) PriceAt(tasks []TaskPoint, t int) int {
	return p.Policy.PriceAt(p.Load(tasks), t)
}
