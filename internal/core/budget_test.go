package core

import (
	"math"
	"testing"
	"testing/quick"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/convex"
	"crowdpricing/internal/dist"
)

func testBudgetProblem(n, budget int) *BudgetProblem {
	return &BudgetProblem{
		N:        n,
		Budget:   budget,
		Accept:   choice.Paper13,
		MinPrice: 1,
		MaxPrice: 40,
	}
}

func TestBudgetValidate(t *testing.T) {
	if err := testBudgetProblem(10, 100).Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*BudgetProblem{
		{N: 0, Budget: 10, Accept: choice.Paper13, MaxPrice: 5},
		{N: 1, Budget: -1, Accept: choice.Paper13, MaxPrice: 5},
		{N: 1, Budget: 10, Accept: nil, MaxPrice: 5},
		{N: 1, Budget: 10, Accept: choice.Paper13, MinPrice: 6, MaxPrice: 5},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestSolveHullUsesAtMostTwoPrices is Theorem 7's structure surfacing in the
// solution.
func TestSolveHullUsesAtMostTwoPrices(t *testing.T) {
	s, err := testBudgetProblem(200, 2500).SolveHull()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Counts) > 2 {
		t.Errorf("strategy uses %d prices, want ≤ 2: %v", len(s.Counts), s.Counts)
	}
	if s.NumTasks() != 200 {
		t.Errorf("tasks = %d, want 200", s.NumTasks())
	}
	if s.TotalCost() > 2500 {
		t.Errorf("cost %d exceeds budget", s.TotalCost())
	}
}

// TestHullPricesAreAdjacentHullVertices: the chosen prices must be hull
// vertices bracketing B/N.
func TestHullPricesAreAdjacentHullVertices(t *testing.T) {
	p := testBudgetProblem(200, 2500)
	s, err := p.SolveHull()
	if err != nil {
		t.Fatal(err)
	}
	hull := convex.LowerHull(p.hullPoints())
	onHull := map[int]bool{}
	for _, v := range hull {
		onHull[int(v.X)] = true
	}
	for c := range s.Counts {
		if !onHull[c] {
			t.Errorf("price %d is not a hull vertex", c)
		}
	}
}

// TestExactDPMatchesHullWithinRounding: Theorem 8 bounds the rounded-LP gap
// by 1/p(c1) − 1/p(c2); the exact DP must be no worse and within that gap.
func TestExactDPMatchesHullWithinRounding(t *testing.T) {
	p := testBudgetProblem(50, 700)
	hull, err := p.SolveHull()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := p.SolveExactDP()
	if err != nil {
		t.Fatal(err)
	}
	hw := hull.ExpectedWorkerArrivals(p.Accept)
	ew := exact.ExpectedWorkerArrivals(p.Accept)
	if ew > hw+1e-9 {
		t.Errorf("exact DP (%v) worse than hull strategy (%v)", ew, hw)
	}
	// Theorem 8 gap bound.
	var c1, c2 = math.MaxInt, 0
	for c := range hull.Counts {
		if c < c1 {
			c1 = c
		}
		if c > c2 {
			c2 = c
		}
	}
	gap := 1/p.Accept.Accept(c1) - 1/p.Accept.Accept(c2)
	if hw-ew > gap+1e-9 {
		t.Errorf("hull gap %v exceeds Theorem 8 bound %v", hw-ew, gap)
	}
	if exact.TotalCost() > p.Budget {
		t.Errorf("exact DP overspends: %d > %d", exact.TotalCost(), p.Budget)
	}
}

// TestLPMatchesHull: the simplex LP relaxation and the hull construction
// agree on the optimal objective (hull is the analytic solution of the LP).
func TestLPMatchesHull(t *testing.T) {
	p := testBudgetProblem(80, 1100)
	alloc, obj, err := p.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc) > 2 {
		t.Errorf("LP solution uses %d prices, want ≤ 2 (Theorem 7): %v", len(alloc), alloc)
	}
	// Rebuild the fractional hull objective for comparison.
	hullStrategy, err := p.SolveHull()
	if err != nil {
		t.Fatal(err)
	}
	hullObj := hullStrategy.ExpectedWorkerArrivals(p.Accept)
	// The rounded hull solution may exceed the LP bound by at most the
	// Theorem 8 gap (one task moved between the two prices).
	if hullObj < obj-1e-6 {
		t.Errorf("hull (%v) beats the LP relaxation (%v): impossible", hullObj, obj)
	}
	var worst float64
	for c := range hullStrategy.Counts {
		if v := 1 / p.Accept.Accept(c); v > worst {
			worst = v
		}
	}
	if hullObj > obj+worst {
		t.Errorf("hull (%v) exceeds LP (%v) by more than one task's 1/p", hullObj, obj)
	}
}

// TestSemiStaticOrderInvariance is Theorem 5: E[W] depends only on the
// multiset of prices, not their order.
func TestSemiStaticOrderInvariance(t *testing.T) {
	prices := []int{5, 20, 11, 8, 30, 5}
	base := SemiStaticExpectedArrivals(prices, choice.Paper13)
	perm := []int{30, 5, 5, 8, 20, 11}
	if got := SemiStaticExpectedArrivals(perm, choice.Paper13); math.Abs(got-base) > 1e-12 {
		t.Errorf("permutation changed E[W]: %v vs %v", got, base)
	}
	// Matches the closed form Σ 1/p(c).
	want := 0.0
	for _, c := range prices {
		want += 1 / choice.Paper13.Accept(c)
	}
	if math.Abs(base-want) > 1e-12 {
		t.Errorf("E[W] = %v, want %v", base, want)
	}
}

// TestTheorem5MonteCarlo simulates a semi-static strategy on a homogeneous
// arrival stream and compares the empirical worker-arrival count with
// Σ 1/p(cᵢ).
func TestTheorem5MonteCarlo(t *testing.T) {
	prices := []int{25, 10, 32}
	accept := choice.Paper13
	want := SemiStaticExpectedArrivals(prices, accept)
	r := dist.NewRNG(21)
	const trials = 3000
	sum := 0.0
	for i := 0; i < trials; i++ {
		arrivals := 0
		for _, c := range prices {
			p := accept.Accept(c)
			arrivals += dist.Geometric{P: p}.Sample(r) + 1
		}
		sum += float64(arrivals)
	}
	got := sum / trials
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("simulated E[W] = %v, closed form %v", got, want)
	}
}

// TestBudgetMonotone: more budget can never increase optimal E[W].
func TestBudgetMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, b := range []int{600, 1000, 1500, 2500, 4000} {
		s, err := testBudgetProblem(50, b).SolveHull()
		if err != nil {
			t.Fatalf("budget %d: %v", b, err)
		}
		w := s.ExpectedWorkerArrivals(choice.Paper13)
		if w > prev+1e-9 {
			t.Errorf("budget %d: E[W]=%v rose above %v", b, w, prev)
		}
		prev = w
	}
}

// TestBudgetInfeasible: a budget below N·minViablePrice errors out.
func TestBudgetInfeasible(t *testing.T) {
	p := testBudgetProblem(100, 0)
	p.MinPrice = 5
	if _, err := p.SolveHull(); err == nil {
		t.Error("want infeasibility error from SolveHull")
	}
	if _, err := p.SolveExactDP(); err == nil {
		t.Error("want infeasibility error from SolveExactDP")
	}
}

// TestHullStrategyPropertyBudgetRespected: for random feasible instances the
// hull strategy never overspends and always allocates exactly N tasks.
func TestHullStrategyPropertyBudgetRespected(t *testing.T) {
	f := func(nRaw, bRaw int) bool {
		n := 1 + abs(nRaw)%300
		minSpend := n * 1 // MinPrice 1
		b := minSpend + abs(bRaw)%(40*n)
		s, err := testBudgetProblem(n, b).SolveHull()
		if err != nil {
			return false
		}
		return s.NumTasks() == n && s.TotalCost() <= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestExactBudgetBoundary: budget exactly N·c for hull price c yields the
// single-price solution.
func TestExactBudgetBoundary(t *testing.T) {
	p := testBudgetProblem(10, 100) // B/N = 10 exactly
	s, err := p.SolveHull()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Counts) != 1 {
		t.Fatalf("counts = %v, want single price", s.Counts)
	}
	for c := range s.Counts {
		if c != 10 {
			t.Errorf("price %d, want 10", c)
		}
	}
}

// TestPricesDescending: the drain order lists highest prices first.
func TestPricesDescending(t *testing.T) {
	s := StaticStrategy{Counts: map[int]int{5: 2, 9: 1}}
	prices := s.Prices()
	want := []int{9, 5, 5}
	if len(prices) != 3 {
		t.Fatalf("prices = %v", prices)
	}
	for i := range want {
		if prices[i] != want[i] {
			t.Errorf("prices = %v, want %v", prices, want)
			break
		}
	}
}

// TestExpectedLatencyScaling: E[T] = E[W]/λ̄.
func TestExpectedLatencyScaling(t *testing.T) {
	s := StaticStrategy{Counts: map[int]int{12: 10}}
	w := s.ExpectedWorkerArrivals(choice.Paper13)
	if got := s.ExpectedLatency(choice.Paper13, 2000); math.Abs(got-w/2000) > 1e-12 {
		t.Errorf("latency = %v, want %v", got, w/2000)
	}
	if !math.IsInf(s.ExpectedLatency(choice.Paper13, 0), 1) {
		t.Error("zero arrival rate should give infinite latency")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
