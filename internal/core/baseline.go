package core

import (
	"errors"

	"crowdpricing/internal/dist"
)

// FixedOutcome summarizes a fixed-price strategy: one reward assigned to all
// tasks up-front and never changed, the scheme of Faridani et al. that the
// paper uses as its baseline.
type FixedOutcome struct {
	// Price is the fixed per-task reward in cents.
	Price int
	// CompletionProb is P(all N tasks complete by the deadline).
	CompletionProb float64
	// ExpectedRemaining is E[# unfinished tasks at the deadline].
	ExpectedRemaining float64
	// ExpectedCost is the expected total payment: Price × E[completed].
	ExpectedCost float64
}

// EvaluateFixed computes the exact outcome of pricing every task at price
// for the whole horizon: completions by the deadline are Poisson with mean
// Λ·p(price) truncated at N.
func (p *DeadlineProblem) EvaluateFixed(price int) FixedOutcome {
	var lambdaTotal float64
	for _, l := range p.Lambdas {
		lambdaTotal += l
	}
	mean := lambdaTotal * p.Accept.Accept(price)
	pois := dist.Poisson{Lambda: mean}
	out := FixedOutcome{Price: price}
	out.CompletionProb = pois.Tail(p.N)
	// E[remaining] = Σ_{k<N} (N−k)·PMF(k).
	expDone := 0.0
	for k := 0; k < p.N; k++ {
		pk := pois.PMF(k)
		out.ExpectedRemaining += float64(p.N-k) * pk
		expDone += float64(k) * pk
	}
	expDone += float64(p.N) * out.CompletionProb
	out.ExpectedCost = float64(price) * expDone
	return out
}

// FixedPriceForConfidence finds, by the binary search of Faridani et al.,
// the smallest fixed price whose completion probability reaches confidence.
// It returns an error if even MaxPrice cannot reach the target.
func (p *DeadlineProblem) FixedPriceForConfidence(confidence float64) (FixedOutcome, error) {
	if err := p.Validate(); err != nil {
		return FixedOutcome{}, err
	}
	lo, hi := p.MinPrice, p.MaxPrice
	if p.EvaluateFixed(hi).CompletionProb < confidence {
		return p.EvaluateFixed(hi), errors.New("core: confidence unreachable at MaxPrice")
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if p.EvaluateFixed(mid).CompletionProb >= confidence {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return p.EvaluateFixed(lo), nil
}

// FixedPriceForBound finds the smallest fixed price whose expected number of
// remaining tasks is at most bound.
func (p *DeadlineProblem) FixedPriceForBound(bound float64) (FixedOutcome, error) {
	if err := p.Validate(); err != nil {
		return FixedOutcome{}, err
	}
	lo, hi := p.MinPrice, p.MaxPrice
	if p.EvaluateFixed(hi).ExpectedRemaining > bound {
		return p.EvaluateFixed(hi), errors.New("core: bound unreachable at MaxPrice")
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if p.EvaluateFixed(mid).ExpectedRemaining <= bound {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return p.EvaluateFixed(lo), nil
}

// TheoreticalMinPrice returns c₀, the information-theoretic lower bound on
// the average reward of any strategy (Section 5.2.1): the smallest price
// with E[completions] ≥ N under infinite task supply, i.e. p(c₀) ≥ N/Λ.
func (p *DeadlineProblem) TheoreticalMinPrice() (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	var lambdaTotal float64
	for _, l := range p.Lambdas {
		lambdaTotal += l
	}
	if lambdaTotal == 0 {
		return 0, errors.New("core: zero total arrival mass")
	}
	target := float64(p.N) / lambdaTotal
	for c := p.MinPrice; c <= p.MaxPrice; c++ {
		if p.Accept.Accept(c) >= target {
			return c, nil
		}
	}
	return 0, errors.New("core: no price reaches the completion-rate target")
}
