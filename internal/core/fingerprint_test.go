package core

import (
	"testing"

	"crowdpricing/internal/choice"
)

func fpDeadlineProblem() *DeadlineProblem {
	return &DeadlineProblem{
		N:         20,
		Horizon:   4,
		Intervals: 4,
		Lambdas:   []float64{50, 60, 70, 80},
		Accept:    choice.Paper13,
		MinPrice:  1,
		MaxPrice:  30,
		Penalty:   300,
		Alpha:     0.5,
		TruncEps:  1e-9,
	}
}

func fpBudgetProblem() *BudgetProblem {
	return &BudgetProblem{N: 100, Budget: 2500, Accept: choice.Paper13, MinPrice: 1, MaxPrice: 50}
}

func fpTradeoffProblem() *TradeoffProblem {
	return &TradeoffProblem{N: 50, Alpha: 10, Lambda: 200, Accept: choice.Paper13, MinPrice: 1, MaxPrice: 50}
}

func fpMultiProblem() *MultiProblem {
	return &MultiProblem{
		Counts:    []int{3, 4},
		Intervals: 3,
		Lambdas:   []float64{40, 50, 60},
		Accepts:   []choice.AcceptanceFn{choice.Paper13, choice.Logistic{S: 12, B: -0.4, M: 1500}},
		MinPrice:  1,
		MaxPrice:  6,
		Penalty:   120,
		TruncEps:  1e-9,
	}
}

// TestFingerprintGolden pins the exact digests so any accidental change to
// the canonical encoding (which would silently invalidate every deployed
// cache) fails loudly. If the encoding is changed on purpose, bump the
// domain version tags and update these values.
func TestFingerprintGolden(t *testing.T) {
	cases := []struct {
		name string
		got  func() (string, error)
		want string
	}{
		{"deadline", fpDeadlineProblem().Fingerprint, "c76e7abbd9f102c22e5576d6f3fe5f0f45219c089ce3b49981d3af8ea4ec7d50"},
		{"budget", fpBudgetProblem().Fingerprint, "d38dfcb30ce2650749b7a62d140a0ff45600b51f1fa3facc6674232742a66bca"},
		{"tradeoff", fpTradeoffProblem().Fingerprint, "8bfe20f44544288c1ef3a5cd03fee297a25a13dae476d9a7134c4f1d8bcd7620"},
		{"multi", fpMultiProblem().Fingerprint, "5d42934a995333eca3b20f7e207022f6abd2a2384ba75525a2549bb261a8f622"},
	}
	for _, tc := range cases {
		got, err := tc.got()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s fingerprint = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestFingerprintStableAcrossRuns re-hashes the same problem many times via
// fresh copies; any dependence on allocation addresses or iteration order
// would show up as a mismatch.
func TestFingerprintStableAcrossRuns(t *testing.T) {
	want, err := fpDeadlineProblem().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got, err := fpDeadlineProblem().Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("run %d: fingerprint %s != %s", i, got, want)
		}
	}
}

// TestFingerprintEqualProblems checks that structurally equal problems hash
// equal even when built independently, and that the runtime-only Workers
// knob does not participate.
func TestFingerprintEqualProblems(t *testing.T) {
	a, b := fpDeadlineProblem(), fpDeadlineProblem()
	b.Workers = 16 // runtime knob: same policy, same cache entry
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Errorf("equal problems (Workers aside) hash differently: %s vs %s", fa, fb)
	}
}

// TestFingerprintPerturbations flips every policy-relevant field one at a
// time and checks each flip moves the hash.
func TestFingerprintPerturbations(t *testing.T) {
	base, err := fpDeadlineProblem().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	perturbations := map[string]func(p *DeadlineProblem){
		"N":        func(p *DeadlineProblem) { p.N = 21 },
		"Horizon":  func(p *DeadlineProblem) { p.Horizon = 4.5 },
		"Lambdas":  func(p *DeadlineProblem) { p.Lambdas[2] = 71 },
		"Accept.S": func(p *DeadlineProblem) { p.Accept = choice.Logistic{S: 16, B: -0.39, M: 2000} },
		"Accept.B": func(p *DeadlineProblem) { p.Accept = choice.Logistic{S: 15, B: -0.40, M: 2000} },
		"Accept.M": func(p *DeadlineProblem) { p.Accept = choice.Logistic{S: 15, B: -0.39, M: 2001} },
		"MinPrice": func(p *DeadlineProblem) { p.MinPrice = 2 },
		"MaxPrice": func(p *DeadlineProblem) { p.MaxPrice = 31 },
		"Penalty":  func(p *DeadlineProblem) { p.Penalty = 301 },
		"Alpha":    func(p *DeadlineProblem) { p.Alpha = 0.6 },
		"TruncEps": func(p *DeadlineProblem) { p.TruncEps = 1e-8 },
	}
	seen := map[string]string{}
	for name, mutate := range perturbations {
		p := fpDeadlineProblem()
		mutate(p)
		got, err := p.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got == base {
			t.Errorf("perturbing %s did not change the fingerprint", name)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("perturbations %s and %s collide", name, prev)
		}
		seen[got] = name
	}

	// Intervals cannot vary alone (Validate ties it to len(Lambdas)); check
	// the combined change moves the hash too, and differently from the
	// Lambdas-only perturbation.
	p := fpDeadlineProblem()
	p.Intervals = 5
	p.Lambdas = append(p.Lambdas, 90)
	got, err := p.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if got == base {
		t.Error("perturbing Intervals+Lambdas did not change the fingerprint")
	}
}

// TestFingerprintBudgetTradeoffPerturbations covers the other two kinds.
func TestFingerprintBudgetTradeoffPerturbations(t *testing.T) {
	bBase, err := fpBudgetProblem().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(p *BudgetProblem){
		"N":        func(p *BudgetProblem) { p.N = 101 },
		"Budget":   func(p *BudgetProblem) { p.Budget = 2501 },
		"Accept":   func(p *BudgetProblem) { p.Accept = choice.Logistic{S: 14, B: -0.39, M: 2000} },
		"MinPrice": func(p *BudgetProblem) { p.MinPrice = 2 },
		"MaxPrice": func(p *BudgetProblem) { p.MaxPrice = 51 },
	} {
		p := fpBudgetProblem()
		mutate(p)
		got, err := p.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got == bBase {
			t.Errorf("budget: perturbing %s did not change the fingerprint", name)
		}
	}

	tBase, err := fpTradeoffProblem().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(p *TradeoffProblem){
		"N":        func(p *TradeoffProblem) { p.N = 51 },
		"Alpha":    func(p *TradeoffProblem) { p.Alpha = 11 },
		"Lambda":   func(p *TradeoffProblem) { p.Lambda = 201 },
		"Accept":   func(p *TradeoffProblem) { p.Accept = choice.Logistic{S: 15, B: -0.38, M: 2000} },
		"MinPrice": func(p *TradeoffProblem) { p.MinPrice = 2 },
		"MaxPrice": func(p *TradeoffProblem) { p.MaxPrice = 51 },
	} {
		p := fpTradeoffProblem()
		mutate(p)
		got, err := p.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got == tBase {
			t.Errorf("tradeoff: perturbing %s did not change the fingerprint", name)
		}
	}
}

// TestFingerprintMultiPerturbations flips every policy-relevant field of
// the general-k problem one at a time and checks each flip moves the hash.
func TestFingerprintMultiPerturbations(t *testing.T) {
	base, err := fpMultiProblem().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	perturbations := map[string]func(p *MultiProblem){
		"Counts":      func(p *MultiProblem) { p.Counts[1] = 5 },
		"CountsOrder": func(p *MultiProblem) { p.Counts = []int{4, 3} },
		"Lambdas":     func(p *MultiProblem) { p.Lambdas[0] = 41 },
		"Accepts": func(p *MultiProblem) {
			p.Accepts[1] = choice.Logistic{S: 13, B: -0.4, M: 1500}
		},
		"AcceptsOrder": func(p *MultiProblem) {
			p.Accepts[0], p.Accepts[1] = p.Accepts[1], p.Accepts[0]
		},
		"MinPrice": func(p *MultiProblem) { p.MinPrice = 2 },
		"MaxPrice": func(p *MultiProblem) { p.MaxPrice = 7 },
		"Penalty":  func(p *MultiProblem) { p.Penalty = 121 },
		"TruncEps": func(p *MultiProblem) { p.TruncEps = 1e-8 },
	}
	seen := map[string]string{}
	for name, mutate := range perturbations {
		p := fpMultiProblem()
		mutate(p)
		got, err := p.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got == base {
			t.Errorf("perturbing %s did not change the fingerprint", name)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("perturbations %s and %s collide", name, prev)
		}
		seen[got] = name
	}

	// Intervals cannot vary alone (Validate ties it to len(Lambdas)).
	p := fpMultiProblem()
	p.Intervals = 4
	p.Lambdas = append(p.Lambdas, 70)
	got, err := p.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if got == base {
		t.Error("perturbing Intervals+Lambdas did not change the fingerprint")
	}

	// Invalid and non-parametric problems must not fingerprint.
	q := fpMultiProblem()
	q.Counts[0] = -1
	if _, err := q.Fingerprint(); err == nil {
		t.Error("expected error fingerprinting an invalid multi problem")
	}
	r := fpMultiProblem()
	r.Accepts[0] = customAccept{}
	if _, err := r.Fingerprint(); err == nil {
		t.Error("expected error fingerprinting a non-parametric acceptance curve")
	}
}

// TestFingerprintKindSeparation proves the domain tags keep problem kinds
// apart even when numeric fields coincide.
func TestFingerprintKindSeparation(t *testing.T) {
	b := &BudgetProblem{N: 10, Budget: 100, Accept: choice.Paper13, MinPrice: 1, MaxPrice: 50}
	tr := &TradeoffProblem{N: 10, Alpha: 100, Lambda: 1, Accept: choice.Paper13, MinPrice: 1, MaxPrice: 50}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	ft, err := tr.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fb == ft {
		t.Errorf("budget and tradeoff problems collide: %s", fb)
	}
}

// TestFingerprintRejectsInvalid keeps malformed problems out of caches.
func TestFingerprintRejectsInvalid(t *testing.T) {
	p := fpDeadlineProblem()
	p.N = 0
	if _, err := p.Fingerprint(); err == nil {
		t.Error("expected error fingerprinting an invalid problem")
	}
	q := fpDeadlineProblem()
	q.Accept = customAccept{}
	if _, err := q.Fingerprint(); err == nil {
		t.Error("expected error fingerprinting a non-parametric acceptance curve")
	}
}

type customAccept struct{}

func (customAccept) Accept(int) float64 { return 0.5 }
