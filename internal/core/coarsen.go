package core

import (
	"errors"
	"fmt"
)

// Coarsen returns a copy of the problem whose decision epochs are hold
// intervals of the original grid merged together — the marketplace
// constraint Section 2.3 mentions ("some marketplaces may impose a minimum
// time only after which the task reward may be changed"). A policy solved on
// the coarsened problem changes price at most once per hold×(original
// interval length) and is directly comparable to the fine-grained policy,
// which is how Figure 8(d)'s granularity sweep is built.
//
// The original interval count must be divisible by hold: merged intervals
// with ragged tails would bias the λ_t of Equation (4).
func (p *DeadlineProblem) Coarsen(hold int) (*DeadlineProblem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if hold <= 0 {
		return nil, errors.New("core: hold must be positive")
	}
	if p.Intervals%hold != 0 {
		return nil, fmt.Errorf("core: %d intervals not divisible by hold %d", p.Intervals, hold)
	}
	q := *p
	q.Intervals = p.Intervals / hold
	q.Lambdas = make([]float64, q.Intervals)
	for i := range q.Lambdas {
		for j := 0; j < hold; j++ {
			q.Lambdas[i] += p.Lambdas[i*hold+j]
		}
	}
	return &q, nil
}
