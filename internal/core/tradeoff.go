package core

import (
	"errors"
	"math"

	"crowdpricing/internal/choice"
)

// TradeoffProblem optimizes the Section 6 combined objective
//
//	Q = E(cost) + Alpha·E(latency)
//
// with neither a hard deadline nor a hard budget. Two formulations are
// provided, both with state = number of outstanding tasks and O(N·C)
// complexity:
//
//   - SolveFixedRate assumes a constant marketplace rate λ per unit time and
//     unit-time steps so small that at most one task completes per step.
//   - SolveWorkerArrival relaxes that to the Section 4.2.2 linearity
//     assumption E[T] = E[W]/λ̄: transitions happen per worker arrival.
type TradeoffProblem struct {
	// N is the number of tasks.
	N int
	// Alpha is the latency weight (cost units per hour).
	Alpha float64
	// Lambda is the (average) worker arrival rate per hour.
	Lambda float64
	// Accept maps price to acceptance probability.
	Accept choice.AcceptanceFn
	// MinPrice and MaxPrice bound the price search (cents, inclusive).
	MinPrice, MaxPrice int
}

// TradeoffPolicy holds the stationary optimal prices: Price[n] is the reward
// posted while n tasks remain, and Value[n] the optimal expected remaining
// objective.
type TradeoffPolicy struct {
	Price []int
	Value []float64
}

// Validate reports whether the problem is well formed.
func (p *TradeoffProblem) Validate() error {
	switch {
	case p.N <= 0:
		return errors.New("core: N must be positive")
	case p.Alpha < 0:
		return errors.New("core: negative latency weight")
	case p.Lambda <= 0:
		return errors.New("core: non-positive arrival rate")
	case p.Accept == nil:
		return errors.New("core: nil acceptance function")
	case p.MinPrice < 0 || p.MaxPrice < p.MinPrice:
		return errors.New("core: bad price range")
	}
	return nil
}

// SolveFixedRate solves the fixed-rate formulation. With per-step completion
// probability q(c) = e^{−λ̃p(c)}·λ̃p(c) (exactly one completion in a unit
// step of expected arrivals λ̃) and per-step latency cost α, the Bellman
// equation telescopes to
//
//	Opt(n) = Opt(n−1) + min_c [ c + α̃/q(c) ],
//
// where α̃ is the per-step latency cost. The step is taken as one hour's
// worth of arrivals scaled down so λ̃·max_c p(c) ≤ 0.1, keeping the
// "at most one completion per step" reading honest.
func (p *TradeoffProblem) SolveFixedRate() (*TradeoffPolicy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Choose a step small enough that two completions in one step are
	// negligible at every candidate price.
	maxP := p.Accept.Accept(p.MaxPrice)
	stepHours := 1.0
	if lim := 0.1 / (p.Lambda * maxP); lim < stepHours {
		stepHours = lim
	}
	lambdaStep := p.Lambda * stepHours
	alphaStep := p.Alpha * stepHours
	pol := &TradeoffPolicy{
		Price: make([]int, p.N+1),
		Value: make([]float64, p.N+1),
	}
	// The per-task increment is state independent; still record it per n to
	// keep the policy interface uniform (and allow future n-dependence).
	bestInc := math.Inf(1)
	bestPrice := p.MinPrice
	for c := p.MinPrice; c <= p.MaxPrice; c++ {
		m := lambdaStep * p.Accept.Accept(c)
		q := math.Exp(-m) * m
		if q <= 0 {
			continue
		}
		if inc := float64(c) + alphaStep/q; inc < bestInc {
			bestInc = inc
			bestPrice = c
		}
	}
	if math.IsInf(bestInc, 1) {
		return nil, errors.New("core: no price yields a positive completion rate")
	}
	for n := 1; n <= p.N; n++ {
		pol.Price[n] = bestPrice
		pol.Value[n] = pol.Value[n-1] + bestInc
	}
	return pol, nil
}

// SolveWorkerArrival solves the worker-arrival formulation of Section 6:
// each transition is one worker arrival, acceptance probability p(c), and
// latency is charged at α/λ̄ per arrival (the linearity assumption). The
// Bellman equation telescopes to
//
//	Opt(n) = Opt(n−1) + min_c [ c + (α/λ̄)/p(c) ].
func (p *TradeoffProblem) SolveWorkerArrival() (*TradeoffPolicy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	perArrival := p.Alpha / p.Lambda
	pol := &TradeoffPolicy{
		Price: make([]int, p.N+1),
		Value: make([]float64, p.N+1),
	}
	bestInc := math.Inf(1)
	bestPrice := p.MinPrice
	for c := p.MinPrice; c <= p.MaxPrice; c++ {
		q := p.Accept.Accept(c)
		if q <= 0 {
			continue
		}
		if inc := float64(c) + perArrival/q; inc < bestInc {
			bestInc = inc
			bestPrice = c
		}
	}
	if math.IsInf(bestInc, 1) {
		return nil, errors.New("core: no price yields positive acceptance")
	}
	for n := 1; n <= p.N; n++ {
		pol.Price[n] = bestPrice
		pol.Value[n] = pol.Value[n-1] + bestInc
	}
	return pol, nil
}
