package core

import (
	"math"
	"testing"

	"crowdpricing/internal/choice"
)

func testMultiK(counts []int, accepts []choice.AcceptanceFn) *MultiProblem {
	lambdas := make([]float64, 4)
	for i := range lambdas {
		lambdas[i] = 1733
	}
	return &MultiProblem{
		Counts: counts, Intervals: 4, Lambdas: lambdas, Accepts: accepts,
		MinPrice: 0, MaxPrice: 12, Penalty: 300, TruncEps: 1e-9,
	}
}

func TestMultiKValidate(t *testing.T) {
	ok := testMultiK([]int{3, 3}, []choice.AcceptanceFn{choice.Paper13, choice.Paper13})
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*MultiProblem{
		{Counts: nil},
		{Counts: []int{3}, Accepts: nil},
		{Counts: []int{0}, Accepts: []choice.AcceptanceFn{choice.Paper13}},
		{Counts: []int{3}, Accepts: []choice.AcceptanceFn{nil}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Size budgets: huge joint spaces are refused, not attempted.
	huge := testMultiK([]int{400, 400, 400}, []choice.AcceptanceFn{choice.Paper13, choice.Paper13, choice.Paper13})
	if err := huge.Validate(); err == nil {
		t.Error("oversized state space accepted")
	}
	wide := testMultiK([]int{2, 2, 2}, []choice.AcceptanceFn{choice.Paper13, choice.Paper13, choice.Paper13})
	wide.MaxPrice = 200
	if err := wide.Validate(); err == nil {
		t.Error("oversized action space accepted")
	}
}

// TestMultiKOneTypeMatchesDeadlineDP: with k = 1 the general DP must
// reproduce the single-type deadline DP exactly.
func TestMultiKOneTypeMatchesDeadlineDP(t *testing.T) {
	mp := testMultiK([]int{10}, []choice.AcceptanceFn{choice.Paper13})
	pol, err := mp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	single := &DeadlineProblem{
		N: 10, Horizon: 4.0 / 3, Intervals: mp.Intervals, Lambdas: mp.Lambdas,
		Accept: choice.Paper13, MinPrice: mp.MinPrice, MaxPrice: mp.MaxPrice,
		Penalty: mp.Penalty, TruncEps: mp.TruncEps,
	}
	sp, err := single.SolveSimple()
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= mp.Intervals; tt++ {
		for n := 0; n <= 10; n++ {
			got := pol.Opt[tt][pol.index([]int{n})]
			want := sp.Opt[tt][n]
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("Opt[t=%d][n=%d] = %v, single-type %v", tt, n, got, want)
			}
		}
	}
	for tt := 0; tt < mp.Intervals; tt++ {
		for n := 1; n <= 10; n++ {
			if got := pol.Prices[tt][pol.index([]int{n})][0]; got != sp.Price[tt][n] {
				t.Fatalf("Price[t=%d][n=%d] = %d, single-type %d", tt, n, got, sp.Price[tt][n])
			}
		}
	}
}

// TestMultiKTwoTypesMatchesSpecialized: the general DP agrees with the
// dedicated two-type implementation.
func TestMultiKTwoTypesMatchesSpecialized(t *testing.T) {
	accept2 := choice.Logistic{S: 15, B: 0.2, M: 2000}
	mp := testMultiK([]int{5, 4}, []choice.AcceptanceFn{choice.Paper13, accept2})
	general, err := mp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	two := &MultiTypeProblem{
		N1: 5, N2: 4, Intervals: mp.Intervals, Lambdas: mp.Lambdas,
		Accept1: choice.Paper13, Accept2: accept2,
		MinPrice: mp.MinPrice, MaxPrice: mp.MaxPrice,
		Penalty: mp.Penalty, TruncEps: mp.TruncEps,
	}
	specialized, err := two.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= mp.Intervals; tt++ {
		for n1 := 0; n1 <= 5; n1++ {
			for n2 := 0; n2 <= 4; n2++ {
				got := general.Opt[tt][general.index([]int{n1, n2})]
				want := specialized.Opt[tt][two.idx(n1, n2)]
				if math.Abs(got-want) > 1e-9*(1+want) {
					t.Fatalf("Opt[t=%d][%d,%d] = %v, specialized %v", tt, n1, n2, got, want)
				}
			}
		}
	}
}

// TestMultiKThreeTypesSmoke: three types solve within the budgets and the
// solution behaves (zero state costs nothing, more backlog costs more).
func TestMultiKThreeTypesSmoke(t *testing.T) {
	accepts := []choice.AcceptanceFn{
		choice.Paper13,
		choice.Logistic{S: 15, B: 0.1, M: 2000},
		choice.Logistic{S: 12, B: -0.2, M: 3000},
	}
	mp := testMultiK([]int{3, 3, 3}, accepts)
	mp.MaxPrice = 10
	pol, err := mp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.Opt[0][pol.index([]int{0, 0, 0})]; got != 0 {
		t.Errorf("empty state costs %v", got)
	}
	full := pol.Opt[0][pol.index([]int{3, 3, 3})]
	partial := pol.Opt[0][pol.index([]int{1, 1, 1})]
	if full <= partial {
		t.Errorf("full backlog (%v) not above partial (%v)", full, partial)
	}
	prices := pol.PricesAt([]int{3, 3, 3}, 0)
	if len(prices) != 3 {
		t.Fatalf("price vector %v", prices)
	}
	for i, c := range prices {
		if c < mp.MinPrice || c > mp.MaxPrice {
			t.Errorf("type %d price %d out of range", i, c)
		}
	}
	// Clamping.
	a := pol.PricesAt([]int{99, -1, 2}, -5)
	b := pol.PricesAt([]int{3, 0, 2}, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("clamping mismatch: %v vs %v", a, b)
			break
		}
	}
}
