package core

import (
	"errors"
	"fmt"
	"math"

	"crowdpricing/internal/choice"
)

// MultiProblem generalizes the Section 6 multiple-task-type extension to an
// arbitrary number of types k: the state is the count vector
// (n₁, …, n_k, t), each type carries its own acceptance curve and price,
// and completions per interval are independent Poissons. The joint state
// and action spaces grow as ∏(Nᵢ+1) and C^k, so Solve enforces explicit
// size budgets; the two-type specialization (MultiTypeProblem) remains the
// practical entry point, and this type documents and tests the general
// construction the paper sketches.
type MultiProblem struct {
	// Counts holds the batch size per type.
	Counts []int
	// Intervals is the number of discretization intervals NT.
	Intervals int
	// Lambdas[t] is the expected worker arrivals in interval t.
	Lambdas []float64
	// Accepts holds one acceptance curve per type.
	Accepts []choice.AcceptanceFn
	// MinPrice and MaxPrice bound every type's price (cents, inclusive).
	MinPrice, MaxPrice int
	// Penalty is the terminal cost per unfinished task of any type.
	Penalty float64
	// TruncEps is the Poisson truncation threshold (0 = exact).
	TruncEps float64
}

// Solve size budgets: the joint DP refuses instances whose state×action
// product would be intractable rather than silently running for hours.
const (
	maxMultiStates  = 200_000
	maxMultiActions = 20_000
)

// Validate reports whether the problem is well formed and within the size
// budgets.
func (p *MultiProblem) Validate() error {
	if len(p.Counts) == 0 {
		return errors.New("core: no task types")
	}
	if len(p.Accepts) != len(p.Counts) {
		return fmt.Errorf("core: %d acceptance curves for %d types", len(p.Accepts), len(p.Counts))
	}
	states := 1
	for i, n := range p.Counts {
		if n <= 0 {
			return fmt.Errorf("core: type %d has count %d", i, n)
		}
		if p.Accepts[i] == nil {
			return fmt.Errorf("core: type %d has nil acceptance", i)
		}
		states *= n + 1
		if states > maxMultiStates {
			return fmt.Errorf("core: joint state space exceeds %d states", maxMultiStates)
		}
	}
	if p.Intervals <= 0 || len(p.Lambdas) != p.Intervals {
		return errors.New("core: bad interval configuration")
	}
	if p.MinPrice < 0 || p.MaxPrice < p.MinPrice {
		return errors.New("core: bad price range")
	}
	actions := 1
	nPrices := p.MaxPrice - p.MinPrice + 1
	for range p.Counts {
		actions *= nPrices
		if actions > maxMultiActions {
			return fmt.Errorf("core: joint action space exceeds %d price vectors", maxMultiActions)
		}
	}
	if p.Penalty < 0 {
		return errors.New("core: negative penalty")
	}
	return nil
}

// MultiPolicy is the solved general-k policy.
type MultiPolicy struct {
	Problem *MultiProblem
	// strides flatten count vectors to state indices.
	strides []int
	// Prices[t][state] is the optimal price vector (one price per type).
	Prices [][][]int
	// Opt[t][state] is the cost-to-go; row Intervals is terminal.
	Opt [][]float64
}

// index flattens a count vector.
func (pol *MultiPolicy) index(counts []int) int {
	idx := 0
	for i, n := range counts {
		idx += n * pol.strides[i]
	}
	return idx
}

// PricesAt returns the optimal price vector for the given remaining counts
// at interval t, clamping out-of-range values.
func (pol *MultiPolicy) PricesAt(counts []int, t int) []int {
	p := pol.Problem
	cl := make([]int, len(counts))
	for i := range counts {
		cl[i] = clamp(counts[i], 0, p.Counts[i])
	}
	t = clamp(t, 0, p.Intervals-1)
	out := make([]int, len(cl))
	copy(out, pol.Prices[t][pol.index(cl)])
	return out
}

// Solve runs backward induction over the joint state space, enumerating all
// price vectors per state. Use only at extension scale (see the size
// budgets); MultiTypeProblem covers the common two-type case.
func (p *MultiProblem) Solve() (*MultiPolicy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := len(p.Counts)
	strides := make([]int, k)
	states := 1
	for i := k - 1; i >= 0; i-- {
		strides[i] = states
		states *= p.Counts[i] + 1
	}
	pol := &MultiPolicy{Problem: p, strides: strides}
	pol.Prices = make([][][]int, p.Intervals)
	pol.Opt = make([][]float64, p.Intervals+1)

	// Terminal penalties.
	terminal := make([]float64, states)
	counts := make([]int, k)
	for s := 0; s < states; s++ {
		total := 0
		for _, n := range counts {
			total += n
		}
		terminal[s] = float64(total) * p.Penalty
		incCounts(counts, p.Counts)
	}
	pol.Opt[p.Intervals] = terminal

	// Price vectors, enumerated once.
	var priceVecs [][]int
	vec := make([]int, k)
	var enumerate func(i int)
	enumerate = func(i int) {
		if i == k {
			cp := make([]int, k)
			copy(cp, vec)
			priceVecs = append(priceVecs, cp)
			return
		}
		for c := p.MinPrice; c <= p.MaxPrice; c++ {
			vec[i] = c
			enumerate(i + 1)
		}
	}
	enumerate(0)

	for t := p.Intervals - 1; t >= 0; t-- {
		// Per-type kernels for this interval.
		tabs := make([]typeTable, k)
		for i := 0; i < k; i++ {
			tabs[i] = buildTypeTable(p.Lambdas[t], p.Accepts[i], p.MinPrice, p.MaxPrice, p.Counts[i], p.TruncEps)
		}
		next := pol.Opt[t+1]
		cur := make([]float64, states)
		prices := make([][]int, states)
		for i := range counts {
			counts[i] = 0
		}
		for s := 0; s < states; s++ {
			if allZero(counts) {
				prices[s] = make([]int, k)
				for i := range prices[s] {
					prices[s][i] = p.MinPrice
				}
				incCounts(counts, p.Counts)
				continue
			}
			best := math.Inf(1)
			var bestVec []int
			for _, pv := range priceVecs {
				if redundantVector(counts, pv, p.MinPrice) {
					continue
				}
				cost := p.vectorCost(tabs, next, pol, counts, pv)
				if cost < best {
					best = cost
					bestVec = pv
				}
			}
			cur[s] = best
			prices[s] = bestVec
			incCounts(counts, p.Counts)
		}
		pol.Opt[t] = cur
		pol.Prices[t] = prices
	}
	return pol, nil
}

// redundantVector skips price vectors that differ from the canonical one
// only on types with zero remaining tasks (their price is irrelevant).
func redundantVector(counts, prices []int, minPrice int) bool {
	for i, n := range counts {
		if n == 0 && prices[i] != minPrice {
			return true
		}
	}
	return false
}

// vectorCost marginalizes the k independent completion counts recursively.
func (p *MultiProblem) vectorCost(tabs []typeTable, next []float64, pol *MultiPolicy, counts, prices []int) float64 {
	k := len(counts)
	// Pre-list outcomes per type.
	outCounts := make([][]int, k)
	outProbs := make([][]float64, k)
	for i := 0; i < k; i++ {
		ci := prices[i] - tabs[i].min
		outCounts[i], outProbs[i] = completionOutcomes(tabs[i].pmf[ci], tabs[i].cum[ci], counts[i])
	}
	total := 0.0
	var rec func(i int, prob, pay float64, idx int)
	rec = func(i int, prob, pay float64, idx int) {
		if prob == 0 {
			return
		}
		if i == k {
			total += prob * (pay + next[idx])
			return
		}
		for o, s := range outCounts[i] {
			rec(i+1,
				prob*outProbs[i][o],
				pay+float64(s*prices[i]),
				idx+(counts[i]-s)*pol.strides[i])
		}
	}
	rec(0, 1, 0, 0)
	return total
}

func incCounts(counts, limits []int) {
	for i := len(counts) - 1; i >= 0; i-- {
		counts[i]++
		if counts[i] <= limits[i] {
			return
		}
		counts[i] = 0
	}
}

func allZero(xs []int) bool {
	for _, x := range xs {
		if x != 0 {
			return false
		}
	}
	return true
}
