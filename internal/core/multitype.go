package core

import (
	"errors"
	"fmt"
	"math"

	"crowdpricing/internal/choice"
)

// MultiTypeProblem is the Section 6 "Multiple Task Types" extension: two
// task types share one deadline; the state is (n₁, n₂, t) and each type
// carries its own acceptance curve and price. Completions of the two types
// in one interval are independent Poissons (workers who pick up type-i tasks
// do so with probability pᵢ(cᵢ)).
//
// The implementation is restricted to two types: the general k-type state
// space is O(∏Nᵢ) and the paper itself notes the DP "is similar"; two types
// demonstrate the construction while staying tractable.
type MultiTypeProblem struct {
	// N1, N2 are the batch sizes of the two task types.
	N1, N2 int
	// Intervals is the number of discretization intervals NT.
	Intervals int
	// Lambdas[t] is the expected worker arrivals in interval t.
	Lambdas []float64
	// Accept1, Accept2 map each type's price to its acceptance probability.
	Accept1, Accept2 choice.AcceptanceFn
	// MinPrice and MaxPrice bound both price searches (cents, inclusive).
	MinPrice, MaxPrice int
	// Penalty is the terminal cost per unfinished task of either type.
	Penalty float64
	// TruncEps is the Poisson truncation threshold (0 = exact).
	TruncEps float64
}

// Validate reports whether the problem is well formed.
func (p *MultiTypeProblem) Validate() error {
	switch {
	case p.N1 <= 0 || p.N2 <= 0:
		return errors.New("core: both type counts must be positive")
	case p.Intervals <= 0:
		return errors.New("core: intervals must be positive")
	case len(p.Lambdas) != p.Intervals:
		return fmt.Errorf("core: %d lambdas for %d intervals", len(p.Lambdas), p.Intervals)
	case p.Accept1 == nil || p.Accept2 == nil:
		return errors.New("core: nil acceptance function")
	case p.MinPrice < 0 || p.MaxPrice < p.MinPrice:
		return errors.New("core: bad price range")
	case p.Penalty < 0:
		return errors.New("core: negative penalty")
	}
	return nil
}

// MultiTypePolicy holds the solved joint policy. Indexing is
// [t][n1*(N2+1)+n2].
type MultiTypePolicy struct {
	Problem *MultiTypeProblem
	// Price1 and Price2 hold each type's optimal price per state.
	Price1, Price2 [][]int
	// Opt holds the cost-to-go per state; row Intervals is terminal.
	Opt [][]float64
}

func (p *MultiTypeProblem) idx(n1, n2 int) int { return n1*(p.N2+1) + n2 }

// PricesAt returns the optimal price pair with (n1, n2) tasks remaining at
// interval t, clamping out-of-range arguments.
func (pol *MultiTypePolicy) PricesAt(n1, n2, t int) (int, int) {
	p := pol.Problem
	n1 = clamp(n1, 0, p.N1)
	n2 = clamp(n2, 0, p.N2)
	t = clamp(t, 0, p.Intervals-1)
	i := p.idx(n1, n2)
	return pol.Price1[t][i], pol.Price2[t][i]
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Solve runs backward induction over the joint state space, scanning the
// full price grid per state; complexity is O(NT·N1·N2·C²·s̄) with s̄ the
// truncated support size — the vector-state DP sketched in Section 6.
func (p *MultiTypeProblem) Solve() (*MultiTypePolicy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	states := (p.N1 + 1) * (p.N2 + 1)
	pol := &MultiTypePolicy{Problem: p}
	pol.Price1 = make([][]int, p.Intervals)
	pol.Price2 = make([][]int, p.Intervals)
	pol.Opt = make([][]float64, p.Intervals+1)
	terminal := make([]float64, states)
	for n1 := 0; n1 <= p.N1; n1++ {
		for n2 := 0; n2 <= p.N2; n2++ {
			terminal[p.idx(n1, n2)] = float64(n1+n2) * p.Penalty
		}
	}
	pol.Opt[p.Intervals] = terminal

	// The joint Bellman operator does not decouple exactly (the value
	// function is not additively separable in general), so every price pair
	// is evaluated against the true joint continuation with truncated
	// Poisson kernels. O(N1·N2·C²) per interval — fine at extension scale.
	for t := p.Intervals - 1; t >= 0; t-- {
		tab1 := buildTypeTable(p.Lambdas[t], p.Accept1, p.MinPrice, p.MaxPrice, p.N1, p.TruncEps)
		tab2 := buildTypeTable(p.Lambdas[t], p.Accept2, p.MinPrice, p.MaxPrice, p.N2, p.TruncEps)
		next := pol.Opt[t+1]
		cur := make([]float64, states)
		pr1 := make([]int, states)
		pr2 := make([]int, states)
		for i := range pr1 {
			pr1[i] = p.MinPrice
			pr2[i] = p.MinPrice
		}
		for n1 := 0; n1 <= p.N1; n1++ {
			for n2 := 0; n2 <= p.N2; n2++ {
				if n1 == 0 && n2 == 0 {
					continue
				}
				best := math.Inf(1)
				b1, b2 := p.MinPrice, p.MinPrice
				for c1 := p.MinPrice; c1 <= p.MaxPrice; c1++ {
					if n1 == 0 && c1 > p.MinPrice {
						break // price of an empty type is irrelevant
					}
					for c2 := p.MinPrice; c2 <= p.MaxPrice; c2++ {
						if n2 == 0 && c2 > p.MinPrice {
							break
						}
						cost := jointCost(p, tab1, tab2, next, n1, n2, c1, c2)
						if cost < best {
							best = cost
							b1, b2 = c1, c2
						}
					}
				}
				i := p.idx(n1, n2)
				cur[i] = best
				pr1[i], pr2[i] = b1, b2
			}
		}
		pol.Opt[t] = cur
		pol.Price1[t] = pr1
		pol.Price2[t] = pr2
	}
	return pol, nil
}

// Evaluate propagates the joint state distribution forward under the policy
// and returns the expected total payment and the expected number of
// unfinished tasks (both types combined) — the multi-type analogue of
// DeadlinePolicy.Evaluate.
func (pol *MultiTypePolicy) Evaluate() (expectedCost, expectedRemaining float64) {
	p := pol.Problem
	states := (p.N1 + 1) * (p.N2 + 1)
	cur := make([]float64, states)
	next := make([]float64, states)
	cur[p.idx(p.N1, p.N2)] = 1
	for t := 0; t < p.Intervals; t++ {
		tab1 := buildTypeTable(p.Lambdas[t], p.Accept1, p.MinPrice, p.MaxPrice, p.N1, p.TruncEps)
		tab2 := buildTypeTable(p.Lambdas[t], p.Accept2, p.MinPrice, p.MaxPrice, p.N2, p.TruncEps)
		for i := range next {
			next[i] = 0
		}
		for n1 := 0; n1 <= p.N1; n1++ {
			for n2 := 0; n2 <= p.N2; n2++ {
				mass := cur[p.idx(n1, n2)]
				if mass == 0 {
					continue
				}
				if n1 == 0 && n2 == 0 {
					next[0] += mass
					continue
				}
				i := p.idx(n1, n2)
				c1, c2 := pol.Price1[t][i], pol.Price2[t][i]
				s1s, p1s := completionOutcomes(tab1.pmf[c1-tab1.min], tab1.cum[c1-tab1.min], n1)
				s2s, p2s := completionOutcomes(tab2.pmf[c2-tab2.min], tab2.cum[c2-tab2.min], n2)
				for a, s1 := range s1s {
					for b, s2 := range s2s {
						prob := mass * p1s[a] * p2s[b]
						if prob == 0 {
							continue
						}
						next[p.idx(n1-s1, n2-s2)] += prob
						expectedCost += prob * float64(s1*c1+s2*c2)
					}
				}
			}
		}
		cur, next = next, cur
	}
	for n1 := 0; n1 <= p.N1; n1++ {
		for n2 := 0; n2 <= p.N2; n2++ {
			expectedRemaining += cur[p.idx(n1, n2)] * float64(n1+n2)
		}
	}
	return expectedCost, expectedRemaining
}

type typeTable struct {
	pmf [][]float64
	cum [][]float64
	min int
}

func buildTypeTable(lambda float64, accept choice.AcceptanceFn, minPrice, maxPrice, nMax int, eps float64) typeTable {
	n := maxPrice - minPrice + 1
	tab := typeTable{pmf: make([][]float64, n), cum: make([][]float64, n), min: minPrice}
	for ci := 0; ci < n; ci++ {
		mean := lambda * accept.Accept(minPrice+ci)
		limit := nMax + 1
		if eps > 0 {
			if s0 := poissonTruncation(mean, eps); s0 < limit {
				limit = s0
			}
		}
		tab.pmf[ci], tab.cum[ci] = poissonTable(mean, limit)
	}
	return tab
}

// completionOutcomes lists the possible completion counts from a truncated
// Poisson kernel when n tasks remain: counts 0..m−1 with their PMF mass plus
// a final "all n complete" bucket absorbing the tail (and any truncated
// mass). For n == 0 the single outcome is zero completions.
func completionOutcomes(pmf, cum []float64, n int) (counts []int, probs []float64) {
	if n == 0 {
		return []int{0}, []float64{1}
	}
	m := n
	if m > len(pmf) {
		m = len(pmf)
	}
	counts = make([]int, 0, m+1)
	probs = make([]float64, 0, m+1)
	for s := 0; s < m; s++ {
		counts = append(counts, s)
		probs = append(probs, pmf[s])
	}
	covered := 0.0
	if m > 0 {
		covered = cum[m-1]
	}
	if tail := 1 - covered; tail > 0 {
		counts = append(counts, n)
		probs = append(probs, tail)
	}
	return counts, probs
}

// jointCost evaluates the expected stage cost plus continuation for pricing
// the two types at (c1, c2) from state (n1, n2), marginalizing the two
// independent truncated Poisson completion counts.
func jointCost(p *MultiTypeProblem, tab1, tab2 typeTable, next []float64, n1, n2, c1, c2 int) float64 {
	s1s, p1s := completionOutcomes(tab1.pmf[c1-tab1.min], tab1.cum[c1-tab1.min], n1)
	s2s, p2s := completionOutcomes(tab2.pmf[c2-tab2.min], tab2.cum[c2-tab2.min], n2)
	cost := 0.0
	for i, s1 := range s1s {
		if p1s[i] == 0 {
			continue
		}
		for j, s2 := range s2s {
			prob := p1s[i] * p2s[j]
			if prob == 0 {
				continue
			}
			pay := float64(s1*c1 + s2*c2)
			cost += prob * (pay + next[p.idx(n1-s1, n2-s2)])
		}
	}
	return cost
}
