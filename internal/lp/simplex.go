// Package lp provides a small dense linear-programming solver used to
// cross-validate the convex-hull solution of the fixed-budget pricing LP
// (Section 4.3). It implements the two-phase primal simplex method for
// problems in the form
//
//	minimize cᵀx  subject to  A·x (≤,=,≥) b,  x ≥ 0.
//
// The solver targets the small instances that arise here (tens of variables,
// a handful of constraints); it is not a general-purpose LP code.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of one linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // ≤
	EQ                 // =
	GE                 // ≥
)

// Constraint is one row aᵀx (rel) b.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a minimization LP over non-negative variables.
type Problem struct {
	// Objective holds the cost coefficients c.
	Objective []float64
	// Constraints holds the rows of A together with senses and RHS.
	Constraints []Constraint
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

const eps = 1e-9

// Solution is an optimal LP solution.
type Solution struct {
	// X holds the optimal variable values.
	X []float64
	// Objective is cᵀx at the optimum.
	Objective float64
}

// Solve runs two-phase primal simplex and returns an optimal solution.
func Solve(p Problem) (Solution, error) {
	n := len(p.Objective)
	if n == 0 {
		return Solution{}, errors.New("lp: empty objective")
	}
	m := len(p.Constraints)
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return Solution{}, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.Coeffs), n)
		}
	}

	// Standardize: ensure b >= 0 by flipping rows, then add slack/surplus
	// and artificial variables.
	type row struct {
		a   []float64
		rel Relation
		b   float64
	}
	rows := make([]row, m)
	for i, c := range p.Constraints {
		a := append([]float64(nil), c.Coeffs...)
		b := c.RHS
		rel := c.Rel
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = row{a: a, rel: rel, b: b}
	}

	// Column layout: [x (n)] [slack/surplus (s)] [artificial (t)].
	numSlack := 0
	for _, r := range rows {
		if r.rel != EQ {
			numSlack++
		}
	}
	numArt := 0
	for _, r := range rows {
		if r.rel != LE {
			numArt++
		}
	}
	total := n + numSlack + numArt
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackIdx := n
	artIdx := n + numSlack
	artCols := make([]int, 0, numArt)
	for i, r := range rows {
		tab[i] = make([]float64, total+1)
		copy(tab[i], r.a)
		tab[i][total] = r.b
		switch r.rel {
		case LE:
			tab[i][slackIdx] = 1
			basis[i] = slackIdx
			slackIdx++
		case GE:
			tab[i][slackIdx] = -1
			slackIdx++
			tab[i][artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		case EQ:
			tab[i][artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		}
	}

	// Phase 1: minimize sum of artificials.
	if numArt > 0 {
		obj := make([]float64, total)
		for _, c := range artCols {
			obj[c] = 1
		}
		v, err := simplexIterate(tab, basis, obj)
		if err != nil {
			return Solution{}, err
		}
		if v > eps {
			return Solution{}, ErrInfeasible
		}
		// Drive any artificial variables out of the basis.
		for i, b := range basis {
			if b >= n+numSlack {
				pivoted := false
				for j := 0; j < n+numSlack; j++ {
					if math.Abs(tab[i][j]) > eps {
						pivot(tab, basis, i, j)
						pivoted = true
						break
					}
				}
				if !pivoted {
					// Redundant row; leave the artificial at zero.
					continue
				}
			}
		}
	}

	// Phase 2: original objective, artificial columns forbidden.
	obj := make([]float64, total)
	copy(obj, p.Objective)
	for _, c := range artCols {
		obj[c] = math.Inf(1) // never enter
	}
	v, err := simplexIterate(tab, basis, obj)
	if err != nil {
		return Solution{}, err
	}
	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	return Solution{X: x, Objective: v}, nil
}

// simplexIterate runs primal simplex on the tableau until optimality,
// returning the objective value. obj has one cost per column; +Inf marks a
// column that must never enter the basis.
func simplexIterate(tab [][]float64, basis []int, obj []float64) (float64, error) {
	m := len(tab)
	if m == 0 {
		return 0, nil
	}
	total := len(tab[0]) - 1
	for iter := 0; iter < 10_000; iter++ {
		// Reduced costs: c_j − c_Bᵀ B⁻¹ A_j, computed directly from the
		// current tableau (columns are already B⁻¹A).
		var entering = -1
		var bestRC float64 = -eps
		for j := 0; j < total; j++ {
			if math.IsInf(obj[j], 1) {
				continue
			}
			rc := obj[j]
			for i := 0; i < m; i++ {
				if !math.IsInf(obj[basis[i]], 1) {
					rc -= obj[basis[i]] * tab[i][j]
				} else if math.Abs(tab[i][j]) > eps {
					// An artificial is basic with a nonzero entry in this
					// column; entering here could make it positive. Treat
					// cost as prohibitive.
					rc = math.Inf(1)
					break
				}
			}
			if rc < bestRC {
				bestRC = rc
				entering = j
			}
		}
		if entering == -1 {
			// Optimal.
			v := 0.0
			for i := 0; i < m; i++ {
				if !math.IsInf(obj[basis[i]], 1) {
					v += obj[basis[i]] * tab[i][total]
				}
			}
			return v, nil
		}
		// Ratio test.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][entering] > eps {
				r := tab[i][total] / tab[i][entering]
				if r < best-eps || (math.Abs(r-best) <= eps && leave >= 0 && basis[i] < basis[leave]) {
					best = r
					leave = i
				}
			}
		}
		if leave == -1 {
			return 0, ErrUnbounded
		}
		pivot(tab, basis, leave, entering)
	}
	return 0, errors.New("lp: iteration limit reached (cycling?)")
}

func pivot(tab [][]float64, basis []int, r, c int) {
	m := len(tab)
	width := len(tab[r])
	pv := tab[r][c]
	for j := 0; j < width; j++ {
		tab[r][j] /= pv
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		f := tab[i][c]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			tab[i][j] -= f * tab[r][j]
		}
	}
	basis[r] = c
}
