package lp

import (
	"math"
	"testing"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSolveBasicLE(t *testing.T) {
	// min -x - y s.t. x + y <= 4, x <= 2 → x=2, y=2, obj=-4.
	s := solveOK(t, Problem{
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 4},
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 2},
		},
	})
	if math.Abs(s.Objective+4) > 1e-9 {
		t.Errorf("objective = %v, want -4", s.Objective)
	}
	if math.Abs(s.X[0]-2) > 1e-9 || math.Abs(s.X[1]-2) > 1e-9 {
		t.Errorf("x = %v, want [2 2]", s.X)
	}
}

func TestSolveWithEquality(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x >= 4 → x=10, y=0? No: obj favors x
	// (coeff 2 < 3), so x=10, y=0, obj=20.
	s := solveOK(t, Problem{
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 10},
			{Coeffs: []float64{1, 0}, Rel: GE, RHS: 4},
		},
	})
	if math.Abs(s.Objective-20) > 1e-9 {
		t.Errorf("objective = %v, want 20", s.Objective)
	}
}

func TestSolveGE(t *testing.T) {
	// min x + y s.t. x + 2y >= 6, 2x + y >= 6 → x=y=2, obj=4.
	s := solveOK(t, Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Rel: GE, RHS: 6},
			{Coeffs: []float64{2, 1}, Rel: GE, RHS: 6},
		},
	})
	if math.Abs(s.Objective-4) > 1e-9 {
		t.Errorf("objective = %v, want 4", s.Objective)
	}
	if math.Abs(s.X[0]-2) > 1e-9 || math.Abs(s.X[1]-2) > 1e-9 {
		t.Errorf("x = %v, want [2 2]", s.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	_, err := Solve(Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 1},
			{Coeffs: []float64{1}, Rel: GE, RHS: 2},
		},
	})
	if err != ErrInfeasible {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	_, err := Solve(Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 1},
		},
	})
	if err != ErrUnbounded {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3 (i.e. x >= 3) → x=3.
	s := solveOK(t, Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Rel: LE, RHS: -3},
		},
	})
	if math.Abs(s.X[0]-3) > 1e-9 {
		t.Errorf("x = %v, want 3", s.X[0])
	}
}

func TestSolveDegenerateRedundantRows(t *testing.T) {
	// Duplicate equality rows must not break phase 1.
	s := solveOK(t, Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 5},
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 5},
		},
	})
	if math.Abs(s.Objective-5) > 1e-9 {
		t.Errorf("objective = %v, want 5", s.Objective)
	}
}

// TestSolveBudgetShape solves a miniature of the Section 4.3 pricing LP:
// min Σ n_c / p(c) s.t. Σ n_c = N, Σ c·n_c <= B. The optimum should use the
// two hull prices.
func TestSolveBudgetShape(t *testing.T) {
	// Three candidate prices with 1/p values forming a strictly convex
	// curve: price 1 → 10, price 2 → 4, price 3 → 3.
	// N=10 tasks, budget B=15 → average price 1.5, between prices 1 and 2.
	s := solveOK(t, Problem{
		Objective: []float64{10, 4, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1}, Rel: EQ, RHS: 10},
			{Coeffs: []float64{1, 2, 3}, Rel: LE, RHS: 15},
		},
	})
	// Expect n1=5, n2=5: objective 5*10+5*4 = 70.
	if math.Abs(s.Objective-70) > 1e-6 {
		t.Errorf("objective = %v, want 70 (x=%v)", s.Objective, s.X)
	}
	if s.X[2] > 1e-9 {
		t.Errorf("non-hull allocation used: %v", s.X)
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(Problem{}); err == nil {
		t.Error("want error for empty objective")
	}
	_, err := Solve(Problem{
		Objective:   []float64{1, 2},
		Constraints: []Constraint{{Coeffs: []float64{1}, Rel: LE, RHS: 1}},
	})
	if err == nil {
		t.Error("want error for ragged constraint")
	}
}
