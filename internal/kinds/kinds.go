// Package kinds defines the wire-level problem specifications for every
// problem kind the pricing service solves, and registers them with the
// engine's kind registry. Each request type is a JSON codec over one
// internal/core problem plus an engine.Spec implementation (validate,
// fingerprint, solve), so the HTTP server, the typed client, the batch
// fan-out, and the load generator stay kind-generic: adding a problem kind
// is one Spec implementation here plus one Register call in Default — no
// per-kind code anywhere else.
package kinds

import (
	"context"
	"encoding/json"
	"fmt"

	"crowdpricing/internal/choice"
	"crowdpricing/internal/core"
	"crowdpricing/internal/engine"
)

// Kind names, as they appear in /v1/solve/{kind} routes, batch items,
// metrics labels, and bench mixes.
const (
	KindDeadline = "deadline"
	KindBudget   = "budget"
	KindTradeoff = "tradeoff"
	KindMulti    = "multi"
)

// LogisticParams is the wire form of the Equation-3 acceptance curve
// p(c) = exp(c/S − B) / (exp(c/S − B) + M). It is the only acceptance
// representation the service accepts: an arbitrary AcceptanceFn has no
// canonical content to hash, and the cache is keyed by content.
type LogisticParams struct {
	S float64 `json:"s"`
	B float64 `json:"b"`
	M float64 `json:"m"`
}

func (l LogisticParams) curve() choice.Logistic {
	return choice.Logistic{S: l.S, B: l.B, M: l.M}
}

// Service-level size limits. The library itself is uncapped, but a shared
// daemon must bound what one request can make it allocate: a deadline
// policy is O(N·Intervals) cells, the DP tables are O(priceRange·N), and
// the exact budget DP is O(N·Budget) space and O(N·Budget·priceRange)
// time. Every limit is far above paper scale (N=200, 72 intervals, C=50).
// Requests beyond a limit are rejected with HTTP 400 before any solver
// work.
const (
	// MaxTasks bounds N for every problem kind.
	MaxTasks = 10_000
	// MaxIntervals bounds the deadline discretization.
	MaxIntervals = 10_000
	// MaxStateCells bounds N·Intervals, the solved deadline policy size.
	MaxStateCells = 1_000_000
	// MaxPriceRange bounds MaxPrice − MinPrice for every problem kind.
	MaxPriceRange = 1_000
	// MaxBudget bounds the budget in cents (hull method).
	MaxBudget = 1_000_000
	// MaxExactTasks and MaxExactBudget bound the pseudo-polynomial exact
	// budget DP, whose cost scales with N·Budget rather than N alone.
	MaxExactTasks  = 500
	MaxExactBudget = 50_000
	// MaxMultiTypes and MaxMultiStates bound the general-k joint DP, whose
	// state space is ∏(Nᵢ+1); the core solver enforces its own (looser)
	// tractability budgets on top.
	MaxMultiTypes  = 4
	MaxMultiStates = 100_000
)

// DeadlineRequest asks for a fixed-deadline dynamic pricing policy
// (Section 3 of the paper): complete N tasks within HorizonHours at minimum
// expected cost. It mirrors core.DeadlineProblem field for field, minus the
// runtime-only Workers knob, which the engine owns.
type DeadlineRequest struct {
	// N is the number of tasks in the batch.
	N int `json:"n"`
	// HorizonHours is the time before the deadline.
	HorizonHours float64 `json:"horizon_hours"`
	// Intervals is the number of price-change intervals; len(Lambdas) must
	// equal it.
	Intervals int `json:"intervals"`
	// Lambdas[t] is the expected number of worker arrivals in interval t.
	Lambdas []float64 `json:"lambdas"`
	// Accept is the acceptance curve.
	Accept LogisticParams `json:"accept"`
	// MinPrice and MaxPrice bound the price search in cents (inclusive).
	MinPrice int `json:"min_price"`
	MaxPrice int `json:"max_price"`
	// Penalty is the terminal cost per unfinished task; Alpha the optional
	// Section 3.3 surcharge.
	Penalty float64 `json:"penalty"`
	Alpha   float64 `json:"alpha,omitempty"`
	// TruncEps is the Poisson truncation threshold (0 = exact sums).
	TruncEps float64 `json:"trunc_eps,omitempty"`

	// workers is the engine's solver-parallelism hint; runtime-only, never
	// on the wire, never in the fingerprint.
	workers int
}

// Kind implements engine.Spec.
func (r *DeadlineRequest) Kind() string { return KindDeadline }

// SetSolverParallelism implements engine.Tunable: the deadline MDP fans its
// backward induction out over this many goroutines.
func (r *DeadlineRequest) SetSolverParallelism(workers int) { r.workers = workers }

func (r *DeadlineRequest) checkLimits() error {
	switch {
	case r.N > MaxTasks:
		return fmt.Errorf("n %d exceeds the service limit %d", r.N, MaxTasks)
	case r.Intervals > MaxIntervals:
		return fmt.Errorf("intervals %d exceeds the service limit %d", r.Intervals, MaxIntervals)
	case r.N > 0 && r.Intervals > 0 && r.N*r.Intervals > MaxStateCells:
		return fmt.Errorf("n×intervals %d exceeds the service limit %d", r.N*r.Intervals, MaxStateCells)
	case r.MaxPrice-r.MinPrice > MaxPriceRange:
		return fmt.Errorf("price range %d exceeds the service limit %d", r.MaxPrice-r.MinPrice, MaxPriceRange)
	}
	return nil
}

func (r *DeadlineRequest) problem() *core.DeadlineProblem {
	return &core.DeadlineProblem{
		N:         r.N,
		Horizon:   r.HorizonHours,
		Intervals: r.Intervals,
		Lambdas:   r.Lambdas,
		Accept:    r.Accept.curve(),
		MinPrice:  r.MinPrice,
		MaxPrice:  r.MaxPrice,
		Penalty:   r.Penalty,
		Alpha:     r.Alpha,
		TruncEps:  r.TruncEps,
		Workers:   r.workers,
	}
}

// Validate implements engine.Spec.
func (r *DeadlineRequest) Validate() error {
	if err := r.checkLimits(); err != nil {
		return err
	}
	return r.problem().Validate()
}

// Fingerprint implements engine.Spec: the solver variant plus the canonical
// content hash of the problem (core.DeadlineProblem.Fingerprint).
func (r *DeadlineRequest) Fingerprint() (string, error) {
	if err := r.checkLimits(); err != nil {
		return "", err
	}
	fp, err := r.problem().Fingerprint()
	if err != nil {
		return "", err
	}
	return "deadline/efficient:" + fp, nil
}

// Solve implements engine.Spec, running Algorithm 2 (ImprovedDP).
func (r *DeadlineRequest) Solve(ctx context.Context) ([]byte, error) {
	pol, err := r.problem().SolveEfficient()
	if err != nil {
		return nil, err
	}
	return json.Marshal(pol)
}

// Budget solve methods.
const (
	// BudgetMethodHull is Algorithm 3: the near-optimal two-price strategy
	// from the lower convex hull of (c, 1/p(c)). The default.
	BudgetMethodHull = "hull"
	// BudgetMethodExact is the exact pseudo-polynomial DP of Theorem 6.
	BudgetMethodExact = "exact"
)

// BudgetRequest asks for a fixed-budget static price allocation
// (Section 4): complete N tasks within Budget cents while minimizing the
// expected completion time.
type BudgetRequest struct {
	N      int `json:"n"`
	Budget int `json:"budget"`
	// Accept is the acceptance curve.
	Accept LogisticParams `json:"accept"`
	// MinPrice and MaxPrice bound candidate prices in cents (inclusive).
	MinPrice int `json:"min_price"`
	MaxPrice int `json:"max_price"`
	// Method selects the solver: BudgetMethodHull (default) or
	// BudgetMethodExact. The method is part of the cache key — the two
	// solvers may return different (equally valid) allocations.
	Method string `json:"method,omitempty"`
}

// Kind implements engine.Spec.
func (r *BudgetRequest) Kind() string { return KindBudget }

func (r *BudgetRequest) checkLimits(method string) error {
	switch {
	case r.N > MaxTasks:
		return fmt.Errorf("n %d exceeds the service limit %d", r.N, MaxTasks)
	case r.Budget > MaxBudget:
		return fmt.Errorf("budget %d exceeds the service limit %d", r.Budget, MaxBudget)
	case r.MaxPrice-r.MinPrice > MaxPriceRange:
		return fmt.Errorf("price range %d exceeds the service limit %d", r.MaxPrice-r.MinPrice, MaxPriceRange)
	}
	if method == BudgetMethodExact {
		if r.N > MaxExactTasks {
			return fmt.Errorf("n %d exceeds the service limit %d for method %q", r.N, MaxExactTasks, method)
		}
		if r.Budget > MaxExactBudget {
			return fmt.Errorf("budget %d exceeds the service limit %d for method %q", r.Budget, MaxExactBudget, method)
		}
	}
	return nil
}

func (r *BudgetRequest) problem() *core.BudgetProblem {
	return &core.BudgetProblem{
		N:        r.N,
		Budget:   r.Budget,
		Accept:   r.Accept.curve(),
		MinPrice: r.MinPrice,
		MaxPrice: r.MaxPrice,
	}
}

func (r *BudgetRequest) method() (string, error) {
	switch r.Method {
	case "", BudgetMethodHull:
		return BudgetMethodHull, nil
	case BudgetMethodExact:
		return BudgetMethodExact, nil
	default:
		return "", fmt.Errorf("unknown budget method %q (want %q or %q)", r.Method, BudgetMethodHull, BudgetMethodExact)
	}
}

// Validate implements engine.Spec.
func (r *BudgetRequest) Validate() error {
	method, err := r.method()
	if err != nil {
		return err
	}
	if err := r.checkLimits(method); err != nil {
		return err
	}
	return r.problem().Validate()
}

// Fingerprint implements engine.Spec; the solve method is part of the key.
func (r *BudgetRequest) Fingerprint() (string, error) {
	method, err := r.method()
	if err != nil {
		return "", err
	}
	if err := r.checkLimits(method); err != nil {
		return "", err
	}
	fp, err := r.problem().Fingerprint()
	if err != nil {
		return "", err
	}
	return "budget/" + method + ":" + fp, nil
}

// Solve implements engine.Spec.
func (r *BudgetRequest) Solve(ctx context.Context) ([]byte, error) {
	method, err := r.method()
	if err != nil {
		return nil, err
	}
	p := r.problem()
	var strat core.StaticStrategy
	if method == BudgetMethodExact {
		strat, err = p.SolveExactDP()
	} else {
		strat, err = p.SolveHull()
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(BudgetStrategy{
		Counts:                 strat.Counts,
		TotalCost:              strat.TotalCost(),
		ExpectedWorkerArrivals: strat.ExpectedWorkerArrivals(p.Accept),
	})
}

// BudgetStrategy is the solved allocation: how many tasks to post at each
// price, with the headline statistics precomputed server-side.
type BudgetStrategy struct {
	// Counts maps price in cents to the number of tasks at that price; by
	// Theorem 7 at most two prices appear.
	Counts map[int]int `json:"counts"`
	// TotalCost is the committed spend Σ c·n_c in cents.
	TotalCost int `json:"total_cost"`
	// ExpectedWorkerArrivals is E[W] = Σ 1/p(cᵢ) (Theorem 5), the quantity
	// every budget strategy minimizes.
	ExpectedWorkerArrivals float64 `json:"expected_worker_arrivals"`
}

// Trade-off formulations.
const (
	// TradeoffWorkerArrival transitions per worker arrival under the
	// Section 4.2.2 linearity assumption. The default.
	TradeoffWorkerArrival = "worker_arrival"
	// TradeoffFixedRate assumes a constant rate and unit-time steps small
	// enough that at most one task completes per step.
	TradeoffFixedRate = "fixed_rate"
)

// TradeoffRequest asks for the stationary policy minimizing the Section 6
// combined objective E(cost) + Alpha·E(latency), with neither a hard
// deadline nor a hard budget.
type TradeoffRequest struct {
	N int `json:"n"`
	// Alpha is the latency weight in cost units per hour.
	Alpha float64 `json:"alpha"`
	// Lambda is the average worker arrival rate per hour.
	Lambda float64 `json:"lambda"`
	// Accept is the acceptance curve.
	Accept LogisticParams `json:"accept"`
	// MinPrice and MaxPrice bound the price search in cents (inclusive).
	MinPrice int `json:"min_price"`
	MaxPrice int `json:"max_price"`
	// Formulation selects TradeoffWorkerArrival (default) or
	// TradeoffFixedRate; like the budget method it is part of the cache key.
	Formulation string `json:"formulation,omitempty"`
}

// Kind implements engine.Spec.
func (r *TradeoffRequest) Kind() string { return KindTradeoff }

func (r *TradeoffRequest) checkLimits() error {
	switch {
	case r.N > MaxTasks:
		return fmt.Errorf("n %d exceeds the service limit %d", r.N, MaxTasks)
	case r.MaxPrice-r.MinPrice > MaxPriceRange:
		return fmt.Errorf("price range %d exceeds the service limit %d", r.MaxPrice-r.MinPrice, MaxPriceRange)
	}
	return nil
}

func (r *TradeoffRequest) problem() *core.TradeoffProblem {
	return &core.TradeoffProblem{
		N:        r.N,
		Alpha:    r.Alpha,
		Lambda:   r.Lambda,
		Accept:   r.Accept.curve(),
		MinPrice: r.MinPrice,
		MaxPrice: r.MaxPrice,
	}
}

func (r *TradeoffRequest) formulation() (string, error) {
	switch r.Formulation {
	case "", TradeoffWorkerArrival:
		return TradeoffWorkerArrival, nil
	case TradeoffFixedRate:
		return TradeoffFixedRate, nil
	default:
		return "", fmt.Errorf("unknown tradeoff formulation %q (want %q or %q)", r.Formulation, TradeoffWorkerArrival, TradeoffFixedRate)
	}
}

// Validate implements engine.Spec.
func (r *TradeoffRequest) Validate() error {
	if _, err := r.formulation(); err != nil {
		return err
	}
	if err := r.checkLimits(); err != nil {
		return err
	}
	return r.problem().Validate()
}

// Fingerprint implements engine.Spec; the formulation is part of the key.
func (r *TradeoffRequest) Fingerprint() (string, error) {
	form, err := r.formulation()
	if err != nil {
		return "", err
	}
	if err := r.checkLimits(); err != nil {
		return "", err
	}
	fp, err := r.problem().Fingerprint()
	if err != nil {
		return "", err
	}
	return "tradeoff/" + form + ":" + fp, nil
}

// Solve implements engine.Spec.
func (r *TradeoffRequest) Solve(ctx context.Context) ([]byte, error) {
	form, err := r.formulation()
	if err != nil {
		return nil, err
	}
	p := r.problem()
	var pol *core.TradeoffPolicy
	if form == TradeoffFixedRate {
		pol, err = p.SolveFixedRate()
	} else {
		pol, err = p.SolveWorkerArrival()
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(TradeoffSchedule{Price: pol.Price, Value: pol.Value})
}

// TradeoffSchedule is the solved stationary policy: Price[n] is the reward
// to post while n tasks remain, Value[n] the optimal expected remaining
// objective.
type TradeoffSchedule struct {
	Price []int     `json:"price"`
	Value []float64 `json:"value"`
}

// MultiRequest asks for the paper's Section 6 multiple-task-type extension
// at general k: jointly price k task types sharing one worker stream, each
// type with its own acceptance curve and remaining count, minimizing
// expected total payment plus terminal penalties. It mirrors
// core.MultiProblem field for field.
type MultiRequest struct {
	// Counts holds the batch size per type; len(Counts) is the number of
	// types k.
	Counts []int `json:"counts"`
	// Intervals is the number of discretization intervals; len(Lambdas)
	// must equal it.
	Intervals int `json:"intervals"`
	// Lambdas[t] is the expected worker arrivals in interval t.
	Lambdas []float64 `json:"lambdas"`
	// Accepts holds one acceptance curve per type, in type order.
	Accepts []LogisticParams `json:"accepts"`
	// MinPrice and MaxPrice bound every type's price in cents (inclusive).
	MinPrice int `json:"min_price"`
	MaxPrice int `json:"max_price"`
	// Penalty is the terminal cost per unfinished task of any type.
	Penalty float64 `json:"penalty"`
	// TruncEps is the Poisson truncation threshold (0 = exact sums).
	TruncEps float64 `json:"trunc_eps,omitempty"`
}

// Kind implements engine.Spec.
func (r *MultiRequest) Kind() string { return KindMulti }

func (r *MultiRequest) checkLimits() error {
	if len(r.Counts) > MaxMultiTypes {
		return fmt.Errorf("%d task types exceeds the service limit %d", len(r.Counts), MaxMultiTypes)
	}
	states := 1
	for _, n := range r.Counts {
		if n > MaxTasks {
			return fmt.Errorf("count %d exceeds the service limit %d", n, MaxTasks)
		}
		if n >= 0 {
			states *= n + 1
		}
		if states > MaxMultiStates {
			return fmt.Errorf("joint state space exceeds the service limit %d states", MaxMultiStates)
		}
	}
	if r.Intervals > MaxIntervals {
		return fmt.Errorf("intervals %d exceeds the service limit %d", r.Intervals, MaxIntervals)
	}
	if r.Intervals > 0 && states*r.Intervals > MaxStateCells {
		return fmt.Errorf("states×intervals %d exceeds the service limit %d", states*r.Intervals, MaxStateCells)
	}
	if r.MaxPrice-r.MinPrice > MaxPriceRange {
		return fmt.Errorf("price range %d exceeds the service limit %d", r.MaxPrice-r.MinPrice, MaxPriceRange)
	}
	return nil
}

func (r *MultiRequest) problem() *core.MultiProblem {
	accepts := make([]choice.AcceptanceFn, len(r.Accepts))
	for i, a := range r.Accepts {
		accepts[i] = a.curve()
	}
	return &core.MultiProblem{
		Counts:    r.Counts,
		Intervals: r.Intervals,
		Lambdas:   r.Lambdas,
		Accepts:   accepts,
		MinPrice:  r.MinPrice,
		MaxPrice:  r.MaxPrice,
		Penalty:   r.Penalty,
		TruncEps:  r.TruncEps,
	}
}

// Validate implements engine.Spec.
func (r *MultiRequest) Validate() error {
	if err := r.checkLimits(); err != nil {
		return err
	}
	return r.problem().Validate()
}

// Fingerprint implements engine.Spec.
func (r *MultiRequest) Fingerprint() (string, error) {
	if err := r.checkLimits(); err != nil {
		return "", err
	}
	fp, err := r.problem().Fingerprint()
	if err != nil {
		return "", err
	}
	return "multi/joint:" + fp, nil
}

// Solve implements engine.Spec, running the joint backward induction over
// the k-type state space.
func (r *MultiRequest) Solve(ctx context.Context) ([]byte, error) {
	pol, err := r.problem().Solve()
	if err != nil {
		return nil, err
	}
	// The initial state (every count at its maximum) is the last index in
	// the row-major layout, so Opt[0]'s final entry is the expected total
	// objective of the whole run.
	start := len(pol.Opt[0]) - 1
	return json.Marshal(MultiSchedule{
		Counts:    r.Counts,
		Intervals: r.Intervals,
		Prices:    pol.Prices,
		Value:     pol.Opt[0][start],
	})
}

// MultiSchedule is the solved general-k policy on the wire: Prices[t][s] is
// the optimal price vector (one price per type) at interval t in joint
// state s, states enumerated row-major over the count vectors (the last
// type's count varies fastest). Value is the expected total objective from
// the initial full-count state.
type MultiSchedule struct {
	Counts    []int     `json:"counts"`
	Intervals int       `json:"intervals"`
	Prices    [][][]int `json:"prices"`
	Value     float64   `json:"value"`
}

// Default returns the registry holding every built-in problem kind, in
// canonical order: deadline, budget, tradeoff, multi. The registry is
// shared — treat it as read-only.
func Default() *engine.Registry { return defaultRegistry }

var defaultRegistry = func() *engine.Registry {
	r := engine.NewRegistry()
	r.Register(engine.KindDef{
		Kind:   KindDeadline,
		Doc:    "Section 3 fixed-deadline dynamic pricing policy (backward-induction MDP)",
		New:    func() engine.Spec { return new(DeadlineRequest) },
		Sample: sampleDeadline,
	})
	r.Register(engine.KindDef{
		Kind:   KindBudget,
		Doc:    "Section 4 fixed-budget static allocation (convex hull or exact DP)",
		New:    func() engine.Spec { return new(BudgetRequest) },
		Sample: sampleBudget,
	})
	r.Register(engine.KindDef{
		Kind:   KindTradeoff,
		Doc:    "Section 6 cost/latency trade-off stationary policy",
		New:    func() engine.Spec { return new(TradeoffRequest) },
		Sample: sampleTradeoff,
	})
	r.Register(engine.KindDef{
		Kind:   KindMulti,
		Doc:    "Section 6 multi-type extension at general k (joint price vectors)",
		New:    func() engine.Spec { return new(MultiRequest) },
		Sample: sampleMulti,
	})
	return r
}()
