package kinds

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestDefaultRegistryOrder pins the canonical kind order every generic
// surface (routes, metrics, bench mixes) iterates in.
func TestDefaultRegistryOrder(t *testing.T) {
	want := []string{KindDeadline, KindBudget, KindTradeoff, KindMulti}
	if got := Default().Kinds(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Default().Kinds() = %v, want %v", got, want)
	}
	for _, kind := range want {
		def, ok := Default().Lookup(kind)
		if !ok {
			t.Fatalf("kind %q not registered", kind)
		}
		if def.New == nil || def.Sample == nil {
			t.Errorf("kind %q missing New or Sample", kind)
		}
		if spec := def.New(); spec.Kind() != kind {
			t.Errorf("New() for %q returns a spec of kind %q", kind, spec.Kind())
		}
	}
}

// TestSamplersDeterministicValidAndWireStable: every sampler is a pure
// function of (seed, size), produces a valid spec at every size, and the
// spec survives a JSON round trip through the registry's New constructor
// with its fingerprint intact — the property that makes bench-generated
// bodies hit the same server-side cache entries run after run.
func TestSamplersDeterministicValidAndWireStable(t *testing.T) {
	for _, kind := range Default().Kinds() {
		def, _ := Default().Lookup(kind)
		for _, size := range []string{"small", "medium", "paper", "bogus"} {
			a := def.Sample(42, size)
			b := def.Sample(42, size)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: equal seeds produced different specs", kind, size)
			}
			if err := a.Validate(); err != nil {
				t.Errorf("%s/%s: sampled spec invalid: %v", kind, size, err)
				continue
			}
			fa, err := a.Fingerprint()
			if err != nil {
				t.Errorf("%s/%s: %v", kind, size, err)
				continue
			}
			fb, _ := b.Fingerprint()
			if fa != fb {
				t.Errorf("%s/%s: equal specs fingerprint differently", kind, size)
			}
			fc, err := def.Sample(43, size).Fingerprint()
			if err != nil {
				t.Errorf("%s/%s seed 43: %v", kind, size, err)
			} else if fc == fa {
				t.Errorf("%s/%s: different seeds collide on one fingerprint", kind, size)
			}

			wire, err := json.Marshal(a)
			if err != nil {
				t.Fatalf("%s/%s: marshal: %v", kind, size, err)
			}
			back := def.New()
			if err := json.Unmarshal(wire, back); err != nil {
				t.Fatalf("%s/%s: unmarshal: %v", kind, size, err)
			}
			fBack, err := back.Fingerprint()
			if err != nil {
				t.Fatalf("%s/%s: round-tripped spec: %v", kind, size, err)
			}
			if fBack != fa {
				t.Errorf("%s/%s: fingerprint changed across the wire: %s vs %s", kind, size, fBack, fa)
			}
		}
	}
}

// TestFingerprintVariantInKey: the solver variant prefixes the cache key,
// so hull and exact budget artifacts (which may legitimately differ) never
// share a cache slot, and unknown variants are validation errors.
func TestFingerprintVariantInKey(t *testing.T) {
	hull := sampleBudget(1, "small").(*BudgetRequest)
	exact := *hull
	exact.Method = BudgetMethodExact
	fh, err := hull.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fe, err := exact.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fh, "budget/hull:") || !strings.HasPrefix(fe, "budget/exact:") {
		t.Errorf("variant missing from keys %q / %q", fh, fe)
	}
	if strings.TrimPrefix(fh, "budget/hull:") != strings.TrimPrefix(fe, "budget/exact:") {
		t.Error("same problem should share its content hash across variants")
	}
	bad := *hull
	bad.Method = "magic"
	if err := bad.Validate(); err == nil {
		t.Error("unknown budget method validated")
	}
	if _, err := bad.Fingerprint(); err == nil {
		t.Error("unknown budget method fingerprinted")
	}

	badForm := sampleTradeoff(1, "small").(*TradeoffRequest)
	badForm.Formulation = "magic"
	if err := badForm.Validate(); err == nil {
		t.Error("unknown tradeoff formulation validated")
	}
}

// TestServiceLimits: oversized problems fail Validate and Fingerprint for
// every kind, so the engine rejects them before any solver work.
func TestServiceLimits(t *testing.T) {
	dl := sampleDeadline(1, "small").(*DeadlineRequest)
	dl.N = MaxTasks + 1
	if err := dl.Validate(); err == nil || !strings.Contains(err.Error(), "service limit") {
		t.Errorf("oversized deadline N validated: %v", err)
	}
	bu := sampleBudget(1, "small").(*BudgetRequest)
	bu.Budget = MaxBudget + 1
	if err := bu.Validate(); err == nil || !strings.Contains(err.Error(), "service limit") {
		t.Errorf("oversized budget validated: %v", err)
	}
	to := sampleTradeoff(1, "small").(*TradeoffRequest)
	to.MaxPrice = to.MinPrice + MaxPriceRange + 1
	if err := to.Validate(); err == nil || !strings.Contains(err.Error(), "service limit") {
		t.Errorf("oversized tradeoff price range validated: %v", err)
	}
	mu := sampleMulti(1, "small").(*MultiRequest)
	mu.Counts = []int{99, 99, 99}
	if err := mu.Validate(); err == nil || !strings.Contains(err.Error(), "service limit") {
		t.Errorf("oversized multi state space validated: %v", err)
	}
	mu2 := sampleMulti(1, "small").(*MultiRequest)
	mu2.Counts = []int{1, 1, 1, 1, 1}
	if err := mu2.Validate(); err == nil || !strings.Contains(err.Error(), "service limit") {
		t.Errorf("too many multi types validated: %v", err)
	}
}

// TestSolveSmallAllKinds runs every kind's solver once at the small scale:
// each produces a non-empty JSON artifact, deterministically (the bytes are
// the cache contract).
func TestSolveSmallAllKinds(t *testing.T) {
	for _, kind := range Default().Kinds() {
		def, _ := Default().Lookup(kind)
		spec := def.Sample(11, "small")
		raw, err := spec.Solve(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !json.Valid(raw) || len(raw) < 3 {
			t.Fatalf("%s: implausible artifact %.60q", kind, raw)
		}
		again, err := def.Sample(11, "small").Solve(context.Background())
		if err != nil {
			t.Fatalf("%s again: %v", kind, err)
		}
		if string(raw) != string(again) {
			t.Errorf("%s: repeated solve produced different bytes", kind)
		}
	}
}

// TestMultiSolveDecodes runs the joint DP end to end at the small scale and
// checks the wire artifact's invariants.
func TestMultiSolveDecodes(t *testing.T) {
	spec := sampleMulti(7, "small").(*MultiRequest)
	raw, err := spec.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sched MultiSchedule
	if err := json.Unmarshal(raw, &sched); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sched.Counts, spec.Counts) || sched.Intervals != spec.Intervals {
		t.Errorf("schedule shape %v/%d, want %v/%d", sched.Counts, sched.Intervals, spec.Counts, spec.Intervals)
	}
	if len(sched.Prices) != spec.Intervals {
		t.Fatalf("prices have %d interval rows, want %d", len(sched.Prices), spec.Intervals)
	}
	states := 1
	for _, n := range spec.Counts {
		states *= n + 1
	}
	for t0, row := range sched.Prices {
		if len(row) != states {
			t.Fatalf("interval %d has %d states, want %d", t0, len(row), states)
		}
		for s, vec := range row {
			if len(vec) != len(spec.Counts) {
				t.Fatalf("state %d price vector has %d entries, want %d", s, len(vec), len(spec.Counts))
			}
			for _, c := range vec {
				if c < spec.MinPrice || c > spec.MaxPrice {
					t.Fatalf("price %d outside [%d, %d]", c, spec.MinPrice, spec.MaxPrice)
				}
			}
		}
	}
	if sched.Value <= 0 {
		t.Errorf("expected objective %v not positive", sched.Value)
	}
	// Solving twice yields byte-identical artifacts (the cache contract).
	again, err := spec.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(again) {
		t.Error("repeated solve produced different bytes")
	}
}
