package kinds

import (
	"crowdpricing/internal/dist"
	"crowdpricing/internal/engine"
)

// Workload samplers: the per-kind problem generators behind
// engine.KindDef.Sample, used by internal/bench to materialize load without
// any per-kind generator code. Each sampler is a pure function of
// (seed, size) — equal inputs yield byte-identical specs across runs and
// platforms — and every generated problem is feasible for its solver.

// scale holds the per-size structural parameters shared by the single-type
// kinds. Larger sizes stress the solver; smaller sizes stress the
// HTTP/cache path.
type scale struct {
	n         int
	intervals int
	horizon   float64 // hours
	minPrice  int
	maxPrice  int
}

// scaleFor maps a bench size name to its parameters; unknown names fall
// back to the small scale.
func scaleFor(size string) scale {
	switch size {
	case "medium":
		return scale{n: 50, intervals: 24, horizon: 24, minPrice: 1, maxPrice: 40}
	case "paper":
		// The paper's experiments: N=200, 72 intervals — cold solves take
		// milliseconds, so the cache hit-rate dial dominates throughput.
		return scale{n: 200, intervals: 72, horizon: 72, minPrice: 1, maxPrice: 50}
	default: // small: solves well under a millisecond cold
		return scale{n: 16, intervals: 8, horizon: 4, minPrice: 1, maxPrice: 25}
	}
}

// multiScale holds the joint-DP sizes. The general-k solver enumerates
// price vectors per joint state, so these stay far smaller than the
// single-type scales while still spanning µs (small) to sub-second (paper)
// cold solves.
type multiScale struct {
	counts    []int
	intervals int
	minPrice  int
	maxPrice  int
}

func multiScaleFor(size string) multiScale {
	switch size {
	case "medium":
		return multiScale{counts: []int{6, 6}, intervals: 12, minPrice: 1, maxPrice: 8}
	case "paper":
		return multiScale{counts: []int{10, 10}, intervals: 24, minPrice: 1, maxPrice: 12}
	default: // small
		return multiScale{counts: []int{3, 3}, intervals: 6, minPrice: 1, maxPrice: 5}
	}
}

// accept draws a mildly jittered Equation-3 acceptance curve around the
// paper's fitted parameters (S=15, B=-0.39, M=2000). The logistic is
// strictly positive at every price, so every generated problem is feasible
// for every solver.
func accept(r *dist.RNG) LogisticParams {
	return LogisticParams{S: r.Uniform(10, 20), B: -0.39, M: 2000}
}

func sampleDeadline(seed int64, size string) engine.Spec {
	r := dist.NewRNG(seed)
	sc := scaleFor(size)
	lambdas := make([]float64, sc.intervals)
	// Expected arrivals ≈ 2N over the horizon: enough that completing all
	// tasks is plausible, so the DP explores the interesting price region.
	perInterval := 2 * float64(sc.n) / float64(sc.intervals)
	for t := range lambdas {
		lambdas[t] = perInterval * r.Uniform(0.8, 1.6)
	}
	return &DeadlineRequest{
		N:            sc.n,
		HorizonHours: sc.horizon,
		Intervals:    sc.intervals,
		Lambdas:      lambdas,
		Accept:       accept(r),
		MinPrice:     sc.minPrice,
		MaxPrice:     sc.maxPrice,
		Penalty:      4 * float64(sc.maxPrice),
		TruncEps:     1e-6,
	}
}

func sampleBudget(seed int64, size string) engine.Spec {
	r := dist.NewRNG(seed)
	sc := scaleFor(size)
	// Budget in [N·maxPrice, 2N·maxPrice]: always feasible (even pricing
	// every task at maxPrice fits), so the hull solver never rejects.
	return &BudgetRequest{
		N:        sc.n,
		Budget:   sc.n*sc.maxPrice + r.Intn(sc.n*sc.maxPrice+1),
		Accept:   accept(r),
		MinPrice: sc.minPrice,
		MaxPrice: sc.maxPrice,
		Method:   BudgetMethodHull,
	}
}

func sampleTradeoff(seed int64, size string) engine.Spec {
	r := dist.NewRNG(seed)
	sc := scaleFor(size)
	return &TradeoffRequest{
		N:           sc.n,
		Alpha:       r.Uniform(1, 10),
		Lambda:      r.Uniform(50, 200),
		Accept:      accept(r),
		MinPrice:    sc.minPrice,
		MaxPrice:    sc.maxPrice,
		Formulation: TradeoffWorkerArrival,
	}
}

func sampleMulti(seed int64, size string) engine.Spec {
	r := dist.NewRNG(seed)
	sc := multiScaleFor(size)
	total := 0
	for _, n := range sc.counts {
		total += n
	}
	lambdas := make([]float64, sc.intervals)
	perInterval := 2 * float64(total) / float64(sc.intervals)
	for t := range lambdas {
		lambdas[t] = perInterval * r.Uniform(0.8, 1.6)
	}
	accepts := make([]LogisticParams, len(sc.counts))
	for i := range accepts {
		accepts[i] = accept(r)
	}
	return &MultiRequest{
		Counts:    sc.counts,
		Intervals: sc.intervals,
		Lambdas:   lambdas,
		Accepts:   accepts,
		MinPrice:  sc.minPrice,
		MaxPrice:  sc.maxPrice,
		Penalty:   4 * float64(sc.maxPrice),
		TruncEps:  1e-6,
	}
}
