// Package analytics is the live analytics plane of the pricing daemon —
// the "A" side of the HTAP split PAPERS.md's Polynesia argues for: the
// transactional path (create/observe/quote under per-campaign mutexes)
// streams its lifecycle events into this aggregator, which folds them
// into the paper's rate-model estimators so /v1/analytics and /metrics
// answer "what is the fleet's arrival rate right now?" without touching
// a single campaign lock.
//
// The aggregator implements campaign.EventSink, so the same fold serves
// three feeds: live traffic (Manager.AttachSink), the recorded history
// of an event log at attach time, and offline replay in cmd/walstats
// (both via campaign.FoldWAL). The fold is deterministic by
// construction — plain accumulation in event-stream order, no clocks, no
// map-order dependence — so replaying a fixed-seed WAL twice yields
// bit-identical λ̂ fits, an acceptance gate tested here and in CI.
//
// Estimators, all per DP interval (the paper's time unit):
//
//   - λ̂ (lambda_hat): mean arrivals per observed interval over a
//     trailing window of the last W observes — the fleet's current rate,
//     re-fit as traffic drifts.
//   - λ̂ lifetime: the same mean over every observe since boot.
//   - interval means: per-interval-index mean arrivals across campaigns —
//     the piecewise arrival profile λ̂_t, which for Poisson interval
//     counts is exactly the MLE fit internal/nhpp.EstimatePiecewise
//     computes, exposed as a rate.Piecewise via Snapshot.Rate.
//
// Cohorts (kind, plus "/adaptive" for re-planning campaigns) carry
// completion and price summaries per traffic class.
package analytics

import (
	"sync"
	"sync/atomic"

	"crowdpricing/internal/rate"
)

// DefaultWindow is the trailing-window length (in observes) of the λ̂
// re-fit when the aggregator is built with window 0.
const DefaultWindow = 256

// maxProfileIntervals bounds the per-interval arrival profile; observes
// past this interval index still count toward λ̂ but not the profile.
const maxProfileIntervals = 1024

// Aggregator folds campaign lifecycle events into fleet-wide and
// per-cohort summaries. Build with New, attach with
// campaign.Manager.AttachSink (live) or feed through campaign.FoldWAL
// (recorded); safe for arbitrary concurrent use. Its mutex is a leaf:
// no sink method calls out of the package.
type Aggregator struct {
	mu     sync.Mutex
	window int

	// recent is the trailing-window ring of per-observe arrivals; next is
	// the insertion cursor and count the observes folded so far (the ring
	// holds min(count, window) entries).
	recent []float64
	next   int
	count  int64

	arrivals    float64
	completions int64

	// profileSum/profileObs accumulate arrivals by interval index — the
	// piecewise λ̂_t fit. profileClipped counts observes beyond the bound.
	profileSum     []float64
	profileObs     []int64
	profileClipped int64

	cohorts map[string]*cohortAgg

	// byKey is a copy-on-write index of cohorts for the quote hot path:
	// rebuilt under mu whenever a cohort is created, read with one atomic
	// load by CampaignQuoted so quotes never contend on mu (which would
	// serialize every quote and observe fleet-wide on a single lock).
	byKey atomic.Pointer[map[string]*cohortAgg]
}

type cohortAgg struct {
	campaigns   int64
	finished    int64
	expired     int64
	observes    int64
	arrivals    float64
	completions int64

	// quotes and priceSum are written with atomic adds off the aggregator
	// mutex — the quote hot path — and read with atomic loads in Snapshot.
	quotes   atomic.Int64
	priceSum atomic.Int64
}

// New builds an Aggregator with a trailing λ̂ window of window observes
// (<= 0 = DefaultWindow).
func New(window int) *Aggregator {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Aggregator{
		window:  window,
		recent:  make([]float64, window),
		cohorts: make(map[string]*cohortAgg),
	}
}

// CohortKey renders the cohort label for (kind, adaptive) — the value of
// the `cohort` metric label.
func CohortKey(kind string, adaptive bool) string {
	if adaptive {
		return kind + "/adaptive"
	}
	return kind
}

// cohort returns (creating on first sight) one cohort's accumulator.
// Callers hold a.mu.
func (a *Aggregator) cohort(kind string, adaptive bool) *cohortAgg {
	key := CohortKey(kind, adaptive)
	c, ok := a.cohorts[key]
	if !ok {
		c = &cohortAgg{}
		a.cohorts[key] = c
		read := make(map[string]*cohortAgg, len(a.cohorts))
		for k, v := range a.cohorts {
			read[k] = v
		}
		a.byKey.Store(&read)
	}
	return c
}

// CampaignCreated implements campaign.EventSink.
func (a *Aggregator) CampaignCreated(kind string, adaptive bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cohort(kind, adaptive).campaigns++
}

// CampaignObserved implements campaign.EventSink: one observed interval's
// arrivals fold into the trailing window, the lifetime totals, the
// interval profile, and the cohort.
func (a *Aggregator) CampaignObserved(kind string, adaptive bool, arrivals float64, completed int, interval int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.recent[a.next] = arrivals
	a.next = (a.next + 1) % a.window
	a.count++
	a.arrivals += arrivals
	a.completions += int64(completed)
	if interval >= 0 && interval < maxProfileIntervals {
		for len(a.profileSum) <= interval {
			a.profileSum = append(a.profileSum, 0)
			a.profileObs = append(a.profileObs, 0)
		}
		a.profileSum[interval] += arrivals
		a.profileObs[interval]++
	} else {
		a.profileClipped++
	}
	c := a.cohort(kind, adaptive)
	c.observes++
	c.arrivals += arrivals
	c.completions += int64(completed)
}

// CampaignQuoted implements campaign.EventSink. It is on the quote hot
// path: after a cohort's first quote it is two atomic adds against the
// copy-on-write index — no lock, no allocation — so quotes across all
// campaigns never serialize on the aggregator mutex. Only a cohort's
// very first quote (before any create/observe registered it) takes mu.
func (a *Aggregator) CampaignQuoted(kind string, adaptive bool, price int) {
	var c *cohortAgg
	if m := a.byKey.Load(); m != nil {
		c = (*m)[CohortKey(kind, adaptive)]
	}
	if c == nil {
		a.mu.Lock()
		c = a.cohort(kind, adaptive)
		a.mu.Unlock()
	}
	c.quotes.Add(1)
	c.priceSum.Add(int64(price))
}

// CampaignFinished implements campaign.EventSink.
func (a *Aggregator) CampaignFinished(kind string, adaptive bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cohort(kind, adaptive).finished++
}

// CampaignExpired implements campaign.EventSink.
func (a *Aggregator) CampaignExpired(kind string, adaptive bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cohort(kind, adaptive).expired++
}

// Snapshot renders the current fold. Deterministic for a deterministic
// event stream: window sums run oldest-to-newest, cohort maps marshal in
// sorted key order, and nothing reads a clock.
func (a *Aggregator) Snapshot() *Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := &Snapshot{
		Window:         a.window,
		Observes:       a.count,
		Arrivals:       a.arrivals,
		Completions:    a.completions,
		ProfileClipped: a.profileClipped,
		Cohorts:        make(map[string]CohortSnapshot, len(a.cohorts)),
	}
	// Trailing-window λ̂: mean of the last min(count, window) arrivals,
	// summed in insertion order so the float fold is reproducible.
	n := a.count
	if n > int64(a.window) {
		n = int64(a.window)
	}
	if n > 0 {
		start := (a.next - int(n) + a.window) % a.window
		var sum float64
		for i := 0; i < int(n); i++ {
			sum += a.recent[(start+i)%a.window]
		}
		s.WindowObserves = n
		s.LambdaHat = sum / float64(n)
	}
	if a.count > 0 {
		s.LambdaHatLifetime = a.arrivals / float64(a.count)
	}
	if len(a.profileSum) > 0 {
		s.IntervalMeans = make([]float64, len(a.profileSum))
		s.IntervalObserves = append([]int64(nil), a.profileObs...)
		for i, sum := range a.profileSum {
			if a.profileObs[i] > 0 {
				s.IntervalMeans[i] = sum / float64(a.profileObs[i])
			}
		}
	}
	for key, c := range a.cohorts {
		cs := CohortSnapshot{
			Campaigns:   c.campaigns,
			Finished:    c.finished,
			Expired:     c.expired,
			Observes:    c.observes,
			Arrivals:    c.arrivals,
			Completions: c.completions,
			Quotes:      c.quotes.Load(),
			PriceSum:    c.priceSum.Load(),
		}
		if c.observes > 0 {
			cs.LambdaHat = c.arrivals / float64(c.observes)
		}
		if cs.Quotes > 0 {
			cs.MeanPrice = float64(cs.PriceSum) / float64(cs.Quotes)
		}
		s.Cohorts[key] = cs
	}
	return s
}

// Snapshot is the wire-facing analytics view served on /v1/analytics and
// printed by cmd/walstats.
type Snapshot struct {
	// LambdaHat is the trailing-window mean arrivals per interval —
	// the fleet's current rate estimate; WindowObserves is how many
	// observes it averaged (at most Window).
	LambdaHat      float64 `json:"lambda_hat"`
	WindowObserves int64   `json:"window_observes"`
	Window         int     `json:"window"`
	// LambdaHatLifetime is the same mean over every observe folded.
	LambdaHatLifetime float64 `json:"lambda_hat_lifetime"`
	// Observes, Arrivals, and Completions are fleet lifetime totals.
	Observes    int64   `json:"observes"`
	Arrivals    float64 `json:"observed_arrivals"`
	Completions int64   `json:"completions"`
	// IntervalMeans is the per-interval-index mean-arrival profile λ̂_t
	// (the piecewise MLE fit); IntervalObserves the per-index sample
	// counts behind it. ProfileClipped counts observes whose interval
	// index fell outside the profile bound.
	IntervalMeans    []float64 `json:"interval_means,omitempty"`
	IntervalObserves []int64   `json:"interval_observes,omitempty"`
	ProfileClipped   int64     `json:"profile_clipped,omitempty"`
	// Cohorts maps cohort keys (kind, plus "/adaptive" for re-planning
	// campaigns) to their summaries.
	Cohorts map[string]CohortSnapshot `json:"cohorts,omitempty"`
}

// CohortSnapshot is one traffic class's summary.
type CohortSnapshot struct {
	Campaigns   int64   `json:"campaigns"`
	Finished    int64   `json:"finished"`
	Expired     int64   `json:"expired,omitempty"`
	Observes    int64   `json:"observes"`
	Arrivals    float64 `json:"observed_arrivals"`
	Completions int64   `json:"completions"`
	// LambdaHat is the cohort's lifetime mean arrivals per interval.
	LambdaHat float64 `json:"lambda_hat,omitempty"`
	Quotes    int64   `json:"quotes"`
	PriceSum  int64   `json:"price_sum,omitempty"`
	MeanPrice float64 `json:"mean_price,omitempty"`
}

// Rate returns the fitted piecewise arrival-rate function (unit interval
// width), or nil before any interval-indexed observe — the bridge from
// recorded traffic back into internal/rate, where the paper's NHPP
// machinery (thinning, integrals, figure pipelines) can consume it.
func (s *Snapshot) Rate() *rate.Piecewise {
	if len(s.IntervalMeans) == 0 {
		return nil
	}
	return rate.NewPiecewise(1, s.IntervalMeans)
}
