package analytics_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"

	"crowdpricing/internal/analytics"
	"crowdpricing/internal/campaign"
	"crowdpricing/internal/dist"
	"crowdpricing/internal/engine"
	"crowdpricing/internal/kinds"
	"crowdpricing/internal/wal"
)

func TestWindowMeanWraps(t *testing.T) {
	a := analytics.New(2)
	for _, arrivals := range []float64{1, 2, 3} {
		a.CampaignObserved("deadline", false, arrivals, 0, 0)
	}
	s := a.Snapshot()
	if s.WindowObserves != 2 {
		t.Fatalf("window observes = %d, want 2", s.WindowObserves)
	}
	if s.LambdaHat != 2.5 {
		t.Fatalf("trailing λ̂ = %v, want 2.5 (last two observes)", s.LambdaHat)
	}
	if s.LambdaHatLifetime != 2 {
		t.Fatalf("lifetime λ̂ = %v, want 2", s.LambdaHatLifetime)
	}
}

func TestCohortKeysAndProfile(t *testing.T) {
	a := analytics.New(4)
	a.CampaignCreated("deadline", false)
	a.CampaignCreated("deadline", true)
	a.CampaignObserved("deadline", false, 4, 2, 0)
	a.CampaignObserved("deadline", true, 8, 1, 0)
	a.CampaignObserved("deadline", true, 2, 0, 1)
	a.CampaignQuoted("deadline", true, 30)
	a.CampaignQuoted("deadline", true, 10)
	a.CampaignFinished("deadline", false)
	a.CampaignExpired("deadline", true)
	a.CampaignObserved("deadline", false, 5, 0, -1) // interval unknown: clipped from the profile

	s := a.Snapshot()
	if got := analytics.CohortKey("deadline", true); got != "deadline/adaptive" {
		t.Fatalf("CohortKey adaptive = %q", got)
	}
	plain, ok := s.Cohorts["deadline"]
	if !ok {
		t.Fatalf("missing plain cohort; have %v", s.Cohorts)
	}
	adaptive, ok := s.Cohorts["deadline/adaptive"]
	if !ok {
		t.Fatalf("missing adaptive cohort; have %v", s.Cohorts)
	}
	if plain.Campaigns != 1 || plain.Finished != 1 || plain.Observes != 2 || plain.Arrivals != 9 || plain.Completions != 2 {
		t.Fatalf("plain cohort = %+v", plain)
	}
	if adaptive.Observes != 2 || adaptive.Arrivals != 10 || adaptive.LambdaHat != 5 {
		t.Fatalf("adaptive cohort = %+v", adaptive)
	}
	if adaptive.Quotes != 2 || adaptive.MeanPrice != 20 {
		t.Fatalf("adaptive quote summary = %+v", adaptive)
	}
	if adaptive.Expired != 1 {
		t.Fatalf("adaptive expired = %d, want 1", adaptive.Expired)
	}
	// Profile: interval 0 saw arrivals 4 and 8, interval 1 saw 2; the
	// unknown-interval observe counts toward λ̂ but not the profile.
	wantMeans := []float64{6, 2}
	if len(s.IntervalMeans) != len(wantMeans) {
		t.Fatalf("interval means = %v, want %v", s.IntervalMeans, wantMeans)
	}
	for i, want := range wantMeans {
		if s.IntervalMeans[i] != want {
			t.Fatalf("interval means = %v, want %v", s.IntervalMeans, wantMeans)
		}
	}
	if s.ProfileClipped != 1 {
		t.Fatalf("profile clipped = %d, want 1", s.ProfileClipped)
	}
	r := s.Rate()
	if r == nil {
		t.Fatal("Rate() = nil with a non-empty profile")
	}
	if r.Rate(0.5) != 6 || r.Rate(1.5) != 2 {
		t.Fatalf("fitted rate = %v/%v, want 6/2", r.Rate(0.5), r.Rate(1.5))
	}
}

// foldWAL replays the recorded log at dir into a fresh aggregator.
func foldWAL(t *testing.T, fsys wal.FS, dir string, window int) *analytics.Aggregator {
	t.Helper()
	agg := analytics.New(window)
	if err := campaign.FoldWAL(wal.NewReader(fsys, dir), agg); err != nil {
		t.Fatalf("FoldWAL: %v", err)
	}
	return agg
}

// TestFoldDeterministicAndMatchesLive is the analytics half of the
// acceptance gate: drive a fixed-seed Poisson workload through a real
// Manager with both a live sink and a WAL attached, then check that
// (1) two offline folds of the recorded log are bit-identical,
// (2) the offline fold agrees exactly with the live fold, and
// (3) λ̂ lands within tolerance of the generating rate.
func TestFoldDeterministicAndMatchesLive(t *testing.T) {
	const (
		dir       = "analytics-wal"
		lambda    = 6.0
		campaigns = 6
		intervals = 4
		window    = 8 // smaller than total observes: exercises the ring wrap
	)
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	m := campaign.NewManager(eng, nil, campaign.Options{})
	t.Cleanup(m.Close)

	fsys := wal.NewMemFS()
	l, err := m.OpenWAL(dir, wal.Options{FS: fsys})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	m.AttachWAL(l)
	live := analytics.New(window)
	m.AttachSink(live)

	def, ok := kinds.Default().Lookup(kinds.KindDeadline)
	if !ok {
		t.Fatal("deadline kind not registered")
	}
	rng := dist.NewRNG(7)
	pois := dist.Poisson{Lambda: lambda}
	ctx := context.Background()
	var ids []string
	for i := 0; i < campaigns; i++ {
		body, err := json.Marshal(def.Sample(int64(i), "small"))
		if err != nil {
			t.Fatal(err)
		}
		var adaptive *campaign.AdaptiveOptions
		if i%3 == 0 {
			adaptive = &campaign.AdaptiveOptions{}
		}
		st, err := m.Create(ctx, kinds.KindDeadline, body, adaptive)
		if err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
		ids = append(ids, st.ID)
		for interval := 0; interval < intervals; interval++ {
			completed := make([]int, len(st.Remaining))
			if interval == 0 && st.Remaining[0] > 0 {
				completed[0] = 1
			}
			if _, err := m.Observe(st.ID, float64(pois.Sample(rng)), completed); err != nil {
				t.Fatalf("Observe %d/%d: %v", i, interval, err)
			}
		}
		if _, err := m.Quote(st.ID); err != nil {
			t.Fatalf("Quote %d: %v", i, err)
		}
	}
	for _, id := range ids[:2] {
		if _, err := m.Finish(id); err != nil {
			t.Fatalf("Finish %s: %v", id, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	m.AttachWAL(nil)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	fold1 := foldWAL(t, fsys, dir, window).Snapshot()
	fold2 := foldWAL(t, fsys, dir, window).Snapshot()
	j1, err := json.Marshal(fold1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(fold2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("two folds of the same log differ:\n%s\n%s", j1, j2)
	}

	// The live sink saw the same observe stream in the same order, so the
	// float folds must agree exactly — not approximately.
	ls := live.Snapshot()
	if fold1.LambdaHat != ls.LambdaHat || fold1.LambdaHatLifetime != ls.LambdaHatLifetime {
		t.Fatalf("fold λ̂ (%v, %v) != live λ̂ (%v, %v)",
			fold1.LambdaHat, fold1.LambdaHatLifetime, ls.LambdaHat, ls.LambdaHatLifetime)
	}
	if fold1.Observes != ls.Observes || fold1.Arrivals != ls.Arrivals || fold1.Completions != ls.Completions {
		t.Fatalf("fold totals (%d, %v, %d) != live totals (%d, %v, %d)",
			fold1.Observes, fold1.Arrivals, fold1.Completions, ls.Observes, ls.Arrivals, ls.Completions)
	}
	for key, lc := range ls.Cohorts {
		fc, ok := fold1.Cohorts[key]
		if !ok {
			t.Fatalf("fold missing cohort %q", key)
		}
		if fc.Campaigns != lc.Campaigns || fc.Finished != lc.Finished ||
			fc.Observes != lc.Observes || fc.Arrivals != lc.Arrivals || fc.Completions != lc.Completions {
			t.Fatalf("cohort %q: fold %+v != live %+v", key, fc, lc)
		}
	}
	// Quotes are deliberately never logged: the live fold saw them, the
	// offline fold must report none.
	if lc := ls.Cohorts["deadline"]; lc.Quotes == 0 {
		t.Fatal("live fold recorded no quotes")
	}
	if fc := fold1.Cohorts["deadline"]; fc.Quotes != 0 {
		t.Fatalf("offline fold reports %d quotes; quotes are not in the WAL", fc.Quotes)
	}

	// λ̂ versus the generating rate: 24 Poisson(6) draws have standard
	// error √(6/24) ≈ 0.5, so a ±1.5 band is ~3σ — and the seed is fixed,
	// so this is a regression pin, not a flaky statistical test.
	if fold1.Observes != campaigns*intervals {
		t.Fatalf("observes = %d, want %d", fold1.Observes, campaigns*intervals)
	}
	if math.Abs(fold1.LambdaHatLifetime-lambda) > 1.5 {
		t.Fatalf("lifetime λ̂ = %v, generating λ = %v", fold1.LambdaHatLifetime, lambda)
	}
	if len(fold1.IntervalMeans) != intervals {
		t.Fatalf("interval profile has %d buckets, want %d", len(fold1.IntervalMeans), intervals)
	}
}

// TestQuotesConcurrentWithFold exercises the lock-free quote path: quotes
// run against the copy-on-write cohort index with atomic adds while
// observes (which do hold the aggregator mutex) and snapshots proceed
// concurrently. Run under -race; final totals must be exact.
func TestQuotesConcurrentWithFold(t *testing.T) {
	a := analytics.New(0)
	const (
		workers = 8
		each    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				// Half the cohorts are first seen by a quote, so both the
				// fast path and the create-under-mutex path are hit.
				a.CampaignQuoted("deadline", w%2 == 0, 3)
				a.CampaignObserved("deadline", false, 1, 0, 0)
				_ = a.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	s := a.Snapshot()
	var quotes, priceSum int64
	for _, c := range s.Cohorts {
		quotes += c.Quotes
		priceSum += c.PriceSum
	}
	if want := int64(workers * each); quotes != want || priceSum != 3*want {
		t.Fatalf("quotes=%d priceSum=%d, want %d and %d", quotes, priceSum, want, 3*want)
	}
	if s.Observes != int64(workers*each) {
		t.Fatalf("observes=%d, want %d", s.Observes, workers*each)
	}
}

// TestQuoteSinkAllocationFree fences the hot-path contract of
// CampaignQuoted: once a cohort exists in the copy-on-write index, a
// quote is two atomic adds — zero heap allocations and no mutex.
func TestQuoteSinkAllocationFree(t *testing.T) {
	a := analytics.New(0)
	a.CampaignQuoted("deadline", false, 5)
	allocs := testing.AllocsPerRun(200, func() {
		a.CampaignQuoted("deadline", false, 5)
	})
	if allocs != 0 {
		t.Fatalf("CampaignQuoted allocates %v per op on the fast path, want 0", allocs)
	}
}
