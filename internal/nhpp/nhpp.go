// Package nhpp implements the non-homogeneous Poisson process (NHPP) worker
// arrival model of Section 2.1: event simulation by thinning, counting over
// intervals via Equation (1), Bernoulli thinning into a task completion
// process (the "Thinned NHPP"), and estimation of a piecewise-constant λ(t)
// from historical bucket counts the way the experiments bind mturk-tracker
// data.
package nhpp

import (
	"math"
	"sort"

	"crowdpricing/internal/dist"
	"crowdpricing/internal/rate"
)

// Process is a non-homogeneous Poisson process with arrival-rate function
// Lambda (workers per hour).
type Process struct {
	Lambda rate.Fn
}

// New returns an NHPP with the given rate function.
func New(fn rate.Fn) *Process { return &Process{Lambda: fn} }

// Count samples N[s, u], the number of events in [s, u], which by
// Equation (1) is Poisson with mean Λ(s, u).
func (p *Process) Count(r *dist.RNG, s, u float64) int {
	return dist.Poisson{Lambda: p.Lambda.Integral(s, u)}.Sample(r)
}

// ExpectedCount returns Λ(s, u) = E[N[s, u]].
func (p *Process) ExpectedCount(s, u float64) float64 {
	return p.Lambda.Integral(s, u)
}

// Events simulates the arrival times in [s, u) by Lewis–Shedler thinning
// against the supremum of λ over the span. The returned times are sorted.
// maxRate must dominate λ(t) on [s, u); if maxRate is zero, a dominating
// bound is probed from the rate function on a fine grid.
func (p *Process) Events(r *dist.RNG, s, u, maxRate float64) []float64 {
	if u <= s {
		return nil
	}
	if maxRate <= 0 {
		maxRate = probeMax(p.Lambda, s, u)
	}
	if maxRate == 0 {
		return nil
	}
	var times []float64
	t := s
	for {
		t += dist.Exponential{Rate: maxRate}.Sample(r)
		if t >= u {
			break
		}
		lam := p.Lambda.Rate(t)
		if lam > maxRate {
			// The dominating bound was violated; grow it and keep the draw
			// unconditionally (conservative, keeps the sampler total).
			maxRate = lam
			times = append(times, t)
			continue
		}
		if r.Float64()*maxRate < lam {
			times = append(times, t)
		}
	}
	return times
}

// Thin returns the thinned process with rate λ(t)·p, the task completion
// process of Section 2.1. It panics if p is outside [0, 1].
func (p *Process) Thin(accept float64) *Process {
	if accept < 0 || accept > 1 {
		panic("nhpp: acceptance probability outside [0,1]")
	}
	return &Process{Lambda: rate.Scaled{Base: p.Lambda, Factor: accept}}
}

// FirstPassage samples the time at which the w-th event occurs, i.e. the
// total elapsed time T given worker-arrival quantity W = w (Section 4.2.2).
// It returns +Inf if the event never occurs within horizon.
func (p *Process) FirstPassage(r *dist.RNG, w int, horizon float64) float64 {
	if w <= 0 {
		return 0
	}
	// Walk in small steps sampling counts; fine-grained enough for the
	// experiment horizons (days) while staying cheap.
	const step = 1.0 / 60 // one minute
	count := 0
	for t := 0.0; t < horizon; t += step {
		count += p.Count(r, t, t+step)
		if count >= w {
			return t + step
		}
	}
	return math.Inf(1)
}

func probeMax(fn rate.Fn, s, u float64) float64 {
	const grid = 4096
	maxRate := 0.0
	for i := 0; i <= grid; i++ {
		t := s + (u-s)*float64(i)/grid
		if v := fn.Rate(t); v > maxRate {
			maxRate = v
		}
	}
	return maxRate * 1.05 // headroom for values between grid points
}

// EstimatePiecewise fits a piecewise-constant λ(t) from event counts per
// bucket: the MLE for a constant-rate bucket of width w with k events is
// k/w. This mirrors how the paper's experiments turn mturk-tracker 20-minute
// completion counts into an arrival-rate function.
func EstimatePiecewise(counts []int, width float64) *rate.Piecewise {
	rates := make([]float64, len(counts))
	for i, k := range counts {
		rates[i] = float64(k) / width
	}
	return rate.NewPiecewise(width, rates)
}

// EstimatePeriodic fits a periodic piecewise-constant λ(t) by averaging
// bucket counts across repetitions of the period. counts must cover an
// integer number of periods; bucketsPerPeriod buckets of the given width
// make up one period. The experiments use this to average the "other three
// days" into a training day (Section 5.2.5).
func EstimatePeriodic(counts []int, width float64, bucketsPerPeriod int) *rate.Periodic {
	if bucketsPerPeriod <= 0 || len(counts)%bucketsPerPeriod != 0 {
		panic("nhpp: counts must cover whole periods")
	}
	reps := len(counts) / bucketsPerPeriod
	rates := make([]float64, bucketsPerPeriod)
	for i := 0; i < bucketsPerPeriod; i++ {
		sum := 0
		for rIdx := 0; rIdx < reps; rIdx++ {
			sum += counts[rIdx*bucketsPerPeriod+i]
		}
		rates[i] = float64(sum) / float64(reps) / width
	}
	base := rate.NewPiecewise(width, rates)
	return rate.NewPeriodic(base, width*float64(bucketsPerPeriod))
}

// CountsFromEvents buckets sorted event times into n buckets of the given
// width starting at 0. Events beyond the covered range are dropped.
func CountsFromEvents(events []float64, width float64, n int) []int {
	counts := make([]int, n)
	if !sort.Float64sAreSorted(events) {
		cp := make([]float64, len(events))
		copy(cp, events)
		sort.Float64s(cp)
		events = cp
	}
	for _, t := range events {
		i := int(math.Floor(t / width))
		if i >= 0 && i < n {
			counts[i]++
		}
	}
	return counts
}

// AverageRate returns λ̄, the long-run average arrival rate over the horizon
// used by the linearity argument E[T|W] ≈ W/λ̄ of Section 4.2.2.
func AverageRate(fn rate.Fn, horizon float64) float64 {
	return rate.Average(fn, 0, horizon)
}
