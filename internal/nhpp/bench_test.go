package nhpp

import (
	"testing"

	"crowdpricing/internal/dist"
	"crowdpricing/internal/rate"
)

func BenchmarkCount(b *testing.B) {
	p := New(rate.NewPiecewise(1.0/3, make24hRates()))
	r := dist.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Count(r, 0, 24)
	}
}

func BenchmarkEventsDayTrace(b *testing.B) {
	p := New(rate.NewLinear([]float64{0, 12, 24}, []float64{100, 300, 100}))
	r := dist.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Events(r, 0, 24, 0)
	}
}

func make24hRates() []float64 {
	out := make([]float64, 72)
	for i := range out {
		out[i] = 5200
	}
	return out
}
