package nhpp

import (
	"math"
	"testing"

	"crowdpricing/internal/dist"
	"crowdpricing/internal/rate"
)

func TestCountMeanMatchesIntegral(t *testing.T) {
	p := New(rate.NewPiecewise(1, []float64{50, 150, 100}))
	r := dist.NewRNG(1)
	const trials = 20_000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(p.Count(r, 0, 3))
	}
	mean := sum / trials
	want := 300.0
	if math.Abs(mean-want) > 1 {
		t.Errorf("E[N[0,3]] ≈ %v, want %v", mean, want)
	}
}

func TestEventsMatchExpectedCount(t *testing.T) {
	// Sinusoid-ish piecewise-linear day profile.
	fn := rate.NewLinear([]float64{0, 6, 12, 18, 24}, []float64{20, 100, 180, 100, 20})
	p := New(fn)
	r := dist.NewRNG(2)
	const trials = 300
	total := 0
	for i := 0; i < trials; i++ {
		total += len(p.Events(r, 0, 24, 0))
	}
	mean := float64(total) / trials
	want := fn.Integral(0, 24)
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("mean event count %v, want %v", mean, want)
	}
}

func TestEventsRespectRateShape(t *testing.T) {
	// Rate 0 in the first half, high in the second: all events land late.
	fn := rate.NewPiecewise(1, []float64{0, 200})
	p := New(fn)
	r := dist.NewRNG(3)
	events := p.Events(r, 0, 2, 0)
	if len(events) == 0 {
		t.Fatal("no events sampled")
	}
	for _, e := range events {
		if e < 1 {
			t.Errorf("event at %v inside zero-rate region", e)
		}
	}
}

func TestEventsSorted(t *testing.T) {
	p := New(rate.Constant(100))
	r := dist.NewRNG(4)
	events := p.Events(r, 0, 5, 0)
	for i := 1; i < len(events); i++ {
		if events[i] < events[i-1] {
			t.Fatal("events not sorted")
		}
	}
}

func TestThinScalesRate(t *testing.T) {
	p := New(rate.Constant(1000))
	thin := p.Thin(0.25)
	if got := thin.ExpectedCount(0, 4); math.Abs(got-1000) > 1e-9 {
		t.Errorf("thinned expected count = %v, want 1000", got)
	}
	assertPanics(t, func() { p.Thin(-0.1) })
	assertPanics(t, func() { p.Thin(1.1) })
}

// TestThinningComposition checks the Thinned-NHPP claim of Section 2.1: the
// composition of an NHPP and a Bernoulli(p) filter has the same distribution
// as an NHPP with rate λ(t)p.
func TestThinningComposition(t *testing.T) {
	base := rate.NewPiecewise(1, []float64{400, 100})
	p := New(base)
	accept := 0.3
	r := dist.NewRNG(5)
	const trials = 4000
	sumFiltered, sumDirect := 0.0, 0.0
	for i := 0; i < trials; i++ {
		// Composition: sample arrivals, thin each independently.
		x := p.Count(r, 0, 2)
		sumFiltered += float64(dist.Binomial{N: x, P: accept}.Sample(r))
		// Direct thinned process.
		sumDirect += float64(p.Thin(accept).Count(r, 0, 2))
	}
	mf, md := sumFiltered/trials, sumDirect/trials
	want := 500 * accept
	if math.Abs(mf-want) > 0.05*want {
		t.Errorf("composed mean %v, want %v", mf, want)
	}
	if math.Abs(md-want) > 0.05*want {
		t.Errorf("direct mean %v, want %v", md, want)
	}
}

// TestFirstPassageLinearity validates the Section 4.2.2 approximation
// E[T|W] ≈ W/λ̄ for a stable periodic rate.
func TestFirstPassageLinearity(t *testing.T) {
	// A short period keeps W/λ̄ accurate even for small W; the paper's
	// justification assumes λ(t) is "relatively stable over a long period".
	fn := rate.NewPeriodic(rate.NewPiecewise(0.25, []float64{80, 120}), 0.5)
	p := New(fn)
	lambdaBar := AverageRate(fn, 0.5)
	r := dist.NewRNG(6)
	for _, w := range []int{50, 200, 800} {
		const trials = 60
		sum := 0.0
		for i := 0; i < trials; i++ {
			tt := p.FirstPassage(r, w, 1000)
			if math.IsInf(tt, 1) {
				t.Fatalf("first passage for w=%d never happened", w)
			}
			sum += tt
		}
		got := sum / trials
		want := float64(w) / lambdaBar
		if math.Abs(got-want) > 0.15*want+0.1 {
			t.Errorf("w=%d: E[T|W] ≈ %v, want ≈ %v", w, got, want)
		}
	}
}

func TestEstimatePiecewiseMLE(t *testing.T) {
	counts := []int{30, 60, 90}
	est := EstimatePiecewise(counts, 0.5)
	want := []float64{60, 120, 180}
	for i, w := range want {
		if got := est.Rates[i]; got != w {
			t.Errorf("rate[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestEstimatePeriodicAverages(t *testing.T) {
	// Two periods of three buckets.
	counts := []int{10, 20, 30, 14, 24, 34}
	est := EstimatePeriodic(counts, 1, 3)
	want := []float64{12, 22, 32}
	for i, w := range want {
		if got := est.Rate(float64(i) + 0.5); got != w {
			t.Errorf("rate at bucket %d = %v, want %v", i, got, w)
		}
		// Second period wraps.
		if got := est.Rate(float64(i) + 3.5); got != w {
			t.Errorf("wrapped rate at bucket %d = %v, want %v", i, got, w)
		}
	}
	assertPanics(t, func() { EstimatePeriodic([]int{1, 2, 3, 4}, 1, 3) })
}

func TestEstimateRecoversRate(t *testing.T) {
	// Simulate from a known rate, re-estimate, compare integrals.
	truth := rate.NewPiecewise(1.0/3, repeat([]float64{300, 900, 600}, 24))
	p := New(truth)
	r := dist.NewRNG(7)
	nBuckets := len(truth.Rates)
	counts := make([]int, nBuckets)
	for rep := 0; rep < 50; rep++ {
		for i := range counts {
			s := float64(i) / 3
			counts[i] += p.Count(r, s, s+1.0/3)
		}
	}
	rates := make([]float64, nBuckets)
	for i, k := range counts {
		rates[i] = float64(k) / 50 / (1.0 / 3)
	}
	for i := range rates {
		if math.Abs(rates[i]-truth.Rates[i]) > 0.15*truth.Rates[i] {
			t.Errorf("bucket %d: estimated %v, truth %v", i, rates[i], truth.Rates[i])
		}
	}
}

func TestCountsFromEvents(t *testing.T) {
	events := []float64{0.1, 0.2, 1.5, 2.9, 3.5, -1, 99}
	counts := CountsFromEvents(events, 1, 3)
	want := []int{2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], want[i])
		}
	}
	// Unsorted input is handled.
	counts2 := CountsFromEvents([]float64{2.9, 0.1, 1.5, 0.2}, 1, 3)
	for i := range want {
		if counts2[i] != want[i] {
			t.Errorf("unsorted: bucket %d = %d, want %d", i, counts2[i], want[i])
		}
	}
}

func repeat(vals []float64, times int) []float64 {
	out := make([]float64, 0, len(vals)*times)
	for i := 0; i < times; i++ {
		out = append(out, vals...)
	}
	return out
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
