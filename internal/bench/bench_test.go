package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crowdpricing/internal/server"
)

func smallConfig() Config {
	return Config{
		Seed:        1,
		Rate:        150,
		Duration:    400 * time.Millisecond,
		Warmup:      100 * time.Millisecond,
		Cardinality: 3,
		Size:        SizeSmall,
	}
}

func TestGenerateScheduleDeterministic(t *testing.T) {
	a, err := GenerateSchedule(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSchedule(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("same config, different schedule hashes: %s vs %s", a.Hash, b.Hash)
	}
	if !reflect.DeepEqual(a.Requests, b.Requests) {
		t.Fatal("same config produced different request slices")
	}
	if len(a.Requests) == 0 {
		t.Fatal("empty schedule for a 0.5s window at 150 rps")
	}

	other := smallConfig()
	other.Seed = 2
	c, err := GenerateSchedule(other)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash == a.Hash {
		t.Fatal("different seeds produced identical schedules")
	}

	// Size changes only the problem bodies, never an arrival tuple — the
	// hash must still differ, or A/B compares would silently diff runs of
	// different workloads.
	sized := smallConfig()
	sized.Size = SizePaper
	d, err := GenerateSchedule(sized)
	if err != nil {
		t.Fatal(err)
	}
	if d.Hash == a.Hash {
		t.Fatal("different problem sizes produced identical schedule hashes")
	}
}

// TestScheduleShapeAndBodies checks structural invariants: sorted arrival
// times inside the window, problem ids within cardinality, bodies shared by
// id, and all three kinds present under the default mix.
func TestScheduleShapeAndBodies(t *testing.T) {
	cfg := smallConfig()
	cfg.Shape = ShapeDiurnal
	cfg.Rate = 400
	// Every registered kind in the mix, including multi — the registry is
	// the only per-kind source the generator has.
	cfg.Mix = Mix{KindDeadline: 4, KindBudget: 3, KindTradeoff: 2, KindMulti: 1}
	sched, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := cfg.Warmup + cfg.Duration
	seen := map[string]map[int]any{}
	kinds := map[string]int{}
	var prev time.Duration
	for i, q := range sched.Requests {
		if q.At < prev {
			t.Fatalf("request %d at %v precedes request %d at %v", i, q.At, i-1, prev)
		}
		prev = q.At
		if q.At < 0 || q.At >= window {
			t.Fatalf("request %d scheduled at %v, outside [0, %v)", i, q.At, window)
		}
		if q.ProblemID < 0 || q.ProblemID >= cfg.Cardinality {
			t.Fatalf("request %d has problem id %d, cardinality %d", i, q.ProblemID, cfg.Cardinality)
		}
		kinds[q.Kind]++
		if kindByte(q.Kind) == 0xff {
			t.Fatalf("request %d has unknown kind %q", i, q.Kind)
		}
		if q.Spec == nil {
			t.Fatalf("request %d (%s) has no body", i, q.Kind)
		}
		if q.Spec.Kind() != q.Kind {
			t.Fatalf("request %d kind %q carries a %q spec", i, q.Kind, q.Spec.Kind())
		}
		if err := q.Spec.Validate(); err != nil {
			t.Fatalf("request %d (%s) body invalid: %v", i, q.Kind, err)
		}
		if seen[q.Kind] == nil {
			seen[q.Kind] = map[int]any{}
		}
		if prior, ok := seen[q.Kind][q.ProblemID]; ok && prior != q.Spec {
			t.Fatalf("kind %s id %d bound to two distinct bodies", q.Kind, q.ProblemID)
		}
		seen[q.Kind][q.ProblemID] = q.Spec
	}
	for kind, w := range sched.Config.Mix {
		if w > 0 && kinds[kind] == 0 {
			t.Errorf("no %s requests in a %d-request schedule despite weight %g", kind, len(sched.Requests), w)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Rate = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = -time.Second },
		func(c *Config) { c.Size = "gigantic" },
		func(c *Config) { c.Shape = "square" },
		func(c *Config) { c.Mix = Mix{KindDeadline: -1, KindBudget: 2} },
		func(c *Config) { c.Mix = Mix{"astrology": 1} },
		func(c *Config) { c.Mix = Mix{KindDeadline: 0} },
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := GenerateSchedule(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestRunInProcessSmoke is the end-to-end harness test: generate, run
// against a fresh in-process server, and check the report invariants the CI
// smoke job relies on (zero errors, sane quantiles, cache hits from the
// cardinality dial).
func TestRunInProcessSmoke(t *testing.T) {
	cfg := smallConfig()
	sched, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target, srv := NewInProcessTarget(server.Options{})
	res, err := Run(context.Background(), sched, RunOptions{Target: target})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Errors != 0 {
		t.Fatalf("smoke run produced %d errors; samples: %v", res.Overall.Errors, res.ErrorSamples)
	}
	if res.Overall.Requests == 0 {
		t.Fatal("no measured requests")
	}
	if res.Warmed == 0 {
		t.Error("no warmup requests fired before the measurement window")
	}
	if int(res.Overall.Requests)+int(res.Warmed) != len(sched.Requests) {
		t.Errorf("measured %d + warmed %d != scheduled %d",
			res.Overall.Requests, res.Warmed, len(sched.Requests))
	}
	// Cardinality 3 over ~60+ measured requests ⇒ nearly everything after
	// the first few solves is a cache hit.
	hitRatio := float64(res.Overall.CacheHits) / float64(res.Overall.Requests)
	if hitRatio < 0.5 {
		t.Errorf("cache hit ratio %.2f below 0.5 despite cardinality %d", hitRatio, cfg.Cardinality)
	}
	if m := srv.Metrics(); m.Solves == 0 || m.Solves > 3*int64(cfg.Cardinality) {
		t.Errorf("server performed %d solves, want within (0, %d]", m.Solves, 3*cfg.Cardinality)
	}

	rep := BuildReport(sched.Config, "in-process", res, time.Time{})
	if rep.Latency.P50Millis <= 0 || rep.Latency.P99Millis < rep.Latency.P50Millis {
		t.Errorf("implausible latency summary %+v", rep.Latency)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput %v not positive", rep.ThroughputRPS)
	}
	if rep.ScheduleSHA256 != sched.Hash {
		t.Error("report lost the schedule hash")
	}

	// Report round-trips through JSON with the schema version intact.
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Error("report did not round-trip through JSON")
	}
	if !strings.Contains(rep.Table(), "endpoint") {
		t.Error("table output missing header")
	}

	// With a daemon-side stage breakdown attached (the -url path), the
	// table renders the stages in pipeline order and the block round-trips.
	rep.ServerStages = map[string]server.StageSummary{
		"engine_solve":  {Count: 4, MeanMS: 2.1, P50MS: 1.9, P99MS: 3.4, MaxMS: 3.4},
		"server_decode": {Count: 40, MeanMS: 0.02, P50MS: 0.01, P99MS: 0.08, MaxMS: 0.2},
	}
	staged := rep.Table()
	if !strings.Contains(staged, "server stages") || !strings.Contains(staged, "engine_solve") {
		t.Errorf("table output missing server-stage block:\n%s", staged)
	}
	if strings.Index(staged, "server_decode") > strings.Index(staged, "engine_solve") {
		t.Error("server-stage block not in pipeline order")
	}

	// The JSON document exposes the fields the ISSUE's schema names.
	var raw map[string]any
	data, _ := json.Marshal(rep)
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema_version", "config", "environment", "schedule_sha256",
		"latency", "throughput_rps", "cache_hit_ratio", "error_rate",
		"rejected", "rejected_rate", "endpoints"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
}

// TestRunMultiKindSmoke drives a mix containing the multi kind end to end
// through the in-process server: the registry is the only per-kind source,
// so this passing is the "new kinds are load-testable with zero generator
// edits" claim.
func TestRunMultiKindSmoke(t *testing.T) {
	cfg := smallConfig()
	cfg.Mix = Mix{KindMulti: 1, KindBudget: 1}
	sched, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target, srv := NewInProcessTarget(server.Options{})
	defer srv.Close()
	res, err := Run(context.Background(), sched, RunOptions{Target: target})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Errors != 0 || res.Overall.Rejected != 0 {
		t.Fatalf("multi smoke: %d errors, %d rejected; samples: %v",
			res.Overall.Errors, res.Overall.Rejected, res.ErrorSamples)
	}
	if res.ByKind[KindMulti].Requests == 0 {
		t.Fatal("no multi requests measured")
	}
	if m := srv.Metrics(); m.SolvesByKind[KindMulti] == 0 {
		t.Error("server performed no multi solves")
	}
	rep := BuildReport(sched.Config, "in-process", res, time.Time{})
	if _, ok := rep.Endpoints[KindMulti]; !ok {
		t.Error("report has no multi endpoint breakdown")
	}
}

// rejectingTarget sheds every odd request with the daemon's 429 APIError
// and serves the rest, to exercise the rejected bucket.
type rejectingTarget struct {
	n atomic.Int64
}

func (rt *rejectingTarget) Do(ctx context.Context, req *Request) (bool, error) {
	if rt.n.Add(1)%2 == 0 {
		return false, &server.APIError{StatusCode: 429, Status: "429 Too Many Requests", Message: "queue full"}
	}
	return true, nil
}

// TestRejectionAccounting: 429 backpressure lands in the rejected bucket —
// not the error rate, not the latency histogram — overall and per kind,
// and never gates the baseline comparison.
func TestRejectionAccounting(t *testing.T) {
	cfg := smallConfig()
	cfg.Warmup = 0
	sched, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rt rejectingTarget
	res, err := Run(context.Background(), sched, RunOptions{Target: &rt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Errors != 0 {
		t.Fatalf("rejections were counted as errors: %d (%v)", res.Overall.Errors, res.ErrorSamples)
	}
	if res.Overall.Rejected == 0 {
		t.Fatal("no rejections recorded")
	}
	if got := res.Overall.Rejected + res.Overall.Latency.Count(); got != res.Overall.Requests {
		t.Errorf("rejected (%d) + timed (%d) = %d, want every measured request (%d)",
			res.Overall.Rejected, res.Overall.Latency.Count(), got, res.Overall.Requests)
	}
	var perKind int64
	for _, ks := range res.ByKind {
		perKind += ks.Rejected
	}
	if perKind != res.Overall.Rejected {
		t.Errorf("per-kind rejections sum to %d, overall %d", perKind, res.Overall.Rejected)
	}

	rep := BuildReport(sched.Config, "in-process", res, time.Time{})
	if rep.ErrorRate != 0 {
		t.Errorf("error rate %v, want 0 under pure shedding", rep.ErrorRate)
	}
	if rep.RejectedRate <= 0.4 || rep.RejectedRate >= 0.6 {
		t.Errorf("rejected rate %v, want ≈0.5", rep.RejectedRate)
	}
	for kind, ep := range rep.Endpoints {
		if ep.Rejected == 0 && ep.Requests > 1 {
			t.Errorf("endpoint %s reports no rejections over %d requests", kind, ep.Requests)
		}
	}

	// A clean baseline vs. a shedding run: rejected_rate is Worse but must
	// never be a Regression (shedding is intentional admission control).
	clean := *rep
	clean.Rejected, clean.RejectedRate = 0, 0
	cmp := Compare(&clean, rep, 0.10)
	sawRejected := false
	for _, d := range cmp.Deltas {
		if d.Metric == "rejected_rate" {
			sawRejected = true
			if !d.Worse || d.Regression {
				t.Errorf("rejected_rate delta worse=%v regression=%v, want worse, non-gating", d.Worse, d.Regression)
			}
		}
	}
	if !sawRejected {
		t.Error("comparison omits rejected_rate")
	}
}

func TestRunCanceled(t *testing.T) {
	cfg := smallConfig()
	cfg.Duration = 10 * time.Second
	sched, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target, _ := NewInProcessTarget(server.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	if _, err := Run(ctx, sched, RunOptions{Target: target}); err == nil {
		t.Fatal("canceled run returned nil error")
	}
}

func reportPair() (*Report, *Report) {
	base := &Report{
		SchemaVersion:  SchemaVersion,
		ScheduleSHA256: "abc",
		Requests:       10_000,
		ThroughputRPS:  100,
		ErrorRate:      0,
		CacheHitRatio:  0.9,
		Latency:        LatencySummary{P50Millis: 1, P90Millis: 2, P95Millis: 3, P99Millis: 10, P999Millis: 20, MaxMillis: 30},
		Endpoints: map[string]EndpointReport{
			KindDeadline: {Requests: 50, Latency: LatencySummary{P99Millis: 10}},
		},
	}
	cur := *base
	cur.Endpoints = map[string]EndpointReport{
		KindDeadline: {Requests: 50, Latency: LatencySummary{P99Millis: 10}},
	}
	return base, &cur
}

func TestCompareNoRegression(t *testing.T) {
	base, cur := reportPair()
	cmp := Compare(base, cur, 0.10)
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Fatalf("identical reports flagged regressions: %+v", regs)
	}
	if len(cmp.Warnings) != 0 {
		t.Fatalf("identical reports produced warnings: %v", cmp.Warnings)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base, cur := reportPair()
	cur.Latency.P99Millis = 12.5 // +25% and > grace ⇒ regression
	cur.ThroughputRPS = 80       // −20% ⇒ regression
	cur.ErrorRate = 0.05         // from zero ⇒ regression
	cmp := Compare(base, cur, 0.10)
	want := map[string]bool{"latency.p99_ms": true, "throughput_rps": true, "error_rate": true}
	got := map[string]bool{}
	for _, d := range cmp.Regressions() {
		got[d.Metric] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("regressions = %v, want %v", got, want)
	}
	if !strings.Contains(cmp.Format(), "REGRESSION") {
		t.Error("Format output missing REGRESSION marker")
	}
}

// TestCompareGrace checks the noise guards: a large relative move of a
// tiny latency stays inside the absolute grace, a hit-ratio drop never
// gates, max never gates, and tail percentiles without enough samples
// beyond them (p99.9 of a 200-request run) report Worse but don't gate.
func TestCompareGrace(t *testing.T) {
	base, cur := reportPair()
	base.Latency.P50Millis = 0.003 // 3µs
	cur.Latency.P50Millis = 0.010  // 10µs: +233% but within 0.25ms grace
	cur.CacheHitRatio = 0.2
	cur.Latency.MaxMillis = base.Latency.MaxMillis * 10
	base.Requests, cur.Requests = 200, 200
	cur.Latency.P999Millis = base.Latency.P999Millis * 2 // 0.2 tail samples: noise
	cmp := Compare(base, cur, 0.10)
	for _, d := range cmp.Regressions() {
		switch d.Metric {
		case "latency.p50_ms", "cache_hit_ratio", "latency.max_ms", "latency.p999_ms":
			t.Errorf("%s should not gate (delta %+.1f%%)", d.Metric, d.DeltaPct)
		}
	}
}

// TestCompareTailGuardIgnoresRejected: rejected requests never record a
// latency sample, so they must not count toward the tail-sample guard — an
// overload run with thousands of 429s and a handful of timed requests has
// no p99 signal to gate on.
func TestCompareTailGuardIgnoresRejected(t *testing.T) {
	base, cur := reportPair()
	base.Requests, cur.Requests = 10_200, 10_200
	base.Rejected, cur.Rejected = 10_000, 10_000 // 200 timed: 2 samples beyond p99
	cur.Latency.P99Millis = base.Latency.P99Millis * 3
	cmp := Compare(base, cur, 0.10)
	for _, d := range cmp.Regressions() {
		if d.Metric == "latency.p99_ms" {
			t.Errorf("p99 gated on %d timed requests (the rest were rejections)", 200)
		}
	}
}

func TestCompareWarnsOnScheduleMismatch(t *testing.T) {
	base, cur := reportPair()
	cur.ScheduleSHA256 = "different"
	cmp := Compare(base, cur, 0.10)
	if len(cmp.Warnings) == 0 {
		t.Fatal("schedule mismatch produced no warning")
	}
}

func TestReadReportRejectsSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "old.json")
	var buf bytes.Buffer
	rep := &Report{SchemaVersion: SchemaVersion + 1}
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}
