package bench

import (
	"context"
	"testing"
	"time"

	"crowdpricing/internal/server"
	"crowdpricing/internal/wal"
)

func campaignConfig() Config {
	return Config{
		Seed:          1,
		Rate:          30,
		Duration:      2 * time.Second,
		Warmup:        500 * time.Millisecond,
		Cardinality:   3,
		Size:          SizeSmall,
		Scenario:      ScenarioCampaign,
		CampaignSteps: 4,
	}
}

// TestCampaignScheduleDeterministic: campaign schedules — arrivals, specs,
// and the per-session observation scripts — are pure functions of the
// config.
func TestCampaignScheduleDeterministic(t *testing.T) {
	cfg := campaignConfig()
	a, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("equal configs hashed %s vs %s", a.Hash, b.Hash)
	}
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("request counts differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		qa, qb := a.Requests[i], b.Requests[i]
		if qa.Steps != cfg.CampaignSteps || len(qa.StepArrivals) != qa.Steps || len(qa.StepShares) != qa.Steps {
			t.Fatalf("request %d script malformed: %+v", i, qa)
		}
		for s := range qa.StepArrivals {
			if qa.StepArrivals[s] != qb.StepArrivals[s] || qa.StepShares[s] != qb.StepShares[s] {
				t.Fatalf("request %d step %d scripts diverged", i, s)
			}
		}
	}

	// The scenario is part of the hash: the same seed on the solve
	// scenario is a different workload.
	solve := cfg
	solve.Scenario = ScenarioSolve
	solve.CampaignSteps = 0
	s, err := GenerateSchedule(solve)
	if err != nil {
		t.Fatal(err)
	}
	if s.Hash == a.Hash {
		t.Fatal("solve and campaign schedules share a hash")
	}
}

// TestCampaignMixValidation: kinds without a campaign runtime are rejected
// up front, as are adaptive mixes beyond deadline.
func TestCampaignMixValidation(t *testing.T) {
	cfg := campaignConfig()
	cfg.Mix = Mix{KindBudget: 1}
	if _, err := GenerateSchedule(cfg); err == nil {
		t.Error("budget campaign mix accepted")
	}
	cfg = campaignConfig()
	cfg.Mix = Mix{KindTradeoff: 1}
	cfg.CampaignAdaptive = true
	if _, err := GenerateSchedule(cfg); err == nil {
		t.Error("adaptive tradeoff campaign mix accepted")
	}
	cfg = campaignConfig()
	cfg.Scenario = ScenarioSolve
	cfg.CampaignSteps = 3
	if _, err := GenerateSchedule(cfg); err == nil {
		t.Error("campaign knobs accepted on the solve scenario")
	}
}

// TestCampaignScenarioSmoke is the CI-smoke shape: a short fixed-seed
// campaign run against a fresh in-process server must complete with zero
// errors, register campaign activity on the server's metrics, and leave no
// live campaigns behind (every session finishes what it creates).
func TestCampaignScenarioSmoke(t *testing.T) {
	sched, err := GenerateSchedule(campaignConfig())
	if err != nil {
		t.Fatal(err)
	}
	target, srv := NewInProcessTarget(server.Options{})
	res, err := Run(context.Background(), sched, RunOptions{Target: NewTargetFor(sched, target.Client)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Errors != 0 {
		t.Fatalf("campaign run produced %d errors; samples: %v", res.Overall.Errors, res.ErrorSamples)
	}
	if res.Overall.Requests == 0 {
		t.Fatal("no measured sessions")
	}
	// Cardinality 3 ⇒ after the first few sessions every create is a warm
	// policy hit.
	hitRatio := float64(res.Overall.CacheHits) / float64(res.Overall.Requests)
	if hitRatio < 0.5 {
		t.Errorf("create cache hit ratio %.2f below 0.5", hitRatio)
	}

	m := srv.Metrics()
	sessions := res.Overall.Requests + res.Warmed
	if m.CampaignQuotes != sessions*int64(sched.Config.CampaignSteps) {
		t.Errorf("server counted %d campaign quotes, want %d sessions × %d steps",
			m.CampaignQuotes, sessions, sched.Config.CampaignSteps)
	}
	if m.CampaignsActive != 0 {
		t.Errorf("%d campaigns left live after the run; sessions must finish what they create", m.CampaignsActive)
	}

	rep := BuildReport(sched.Config, "in-process", res, time.Time{})
	if rep.Latency.P50Millis <= 0 {
		t.Errorf("implausible session latency %+v", rep.Latency)
	}
	if _, ok := rep.Endpoints[KindDeadline]; !ok {
		t.Error("campaign sessions missing from the deadline endpoint bucket")
	}
}

// TestCampaignDurabilityScenarioSmoke is the durability leg: the same
// campaign workload with an event log attached must finish with zero
// errors, log every mutation, and leave a log that replays cleanly into an
// empty table (every session finished, so nothing should survive replay).
func TestCampaignDurabilityScenarioSmoke(t *testing.T) {
	sched, err := GenerateSchedule(campaignConfig())
	if err != nil {
		t.Fatal(err)
	}
	target, srv := NewInProcessTarget(server.Options{})
	mem := wal.NewMemFS()
	wlog, err := srv.Campaigns().OpenWAL("wal", wal.Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachWAL(wlog)
	res, err := Run(context.Background(), sched, RunOptions{Target: NewTargetFor(sched, target.Client)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Errors != 0 {
		t.Fatalf("durability run produced %d errors; samples: %v", res.Overall.Errors, res.ErrorSamples)
	}
	if err := wlog.Close(); err != nil {
		t.Fatalf("closing the log after the run: %v", err)
	}
	wm := wlog.Metrics()
	sessions := res.Overall.Requests + res.Warmed
	// Each session logs one create, CampaignSteps observes, one finish.
	if want := sessions * int64(sched.Config.CampaignSteps+2); wm.Appends != want {
		t.Errorf("log holds %d appends, want %d (%d sessions × %d events)",
			wm.Appends, want, sessions, sched.Config.CampaignSteps+2)
	}
	if wm.Fsyncs == 0 || wm.Fsyncs >= wm.Appends {
		t.Errorf("fsyncs=%d for appends=%d: group commit is not batching", wm.Fsyncs, wm.Appends)
	}

	// Replay consistency: every session finished, so a recovery boot must
	// succeed and land on an empty table.
	_, srv2 := NewInProcessTarget(server.Options{})
	stats, err := srv2.Campaigns().ReplayWAL(context.Background(), wal.NewReader(mem, "wal"))
	if err != nil {
		t.Fatalf("post-run replay: %v", err)
	}
	if stats.Records != wm.Appends || stats.Campaigns != 0 || int64(stats.Removed) != sessions {
		t.Errorf("replay stats %+v, want %d records, 0 live campaigns, %d removed", stats, wm.Appends, sessions)
	}
}

// TestCampaignAdaptiveScenarioSmoke runs the adaptive variant: sessions
// must replan (the observation scripts drift by design) and still finish
// clean.
func TestCampaignAdaptiveScenarioSmoke(t *testing.T) {
	cfg := campaignConfig()
	cfg.Rate = 10
	cfg.CampaignAdaptive = true
	sched, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target, srv := NewInProcessTarget(server.Options{})
	res, err := Run(context.Background(), sched, RunOptions{Target: NewTargetFor(sched, target.Client)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Errors != 0 {
		t.Fatalf("adaptive campaign run produced %d errors; samples: %v", res.Overall.Errors, res.ErrorSamples)
	}
	if m := srv.Metrics(); m.CampaignReplans == 0 {
		t.Error("drifting observation scripts produced zero replans")
	}
}

// TestCampaignDedupSchedule: the -campaign-dedup dial concentrates sessions
// onto the shared problem, changes the schedule hash (it is a different
// workload), and rejects out-of-range or misplaced settings.
func TestCampaignDedupSchedule(t *testing.T) {
	base, err := GenerateSchedule(campaignConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := campaignConfig()
	cfg.Cardinality = 16
	cfg.CampaignDedup = 0.75
	sched, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Hash == base.Hash {
		t.Error("dedup dial did not change the schedule hash")
	}
	shared := 0
	for _, q := range sched.Requests {
		if q.ProblemID == 0 {
			shared++
		}
	}
	// 75% redirected plus 1/16 of the rest landing on 0 by chance.
	if frac := float64(shared) / float64(len(sched.Requests)); frac < 0.6 {
		t.Errorf("dedup 0.75 concentrated only %.2f of %d sessions on the shared problem", frac, len(sched.Requests))
	}

	cfg.CampaignDedup = 1.5
	if _, err := GenerateSchedule(cfg); err == nil {
		t.Error("dedup fraction above 1 accepted")
	}
	solve := campaignConfig()
	solve.Scenario = ScenarioSolve
	solve.CampaignSteps = 0
	solve.CampaignDedup = 0.5
	if _, err := GenerateSchedule(solve); err == nil {
		t.Error("dedup dial accepted on the solve scenario")
	}
}

// TestCampaignDedupScenarioSmoke runs the high-dedup campaign workload and
// checks the server's intern layer stayed clean across the full HTTP
// lifecycle: tables were interned, and the run ends with zero interned
// quoters and zero resident bytes — the refcount-hygiene fence. (Sessions
// here are short enough that concurrent overlap — intern hits — is not
// guaranteed; the sharing guarantees are fenced in internal/campaign.)
func TestCampaignDedupScenarioSmoke(t *testing.T) {
	cfg := campaignConfig()
	cfg.Cardinality = 16
	cfg.CampaignDedup = 0.9
	sched, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	target, srv := NewInProcessTarget(server.Options{})
	res, err := Run(context.Background(), sched, RunOptions{Target: NewTargetFor(sched, target.Client)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Errors != 0 {
		t.Fatalf("dedup campaign run produced %d errors; samples: %v", res.Overall.Errors, res.ErrorSamples)
	}
	m := srv.Metrics()
	if m.QuoterInternMisses == 0 {
		t.Error("no tables were ever interned by the campaign workload")
	}
	if m.QuoterInterned != 0 || m.QuoterResidentBytes != 0 {
		t.Errorf("run left %d interned quoters holding %d bytes; finished sessions must release their tables",
			m.QuoterInterned, m.QuoterResidentBytes)
	}
}
