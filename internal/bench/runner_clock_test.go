package bench

import (
	"context"
	"sync"
	"testing"
	"time"
)

// stubSpec satisfies engine.Spec for requests a nopTarget never solves.
type stubSpec struct{}

func (stubSpec) Kind() string                          { return "stub" }
func (stubSpec) Validate() error                       { return nil }
func (stubSpec) Fingerprint() (string, error)          { return "stub", nil }
func (stubSpec) Solve(context.Context) ([]byte, error) { return nil, nil }

// fakeClock advances virtual time instead of sleeping: After(d) moves the
// clock forward by d and fires immediately, so an open-loop schedule
// spanning minutes of virtual time executes in microseconds.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.t = c.t.Add(d)
	now := c.t
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- now
	return ch
}

// nopTarget records how many requests it served and always succeeds.
type nopTarget struct {
	served sync.Map
}

func (t *nopTarget) Do(ctx context.Context, req *Request) (bool, error) {
	t.served.Store(req.At, true)
	return false, nil
}

// TestRunWithFakeClock proves the runner is fully clock-injected: a
// schedule whose arrivals span minutes of virtual time completes without
// real sleeps, fires every request, and applies the warmup cutoff to the
// virtual timeline.
func TestRunWithFakeClock(t *testing.T) {
	sched := &Schedule{
		Hash:   "fake-clock-test",
		Config: Config{Warmup: time.Minute},
	}
	const n = 50
	for i := 0; i < n; i++ {
		sched.Requests = append(sched.Requests, Request{
			At:   time.Duration(i) * 4 * time.Second, // 0s .. 196s: minutes of virtual time
			Kind: Kinds[0],
			Spec: stubSpec{},
		})
	}
	target := &nopTarget{}
	begin := time.Now()
	res, err := Run(context.Background(), sched, RunOptions{
		Target: target,
		Clock:  &fakeClock{t: time.Unix(0, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if real := time.Since(begin); real > 30*time.Second {
		t.Fatalf("fake-clock run took %v of real time; the clock is not fully injected", real)
	}
	fired := 0
	target.served.Range(func(_, _ any) bool { fired++; return true })
	if fired != n {
		t.Fatalf("target served %d requests, want %d", fired, n)
	}
	warmupReqs := int64(15) // arrivals at 0,4,...,56s fall inside the 60s warmup
	if res.Warmed != warmupReqs {
		t.Errorf("Warmed = %d, want %d", res.Warmed, warmupReqs)
	}
	if got := res.Overall.Requests; got != int64(n)-warmupReqs {
		t.Errorf("measured requests = %d, want %d", got, int64(n)-warmupReqs)
	}
	if res.Overall.Errors != 0 || res.Overall.Rejected != 0 {
		t.Errorf("errors=%d rejected=%d, want 0/0", res.Overall.Errors, res.Overall.Rejected)
	}
}
