package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// registerRetryInterval paces a worker's /control retries while the
// coordinator is still coming up.
const registerRetryInterval = 500 * time.Millisecond

// registerRetryLimit bounds how many connection-refused /control attempts a
// worker makes before giving up (≈30 s at the retry interval).
const registerRetryLimit = 60

// WorkerOptions configures one worker process of a distributed run.
type WorkerOptions struct {
	// CoordinatorURL is the coordinator's base URL. Required.
	CoordinatorURL string
	// WorkerID identifies this worker to the coordinator; registration is
	// idempotent per id. Required.
	WorkerID string
	// HTTP overrides the protocol client (nil = a fresh no-timeout client;
	// /control long-polls, so per-client timeouts would sever the barrier).
	HTTP *http.Client
	// Clock overrides the time source (nil = wall clock).
	Clock Clock
	// HeartbeatInterval overrides DefaultHeartbeatInterval (0 = default).
	HeartbeatInterval time.Duration
	// MaxConcurrent overrides the assignment's in-flight cap when > 0.
	MaxConcurrent int
	// NewTarget builds the Target for an assignment. Nil uses the real
	// thing: an HTTP target at assignment.TargetURL, scenario-matched via
	// NewTargetFor. Tests inject in-process targets here.
	NewTarget func(a *Assignment, sched *Schedule) (Target, error)
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// RunWorker runs the worker side of a distributed benchmark: register with
// the coordinator, receive the slice assignment, regenerate the schedule
// from its seeded config, verify the schedule hash bit-for-bit, replay the
// assigned round-robin slice with the standard runner, and post back the
// serialized histograms and totals.
//
// Any failure after assignment — hash mismatch, target construction, a
// canceled or errored run — is reported to the coordinator as a failure
// result (failing the whole run loudly) and returned.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.CoordinatorURL == "" {
		return fmt.Errorf("bench: WorkerOptions.CoordinatorURL is required")
	}
	if opts.WorkerID == "" {
		return fmt.Errorf("bench: WorkerOptions.WorkerID is required")
	}
	if opts.Clock == nil {
		opts.Clock = wallClock
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if opts.HTTP == nil {
		opts.HTTP = &http.Client{}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	w := &worker{opts: opts}

	a, err := w.register(ctx)
	if err != nil {
		return err
	}
	opts.Logf("assigned slice %d/%d of schedule %.12s… (target %s)", a.WorkerIndex, a.NumWorkers, a.ScheduleSHA256, a.TargetURL)

	sched, err := GenerateSchedule(a.Config)
	if err != nil {
		return w.failRun(a, fmt.Sprintf("regenerating schedule: %v", err))
	}
	if sched.Hash != a.ScheduleSHA256 {
		return w.failRun(a, fmt.Sprintf("schedule hash mismatch: generated %s, assigned %s — version skew between coordinator and worker binaries, or nondeterminism", sched.Hash, a.ScheduleSHA256))
	}
	slice, err := SliceSchedule(sched, a.WorkerIndex, a.NumWorkers)
	if err != nil {
		return w.failRun(a, err.Error())
	}

	newTarget := opts.NewTarget
	if newTarget == nil {
		newTarget = func(a *Assignment, sched *Schedule) (Target, error) {
			if a.TargetURL == "" {
				return nil, fmt.Errorf("assignment names no target URL")
			}
			return NewTargetFor(sched, NewHTTPTarget(a.TargetURL).Client), nil
		}
	}
	target, err := newTarget(a, sched)
	if err != nil {
		return w.failRun(a, fmt.Sprintf("building target: %v", err))
	}

	maxConc := a.MaxConcurrent
	if opts.MaxConcurrent > 0 {
		maxConc = opts.MaxConcurrent
	}

	// Heartbeat while the slice runs, so the coordinator can tell a slow
	// run from a dead worker.
	hbCtx, stopHB := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(hbCtx, a)
	}()

	opts.Logf("replaying %d of %d scheduled requests", len(slice.Requests), len(sched.Requests))
	res, runErr := Run(ctx, slice, RunOptions{Target: target, MaxConcurrent: maxConc, Clock: opts.Clock})
	stopHB()
	hbWG.Wait()
	if runErr != nil {
		return w.failRun(a, fmt.Sprintf("run failed: %v", runErr))
	}

	wr := buildWorkerResult(a, opts.WorkerID, res)
	if err := w.postResult(ctx, wr); err != nil {
		return err
	}
	opts.Logf("slice complete: %d measured requests (%d errors, %d rejected), result posted", res.Overall.Requests, res.Overall.Errors, res.Overall.Rejected)
	return nil
}

// worker bundles the protocol client state.
type worker struct {
	opts WorkerOptions
}

// register POSTs /control until the coordinator answers with an
// assignment, retrying transport errors (the coordinator may still be
// binding its listener) but not protocol rejections.
func (w *worker) register(ctx context.Context) (*Assignment, error) {
	body, err := json.Marshal(ControlRequest{WorkerID: w.opts.WorkerID})
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		status, resp, err := w.post(ctx, ControlPath, body)
		if err == nil && status == http.StatusOK {
			var a Assignment
			if err := json.Unmarshal(resp, &a); err != nil {
				return nil, fmt.Errorf("bench: bad assignment from coordinator: %w", err)
			}
			if a.NumWorkers < 1 || a.WorkerIndex < 0 || a.WorkerIndex >= a.NumWorkers || a.ScheduleSHA256 == "" {
				return nil, fmt.Errorf("bench: malformed assignment %+v", a)
			}
			return &a, nil
		}
		if err == nil {
			return nil, fmt.Errorf("bench: coordinator refused registration: %d %s", status, bytes.TrimSpace(resp))
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("bench: registration canceled: %w", ctx.Err())
		}
		if attempt >= registerRetryLimit {
			return nil, fmt.Errorf("bench: coordinator unreachable after %d attempts: %w", attempt+1, err)
		}
		w.opts.Logf("coordinator not reachable yet (%v), retrying", err)
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("bench: registration canceled: %w", ctx.Err())
		case <-w.opts.Clock.After(registerRetryInterval):
		}
	}
}

// heartbeatLoop pings /heartbeat every HeartbeatInterval until ctx ends.
// Send errors are logged, not fatal — the coordinator is the judge of
// liveness, and a transient drop inside the grace window is survivable.
func (w *worker) heartbeatLoop(ctx context.Context, a *Assignment) {
	body, err := json.Marshal(HeartbeatRequest{RunID: a.RunID, WorkerID: w.opts.WorkerID})
	if err != nil {
		return
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-w.opts.Clock.After(w.opts.HeartbeatInterval):
		}
		if status, resp, err := w.post(ctx, HeartbeatPath, body); err != nil {
			w.opts.Logf("heartbeat failed: %v", err)
		} else if status != http.StatusNoContent {
			w.opts.Logf("heartbeat rejected: %d %s", status, bytes.TrimSpace(resp))
		}
	}
}

// failRun reports a failure result to the coordinator (so the whole run
// fails loudly, not by timeout) and returns the failure as an error.
func (w *worker) failRun(a *Assignment, msg string) error {
	w.opts.Logf("failing run: %s", msg)
	wr := &WorkerResult{
		RunID:          a.RunID,
		WorkerID:       w.opts.WorkerID,
		WorkerIndex:    a.WorkerIndex,
		ScheduleSHA256: a.ScheduleSHA256,
		Failure:        msg,
	}
	// The surrounding context may already be canceled — the failure post
	// rides its own short deadline so the coordinator still hears about it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.postResult(ctx, wr); err != nil {
		w.opts.Logf("could not deliver failure result: %v", err)
	}
	return fmt.Errorf("bench: worker %s: %s", w.opts.WorkerID, msg)
}

// postResult delivers a WorkerResult, surfacing coordinator rejections.
func (w *worker) postResult(ctx context.Context, wr *WorkerResult) error {
	body, err := json.Marshal(wr)
	if err != nil {
		return err
	}
	status, resp, err := w.post(ctx, ResultPath, body)
	if err != nil {
		return fmt.Errorf("bench: posting result: %w", err)
	}
	if status != http.StatusNoContent {
		return fmt.Errorf("bench: coordinator rejected result: %d %s", status, bytes.TrimSpace(resp))
	}
	return nil
}

// post issues one JSON POST to a coordinator endpoint.
func (w *worker) post(ctx context.Context, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.CoordinatorURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opts.HTTP.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWireBody))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}
