package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"crowdpricing/internal/hdr"
	"crowdpricing/internal/server"
	"crowdpricing/internal/telemetry"
)

// SchemaVersion identifies the BENCH_loadbench.json layout; bump it on any
// incompatible change so compare can refuse mismatched baselines.
//
// v2: Mix became a map keyed by registry kind name, and 429 backpressure
// rejections moved out of the error totals into their own rejected /
// rejected_rate bucket (overall and per endpoint) so gates don't flap
// under intentional shedding.
//
// v3: the config gained scenario / campaign_steps / campaign_adaptive for
// the stateful campaign workload; on the campaign scenario a "request" is
// one whole session (create → observe/quote steps → finish) and its
// latency is the session wall time, so v2 latency baselines are not
// comparable.
//
// v4: distributed runs — the report gains an optional `workers` block (one
// entry per worker process of a coordinator/worker run; totals and
// percentiles are the merged whole). Single-process reports carry no
// workers block and are otherwise identical to v3, so every metric keeps
// its meaning and -baseline comparison works unchanged on merged reports.
//
// v5: the report gains an optional `server_stages` block — the daemon's
// server-side per-stage latency summaries (decode, engine queue, solve,
// quoter decode, campaign lock, WAL append) fetched from /v1/analytics
// after the run when the target is a live daemon (-url). In-process runs
// and daemons without tracing carry no block; every client-side metric is
// unchanged from v4.
const SchemaVersion = 5

// LatencySummary is the percentile digest of one latency histogram, in
// milliseconds. Successful requests only — errors are counted, not timed.
type LatencySummary struct {
	P50Millis  float64 `json:"p50_ms"`
	P90Millis  float64 `json:"p90_ms"`
	P95Millis  float64 `json:"p95_ms"`
	P99Millis  float64 `json:"p99_ms"`
	P999Millis float64 `json:"p999_ms"`
	MaxMillis  float64 `json:"max_ms"`
	MeanMillis float64 `json:"mean_ms"`
}

func summarize(h *hdr.Histogram) LatencySummary {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return LatencySummary{
		P50Millis:  ms(h.Quantile(0.50)),
		P90Millis:  ms(h.Quantile(0.90)),
		P95Millis:  ms(h.Quantile(0.95)),
		P99Millis:  ms(h.Quantile(0.99)),
		P999Millis: ms(h.Quantile(0.999)),
		MaxMillis:  ms(h.Max()),
		MeanMillis: h.Mean() / 1e6,
	}
}

// EndpointReport is the per-kind slice of the run.
type EndpointReport struct {
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	// Rejected counts 429 backpressure shedding — intentional, disjoint
	// from Errors.
	Rejected      int64          `json:"rejected"`
	RejectedRate  float64        `json:"rejected_rate"`
	CacheHits     int64          `json:"cache_hits"`
	CacheHitRatio float64        `json:"cache_hit_ratio"`
	Latency       LatencySummary `json:"latency"`
}

func endpointReport(ks *KindStats) EndpointReport {
	rep := EndpointReport{
		Requests:  ks.Requests,
		Errors:    ks.Errors,
		Rejected:  ks.Rejected,
		CacheHits: ks.CacheHits,
		Latency:   summarize(ks.Latency),
	}
	if ks.Requests > 0 {
		rep.ErrorRate = float64(ks.Errors) / float64(ks.Requests)
		rep.RejectedRate = float64(ks.Rejected) / float64(ks.Requests)
	}
	if ok := ks.Requests - ks.Errors - ks.Rejected; ok > 0 {
		rep.CacheHitRatio = float64(ks.CacheHits) / float64(ok)
	}
	return rep
}

// Environment records where the numbers were taken; comparisons across
// differing environments are apples-to-oranges and compare warns on them.
type Environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Timestamp  string `json:"timestamp,omitempty"`
}

func captureEnvironment(now time.Time) Environment {
	env := Environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if !now.IsZero() {
		env.Timestamp = now.UTC().Format(time.RFC3339)
	}
	return env
}

// ReportConfig echoes the workload configuration plus the target it ran
// against.
type ReportConfig struct {
	Config
	// Target is "in-process" or the daemon URL.
	Target string `json:"target"`
}

// Report is the machine-readable benchmark artifact (BENCH_loadbench.json).
type Report struct {
	SchemaVersion  int          `json:"schema_version"`
	Config         ReportConfig `json:"config"`
	Environment    Environment  `json:"environment"`
	ScheduleSHA256 string       `json:"schedule_sha256"`

	// Totals over the measurement window (warmup excluded).
	DurationSeconds float64 `json:"duration_seconds"`
	WarmupRequests  int64   `json:"warmup_requests"`
	Requests        int64   `json:"requests"`
	Errors          int64   `json:"errors"`
	ErrorRate       float64 `json:"error_rate"`
	// Rejected counts 429 backpressure shedding (the daemon's admission
	// queue was full) — intentional behavior under overload, reported
	// separately from Errors so error-rate gates don't flap.
	Rejected      int64   `json:"rejected"`
	RejectedRate  float64 `json:"rejected_rate"`
	CacheHits     int64   `json:"cache_hits"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	ThroughputRPS float64 `json:"throughput_rps"`

	Latency   LatencySummary            `json:"latency"`
	Endpoints map[string]EndpointReport `json:"endpoints"`

	// Workers is present on distributed (coordinator/worker) runs only:
	// one entry per worker process, ordered by worker index. The report's
	// totals and percentiles are the merged whole; this block shows how
	// evenly the slices landed.
	Workers []WorkerReport `json:"workers,omitempty"`

	// ServerStages is present when the target was a live daemon (-url)
	// with tracing on: the daemon's per-stage latency summaries from
	// /v1/analytics, keyed by stage name — where the request time went
	// server-side, complementing the client-side latency above.
	ServerStages map[string]server.StageSummary `json:"server_stages,omitempty"`

	ErrorSamples []string `json:"error_samples,omitempty"`
}

// WorkerReport summarizes one worker process's slice of a distributed run.
type WorkerReport struct {
	Index           int            `json:"index"`
	WorkerID        string         `json:"worker_id,omitempty"`
	Requests        int64          `json:"requests"`
	Errors          int64          `json:"errors"`
	Rejected        int64          `json:"rejected"`
	WarmupRequests  int64          `json:"warmup_requests"`
	DurationSeconds float64        `json:"duration_seconds"`
	Latency         LatencySummary `json:"latency"`
}

// BuildReport digests a run into the serializable report. now stamps the
// environment (pass time.Now() from main; tests may pass the zero time for
// byte-stable output).
func BuildReport(cfg Config, target string, res *Result, now time.Time) *Report {
	rep := &Report{
		SchemaVersion:  SchemaVersion,
		Config:         ReportConfig{Config: cfg, Target: target},
		Environment:    captureEnvironment(now),
		ScheduleSHA256: res.ScheduleHash,

		DurationSeconds: res.Elapsed.Seconds(),
		WarmupRequests:  res.Warmed,
		Requests:        res.Overall.Requests,
		Errors:          res.Overall.Errors,
		Rejected:        res.Overall.Rejected,
		CacheHits:       res.Overall.CacheHits,
		Latency:         summarize(res.Overall.Latency),
		Endpoints:       make(map[string]EndpointReport, len(res.ByKind)),
		ErrorSamples:    res.ErrorSamples,
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
		rep.RejectedRate = float64(rep.Rejected) / float64(rep.Requests)
	}
	if ok := rep.Requests - rep.Errors - rep.Rejected; ok > 0 {
		rep.CacheHitRatio = float64(rep.CacheHits) / float64(ok)
	}
	if res.Elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests-rep.Errors-rep.Rejected) / res.Elapsed.Seconds()
	}
	byKind := make([]string, 0, len(res.ByKind))
	for kind := range res.ByKind {
		byKind = append(byKind, kind)
	}
	sort.Strings(byKind)
	for _, kind := range byKind {
		ks := res.ByKind[kind]
		if ks.Requests == 0 {
			continue
		}
		rep.Endpoints[kind] = endpointReport(ks)
	}
	return rep
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport loads a report written by WriteJSON and checks its schema
// version.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if rep.SchemaVersion != SchemaVersion {
		// A silent miscompare across schema versions would gate CI on
		// metrics whose meaning changed; name the fix instead.
		return nil, fmt.Errorf("bench: %s has schema version %d, this binary expects %d — metrics are not comparable across versions; regenerate the baseline with this binary (the bench.SchemaVersion doc lists what changed)", path, rep.SchemaVersion, SchemaVersion)
	}
	return &rep, nil
}

// Table renders the human-readable summary the CLI prints.
func (r *Report) Table() string {
	var b strings.Builder
	scenario := string(r.Config.Scenario)
	if r.Config.Scenario == ScenarioCampaign {
		scenario = fmt.Sprintf("%s (%d steps", r.Config.Scenario, r.Config.CampaignSteps)
		if r.Config.CampaignAdaptive {
			scenario += ", adaptive"
		}
		scenario += ")"
	}
	fmt.Fprintf(&b, "target %s · scenario %s · seed %d · %s problems · mix %s · cardinality %d · shape %s\n",
		r.Config.Target, scenario, r.Config.Seed, r.Config.Size,
		formatMix(r.Config.Mix), r.Config.Cardinality, r.Config.Shape)
	fmt.Fprintf(&b, "measured %.1fs · %d requests (%d warmup excluded) · %.1f req/s · errors %d (%.2f%%) · rejected %d (%.2f%%) · cache hit %.1f%%\n",
		r.DurationSeconds, r.Requests, r.WarmupRequests, r.ThroughputRPS,
		r.Errors, 100*r.ErrorRate, r.Rejected, 100*r.RejectedRate, 100*r.CacheHitRatio)

	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "endpoint\treqs\terr\trej\thit%\tp50\tp90\tp95\tp99\tp99.9\tmax")
	row := func(name string, reqs, errs, rej int64, hitRatio float64, l LatencySummary) {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%s\t%s\t%s\t%s\t%s\t%s\n",
			name, reqs, errs, rej, 100*hitRatio,
			fmtMillis(l.P50Millis), fmtMillis(l.P90Millis), fmtMillis(l.P95Millis),
			fmtMillis(l.P99Millis), fmtMillis(l.P999Millis), fmtMillis(l.MaxMillis))
	}
	row("all", r.Requests, r.Errors, r.Rejected, r.CacheHitRatio, r.Latency)
	for _, kind := range Kinds {
		ep, ok := r.Endpoints[kind]
		if !ok {
			continue
		}
		row(kind, ep.Requests, ep.Errors, ep.Rejected, ep.CacheHitRatio, ep.Latency)
	}
	w.Flush()
	if len(r.ServerStages) > 0 {
		fmt.Fprintln(&b, "server stages (daemon-side, all traced requests):")
		sw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
		fmt.Fprintln(sw, "  stage\tcount\tmean\tp50\tp99\tmax")
		for _, stage := range telemetry.StageNames() {
			ss, ok := r.ServerStages[stage]
			if !ok {
				continue
			}
			fmt.Fprintf(sw, "  %s\t%d\t%s\t%s\t%s\t%s\n", stage, ss.Count,
				fmtMillis(ss.MeanMS), fmtMillis(ss.P50MS), fmtMillis(ss.P99MS), fmtMillis(ss.MaxMS))
		}
		sw.Flush()
	}
	if len(r.Workers) > 0 {
		fmt.Fprintf(&b, "distributed: %d workers\n", len(r.Workers))
		for _, wr := range r.Workers {
			id := wr.WorkerID
			if id != "" {
				id = " (" + id + ")"
			}
			fmt.Fprintf(&b, "  worker %d%s: %d reqs · err %d · rej %d · p99 %s · %.1fs\n",
				wr.Index, id, wr.Requests, wr.Errors, wr.Rejected,
				fmtMillis(wr.Latency.P99Millis), wr.DurationSeconds)
		}
	}
	if len(r.ErrorSamples) > 0 {
		fmt.Fprintf(&b, "error samples:\n")
		for _, s := range r.ErrorSamples {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	return b.String()
}

// formatMix renders mix weights in canonical kind order, e.g.
// "deadline=5 budget=3 multi=1".
func formatMix(m Mix) string {
	parts := make([]string, 0, len(m))
	for _, kind := range Kinds {
		if w, ok := m[kind]; ok {
			parts = append(parts, fmt.Sprintf("%s=%g", kind, w))
		}
	}
	// Mix entries for kinds outside the registry order (shouldn't happen
	// post-validation, but reports may be replayed across versions).
	extra := make([]string, 0)
	//crowdlint:allow determinism -- collected entries are sorted two lines down
	for kind, w := range m {
		if kindByte(kind) == 0xff {
			extra = append(extra, fmt.Sprintf("%s=%g", kind, w))
		}
	}
	sort.Strings(extra)
	return strings.Join(append(parts, extra...), " ")
}

// fmtMillis renders a millisecond value at a precision matched to its
// magnitude (3.1µs, 4.20ms, 1.3s).
func fmtMillis(ms float64) string {
	switch {
	case ms <= 0:
		return "0"
	case ms < 1:
		return fmt.Sprintf("%.1fµs", ms*1000)
	case ms < 1000:
		return fmt.Sprintf("%.2fms", ms)
	default:
		return fmt.Sprintf("%.2fs", ms/1000)
	}
}

// sortedEndpointNames returns the report's endpoint keys in canonical
// order, for deterministic iteration in compare.
func (r *Report) sortedEndpointNames() []string {
	names := make([]string, 0, len(r.Endpoints))
	for k := range r.Endpoints {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
