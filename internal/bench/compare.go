package bench

import (
	"fmt"
	"strings"
)

// latencyGraceMillis is the absolute slack added to every latency
// comparison: sub-millisecond jitter between runs (scheduler noise, cache
// warmup order) should not flag a regression even when it is a large
// *relative* change of a tiny number.
const latencyGraceMillis = 0.25

// minTailSamples is how many observations must lie beyond a percentile for
// it to gate: a p99.9 estimated from two requests is a coin flip, not a
// regression signal. With fewer samples the delta is still reported, just
// marked Worse rather than Regression.
const minTailSamples = 5

// MetricDelta is one metric's before/after pair.
type MetricDelta struct {
	// Metric is the dotted name, e.g. "latency.p99_ms" or
	// "endpoints.deadline.latency.p99_ms".
	Metric string  `json:"metric"`
	Base   float64 `json:"base"`
	New    float64 `json:"new"`
	// DeltaPct is (New−Base)/Base·100, +Inf-free: 0 when Base is 0.
	DeltaPct float64 `json:"delta_pct"`
	// Worse reports whether the move is in the bad direction for this
	// metric (up for latency/errors, down for throughput/hit ratio).
	Worse bool `json:"worse"`
	// Regression reports whether the move is worse by more than the
	// threshold — the condition that flips the CLI exit code.
	Regression bool `json:"regression"`
}

// Comparison is the outcome of diffing a run against a baseline.
type Comparison struct {
	Threshold float64       `json:"threshold"`
	Deltas    []MetricDelta `json:"deltas"`
	// Warnings note apples-to-oranges conditions (environment or schedule
	// mismatch) that don't gate, but belong in the log.
	Warnings []string `json:"warnings,omitempty"`
}

// Regressions returns the deltas that crossed the threshold.
func (c *Comparison) Regressions() []MetricDelta {
	var out []MetricDelta
	for _, d := range c.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs cur against base with a relative regression threshold
// (0.10 = 10% worse fails). Latency percentiles gate with an extra
// absolute grace of latencyGraceMillis and only when both runs have at
// least minTailSamples observations beyond the percentile (max never
// gates: it is a single sample by construction); throughput gates on
// relative drop; error rate gates on any increase beyond
// max(threshold·base, 0.1pp). Cache hit ratio and the 429 rejection rate
// are reported but never gate: the former is a property of the workload
// dial, the latter of deliberate admission control, not the code under
// test.
func Compare(base, cur *Report, threshold float64) *Comparison {
	c := &Comparison{Threshold: threshold}
	if base.ScheduleSHA256 != cur.ScheduleSHA256 {
		c.Warnings = append(c.Warnings, fmt.Sprintf(
			"schedules differ (base %.12s…, new %.12s…): the runs replay different workloads",
			base.ScheduleSHA256, cur.ScheduleSHA256))
	}
	if be, ce := base.Environment, cur.Environment; be.GOARCH != ce.GOARCH || be.NumCPU != ce.NumCPU {
		c.Warnings = append(c.Warnings, fmt.Sprintf(
			"environments differ (base %s/%d CPUs, new %s/%d CPUs)",
			be.GOARCH, be.NumCPU, ce.GOARCH, ce.NumCPU))
	}

	// Tail-sample guards count successful requests only: the latency
	// histograms see neither errored nor 429-rejected requests, so both
	// must come off the denominator or an overload run would arm
	// percentile gates on a handful of real observations.
	c.compareLatency("latency", base.Latency, cur.Latency, threshold,
		min(base.Requests-base.Errors-base.Rejected, cur.Requests-cur.Errors-cur.Rejected))
	c.add("throughput_rps", base.ThroughputRPS, cur.ThroughputRPS,
		cur.ThroughputRPS < base.ThroughputRPS,
		cur.ThroughputRPS < base.ThroughputRPS*(1-threshold))
	errGate := threshold * base.ErrorRate
	if errGate < 0.001 {
		errGate = 0.001
	}
	c.add("error_rate", base.ErrorRate, cur.ErrorRate,
		cur.ErrorRate > base.ErrorRate,
		cur.ErrorRate > base.ErrorRate+errGate)
	// Rejections are intentional shedding under overload: a workload/knob
	// property like the hit ratio, so the delta is reported but never gates
	// (gating it would make CI flap exactly when admission control works).
	c.add("rejected_rate", base.RejectedRate, cur.RejectedRate,
		cur.RejectedRate > base.RejectedRate, false)
	c.add("cache_hit_ratio", base.CacheHitRatio, cur.CacheHitRatio,
		cur.CacheHitRatio < base.CacheHitRatio, false)

	for _, name := range base.sortedEndpointNames() {
		bep := base.Endpoints[name]
		cep, ok := cur.Endpoints[name]
		if !ok {
			c.Warnings = append(c.Warnings, fmt.Sprintf("endpoint %q present in baseline but absent from the new run", name))
			continue
		}
		c.compareLatency("endpoints."+name+".latency", bep.Latency, cep.Latency, threshold,
			min(bep.Requests-bep.Errors-bep.Rejected, cep.Requests-cep.Errors-cep.Rejected))
	}
	return c
}

func (c *Comparison) compareLatency(prefix string, base, cur LatencySummary, threshold float64, requests int64) {
	pairs := []struct {
		name      string
		quantile  float64 // 1 means "max": a single sample, never gates
		base, cur float64
	}{
		{"p50_ms", 0.50, base.P50Millis, cur.P50Millis},
		{"p90_ms", 0.90, base.P90Millis, cur.P90Millis},
		{"p95_ms", 0.95, base.P95Millis, cur.P95Millis},
		{"p99_ms", 0.99, base.P99Millis, cur.P99Millis},
		{"p999_ms", 0.999, base.P999Millis, cur.P999Millis},
		{"max_ms", 1, base.MaxMillis, cur.MaxMillis},
	}
	for _, p := range pairs {
		tailSamples := float64(requests) * (1 - p.quantile)
		c.add(prefix+"."+p.name, p.base, p.cur,
			p.cur > p.base,
			tailSamples >= minTailSamples && p.cur > p.base*(1+threshold)+latencyGraceMillis)
	}
}

func (c *Comparison) add(metric string, base, cur float64, worse, regression bool) {
	d := MetricDelta{Metric: metric, Base: base, New: cur, Worse: worse, Regression: regression}
	if base != 0 {
		d.DeltaPct = (cur - base) / base * 100
	}
	c.Deltas = append(c.Deltas, d)
}

// Format renders the comparison for terminal output.
func (c *Comparison) Format() string {
	var b strings.Builder
	for _, w := range c.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	fmt.Fprintf(&b, "%-40s %12s %12s %9s\n", "metric", "baseline", "new", "delta")
	for _, d := range c.Deltas {
		mark := ""
		switch {
		case d.Regression:
			mark = "  REGRESSION"
		case d.Worse:
			mark = "  worse"
		}
		fmt.Fprintf(&b, "%-40s %12.4g %12.4g %+8.1f%%%s\n", d.Metric, d.Base, d.New, d.DeltaPct, mark)
	}
	if n := len(c.Regressions()); n > 0 {
		fmt.Fprintf(&b, "%d metric(s) regressed beyond the %.0f%% threshold\n", n, c.Threshold*100)
	} else {
		fmt.Fprintf(&b, "no regressions beyond the %.0f%% threshold\n", c.Threshold*100)
	}
	return b.String()
}
