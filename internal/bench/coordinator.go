package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Distributed-run timing defaults.
const (
	// DefaultHeartbeatGrace is how long a registered worker may stay
	// silent (no heartbeat, no result) before the coordinator declares it
	// dead and fails the run.
	DefaultHeartbeatGrace = 15 * time.Second
	// DefaultHeartbeatInterval is how often workers ping /heartbeat.
	DefaultHeartbeatInterval = 2 * time.Second
	// coordinatorTickInterval paces the liveness/deadline monitor.
	coordinatorTickInterval = 500 * time.Millisecond
	// maxWireBody bounds request bodies on the coordinator's endpoints.
	maxWireBody = 32 << 20
)

// CoordinatorOptions configures a distributed run.
type CoordinatorOptions struct {
	// Schedule is the full generated schedule the run partitions. Required.
	Schedule *Schedule
	// NumWorkers is how many worker processes the run expects; assignments
	// are released only once all of them have registered. Required ≥ 1.
	NumWorkers int
	// TargetURL is the daemon every worker drives, forwarded verbatim in
	// assignments. May be empty only when workers build their own targets
	// (tests); cmd/loadbench requires it.
	TargetURL string
	// MaxConcurrent is the per-worker in-flight cap forwarded in
	// assignments (0 = runner default).
	MaxConcurrent int
	// Deadline bounds the whole run, registration through last result;
	// when it passes, the run fails loudly instead of reporting whatever
	// subset arrived. 0 derives warmup + duration + 2 minutes.
	Deadline time.Duration
	// HeartbeatGrace overrides DefaultHeartbeatGrace (0 = default).
	HeartbeatGrace time.Duration
	// Clock overrides the time source (nil = wall clock).
	Clock Clock
}

// workerState tracks one registered worker.
type workerState struct {
	id       string
	index    int
	lastSeen time.Time
	resulted bool
}

// Coordinator runs the controller side of a distributed benchmark: it
// registers exactly NumWorkers workers, releases their slice assignments
// together (a long-poll barrier, so the open-loop slices overlay into the
// intended aggregate arrival process), tracks heartbeats while slices run,
// collects posted results, and merges them into one Result.
//
// Failure is sticky and loud: a missed deadline, a stale heartbeat, a
// schedule-hash mismatch, or a worker-reported failure each poison the run;
// /report then serves the failure, never a partial merge.
type Coordinator struct {
	opts       CoordinatorOptions
	runID      string
	deadlineAt time.Time

	mu       sync.Mutex
	workers  map[string]*workerState
	results  []*WorkerResult
	merged   *Result
	failure  error
	released bool          // barrier closed
	barrier  chan struct{} // closed when all workers have registered
	done     chan struct{} // closed on completion or failure
}

// NewCoordinator validates opts and builds a Coordinator. The run's
// deadline clock starts now.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Schedule == nil || opts.Schedule.Hash == "" {
		return nil, fmt.Errorf("bench: CoordinatorOptions.Schedule (with its hash) is required")
	}
	if opts.NumWorkers < 1 {
		return nil, fmt.Errorf("bench: NumWorkers must be ≥ 1, got %d", opts.NumWorkers)
	}
	if opts.Clock == nil {
		opts.Clock = wallClock
	}
	if opts.HeartbeatGrace <= 0 {
		opts.HeartbeatGrace = DefaultHeartbeatGrace
	}
	if opts.Deadline <= 0 {
		opts.Deadline = opts.Schedule.Config.Warmup + opts.Schedule.Config.Duration + 2*time.Minute
	}
	return &Coordinator{
		opts:       opts,
		runID:      "run-" + opts.Schedule.Hash[:16],
		deadlineAt: opts.Clock.Now().Add(opts.Deadline),
		workers:    make(map[string]*workerState, opts.NumWorkers),
		barrier:    make(chan struct{}),
		done:       make(chan struct{}),
	}, nil
}

// RunID returns the run identifier workers echo back.
func (c *Coordinator) RunID() string { return c.runID }

// Handler returns the coordinator's HTTP surface (the /control, /heartbeat,
// /result, and /report endpoints).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+ControlPath, c.handleControl)
	mux.HandleFunc("POST "+HeartbeatPath, c.handleHeartbeat)
	mux.HandleFunc("POST "+ResultPath, c.handleResult)
	mux.HandleFunc("GET "+ReportPath, c.handleReport)
	return mux
}

// failLocked records the first failure and releases every waiter. Callers
// hold c.mu.
func (c *Coordinator) failLocked(err error) {
	if c.failure != nil || c.merged != nil {
		return
	}
	c.failure = err
	close(c.done)
}

// fail is failLocked for callers not holding the lock.
func (c *Coordinator) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failLocked(err)
}

// Err returns the sticky failure, if any.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure
}

func (c *Coordinator) handleControl(w http.ResponseWriter, r *http.Request) {
	var req ControlRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxWireBody)).Decode(&req); err != nil {
		http.Error(w, "bad control request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.WorkerID == "" {
		http.Error(w, "worker_id is required", http.StatusBadRequest)
		return
	}

	c.mu.Lock()
	if c.failure != nil {
		err := c.failure
		c.mu.Unlock()
		http.Error(w, "run failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	st, ok := c.workers[req.WorkerID]
	if !ok {
		if len(c.workers) >= c.opts.NumWorkers {
			c.mu.Unlock()
			http.Error(w, fmt.Sprintf("run is fully subscribed (%d workers)", c.opts.NumWorkers), http.StatusConflict)
			return
		}
		st = &workerState{id: req.WorkerID, index: len(c.workers), lastSeen: c.opts.Clock.Now()}
		c.workers[req.WorkerID] = st
		if len(c.workers) == c.opts.NumWorkers {
			c.released = true
			close(c.barrier)
		}
	} else {
		st.lastSeen = c.opts.Clock.Now()
	}
	index := st.index
	c.mu.Unlock()

	// Long-poll: hold the response until every expected worker is in, so
	// all slices start together and overlay into the full arrival process.
	select {
	case <-c.barrier:
	case <-c.done:
	case <-r.Context().Done():
		return
	}
	if err := c.Err(); err != nil {
		http.Error(w, "run failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeWireJSON(w, &Assignment{
		RunID:          c.runID,
		WorkerIndex:    index,
		NumWorkers:     c.opts.NumWorkers,
		Config:         c.opts.Schedule.Config,
		ScheduleSHA256: c.opts.Schedule.Hash,
		TargetURL:      c.opts.TargetURL,
		MaxConcurrent:  c.opts.MaxConcurrent,
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxWireBody)).Decode(&req); err != nil {
		http.Error(w, "bad heartbeat: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.RunID != c.runID {
		http.Error(w, fmt.Sprintf("heartbeat for run %q, this coordinator runs %q", req.RunID, c.runID), http.StatusConflict)
		return
	}
	c.mu.Lock()
	st, ok := c.workers[req.WorkerID]
	if ok {
		st.lastSeen = c.opts.Clock.Now()
	}
	c.mu.Unlock()
	if !ok {
		http.Error(w, fmt.Sprintf("unknown worker %q", req.WorkerID), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var wr WorkerResult
	if err := json.NewDecoder(io.LimitReader(r.Body, maxWireBody)).Decode(&wr); err != nil {
		http.Error(w, "bad result: "+err.Error(), http.StatusBadRequest)
		return
	}
	if wr.RunID != c.runID {
		http.Error(w, fmt.Sprintf("result for run %q, this coordinator runs %q", wr.RunID, c.runID), http.StatusConflict)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.workers[wr.WorkerID]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown worker %q", wr.WorkerID), http.StatusNotFound)
		return
	}
	if c.failure != nil {
		http.Error(w, "run failed: "+c.failure.Error(), http.StatusInternalServerError)
		return
	}
	if st.resulted {
		// A retried post after a lost 204: acknowledge, keep the original.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	st.lastSeen = c.opts.Clock.Now()
	if wr.WorkerIndex != st.index {
		c.failLocked(fmt.Errorf("bench: worker %q posted a result for index %d but was assigned %d — protocol violation", wr.WorkerID, wr.WorkerIndex, st.index))
		http.Error(w, c.failure.Error(), http.StatusConflict)
		return
	}
	if wr.Failure != "" {
		c.failLocked(fmt.Errorf("bench: worker %d (%s) reported failure: %s", st.index, wr.WorkerID, wr.Failure))
		w.WriteHeader(http.StatusNoContent) // the failure is recorded; the post itself succeeded
		return
	}
	if wr.ScheduleSHA256 != c.opts.Schedule.Hash {
		c.failLocked(fmt.Errorf("bench: worker %d (%s) replayed schedule %.12s…, coordinator generated %.12s… — version skew or nondeterminism, failing the run", st.index, wr.WorkerID, wr.ScheduleSHA256, c.opts.Schedule.Hash))
		http.Error(w, c.failure.Error(), http.StatusConflict)
		return
	}
	st.resulted = true
	c.results = append(c.results, &wr)
	if len(c.results) == c.opts.NumWorkers {
		merged, err := MergeWorkerResults(c.opts.Schedule, c.opts.NumWorkers, c.results)
		if err != nil {
			c.failLocked(err)
		} else {
			c.merged = merged
			close(c.done)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	select {
	case <-c.done:
	case <-r.Context().Done():
		return
	}
	rep, err := c.Report(c.opts.Clock.Now())
	if err != nil {
		http.Error(w, "run failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeWireJSON(w, rep)
}

func writeWireJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The response is already streaming; nothing recoverable.
		_ = err
	}
}

// Wait blocks until the run completes (returning the merged Result) or
// fails (deadline passed, a worker went silent past the heartbeat grace, a
// hash mismatched, a worker reported failure, or ctx was canceled). A
// failed run never yields a Result: partial coverage is an error, not a
// report.
func (c *Coordinator) Wait(ctx context.Context) (*Result, error) {
	for {
		select {
		case <-c.done:
			c.mu.Lock()
			defer c.mu.Unlock()
			if c.failure != nil {
				return nil, c.failure
			}
			return c.merged, nil
		case <-ctx.Done():
			err := fmt.Errorf("bench: coordinator canceled: %w", ctx.Err())
			c.fail(err)
			return nil, err
		case <-c.opts.Clock.After(coordinatorTickInterval):
			if err := c.checkLiveness(); err != nil {
				return nil, err
			}
		}
	}
}

// checkLiveness enforces the run deadline and the heartbeat grace. Returns
// the run's failure if it just (or previously) failed.
func (c *Coordinator) checkLiveness() error {
	now := c.opts.Clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		return c.failure
	}
	if c.merged != nil {
		return nil
	}
	if now.After(c.deadlineAt) {
		c.failLocked(fmt.Errorf("bench: run deadline %v exceeded with %d/%d results in (%d/%d workers registered) — failing loudly rather than reporting partial coverage",
			c.opts.Deadline, len(c.results), c.opts.NumWorkers, len(c.workers), c.opts.NumWorkers))
		return c.failure
	}
	// Heartbeats matter once slices are running (the barrier released);
	// before that, a pending /control long-poll is the liveness signal.
	if !c.released {
		return nil
	}
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := c.workers[id]
		if st.resulted {
			continue
		}
		if silent := now.Sub(st.lastSeen); silent > c.opts.HeartbeatGrace {
			c.failLocked(fmt.Errorf("bench: worker %d (%s) silent for %v (heartbeat grace %v) — presumed dead, failing the run",
				st.index, st.id, silent.Round(time.Millisecond), c.opts.HeartbeatGrace))
			return c.failure
		}
	}
	return nil
}

// Report builds the merged v4 report: the same schema a single-process run
// emits, plus the per-worker block. Only available once Wait has returned
// successfully (or /report's long-poll released).
func (c *Coordinator) Report(now time.Time) (*Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		return nil, c.failure
	}
	if c.merged == nil {
		return nil, fmt.Errorf("bench: run still in progress")
	}
	target := c.opts.TargetURL
	if target == "" {
		target = "distributed"
	}
	rep := BuildReport(c.opts.Schedule.Config, target, c.merged, now)
	rep.Workers = workerReports(c.results)
	return rep, nil
}

// workerReports summarizes each worker's slice for the report's workers
// block, ordered by worker index.
func workerReports(results []*WorkerResult) []WorkerReport {
	ordered := append([]*WorkerResult(nil), results...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].WorkerIndex < ordered[j].WorkerIndex })
	out := make([]WorkerReport, 0, len(ordered))
	for _, wr := range ordered {
		rep := WorkerReport{
			Index:           wr.WorkerIndex,
			WorkerID:        wr.WorkerID,
			Requests:        wr.Overall.Requests,
			Errors:          wr.Overall.Errors,
			Rejected:        wr.Overall.Rejected,
			WarmupRequests:  wr.Warmed,
			DurationSeconds: time.Duration(wr.ElapsedNanos).Seconds(),
		}
		// The snapshot was validated at merge time; a decode error here
		// would mean the stored result was mutated since, which cannot
		// happen — but degrade to an empty summary rather than panic.
		if h, err := wr.Overall.Latency.Histogram(); err == nil {
			rep.Latency = summarize(h)
		}
		out = append(out, rep)
	}
	return out
}
