package bench

// The distributed benchmark's wire protocol. One coordinator process owns
// the full NHPP schedule; N worker processes each replay a deterministic
// round-robin slice of it against the shared target daemon and post back
// their measurements. The protocol is deliberately tiny — three POSTs and a
// long-poll GET, all JSON — in the spirit of the lightstep-benchmarks
// controller/client pattern:
//
//	POST /control    {worker_id}            → Assignment (long-poll: the
//	                 response is held until every expected worker has
//	                 registered, so all slices start together)
//	POST /heartbeat  {run_id, worker_id}    → 204 (liveness while running)
//	POST /result     WorkerResult           → 204 (slice measurements)
//	GET  /report     → merged Report JSON (long-poll until the run
//	                 completes; 500 with the failure text if it failed)
//
// An Assignment carries the benchmark Config, not the materialized
// schedule: GaoP14's arrival model is a seeded, deterministic NHPP draw, so
// each worker regenerates the identical schedule locally and verifies its
// SHA-256 against the coordinator's before replaying a single request. The
// hash check makes version skew or nondeterminism a loud pre-run failure
// instead of a silently different workload.

import (
	"fmt"
	"sort"
	"time"

	"crowdpricing/internal/hdr"
)

// Protocol endpoint paths served by Coordinator.Handler.
const (
	ControlPath   = "/control"
	HeartbeatPath = "/heartbeat"
	ResultPath    = "/result"
	ReportPath    = "/report"
)

// ControlRequest is a worker's registration, POSTed to /control.
// Re-registering with the same WorkerID is idempotent (same assignment), so
// a worker whose long-poll connection drops can simply retry.
type ControlRequest struct {
	WorkerID string `json:"worker_id"`
}

// Assignment is the coordinator's reply to /control: everything a worker
// needs to regenerate the schedule, verify it, slice it, and run its slice.
type Assignment struct {
	// RunID identifies the run; derived from the schedule hash, so it is
	// stable across coordinator restarts of the same workload.
	RunID string `json:"run_id"`
	// WorkerIndex and NumWorkers pin this worker's round-robin slice.
	WorkerIndex int `json:"worker_index"`
	NumWorkers  int `json:"num_workers"`
	// Config regenerates the full schedule deterministically worker-side.
	Config Config `json:"config"`
	// ScheduleSHA256 is the coordinator's schedule hash; the worker must
	// reproduce it exactly or refuse to run.
	ScheduleSHA256 string `json:"schedule_sha256"`
	// TargetURL is the daemon every worker drives.
	TargetURL string `json:"target_url"`
	// MaxConcurrent caps each worker's in-flight requests (0 = runner
	// default).
	MaxConcurrent int `json:"max_concurrent,omitempty"`
}

// HeartbeatRequest is a worker liveness ping, POSTed to /heartbeat while
// its slice is running.
type HeartbeatRequest struct {
	RunID    string `json:"run_id"`
	WorkerID string `json:"worker_id"`
}

// WireStats is KindStats in wire form: exact counters plus the latency
// histogram as a canonical hdr snapshot.
type WireStats struct {
	Requests  int64         `json:"requests"`
	Errors    int64         `json:"errors"`
	Rejected  int64         `json:"rejected"`
	CacheHits int64         `json:"cache_hits"`
	Latency   *hdr.Snapshot `json:"latency"`
}

// WorkerResult is one worker's posted slice outcome.
type WorkerResult struct {
	RunID          string `json:"run_id"`
	WorkerID       string `json:"worker_id"`
	WorkerIndex    int    `json:"worker_index"`
	ScheduleSHA256 string `json:"schedule_sha256"`
	// Failure, when non-empty, reports that the worker could not complete
	// its slice (hash mismatch, canceled run, target unreachable). A
	// failure result fails the whole run loudly — a distributed run never
	// degrades into silently partial coverage.
	Failure string `json:"failure,omitempty"`

	Warmed       int64                 `json:"warmup_requests"`
	ElapsedNanos int64                 `json:"elapsed_ns"`
	Overall      *WireStats            `json:"overall"`
	ByKind       map[string]*WireStats `json:"by_kind"`
	ErrorSamples []string              `json:"error_samples,omitempty"`
}

// statsToWire snapshots one KindStats for the wire.
func statsToWire(ks *KindStats) *WireStats {
	return &WireStats{
		Requests:  ks.Requests,
		Errors:    ks.Errors,
		Rejected:  ks.Rejected,
		CacheHits: ks.CacheHits,
		Latency:   ks.Latency.Snapshot(),
	}
}

// buildWorkerResult converts a completed runner Result into wire form.
// Kinds the slice never exercised are omitted from ByKind.
func buildWorkerResult(a *Assignment, workerID string, res *Result) *WorkerResult {
	wr := &WorkerResult{
		RunID:          a.RunID,
		WorkerID:       workerID,
		WorkerIndex:    a.WorkerIndex,
		ScheduleSHA256: res.ScheduleHash,
		Warmed:         res.Warmed,
		ElapsedNanos:   int64(res.Elapsed),
		Overall:        statsToWire(res.Overall),
		ByKind:         make(map[string]*WireStats, len(res.ByKind)),
		ErrorSamples:   res.ErrorSamples,
	}
	for _, kind := range sortedStatKinds(res.ByKind) {
		if ks := res.ByKind[kind]; ks.Requests > 0 {
			wr.ByKind[kind] = statsToWire(ks)
		}
	}
	return wr
}

func sortedStatKinds(m map[string]*KindStats) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func sortedWireKinds(m map[string]*WireStats) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// mergeWireStats folds one worker's wire stats into an accumulating
// KindStats. The snapshot is validated before a single counter moves, so a
// corrupt post cannot half-apply.
func mergeWireStats(ks *KindStats, ws *WireStats) error {
	if ws == nil {
		return fmt.Errorf("missing stats block")
	}
	if ws.Requests < 0 || ws.Errors < 0 || ws.Rejected < 0 || ws.CacheHits < 0 {
		return fmt.Errorf("negative counters (requests=%d errors=%d rejected=%d hits=%d)",
			ws.Requests, ws.Errors, ws.Rejected, ws.CacheHits)
	}
	if ws.Errors+ws.Rejected > ws.Requests {
		return fmt.Errorf("errors %d + rejections %d exceed requests %d", ws.Errors, ws.Rejected, ws.Requests)
	}
	// hdr.MergeSnapshot tolerates nil, but on the wire a missing histogram
	// means samples were dropped somewhere — refuse it.
	if ws.Latency == nil {
		return fmt.Errorf("missing latency snapshot")
	}
	if err := ks.Latency.MergeSnapshot(ws.Latency); err != nil {
		return err
	}
	ks.Requests += ws.Requests
	ks.Errors += ws.Errors
	ks.Rejected += ws.Rejected
	ks.CacheHits += ws.CacheHits
	return nil
}

// MergeWorkerResults reassembles the full run from every worker's slice
// result: counters sum, hdr histograms merge slot-wise (the merged
// percentiles are bucket-for-bucket what a single process replaying the
// whole schedule would have measured over the same latency samples), the
// elapsed window is the slowest worker's, and error samples keep their
// worker index.
//
// Coverage is verified, never assumed: exactly numWorkers results, every
// worker index 0..n−1 present exactly once, every result replaying the
// coordinator's schedule hash, no failure reports, and the summed
// warmup+measured totals accounting for every scheduled event. Anything
// less is an error — a merged report is complete or it does not exist.
func MergeWorkerResults(sched *Schedule, numWorkers int, results []*WorkerResult) (*Result, error) {
	if numWorkers <= 0 {
		return nil, fmt.Errorf("bench: numWorkers must be positive, got %d", numWorkers)
	}
	if len(results) != numWorkers {
		return nil, fmt.Errorf("bench: %d of %d worker results present — refusing to merge partial coverage", len(results), numWorkers)
	}
	ordered := append([]*WorkerResult(nil), results...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].WorkerIndex < ordered[j].WorkerIndex })

	merged := &Result{
		ScheduleHash: sched.Hash,
		Overall:      &KindStats{Latency: hdr.New()},
		ByKind:       make(map[string]*KindStats, len(Kinds)),
	}
	for _, k := range Kinds {
		merged.ByKind[k] = &KindStats{Latency: hdr.New()}
	}
	var elapsed int64
	for i, wr := range ordered {
		if wr.Failure != "" {
			return nil, fmt.Errorf("bench: worker %d (%s) failed: %s", wr.WorkerIndex, wr.WorkerID, wr.Failure)
		}
		if wr.WorkerIndex != i {
			return nil, fmt.Errorf("bench: worker indexes do not cover 0..%d exactly once (saw %d twice or missing %d)", numWorkers-1, wr.WorkerIndex, i)
		}
		if wr.ScheduleSHA256 != sched.Hash {
			return nil, fmt.Errorf("bench: worker %d replayed schedule %.12s…, coordinator generated %.12s… — different workloads, refusing to merge", wr.WorkerIndex, wr.ScheduleSHA256, sched.Hash)
		}
		if err := mergeWireStats(merged.Overall, wr.Overall); err != nil {
			return nil, fmt.Errorf("bench: worker %d overall stats: %w", wr.WorkerIndex, err)
		}
		for _, kind := range sortedWireKinds(wr.ByKind) {
			ks, ok := merged.ByKind[kind]
			if !ok {
				ks = &KindStats{Latency: hdr.New()}
				merged.ByKind[kind] = ks
			}
			if err := mergeWireStats(ks, wr.ByKind[kind]); err != nil {
				return nil, fmt.Errorf("bench: worker %d kind %q stats: %w", wr.WorkerIndex, kind, err)
			}
		}
		if wr.Warmed < 0 {
			return nil, fmt.Errorf("bench: worker %d reports negative warmup count %d", wr.WorkerIndex, wr.Warmed)
		}
		merged.Warmed += wr.Warmed
		if wr.ElapsedNanos > elapsed {
			elapsed = wr.ElapsedNanos
		}
		for _, s := range wr.ErrorSamples {
			if len(merged.ErrorSamples) < maxErrorSamples {
				merged.ErrorSamples = append(merged.ErrorSamples, fmt.Sprintf("worker %d: %s", wr.WorkerIndex, s))
			}
		}
	}
	merged.Elapsed = time.Duration(elapsed)
	if covered := merged.Overall.Requests + merged.Warmed; covered != int64(len(sched.Requests)) {
		return nil, fmt.Errorf("bench: merged run accounts for %d of %d scheduled events — a worker under-reported, refusing to report partial coverage", covered, len(sched.Requests))
	}
	return merged, nil
}
