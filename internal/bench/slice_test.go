package bench

import (
	"reflect"
	"testing"
	"time"
)

func sliceTestSchedule(t *testing.T) *Schedule {
	t.Helper()
	cfg := Config{
		Seed:        3,
		Rate:        300,
		Duration:    900 * time.Millisecond,
		Warmup:      100 * time.Millisecond,
		Cardinality: 4,
		Mix:         Mix{KindDeadline: 4, KindBudget: 3, KindTradeoff: 2, KindMulti: 1},
	}
	sched, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Requests) < 50 {
		t.Fatalf("schedule too thin for partition tests: %d requests", len(sched.Requests))
	}
	return sched
}

// TestSlicePartitionUnionReproducesSchedule: for worker counts 1, 2, and 4,
// the slices are disjoint, cover every event exactly once, and their
// round-robin re-interleaving rebuilds the original request sequence — so
// the union hashes to the full schedule's SHA-256.
func TestSlicePartitionUnionReproducesSchedule(t *testing.T) {
	sched := sliceTestSchedule(t)
	for _, n := range []int{1, 2, 4} {
		slices := make([]*Schedule, n)
		total := 0
		for w := 0; w < n; w++ {
			s, err := SliceSchedule(sched, w, n)
			if err != nil {
				t.Fatal(err)
			}
			if s.Hash != sched.Hash {
				t.Fatalf("n=%d worker %d: slice hash %.12s differs from schedule hash %.12s", n, w, s.Hash, sched.Hash)
			}
			slices[w] = s
			total += len(s.Requests)
		}
		if total != len(sched.Requests) {
			t.Fatalf("n=%d: slices cover %d events, schedule has %d", n, total, len(sched.Requests))
		}
		// Re-interleave: event i of the full schedule is event i/n of
		// slice i%n. Any double assignment or gap breaks the equality.
		merged := make([]Request, 0, total)
		for i := 0; i < len(sched.Requests); i++ {
			s := slices[i%n]
			if i/n >= len(s.Requests) {
				t.Fatalf("n=%d: slice %d too short for event %d", n, i%n, i)
			}
			merged = append(merged, s.Requests[i/n])
		}
		if !reflect.DeepEqual(merged, sched.Requests) {
			t.Fatalf("n=%d: re-interleaved slices differ from the original schedule", n)
		}
		if got := hashSchedule(sched.Config, merged); got != sched.Hash {
			t.Fatalf("n=%d: union hash %.12s != schedule hash %.12s", n, got, sched.Hash)
		}
	}
}

// TestSliceNoEventAssignedTwice: across all slices of one partition, every
// (At, Kind, ProblemID) position is owned by exactly one worker.
func TestSliceNoEventAssignedTwice(t *testing.T) {
	sched := sliceTestSchedule(t)
	const n = 4
	type key struct {
		at   time.Duration
		kind string
		id   int
		occ  int // occurrence index, in case two events share a tuple
	}
	seen := map[key]int{}
	occ := map[key]int{}
	for w := 0; w < n; w++ {
		s, err := SliceSchedule(sched, w, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range s.Requests {
			base := key{at: q.At, kind: q.Kind, id: q.ProblemID}
			k := base
			k.occ = occ[base]
			occ[base]++
			if prior, dup := seen[k]; dup {
				t.Fatalf("event %+v assigned to workers %d and %d", k, prior, w)
			}
			seen[k] = w
		}
	}
	if len(seen) != len(sched.Requests) {
		t.Fatalf("union holds %d events, schedule has %d", len(seen), len(sched.Requests))
	}
}

// TestSliceDeterministic: slicing is a pure function — same schedule, same
// partition, byte-identical slices — and a 1-worker partition is the
// schedule itself.
func TestSliceDeterministic(t *testing.T) {
	sched := sliceTestSchedule(t)
	a, err := SliceSchedule(sched, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SliceSchedule(sched, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same partition produced different slices")
	}
	whole, err := SliceSchedule(sched, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(whole.Requests, sched.Requests) || whole.Hash != sched.Hash {
		t.Fatal("1-worker slice is not the whole schedule")
	}
}

func TestSliceValidation(t *testing.T) {
	sched := sliceTestSchedule(t)
	for _, tc := range []struct{ index, n int }{
		{0, 0}, {0, -1}, {-1, 2}, {2, 2}, {5, 3},
	} {
		if _, err := SliceSchedule(sched, tc.index, tc.n); err == nil {
			t.Errorf("SliceSchedule(%d, %d) accepted", tc.index, tc.n)
		}
	}
}

// TestSliceCampaignScenario: campaign-session schedules partition the same
// way — each sliced request keeps its full observation script.
func TestSliceCampaignScenario(t *testing.T) {
	cfg := Config{
		Seed:          5,
		Rate:          60,
		Duration:      time.Second,
		Scenario:      ScenarioCampaign,
		CampaignSteps: 3,
	}
	sched, err := GenerateSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SliceSchedule(sched, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range s.Requests {
		if q.Steps != 3 || len(q.StepArrivals) != 3 || len(q.StepShares) != 3 {
			t.Fatalf("sliced campaign request %d lost its session script: %+v", i, q)
		}
	}
}
