package bench

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"crowdpricing/internal/hdr"
	"crowdpricing/internal/server"
)

// Target abstracts where the load goes: an in-process handler or a remote
// daemon over real sockets. Do must be safe for concurrent use.
type Target interface {
	// Do executes one request and reports whether the daemon served it from
	// its policy cache.
	Do(ctx context.Context, req *Request) (cacheHit bool, err error)
}

// ClientTarget drives a pricing daemon through the typed server.Client's
// kind-generic Solve — the same code path production clients use, for any
// registered problem kind.
type ClientTarget struct {
	Client *server.Client
}

// NewHTTPTarget returns a Target for a remote daemon at baseURL. The
// client's connection pool is sized for load generation: the default
// transport keeps only two idle connections per host, which would make an
// open-loop burst churn TCP handshakes and charge them to the daemon's
// latency.
func NewHTTPTarget(baseURL string) *ClientTarget {
	c := server.NewClient(baseURL)
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 0 // no global idle cap
	t.MaxIdleConnsPerHost = 1024
	c.HTTP = &http.Client{Transport: t}
	return &ClientTarget{Client: c}
}

// NewInProcessTarget builds a fresh pricing server and a Target whose HTTP
// round trips dispatch straight into its handler — the full mux, decode,
// cache, and scheduler stack with zero sockets, so the benchmark runs
// hermetically (CI-safe) and measures the service rather than the loopback
// device. The server is returned too so callers can scrape its metrics.
func NewInProcessTarget(opts server.Options) (*ClientTarget, *server.Server) {
	srv := server.New(opts)
	client := server.NewClient("http://in-process")
	client.HTTP = &http.Client{Transport: handlerTransport{h: srv.Handler()}}
	return &ClientTarget{Client: client}, srv
}

// handlerTransport serves round trips by invoking an http.Handler directly.
type handlerTransport struct {
	h http.Handler
}

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	res := rec.Result()
	res.Request = req
	return res, nil
}

// Do implements Target via the kind-generic client path.
func (t *ClientTarget) Do(ctx context.Context, req *Request) (bool, error) {
	if req.Spec == nil {
		return false, fmt.Errorf("bench: request of kind %q has no spec", req.Kind)
	}
	resp, err := t.Client.Solve(ctx, req.Kind, req.Spec)
	if err != nil {
		return false, err
	}
	return resp.CacheHit, nil
}

// CampaignSessionTarget executes campaign-scenario requests: each
// scheduled arrival becomes one full lifecycle — create, Steps
// observe+quote pairs replayed from the request's pre-drawn observation
// script, then finish — through the same typed client production callers
// use. The reported cache hit is the create's policy solve (the campaign
// analogue of the solve scenario's hit-rate dial); latency is the whole
// session, measured by the runner from the scheduled start.
type CampaignSessionTarget struct {
	Client *server.Client
	// Adaptive runs every session in §5.2.5 adaptive mode (nil = static).
	Adaptive *server.CampaignAdaptiveOptions
}

// Do implements Target.
func (t *CampaignSessionTarget) Do(ctx context.Context, req *Request) (bool, error) {
	if req.Spec == nil {
		return false, fmt.Errorf("bench: request of kind %q has no spec", req.Kind)
	}
	st, err := t.Client.CreateCampaign(ctx, req.Kind, req.Spec, t.Adaptive)
	if err != nil {
		return false, err
	}
	hit := st.SolveCacheHit
	remaining := append([]int(nil), st.Remaining...)
	for s := 0; s < req.Steps; s++ {
		completed := make([]int, len(remaining))
		for i, n := range remaining {
			completed[i] = int(float64(n) * req.StepShares[s])
			remaining[i] -= completed[i]
		}
		if _, err := t.Client.ObserveCampaign(ctx, st.ID, req.StepArrivals[s], completed); err != nil {
			return hit, fmt.Errorf("observe step %d: %w", s, err)
		}
		q, err := t.Client.CampaignPrice(ctx, st.ID)
		if err != nil {
			return hit, fmt.Errorf("quote step %d: %w", s, err)
		}
		if len(q.Prices) == 0 {
			return hit, fmt.Errorf("quote step %d returned no prices", s)
		}
	}
	if _, err := t.Client.FinishCampaign(ctx, st.ID); err != nil {
		return hit, fmt.Errorf("finish: %w", err)
	}
	return hit, nil
}

// NewTargetFor picks the Target matching the schedule's scenario over the
// given client: the plain solve target or the campaign session driver.
func NewTargetFor(sched *Schedule, client *server.Client) Target {
	if sched.Config.Scenario == ScenarioCampaign {
		t := &CampaignSessionTarget{Client: client}
		if sched.Config.CampaignAdaptive {
			t.Adaptive = &server.CampaignAdaptiveOptions{}
		}
		return t
	}
	return &ClientTarget{Client: client}
}

// IsRejection reports whether err is the daemon's intentional backpressure
// (HTTP 429, the admission queue was full) rather than a failure. The
// runner accounts rejections separately so regression gates on the error
// rate don't flap under deliberate load shedding.
func IsRejection(err error) bool {
	var apiErr *server.APIError
	return errors.As(err, &apiErr) && apiErr.IsBackpressure()
}

// Clock is the runner's time source. Production uses the wall clock;
// tests inject a fake so a schedule spanning minutes of virtual time
// executes (and asserts on its accounting) in microseconds.
type Clock interface {
	Now() time.Time
	// After returns a channel that delivers a tick once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// funcClock adapts a pair of functions to Clock. The production wall
// clock binds time.Now and time.After as values — the injectable-clock
// pattern the determinism analyzer pushes wall-time call sites toward.
type funcClock struct {
	now   func() time.Time
	after func(time.Duration) <-chan time.Time
}

func (c funcClock) Now() time.Time                         { return c.now() }
func (c funcClock) After(d time.Duration) <-chan time.Time { return c.after(d) }

// wallClock is the production time source.
var wallClock Clock = funcClock{now: time.Now, after: time.After}

// RunOptions tunes schedule execution.
type RunOptions struct {
	// Target receives the load. Required.
	Target Target
	// MaxConcurrent caps in-flight requests so a stalled target cannot
	// spawn unbounded goroutines (0 = 4096). Requests delayed by the cap
	// still charge the delay to their measured latency — the schedule, not
	// the responses, drives send times.
	MaxConcurrent int
	// Clock overrides the time source (nil = wall clock). Tests inject a
	// fake clock to execute schedules without real sleeps.
	Clock Clock
}

// KindStats aggregates one endpoint's (or the whole run's) measured
// requests.
type KindStats struct {
	Requests  int64
	Errors    int64
	Rejected  int64 // 429 backpressure shedding; disjoint from Errors
	CacheHits int64
	// Latency holds response times measured from each request's scheduled
	// start (coordinated-omission-safe). Successful requests only.
	Latency *hdr.Histogram
}

// Result is the raw outcome of executing a schedule; BuildReport turns it
// into the serializable report.
type Result struct {
	// ScheduleHash echoes Schedule.Hash.
	ScheduleHash string
	// Warmed counts warmup-phase requests (fired, excluded from stats).
	Warmed int64
	// Overall aggregates every measured request; ByKind splits per problem
	// kind.
	Overall *KindStats
	ByKind  map[string]*KindStats
	// Elapsed is the wall time of the measurement window (end of warmup to
	// last response).
	Elapsed time.Duration
	// ErrorSamples holds up to a handful of distinct error strings for
	// diagnosis.
	ErrorSamples []string
}

// maxErrorSamples bounds how many error strings a Result retains.
const maxErrorSamples = 8

// Run executes the schedule open-loop against opts.Target: each request
// fires at its scheduled offset regardless of how earlier requests are
// doing, and its latency runs from the scheduled instant to the response —
// queueing caused by a slow target is charged to the target, not silently
// dropped (the coordinated-omission trap of closed-loop harnesses).
//
// Run returns early with ctx's error if the context is canceled
// mid-schedule; in-flight requests are awaited either way.
func Run(ctx context.Context, sched *Schedule, opts RunOptions) (*Result, error) {
	if opts.Target == nil {
		return nil, fmt.Errorf("bench: RunOptions.Target is required")
	}
	maxConc := opts.MaxConcurrent
	if maxConc <= 0 {
		maxConc = 4096
	}
	clock := opts.Clock
	if clock == nil {
		clock = wallClock
	}

	res := &Result{
		ScheduleHash: sched.Hash,
		Overall:      &KindStats{Latency: hdr.New()},
		ByKind:       make(map[string]*KindStats, len(Kinds)),
	}
	for _, k := range Kinds {
		res.ByKind[k] = &KindStats{Latency: hdr.New()}
	}

	var (
		warmed    atomic.Int64
		mu        sync.Mutex // guards ErrorSamples and the KindStats counters
		wg        sync.WaitGroup
		sem       = make(chan struct{}, maxConc)
		start     = clock.Now()
		warmupDur = sched.Config.Warmup
		canceled  error
	)

schedule:
	for i := range sched.Requests {
		req := &sched.Requests[i]
		wait := start.Add(req.At).Sub(clock.Now())
		if wait > 0 {
			select {
			case <-ctx.Done():
				canceled = ctx.Err()
				break schedule
			case <-clock.After(wait):
			}
		} else if ctx.Err() != nil {
			canceled = ctx.Err()
			break schedule
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			canceled = ctx.Err()
			break schedule
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			scheduled := start.Add(req.At)
			hit, err := opts.Target.Do(ctx, req)
			latency := clock.Now().Sub(scheduled)
			if req.At < warmupDur {
				warmed.Add(1)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			ks, ok := res.ByKind[req.Kind]
			if !ok {
				// Unknown kinds still count (Do reports them as errors)
				// instead of panicking on a nil entry.
				ks = &KindStats{Latency: hdr.New()}
				res.ByKind[req.Kind] = ks
			}
			res.Overall.Requests++
			ks.Requests++
			if err != nil {
				if IsRejection(err) {
					// Intentional shedding: its own bucket, not an error,
					// and no latency sample (the request did no work).
					res.Overall.Rejected++
					ks.Rejected++
					return
				}
				res.Overall.Errors++
				ks.Errors++
				if len(res.ErrorSamples) < maxErrorSamples {
					res.ErrorSamples = append(res.ErrorSamples, fmt.Sprintf("%s: %v", req.Kind, err))
				}
				return
			}
			if hit {
				res.Overall.CacheHits++
				ks.CacheHits++
			}
			res.Overall.Latency.Record(latency)
			ks.Latency.Record(latency)
		}()
	}
	wg.Wait()
	res.Warmed = warmed.Load()
	res.Elapsed = clock.Now().Sub(start.Add(warmupDur))
	if res.Elapsed < 0 {
		res.Elapsed = 0
	}
	if canceled != nil {
		return res, fmt.Errorf("bench: run canceled after %d measured requests: %w", res.Overall.Requests, canceled)
	}
	return res, nil
}
